// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index). Each benchmark
// runs a scaled-down version of the experiment and reports the paper's
// metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates every reported number. The full-length versions are
// available through cmd/abcreport.
package abc_test

import (
	"testing"

	"abc/internal/app"
	"abc/internal/exp"
	"abc/internal/netem"
	"abc/internal/obs"
	"abc/internal/packet"
	"abc/internal/sim"
	"abc/internal/topo"
	"abc/internal/trace"
)

// benchDur is the scaled simulation length for benchmarks.
const benchDur = 20 * sim.Second

// reportSummary publishes a summary's metrics on the benchmark.
func reportSummary(b *testing.B, prefix string, util, meanMs, p95Ms float64) {
	b.ReportMetric(util*100, prefix+"_util_%")
	b.ReportMetric(meanMs, prefix+"_mean_ms")
	b.ReportMetric(p95Ms, prefix+"_p95_ms")
}

// BenchmarkTable1Summary regenerates the §1 table: throughput and p95
// delay of each scheme normalized to ABC, averaged over cellular traces.
func BenchmarkTable1Summary(b *testing.B) {
	traces := []string{"Verizon1", "TMobile1", "ATT1"}
	for i := 0; i < b.N; i++ {
		bars, err := exp.Fig9Bars(nil, traces, benchDur, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, row := range exp.SummaryTable(bars) {
				b.ReportMetric(row.NormTput, row.Scheme+"_norm_tput")
				b.ReportMetric(row.NormDelay, row.Scheme+"_norm_p95")
			}
		}
	}
}

// BenchmarkFig1Timeseries regenerates Fig. 1: the four-way LTE time
// series (Cubic bufferbloat, Verus oscillation, CoDel underutilization,
// ABC tracking).
func BenchmarkFig1Timeseries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, err := exp.Fig1Timeseries(1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range runs {
				reportSummary(b, r.Scheme, r.Summary.Utilization, r.Summary.MeanMs, r.Summary.P95Ms)
			}
		}
	}
}

// BenchmarkFig2FeedbackMode regenerates Fig. 2: dequeue- vs enqueue-rate
// feedback p95 queuing delay.
func BenchmarkFig2FeedbackMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig2FeedbackMode(1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.QDelayP95Dequeue, "dequeue_p95_ms")
			b.ReportMetric(r.QDelayP95Enqueue, "enqueue_p95_ms")
			b.ReportMetric(r.QDelayP95Enqueue/r.QDelayP95Dequeue, "ratio")
		}
	}
}

// BenchmarkFig3Fairness regenerates Fig. 3: Jain index of five staggered
// ABC flows with and without additive increase.
func BenchmarkFig3Fairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with, err := exp.Fig3Fairness(true, 1)
		if err != nil {
			b.Fatal(err)
		}
		without, err := exp.Fig3Fairness(false, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(with.JainAllActive, "jain_with_AI")
			b.ReportMetric(without.JainAllActive, "jain_without_AI")
		}
	}
}

// BenchmarkFig4InterACK regenerates Fig. 4: the TIA-vs-batch-size slope
// against S/R.
func BenchmarkFig4InterACK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig4InterACK(1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.FittedSlopeMs, "slope_ms_per_frame")
			b.ReportMetric(r.TheorySlopeMs, "theory_ms_per_frame")
		}
	}
}

// BenchmarkFig5RatePrediction regenerates Fig. 5: worst backlogged Wi-Fi
// rate-prediction error (paper: within 5%).
func BenchmarkFig5RatePrediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := exp.Fig5RatePrediction(1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(exp.Fig5MaxErrorBacklogged(pts)*100, "worst_err_%")
		}
	}
}

// BenchmarkFig6NonABCBottleneck regenerates Fig. 6: tracking across
// wired/wireless bottleneck switches via the dual window.
func BenchmarkFig6NonABCBottleneck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig6NonABCBottleneck(1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.TrackError*100, "track_err_%")
			b.ReportMetric(r.QDelayP95, "p95_qdelay_ms")
		}
	}
}

// BenchmarkFig7Coexistence regenerates Fig. 7: ABC and Cubic sharing a
// dual-queue bottleneck fairly.
func BenchmarkFig7Coexistence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig7Coexistence(1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.Jain, "jain")
			b.ReportMetric(r.ABCQDelayP95, "abc_p95_qdelay_ms")
			b.ReportMetric(r.CubicQDelayP95, "cubic_p95_qdelay_ms")
		}
	}
}

// BenchmarkFig8Scatter regenerates Fig. 8a/b/c: per-scheme utilization
// and p95 delay on down, up and two-hop cellular paths.
func BenchmarkFig8Scatter(b *testing.B) {
	schemes := []string{"ABC", "Cubic", "Cubic+Codel", "BBR", "XCP"}
	kinds := []exp.ScatterKind{exp.Downlink, exp.Uplink, exp.UplinkDownlink}
	names := []string{"down", "up", "updown"}
	for i := 0; i < b.N; i++ {
		for k, kind := range kinds {
			sums, err := exp.Fig8Scatter(kind, schemes, benchDur, 1)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				for _, s := range sums {
					b.ReportMetric(s.Utilization*100, names[k]+"_"+s.Scheme+"_util_%")
					b.ReportMetric(s.P95Ms, names[k]+"_"+s.Scheme+"_p95_ms")
				}
			}
		}
	}
}

// BenchmarkFig9Bars regenerates Fig. 9: average utilization and p95 delay
// across the cellular corpus for every scheme.
func BenchmarkFig9Bars(b *testing.B) {
	traces := []string{"Verizon1", "Verizon2", "TMobile1", "ATT1"}
	for i := 0; i < b.N; i++ {
		bars, err := exp.Fig9Bars(nil, traces, benchDur, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, sch := range bars.Schemes {
				u, m, p := bars.Average(sch)
				reportSummary(b, sch, u, m, p)
			}
		}
	}
}

// BenchmarkFig10WiFi regenerates Fig. 10: single-user Wi-Fi comparison
// with the alternating MCS walk.
func BenchmarkFig10WiFi(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sums, err := exp.Fig10WiFi(1, exp.AlternatingMCS(1), benchDur, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, s := range sums {
				b.ReportMetric(s.TputMbps, s.Scheme+"_tput_mbps")
				b.ReportMetric(s.P95Ms, s.Scheme+"_p95_ms")
			}
		}
	}
}

// BenchmarkFig10WiFiTwoUsers regenerates Fig. 10b: the two-user shared-
// queue scenario.
func BenchmarkFig10WiFiTwoUsers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sums, err := exp.Fig10WiFi(2, exp.AlternatingMCS(1), benchDur, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, s := range sums {
				b.ReportMetric(s.TputMbps, s.Scheme+"_tput_mbps")
				b.ReportMetric(s.P95Ms, s.Scheme+"_p95_ms")
			}
		}
	}
}

// BenchmarkFig11CrossTraffic regenerates Fig. 11: ideal-rate tracking
// with on-off Cubic cross traffic on the wired hop.
func BenchmarkFig11CrossTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig11CrossTraffic(1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.TrackError*100, "track_err_%")
		}
	}
}

// BenchmarkFig12WeightPolicy regenerates Fig. 12: long-flow throughput
// under ABC's max-min policy vs RCP's zombie list at 25% short-flow load.
func BenchmarkFig12WeightPolicy(b *testing.B) {
	cfg := exp.Fig12Config{Runs: 2, Duration: benchDur, Loads: []float64{0.25}, Seed: 1}
	for i := 0; i < b.N; i++ {
		mm, err := exp.Fig12WeightPolicy("maxmin", cfg)
		if err != nil {
			b.Fatal(err)
		}
		zb, err := exp.Fig12WeightPolicy("zombie", cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(mm[0].ABCMean, "maxmin_abc_mbps")
			b.ReportMetric(mm[0].CubicMean, "maxmin_cubic_mbps")
			b.ReportMetric(zb[0].ABCMean, "zombie_abc_mbps")
			b.ReportMetric(zb[0].CubicMean, "zombie_cubic_mbps")
		}
	}
}

// BenchmarkFig13AppLimited regenerates Fig. 13: a backlogged ABC flow
// among application-limited ABC flows.
func BenchmarkFig13AppLimited(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig13AppLimited(50, 1.0, benchDur, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.Utilization*100, "util_%")
			b.ReportMetric(r.QDelayP95, "p95_qdelay_ms")
		}
	}
}

// BenchmarkFig14WiFiBrownian regenerates Fig. 14 (Appendix B): the
// Brownian-motion MCS walk.
func BenchmarkFig14WiFiBrownian(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sums, err := exp.Fig10WiFi(1, exp.BrownianMCS(1), benchDur, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, s := range sums {
				b.ReportMetric(s.TputMbps, s.Scheme+"_tput_mbps")
				b.ReportMetric(s.P95Ms, s.Scheme+"_p95_ms")
			}
		}
	}
}

// BenchmarkFig15MeanDelay regenerates Fig. 15 (Appendix C): mean
// per-packet delay across traces.
func BenchmarkFig15MeanDelay(b *testing.B) {
	traces := []string{"Verizon1", "TMobile1"}
	for i := 0; i < b.N; i++ {
		bars, err := exp.Fig9Bars(nil, traces, benchDur, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, sch := range bars.Schemes {
				_, m, _ := bars.Average(sch)
				b.ReportMetric(m, sch+"_mean_ms")
			}
		}
	}
}

// BenchmarkFig16Explicit regenerates Fig. 16 (Appendix D): ABC vs
// XCP/XCPw/RCP/VCP across traces.
func BenchmarkFig16Explicit(b *testing.B) {
	traces := []string{"Verizon1", "Verizon2", "ATT1"}
	for i := 0; i < b.N; i++ {
		bars, err := exp.Fig9Bars(exp.ExplicitSchemes, traces, benchDur, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, sch := range bars.Schemes {
				u, _, p := bars.Average(sch)
				b.ReportMetric(u*100, sch+"_util_%")
				b.ReportMetric(p, sch+"_p95_ms")
			}
		}
	}
}

// BenchmarkFig17SquareWave regenerates Fig. 17 (Appendix D): ABC, RCP and
// XCPw on the 12↔24 Mbit/s square wave.
func BenchmarkFig17SquareWave(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := exp.Fig17SquareWave(nil, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rs {
				b.ReportMetric(r.Summary.Utilization*100, r.Scheme+"_util_%")
				b.ReportMetric(r.QDelayP95, r.Scheme+"_p95_qdelay_ms")
			}
		}
	}
}

// BenchmarkFig18RTTSweep regenerates Fig. 18 (Appendix E): RTT
// sensitivity for a scheme subset.
func BenchmarkFig18RTTSweep(b *testing.B) {
	schemes := []string{"ABC", "Cubic+Codel", "Cubic"}
	for i := 0; i < b.N; i++ {
		out, err := exp.Fig18RTTSweep(schemes, benchDur, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, rtt := range []int{20, 200} {
				for sch, s := range out[rtt] {
					b.ReportMetric(s.Utilization*100, sch+"_rtt"+itoa(rtt)+"_util_%")
				}
			}
		}
	}
}

// BenchmarkJainFairness regenerates the §6.5 fairness sweep.
func BenchmarkJainFairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, n := range []int{2, 8, 32} {
			idx, err := exp.JainFairness(n, 1)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(idx, "jain_n"+itoa(n))
			}
		}
	}
}

// BenchmarkPKABC regenerates §6.6's perfect-knowledge comparison.
func BenchmarkPKABC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.PKABC(benchDur, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.QDelayP95ABC, "abc_p95_qdelay_ms")
			b.ReportMetric(r.QDelayP95PK, "pk_p95_qdelay_ms")
			b.ReportMetric(r.ABC.Utilization*100, "abc_util_%")
			b.ReportMetric(r.PK.Utilization*100, "pk_util_%")
		}
	}
}

// BenchmarkStabilityRegion regenerates the Theorem 3.1 boundary sweep.
func BenchmarkStabilityRegion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.StabilityRegion()
		if i == b.N-1 {
			b.ReportMetric(r.Boundary, "boundary_delta_over_tau")
		}
	}
}

// BenchmarkSimulatorThroughput measures the raw event-processing rate of
// the substrate: one ABC flow on a constant link.
func BenchmarkSimulatorThroughput(b *testing.B) {
	tr := trace.Constant("bench", 24e6)
	for i := 0; i < b.N; i++ {
		_, _, err := exp.Run(exp.Spec{
			Seed: 1, Duration: 10 * sim.Second, RTT: 100 * sim.Millisecond,
			Links: []exp.LinkSpec{{Trace: tr}},
			Flows: []exp.FlowSpec{{Scheme: "ABC"}},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// itoa is a minimal integer formatter to keep the benchmark metric names
// allocation-free.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkSimCore measures the raw event core: schedule, cancel and pop
// with a recycled heap and slot table (see DESIGN.md §2). Steady state
// must report 0 allocs/op; a regression here taxes every experiment.
func BenchmarkSimCore(b *testing.B) {
	s := sim.New(1)
	nop := func(a, c any) {}
	// Warm the heap, slot table and free list.
	for j := 0; j < 1024; j++ {
		s.AfterArgs(sim.Time(j)*sim.Microsecond, nop, nil, nil)
	}
	s.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// 64 schedules, 32 eager cancels, 64 pops per iteration.
		for j := 0; j < 64; j++ {
			s.AfterArgs(sim.Time(j)*sim.Microsecond, nop, nil, nil)
		}
		for j := 0; j < 32; j++ {
			s.AfterArgs(sim.Time(j)*sim.Microsecond, nop, nil, nil).Stop()
		}
		s.Run()
	}
}

// BenchmarkPacketChurn measures one data/ACK exchange through the packet
// free-list (see DESIGN.md §2): steady state must report 0 allocs/op.
func BenchmarkPacketChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := packet.NewData(1, int64(i), packet.MTU, 0)
		p.ECN = packet.Accel
		a := packet.NewAck(p, int64(i)+1, 1)
		p.Release()
		a.Release()
	}
}

// BenchmarkForwardHop measures one forwarding decision on the per-packet
// path: a junction's (flow, direction) table lookup plus the edge's
// up/down gate. The routing refactor moved every hop onto this path, so
// it must stay 0 allocs/op (enforced via bench_thresholds.txt).
func BenchmarkForwardHop(b *testing.B) {
	s := sim.New(1)
	g := topo.New(s)
	a, c := g.AddNode("a"), g.AddNode("b")
	// Pure edge (no link, no delay): the measured work is exactly
	// node table lookup → edge gate → terminal delivery.
	id, err := g.AddEdge("hop", a, c, 0, topo.Impairments{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	sink := &packet.Sink{}
	entry, err := g.RouteFlow(1, false, []int{id}, 0, sink)
	if err != nil {
		b.Fatal(err)
	}
	p := packet.NewData(1, 0, packet.MTU, 0)
	defer p.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entry.Recv(p)
	}
	if sink.Count != b.N {
		b.Fatalf("delivered %d, want %d", sink.Count, b.N)
	}
}

// BenchmarkTracedHop is BenchmarkForwardHop with the flight recorder
// attached at an active mask: the same forwarding decision now also
// emits a hop event into the ring. Enabled tracing must stay 0
// allocs/op too (bench_thresholds.txt) — the recorder preallocates its
// ring and Emit writes in place — so the only cost of tracing is the
// mask check plus the ring store, never the garbage collector.
func BenchmarkTracedHop(b *testing.B) {
	s := sim.New(1)
	g := topo.New(s)
	rec := obs.NewRecorder(1<<16, obs.CatHop|obs.CatPacket)
	g.SetRecorder(rec)
	a, c := g.AddNode("a"), g.AddNode("b")
	id, err := g.AddEdge("hop", a, c, 0, topo.Impairments{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	sink := &packet.Sink{}
	entry, err := g.RouteFlow(1, false, []int{id}, 0, sink)
	if err != nil {
		b.Fatal(err)
	}
	p := packet.NewData(1, 0, packet.MTU, 0)
	defer p.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entry.Recv(p)
	}
	b.StopTimer()
	if sink.Count != b.N {
		b.Fatalf("delivered %d, want %d", sink.Count, b.N)
	}
	if rec.Total() < uint64(b.N) {
		b.Fatalf("recorded %d events, want >= %d — tracing was not active", rec.Total(), b.N)
	}
}

// BenchmarkFIBLookup measures a mid-route junction's forwarding decision
// under class aggregation: eight flows share one route, so the junction
// holds a single FIB entry and the measured work is the class lookup
// plus the next-hop gate. Must stay 0 allocs/op (bench_thresholds.txt) —
// the aggregated table is the per-packet fast path for every
// table-backed hop in the simulator.
func BenchmarkFIBLookup(b *testing.B) {
	s := sim.New(1)
	g := topo.New(s)
	a, m, c := g.AddNode("a"), g.AddNode("m"), g.AddNode("c")
	// Pure edges (no link, no delay): the junction m's table lookup
	// dominates the measured path.
	e1, err := g.AddEdge("in", a, m, 0, topo.Impairments{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	e2, err := g.AddEdge("out", m, c, 0, topo.Impairments{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	sinks := make([]*packet.Sink, 8)
	var entry packet.Node
	for f := range sinks {
		sinks[f] = &packet.Sink{}
		entry, err = g.RouteFlow(f+1, false, []int{e1, e2}, 0, sinks[f])
		if err != nil {
			b.Fatal(err)
		}
	}
	p := packet.NewData(8, 0, packet.MTU, 0)
	defer p.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entry.Recv(p)
	}
	if sinks[7].Count != b.N {
		b.Fatalf("delivered %d, want %d", sinks[7].Count, b.N)
	}
}

// BenchmarkShardedRun measures the conservative-lookahead coordinator
// end to end: the four-bottleneck ring at 1 shard (the plain sequential
// simulator) vs 4 shards (per-shard event queues on worker goroutines
// with cross-shard mailbox handoff). On a multi-core host the 4-shard
// run approaches the topology's parallel speedup; on any host the two
// results are byte-identical (TestShardedMeshDigestInvariant). The
// allocs/op ceilings in bench_thresholds.txt keep the cross-shard
// handoff from allocating per packet: both sub-benchmarks simulate the
// same traffic, so their allocation gap is pure sharding overhead.
func BenchmarkShardedRun(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run("shards="+itoa(shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := exp.ShardedMesh(shards, 5*sim.Second, 1)
				if err != nil {
					b.Fatal(err)
				}
				if r.Drops != 0 {
					b.Fatalf("%d unrouted drops", r.Drops)
				}
			}
		})
	}
}

// BenchmarkHybridBackground measures the hybrid fluid/packet mode's
// headline property: simulation cost is constant in the background user
// count. Each sub-benchmark runs the same packet-level foreground (one
// backlogged ABC flow on a rate link), with a fluid "const" aggregate
// standing in for 0, a thousand, or a million background users. The
// fluid aggregate is a fixed-step rate process, so wall time and
// allocs/op must stay near-flat from users=0 to users=1000000 — the
// ceilings in bench_thresholds.txt enforce the alloc side, and the
// acceptance bar is users=1000000 within 2x of users=0.
func BenchmarkHybridBackground(b *testing.B) {
	for _, users := range []int{0, 1_000, 1_000_000} {
		b.Run("users="+itoa(users), func(b *testing.B) {
			spec := exp.Spec{
				Seed:     1,
				Duration: 5 * sim.Second,
				Links: []exp.LinkSpec{{
					Rate:  netem.ConstRate(60e6),
					Qdisc: exp.QdiscSpec{Kind: "abc", Buffer: 250},
				}},
				Flows: []exp.FlowSpec{{Scheme: "ABC"}},
			}
			if users > 0 {
				spec.Background = []exp.BackgroundSpec{{
					Edge: "fwd0", Kind: "const", Flows: users,
					RateMbps: float64(users) * 48 / 1e6,
				}}
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, _, err := exp.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				if res.Flows[0].TputMbps <= 0 {
					b.Fatal("foreground starved")
				}
			}
		})
	}
}

// BenchmarkWorkloadChurn measures the dynamic-flow machinery: one run of
// an open-loop workload churning ~160 short flows through a rate link
// (spawn → route → transfer → complete → tear down). The committed
// allocs/op ceiling in bench_thresholds.txt keeps flow spawning off the
// alloc fast path — a regression here means per-flow wiring started
// allocating per packet instead of per flow.
func BenchmarkWorkloadChurn(b *testing.B) {
	spec := exp.Spec{
		Seed:     1,
		Duration: 8 * sim.Second,
		Warmup:   sim.Second,
		Links: []exp.LinkSpec{{
			Kind:  "rate",
			Rate:  netem.ConstRate(20e6),
			Qdisc: exp.QdiscSpec{Kind: "droptail", Buffer: 250},
		}},
		Workloads: []exp.WorkloadSpec{{
			Scheme:  "Cubic",
			Arrival: app.Deterministic{Gap: 50 * sim.Millisecond},
			Sizes:   app.FixedSize{Bytes: 20 * 1024},
		}},
	}
	b.ReportAllocs()
	var completed int
	for i := 0; i < b.N; i++ {
		res, _, err := exp.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		completed = res.Workloads[0].Completed
	}
	b.ReportMetric(float64(completed), "flows_completed")
}
