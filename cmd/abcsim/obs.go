// Observability flags: a Prometheus-style /metrics endpoint with a
// periodic stderr progress line, and a flight-recorder trace dumped to a
// file after the run. Both default off; neither perturbs results —
// tracing is passive by construction (golden digests are identical with
// it enabled), while -metrics schedules sampling events and is meant for
// watching long sweeps, not for digest comparisons.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"abc/internal/exp"
	"abc/internal/obs"
	"abc/internal/sim"
)

var (
	metricsAddr = flag.String("metrics", "", "serve live run metrics on this address (e.g. 127.0.0.1:9090 or :0) and print progress to stderr")
	traceOut    = flag.String("trace-out", "", "record a flight-recorder trace and dump it to this file after the run (JSONL; see -trace-csv)")
	traceMask   = flag.String("trace-mask", "all", "trace categories: comma list of packet,mark,route,link,attack,cc,shard,hop, or 'all'")
	traceCap    = flag.Int("trace-cap", 1<<20, "flight-recorder ring capacity in events (oldest events overwritten)")
	traceCSV    = flag.Bool("trace-csv", false, "dump the trace as columnar CSV instead of JSONL")
)

// setupObs arms the observability flags and returns a teardown that
// stops the progress line and writes the trace dump. The returned error
// from teardown is the dump's write error, if any.
func setupObs(prog string) (teardown func() error, err error) {
	teardown = func() error { return nil }
	if *metricsAddr != "" {
		addr, err := obs.Serve(*metricsAddr, obs.Default())
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "[obs] %s: serving metrics on http://%s/metrics\n", prog, addr)
		exp.EnableMetrics(obs.Default(), sim.Second)
		stop := obs.StartProgress(os.Stderr, obs.Default(), 2*time.Second)
		teardown = func() error { stop(); return nil }
	}
	if *traceOut != "" {
		mask, err := obs.ParseMask(*traceMask)
		if err != nil {
			return nil, err
		}
		rec := obs.NewRecorder(*traceCap, mask)
		exp.EnableTracing(rec)
		prev := teardown
		teardown = func() error {
			perr := prev()
			f, err := os.Create(*traceOut)
			if err == nil {
				if *traceCSV {
					err = rec.WriteColumns(f)
				} else {
					err = rec.WriteJSONL(f)
				}
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err == nil {
				if over := rec.Overwritten(); over > 0 {
					fmt.Fprintf(os.Stderr, "[obs] %s: trace ring wrapped; oldest %d of %d events lost (raise -trace-cap)\n", prog, over, rec.Total())
				}
				fmt.Fprintf(os.Stderr, "[obs] %s: wrote %d trace events to %s\n", prog, rec.Total()-rec.Overwritten(), *traceOut)
			}
			if perr == nil {
				perr = err
			}
			return perr
		}
	}
	return teardown, nil
}
