// Command abcsim runs any of the paper's experiments by ID — or any
// declarative scenario file — and prints the corresponding table rows or
// series.
//
// Usage:
//
//	abcsim -exp list
//	abcsim -exp fig1 [-seed 1] [-dur 60]
//	abcsim -exp fig9 -schemes ABC,Cubic,Cubic+Codel
//	abcsim -exp schemes                      # registered schemes/qdiscs
//	abcsim -scenario examples/scenarios/congested-uplink.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"abc/internal/app"
	"abc/internal/cc"
	"abc/internal/exp"
	"abc/internal/prof"
	"abc/internal/qdisc"
	"abc/internal/sim"
)

var (
	expName  = flag.String("exp", "list", "experiment id (use 'list' to enumerate)")
	seed     = flag.Int64("seed", 1, "simulation seed")
	durSec   = flag.Float64("dur", 60, "run duration in seconds (where applicable)")
	schemes  = flag.String("schemes", "", "comma-separated scheme subset (where applicable)")
	users    = flag.Int("users", 1, "number of Wi-Fi users (fig10)")
	runs     = flag.Int("runs", 3, "runs per point (fig12)")
	scenario = flag.String("scenario", "", "path to a declarative scenario file (overrides -exp)")
	traceNm  = flag.String("trace", "", "cellular trace for the app-workload experiments (default Verizon1)")
	pprofOut = flag.String("pprof", "", "profile the run: CPU to <prefix>.cpu.pprof, heap to <prefix>.heap.pprof")
	rtTrace  = flag.String("runtime-trace", "", "write a runtime execution trace (go tool trace) to this file")
)

func main() {
	flag.Parse()
	stop, err := prof.Start(prof.Config{Pprof: *pprofOut, Trace: *rtTrace})
	if err != nil {
		fmt.Fprintln(os.Stderr, "abcsim:", err)
		os.Exit(1)
	}
	obsDone, err := setupObs("abcsim")
	if err != nil {
		fmt.Fprintln(os.Stderr, "abcsim:", err)
		os.Exit(1)
	}
	err = run()
	if oerr := obsDone(); err == nil {
		err = oerr
	}
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "abcsim:", err)
		os.Exit(1)
	}
}

func schemeList() []string {
	if *schemes == "" {
		return nil
	}
	return strings.Split(*schemes, ",")
}

func dur() sim.Time { return sim.FromSeconds(*durSec) }

type experiment struct {
	name, desc string
	fn         func() error
}

func experiments() []experiment {
	return []experiment{
		{"table1", "§1 summary: normalized throughput/delay vs ABC", runTable1},
		{"fig1", "time series: Cubic, Verus, Cubic+Codel, ABC on LTE", runFig1},
		{"fig2", "dequeue- vs enqueue-rate feedback", runFig2},
		{"fig3", "fairness among ABC flows with/without AI", runFig3},
		{"fig4", "Wi-Fi inter-ACK time vs A-MPDU size", runFig4},
		{"fig5", "Wi-Fi link-rate prediction accuracy", runFig5},
		{"fig6", "coexistence with a non-ABC wired bottleneck", runFig6},
		{"fig7", "ABC + Cubic on a dual-queue bottleneck", runFig7},
		{"fig8", "throughput/delay scatter (down, up, two-hop)", runFig8},
		{"fig9", "utilization and p95 delay across 8 traces", runFig9},
		{"fig10", "Wi-Fi comparison (alternating MCS)", runFig10},
		{"fig11", "tracking with on-off cross traffic", runFig11},
		{"fig12", "max-min vs zombie-list weight policy", runFig12},
		{"fig13", "application-limited ABC flows", runFig13},
		{"fig14", "Wi-Fi comparison (Brownian MCS walk)", runFig14},
		{"fig15", "mean per-packet delay across traces", runFig15},
		{"fig16", "ABC vs explicit schemes (XCP/XCPw/RCP/VCP)", runFig16},
		{"fig17", "square-wave adaptation: ABC vs RCP vs XCPw", runFig17},
		{"fig18", "RTT sensitivity sweep", runFig18},
		{"jain", "§6.5 Jain fairness index, 2-32 flows", runJain},
		{"ablations", "ABC parameter sweeps (dt, delta, eta, token limit, window)", runAblations},
		{"proxied", "§5.1.2 proxied-network ECN encoding vs NS-bit encoding", runProxied},
		{"pkabc", "§6.6 perfect-knowledge ABC", runPKABC},
		{"stability", "Theorem 3.1 stability boundary sweep", runStability},
		{"uplink", "asymmetric cellular: congested uplink carrying the ACKs", runUplink},
		{"mesh", "shared-junction mesh: disjoint multi-hop paths through one hub", runMesh},
		{"markeduplink", "downlink ACKs re-marked by an ABC router on the uplink edge", runMarkedUplink},
		{"heterortt", "heterogeneous-RTT fairness sweep", runHeteroRTT},
		{"lossy", "lossy-link robustness sweep (random + bursty loss)", runLossy},
		{"handover", "mid-run base-station handover via forwarding-table reroute", runHandover},
		{"flap", "flapping link: timed outages on the bottleneck edge", runFlap},
		{"autoroute", "policy-driven failover/failback across a base-station outage", runAutoRoute},
		{"flapstorm", "shortest-path routing under a flap storm with a sub-convergence blip", runFlapStorm},
		{"targeted", "targeted attack on one flow: victim vs bystander degradation", runTargeted},
		{"greedy", "greedy sender ignoring brakes: stolen bandwidth per scheme", runGreedy},
		{"shortflows", "open-loop web-like short flows: FCT and slowdown per scheme", runShortFlows},
		{"video", "ABR video client: bitrate/rebuffer/switch QoE per scheme", runVideo},
		{"rpc", "request-response RPC clients vs a bulk flow: per-call FCT", runRPC},
		{"sharded", "sharded-execution ring at 1/2/4 shards: per-flow results must match", runSharded},
		{"hybrid", "fluid background scaling 0 -> 1M users vs packet-level ABR/RPC foreground", runHybrid},
		{"schemes", "registered schemes and qdisc kinds", runSchemes},
	}
}

func run() error {
	if *scenario != "" {
		return runScenarioFile(*scenario)
	}
	exps := experiments()
	if *expName == "list" {
		for _, e := range exps {
			fmt.Printf("%-10s %s\n", e.name, e.desc)
		}
		return nil
	}
	for _, e := range exps {
		if e.name == *expName {
			return e.fn()
		}
	}
	return fmt.Errorf("unknown experiment %q (try -exp list)", *expName)
}

func runTable1() error {
	bars, err := exp.Fig9Bars(schemeList(), nil, dur(), *seed)
	if err != nil {
		return err
	}
	rows := exp.SummaryTable(bars)
	fmt.Printf("%-14s %10s %16s\n", "Scheme", "Norm Tput", "Norm Delay (95%)")
	for _, r := range rows {
		fmt.Printf("%-14s %10.2f %16.2f\n", r.Scheme, r.NormTput, r.NormDelay)
	}
	return nil
}

func runFig1() error {
	runsOut, err := exp.Fig1Timeseries(*seed)
	if err != nil {
		return err
	}
	for _, r := range runsOut {
		fmt.Printf("## %s\n%v\n", r.Scheme, r.Summary)
		fmt.Println("t(s)  tput(Mbps)  qdelay(ms)")
		for i := range r.Tput.Times {
			if i%5 != 0 {
				continue
			}
			fmt.Printf("%5.1f %10.2f %10.1f\n", r.Tput.Times[i], r.Tput.Values[i], r.QDelay.Values[i])
		}
	}
	return nil
}

func runFig2() error {
	r, err := exp.Fig2FeedbackMode(*seed)
	if err != nil {
		return err
	}
	fmt.Printf("dequeue feedback: %v  (p95 queuing %.0f ms)\n", r.Dequeue, r.QDelayP95Dequeue)
	fmt.Printf("enqueue feedback: %v  (p95 queuing %.0f ms)\n", r.Enqueue, r.QDelayP95Enqueue)
	fmt.Printf("enqueue/dequeue p95 queuing-delay ratio: %.2fx (paper: ~2x)\n",
		r.QDelayP95Enqueue/r.QDelayP95Dequeue)
	return nil
}

func runFig3() error {
	for _, ai := range []bool{false, true} {
		r, err := exp.Fig3Fairness(ai, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("additive increase=%v: Jain index (all 5 active) = %.3f\n", ai, r.JainAllActive)
	}
	return nil
}

func runFig4() error {
	r, err := exp.Fig4InterACK(*seed)
	if err != nil {
		return err
	}
	fmt.Printf("samples: %d, fitted slope %.3f ms/frame, theory S/R %.3f ms/frame\n",
		len(r.Samples), r.FittedSlopeMs, r.TheorySlopeMs)
	var batches []int
	for b := range r.MeanTIA {
		batches = append(batches, b)
	}
	sort.Ints(batches)
	for _, b := range batches {
		fmt.Printf("batch=%2d mean TIA=%6.2f ms\n", b, r.MeanTIA[b])
	}
	return nil
}

func runFig5() error {
	pts, err := exp.Fig5RatePrediction(*seed)
	if err != nil {
		return err
	}
	fmt.Print(exp.FormatFig5(pts))
	fmt.Printf("worst backlogged error: %.1f%% (paper: within 5%%)\n",
		exp.Fig5MaxErrorBacklogged(pts)*100)
	return nil
}

func runFig6() error {
	r, err := exp.Fig6NonABCBottleneck(*seed)
	if err != nil {
		return err
	}
	fmt.Printf("tracking error vs ideal: %.1f%%, p95 queuing delay %.0f ms\n",
		r.TrackError*100, r.QDelayP95)
	fmt.Println("t(s)  tput(Mbps)  wabc  wcubic  wireless(Mbps)")
	for i := range r.WABC.Times {
		if i%10 != 0 {
			continue
		}
		fmt.Printf("%5.1f %10.2f %6.0f %7.0f %8.1f\n",
			r.WABC.Times[i], r.Tput.Values[min(i, len(r.Tput.Values)-1)],
			r.WABC.Values[i], r.WCubic.Values[i], r.WirelessRate.Values[i])
	}
	return nil
}

func runFig7() error {
	r, err := exp.Fig7Coexistence(*seed)
	if err != nil {
		return err
	}
	fmt.Printf("steady throughputs (Mbps): %v\n", r.SteadyTput)
	fmt.Printf("Jain=%.3f  ABC queue p95=%.0f ms  Cubic queue p95=%.0f ms\n",
		r.Jain, r.ABCQDelayP95, r.CubicQDelayP95)
	return nil
}

func runFig8() error {
	for kind, label := range map[exp.ScatterKind]string{
		exp.Downlink: "downlink", exp.Uplink: "uplink", exp.UplinkDownlink: "uplink+downlink",
	} {
		sums, err := exp.Fig8Scatter(kind, schemeList(), dur(), *seed)
		if err != nil {
			return err
		}
		fmt.Printf("## %s\n", label)
		for _, s := range sums {
			fmt.Println(s)
		}
	}
	return nil
}

func runFig9() error {
	bars, err := exp.Fig9Bars(schemeList(), nil, dur(), *seed)
	if err != nil {
		return err
	}
	printBars(bars)
	return nil
}

func printBars(bars *exp.BarsResult) {
	fmt.Printf("%-14s %8s %12s %12s\n", "Scheme", "AvgUtil", "AvgMean(ms)", "AvgP95(ms)")
	for _, sch := range bars.Schemes {
		u, m, p := bars.Average(sch)
		fmt.Printf("%-14s %7.1f%% %12.0f %12.0f\n", sch, u*100, m, p)
	}
}

func runFig10() error {
	sums, err := exp.Fig10WiFi(*users, exp.AlternatingMCS(*seed), dur(), *seed)
	if err != nil {
		return err
	}
	for _, s := range sums {
		fmt.Println(s)
	}
	return nil
}

func runFig11() error {
	r, err := exp.Fig11CrossTraffic(*seed)
	if err != nil {
		return err
	}
	fmt.Printf("tracking error vs ideal: %.1f%%\n", r.TrackError*100)
	fmt.Println("t(s)  tput(Mbps)  ideal(Mbps)")
	for i := range r.Ideal.Times {
		if i%4 != 0 || i >= len(r.Tput.Values) {
			continue
		}
		fmt.Printf("%5.1f %10.2f %10.1f\n", r.Ideal.Times[i], r.Tput.Values[i], r.Ideal.Values[i])
	}
	return nil
}

func runFig12() error {
	cfg := exp.DefaultFig12Config()
	cfg.Runs = *runs
	cfg.Duration = dur()
	cfg.Seed = *seed
	for _, pol := range []string{"maxmin", "zombie"} {
		pts, err := exp.Fig12WeightPolicy(pol, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("## %s\n", pol)
		for _, p := range pts {
			fmt.Printf("load=%5.1f%%  ABC %5.2f±%.2f Mbps   Cubic %5.2f±%.2f Mbps\n",
				p.OfferedLoad*100, p.ABCMean, p.ABCStd, p.CubicMean, p.CubicStd)
		}
	}
	return nil
}

func runFig13() error {
	r, err := exp.Fig13AppLimited(50, 1.0, dur(), *seed)
	if err != nil {
		return err
	}
	fmt.Printf("util=%.1f%%  backlogged=%.2f Mbps  app-limited agg=%.2f Mbps  p95 queuing=%.0f ms\n",
		r.Utilization*100, r.BackloggedTputMbps, r.AppLimitedTputMbps, r.QDelayP95)
	return nil
}

func runFig14() error {
	sums, err := exp.Fig10WiFi(1, exp.BrownianMCS(*seed), dur(), *seed)
	if err != nil {
		return err
	}
	for _, s := range sums {
		fmt.Println(s)
	}
	return nil
}

func runFig15() error {
	bars, err := exp.Fig9Bars(schemeList(), nil, dur(), *seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %12s\n", "Scheme", "AvgMean(ms)")
	for _, sch := range bars.Schemes {
		_, m, _ := bars.Average(sch)
		fmt.Printf("%-14s %12.0f\n", sch, m)
	}
	return nil
}

func runFig16() error {
	bars, err := exp.Fig9Bars(exp.ExplicitSchemes, nil, dur(), *seed)
	if err != nil {
		return err
	}
	printBars(bars)
	return nil
}

func runFig17() error {
	rs, err := exp.Fig17SquareWave(schemeList(), *seed)
	if err != nil {
		return err
	}
	for _, r := range rs {
		fmt.Printf("%-6s util=%.1f%%  p95 queuing=%.0f ms\n",
			r.Scheme, r.Summary.Utilization*100, r.QDelayP95)
	}
	return nil
}

func runFig18() error {
	out, err := exp.Fig18RTTSweep(schemeList(), dur(), *seed)
	if err != nil {
		return err
	}
	rtts := []int{20, 50, 100, 200}
	for _, rtt := range rtts {
		fmt.Printf("## RTT %d ms\n", rtt)
		for sch, s := range out[rtt] {
			fmt.Printf("%-14s util=%5.1f%%  p95=%6.0f ms\n", sch, s.Utilization*100, s.P95Ms)
		}
	}
	return nil
}

func runJain() error {
	for _, n := range []int{2, 4, 8, 16, 32} {
		idx, err := exp.JainFairness(n, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("flows=%2d  Jain index=%.3f\n", n, idx)
	}
	return nil
}

func runPKABC() error {
	r, err := exp.PKABC(dur(), *seed)
	if err != nil {
		return err
	}
	fmt.Printf("ABC:    %v (p95 queuing %.0f ms)\n", r.ABC, r.QDelayP95ABC)
	fmt.Printf("PK-ABC: %v (p95 queuing %.0f ms)\n", r.PK, r.QDelayP95PK)
	return nil
}

func runAblations() error {
	sweeps := []struct {
		name string
		fn   func(sim.Time, int64) ([]exp.AblationPoint, error)
	}{
		{"delay threshold dt", exp.AblateDelayThreshold},
		{"drain constant delta", exp.AblateDelta},
		{"target utilization eta", exp.AblateEta},
		{"token bucket limit", exp.AblateTokenLimit},
		{"measurement window T", exp.AblateWindow},
	}
	for _, sw := range sweeps {
		pts, err := sw.fn(dur(), *seed)
		if err != nil {
			return err
		}
		fmt.Printf("## %s\n", sw.name)
		for _, p := range pts {
			fmt.Printf("%-12s=%7.2f  util=%5.1f%%  qdelay mean=%6.1f ms  p95=%6.1f ms\n",
				p.Param, p.Value, p.Util*100, p.MeanMs, p.P95Ms)
		}
	}
	return nil
}

func runProxied() error {
	std, prox, err := exp.ProxiedComparison(dur(), *seed)
	if err != nil {
		return err
	}
	fmt.Println(std)
	fmt.Println(prox)
	return nil
}

func runStability() error {
	r := exp.StabilityRegion()
	fmt.Printf("empirical boundary: delta/tau = %.2f (Theorem 3.1: 2/3)\n", r.Boundary)
	for _, p := range r.Points {
		mark := "unstable"
		if p.Converged {
			mark = "stable"
		}
		fmt.Printf("delta/tau=%.2f  %-8s  peak-to-peak=%.4f s\n", p.DeltaOverTau, mark, p.PeakToPeak)
	}
	return nil
}

func runUplink() error {
	out, err := exp.UplinkCongestedACK(schemeList(), 2, dur(), *seed)
	if err != nil {
		return err
	}
	var names []string
	for sch := range out {
		names = append(names, sch)
	}
	sort.Strings(names)
	fmt.Printf("%-14s %8s %10s %12s %12s %10s\n",
		"Scheme", "DownUtil", "Down Mbps", "p95 q (ms)", "AckDrops", "Up Mbps")
	for _, sch := range names {
		r := out[sch]
		fmt.Printf("%-14s %7.1f%% %10.2f %12.0f %12d %10.2f\n",
			sch, r.Down.Utilization*100, r.Down.TputMbps, r.QDelayP95, r.AckPathDrops, r.UpTputMbps)
	}
	return nil
}

func runMesh() error {
	out, err := exp.MeshSharedJunction(schemeList(), dur(), *seed)
	if err != nil {
		return err
	}
	var names []string
	for sch := range out {
		names = append(names, sch)
	}
	sort.Strings(names)
	for _, sch := range names {
		fmt.Print(exp.FormatMeshResult(sch, out[sch]))
	}
	return nil
}

func runMarkedUplink() error {
	out, err := exp.MarkedUplink(schemeList(), 2, dur(), *seed)
	if err != nil {
		return err
	}
	var names []string
	for sch := range out {
		names = append(names, sch)
	}
	sort.Strings(names)
	fmt.Printf("%-14s %8s %10s %12s %10s %10s %10s\n",
		"Scheme", "DownUtil", "Down Mbps", "p95 q (ms)", "RevBrakes", "Demoted", "Up Mbps")
	for _, sch := range names {
		r := out[sch]
		fmt.Printf("%-14s %7.1f%% %10.2f %12.0f %10d %10d %10.2f\n",
			sch, r.Down.Utilization*100, r.Down.TputMbps, r.QDelayP95,
			r.ReverseBrakes, r.EchoDemoted, r.UpTputMbps)
	}
	return nil
}

func runHeteroRTT() error {
	list := schemeList()
	if len(list) == 0 {
		list = []string{"ABC", "Cubic"}
	}
	for _, sch := range list {
		r, err := exp.HeteroRTTFairness(sch, nil, dur(), *seed)
		if err != nil {
			return err
		}
		fmt.Printf("## %s (Jain=%.3f, worst-flow p95 queuing %.0f ms)\n", sch, r.Jain, r.MaxQDelayP95)
		for i, ms := range r.RTTsMs {
			fmt.Printf("rtt=%3d ms  %6.2f Mbps\n", ms, r.TputMbps[i])
		}
	}
	return nil
}

func runLossy() error {
	for _, bursty := range []bool{false, true} {
		pts, err := exp.LossyLink(schemeList(), nil, bursty, dur(), *seed)
		if err != nil {
			return err
		}
		kind := "random"
		if bursty {
			kind = "bursty"
		}
		fmt.Printf("## %s loss\n", kind)
		for _, p := range pts {
			fmt.Printf("%-14s loss=%5.3f  tput=%6.2f Mbps  p95=%6.0f ms  dropped=%d\n",
				p.Scheme, p.LossRate, p.TputMbps, p.P95Ms, p.ImpairDrops)
		}
	}
	return nil
}

func runHandover() error {
	out, err := exp.Handover(schemeList(), dur(), *seed)
	if err != nil {
		return err
	}
	var names []string
	for sch := range out {
		names = append(names, sch)
	}
	sort.Strings(names)
	for _, sch := range names {
		fmt.Print(exp.FormatHandoverResult(sch, out[sch]))
	}
	for _, ev := range out[names[0]].Events {
		fmt.Printf("event @%7.0f ms  %-10s %s\n", ev.AtMs, ev.Kind, ev.Target)
	}
	return nil
}

func runFlap() error {
	out, err := exp.LinkFlap(schemeList(), dur(), *seed)
	if err != nil {
		return err
	}
	var names []string
	for sch := range out {
		names = append(names, sch)
	}
	sort.Strings(names)
	for _, sch := range names {
		fmt.Print(exp.FormatFlapResult(sch, out[sch]))
	}
	return nil
}

func runAutoRoute() error {
	out, err := exp.AutoRoute(schemeList(), dur(), *seed)
	if err != nil {
		return err
	}
	var names []string
	for sch := range out {
		names = append(names, sch)
	}
	sort.Strings(names)
	for _, sch := range names {
		fmt.Print(exp.FormatAutoRouteResult(sch, out[sch]))
	}
	for _, rc := range out[names[0]].RouteChanges {
		printRouteChange(rc)
	}
	return nil
}

func runFlapStorm() error {
	out, err := exp.FlapStorm(schemeList(), dur(), *seed)
	if err != nil {
		return err
	}
	var names []string
	for sch := range out {
		names = append(names, sch)
	}
	sort.Strings(names)
	for _, sch := range names {
		fmt.Print(exp.FormatFlapStormResult(sch, out[sch]))
	}
	for _, rc := range out[names[0]].RouteChanges {
		printRouteChange(rc)
	}
	return nil
}

func printRouteChange(rc exp.RouteChangeResult) {
	dir := "data"
	if rc.Ack {
		dir = "ack"
	}
	fmt.Printf("route @%7.0f ms  flow %d %-4s -> %s\n",
		rc.AtMs, rc.Flow, dir, strings.Join(rc.Path, ">"))
}

func runTargeted() error {
	out, err := exp.Targeted(schemeList(), dur(), *seed)
	if err != nil {
		return err
	}
	var names []string
	for sch := range out {
		names = append(names, sch)
	}
	sort.Strings(names)
	for _, sch := range names {
		fmt.Print(exp.FormatTargetedResult(sch, out[sch]))
	}
	return nil
}

func runGreedy() error {
	out, err := exp.Greedy(schemeList(), dur(), *seed)
	if err != nil {
		return err
	}
	var names []string
	for sch := range out {
		names = append(names, sch)
	}
	sort.Strings(names)
	for _, sch := range names {
		fmt.Print(exp.FormatGreedyResult(sch, out[sch]))
	}
	return nil
}

func runShortFlows() error {
	rows, err := exp.ShortFlows(schemeList(), *traceNm, dur(), *seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %8s %12s %12s %10s %10s %10s\n",
		"Scheme", "Flows", "FCT mean", "FCT p95", "Slowdown", "q p95(ms)", "Bulk Mbps")
	for _, r := range rows {
		fmt.Printf("%-14s %8d %9.0f ms %9.0f ms %10.2f %10.0f %10.2f\n",
			r.Scheme, r.FCT.Count, r.FCT.MeanMs, r.FCT.P95Ms, r.FCT.P95Slowdown,
			r.QDelayP95, r.LongTputMbps)
	}
	return nil
}

func runVideo() error {
	rows, err := exp.VideoExp(schemeList(), *traceNm, dur(), *seed)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%-14s %v  queue p95=%4.0f ms\n", r.Scheme, r.QoE, r.QDelayP95)
	}
	return nil
}

func runRPC() error {
	rows, err := exp.RPCExp(schemeList(), *traceNm, dur(), *seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %8s %12s %12s %10s %10s\n",
		"Scheme", "Calls", "FCT mean", "FCT p95", "q p95(ms)", "Bulk Mbps")
	for _, r := range rows {
		fmt.Printf("%-14s %8d %9.0f ms %9.0f ms %10.0f %10.2f\n",
			r.Scheme, r.Calls, r.FCT.MeanMs, r.FCT.P95Ms, r.QDelayP95, r.LongTputMbps)
	}
	return nil
}

func runHybrid() error {
	fmt.Printf("%10s %10s %8s %10s %10s %10s %9s %10s\n",
		"Users", "BgMbps", "BgShare", "VideoKbps", "RPC mean", "RPC p95", "q p95(ms)", "wall")
	for _, users := range exp.HybridScales {
		t0 := time.Now()
		cells, err := exp.Hybrid("", []int{users}, dur(), *seed)
		if err != nil {
			return err
		}
		c := cells[0]
		fmt.Printf("%10d %10.3f %7.1f%% %10.0f %7.0f ms %7.0f ms %9.0f %10v\n",
			c.Users, c.BgOfferedMbps, c.BgMeanShare*100, c.VideoQoE.MeanKbps,
			c.RPCFCT.MeanMs, c.RPCFCT.P95Ms, c.QDelayP95,
			time.Since(t0).Round(time.Millisecond))
	}
	return nil
}

func runSharded() error {
	var base *exp.ShardedMeshResult
	for _, shards := range []int{1, 2, 4} {
		r, err := exp.ShardedMesh(shards, dur(), *seed)
		if err != nil {
			return err
		}
		fmt.Printf("shards=%d (drops=%d)\n", r.Shards, r.Drops)
		fmt.Printf("  %-8s %-12s %10s %10s %10s %6s\n",
			"Scheme", "Path", "Mbps", "mean(ms)", "p95(ms)", "lost")
		for _, f := range r.Flows {
			fmt.Printf("  %-8s %-12s %10.2f %10.1f %10.1f %6d\n",
				f.Scheme, f.Path, f.TputMbps, f.MeanMs, f.P95Ms, f.Lost)
		}
		if base == nil {
			base = r
			continue
		}
		for i := range r.Flows {
			got, want := r.Flows[i], base.Flows[i]
			got.Scheme, got.Path = want.Scheme, want.Path
			if got != want {
				return fmt.Errorf("flow %d diverged between shards=1 and shards=%d", i, r.Shards)
			}
		}
		fmt.Printf("  identical to shards=1\n")
	}
	return nil
}

func runSchemes() error {
	fmt.Println("schemes:", strings.Join(cc.SchemeNames(), " "))
	fmt.Println("qdiscs: ", strings.Join(qdisc.Kinds(), " "))
	return nil
}

func runScenarioFile(path string) error {
	sc, err := exp.LoadScenario(path)
	if err != nil {
		return err
	}
	spec, err := sc.Compile()
	if err != nil {
		return err
	}
	res, pooled, err := exp.Run(spec)
	if err != nil {
		return err
	}
	if sc.Name != "" {
		fmt.Printf("## %s\n", sc.Name)
	}
	fmt.Printf("%-4s %-14s %-12s %10s %12s %12s %8s\n",
		"Flow", "Scheme", "Route", "Tput Mbps", "delay p95", "queue p95", "lost")
	for i := range res.Flows {
		f := &res.Flows[i]
		route := "forward"
		if spec.Flows[i].Dir == exp.Reverse {
			route = "reverse"
		}
		if len(spec.Flows[i].Path) > 0 {
			route = strings.Join(spec.Flows[i].Path, ">")
		}
		fmt.Printf("%-4d %-14s %-12s %10.2f %9.0f ms %9.0f ms %8d\n",
			i, f.Scheme, route, f.TputMbps, f.Delay.P95(), f.QDelay.P95(), f.Lost)
	}
	for i := range res.Flows {
		f := &res.Flows[i]
		switch a := f.App.(type) {
		case *app.ABR:
			fmt.Printf("flow %d video QoE: %v\n", i, a.QoE())
		case *app.RPC:
			fmt.Printf("flow %d rpc: calls=%d  FCT mean %.0f ms, p95 %.0f ms\n",
				i, a.Calls, a.FCT().Mean(), a.FCT().P95())
		}
	}
	for i := range res.Workloads {
		w := &res.Workloads[i]
		fmt.Printf("workload %d: %v  (spawned=%d completed=%d active=%d rejected=%d)\n",
			i, w.Stats(), w.Spawned, w.Completed, w.Active, w.Rejected)
	}
	for _, bg := range res.Backgrounds {
		fmt.Printf("background %s (%s, %d flows): offered %.1f MB, served %.1f MB, dropped %.1f MB, mean share %.1f%%\n",
			bg.Edge, bg.Kind, bg.Flows, bg.OfferedMB, bg.ServedMB, bg.DroppedMB, bg.MeanShare*100)
	}
	if res.Utilization > 0 {
		fmt.Printf("utilization: %.1f%%\n", res.Utilization*100)
	}
	fmt.Printf("pooled delay: mean %.0f ms, p95 %.0f ms\n", pooled.Mean(), pooled.P95())
	if res.ImpairDrops > 0 {
		fmt.Printf("impairment drops: %d\n", res.ImpairDrops)
	}
	for _, ev := range res.Events {
		fmt.Printf("event @%7.0f ms  %-10s %s\n", ev.AtMs, ev.Kind, ev.Target)
	}
	for _, rc := range res.RouteChanges {
		printRouteChange(rc)
	}
	if res.LinkDownDrops > 0 {
		fmt.Printf("link-down drops: %d\n", res.LinkDownDrops)
	}
	if res.Drops > 0 {
		if len(spec.Events) > 0 {
			fmt.Printf("unrouted drops: %d (includes packets in flight across reroutes)\n", res.Drops)
		} else {
			fmt.Printf("UNROUTED DROPS: %d (wiring bug in the scenario)\n", res.Drops)
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
