package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"abc/internal/sim"
	"abc/internal/trace"
)

// namedTraces is the generator's full catalogue.
var namedTraces = []string{
	"Verizon1", "Verizon2", "Verizon3", "Verizon4",
	"TMobile1", "TMobile2", "ATT1", "ATT2",
}

// writeTraceFile generates a trace and writes it in Mahimahi format.
func writeTraceFile(t *testing.T, tr *trace.Trace) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), tr.Name+".trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestNamedTraceRoundTrip: every named trace the generator can emit must
// re-read through the inspector path with identical mean-rate and
// duration statistics (the Mahimahi format is millisecond-exact, and the
// named traces are millisecond-aligned).
func TestNamedTraceRoundTrip(t *testing.T) {
	for _, name := range namedTraces {
		orig, err := trace.NamedCellular(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := readTrace(writeTraceFile(t, orig))
		if err != nil {
			t.Fatalf("%s: inspector failed to re-read generated trace: %v", name, err)
		}
		if got.Period() != orig.Period() {
			t.Errorf("%s: duration changed across the round trip: %v != %v", name, got.Period(), orig.Period())
		}
		if got.Opportunities() != orig.Opportunities() {
			t.Errorf("%s: opportunity count changed: %d != %d", name, got.Opportunities(), orig.Opportunities())
		}
		if g, w := got.AvgRateBps(), orig.AvgRateBps(); g != w {
			t.Errorf("%s: mean rate changed: %.0f != %.0f bps", name, g, w)
		}
	}
}

// TestCustomAndConstTraceRoundTrip covers the generator's -mean and
// -const paths: the re-read mean rate must match the requested
// parameters (to the tolerance the stochastic model gives the original).
func TestCustomAndConstTraceRoundTrip(t *testing.T) {
	konst := trace.Constant("const", 24e6)
	got, err := readTrace(writeTraceFile(t, konst))
	if err != nil {
		t.Fatal(err)
	}
	if g := got.AvgRateBps(); math.Abs(g-24e6)/24e6 > 0.01 {
		t.Errorf("const trace mean rate %.0f bps, want 24e6 within 1%%", g)
	}

	custom := trace.Cellular("custom", trace.CellParams{
		Seed: 7, Duration: 60 * sim.Second, MeanMbps: 12, Sigma: 0.2, OutageProb: 0.02,
	})
	got, err = readTrace(writeTraceFile(t, custom))
	if err != nil {
		t.Fatal(err)
	}
	if g, w := got.AvgRateBps(), custom.AvgRateBps(); g != w {
		t.Errorf("custom trace mean rate changed across round trip: %.0f != %.0f bps", g, w)
	}
	if got.Period() != custom.Period() {
		t.Errorf("custom trace duration changed: %v != %v", got.Period(), custom.Period())
	}
}

// TestInspectOutput exercises doInspect end to end on a generated file.
func TestInspectOutput(t *testing.T) {
	orig, err := trace.NamedCellular("Verizon1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := doInspect(writeTraceFile(t, orig), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"period:", "opportunities:", "average rate:", "1s-window min:", "1s-window max:"} {
		if !strings.Contains(out, want) {
			t.Errorf("inspect output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "period:        60.000 s") {
		t.Errorf("inspect did not report the 60 s period:\n%s", out)
	}
}

// TestRunFlagPaths drives the flag-dispatched run() itself for the
// generator paths, so the command wiring has coverage too.
func TestRunFlagPaths(t *testing.T) {
	defer func() { *name, *constBW, *inspect = "", 0, "" }()
	*name = "ATT1"
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Parse("att1", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("run -name output does not parse: %v", err)
	}
	want, _ := trace.NamedCellular("ATT1")
	if tr.AvgRateBps() != want.AvgRateBps() {
		t.Errorf("run -name ATT1 mean rate %.0f, want %.0f", tr.AvgRateBps(), want.AvgRateBps())
	}

	*name = ""
	*inspect = writeTraceFile(t, want)
	buf.Reset()
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "average rate:") {
		t.Errorf("run -inspect produced no statistics:\n%s", buf.String())
	}
}
