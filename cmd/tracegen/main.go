// Command tracegen generates and inspects Mahimahi-format delivery-
// opportunity traces.
//
// Usage:
//
//	tracegen -name Verizon1 > verizon1.trace      # named synthetic trace
//	tracegen -mean 12 -sigma 0.2 -seed 7 -dur 60  # custom cellular trace
//	tracegen -const 24                            # constant 24 Mbit/s
//	tracegen -inspect verizon1.trace              # print trace statistics
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"abc/internal/sim"
	"abc/internal/trace"
)

var (
	name    = flag.String("name", "", "named synthetic trace (Verizon1..4, TMobile1..2, ATT1..2)")
	mean    = flag.Float64("mean", 0, "custom trace: mean rate in Mbit/s")
	sigma   = flag.Float64("sigma", 0.2, "custom trace: log-rate walk sigma")
	outage  = flag.Float64("outage", 0.02, "custom trace: outage probability per 100 ms")
	seed    = flag.Int64("seed", 1, "custom trace: RNG seed")
	durSec  = flag.Float64("dur", 60, "trace duration in seconds")
	constBW = flag.Float64("const", 0, "constant-rate trace in Mbit/s")
	inspect = flag.String("inspect", "", "read a trace file and print statistics")
)

func main() {
	flag.Parse()
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	switch {
	case *inspect != "":
		return doInspect(*inspect, w)
	case *name != "":
		tr, err := trace.NamedCellular(*name)
		if err != nil {
			return err
		}
		_, err = tr.WriteTo(w)
		return err
	case *constBW > 0:
		tr := trace.Constant("const", *constBW*1e6)
		_, err := tr.WriteTo(w)
		return err
	case *mean > 0:
		tr := trace.Cellular("custom", trace.CellParams{
			Seed:       *seed,
			Duration:   sim.FromSeconds(*durSec),
			MeanMbps:   *mean,
			Sigma:      *sigma,
			OutageProb: *outage,
		})
		_, err := tr.WriteTo(w)
		return err
	}
	flag.Usage()
	return fmt.Errorf("nothing to do")
}

func doInspect(path string, w io.Writer) error {
	tr, err := readTrace(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "period:        %.3f s\n", tr.Period().Seconds())
	fmt.Fprintf(w, "opportunities: %d per period\n", tr.Opportunities())
	fmt.Fprintf(w, "average rate:  %.2f Mbit/s\n", tr.AvgRateBps()/1e6)
	// One-second windowed min/max rates.
	minR, maxR := -1.0, 0.0
	for t := sim.Second; t <= tr.Period(); t += sim.Second {
		r := tr.CapacityBps(t, sim.Second) / 1e6
		if minR < 0 || r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	fmt.Fprintf(w, "1s-window min: %.2f Mbit/s\n", minR)
	fmt.Fprintf(w, "1s-window max: %.2f Mbit/s\n", maxR)
	return nil
}

// readTrace is the inspector's input path: parse a Mahimahi trace file.
func readTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Parse(path, f)
}
