// Command abcreport runs the full evaluation sweep — every table and
// figure — and prints an EXPERIMENTS.md-style report with the paper's
// headline claims checked against the measured results.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"abc/internal/exp"
	"abc/internal/obs"
	"abc/internal/prof"
	"abc/internal/sim"
)

var (
	seed        = flag.Int64("seed", 1, "simulation seed")
	fast        = flag.Bool("fast", false, "shorter runs (CI-sized)")
	pprofOut    = flag.String("pprof", "", "profile the sweep: CPU to <prefix>.cpu.pprof, heap to <prefix>.heap.pprof")
	rtTrace     = flag.String("runtime-trace", "", "write a runtime execution trace (go tool trace) to this file")
	metricsAddr = flag.String("metrics", "", "serve live sweep metrics on this address (e.g. 127.0.0.1:9090 or :0) and print progress to stderr")
)

func main() {
	flag.Parse()
	stop, err := prof.Start(prof.Config{Pprof: *pprofOut, Trace: *rtTrace})
	if err != nil {
		fmt.Fprintln(os.Stderr, "abcreport:", err)
		os.Exit(1)
	}
	if *metricsAddr != "" {
		addr, err := obs.Serve(*metricsAddr, obs.Default())
		if err != nil {
			fmt.Fprintln(os.Stderr, "abcreport:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[obs] abcreport: serving metrics on http://%s/metrics\n", addr)
		exp.EnableMetrics(obs.Default(), sim.Second)
		defer obs.StartProgress(os.Stderr, obs.Default(), 5*time.Second)()
	}
	err = run()
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "abcreport:", err)
		os.Exit(1)
	}
}

func run() error {
	dur := 60 * sim.Second
	wifiDur := 45 * sim.Second
	if *fast {
		dur = 20 * sim.Second
		wifiDur = 15 * sim.Second
	}

	fmt.Println("# ABC reproduction report")
	fmt.Println()

	fmt.Println("## Fig. 9 / Table 1 — cellular corpus")
	bars, err := exp.Fig9Bars(nil, nil, dur, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %8s %12s %12s %10s %10s\n",
		"Scheme", "AvgUtil", "Mean(ms)", "P95(ms)", "NormTput", "NormP95")
	rows := exp.SummaryTable(bars)
	for i, sch := range bars.Schemes {
		u, m, p := bars.Average(sch)
		fmt.Printf("%-14s %7.1f%% %12.0f %12.0f %10.2f %10.2f\n",
			sch, u*100, m, p, rows[i].NormTput, rows[i].NormDelay)
	}
	fmt.Println()

	fmt.Println("## Fig. 2 — feedback-mode ablation")
	f2, err := exp.Fig2FeedbackMode(*seed)
	if err != nil {
		return err
	}
	fmt.Printf("dequeue p95 queuing %.0f ms, enqueue %.0f ms (ratio %.2fx; paper ~2x)\n\n",
		f2.QDelayP95Dequeue, f2.QDelayP95Enqueue, f2.QDelayP95Enqueue/f2.QDelayP95Dequeue)

	fmt.Println("## Fig. 3 — additive increase and fairness")
	for _, ai := range []bool{false, true} {
		r, err := exp.Fig3Fairness(ai, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("AI=%v: Jain=%.3f\n", ai, r.JainAllActive)
	}
	fmt.Println()

	fmt.Println("## Fig. 4/5 — Wi-Fi estimator")
	f4, err := exp.Fig4InterACK(*seed)
	if err != nil {
		return err
	}
	fmt.Printf("TIA slope %.3f ms/frame (S/R = %.3f)\n", f4.FittedSlopeMs, f4.TheorySlopeMs)
	f5, err := exp.Fig5RatePrediction(*seed)
	if err != nil {
		return err
	}
	fmt.Printf("worst backlogged prediction error %.1f%% (paper: 5%%)\n\n",
		exp.Fig5MaxErrorBacklogged(f5)*100)

	fmt.Println("## Fig. 6/11 — non-ABC bottlenecks")
	f6, err := exp.Fig6NonABCBottleneck(*seed)
	if err != nil {
		return err
	}
	fmt.Printf("fig6 tracking error %.1f%%\n", f6.TrackError*100)
	f11, err := exp.Fig11CrossTraffic(*seed)
	if err != nil {
		return err
	}
	fmt.Printf("fig11 tracking error %.1f%%\n\n", f11.TrackError*100)

	fmt.Println("## Fig. 7/12 — coexistence with non-ABC flows")
	f7, err := exp.Fig7Coexistence(*seed)
	if err != nil {
		return err
	}
	fmt.Printf("fig7 Jain=%.3f ABC-queue p95=%.0f ms Cubic-queue p95=%.0f ms\n",
		f7.Jain, f7.ABCQDelayP95, f7.CubicQDelayP95)
	cfg := exp.DefaultFig12Config()
	cfg.Seed = *seed
	if *fast {
		cfg.Runs, cfg.Duration = 2, 20*sim.Second
	} else {
		cfg.Runs = 5
	}
	for _, pol := range []string{"maxmin", "zombie"} {
		pts, err := exp.Fig12WeightPolicy(pol, cfg)
		if err != nil {
			return err
		}
		for _, p := range pts {
			fmt.Printf("fig12 %-7s load=%5.1f%%: ABC %5.2f±%.2f  Cubic %5.2f±%.2f Mbps\n",
				pol, p.OfferedLoad*100, p.ABCMean, p.ABCStd, p.CubicMean, p.CubicStd)
		}
	}
	fmt.Println()

	fmt.Println("## Fig. 10/14 — Wi-Fi full stack")
	for _, setup := range []struct {
		label string
		users int
		mcs   func(sim.Time) int
	}{
		{"fig10 single user", 1, exp.AlternatingMCS(*seed)},
		{"fig10 two users", 2, exp.AlternatingMCS(*seed)},
		{"fig14 brownian", 1, exp.BrownianMCS(*seed)},
	} {
		sums, err := exp.Fig10WiFi(setup.users, setup.mcs, wifiDur, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("### %s\n", setup.label)
		for _, s := range sums {
			fmt.Println(s)
		}
	}
	fmt.Println()

	fmt.Println("## Fig. 16/17 — explicit schemes")
	ebars, err := exp.Fig9Bars(exp.ExplicitSchemes, nil, dur, *seed)
	if err != nil {
		return err
	}
	for _, sch := range ebars.Schemes {
		u, _, p := ebars.Average(sch)
		fmt.Printf("%-6s util=%5.1f%% p95=%6.0f ms\n", sch, u*100, p)
	}
	f17, err := exp.Fig17SquareWave(nil, *seed)
	if err != nil {
		return err
	}
	for _, r := range f17 {
		fmt.Printf("fig17 %-6s util=%5.1f%% p95 queuing=%4.0f ms\n",
			r.Scheme, r.Summary.Utilization*100, r.QDelayP95)
	}
	fmt.Println()

	fmt.Println("## Fig. 18 — RTT sensitivity")
	f18, err := exp.Fig18RTTSweep([]string{"ABC", "Cubic+Codel", "Cubic", "BBR"}, dur, *seed)
	if err != nil {
		return err
	}
	for _, rtt := range []int{20, 50, 100, 200} {
		for sch, s := range f18[rtt] {
			fmt.Printf("rtt=%3dms %-12s util=%5.1f%% p95=%6.0f ms\n",
				rtt, sch, s.Utilization*100, s.P95Ms)
		}
	}
	fmt.Println()

	fmt.Println("## Application workloads — short flows / video / RPC")
	appSchemes := []string{"ABC", "Cubic", "BBR"}
	sf, err := exp.ShortFlows(appSchemes, "", dur, *seed)
	if err != nil {
		return err
	}
	for _, r := range sf {
		fmt.Printf("shortflows %-6s flows=%3d FCT mean=%5.0f ms p95=%6.0f ms  q p95=%4.0f ms\n",
			r.Scheme, r.FCT.Count, r.FCT.MeanMs, r.FCT.P95Ms, r.QDelayP95)
	}
	vid, err := exp.VideoExp(appSchemes, "", dur, *seed)
	if err != nil {
		return err
	}
	for _, r := range vid {
		fmt.Printf("video      %-6s %v\n", r.Scheme, r.QoE)
	}
	rpc, err := exp.RPCExp(appSchemes, "", dur, *seed)
	if err != nil {
		return err
	}
	for _, r := range rpc {
		fmt.Printf("rpc        %-6s calls=%3d FCT mean=%5.0f ms p95=%6.0f ms  q p95=%4.0f ms\n",
			r.Scheme, r.Calls, r.FCT.MeanMs, r.FCT.P95Ms, r.QDelayP95)
	}
	fmt.Println()

	fmt.Println("## Dynamic topology — handover / flapping link")
	dynSchemes := []string{"ABC", "Cubic"}
	ho, err := exp.Handover(dynSchemes, dur, *seed)
	if err != nil {
		return err
	}
	for _, sch := range dynSchemes {
		fmt.Printf("handover %s", exp.FormatHandoverResult(sch, ho[sch]))
	}
	fl, err := exp.LinkFlap(dynSchemes, dur, *seed)
	if err != nil {
		return err
	}
	for _, sch := range dynSchemes {
		fmt.Printf("flap     %s", exp.FormatFlapResult(sch, fl[sch]))
	}
	fmt.Println()

	fmt.Println("## Adversarial robustness — targeted attack / greedy sender")
	advSchemes := []string{"ABC", "Cubic"}
	tg, err := exp.Targeted(advSchemes, dur, *seed)
	if err != nil {
		return err
	}
	for _, sch := range advSchemes {
		fmt.Printf("targeted %s", exp.FormatTargetedResult(sch, tg[sch]))
	}
	greedySchemes := []string{"ABC", "XCP", "RCP"}
	gr, err := exp.Greedy(greedySchemes, dur, *seed)
	if err != nil {
		return err
	}
	for _, sch := range greedySchemes {
		fmt.Printf("greedy   %s", exp.FormatGreedyResult(sch, gr[sch]))
	}
	fmt.Println()

	fmt.Println("## Hybrid fluid/packet — foreground vs background scale")
	// Wall time per cell is the hybrid mode's claim: a million fluid
	// users must cost about the same as none. It is measured here and
	// printed, never digested — it is host noise, not simulation output.
	for _, users := range exp.HybridScales {
		t0 := time.Now()
		cells, err := exp.Hybrid("", []int{users}, dur, *seed)
		if err != nil {
			return err
		}
		c := cells[0]
		fmt.Printf("hybrid users=%-8d bg=%6.3f Mbps share=%5.1f%%  video=%4.0f kbps  rpc FCT mean=%5.0f ms p95=%6.0f ms  q p95=%4.0f ms  wall=%v\n",
			c.Users, c.BgOfferedMbps, c.BgMeanShare*100, c.VideoQoE.MeanKbps,
			c.RPCFCT.MeanMs, c.RPCFCT.P95Ms, c.QDelayP95,
			time.Since(t0).Round(time.Millisecond))
	}
	fmt.Println()

	fmt.Println("## §6.5 / §6.6 / Theorem 3.1")
	for _, n := range []int{2, 8, 32} {
		idx, err := exp.JainFairness(n, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("jain n=%2d: %.3f\n", n, idx)
	}
	pk, err := exp.PKABC(dur, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("pk-abc: p95 queuing %.0f -> %.0f ms at util %.1f%% -> %.1f%%\n",
		pk.QDelayP95ABC, pk.QDelayP95PK, pk.ABC.Utilization*100, pk.PK.Utilization*100)
	st := exp.StabilityRegion()
	fmt.Printf("stability boundary: delta/tau = %.2f (theorem: 0.67)\n", st.Boundary)
	return nil
}
