#!/bin/sh
# bench_json.sh [OUTPUT]
#
# Runs the guarded micro-benchmarks (the bench_thresholds.txt set plus
# the fluid sweep pair) and writes one JSON snapshot — ns/op, B/op,
# allocs/op per benchmark, with enough host metadata (cores, GOMAXPROCS,
# go version, commit) to interpret the numbers. The committed BENCH_*.json
# files are these snapshots: compare two to see a perf PR's effect.
#
# Default output: BENCH_<YYYY-MM-DD>.json in the repo root.
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_$(date +%Y-%m-%d).json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

count="${BENCH_COUNT:-5x}"

go test -run '^$' \
    -bench 'BenchmarkSimCore$|BenchmarkPacketChurn$|BenchmarkForwardHop$|BenchmarkTracedHop$|BenchmarkFIBLookup$|BenchmarkWorkloadChurn$|BenchmarkShardedRun$|BenchmarkHybridBackground$' \
    -benchmem -benchtime "$count" . >"$tmp"
go test -run '^$' -bench 'BenchmarkSweepScalar$|BenchmarkSweepGrid$' \
    -benchmem -benchtime "$count" ./internal/fluid/ >>"$tmp"
go test -run '^$' -bench 'BenchmarkEmit$|BenchmarkEmitDisabled$|BenchmarkCounterAdd$' \
    -benchmem -benchtime "$count" ./internal/obs/ >>"$tmp"

gover="$(go env GOVERSION)"
cores="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)"
# GOMAXPROCS defaults to the core count unless overridden in the env.
maxprocs="${GOMAXPROCS:-$cores}"
commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

# A host with fewer cores than GOMAXPROCS oversubscribes the parallel
# benchmarks (sharded runs, worker pools): their numbers measure
# scheduler contention, not the code. Flag the snapshot so nobody
# compares it against a healthy one by accident.
degraded=false
if [ "$cores" -gt 0 ] && [ "$cores" -lt "$maxprocs" ]; then
    degraded=true
    echo "bench_json: WARNING: host has $cores core(s) but GOMAXPROCS=$maxprocs;" \
        "parallel benchmark numbers are degraded and the snapshot is flagged" >&2
fi

awk -v date="$(date +%Y-%m-%d)" -v gover="$gover" -v cores="$cores" \
    -v maxprocs="$maxprocs" -v commit="$commit" -v degraded="$degraded" '
BEGIN {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"go\": \"%s\",\n", gover
    printf "  \"cores\": %d,\n", cores
    printf "  \"gomaxprocs\": %d,\n", maxprocs
    if (degraded == "true") printf "  \"degraded\": true,\n"
    printf "  \"commit\": \"%s\",\n", commit
    printf "  \"benchmarks\": [\n"
    n = 0
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        if ($i == "B/op") bytes = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, ns, (bytes == "" ? 0 : bytes), (allocs == "" ? 0 : allocs)
}
END {
    printf "\n  ]\n}\n"
}' "$tmp" >"$out"

echo "bench_json: wrote $out"
