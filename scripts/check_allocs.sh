#!/bin/sh
# check_allocs.sh BENCH_OUTPUT THRESHOLD_FILE
#
# Fails (exit 1) if any benchmark listed in the threshold file reports
# more allocs/op in the `go test -bench -benchmem` output than its
# committed maximum, or is missing from the output entirely. Keeps the
# zero-alloc event core and packet free-lists from silently rotting.
set -eu

out="$1"
thresholds="$2"

fail=0
while read -r name max; do
    case "$name" in ''|\#*) continue ;; esac
    # Benchmark lines look like:
    #   BenchmarkSimCore    3    8706 ns/op    0 B/op    0 allocs/op
    # (the name may carry a -N GOMAXPROCS suffix).
    line=$(grep -E "^${name}(-[0-9]+)?[[:space:]]" "$out" | head -1 || true)
    if [ -z "$line" ]; then
        echo "check_allocs: $name missing from benchmark output" >&2
        fail=1
        continue
    fi
    got=$(echo "$line" | awk '{for (i = 2; i <= NF; i++) if ($i == "allocs/op") print $(i-1)}')
    if [ -z "$got" ]; then
        echo "check_allocs: $name has no allocs/op column (run with -benchmem)" >&2
        fail=1
        continue
    fi
    if [ "$got" -gt "$max" ]; then
        echo "check_allocs: $name allocs/op regressed: $got > $max (committed max)" >&2
        fail=1
    else
        echo "check_allocs: $name ok: $got <= $max allocs/op"
    fi
done < "$thresholds"

exit $fail
