// Package abc is a from-scratch Go reproduction of "ABC: A Simple
// Explicit Congestion Control Protocol for Wireless Networks" (Goyal et
// al., NSDI 2020): the Accel-Brake Control protocol, every substrate it
// needs (a deterministic discrete-event network simulator, Mahimahi-style
// trace emulation, an 802.11n MAC model, AQMs) and every baseline it is
// evaluated against (Cubic, Vegas, Copa, BBR, PCC-Vivace, Sprout, Verus,
// XCP, RCP, VCP), plus a benchmark harness regenerating each table and
// figure of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-versus-measured results.
package abc
