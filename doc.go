// Package abc is a from-scratch Go reproduction of "ABC: A Simple
// Explicit Congestion Control Protocol for Wireless Networks" (Goyal et
// al., NSDI 2020): the Accel-Brake Control protocol, every substrate it
// needs (a deterministic discrete-event network simulator, Mahimahi-style
// trace emulation, an 802.11n MAC model, AQMs) and every baseline it is
// evaluated against (Cubic, Vegas, Copa, BBR, PCC-Vivace, Sprout, Verus,
// XCP, RCP, VCP), plus a benchmark harness regenerating each table and
// figure of the paper's evaluation.
//
// Experiments are scenarios over a topology graph (internal/topo): a
// directed graph of junction nodes and edges, each edge an optional
// bottleneck link (trace-, rate- or Wi-Fi-modelled behind one topo.Link
// interface), an impairment stage (jitter, random/burst loss,
// reordering) and a propagation delay. Nodes forward packets by
// per-(flow, direction) forwarding tables, mutable mid-run through
// topo.Router — so routes can change while packets are in flight
// (handover, flapping links, rate/delay steps), with a conservation
// guarantee: in-flight packets on abandoned edges drain and are counted,
// never duplicated or silently lost. Every flow's data path and ACK
// path are explicit routes over the graph, so asymmetric paths,
// congested reverse (ACK) links, per-flow RTTs and mid-path cross
// traffic are all plain specs (internal/exp.Spec) — or declarative JSON
// scenario files (cmd/abcsim -scenario, examples/scenarios/), including
// a timed "events" timeline (reroute, set_rate, set_delay,
// link_down/link_up). Schemes and queueing disciplines self-register
// (cc.Register, qdisc.Register) from their own packages, so the harness
// constructs nothing by name.
//
// On top of the flow layer sits an application-workload subsystem
// (internal/app): open-loop arrival processes spawn finite flows mid-run
// with heavy-tailed or empirical size distributions and report
// flow-completion times and slowdowns, and closed-loop clients — an ABR
// video player with a playback-buffer model and QoE summary, and a
// request-response RPC client — drive persistent flows through any
// registered scheme (exp.Spec.Workloads, FlowSpec.App, scenario
// "workloads"/"app" clauses; drivers abcsim -exp shortflows|video|rpc).
//
// The simulation fast path is engineered to be allocation-free in steady
// state: the event core recycles inline event structs through a 4-ary
// heap with a slot free-list (internal/sim), packets cycle through a
// free-list with single-owner release semantics (internal/packet — see
// packet.Get for the ownership rules), per-packet delay statistics
// stream through fixed-memory Greenwald-Khanna sketches
// (internal/metrics), and the multi-run figure drivers fan independent
// (trace, scheme, seed) cells across a bounded worker pool
// (internal/exp) with byte-identical results to a sequential sweep.
// CI guards the zero-alloc property against regression
// (scripts/check_allocs.sh, bench_thresholds.txt).
//
// See DESIGN.md for the system inventory, the topology/registry
// architecture and fast path (§1–§2) and the experiment index mapping
// each benchmark to its paper figure or table (§3).
package abc
