module abc

go 1.21
