// Proxied-network deployment (§5.1.2, "Deployment in Proxied Networks").
//
// Cellular networks commonly split TCP connections at an edge proxy, so
// no legacy router between the proxy and the base station uses ECN. In
// that setting ABC needs no receiver modifications at all: the sender
// (proxy) marks accelerates with an ECN-capable codepoint, the router
// signals a brake by flipping the codepoint to CE (11), and an
// *unmodified* receiver echoes the CE through the standard ECE flag.
//
// This file implements that encoding as an alternative to the NS-bit
// scheme in sender.go/router.go, letting experiments and tests verify the
// two deployments behave identically on proxied paths.
package abc

import (
	"abc/internal/cc"
	"abc/internal/packet"
	"abc/internal/sim"
)

// ProxiedMarker converts a router's brake decision into the proxied
// encoding: accelerate stays ECT, brake becomes CE. It wraps a Router and
// rewrites its output marks; the wrapped router still runs Algorithm 1
// unchanged.
type ProxiedMarker struct {
	*Router
}

// NewProxiedRouter returns an ABC router using the proxied-network
// encoding (brake = CE).
func NewProxiedRouter(cfg RouterConfig) *ProxiedMarker {
	return &ProxiedMarker{Router: NewRouter(cfg)}
}

// Dequeue implements qdisc.Qdisc, translating Brake to CE on the wire.
func (m *ProxiedMarker) Dequeue(now sim.Time) *packet.Packet {
	p := m.Router.Dequeue(now)
	if p == nil {
		return nil
	}
	if p.ECN == packet.Brake {
		// In the proxied deployment the brake signal rides the CE
		// codepoint, which any unmodified receiver echoes via ECE.
		p.ECN = packet.CE
	}
	return p
}

// ProxiedSender is the ABC sender for proxied deployments: accelerates
// are inferred from ACKs whose ECE flag is clear, brakes from ECE-marked
// ACKs. It carries the same dual-window machinery as Sender.
type ProxiedSender struct {
	inner *Sender
}

// NewProxiedSender returns a proxied-mode ABC sender.
func NewProxiedSender() *ProxiedSender {
	return &ProxiedSender{inner: NewSender()}
}

// Name implements cc.Algorithm.
func (p *ProxiedSender) Name() string { return "ABC-proxied" }

// WABC exposes the accel-brake window.
func (p *ProxiedSender) WABC() float64 { return p.inner.WABC() }

// Accels and Brakes expose feedback counts for tests.
func (p *ProxiedSender) Accels() int64 { return p.inner.Accels }

// Brakes returns the number of brake signals received.
func (p *ProxiedSender) Brakes() int64 { return p.inner.Brakes }

// StampData implements cc.DataStamper: in the proxied encoding every data
// packet leaves with an ECN-capable codepoint meaning accelerate.
func (p *ProxiedSender) StampData(now sim.Time, e *cc.Endpoint, pkt *packet.Packet) {
	pkt.ECN = packet.Accel
	pkt.ABCFlow = true
}

// OnAck implements cc.Algorithm: an unmodified receiver echoes CE as ECE,
// which this sender interprets as a brake; everything else echoed from an
// ECT codepoint is an accelerate.
func (p *ProxiedSender) OnAck(now sim.Time, e *cc.Endpoint, info cc.AckInfo) {
	// Rewrite the ACK into the NS-bit form the inner sender expects.
	rewritten := *info.Ack
	if info.Ack.EchoCE {
		rewritten.EchoValid = true
		rewritten.EchoAccel = false
		rewritten.EchoCE = false
	} else if info.Ack.EchoValid {
		// ECT codepoint survived: accelerate.
		rewritten.EchoAccel = true
	}
	innerInfo := info
	innerInfo.Ack = &rewritten
	p.inner.OnAck(now, e, innerInfo)
}

// HandlesCE implements cc.CEHandler: in proxied mode CE means brake, not
// legacy congestion, so the endpoint must not treat ECE as a loss signal.
func (p *ProxiedSender) HandlesCE() bool { return true }

// OnCongestion implements cc.Algorithm; only packet loss reaches it.
func (p *ProxiedSender) OnCongestion(now sim.Time, e *cc.Endpoint) {
	p.inner.OnCongestion(now, e)
}

// OnRTO implements cc.Algorithm.
func (p *ProxiedSender) OnRTO(now sim.Time, e *cc.Endpoint) { p.inner.OnRTO(now, e) }

// CwndPkts implements cc.Algorithm.
func (p *ProxiedSender) CwndPkts() float64 { return p.inner.CwndPkts() }
