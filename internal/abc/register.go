// Registry hookup: ABC contributes its sender to the scheme registry and
// its routers to the qdisc registry, so the experiment harness never
// constructs ABC objects directly.
package abc

import (
	"fmt"

	"abc/internal/cc"
	"abc/internal/qdisc"
)

// routerConfigFor resolves a BuildSpec into a RouterConfig, applying the
// harness conventions: an explicit *RouterConfig override wins (with the
// buffer still defaulted if unset), otherwise the spec's delay threshold
// and feedback mode are layered over the defaults.
func routerConfigFor(s qdisc.BuildSpec) (RouterConfig, error) {
	cfg := DefaultRouterConfig()
	override := false
	switch c := s.Config.(type) {
	case nil:
	case *RouterConfig:
		cfg = *c
		override = true
	default:
		return RouterConfig{}, &UnknownConfigError{Kind: s.Kind, Config: s.Config}
	}
	if cfg.Limit == 0 {
		cfg.Limit = s.Buffer
	}
	if s.DelayThreshold > 0 {
		cfg.DelayThreshold = s.DelayThreshold
	}
	if !override {
		cfg.Feedback = FeedbackMode(s.Feedback)
	}
	if s.Lie != 0 {
		if s.Lie < 0 || s.Lie > 1 {
			return RouterConfig{}, fmt.Errorf("abc: lie fraction %g outside [0, 1]", s.Lie)
		}
		cfg.LieFraction = s.Lie
	}
	return cfg, nil
}

// UnknownConfigError reports a BuildSpec.Config of a type the ABC builders
// do not understand.
type UnknownConfigError struct {
	Kind   string
	Config any
}

func (e *UnknownConfigError) Error() string {
	return "abc: qdisc " + e.Kind + " given a non-ABC config"
}

func init() {
	cc.Register(cc.Scheme{Name: "ABC", New: func() cc.Algorithm { return NewSender() }, Qdisc: "abc"})
	cc.Register(cc.Scheme{Name: "ABC-proxied", New: func() cc.Algorithm { return NewProxiedSender() }, Qdisc: "abc-proxied"})

	qdisc.Register("abc", func(s qdisc.BuildSpec) (qdisc.Qdisc, error) {
		cfg, err := routerConfigFor(s)
		if err != nil {
			return nil, err
		}
		r := NewRouter(cfg)
		r.rng = s.Rand
		return r, nil
	})
	qdisc.Register("abc-proxied", func(s qdisc.BuildSpec) (qdisc.Qdisc, error) {
		cfg := DefaultRouterConfig()
		cfg.Limit = s.Buffer
		if s.DelayThreshold > 0 {
			cfg.DelayThreshold = s.DelayThreshold
		}
		cfg.Feedback = FeedbackMode(s.Feedback)
		return NewProxiedRouter(cfg), nil
	})
}
