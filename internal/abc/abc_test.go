package abc

import (
	"math"
	"testing"
	"testing/quick"

	"abc/internal/cc"
	"abc/internal/packet"
	"abc/internal/sim"
)

func testRouter(muBps float64) *Router {
	r := NewRouter(DefaultRouterConfig())
	r.SetCapacityProvider(func(sim.Time) float64 { return muBps })
	return r
}

func accelPkt(seq int64) *packet.Packet {
	p := packet.NewData(1, seq, packet.MTU, 0)
	p.ECN = packet.Accel
	return p
}

func TestRouterConfigValidation(t *testing.T) {
	for _, bad := range []RouterConfig{
		{Eta: 0, Delta: sim.Second},
		{Eta: 1.5, Delta: sim.Second},
		{Eta: 0.9, Delta: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", bad)
				}
			}()
			NewRouter(bad)
		}()
	}
}

// TestTargetRateEquation1 checks tr(t) = ημ − (μ/δ)(x − dt)+ pointwise.
func TestTargetRateEquation1(t *testing.T) {
	cfg := DefaultRouterConfig()
	cfg.Limit = 0
	r := NewRouter(cfg)
	mu := 10e6
	r.SetCapacityProvider(func(sim.Time) float64 { return mu })

	// Empty queue: tr = ημ.
	if got, want := r.TargetRate(0), cfg.Eta*mu; math.Abs(got-want) > 1 {
		t.Errorf("empty queue tr = %.0f, want %.0f", got, want)
	}

	// Fill to a known queuing delay: x = bytes*8/mu.
	// 50 packets => 600000 bits => 60 ms at 10 Mbit/s.
	for i := int64(0); i < 50; i++ {
		r.Enqueue(0, accelPkt(i))
	}
	x := 0.060
	want := cfg.Eta*mu - mu*(x-cfg.DelayThreshold.Seconds())/cfg.Delta.Seconds()
	if got := r.TargetRate(0); math.Abs(got-want)/want > 0.01 {
		t.Errorf("tr = %.0f, want %.0f", got, want)
	}
}

func TestTargetRateClampsAtZero(t *testing.T) {
	cfg := DefaultRouterConfig()
	cfg.Limit = 0
	r := NewRouter(cfg)
	r.SetCapacityProvider(func(sim.Time) float64 { return 1e6 })
	// Enormous queue: the drain term exceeds ημ.
	for i := int64(0); i < 500; i++ {
		r.Enqueue(0, accelPkt(i))
	}
	if got := r.TargetRate(0); got != 0 {
		t.Errorf("tr = %.0f, want 0", got)
	}
}

func TestTargetRateZeroCapacity(t *testing.T) {
	r := testRouter(0)
	if r.TargetRate(0) != 0 {
		t.Error("tr must be 0 during an outage")
	}
	if r.AccelFraction(0) != 0 {
		t.Error("f must be 0 during an outage")
	}
}

// TestAccelFractionEquation2 checks f = min(tr/(2 cr), 1) given a known
// dequeue rate.
func TestAccelFractionEquation2(t *testing.T) {
	cfg := DefaultRouterConfig()
	cfg.Window = 100 * sim.Millisecond
	r := NewRouter(cfg)
	mu := 10e6
	r.SetCapacityProvider(func(sim.Time) float64 { return mu })

	// Feed and drain at exactly mu for one window so cr == mu and the
	// queue stays empty.
	gap := sim.FromSeconds(float64(packet.MTU*8) / mu)
	now := sim.Time(0)
	for i := int64(0); i < 100; i++ {
		now += gap
		r.Enqueue(now, accelPkt(i))
		r.Dequeue(now)
	}
	want := 0.5 * cfg.Eta // tr = ημ, cr = μ
	if got := r.AccelFraction(now); math.Abs(got-want) > 0.05 {
		t.Errorf("f = %.3f, want ≈ %.3f", got, want)
	}
}

func TestAccelFractionIdleLinkOpens(t *testing.T) {
	r := testRouter(10e6)
	// No dequeues in the window: f = 1 so a starting flow can double.
	if got := r.AccelFraction(sim.Second); got != 1 {
		t.Errorf("idle f = %.2f, want 1", got)
	}
}

// TestMarkingFractionBound: Algorithm 1's token bucket admits at most a
// fraction f of accelerates over any long run, for any f.
func TestMarkingFractionBound(t *testing.T) {
	for _, target := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		cfg := DefaultRouterConfig()
		cfg.Limit = 0
		r := NewRouter(cfg)
		mu := 10e6
		// Rig the target rate: capacity chosen so tr/(2cr) == target.
		// Simpler: drive cr == mu via equal-rate feed and scale eta.
		cfg.Eta = 1
		r.Cfg.Eta = 1
		r.SetCapacityProvider(func(sim.Time) float64 { return 2 * target * mu })

		gap := sim.FromSeconds(float64(packet.MTU*8) / mu)
		now := sim.Time(0)
		n := int64(5000)
		for i := int64(0); i < n; i++ {
			now += gap
			r.Enqueue(now, accelPkt(i))
			p := r.Dequeue(now)
			if p == nil {
				t.Fatal("lost packet")
			}
		}
		frac := float64(r.AccelMarked) / float64(r.AccelMarked+r.BrakeMarked)
		// The bucket may under-admit slightly (startup) but never
		// exceed f by more than the bucket slack.
		if frac > target+0.02 {
			t.Errorf("target %.2f: marked %.3f accel fraction", target, frac)
		}
		if frac < target-0.1 {
			t.Errorf("target %.2f: marked only %.3f", target, frac)
		}
	}
}

// TestMarkingNeverPromotes: a packet arriving as Brake must never leave
// as Accel — the §3.1.2 multi-bottleneck rule.
func TestMarkingNeverPromotes(t *testing.T) {
	r := testRouter(100e6) // huge capacity: the router wants to accel
	now := sim.Time(0)
	for i := int64(0); i < 100; i++ {
		now += sim.Millisecond
		p := packet.NewData(1, i, packet.MTU, now)
		p.ECN = packet.Brake
		r.Enqueue(now, p)
		q := r.Dequeue(now)
		if q.ECN != packet.Brake {
			t.Fatalf("packet %d promoted to %v", i, q.ECN)
		}
	}
}

// TestMultiBottleneckMinimum: chaining two routers yields an accel
// fraction equal to the minimum f along the path (property over random
// capacities).
func TestMultiBottleneckMinimum(t *testing.T) {
	f := func(mu1Raw, mu2Raw uint8) bool {
		mu1 := 2e6 + float64(mu1Raw)*100e3
		mu2 := 2e6 + float64(mu2Raw)*100e3
		r1 := testRouter(mu1)
		r2 := testRouter(mu2)
		feed := 25e6 // both routers saturated
		gap := sim.FromSeconds(float64(packet.MTU*8) / feed)
		now := sim.Time(0)
		var accels, total int64
		for i := int64(0); i < 4000; i++ {
			now += gap
			p := accelPkt(i)
			r1.Enqueue(now, p)
			p1 := r1.Dequeue(now)
			if p1 == nil {
				continue
			}
			r2.Enqueue(now, p1)
			p2 := r2.Dequeue(now)
			if p2 == nil {
				continue
			}
			if i > 2000 { // settled
				total++
				if p2.ECN == packet.Accel {
					accels++
				}
			}
		}
		if total == 0 {
			return true
		}
		frac := float64(accels) / float64(total)
		// Each router in isolation admits ~0.5·η·mu_i/feed; the chain
		// must match the smaller.
		want := 0.5 * 0.98 * math.Min(mu1, mu2) / feed
		return frac <= want+0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTokenLimitCapsBursts(t *testing.T) {
	cfg := DefaultRouterConfig()
	cfg.TokenLimit = 2
	r := NewRouter(cfg)
	r.SetCapacityProvider(func(sim.Time) float64 { return 100e6 })
	// Long idle accrual must not let a burst of accels exceed the cap.
	now := 10 * sim.Second
	for i := int64(0); i < 10; i++ {
		r.Enqueue(now, accelPkt(i))
	}
	accels := 0
	for i := 0; i < 10; i++ {
		p := r.Dequeue(now)
		if p != nil && p.ECN == packet.Accel {
			accels++
		}
	}
	// token starts at 0, +1 per packet (f=1 on an idle fat link),
	// capped at 2: at most ~9 accels possible, but the first packet
	// can never be accel (token must exceed 1 after a single +f).
	if accels > 9 {
		t.Errorf("accels = %d", accels)
	}
}

func TestQueueDelaySaturatesDuringOutage(t *testing.T) {
	cfg := DefaultRouterConfig()
	r := NewRouter(cfg)
	r.SetCapacityProvider(func(sim.Time) float64 { return 0 })
	r.Enqueue(0, accelPkt(1))
	if got := r.QueueDelay(0); got != cfg.Delta {
		t.Errorf("outage queue delay = %v, want delta %v", got, cfg.Delta)
	}
}

func TestRouterDropsAtLimit(t *testing.T) {
	cfg := DefaultRouterConfig()
	cfg.Limit = 5
	r := NewRouter(cfg)
	r.SetCapacityProvider(func(sim.Time) float64 { return 1e6 })
	for i := int64(0); i < 10; i++ {
		r.Enqueue(0, accelPkt(i))
	}
	if r.Len() != 5 || r.Stats.DroppedPackets != 5 {
		t.Errorf("len=%d drops=%d", r.Len(), r.Stats.DroppedPackets)
	}
}

// --- Sender ---

func TestSenderWindowUpdateEquation3(t *testing.T) {
	s := NewSender()
	s.DisableDualWindow = true
	w := s.WABC()
	ackAccel := mkAck(true)
	s.OnAck(0, nil, ackInfo(ackAccel))
	want := w + 1 + 1/w
	if math.Abs(s.WABC()-want) > 1e-9 {
		t.Errorf("after accel w = %v, want %v", s.WABC(), want)
	}
	w = s.WABC()
	s.OnAck(0, nil, ackInfo(mkAck(false)))
	want = w - 1 + 1/w
	if math.Abs(s.WABC()-want) > 1e-9 {
		t.Errorf("after brake w = %v, want %v", s.WABC(), want)
	}
}

func TestSenderWindowFloorsAtOne(t *testing.T) {
	s := NewSender()
	s.DisableDualWindow = true
	for i := 0; i < 100; i++ {
		s.OnAck(0, nil, ackInfo(mkAck(false)))
	}
	if s.WABC() < 1 {
		t.Errorf("w = %v below 1", s.WABC())
	}
}

// markStream applies n ACKs to the sender with a deterministic fraction
// fAccel of accelerates, using the same token-bucket rule as the router
// so the realized fraction is exact.
func markStream(s *Sender, acc *float64, n int, fAccel float64) {
	for i := 0; i < n; i++ {
		*acc += fAccel
		accel := false
		if *acc >= 1 {
			*acc--
			accel = true
		}
		s.OnAck(0, nil, ackInfo(mkAck(accel)))
	}
}

// TestMAIMDFairnessConvergence: two senders fed the same accelerate
// fraction from a shared router converge to equal windows regardless of
// their initial windows — the Fig. 3 / §3.1.3 claim, checked as a
// property over random initial conditions. Per §3.1.3, each flow's
// steady state satisfies 2f + 1/w = 1, identical for all flows.
func TestMAIMDFairnessConvergence(t *testing.T) {
	f := func(w1Raw, w2Raw uint8) bool {
		w1 := 2 + float64(w1Raw)
		w2 := 2 + float64(w2Raw%50)
		s1 := NewSender()
		s2 := NewSender()
		s1.DisableDualWindow, s2.DisableDualWindow = true, true
		s1.wabc, s2.wabc = w1, w2
		var acc1, acc2 float64
		for round := 0; round < 6000; round++ {
			// The shared router picks one f per round that keeps the
			// aggregate stable: 2f + 2/(w1+w2) = 1 for the sum.
			total := s1.wabc + s2.wabc
			fAccel := 0.5 * (1 - 2/total)
			markStream(s1, &acc1, int(s1.wabc), fAccel)
			markStream(s2, &acc2, int(s2.wabc), fAccel)
		}
		ratio := s1.wabc / s2.wabc
		return ratio > 0.8 && ratio < 1.25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestMIMDDoesNotConverge: without additive increase the same setup
// preserves the initial imbalance (Fig. 3a): at f = 1/2 exactly, each
// window is scaled identically every round and the ratio never moves.
func TestMIMDDoesNotConverge(t *testing.T) {
	s1 := NewSender()
	s2 := NewSender()
	s1.DisableDualWindow, s2.DisableDualWindow = true, true
	s1.DisableAI, s2.DisableAI = true, true
	s1.wabc, s2.wabc = 40, 10
	var acc1, acc2 float64
	for round := 0; round < 2000; round++ {
		markStream(s1, &acc1, int(s1.wabc), 0.5)
		markStream(s2, &acc2, int(s2.wabc), 0.5)
	}
	ratio := s1.wabc / s2.wabc
	if ratio < 2 {
		t.Errorf("MIMD flows converged (ratio %.2f); AI must be required for fairness", ratio)
	}
}

func TestStampDataMarksAccel(t *testing.T) {
	s := NewSender()
	p := packet.NewData(1, 0, packet.MTU, 0)
	s.StampData(0, nil, p)
	if p.ECN != packet.Accel || !p.ABCFlow {
		t.Errorf("stamped packet: ECN=%v ABCFlow=%v", p.ECN, p.ABCFlow)
	}
}

func TestDualWindowMin(t *testing.T) {
	s := NewSender()
	s.wabc = 50
	s.cubic.SetCwnd(10)
	if got := s.CwndPkts(); got != 10 {
		t.Errorf("CwndPkts = %v, want cubic's 10", got)
	}
	s.cubic.SetCwnd(100)
	if got := s.CwndPkts(); got != 50 {
		t.Errorf("CwndPkts = %v, want wabc's 50", got)
	}
}

func TestWindowsCappedAtTwiceInflight(t *testing.T) {
	s := NewSender()
	s.wabc = 1000
	s.cubic.SetCwnd(1000)
	info := ackInfo(mkAck(true))
	info.Inflight = 20
	s.OnAck(0, nil, info)
	cap2 := 2.0 * 21
	if s.WABC() > cap2 || s.WCubic() > cap2 {
		t.Errorf("windows not capped: wabc=%.0f wcubic=%.0f cap=%.0f", s.WABC(), s.WCubic(), cap2)
	}
}

// --- rate meter ---

func TestRateMeterWindowedRate(t *testing.T) {
	m := newRateMeter(100 * sim.Millisecond)
	now := sim.Time(0)
	// 10 packets of MTU over 100 ms = 1.2 Mbit/s.
	for i := 0; i < 10; i++ {
		now += 10 * sim.Millisecond
		m.add(now, packet.MTU)
	}
	got := m.bps(now)
	want := 10.0 * packet.MTU * 8 / 0.1
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("rate %.0f, want %.0f", got, want)
	}
	// After the window passes with no traffic the rate decays to zero.
	if got := m.bps(now + 200*sim.Millisecond); got != 0 {
		t.Errorf("stale rate %.0f, want 0", got)
	}
}

func TestRateMeterCompaction(t *testing.T) {
	m := newRateMeter(10 * sim.Millisecond)
	now := sim.Time(0)
	for i := 0; i < 10000; i++ {
		now += sim.Millisecond
		m.add(now, 100)
	}
	if len(m.times)-m.head > 100 {
		t.Errorf("meter retains %d entries for a 10-entry window", len(m.times)-m.head)
	}
}

// --- helpers ---

func mkAck(accel bool) *packet.Packet {
	// Mirror packet.NewAck: the echo rides both the NS bit and the ACK's
	// own ECN codepoint (which reverse-path routers may demote).
	ecn := packet.Brake
	if accel {
		ecn = packet.Accel
	}
	return &packet.Packet{IsAck: true, EchoValid: true, EchoAccel: accel, ECN: ecn}
}

func ackInfo(a *packet.Packet) cc.AckInfo {
	return cc.AckInfo{Ack: a, AckedBytes: packet.MTU, Inflight: 10}
}
