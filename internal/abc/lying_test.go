package abc

import (
	"math/rand"
	"testing"

	"abc/internal/packet"
	"abc/internal/qdisc"
	"abc/internal/sim"
)

// TestLyingRouterPromotesBrakes: with LieFraction 1 every brake-bound
// packet — demoted by the bucket or already braked on arrival — leaves
// as a forged accelerate, and LiePromoted counts each one.
func TestLyingRouterPromotesBrakes(t *testing.T) {
	cfg := DefaultRouterConfig()
	cfg.LieFraction = 1
	r := NewRouter(cfg)
	r.rng = rand.New(rand.NewSource(1))
	// Zero capacity → target rate 0 → every accel is demoted... and then
	// the liar promotes it right back.
	r.SetCapacityProvider(func(sim.Time) float64 { return 0 })
	const n = 20
	for i := 0; i < n; i++ {
		r.Enqueue(0, accelPkt(int64(i)))
	}
	for i := 0; i < n; i++ {
		p := r.Dequeue(sim.Time(i) * sim.Millisecond)
		if p.ECN != packet.Accel {
			t.Fatalf("packet %d left with ECN %d, want forged Accel", i, p.ECN)
		}
		p.Release()
	}
	if r.BrakeMarked != n {
		t.Errorf("BrakeMarked = %d, want %d (honest bucket still demoted)", r.BrakeMarked, n)
	}
	if r.LiePromoted != n {
		t.Errorf("LiePromoted = %d, want %d", r.LiePromoted, n)
	}
}

// TestHonestRouterDrawsNothing: LieFraction 0 never touches the RNG, so
// honest routers are byte-identical with and without an attached stream.
func TestHonestRouterDrawsNothing(t *testing.T) {
	r := testRouter(1e6)
	rng := rand.New(rand.NewSource(7))
	want := rand.New(rand.NewSource(7)).Int63()
	r.rng = rng
	for i := 0; i < 10; i++ {
		r.Enqueue(0, accelPkt(int64(i)))
	}
	for i := 0; i < 10; i++ {
		if p := r.Dequeue(sim.Time(i) * sim.Millisecond); p != nil {
			p.Release()
		}
	}
	if r.LiePromoted != 0 {
		t.Errorf("LiePromoted = %d on honest router", r.LiePromoted)
	}
	if got := rng.Int63(); got != want {
		t.Error("honest router consumed from the RNG stream")
	}
}

// TestLieFractionViaBuildSpec: the qdisc registry threads Lie into the
// router config and rejects out-of-range fractions.
func TestLieFractionViaBuildSpec(t *testing.T) {
	q, err := qdisc.Build(qdisc.BuildSpec{Kind: "abc", Lie: 0.25, Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	r := q.(*Router)
	if r.Cfg.LieFraction != 0.25 {
		t.Errorf("LieFraction = %g, want 0.25", r.Cfg.LieFraction)
	}
	if r.rng == nil {
		t.Error("builder did not attach the RNG")
	}
	if _, err := qdisc.Build(qdisc.BuildSpec{Kind: "abc", Lie: 1.5}); err == nil {
		t.Error("Lie 1.5 accepted")
	}
	if _, err := qdisc.Build(qdisc.BuildSpec{Kind: "abc", Lie: -0.1}); err == nil {
		t.Error("Lie -0.1 accepted")
	}
}
