// ABC sender: the window update of §3.1.1 with the additive-increase
// fairness term of §3.1.3 (Eq. 3), and the dual-window coexistence
// mechanism of §5.1.1 for paths containing non-ABC bottlenecks.
package abc

import (
	"abc/internal/cc"
	"abc/internal/packet"
	"abc/internal/sim"
)

// Sender implements cc.Algorithm and cc.DataStamper. Every outgoing data
// packet is marked accelerate (ECT(1)); receivers echo the (possibly
// demoted) mark back — both in the NS-bit echo and in the ACK's own ECN
// codepoint, so reverse-path routers can demote it again in flight — and
// the window moves per Eq. 3:
//
//	accel: w ← w + 1 + 1/w
//	brake: w ← w − 1 + 1/w
//
// The 1/w terms are the additive increase of one packet per RTT that makes
// the scheme MAIMD and hence fair (Chiu-Jain). For coexistence with
// non-ABC bottlenecks the sender also runs a full Cubic window driven by
// drops and ECN CE marks, transmits at min(wabc, wcubic), and caps both
// windows at twice the in-flight data so the idle window cannot balloon.
type Sender struct {
	// DisableAI removes the additive-increase term, reproducing the
	// unfair MIMD variant of Fig. 3a.
	DisableAI bool
	// DisableDualWindow removes the Cubic coexistence window (pure-ABC
	// paths; used in unit tests and ablations).
	DisableDualWindow bool

	wabc  float64
	cubic *cc.Cubic

	// Accels and Brakes count feedback received, for tests and reports.
	Accels int64
	Brakes int64
	// ReverseBrakes counts accelerates the receiver echoed but a
	// reverse-path router or marking qdisc demoted in flight (the ACK's
	// ECN codepoint no longer says Accel). They are a subset of Brakes.
	ReverseBrakes int64
}

// NewSender returns an ABC sender with the paper's initial window.
func NewSender() *Sender {
	return &Sender{wabc: 4, cubic: cc.NewCubic()}
}

// Name implements cc.Algorithm.
func (s *Sender) Name() string { return "ABC" }

// WABC exposes the accel-brake window (Fig. 6 plots it).
func (s *Sender) WABC() float64 { return s.wabc }

// WCubic exposes the coexistence window (Fig. 6 plots it).
func (s *Sender) WCubic() float64 { return s.cubic.Cwnd() }

// StampData implements cc.DataStamper: ABC data packets leave marked
// accelerate and tagged as ABC traffic for dual-queue classification.
func (s *Sender) StampData(now sim.Time, e *cc.Endpoint, p *packet.Packet) {
	p.ECN = packet.Accel
	p.ABCFlow = true
}

// OnAck implements cc.Algorithm.
func (s *Sender) OnAck(now sim.Time, e *cc.Endpoint, info cc.AckInfo) {
	ack := info.Ack
	if ack.EchoValid && info.AckedBytes > 0 {
		ai := 1 / s.wabc
		if s.DisableAI {
			ai = 0
		}
		// The effective signal is the minimum of the receiver's echo and
		// whatever survived the reverse path: an echoed accelerate whose
		// ACK was demoted to Brake (reverse ABC router) or CE (legacy
		// marking AQM) on a congested uplink counts as a brake, per the
		// multi-bottleneck minimum-of-marks rule applied to the full
		// round trip.
		accel := ack.EchoAccel
		if accel && ack.ECN != packet.Accel {
			accel = false
			s.ReverseBrakes++
		}
		if accel {
			s.wabc += 1 + ai
			s.Accels++
		} else {
			s.wabc += -1 + ai
			s.Brakes++
		}
		if s.wabc < 1 {
			s.wabc = 1
		}
	}
	if !s.DisableDualWindow {
		// The Cubic window grows normally on ACKs; congestion signals
		// reach it via OnCongestion/OnRTO.
		s.cubic.OnAck(now, e, info)
	}
	// Cap both windows to 2x in-flight (§5.1.1) so whichever window is
	// not the bottleneck cannot grow without bound.
	cap2 := 2 * float64(info.Inflight+1)
	if cap2 < 4 {
		cap2 = 4
	}
	if s.wabc > cap2 {
		s.wabc = cap2
	}
	if !s.DisableDualWindow && s.cubic.Cwnd() > cap2 {
		s.cubic.SetCwnd(cap2)
	}
}

// OnCongestion implements cc.Algorithm: drops and CE marks are non-ABC
// congestion signals and drive only the Cubic window.
func (s *Sender) OnCongestion(now sim.Time, e *cc.Endpoint) {
	if !s.DisableDualWindow {
		s.cubic.OnCongestion(now, e)
	}
}

// OnRTO implements cc.Algorithm.
func (s *Sender) OnRTO(now sim.Time, e *cc.Endpoint) {
	if !s.DisableDualWindow {
		s.cubic.OnRTO(now, e)
	} else if s.wabc > 2 {
		// Without the dual window, halve on timeout so outages do not
		// leave a stale large window.
		s.wabc /= 2
	}
}

// CwndPkts implements cc.Algorithm: send at the smaller window (§5.1.1).
func (s *Sender) CwndPkts() float64 {
	if s.DisableDualWindow {
		return s.wabc
	}
	if c := s.cubic.Cwnd(); c < s.wabc {
		return c
	}
	return s.wabc
}
