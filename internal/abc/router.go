// Package abc implements Accel-Brake Control, the paper's contribution:
// an explicit congestion-control protocol in which routers guide senders
// to a target rate using one bit of feedback per packet.
//
// The router side (this file) implements §3.1.2: the target-rate rule
// (Eq. 1), the accelerate fraction (Eq. 2) computed from the *dequeue*
// rate, and the deterministic token-bucket marking of Algorithm 1. The
// sender side (sender.go) implements §3.1.1/§3.1.3/§5.1.1.
package abc

import (
	"math/rand"

	"abc/internal/obs"
	"abc/internal/packet"
	"abc/internal/qdisc"
	"abc/internal/sim"
)

// FeedbackMode selects which rate estimate drives Eq. 2.
type FeedbackMode int

const (
	// DequeueRate is ABC's choice: f(t) = min(½·tr(t)/cr(t), 1) with
	// cr(t) the dequeue rate, exploiting ACK clocking to predict the
	// enqueue rate one RTT ahead (§3.1.2, Fig. 2a).
	DequeueRate FeedbackMode = iota
	// EnqueueRate is the ablation Fig. 2b: computing f(t) against the
	// enqueue rate like prior explicit schemes, which doubles p95 delay.
	EnqueueRate
)

// RouterConfig parameterizes an ABC router.
type RouterConfig struct {
	// Eta is the target utilization η < 1 (paper: 0.98 in emulation).
	Eta float64
	// Delta is δ, the queue-draining time constant (paper: 133 ms for a
	// 100 ms propagation RTT, satisfying δ > 2τ/3 of Theorem 3.1).
	Delta sim.Time
	// DelayThreshold is dt, below which queuing delay is ignored; it
	// must exceed the link's inter-scheduling time (batching) so that
	// batch-induced delay does not read as congestion.
	DelayThreshold sim.Time
	// Window is T, the sliding window for dequeue/enqueue rate
	// measurement (paper: 40 ms on Wi-Fi; we default 50 ms).
	Window sim.Time
	// TokenLimit caps the token bucket of Algorithm 1.
	TokenLimit float64
	// Limit bounds the queue in packets (0 = unbounded).
	Limit int
	// Feedback selects dequeue- vs enqueue-rate feedback.
	Feedback FeedbackMode
	// LieFraction makes the router misbehave: after the honest token
	// bucket runs, each packet leaving with a brake is fraudulently
	// promoted back to accelerate with this probability. A lying router
	// violates ABC's only-demote invariant, so downstream honest routers
	// can still demote the forged mark — the lie is strongest when the
	// liar is the last ABC hop. Zero (the default) is an honest router.
	LieFraction float64
}

// DefaultRouterConfig returns the paper's emulation parameters.
func DefaultRouterConfig() RouterConfig {
	return RouterConfig{
		Eta:            0.98,
		Delta:          133 * sim.Millisecond,
		DelayThreshold: 20 * sim.Millisecond,
		Window:         50 * sim.Millisecond,
		TokenLimit:     10,
		Limit:          250,
	}
}

// rateMeter measures a byte rate over a sliding time window.
type rateMeter struct {
	window sim.Time
	times  []sim.Time
	bytes  []int
	sum    int64
	head   int
}

func newRateMeter(window sim.Time) *rateMeter { return &rateMeter{window: window} }

func (m *rateMeter) add(now sim.Time, n int) {
	m.times = append(m.times, now)
	m.bytes = append(m.bytes, n)
	m.sum += int64(n)
	m.prune(now)
}

func (m *rateMeter) prune(now sim.Time) {
	for m.head < len(m.times) && m.times[m.head] < now-m.window {
		m.sum -= int64(m.bytes[m.head])
		m.head++
	}
	if m.head > 256 && m.head*2 >= len(m.times) {
		n := copy(m.times, m.times[m.head:])
		copy(m.bytes, m.bytes[m.head:])
		m.times = m.times[:n]
		m.bytes = m.bytes[:n]
		m.head = 0
	}
}

// bps returns the windowed rate in bits/sec.
func (m *rateMeter) bps(now sim.Time) float64 {
	m.prune(now)
	return float64(m.sum) * 8 / m.window.Seconds()
}

// Router is the ABC qdisc: a FIFO whose dequeue path computes per-packet
// accelerate/brake feedback. It implements qdisc.Qdisc and
// qdisc.CapacityAware.
type Router struct {
	Cfg   RouterConfig
	Stats qdisc.Stats

	capacity func(now sim.Time) float64

	q     []*packet.Packet
	head  int
	bytes int

	token    float64
	deqMeter *rateMeter
	enqMeter *rateMeter

	// AccelMarked / BrakeMarked count feedback decisions on data packets
	// for tests and the marking-fraction invariants.
	AccelMarked int64
	BrakeMarked int64
	// EchoAccelKept / EchoDemoted count Algorithm 1 decisions applied to
	// ACK-borne echoes: a router on the reverse path sees the echoed
	// accelerate in the ACK's ECN codepoint and may demote it, so a
	// congested uplink brakes the forward sender (min-of-marks over the
	// whole round trip).
	EchoAccelKept int64
	EchoDemoted   int64
	// LiePromoted counts brake marks the lying-router mode fraudulently
	// promoted to accelerate (zero on honest routers).
	LiePromoted int64

	// rng drives LieFraction draws; installed by the qdisc builder. The
	// draw happens only on brake-bound packets, so an honest router
	// (LieFraction 0) consumes nothing from the stream.
	rng *rand.Rand

	// bg is the fluid background aggregate coupled into this router's
	// link: its backlog counts toward x(t) and its service rate toward
	// the rate AccelFraction normalizes against.
	bg qdisc.Background

	// rec/obsSrc feed mark-issuance events to the flight recorder
	// (obs.Sink, wired through the owning link); nil rec = off.
	rec    *obs.Recorder
	obsSrc int32
}

// SetObs implements obs.Sink: every Algorithm-1 marking decision emits a
// CatMark event under the given source id (the owning edge).
func (r *Router) SetObs(rec *obs.Recorder, src int32) { r.rec, r.obsSrc = rec, src }

// Token returns the current Algorithm-1 token-bucket level (metrics).
func (r *Router) Token() float64 { return r.token }

// NewRouter returns an ABC router with the given configuration.
func NewRouter(cfg RouterConfig) *Router {
	if cfg.Eta <= 0 || cfg.Eta > 1 {
		panic("abc: Eta must be in (0, 1]")
	}
	if cfg.Delta <= 0 {
		panic("abc: Delta must be positive")
	}
	if cfg.Window <= 0 {
		cfg.Window = 50 * sim.Millisecond
	}
	if cfg.TokenLimit <= 0 {
		cfg.TokenLimit = 10
	}
	return &Router{
		Cfg:      cfg,
		deqMeter: newRateMeter(cfg.Window),
		enqMeter: newRateMeter(cfg.Window),
	}
}

// SetCapacityProvider implements qdisc.CapacityAware; the owning link
// installs its µ(t) estimate (trace rate, Wi-Fi estimator, or PK oracle).
func (r *Router) SetCapacityProvider(f func(now sim.Time) float64) { r.capacity = f }

// SetBackground implements qdisc.BackgroundAware: the router accounts
// for the fluid aggregate as if its virtual packets were really in the
// queue, so accel/brake marks pace foreground flows against the total
// (packet + fluid) load.
func (r *Router) SetBackground(bg qdisc.Background) { r.bg = bg }

// Enqueue implements qdisc.Qdisc.
func (r *Router) Enqueue(now sim.Time, p *packet.Packet) bool {
	if r.Cfg.Limit > 0 {
		occupied := r.Len()
		if r.bg != nil {
			// The buffer is shared: fluid backlog occupies slots exactly
			// as real background packets would.
			occupied += int(r.bg.QueueBytes(now) / packet.MTU)
		}
		if occupied >= r.Cfg.Limit {
			r.Stats.DroppedPackets++
			return false
		}
	}
	p.EnqueuedAt = now
	r.q = append(r.q, p)
	r.bytes += p.Size
	r.enqMeter.add(now, p.Size)
	r.Stats.EnqueuedPackets++
	return true
}

// mu returns the current link-capacity estimate in bits/sec.
func (r *Router) mu(now sim.Time) float64 {
	if r.capacity == nil {
		return 0
	}
	return r.capacity(now)
}

// QueueDelay returns the router's current queuing-delay estimate
// x(t) = queued bytes / µ(t).
func (r *Router) QueueDelay(now sim.Time) sim.Time {
	mu := r.mu(now)
	queued := float64(r.bytes)
	if r.bg != nil {
		queued += r.bg.QueueBytes(now)
	}
	if mu <= 0 {
		if queued > 0 {
			return r.Cfg.Delta // outage with a standing queue: saturate
		}
		return 0
	}
	return sim.FromSeconds(queued * 8 / mu)
}

// TargetRate computes tr(t) of Eq. 1 in bits/sec.
func (r *Router) TargetRate(now sim.Time) float64 {
	mu := r.mu(now)
	if mu <= 0 {
		return 0
	}
	x := r.QueueDelay(now)
	tr := r.Cfg.Eta * mu
	if excess := x - r.Cfg.DelayThreshold; excess > 0 {
		tr -= mu * excess.Seconds() / r.Cfg.Delta.Seconds()
	}
	if tr < 0 {
		tr = 0
	}
	return tr
}

// AccelFraction computes f(t) of Eq. 2 using the configured feedback mode.
func (r *Router) AccelFraction(now sim.Time) float64 {
	tr := r.TargetRate(now)
	var ref float64
	switch r.Cfg.Feedback {
	case EnqueueRate:
		ref = r.enqMeter.bps(now)
	default:
		ref = r.deqMeter.bps(now)
	}
	if r.bg != nil {
		// The fluid aggregate's service is part of the total rate the
		// feedback normalizes against — with N real background flows
		// their packets would be in this meter.
		ref += r.bg.ServedBps(now)
	}
	if ref <= 0 {
		// No measured traffic in the window: fully open the link so an
		// idle flow can ramp (f = 1 doubles the window per RTT).
		if tr > 0 {
			return 1
		}
		return 0
	}
	f := 0.5 * tr / ref
	if f > 1 {
		f = 1
	}
	if f < 0 {
		f = 0
	}
	return f
}

// Dequeue implements qdisc.Qdisc, applying Algorithm 1 to each outgoing
// packet: the token bucket admits at most a fraction f(t) of accelerates,
// and marks may only be demoted (accel→brake), never promoted, so the
// fraction of accelerates equals the minimum f(t) along a multi-bottleneck
// path (§3.1.2). ACKs carrying an echoed accelerate in their ECN codepoint
// go through the same bucket, which extends the minimum over reverse-path
// bottlenecks hosting an ABC router.
func (r *Router) Dequeue(now sim.Time) *packet.Packet {
	if r.head >= len(r.q) {
		return nil
	}
	p := r.q[r.head]
	r.q[r.head] = nil
	r.head++
	r.bytes -= p.Size
	if r.head > 64 && r.head*2 >= len(r.q) {
		n := copy(r.q, r.q[r.head:])
		r.q = r.q[:n]
		r.head = 0
	}
	r.deqMeter.add(now, p.Size)
	r.Stats.DequeuedPackets++
	r.Stats.DequeuedBytes += int64(p.Size)

	// No token credit for the aggregate's virtual dequeues: with N real
	// background flows each of their packets would accrue f AND consume
	// a kept accelerate with probability f — net zero for the bucket the
	// foreground draws from. (Their service still enters AccelFraction's
	// denominator, which is where the background reduces f.)
	f := r.AccelFraction(now)
	r.token = minf(r.token+f, r.Cfg.TokenLimit)
	trace := r.rec.Enabled(obs.CatMark)
	if p.ECN == packet.Accel {
		if r.token > 1 {
			r.token--
			if p.IsAck {
				r.EchoAccelKept++
				if trace {
					r.rec.Emit(int64(now), obs.EvEchoKept, r.obsSrc, int32(p.Flow), 0, 0)
				}
			} else {
				r.AccelMarked++
				if trace {
					r.rec.Emit(int64(now), obs.EvAccel, r.obsSrc, int32(p.Flow), 0, 0)
				}
			}
		} else {
			p.ECN = packet.Brake
			if p.IsAck {
				r.EchoDemoted++
				if trace {
					r.rec.Emit(int64(now), obs.EvEchoDemoted, r.obsSrc, int32(p.Flow), 0, 0)
				}
			} else {
				r.BrakeMarked++
				if trace {
					r.rec.Emit(int64(now), obs.EvBrake, r.obsSrc, int32(p.Flow), 0, 0)
				}
			}
		}
	}
	// Lying-router mode: promote a fraction of brake-bound packets back
	// to accelerate, violating the only-demote invariant. Applied after
	// the honest bucket so the lie covers demotions and already-braked
	// arrivals alike.
	if r.Cfg.LieFraction > 0 && r.rng != nil && p.ECN == packet.Brake &&
		r.rng.Float64() < r.Cfg.LieFraction {
		p.ECN = packet.Accel
		r.LiePromoted++
		if trace {
			r.rec.Emit(int64(now), obs.EvLiePromoted, r.obsSrc, int32(p.Flow), 0, 0)
		}
	}
	return p
}

// Len implements qdisc.Qdisc.
func (r *Router) Len() int { return len(r.q) - r.head }

// Bytes implements qdisc.Qdisc.
func (r *Router) Bytes() int { return r.bytes }

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
