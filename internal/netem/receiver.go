// Receiver-side logic: cumulative acknowledgement tracking and echoing of
// ABC accel/brake marks and ECN signals back to the sender (§5.1.2).
package netem

import (
	"abc/internal/packet"
	"abc/internal/sim"
)

// Receiver terminates one flow: it acknowledges every data packet (the
// paper's per-packet feedback model), echoing the ABC mark or ECN CE as a
// modified TCP receiver would via the NS and ECE bits.
type Receiver struct {
	S    *sim.Simulator
	Flow int
	// Out carries ACKs back towards the sender.
	Out packet.Node
	// OnData, if set, observes every in-order-or-not data arrival
	// (metrics hooks).
	OnData DeliveryFunc

	nextExpected int64
	// pending holds out-of-order sequence numbers above nextExpected.
	pending map[int64]bool

	// Delivered counts data packets received (including retransmits).
	Delivered int64
	// DeliveredBytes counts payload bytes received.
	DeliveredBytes int64
}

// NewReceiver returns a receiver for the flow that sends ACKs to out.
func NewReceiver(s *sim.Simulator, flow int, out packet.Node) *Receiver {
	return &Receiver{S: s, Flow: flow, Out: out, pending: make(map[int64]bool)}
}

// Recv implements packet.Node for data packets.
func (r *Receiver) Recv(p *packet.Packet) {
	if p.IsAck || p.Flow != r.Flow {
		// Misrouted traffic still ends here: the receiver is the last
		// holder, so the ownership contract says it releases.
		p.Release()
		return
	}
	now := r.S.Now()
	r.Delivered++
	r.DeliveredBytes += int64(p.Size)
	if r.OnData != nil {
		r.OnData(now, p)
	}
	// Advance the cumulative acknowledgement.
	if p.Seq == r.nextExpected {
		r.nextExpected++
		for r.pending[r.nextExpected] {
			delete(r.pending, r.nextExpected)
			r.nextExpected++
		}
	} else if p.Seq > r.nextExpected {
		r.pending[p.Seq] = true
	}
	ack := packet.NewAck(p, r.nextExpected, now)
	r.Out.Recv(ack)
	// The receiver is the data packet's terminal consumer: observers and
	// the ACK builder are done with it, so it goes back to the free list.
	p.Release()
}

// CumAck returns the receiver's current cumulative acknowledgement point.
func (r *Receiver) CumAck() int64 { return r.nextExpected }
