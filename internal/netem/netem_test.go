package netem

import (
	"math"
	"testing"

	"abc/internal/packet"
	"abc/internal/qdisc"
	"abc/internal/sim"
	"abc/internal/trace"
)

func TestWireDelays(t *testing.T) {
	s := sim.New(1)
	sink := &packet.Sink{}
	w := NewWire(s, 25*sim.Millisecond, sink)
	var arrival sim.Time
	w.Dst = packet.NodeFunc(func(p *packet.Packet) {
		arrival = s.Now()
		sink.Recv(p)
	})
	w.Recv(packet.NewData(1, 0, packet.MTU, 0))
	s.Run()
	if arrival != 25*sim.Millisecond {
		t.Errorf("arrived at %v", arrival)
	}
	if sink.Count != 1 {
		t.Errorf("count = %d", sink.Count)
	}
}

func TestTraceLinkDeliversAtTraceRate(t *testing.T) {
	s := sim.New(1)
	tr := trace.Constant("c", 12e6)
	sink := &packet.Sink{}
	link := NewTraceLink(s, tr, qdisc.NewDropTail(0), sink)
	// Saturate: inject 2000 packets at t=0.
	for i := int64(0); i < 2000; i++ {
		link.Recv(packet.NewData(1, i, packet.MTU, 0))
	}
	s.RunUntil(sim.Second)
	// 12 Mbit/s for 1 s = 1000 packets.
	if sink.Count < 950 || sink.Count > 1050 {
		t.Errorf("delivered %d packets in 1 s at 12 Mbit/s", sink.Count)
	}
	if link.DeliveredBytes() != int64(sink.Count)*packet.MTU {
		t.Errorf("DeliveredBytes %d != %d", link.DeliveredBytes(), sink.Count*packet.MTU)
	}
}

func TestTraceLinkWastesIdleOpportunities(t *testing.T) {
	s := sim.New(1)
	tr := trace.Constant("c", 12e6)
	sink := &packet.Sink{}
	link := NewTraceLink(s, tr, qdisc.NewDropTail(0), sink)
	// One packet injected at 500 ms: missed earlier opportunities are
	// gone (Mahimahi semantics), the packet leaves at the next one.
	s.At(500*sim.Millisecond, func() {
		link.Recv(packet.NewData(1, 0, packet.MTU, s.Now()))
	})
	s.RunUntil(sim.Second)
	if sink.Count != 1 {
		t.Fatalf("delivered %d", sink.Count)
	}
	if sink.Last.QueueDelay > 2*sim.Millisecond {
		t.Errorf("queue delay %v for an idle link", sink.Last.QueueDelay)
	}
}

func TestTraceLinkAccumulatesQueueDelay(t *testing.T) {
	s := sim.New(1)
	tr := trace.Constant("c", 1.2e6) // 100 pkt/s: 10 ms per packet
	var delays []sim.Time
	link := NewTraceLink(s, tr, qdisc.NewDropTail(0), packet.NodeFunc(func(p *packet.Packet) {
		delays = append(delays, p.QueueDelay)
	}))
	for i := int64(0); i < 5; i++ {
		link.Recv(packet.NewData(1, i, packet.MTU, 0))
	}
	s.RunUntil(sim.Second)
	if len(delays) != 5 {
		t.Fatalf("delivered %d", len(delays))
	}
	// Later packets wait longer behind the head-of-line.
	for i := 1; i < len(delays); i++ {
		if delays[i] <= delays[i-1] {
			t.Errorf("queue delay not increasing: %v", delays)
		}
	}
}

func TestTraceLinkCapacityProviderLookahead(t *testing.T) {
	s := sim.New(1)
	tr := trace.SquareWave("sq", 1e6, 20e6, 500*sim.Millisecond)
	link := NewTraceLink(s, tr, qdisc.NewDropTail(0), &packet.Sink{})
	// Standing just before the high→low edge, the trailing window sees
	// high capacity...
	past := link.CapacityBps(490 * sim.Millisecond)
	link.Lookahead = 100 * sim.Millisecond
	future := link.CapacityBps(490 * sim.Millisecond)
	if future >= past {
		t.Errorf("lookahead capacity %.1f should fall below trailing %.1f", future/1e6, past/1e6)
	}
}

func TestRateLinkServiceTime(t *testing.T) {
	s := sim.New(1)
	sink := &packet.Sink{}
	var done sim.Time
	link := NewRateLink(s, ConstRate(12e6), qdisc.NewDropTail(0), packet.NodeFunc(func(p *packet.Packet) {
		done = s.Now()
		sink.Recv(p)
	}))
	link.Recv(packet.NewData(1, 0, packet.MTU, 0))
	s.Run()
	want := sim.FromSeconds(1500 * 8 / 12e6) // 1 ms
	if done != want {
		t.Errorf("service time %v, want %v", done, want)
	}
}

func TestRateLinkBackToBack(t *testing.T) {
	s := sim.New(1)
	count := 0
	link := NewRateLink(s, ConstRate(12e6), qdisc.NewDropTail(0), packet.NodeFunc(func(p *packet.Packet) {
		count++
	}))
	for i := int64(0); i < 100; i++ {
		link.Recv(packet.NewData(1, i, packet.MTU, 0))
	}
	s.RunUntil(99500 * sim.Microsecond) // 99.5 ms: 99 packets done
	if count != 99 {
		t.Errorf("delivered %d in 99.5 ms, want 99", count)
	}
	s.Run()
	if count != 100 {
		t.Errorf("final count %d", count)
	}
}

func TestReceiverCumulativeAck(t *testing.T) {
	s := sim.New(1)
	var acks []*packet.Packet
	out := packet.NodeFunc(func(p *packet.Packet) { acks = append(acks, p) })
	r := NewReceiver(s, 1, out)
	// In order 0,1 then gap (3), then fill (2).
	for _, seq := range []int64{0, 1, 3, 2} {
		r.Recv(packet.NewData(1, seq, packet.MTU, 0))
	}
	if len(acks) != 4 {
		t.Fatalf("acks = %d", len(acks))
	}
	wantCum := []int64{1, 2, 2, 4}
	for i, a := range acks {
		if a.CumAck != wantCum[i] {
			t.Errorf("ack %d cum = %d, want %d", i, a.CumAck, wantCum[i])
		}
	}
	if r.CumAck() != 4 {
		t.Errorf("final cum = %d", r.CumAck())
	}
}

func TestReceiverEchoesMarks(t *testing.T) {
	s := sim.New(1)
	var last *packet.Packet
	r := NewReceiver(s, 1, packet.NodeFunc(func(p *packet.Packet) { last = p }))
	p := packet.NewData(1, 0, packet.MTU, 0)
	p.ECN = packet.Brake
	r.Recv(p)
	if last == nil || !last.EchoValid || last.EchoAccel {
		t.Errorf("brake echo wrong: %+v", last)
	}
}

func TestReceiverIgnoresWrongFlowAndAcks(t *testing.T) {
	s := sim.New(1)
	count := 0
	r := NewReceiver(s, 1, packet.NodeFunc(func(*packet.Packet) { count++ }))
	r.Recv(packet.NewData(2, 0, packet.MTU, 0)) // wrong flow
	a := packet.NewData(1, 0, packet.MTU, 0)
	a.IsAck = true
	r.Recv(a) // an ACK
	if count != 0 || r.Delivered != 0 {
		t.Errorf("receiver accepted foreign traffic: count=%d", count)
	}
}

func TestTraceLinkHighRateMultiOpportunity(t *testing.T) {
	s := sim.New(1)
	// 36 Mbit/s = 3 opportunities per ms sharing timestamps.
	tr := trace.Constant("fast", 36e6)
	sink := &packet.Sink{}
	link := NewTraceLink(s, tr, qdisc.NewDropTail(0), sink)
	for i := int64(0); i < 5000; i++ {
		link.Recv(packet.NewData(1, i, packet.MTU, 0))
	}
	s.RunUntil(sim.Second)
	want := 36e6 / 8 / packet.MTU
	if math.Abs(float64(sink.Count)-want)/want > 0.05 {
		t.Errorf("delivered %d packets, want ≈ %.0f", sink.Count, want)
	}
}
