// Package netem provides the network elements that experiments are wired
// from: propagation-delay wires, bottleneck links driven by Mahimahi-style
// traces or by rate functions, and per-flow receivers that echo ABC
// feedback. (Per-flow routing lives in internal/topo's forwarding
// tables.)
//
// The emulation semantics deliberately mirror Mahimahi (used by the paper
// for all cellular experiments): a trace-driven link delivers up to one
// MTU's worth of bytes per delivery opportunity, unused opportunities are
// wasted, and the bottleneck buffer is a pluggable qdisc.
package netem

import (
	"abc/internal/obs"
	"abc/internal/packet"
	"abc/internal/qdisc"
	"abc/internal/sim"
	"abc/internal/trace"
)

// Wire models a fixed propagation delay with unbounded bandwidth.
type Wire struct {
	S     *sim.Simulator
	Delay sim.Time
	Dst   packet.Node
}

// NewWire returns a wire that delivers packets to dst after delay.
func NewWire(s *sim.Simulator, delay sim.Time, dst packet.Node) *Wire {
	return &Wire{S: s, Delay: delay, Dst: dst}
}

// wireDeliver is the static delivery callback: scheduling it with AfterArgs
// avoids a per-packet closure on the busiest path in the simulator.
func wireDeliver(a, b any) { a.(*Wire).Dst.Recv(b.(*packet.Packet)) }

// Recv implements packet.Node.
func (w *Wire) Recv(p *packet.Packet) {
	w.S.AfterArgs(w.Delay, wireDeliver, w, p)
}

// DeliveryFunc observes packets delivered by a link or receiver.
type DeliveryFunc func(now sim.Time, p *packet.Packet)

// TraceLink is a bottleneck link whose transmissions follow a delivery-
// opportunity trace. Each opportunity carries up to one MTU of bytes; the
// remainder of an opportunity is wasted (Mahimahi semantics).
type TraceLink struct {
	S   *sim.Simulator
	Q   qdisc.Qdisc
	Dst packet.Node
	// CapWindow is the sliding window used to report µ(t) to capacity-
	// aware qdiscs (the paper's emulation gives routers the link rate).
	CapWindow sim.Time
	// Lookahead, when positive, reports the capacity Lookahead into the
	// future instead of the trailing window: the PK-ABC oracle (§6.6).
	Lookahead sim.Time
	// OnDeliver, if set, observes every delivered packet.
	OnDeliver DeliveryFunc

	tr *trace.Trace
	// oppFn is the bound opportunity callback, created once so arming the
	// next delivery does not allocate a method-value closure per packet.
	oppFn func()

	// rec/obsSrc feed the flight recorder (obs.Sink); nil rec = off.
	rec    *obs.Recorder
	obsSrc int32

	// bg is the fluid background aggregate coupled into this link; it
	// consumes a share of each delivery opportunity. bgDebt carries the
	// fractional opportunity bytes the fluid has claimed but not yet
	// been charged, so the long-run split is exact and deterministic.
	bg     qdisc.Background
	bgDebt float64

	running   bool
	delivered int64 // bytes
	startedAt sim.Time
	// opportunityB counts the opportunity bytes elapsed while the link
	// was active (for utilization accounting).
	active bool
}

// NewTraceLink wires a trace-driven link. Capacity-aware qdiscs receive a
// provider reporting the trace's windowed rate.
func NewTraceLink(s *sim.Simulator, tr *trace.Trace, q qdisc.Qdisc, dst packet.Node) *TraceLink {
	l := &TraceLink{S: s, Q: q, Dst: dst, CapWindow: 80 * sim.Millisecond, tr: tr}
	l.oppFn = l.opportunity
	if ca, ok := q.(qdisc.CapacityAware); ok {
		ca.SetCapacityProvider(l.CapacityBps)
	}
	return l
}

// Trace returns the underlying trace.
func (l *TraceLink) Trace() *trace.Trace { return l.tr }

// SetObs implements obs.Sink: the link records enqueue/dequeue/drop
// events under the given source id and forwards the recorder to its
// qdisc when that also implements obs.Sink (the ABC router's mark
// events).
func (l *TraceLink) SetObs(rec *obs.Recorder, src int32) {
	l.rec, l.obsSrc = rec, src
	if s, ok := l.Q.(obs.Sink); ok {
		s.SetObs(rec, src)
	}
}

// SetBackground implements qdisc.BackgroundAware: the fluid aggregate
// eats its service share out of every delivery opportunity, and the
// recorder-style forwarding hands the aggregate to the qdisc too when
// that is background-aware (the ABC router's total-load accounting).
func (l *TraceLink) SetBackground(bg qdisc.Background) {
	l.bg = bg
	if b, ok := l.Q.(qdisc.BackgroundAware); ok {
		b.SetBackground(bg)
	}
}

// CapacityBps reports the link capacity estimate at time now.
func (l *TraceLink) CapacityBps(now sim.Time) float64 {
	if l.Lookahead > 0 {
		return l.tr.FutureCapacityBps(now, l.Lookahead)
	}
	if now < l.CapWindow {
		// Early in the run the trailing window is unpopulated; use the
		// forward window so routers do not see a zero-capacity link.
		return l.tr.FutureCapacityBps(now, l.CapWindow)
	}
	return l.tr.CapacityBps(now, l.CapWindow)
}

// DeliveredBytes reports the total payload bytes delivered.
func (l *TraceLink) DeliveredBytes() int64 { return l.delivered }

// Recv implements packet.Node: arriving packets enter the qdisc.
func (l *TraceLink) Recv(p *packet.Packet) {
	now := l.S.Now()
	if !l.Q.Enqueue(now, p) {
		if l.rec.Enabled(obs.CatPacket) {
			l.rec.Emit(int64(now), obs.EvQdiscDrop, l.obsSrc, int32(p.Flow), 0, 0)
		}
		p.Release() // dropped by the discipline
		return
	}
	if l.rec.Enabled(obs.CatPacket) {
		l.rec.Emit(int64(now), obs.EvEnqueue, l.obsSrc, int32(p.Flow), int64(l.Q.Len()), int64(l.Q.Bytes()))
	}
	if !l.running {
		l.running = true
		l.scheduleNext(now)
	}
}

// scheduleNext arms the next delivery opportunity strictly after now.
func (l *TraceLink) scheduleNext(now sim.Time) {
	next := l.tr.NextOpportunity(now)
	l.S.At(next, l.oppFn)
}

// opportunity fires at a trace delivery instant and drains one MTU per
// opportunity scheduled at this exact instant (traces at high rates carry
// several opportunities per millisecond timestamp).
func (l *TraceLink) opportunity() {
	now := l.S.Now()
	k := int(l.tr.CountIn(now, now+1))
	if k < 1 {
		k = 1
	}
	budget := k * packet.MTU
	if l.bg != nil {
		// The fluid aggregate consumed its share of this opportunity;
		// accumulate fractional bytes so the charge is exact over time.
		l.bgDebt += float64(budget) * l.bg.Share(now)
		if eat := int(l.bgDebt); eat > 0 {
			l.bgDebt -= float64(eat)
			budget -= eat
			if budget < 0 {
				budget = 0
			}
		}
	}
	for budget > 0 {
		p := l.Q.Dequeue(now)
		if p == nil {
			break
		}
		if p.Size > budget && budget < packet.MTU {
			// Does not fit in the remainder of this opportunity; in
			// Mahimahi the packet would wait. Requeueing into an
			// arbitrary qdisc is not possible, so deliver it on this
			// opportunity — with MTU-sized data packets this only
			// affects trailing ACKs and keeps disciplines simple.
			budget = 0
		} else {
			budget -= p.Size
		}
		p.QueueDelay += now - p.EnqueuedAt
		if l.rec.Enabled(obs.CatPacket) {
			l.rec.Emit(int64(now), obs.EvDequeue, l.obsSrc, int32(p.Flow), int64(now-p.EnqueuedAt), int64(l.Q.Len()))
		}
		if l.OnDeliver != nil {
			l.OnDeliver(now, p)
		}
		l.delivered += int64(p.Size)
		l.Dst.Recv(p)
	}
	if l.Q.Len() > 0 {
		l.scheduleNext(now)
	} else {
		l.running = false
	}
}

// RateFunc gives a link's instantaneous capacity in bits/sec.
type RateFunc func(now sim.Time) float64

// RateLink is a store-and-forward link with a (piecewise) time-varying
// bit rate, used for wired segments and stepped wireless links.
type RateLink struct {
	S    *sim.Simulator
	Q    qdisc.Qdisc
	Dst  packet.Node
	Rate RateFunc
	// OnDeliver, if set, observes every transmitted packet.
	OnDeliver DeliveryFunc

	busy      bool
	delivered int64

	// bg is the fluid background aggregate coupled into this link;
	// transmissions run at the residual (1 − share) of the link rate.
	bg qdisc.Background

	// rec/obsSrc feed the flight recorder (obs.Sink); nil rec = off.
	rec    *obs.Recorder
	obsSrc int32
}

// SetObs implements obs.Sink (see TraceLink.SetObs).
func (l *RateLink) SetObs(rec *obs.Recorder, src int32) {
	l.rec, l.obsSrc = rec, src
	if s, ok := l.Q.(obs.Sink); ok {
		s.SetObs(rec, src)
	}
}

// SetBackground implements qdisc.BackgroundAware (see
// TraceLink.SetBackground): foreground transmissions see the residual
// service rate left by the fluid aggregate.
func (l *RateLink) SetBackground(bg qdisc.Background) {
	l.bg = bg
	if b, ok := l.Q.(qdisc.BackgroundAware); ok {
		b.SetBackground(bg)
	}
}

// NewRateLink wires a rate-driven link. Capacity-aware qdiscs receive the
// exact rate function; the provider reads the Rate field at call time, so
// a mid-run SetRate is immediately visible to the discipline.
func NewRateLink(s *sim.Simulator, rate RateFunc, q qdisc.Qdisc, dst packet.Node) *RateLink {
	l := &RateLink{S: s, Q: q, Dst: dst, Rate: rate}
	if ca, ok := q.(qdisc.CapacityAware); ok {
		ca.SetCapacityProvider(func(now sim.Time) float64 { return l.Rate(now) })
	}
	return l
}

// SetRate replaces the link's rate function mid-run. The transmission in
// progress finishes at the rate it started with; subsequent packets (and
// capacity-aware qdiscs) see the new rate.
func (l *RateLink) SetRate(rate RateFunc) {
	l.Rate = rate
	if l.rec.Enabled(obs.CatLink) {
		now := l.S.Now()
		l.rec.Emit(int64(now), obs.EvSetRate, l.obsSrc, -1, int64(rate(now)), 0)
	}
}

// ConstRate returns a RateFunc for a fixed bits/sec capacity.
func ConstRate(bps float64) RateFunc { return func(sim.Time) float64 { return bps } }

// DeliveredBytes reports total bytes transmitted.
func (l *RateLink) DeliveredBytes() int64 { return l.delivered }

// Recv implements packet.Node.
func (l *RateLink) Recv(p *packet.Packet) {
	now := l.S.Now()
	if !l.Q.Enqueue(now, p) {
		if l.rec.Enabled(obs.CatPacket) {
			l.rec.Emit(int64(now), obs.EvQdiscDrop, l.obsSrc, int32(p.Flow), 0, 0)
		}
		p.Release()
		return
	}
	if l.rec.Enabled(obs.CatPacket) {
		l.rec.Emit(int64(now), obs.EvEnqueue, l.obsSrc, int32(p.Flow), int64(l.Q.Len()), int64(l.Q.Bytes()))
	}
	if !l.busy {
		l.startNext()
	}
}

// rateLinkFinish is the static transmission-complete callback (no
// per-packet closure).
func rateLinkFinish(a, b any) { a.(*RateLink).finish(b.(*packet.Packet)) }

// startNext begins transmitting the head packet if any.
func (l *RateLink) startNext() {
	now := l.S.Now()
	p := l.Q.Dequeue(now)
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	p.QueueDelay += now - p.EnqueuedAt
	if l.rec.Enabled(obs.CatPacket) {
		l.rec.Emit(int64(now), obs.EvDequeue, l.obsSrc, int32(p.Flow), int64(now-p.EnqueuedAt), int64(l.Q.Len()))
	}
	rate := l.Rate(now)
	if l.bg != nil {
		// Residual service: the fluid aggregate holds its share of the
		// link for this coupling step.
		rate *= 1 - l.bg.Share(now)
	}
	if rate <= 0 {
		// Zero-rate interval: poll again shortly rather than divide by
		// zero; the packet transmits when capacity returns (re-enqueueing
		// at the head is impossible generically, so treat the packet as
		// transmitting across the outage).
		l.S.AfterArgs(sim.Millisecond, rateLinkFinish, l, p)
		return
	}
	txTime := sim.FromSeconds(float64(p.Size*8) / rate)
	l.S.AfterArgs(txTime, rateLinkFinish, l, p)
}

// finish completes a transmission and hands the packet on.
func (l *RateLink) finish(p *packet.Packet) {
	now := l.S.Now()
	if l.OnDeliver != nil {
		l.OnDeliver(now, p)
	}
	l.delivered += int64(p.Size)
	l.Dst.Recv(p)
	l.startNext()
}
