package fluid

import (
	"math"
	"strings"
	"testing"

	"abc/internal/packet"
	"abc/internal/sim"
)

func TestAggregateValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  AggregateConfig
		want string // error substring; "" = valid
	}{
		{"const-ok", AggregateConfig{Kind: KindConst, RateBps: 1e6}, ""},
		{"onoff-ok", AggregateConfig{Kind: KindOnOff, RateBps: 1e6, OnFor: sim.Second, OffFor: sim.Second}, ""},
		{"aimd-ok", AggregateConfig{Kind: KindAIMD, Flows: 10}, ""},
		{"unknown-kind", AggregateConfig{Kind: "poisson", RateBps: 1e6}, "unknown aggregate kind"},
		{"empty-kind", AggregateConfig{RateBps: 1e6}, "unknown aggregate kind"},
		{"const-zero-rate", AggregateConfig{Kind: KindConst}, "positive rate"},
		{"const-negative-rate", AggregateConfig{Kind: KindConst, RateBps: -3}, "positive rate"},
		{"const-with-schedule", AggregateConfig{Kind: KindConst, RateBps: 1e6, OnFor: sim.Second}, "on/off schedule"},
		{"onoff-missing-off", AggregateConfig{Kind: KindOnOff, RateBps: 1e6, OnFor: sim.Second}, "positive on/off"},
		{"aimd-no-flows", AggregateConfig{Kind: KindAIMD}, "positive flow count"},
		{"aimd-with-rate", AggregateConfig{Kind: KindAIMD, Flows: 10, RateBps: 1e6}, "rate must be unset"},
		{"negative-start", AggregateConfig{Kind: KindConst, RateBps: 1e6, Start: -sim.Second}, "non-negative"},
		{"stop-before-start", AggregateConfig{Kind: KindConst, RateBps: 1e6, Start: 2 * sim.Second, Stop: sim.Second}, "not after start"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewAggregate(c.cfg)
			if c.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

// runCoupler drives one coupler on a fresh simulator against a constant
// capacity and a fixed packet backlog, returning it for inspection.
func runCoupler(t *testing.T, cfg AggregateConfig, muBps float64, packetBacklog int, dur sim.Time) *Coupler {
	t.Helper()
	c, err := NewCoupler(cfg,
		func(sim.Time) float64 { return muBps },
		func() int { return packetBacklog })
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(1)
	c.Start(s, dur)
	s.RunUntil(dur)
	return c
}

// TestCouplerDeterminism: the aggregate is a pure function of its
// inputs — two identical runs produce bit-identical stats.
func TestCouplerDeterminism(t *testing.T) {
	cfg := AggregateConfig{Kind: KindAIMD, Flows: 50}
	a := runCoupler(t, cfg, 20e6, 3000, 20*sim.Second).Stats()
	b := runCoupler(t, cfg, 20e6, 3000, 20*sim.Second).Stats()
	if a != b {
		t.Fatalf("identical runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestCouplerConservation: every offered byte is either served, still
// queued, or explicitly dropped — nothing leaks, in underload or in
// sustained overload against the backlog cap.
func TestCouplerConservation(t *testing.T) {
	for _, tc := range []struct {
		name    string
		rateBps float64
	}{
		{"underload", 4e6},
		{"overload", 30e6},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := runCoupler(t, AggregateConfig{Kind: KindConst, RateBps: tc.rateBps},
				10e6, 0, 10*sim.Second)
			st := c.Stats()
			got := st.ServedBytes + st.DroppedBytes + st.FinalQueueBytes
			if diff := math.Abs(got - st.ArrivedBytes); diff > 1e-6*st.ArrivedBytes {
				t.Fatalf("byte conservation broken: arrived %.0f != served %.0f + dropped %.0f + queued %.0f",
					st.ArrivedBytes, st.ServedBytes, st.DroppedBytes, st.FinalQueueBytes)
			}
			if tc.rateBps > 10e6 && st.DroppedBytes == 0 {
				t.Fatalf("sustained overload never hit the backlog cap")
			}
			if st.Steps == 0 {
				t.Fatal("coupler never stepped")
			}
		})
	}
}

// TestOnOffDutyCycle: on an uncongested link the onoff aggregate's
// served bytes match offered-rate x duty-cycle x time.
func TestOnOffDutyCycle(t *testing.T) {
	const (
		rate = 2e6
		dur  = 20 * sim.Second
	)
	c := runCoupler(t, AggregateConfig{
		Kind: KindOnOff, RateBps: rate,
		OnFor: 3 * sim.Second, OffFor: sim.Second,
	}, 50e6, 0, dur)
	st := c.Stats()
	want := rate / 8 * dur.Seconds() * 3 / 4 // 75% duty cycle
	if diff := math.Abs(st.ServedBytes-want) / want; diff > 0.02 {
		t.Fatalf("onoff served %.0f bytes, want ~%.0f (duty cycle broken, diff %.1f%%)",
			st.ServedBytes, want, diff*100)
	}
	if st.DroppedBytes != 0 {
		t.Fatalf("uncongested onoff run dropped %.0f bytes", st.DroppedBytes)
	}
}

// TestAIMDFixedPoint: with no packet traffic, the closed-loop AIMD
// aggregate's observed queue delay converges to the Eq.-13 fixed point
// x* = A*delta + dt that the continuous model predicts.
func TestAIMDFixedPoint(t *testing.T) {
	const (
		muBps = 20e6
		flows = 50
	)
	cfg := AggregateConfig{Kind: KindAIMD, Flows: flows, MaxQueueBytes: 1e9}
	c := runCoupler(t, cfg, muBps, 0, 60*sim.Second)
	eff := c.cfg // defaults applied
	p := Params{
		Eta:    eff.Eta,
		Delta:  eff.Delta.Seconds(),
		Dt:     eff.Dt.Seconds(),
		Tau:    eff.RTT.Seconds(),
		N:      flows,
		MuPkts: muBps / 8 / packet.MTU,
		L:      eff.RTT.Seconds(),
	}
	if p.A() <= 0 {
		t.Fatalf("test parameters landed in the A<=0 regime (A=%.3f); pick more flows", p.A())
	}
	want := p.FixedPoint()
	got := c.QueueBytes(0) * 8 / muBps
	if diff := math.Abs(got-want) / want; diff > 0.15 {
		t.Fatalf("aimd equilibrium delay %.1f ms, fluid fixed point %.1f ms (diff %.0f%%)",
			got*1e3, want*1e3, diff*100)
	}
}

// TestAIMDConstantCost: the aggregate's per-step work is independent of
// the flow count — a million-flow ensemble steps the same state as a
// ten-flow one (same ring length, same float ops), so Steps and the
// state footprint match exactly.
func TestAIMDConstantCost(t *testing.T) {
	small := runCoupler(t, AggregateConfig{Kind: KindAIMD, Flows: 10}, 20e6, 0, 10*sim.Second)
	big := runCoupler(t, AggregateConfig{Kind: KindAIMD, Flows: 1_000_000}, 20e6, 0, 10*sim.Second)
	if small.Stats().Steps != big.Stats().Steps {
		t.Fatalf("step counts differ with flow count: %d vs %d",
			small.Stats().Steps, big.Stats().Steps)
	}
	if len(small.agg.hist) != len(big.agg.hist) {
		t.Fatalf("history ring scales with flow count: %d vs %d",
			len(small.agg.hist), len(big.agg.hist))
	}
}
