// Hybrid fluid/packet coupling: a background aggregate is a
// deterministic, fixed-step rate process standing in for N virtual flows
// at one bottleneck edge. The Aggregate produces the ensemble's offered
// rate λ(t); the Coupler integrates it against the link's capacity and
// the packet backlog into a fluid queue, a service share and served-byte
// counters, and exposes those to the packet layer through
// qdisc.Background. Cost per simulated second is a handful of float ops
// per step regardless of N — a million background users is the same
// work as ten.
package fluid

import (
	"fmt"

	"abc/internal/packet"
	"abc/internal/qdisc"
	"abc/internal/sim"
)

// Aggregate kinds.
const (
	// KindConst offers a fixed aggregate rate (after the optional ramp).
	KindConst = "const"
	// KindAIMD is a TCP-like AIMD ensemble driven by the Eq.-13
	// machinery: the offered rate follows λ(t) = µ·(1 + ẋ(t)) with
	// ẋ(t) = A − (x(t−τ) − dt)⁺/δ, A = (η−1) + N/(µ_pkts·τ), where the
	// delayed term is the queue delay actually observed at the coupled
	// link — the closed loop a real ensemble's ACK feedback would close.
	KindAIMD = "aimd"
	// KindOnOff gates the constant rate with a diurnal on/off square
	// schedule.
	KindOnOff = "onoff"
)

// AggregateKinds lists the valid Kind values (for validation messages).
func AggregateKinds() []string { return []string{KindConst, KindAIMD, KindOnOff} }

// AggregateConfig parameterizes one background aggregate.
type AggregateConfig struct {
	// Kind selects the rate process: KindConst, KindAIMD or KindOnOff.
	Kind string
	// Flows is N, the number of virtual flows in the ensemble. It enters
	// the AIMD drift term only (constant cost in N); for const/onoff it
	// is descriptive.
	Flows int
	// RateBps is the aggregate offered rate for const/onoff kinds.
	RateBps float64
	// OnFor/OffFor define the onoff square schedule (both required for
	// KindOnOff; the cycle starts in the on phase at Start).
	OnFor, OffFor sim.Time
	// Ramp linearly scales the offered rate from 0 over this window
	// after Start (const/onoff).
	Ramp sim.Time
	// Start/Stop bound the aggregate's activity; Stop 0 means the whole
	// run. The fluid backlog keeps draining after Stop.
	Start, Stop sim.Time
	// Step is the fixed coupling step (default 10 ms).
	Step sim.Time
	// RTT is τ, the ensemble round-trip delay for KindAIMD
	// (default 100 ms).
	RTT sim.Time
	// Eta, Delta, Dt override the Eq.-13 constants for KindAIMD;
	// defaults are the paper's emulation parameters (0.98, 133 ms,
	// 20 ms).
	Eta    float64
	Delta  sim.Time
	Dt     sim.Time
	// MaxQueueBytes caps the fluid backlog, mirroring the bounded
	// buffer real background packets would share (default 250 MTU).
	MaxQueueBytes float64
	// MaxShare caps the service share the aggregate may take from the
	// link in one step, guaranteeing residual foreground service
	// (default 0.95).
	MaxShare float64
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (cfg AggregateConfig) withDefaults() AggregateConfig {
	if cfg.Step <= 0 {
		cfg.Step = 10 * sim.Millisecond
	}
	if cfg.RTT <= 0 {
		cfg.RTT = 100 * sim.Millisecond
	}
	if cfg.Eta <= 0 {
		cfg.Eta = 0.98
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 133 * sim.Millisecond
	}
	if cfg.Dt <= 0 {
		cfg.Dt = 20 * sim.Millisecond
	}
	if cfg.MaxQueueBytes <= 0 {
		cfg.MaxQueueBytes = 250 * packet.MTU
	}
	if cfg.MaxShare <= 0 || cfg.MaxShare >= 1 {
		cfg.MaxShare = 0.95
	}
	return cfg
}

// validate rejects configurations that would silently misbehave.
func (cfg AggregateConfig) validate() error {
	switch cfg.Kind {
	case KindConst, KindOnOff:
		if cfg.RateBps <= 0 {
			return fmt.Errorf("fluid: %s aggregate needs a positive rate, got %g bps", cfg.Kind, cfg.RateBps)
		}
		if cfg.Kind == KindOnOff && (cfg.OnFor <= 0 || cfg.OffFor <= 0) {
			return fmt.Errorf("fluid: onoff aggregate needs positive on/off durations")
		}
		if cfg.Kind == KindConst && (cfg.OnFor != 0 || cfg.OffFor != 0) {
			return fmt.Errorf("fluid: const aggregate does not take an on/off schedule")
		}
	case KindAIMD:
		if cfg.Flows <= 0 {
			return fmt.Errorf("fluid: aimd aggregate needs a positive flow count, got %d", cfg.Flows)
		}
		if cfg.RateBps != 0 {
			return fmt.Errorf("fluid: aimd aggregate derives its rate from Eq. 13; rate must be unset")
		}
	default:
		return fmt.Errorf("fluid: unknown aggregate kind %q (valid: %v)", cfg.Kind, AggregateKinds())
	}
	if cfg.Ramp < 0 || cfg.Start < 0 || cfg.Stop < 0 {
		return fmt.Errorf("fluid: aggregate times must be non-negative")
	}
	if cfg.Stop > 0 && cfg.Stop <= cfg.Start {
		return fmt.Errorf("fluid: aggregate stop %v is not after start %v", cfg.Stop, cfg.Start)
	}
	return nil
}

// Aggregate is the deterministic rate process of one background
// ensemble: each fixed step it produces the offered rate λ(t) in
// bits/sec. AIMD state is the Eq.-13 integrator (Euler step plus a
// delay-history ring, exactly the Simulate machinery) fed with the
// observed queue delay.
type Aggregate struct {
	cfg  AggregateConfig
	hist []float64 // x(t−τ) ring for KindAIMD
	i    int
}

// NewAggregate validates cfg (with defaults applied) and returns the
// stepper.
func NewAggregate(cfg AggregateConfig) (*Aggregate, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	a := &Aggregate{cfg: cfg}
	if cfg.Kind == KindAIMD {
		d := int(cfg.RTT / cfg.Step)
		if d < 1 {
			d = 1
		}
		a.hist = make([]float64, d)
	}
	return a, nil
}

// Config returns the aggregate's effective (defaulted) configuration.
func (a *Aggregate) Config() AggregateConfig { return a.cfg }

// active reports whether now falls inside [Start, Stop).
func (a *Aggregate) active(now sim.Time) bool {
	if now < a.cfg.Start {
		return false
	}
	return a.cfg.Stop == 0 || now < a.cfg.Stop
}

// ramp is the linear ramp-up factor in [0, 1] at time now.
func (a *Aggregate) ramp(now sim.Time) float64 {
	if a.cfg.Ramp <= 0 {
		return 1
	}
	f := (now - a.cfg.Start).Seconds() / a.cfg.Ramp.Seconds()
	if f > 1 {
		return 1
	}
	if f < 0 {
		return 0
	}
	return f
}

// ArrivalBps advances the process by one step and returns the offered
// rate λ(t). muBps is the link's current capacity and queueDelayS the
// total (packet + fluid) queue delay observed at the link — the AIMD
// ensemble's delayed feedback signal.
func (a *Aggregate) ArrivalBps(now sim.Time, muBps, queueDelayS float64) float64 {
	switch a.cfg.Kind {
	case KindConst:
		if !a.active(now) {
			return 0
		}
		return a.cfg.RateBps * a.ramp(now)
	case KindOnOff:
		if !a.active(now) {
			return 0
		}
		cycle := a.cfg.OnFor + a.cfg.OffFor
		if (now-a.cfg.Start)%cycle >= a.cfg.OnFor {
			return 0
		}
		return a.cfg.RateBps * a.ramp(now)
	default: // KindAIMD
		slot := a.i % len(a.hist)
		xd := a.hist[slot] // x(t−τ)
		a.hist[slot] = queueDelayS
		a.i++
		if !a.active(now) || muBps <= 0 {
			return 0
		}
		muPkts := muBps / 8 / packet.MTU
		drift := (a.cfg.Eta - 1) + float64(a.cfg.Flows)/(muPkts*a.cfg.RTT.Seconds())
		excess := xd - a.cfg.Dt.Seconds()
		if excess < 0 {
			excess = 0
		}
		dx := drift - excess/a.cfg.Delta.Seconds()
		lambda := muBps * (1 + dx)
		if lambda < 0 {
			lambda = 0
		}
		if lim := 2 * muBps; lambda > lim {
			lambda = lim
		}
		return lambda
	}
}

// CouplerStats summarizes one aggregate's run for experiment results.
type CouplerStats struct {
	ArrivedBytes    float64
	ServedBytes     float64
	DroppedBytes    float64
	FinalQueueBytes float64
	// MeanShare is the time-averaged fraction of link service the
	// aggregate consumed over its steps.
	MeanShare float64
	Steps     int
}

// Coupler integrates an Aggregate against one link: each step it turns
// the offered rate into fluid arrivals, splits the step's service bytes
// between the fluid backlog and the packet backlog in proportion to
// demand (FIFO sharing at step resolution), and updates the occupancy,
// share and served counters the packet layer reads. It implements
// qdisc.Background and is single-threaded on the edge's home simulator,
// so it composes with sharded execution like any other edge-local
// state.
type Coupler struct {
	agg *Aggregate
	cfg AggregateConfig

	capacity    func(now sim.Time) float64
	packetBytes func() int

	queue    float64 // fluid backlog, bytes
	share    float64 // service share taken in the last step
	lastBps  float64 // fluid service rate over the last step
	arrived  float64
	served   float64
	dropped  float64
	shareSum float64
	steps    int
}

// NewCoupler wires an aggregate to a link described by its capacity
// sampler (bits/sec) and packet-backlog reader (both required).
func NewCoupler(cfg AggregateConfig, capacity func(now sim.Time) float64, packetBytes func() int) (*Coupler, error) {
	agg, err := NewAggregate(cfg)
	if err != nil {
		return nil, err
	}
	if capacity == nil || packetBytes == nil {
		return nil, fmt.Errorf("fluid: coupler needs capacity and packet-backlog providers")
	}
	return &Coupler{agg: agg, cfg: agg.Config(), capacity: capacity, packetBytes: packetBytes}, nil
}

// Start arms the coupler's fixed-step timer on the edge's home
// simulator. Steps beyond until stop rescheduling.
func (c *Coupler) Start(s *sim.Simulator, until sim.Time) {
	s.At(c.cfg.Start, func() {
		s.Every(c.cfg.Step, func() bool {
			now := s.Now()
			if now > until {
				return false
			}
			c.step(now)
			return true
		})
	})
}

// step advances the coupling by one fixed interval ending at now.
func (c *Coupler) step(now sim.Time) {
	h := c.cfg.Step.Seconds()
	mu := c.capacity(now)
	if mu < 0 {
		mu = 0
	}
	qp := float64(c.packetBytes())
	// Observed total queue delay at the link: the AIMD ensemble's
	// feedback signal. During an outage with standing backlog it
	// saturates at δ, matching the router's convention.
	obs := 0.0
	if mu > 0 {
		obs = (c.queue + qp) * 8 / mu
	} else if c.queue+qp > 0 {
		obs = c.cfg.Delta.Seconds()
	}
	arr := c.agg.ArrivalBps(now, mu, obs) * h / 8
	c.arrived += arr
	capBytes := mu * h / 8
	demand := c.queue + arr
	served, share := 0.0, 0.0
	if capBytes > 0 && demand > 0 {
		// FIFO sharing at step resolution: if everything fits, the
		// fluid drains fully; otherwise service splits in proportion to
		// backlog-plus-arrivals, capped so foreground packets always
		// retain residual service.
		if demand+qp <= capBytes {
			served = demand
		} else {
			served = capBytes * demand / (demand + qp)
		}
		if lim := c.cfg.MaxShare * capBytes; served > lim {
			served = lim
		}
		share = served / capBytes
	}
	c.queue = demand - served
	if c.queue < 0 {
		c.queue = 0
	}
	if c.queue > c.cfg.MaxQueueBytes {
		c.dropped += c.queue - c.cfg.MaxQueueBytes
		c.queue = c.cfg.MaxQueueBytes
	}
	c.served += served
	c.lastBps = served * 8 / h
	c.share = share
	c.shareSum += share
	c.steps++
}

// QueueBytes implements qdisc.Background.
func (c *Coupler) QueueBytes(sim.Time) float64 { return c.queue }

// Share implements qdisc.Background.
func (c *Coupler) Share(sim.Time) float64 { return c.share }

// ServedBps implements qdisc.Background.
func (c *Coupler) ServedBps(sim.Time) float64 { return c.lastBps }

// ServedBytes implements qdisc.Background.
func (c *Coupler) ServedBytes(sim.Time) float64 { return c.served }

// Stats returns the run summary.
func (c *Coupler) Stats() CouplerStats {
	st := CouplerStats{
		ArrivedBytes:    c.arrived,
		ServedBytes:     c.served,
		DroppedBytes:    c.dropped,
		FinalQueueBytes: c.queue,
		Steps:           c.steps,
	}
	if c.steps > 0 {
		st.MeanShare = c.shareSum / float64(c.steps)
	}
	return st
}

// Interface conformance.
var _ qdisc.Background = (*Coupler)(nil)
