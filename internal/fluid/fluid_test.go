package fluid

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"abc/internal/sim"
)

func TestDriftConstant(t *testing.T) {
	p := DefaultParams()
	// A = (η−1) + N/(µ·l)
	want := (p.Eta - 1) + p.N/(p.MuPkts*p.L)
	if math.Abs(p.A()-want) > 1e-12 {
		t.Errorf("A = %v, want %v", p.A(), want)
	}
	if p.A() <= 0 {
		t.Error("default params must sit in the A>0 regime")
	}
}

func TestFixedPoint(t *testing.T) {
	p := DefaultParams()
	want := p.A()*p.Delta + p.Dt
	if math.Abs(p.FixedPoint()-want) > 1e-12 {
		t.Errorf("x* = %v, want %v", p.FixedPoint(), want)
	}
	// A<0 regime: empty queue.
	p.N = 0.1
	if p.A() >= 0 {
		t.Skip("parameters not in A<0 regime")
	}
	if p.FixedPoint() != 0 {
		t.Errorf("x* = %v for A<0, want 0", p.FixedPoint())
	}
}

func TestStableByTheorem(t *testing.T) {
	p := DefaultParams()
	p.Delta = 0.5 * p.Tau
	if p.StableByTheorem() {
		t.Error("delta below 2tau/3 declared stable")
	}
	p.Delta = 0.7 * p.Tau
	if !p.StableByTheorem() {
		t.Error("delta above 2tau/3 declared unstable")
	}
	// A<0: stable for any delta (Appendix A case 1).
	p.N = 0.01
	p.Delta = 0.01 * p.Tau
	if !p.StableByTheorem() {
		t.Error("A<0 must be unconditionally stable")
	}
}

func TestConvergesAboveBoundary(t *testing.T) {
	p := DefaultParams()
	p.Delta = 1.33 * p.Tau
	res := Simulate(p, 120*sim.Second, sim.Millisecond)
	if !res.Converged {
		t.Errorf("did not converge: final err %.4f, p2p %.4f", res.FinalError, res.PeakToPeak)
	}
	// And to the predicted fixed point.
	last := res.X[len(res.X)-1]
	if math.Abs(last-p.FixedPoint()) > 0.01 {
		t.Errorf("settled at %.4f, fixed point %.4f", last, p.FixedPoint())
	}
}

func TestOscillatesBelowBoundary(t *testing.T) {
	p := DefaultParams()
	p.Delta = 0.25 * p.Tau
	res := Simulate(p, 120*sim.Second, sim.Millisecond)
	if res.Converged {
		t.Error("converged well below the stability boundary")
	}
	if res.PeakToPeak < 0.001 {
		t.Errorf("expected a visible limit cycle, p2p = %.5f", res.PeakToPeak)
	}
}

func TestAnegativeDrainsToZero(t *testing.T) {
	p := DefaultParams()
	p.N = 0.1 // A < 0
	if p.A() >= 0 {
		t.Skip("parameters not in A<0 regime")
	}
	// Even with a hopeless delta, the queue drains (case 1).
	p.Delta = 0.05 * p.Tau
	res := Simulate(p, 60*sim.Second, sim.Millisecond)
	last := res.X[len(res.X)-1]
	if last > 0.001 {
		t.Errorf("queue did not drain: %.4f", last)
	}
}

// TestBoundaryMatchesTheorem: the empirical convergence boundary from a
// sweep must be within 20% of the theorem's 2/3.
func TestBoundaryMatchesTheorem(t *testing.T) {
	pts := SweepDelta(DefaultParams(), []float64{
		0.3, 0.4, 0.5, 0.55, 0.6, 0.65, 0.7, 0.8, 0.9, 1.0, 1.2,
	}, 120*sim.Second)
	boundary := -1.0
	for _, p := range pts {
		if p.Converged {
			boundary = p.DeltaOverTau
			break
		}
	}
	if boundary < 0 {
		t.Fatal("nothing converged")
	}
	if boundary < 0.45 || boundary > 0.8 {
		t.Errorf("boundary %.2f too far from 2/3", boundary)
	}
	// Monotonicity: once converged, larger ratios stay converged.
	conv := false
	for _, p := range pts {
		if conv && !p.Converged {
			t.Errorf("non-monotone convergence at ratio %.2f", p.DeltaOverTau)
		}
		if p.Converged {
			conv = true
		}
	}
}

// TestInitialConditionIndependence: stability is global — different X0
// values converge to the same fixed point.
func TestInitialConditionIndependence(t *testing.T) {
	f := func(x0Raw uint8) bool {
		p := DefaultParams()
		p.Delta = 1.5 * p.Tau
		p.X0 = float64(x0Raw) / 255 * 0.5 // up to 500 ms initial queue
		res := Simulate(p, 150*sim.Second, sim.Millisecond)
		last := res.X[len(res.X)-1]
		return math.Abs(last-p.FixedPoint()) < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestGridMatchesScalar is the batched path's contract: SimulateGrid
// must reproduce Simulate bit for bit — same samples, same time axis,
// same convergence verdict — for arbitrary parameter grids. The batched
// integrator is a pure layout change, so any divergence at all (even one
// ULP) is a reordered floating-point operation.
func TestGridMatchesScalar(t *testing.T) {
	const horizon = 20 * sim.Second
	f := func(dRaw, tRaw, xRaw, nRaw uint8) bool {
		base := DefaultParams()
		grid := make([]Params, 3)
		for g := range grid {
			p := base
			// Spread the raw bytes into distinct, well-posed regimes per
			// point so one quick.Check draw exercises a heterogeneous grid
			// (different τ means different ring sizes in the packed slice).
			p.Tau = 0.02 + float64((tRaw+uint8(g)*37))/255*0.2
			p.Delta = (0.2 + float64(dRaw)/255*1.3) * p.Tau
			p.X0 = float64(xRaw) / 255 * 0.5
			p.N = 1 + float64(nRaw)/255*20
			grid[g] = p
		}
		batched := SimulateGrid(grid, horizon, sim.Millisecond)
		for g, p := range grid {
			scalar := Simulate(p, horizon, sim.Millisecond)
			if !reflect.DeepEqual(scalar, batched[g]) {
				t.Logf("grid point %d diverged: scalar %+v vs batched %+v", g, scalar.FinalError, batched[g].FinalError)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSimulateGridEmpty(t *testing.T) {
	if rs := SimulateGrid(nil, 10*sim.Second, sim.Millisecond); len(rs) != 0 {
		t.Fatalf("empty grid returned %d results", len(rs))
	}
}

// TestBoundaryProbe: the two-pass batched probe must land near the
// theorem's 2/3 and agree with the coarse sweep's verdict.
func TestBoundaryProbe(t *testing.T) {
	r, ok := Boundary(DefaultParams(), 120*sim.Second)
	if !ok {
		t.Fatal("no convergent ratio found")
	}
	if r < 0.45 || r > 0.8 {
		t.Errorf("empirical boundary %.3f too far from 2/3", r)
	}
	// A hopeless horizon (shorter than the trajectory needs to move at
	// all) must report !ok, not a fabricated boundary.
	p := DefaultParams()
	p.X0 = 0.5
	if _, ok := Boundary(p, 50*sim.Millisecond); ok {
		t.Error("50ms horizon cannot certify convergence")
	}
}

// BenchmarkSweepScalar / BenchmarkSweepGrid measure the sweep both ways:
// point-at-a-time through the scalar integrator vs one batched pass.
func sweepRatios() []float64 {
	rs := make([]float64, 24)
	for i := range rs {
		rs[i] = 0.3 + float64(i)*0.05
	}
	return rs
}

func BenchmarkSweepScalar(b *testing.B) {
	base := DefaultParams()
	ratios := sweepRatios()
	b.ReportAllocs()
	for b.Loop() {
		for _, r := range ratios {
			p := base
			p.Delta = r * p.Tau
			Simulate(p, 30*sim.Second, sim.Millisecond)
		}
	}
}

func BenchmarkSweepGrid(b *testing.B) {
	base := DefaultParams()
	ratios := sweepRatios()
	b.ReportAllocs()
	for b.Loop() {
		SweepDelta(base, ratios, 30*sim.Second)
	}
}

func TestSimulateSamplesTimeline(t *testing.T) {
	res := Simulate(DefaultParams(), 10*sim.Second, sim.Millisecond)
	if len(res.X) != len(res.Times) || len(res.X) == 0 {
		t.Fatalf("series sizes: %d vs %d", len(res.X), len(res.Times))
	}
	for i := 1; i < len(res.Times); i++ {
		if res.Times[i] <= res.Times[i-1] {
			t.Fatal("non-monotone time axis")
		}
	}
	for _, x := range res.X {
		if x < 0 {
			t.Fatal("negative queuing delay")
		}
	}
}
