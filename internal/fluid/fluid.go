// Package fluid implements the fluid model of the ABC control loop from
// Appendix A and numerically validates Theorem 3.1: with N flows, round-
// trip propagation delay τ and additive increase of one packet every l
// seconds, the queuing delay obeys the delay-differential equation
//
//	ẋ(t) = A − (1/δ)·(x(t−τ) − dt)⁺,   A = (η−1) + N/(µ·l)
//
// (Eq. 13, with µ in packets/sec), which is globally asymptotically stable
// when A > 0 iff δ > (2/3)·τ (via Yorke's condition). The integrator here
// lets tests and benches sweep (δ, τ) and observe the stability boundary.
package fluid

import (
	"math"

	"abc/internal/sim"
)

// Params configures the fluid model.
type Params struct {
	// Eta is the target utilization η.
	Eta float64
	// Delta is δ in seconds.
	Delta float64
	// Dt is the delay threshold dt in seconds.
	Dt float64
	// Tau is the round-trip propagation delay τ in seconds.
	Tau float64
	// N is the number of flows.
	N float64
	// MuPkts is the link capacity in packets/sec.
	MuPkts float64
	// L is the additive-increase period l in seconds (1 window increase
	// per RTT means l ≈ τ).
	L float64
	// X0 is the initial queuing delay in seconds.
	X0 float64
}

// DefaultParams puts the model in the interesting regime of Theorem 3.1:
// A > 0 (additive increase outweighs the η headroom), where stability
// genuinely requires δ > (2/3)τ. Ten flows on a ~5 Mbit/s link with the
// paper's η=0.98, dt=20 ms and τ=100 ms give A ≈ +0.22.
func DefaultParams() Params {
	return Params{
		Eta:    0.98,
		Delta:  0.133,
		Dt:     0.020,
		Tau:    0.100,
		N:      10,
		MuPkts: 5e6 / 8 / 1500,
		L:      0.100,
		X0:     0.200,
	}
}

// A returns the drift constant A of Eq. 13.
func (p Params) A() float64 { return (p.Eta - 1) + p.N/(p.MuPkts*p.L) }

// FixedPoint returns the predicted equilibrium queuing delay x*: 0 when
// A < 0, and A·δ + dt when A ≥ 0 (Appendix A, case 2).
func (p Params) FixedPoint() float64 {
	a := p.A()
	if a < 0 {
		return 0
	}
	return a*p.Delta + p.Dt
}

// StableByTheorem reports Theorem 3.1's criterion δ > (2/3)·τ. When
// A < 0 the system is stable for every δ (Appendix A, case 1).
func (p Params) StableByTheorem() bool {
	if p.A() < 0 {
		return true
	}
	return p.Delta > 2.0/3.0*p.Tau
}

// Result summarizes one integration.
type Result struct {
	// X is the sampled queuing-delay trajectory (seconds).
	X []float64
	// Times are the sample instants (seconds).
	Times []float64
	// Converged reports whether x(t) settled to the fixed point.
	Converged bool
	// FinalError is |x(T) − x*| at the end of the run.
	FinalError float64
	// PeakToPeak is the oscillation amplitude over the last quarter of
	// the run.
	PeakToPeak float64
}

// Simulate integrates Eq. 13 with forward Euler and a delay-history ring
// buffer for the given horizon.
func Simulate(p Params, horizon sim.Time, step sim.Time) Result {
	if step <= 0 {
		step = sim.Millisecond
	}
	h := step.Seconds()
	steps := int(horizon.Seconds()/h) + 1
	delaySteps := int(p.Tau / h)
	if delaySteps < 1 {
		delaySteps = 1
	}
	// History ring: x(t−τ) for the first τ seconds is the initial
	// condition (constant history).
	hist := make([]float64, delaySteps)
	for i := range hist {
		hist[i] = p.X0
	}
	a := p.A()
	x := p.X0
	res := Result{}
	sampleEvery := steps / 2000
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	for i := 0; i < steps; i++ {
		xd := hist[i%delaySteps] // x(t−τ)
		excess := xd - p.Dt
		if excess < 0 {
			excess = 0
		}
		dx := a - excess/p.Delta
		hist[i%delaySteps] = x
		x += dx * h
		if x < 0 {
			x = 0
		}
		if i%sampleEvery == 0 {
			res.Times = append(res.Times, float64(i)*h)
			res.X = append(res.X, x)
		}
	}
	// Convergence assessment over the last quarter.
	target := p.FixedPoint()
	q := len(res.X) * 3 / 4
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range res.X[q:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	res.PeakToPeak = hi - lo
	res.FinalError = math.Abs(res.X[len(res.X)-1] - target)
	// Converged: the trajectory's tail hugs the fixed point with small
	// residual oscillation relative to the initial displacement.
	scale := math.Abs(p.X0-target) + 1e-6
	res.Converged = res.FinalError < 0.05*scale+1e-4 && res.PeakToPeak < 0.1*scale+2e-4
	return res
}

// BoundaryPoint is one (δ/τ, converged) observation from a sweep.
type BoundaryPoint struct {
	DeltaOverTau float64
	Converged    bool
	PeakToPeak   float64
}

// SweepDelta integrates the model across a range of δ/τ ratios, exposing
// the stability boundary Theorem 3.1 places at 2/3.
func SweepDelta(base Params, ratios []float64, horizon sim.Time) []BoundaryPoint {
	out := make([]BoundaryPoint, 0, len(ratios))
	for _, r := range ratios {
		p := base
		p.Delta = r * p.Tau
		res := Simulate(p, horizon, sim.Millisecond)
		out = append(out, BoundaryPoint{DeltaOverTau: r, Converged: res.Converged, PeakToPeak: res.PeakToPeak})
	}
	return out
}
