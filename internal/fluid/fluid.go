// Package fluid implements the fluid model of the ABC control loop from
// Appendix A and numerically validates Theorem 3.1: with N flows, round-
// trip propagation delay τ and additive increase of one packet every l
// seconds, the queuing delay obeys the delay-differential equation
//
//	ẋ(t) = A − (1/δ)·(x(t−τ) − dt)⁺,   A = (η−1) + N/(µ·l)
//
// (Eq. 13, with µ in packets/sec), which is globally asymptotically stable
// when A > 0 iff δ > (2/3)·τ (via Yorke's condition). The integrator here
// lets tests and benches sweep (δ, τ) and observe the stability boundary.
package fluid

import (
	"math"

	"abc/internal/sim"
)

// Params configures the fluid model.
type Params struct {
	// Eta is the target utilization η.
	Eta float64
	// Delta is δ in seconds.
	Delta float64
	// Dt is the delay threshold dt in seconds.
	Dt float64
	// Tau is the round-trip propagation delay τ in seconds.
	Tau float64
	// N is the number of flows.
	N float64
	// MuPkts is the link capacity in packets/sec.
	MuPkts float64
	// L is the additive-increase period l in seconds (1 window increase
	// per RTT means l ≈ τ).
	L float64
	// X0 is the initial queuing delay in seconds.
	X0 float64
}

// DefaultParams puts the model in the interesting regime of Theorem 3.1:
// A > 0 (additive increase outweighs the η headroom), where stability
// genuinely requires δ > (2/3)τ. Ten flows on a ~5 Mbit/s link with the
// paper's η=0.98, dt=20 ms and τ=100 ms give A ≈ +0.22.
func DefaultParams() Params {
	return Params{
		Eta:    0.98,
		Delta:  0.133,
		Dt:     0.020,
		Tau:    0.100,
		N:      10,
		MuPkts: 5e6 / 8 / 1500,
		L:      0.100,
		X0:     0.200,
	}
}

// A returns the drift constant A of Eq. 13.
func (p Params) A() float64 { return (p.Eta - 1) + p.N/(p.MuPkts*p.L) }

// FixedPoint returns the predicted equilibrium queuing delay x*: 0 when
// A < 0, and A·δ + dt when A ≥ 0 (Appendix A, case 2).
func (p Params) FixedPoint() float64 {
	a := p.A()
	if a < 0 {
		return 0
	}
	return a*p.Delta + p.Dt
}

// StableByTheorem reports Theorem 3.1's criterion δ > (2/3)·τ. When
// A < 0 the system is stable for every δ (Appendix A, case 1).
func (p Params) StableByTheorem() bool {
	if p.A() < 0 {
		return true
	}
	return p.Delta > 2.0/3.0*p.Tau
}

// Result summarizes one integration.
type Result struct {
	// X is the sampled queuing-delay trajectory (seconds).
	X []float64
	// Times are the sample instants (seconds).
	Times []float64
	// Converged reports whether x(t) settled to the fixed point.
	Converged bool
	// FinalError is |x(T) − x*| at the end of the run.
	FinalError float64
	// PeakToPeak is the oscillation amplitude over the last quarter of
	// the run.
	PeakToPeak float64
}

// Simulate integrates Eq. 13 with forward Euler and a delay-history ring
// buffer for the given horizon.
func Simulate(p Params, horizon sim.Time, step sim.Time) Result {
	if step <= 0 {
		step = sim.Millisecond
	}
	h := step.Seconds()
	steps := int(horizon.Seconds()/h) + 1
	delaySteps := int(p.Tau / h)
	if delaySteps < 1 {
		delaySteps = 1
	}
	// History ring: x(t−τ) for the first τ seconds is the initial
	// condition (constant history).
	hist := make([]float64, delaySteps)
	for i := range hist {
		hist[i] = p.X0
	}
	a := p.A()
	x := p.X0
	res := Result{}
	sampleEvery := steps / 2000
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	for i := 0; i < steps; i++ {
		xd := hist[i%delaySteps] // x(t−τ)
		excess := xd - p.Dt
		if excess < 0 {
			excess = 0
		}
		dx := a - excess/p.Delta
		hist[i%delaySteps] = x
		x += dx * h
		if x < 0 {
			x = 0
		}
		if i%sampleEvery == 0 {
			res.Times = append(res.Times, float64(i)*h)
			res.X = append(res.X, x)
		}
	}
	assess(p, &res)
	return res
}

// assess fills in the convergence fields from the sampled trajectory:
// oscillation amplitude over the last quarter, final distance to the
// fixed point, and the combined convergence verdict.
func assess(p Params, res *Result) {
	target := p.FixedPoint()
	q := len(res.X) * 3 / 4
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range res.X[q:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	res.PeakToPeak = hi - lo
	res.FinalError = math.Abs(res.X[len(res.X)-1] - target)
	// Converged: the trajectory's tail hugs the fixed point with small
	// residual oscillation relative to the initial displacement.
	scale := math.Abs(p.X0-target) + 1e-6
	res.Converged = res.FinalError < 0.05*scale+1e-4 && res.PeakToPeak < 0.1*scale+2e-4
}

// SimulateGrid integrates Eq. 13 for every grid point in one pass over
// the time axis. The per-point state lives in structure-of-arrays form —
// one packed delay-history backing slice, contiguous x/A vectors — so a
// (δ, τ) sweep walks a handful of flat slices instead of re-entering the
// scalar integrator per point. Each point performs exactly the floating-
// point operations Simulate performs in the same order, so the results
// are bit-identical to the scalar path (the property tests pin this).
func SimulateGrid(ps []Params, horizon sim.Time, step sim.Time) []Result {
	if step <= 0 {
		step = sim.Millisecond
	}
	h := step.Seconds()
	steps := int(horizon.Seconds()/h) + 1
	n := len(ps)
	res := make([]Result, n)
	if n == 0 {
		return res
	}
	// Pack every point's delay-history ring into one backing slice;
	// offs[g] is where point g's ring starts.
	offs := make([]int, n+1)
	delaySteps := make([]int, n)
	for g := range ps {
		d := int(ps[g].Tau / h)
		if d < 1 {
			d = 1
		}
		delaySteps[g] = d
		offs[g+1] = offs[g] + d
	}
	hist := make([]float64, offs[n])
	x := make([]float64, n)
	a := make([]float64, n)
	for g := range ps {
		for i := offs[g]; i < offs[g+1]; i++ {
			hist[i] = ps[g].X0
		}
		x[g] = ps[g].X0
		a[g] = ps[g].A()
	}
	sampleEvery := steps / 2000
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	for i := 0; i < steps; i++ {
		sample := i%sampleEvery == 0
		ts := float64(i) * h
		for g := range ps {
			slot := offs[g] + i%delaySteps[g]
			xd := hist[slot] // x(t−τ)
			excess := xd - ps[g].Dt
			if excess < 0 {
				excess = 0
			}
			dx := a[g] - excess/ps[g].Delta
			hist[slot] = x[g]
			xg := x[g] + dx*h
			if xg < 0 {
				xg = 0
			}
			x[g] = xg
			if sample {
				res[g].Times = append(res[g].Times, ts)
				res[g].X = append(res[g].X, xg)
			}
		}
	}
	for g := range ps {
		assess(ps[g], &res[g])
	}
	return res
}

// BoundaryPoint is one (δ/τ, converged) observation from a sweep.
type BoundaryPoint struct {
	DeltaOverTau float64
	Converged    bool
	PeakToPeak   float64
}

// SweepDelta integrates the model across a range of δ/τ ratios, exposing
// the stability boundary Theorem 3.1 places at 2/3. The whole sweep runs
// as one batched grid.
func SweepDelta(base Params, ratios []float64, horizon sim.Time) []BoundaryPoint {
	grid := make([]Params, len(ratios))
	for i, r := range ratios {
		grid[i] = base
		grid[i].Delta = r * base.Tau
	}
	rs := SimulateGrid(grid, horizon, sim.Millisecond)
	out := make([]BoundaryPoint, 0, len(ratios))
	for i, r := range ratios {
		out = append(out, BoundaryPoint{DeltaOverTau: r, Converged: rs[i].Converged, PeakToPeak: rs[i].PeakToPeak})
	}
	return out
}

// Boundary locates the empirical stability boundary as a δ/τ ratio: a
// coarse sweep over [0.3, 1.2] finds the first convergent ratio, and one
// refinement pass probes the interval below it. Both passes evaluate as
// a single batched grid each. ok is false when nothing converges (the
// horizon was too short or the parameters sit far outside the theorem's
// regime).
func Boundary(base Params, horizon sim.Time) (ratio float64, ok bool) {
	coarse := make([]float64, 0, 10)
	for r := 0.3; r <= 1.21; r += 0.1 {
		coarse = append(coarse, r)
	}
	pts := SweepDelta(base, coarse, horizon)
	first := -1
	for i, p := range pts {
		if p.Converged {
			first = i
			break
		}
	}
	if first < 0 {
		return 0, false
	}
	if first == 0 {
		return pts[0].DeltaOverTau, true
	}
	lo, hi := pts[first-1].DeltaOverTau, pts[first].DeltaOverTau
	fine := make([]float64, 0, 9)
	for k := 1; k < 10; k++ {
		fine = append(fine, lo+(hi-lo)*float64(k)/10)
	}
	for _, p := range SweepDelta(base, fine, horizon) {
		if p.Converged {
			return p.DeltaOverTau, true
		}
	}
	return hi, true
}
