package app

import (
	"math"
	"testing"

	"abc/internal/sim"
)

// queueRecorder is a stub Transport capturing requested transfer sizes.
type queueRecorder struct{ sizes []int }

func (q *queueRecorder) Queue(n int) { q.sizes = append(q.sizes, n) }

func (q *queueRecorder) last() int { return q.sizes[len(q.sizes)-1] }

// driveChunk completes the outstanding download as if the link ran at
// rateBps, returning the new clock.
func driveChunk(a *ABR, q *queueRecorder, now sim.Time, rateBps float64) sim.Time {
	took := sim.FromSeconds(float64(q.last()*8) / rateBps)
	now += took
	a.OnTransferComplete(now)
	return now
}

// TestRatePolicyDownshiftsBeforeBufferDrains pins the rate policy's
// defining behaviour on a step-down trace: the harmonic-mean predictor
// collapses after a single slow chunk, so the client drops to a lower
// rung while it still has buffer — it never rebuffers — instead of
// riding the stale high rung into a stall.
func TestRatePolicyDownshiftsBeforeBufferDrains(t *testing.T) {
	s := sim.New(1)
	q := &queueRecorder{}
	a := NewABR(s, q, ABRConfig{
		LadderKbps:    []float64{300, 3000},
		ChunkS:        2,
		MaxBufS:       1000, // no buffer-cap pacing: requests stay immediate
		Policy:        PolicyRate,
		HistoryChunks: 2,
	})
	now := sim.Time(0)
	a.Start(now)

	// With no samples the policy starts at the lowest rung.
	lo, hi := a.chunkBytes(0), a.chunkBytes(1)
	if q.last() != lo {
		t.Fatalf("first request %d bytes, want lowest rung %d", q.last(), lo)
	}

	// Fast phase at 8 Mbit/s: the prediction rises and the client climbs
	// to the top rung.
	for i := 0; i < 6; i++ {
		now = driveChunk(a, q, now, 8e6)
	}
	if q.last() != hi {
		t.Fatalf("after fast phase requesting %d bytes, want top rung %d", q.last(), hi)
	}

	// Step-down to 2 Mbit/s. The in-flight top-rung chunk is the
	// unavoidable surprise; it must complete before the buffer drains,
	// and the very next request must already be the lower rung.
	now = driveChunk(a, q, now, 2e6)
	if a.bufS <= 0 {
		t.Fatalf("buffer drained (%.2f s) before the policy could react", a.bufS)
	}
	if q.last() != lo {
		t.Fatalf("first request after the step-down is %d bytes, want downshift to %d", q.last(), lo)
	}
	for i := 0; i < 5; i++ {
		now = driveChunk(a, q, now, 2e6)
	}
	a.Finish(now)
	if qoe := a.QoE(); qoe.RebufferS != 0 {
		t.Fatalf("rate policy rebuffered %.2f s on a step it should have absorbed", qoe.RebufferS)
	}
}

// TestRatePolicyHarmonicMean pins the predictor itself: the harmonic
// mean is dominated by slow samples, which is exactly why the policy is
// conservative after a bad chunk.
func TestRatePolicyHarmonicMean(t *testing.T) {
	s := sim.New(1)
	a := NewABR(s, &queueRecorder{}, ABRConfig{Policy: PolicyRate, HistoryChunks: 3})
	a.rates = []float64{8000, 8000, 500}
	want := 3 / (1/8000.0 + 1/8000.0 + 1/500.0)
	if got := a.predictKbps(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("harmonic mean = %v, want %v", got, want)
	}
	// The window slides: a fourth sample evicts the oldest.
	a.recordRate(1500*1000, sim.Second) // 12000 kbps
	if len(a.rates) != 3 || a.rates[0] != 8000 || a.rates[2] != 12000 {
		t.Fatalf("rate window = %v, want [8000 500 12000]", a.rates)
	}
}
