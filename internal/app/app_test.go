package app

import (
	"math/rand"
	"testing"

	"abc/internal/metrics"
	"abc/internal/sim"
)

func TestBoundedParetoStaysInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := BoundedPareto{Min: 10 * 1024, Max: 1024 * 1024, Alpha: 1.2}
	small := 0
	for i := 0; i < 20000; i++ {
		n := d.Draw(rng)
		if n < d.Min || n > d.Max {
			t.Fatalf("draw %d outside [%d, %d]", n, d.Min, d.Max)
		}
		if n < 4*d.Min {
			small++
		}
	}
	// Heavy-tailed web sizes: most flows are mice.
	if frac := float64(small) / 20000; frac < 0.5 {
		t.Errorf("only %.2f of draws were mice; distribution is not heavy-tailed-ish", frac)
	}
}

func TestBoundedParetoDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if n := (BoundedPareto{Min: 500, Max: 500, Alpha: 1.2}).Draw(rng); n != 500 {
		t.Errorf("degenerate range drew %d, want 500", n)
	}
}

func TestChoiceWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := Choice{Sizes: []int{100, 200}, Weights: []float64{0, 1}}
	for i := 0; i < 100; i++ {
		if n := c.Draw(rng); n != 200 {
			t.Fatalf("zero-weight size drawn: %d", n)
		}
	}
	if n := (Choice{}).Draw(rng); n != 0 {
		t.Errorf("empty choice drew %d, want 0", n)
	}
}

func TestArrivalGaps(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := Poisson{PerSec: 10}
	var sum sim.Time
	for i := 0; i < 5000; i++ {
		g := p.Next(rng)
		if g < 0 {
			t.Fatalf("negative gap %v", g)
		}
		sum += g
	}
	mean := sum.Seconds() / 5000
	if mean < 0.08 || mean > 0.12 {
		t.Errorf("poisson mean gap %.4f s, want ~0.1 s", mean)
	}
	if g := (Deterministic{Gap: sim.Second}).Next(rng); g != sim.Second {
		t.Errorf("deterministic gap %v, want 1 s", g)
	}
}

// fakeTransport completes every queued transfer at a fixed download
// rate, modelling an otherwise-idle link.
type fakeTransport struct {
	s    *sim.Simulator
	bps  float64
	app  App
	busy bool
}

func (f *fakeTransport) Queue(n int) {
	if f.busy {
		panic("app queued a transfer while one was in flight")
	}
	f.busy = true
	f.s.After(sim.FromSeconds(float64(n)*8/f.bps), func() {
		f.busy = false
		f.app.OnTransferComplete(f.s.Now())
	})
}

func TestABRFastLinkClimbsLadderNoRebuffer(t *testing.T) {
	s := sim.New(1)
	ft := &fakeTransport{s: s, bps: 20e6}
	a := NewABR(s, ft, ABRConfig{})
	ft.app = a
	s.At(0, func() { a.Start(s.Now()) })
	s.RunUntil(60 * sim.Second)
	a.Finish(60 * sim.Second)
	q := a.QoE()
	if q.Chunks == 0 {
		t.Fatal("no chunks downloaded")
	}
	if q.RebufferRatio != 0 {
		t.Errorf("fast link rebuffered: %+v", q)
	}
	// A 20 Mbit/s link sustains the top rung (4300 kbps); the session
	// mean must sit well above the ladder floor.
	if q.MeanKbps < 2000 {
		t.Errorf("mean bitrate %.0f kbps too low for a 20 Mbit/s link", q.MeanKbps)
	}
	// Buffer-cap pacing keeps the client from downloading the whole
	// session instantly: chunks is bounded by playable time.
	maxChunks := int(60/2) + int(16/2) + 2
	if q.Chunks > maxChunks {
		t.Errorf("downloaded %d chunks, cap pacing should bound near %d", q.Chunks, maxChunks)
	}
}

func TestABRSlowLinkStaysLowAndRebuffers(t *testing.T) {
	s := sim.New(1)
	// 200 kbit/s cannot sustain even the 300 kbps floor: the client must
	// pin the bottom rung and stall.
	ft := &fakeTransport{s: s, bps: 200e3}
	a := NewABR(s, ft, ABRConfig{})
	ft.app = a
	s.At(0, func() { a.Start(s.Now()) })
	s.RunUntil(60 * sim.Second)
	a.Finish(60 * sim.Second)
	q := a.QoE()
	if q.MeanKbps != 300 {
		t.Errorf("mean bitrate %.0f kbps, want pinned at 300", q.MeanKbps)
	}
	if q.Switches != 0 {
		t.Errorf("switches %d, want 0 when pinned", q.Switches)
	}
	if q.RebufferRatio <= 0.2 {
		t.Errorf("rebuffer ratio %.3f, want substantial stalling on a starved link", q.RebufferRatio)
	}
}

func TestRPCThinkLoopRecordsFCT(t *testing.T) {
	s := sim.New(2)
	ft := &fakeTransport{s: s, bps: 8e6}
	rec := &metrics.DelayRecorder{}
	r := NewRPC(s, ft, RPCConfig{ThinkMeanS: 0.05, RespBytes: 100_000, FCT: rec, MeasureFrom: sim.Second}, s.Rand())
	ft.app = r
	s.At(0, func() { r.Start(s.Now()) })
	s.RunUntil(30 * sim.Second)
	r.Finish(30 * sim.Second)
	if r.Calls < 50 {
		t.Fatalf("only %d calls in 30 s with 150 ms cycle", r.Calls)
	}
	if rec.Count() >= r.Calls {
		t.Errorf("MeasureFrom did not exclude warmup calls: %d recorded of %d", rec.Count(), r.Calls)
	}
	// 100 KB at 8 Mbit/s is exactly 100 ms per call on the fake link.
	if m := rec.Mean(); m < 99 || m > 101 {
		t.Errorf("FCT mean %.2f ms, want ~100 ms", m)
	}
	if r.FCT() != rec {
		t.Error("FCT() does not expose the shared recorder")
	}
}
