// ABR video client: a bitrate ladder, chunk downloads over one
// persistent flow, a playback-buffer model with rebuffer accounting, and
// two adaptation policies — buffer-based (BBA-style, the default) and
// rate-based (harmonic-mean throughput prediction over the last k chunk
// downloads). Quality decisions react to the transport purely through
// chunk download times, so the client exercises any congestion-control
// scheme the harness binds underneath.
package app

import (
	"abc/internal/metrics"
	"abc/internal/sim"
)

// ABRConfig parameterizes the video client. Zero fields take defaults.
type ABRConfig struct {
	// LadderKbps is the ascending bitrate ladder (default a 240p–1080p
	// style ladder: 300, 750, 1200, 2850, 4300 kbit/s).
	LadderKbps []float64
	// ChunkS is the chunk duration in seconds of video (default 2).
	ChunkS float64
	// MaxBufS caps the playback buffer; the client pauses requests when
	// the next chunk would overflow it (default 16).
	MaxBufS float64
	// StartupS is the buffered video needed to (re)start playback
	// (default one chunk).
	StartupS float64
	// ReservoirS and CushionS are the BBA policy's corner points: at or
	// below the reservoir the client requests the lowest rung, at or
	// above the cushion the highest, and in between it maps the buffer
	// linearly across the ladder (defaults 4 and 12).
	ReservoirS, CushionS float64
	// Policy selects the adaptation policy: "buffer" (BBA, the default)
	// or "rate" (throughput prediction). The rate policy predicts the
	// next chunk's throughput as the harmonic mean of the last
	// HistoryChunks download rates — the harmonic mean is dominated by
	// the slow samples, so one bad chunk pulls the prediction down
	// immediately and the client downshifts before the buffer drains —
	// and requests the highest rung at or below SafetyFactor times the
	// prediction.
	Policy string
	// HistoryChunks is the rate policy's prediction window in chunks
	// (default 5).
	HistoryChunks int
	// SafetyFactor scales the rate prediction before the ladder lookup
	// (default 0.9).
	SafetyFactor float64
}

// Policy names.
const (
	PolicyBuffer = "buffer"
	PolicyRate   = "rate"
)

// withDefaults fills zero fields.
func (c ABRConfig) withDefaults() ABRConfig {
	if len(c.LadderKbps) == 0 {
		c.LadderKbps = []float64{300, 750, 1200, 2850, 4300}
	}
	if c.ChunkS <= 0 {
		c.ChunkS = 2
	}
	if c.MaxBufS <= 0 {
		c.MaxBufS = 16
	}
	if c.StartupS <= 0 {
		c.StartupS = c.ChunkS
	}
	if c.ReservoirS <= 0 {
		c.ReservoirS = 4
	}
	if c.CushionS <= c.ReservoirS {
		c.CushionS = c.ReservoirS + 8
	}
	if c.Policy == "" {
		c.Policy = PolicyBuffer
	}
	if c.HistoryChunks <= 0 {
		c.HistoryChunks = 5
	}
	if c.SafetyFactor <= 0 {
		c.SafetyFactor = 0.9
	}
	return c
}

// ABR is one video session. Construct with NewABR.
type ABR struct {
	s   *sim.Simulator
	t   Transport
	cfg ABRConfig

	startAt     sim.Time
	lastAt      sim.Time
	bufS        float64 // seconds of video buffered
	playing     bool
	startupDone bool
	downloading bool
	curIdx      int      // rung of the chunk being (or last) downloaded
	reqAt       sim.Time // when the current download was requested
	// rates is the rate policy's sliding window of measured download
	// throughputs (kbit/s), most recent last, at most HistoryChunks long.
	rates []float64

	chunks   int
	switches int
	sumKbps  float64
	playedS  float64
	rebufS   float64
	startupS float64
	finished bool
}

// NewABR builds a video client over the transport.
func NewABR(s *sim.Simulator, t Transport, cfg ABRConfig) *ABR {
	return &ABR{s: s, t: t, cfg: cfg.withDefaults()}
}

// Start implements App: begin the session and request the first chunk.
func (a *ABR) Start(now sim.Time) {
	a.startAt = now
	a.lastAt = now
	a.request(now)
}

// chunkBytes is the transfer size of one chunk at ladder rung idx.
func (a *ABR) chunkBytes(idx int) int {
	n := int(a.cfg.LadderKbps[idx] * 1000 * a.cfg.ChunkS / 8)
	if n < 1 {
		n = 1
	}
	return n
}

// policy picks the next chunk's ladder rung.
func (a *ABR) policy() int {
	if a.cfg.Policy == PolicyRate {
		return a.ratePolicy()
	}
	return a.bufferPolicy()
}

// bufferPolicy maps the current buffer level to a ladder rung (BBA):
// lowest rung in the reservoir, highest above the cushion, linear in
// between.
func (a *ABR) bufferPolicy() int {
	top := len(a.cfg.LadderKbps) - 1
	switch {
	case a.bufS <= a.cfg.ReservoirS:
		return 0
	case a.bufS >= a.cfg.CushionS:
		return top
	}
	frac := (a.bufS - a.cfg.ReservoirS) / (a.cfg.CushionS - a.cfg.ReservoirS)
	idx := int(frac * float64(top+1))
	if idx > top {
		idx = top
	}
	return idx
}

// ratePolicy requests the highest rung whose bitrate fits under the
// safety-scaled harmonic mean of the recent download throughputs. With
// no samples yet it starts conservatively at the lowest rung.
func (a *ABR) ratePolicy() int {
	pred := a.predictKbps()
	if pred <= 0 {
		return 0
	}
	budget := a.cfg.SafetyFactor * pred
	idx := 0
	for i, kbps := range a.cfg.LadderKbps {
		if kbps <= budget {
			idx = i
		}
	}
	return idx
}

// predictKbps is the harmonic mean of the sliding rate window (0 with
// no samples).
func (a *ABR) predictKbps() float64 {
	if len(a.rates) == 0 {
		return 0
	}
	var inv float64
	for _, r := range a.rates {
		inv += 1 / r
	}
	return float64(len(a.rates)) / inv
}

// recordRate measures one finished download and slides the window.
func (a *ABR) recordRate(bytes int, took sim.Time) {
	if took <= 0 {
		return
	}
	kbps := float64(bytes) * 8 / 1000 / took.Seconds()
	a.rates = append(a.rates, kbps)
	if len(a.rates) > a.cfg.HistoryChunks {
		a.rates = a.rates[1:]
	}
}

// advance settles playback accounting up to now: while playing the
// buffer drains in real time, and any deficit is a stall.
func (a *ABR) advance(now sim.Time) {
	dt := (now - a.lastAt).Seconds()
	a.lastAt = now
	if dt <= 0 {
		return
	}
	if a.playing {
		if a.bufS >= dt {
			a.bufS -= dt
			a.playedS += dt
		} else {
			a.playedS += a.bufS
			a.rebufS += dt - a.bufS
			a.bufS = 0
			a.playing = false
		}
	} else if a.startupDone {
		a.rebufS += dt
	}
}

// request picks the next chunk's bitrate and queues its download.
func (a *ABR) request(now sim.Time) {
	idx := a.policy()
	if a.chunks > 0 && idx != a.curIdx {
		a.switches++
	}
	a.curIdx = idx
	a.downloading = true
	a.reqAt = now
	a.t.Queue(a.chunkBytes(idx))
}

// OnTransferComplete implements App: one chunk finished downloading.
func (a *ABR) OnTransferComplete(now sim.Time) {
	if !a.downloading {
		return
	}
	a.downloading = false
	a.recordRate(a.chunkBytes(a.curIdx), now-a.reqAt)
	a.advance(now)
	a.chunks++
	a.sumKbps += a.cfg.LadderKbps[a.curIdx]
	a.bufS += a.cfg.ChunkS
	if !a.playing && a.bufS >= a.cfg.StartupS {
		a.playing = true
		if !a.startupDone {
			a.startupDone = true
			a.startupS = (now - a.startAt).Seconds()
		}
	}
	// Buffer-cap pacing: wait until the next chunk fits before asking
	// for it; while playing the wait drains exactly the overflow.
	if over := a.bufS + a.cfg.ChunkS - a.cfg.MaxBufS; over > 0 && a.playing {
		a.s.After(sim.FromSeconds(over), func() {
			if a.finished {
				return
			}
			a.advance(a.s.Now())
			a.request(a.s.Now())
		})
		return
	}
	a.request(now)
}

// Finish implements App: flush playback accounting at end of run.
func (a *ABR) Finish(now sim.Time) {
	if a.finished {
		return
	}
	a.finished = true
	a.advance(now)
}

// QoE summarizes the session.
func (a *ABR) QoE() metrics.QoE {
	q := metrics.QoE{
		Chunks:    a.chunks,
		Switches:  a.switches,
		StartupS:  a.startupS,
		PlayedS:   a.playedS,
		RebufferS: a.rebufS,
	}
	if a.chunks > 0 {
		q.MeanKbps = a.sumKbps / float64(a.chunks)
	}
	if tot := a.playedS + a.rebufS; tot > 0 {
		q.RebufferRatio = a.rebufS / tot
	}
	return q
}
