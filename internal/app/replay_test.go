package app

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"abc/internal/sim"
)

func TestReplayRoundTripExact(t *testing.T) {
	// Synthesize a log, serialize it, parse it back, and replay it: the
	// recovered (time, bytes) sequence must match the original exactly.
	times := []sim.Time{
		5 * sim.Millisecond,
		250 * sim.Millisecond,
		251 * sim.Millisecond,
		1900 * sim.Millisecond,
		7 * sim.Second,
	}
	sizes := []int{1, 40960, 123456, 40960, 9 * 1024 * 1024}
	orig, err := NewReplay(times, sizes)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteReplay(&buf); err != nil {
		t.Fatal(err)
	}
	rp, err := ParseReplay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Len() != len(times) {
		t.Fatalf("parsed %d entries, want %d", rp.Len(), len(times))
	}
	// Replaying through the Arrival/SizeDist interfaces in the order the
	// workload runner uses them (gap, then size) reconstructs the log.
	var at sim.Time
	for i := range times {
		gap := rp.Next(nil)
		at += gap
		if at != times[i] {
			t.Fatalf("arrival %d replayed at %v, want %v", i, at, times[i])
		}
		if got := rp.Draw(nil); got != sizes[i] {
			t.Fatalf("arrival %d drew %d bytes, want %d", i, got, sizes[i])
		}
	}
	if gap := rp.Next(nil); gap != sim.Time(math.MaxInt64) {
		t.Fatalf("exhausted replay yielded gap %v, want unreachable", gap)
	}
	// Reset rewinds for a second run over the same Spec.
	rp.Reset()
	if gap := rp.Next(nil); gap != times[0] {
		t.Fatalf("after Reset first gap = %v, want %v", gap, times[0])
	}
}

func TestReplaySkippedDrawStaysAligned(t *testing.T) {
	// If a spawn is rejected (MaxActive cap) Draw is never called for
	// that arrival; the next Next/Draw pair must still see the next
	// entry, not a stale one.
	rp, err := NewReplay(
		[]sim.Time{sim.Second, 2 * sim.Second, 3 * sim.Second},
		[]int{111, 222, 333})
	if err != nil {
		t.Fatal(err)
	}
	rp.Next(nil) // arrival 0, Draw skipped
	rp.Next(nil) // arrival 1
	if got := rp.Draw(nil); got != 222 {
		t.Fatalf("after a skipped draw, Draw = %d, want 222", got)
	}
}

func TestParseReplayRejectsMalformedLogs(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", "# only a comment\n"},
		{"no comma", "1.0 500\n"},
		{"bad time", "x,500\n"},
		{"bad bytes", "1.0,many\n"},
		{"negative time", "-1.0,500\n"},
		{"decreasing times", "2.0,500\n1.0,500\n"},
		{"zero bytes", "1.0,0\n"},
	}
	for _, tc := range cases {
		if _, err := ParseReplay(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Comments, blanks and whitespace are tolerated.
	rp, err := ParseReplay(strings.NewReader("# log\n\n 0.5 , 100 \n1.5,200\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rp.Len() != 2 {
		t.Fatalf("parsed %d entries, want 2", rp.Len())
	}
	if at, b := rp.Entry(0); at != 500*sim.Millisecond || b != 100 {
		t.Fatalf("entry 0 = (%v, %d)", at, b)
	}
}
