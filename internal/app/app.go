// Package app models application-level traffic on top of the transport
// framework: open-loop flow arrival processes with empirical size
// distributions (web-like short flows, fixed-size RPCs), and closed-loop
// clients — an ABR video player and a request-response RPC client — that
// drive a persistent flow through whatever congestion-control scheme
// carries it.
//
// The package is transport-agnostic: an application sees only a
// Transport (queue bytes, learn about completed transfers) and the
// simulator clock, so the experiment harness can bind any registered
// scheme underneath. All randomness comes from the simulation RNG,
// keeping application workloads as deterministic as the packet layer.
package app

import "abc/internal/sim"

// Transport is the slice of one flow's sending side an application
// drives. Queue appends bytes to the flow's send buffer and (re)starts
// transmission; the harness reports delivery by calling the
// application's OnTransferComplete once everything queued so far has
// been delivered and acknowledged.
type Transport interface {
	Queue(n int)
}

// App is a closed-loop application bound to one flow. The harness calls
// Start when the flow starts, OnTransferComplete whenever the bytes
// queued so far are fully acknowledged, and Finish once when the run
// ends so time-based accounting (playback buffers) can flush.
type App interface {
	Start(now sim.Time)
	OnTransferComplete(now sim.Time)
	Finish(now sim.Time)
}
