// Request-response RPC client: an exponential think time between calls
// and a fixed (or jittered) response size per call, downloaded over one
// persistent flow. Each call's completion time is a flow-completion-time
// sample for the interactive-traffic metrics.
package app

import (
	"math/rand"

	"abc/internal/metrics"
	"abc/internal/sim"
)

// RPCConfig parameterizes an RPC client. Zero fields take defaults.
type RPCConfig struct {
	// ThinkMeanS is the mean exponential think time between a response
	// completing and the next request (default 0.2 s).
	ThinkMeanS float64
	// RespBytes is the response size per call (default 100 KB). The
	// request itself is abstracted into the think time: the simulated
	// flow carries response bytes only.
	RespBytes int
	// FCT, when non-nil, receives every call's completion time; sharing
	// one recorder across clients pools a scenario's whole RPC
	// population. Nil gives the client a private recorder.
	FCT *metrics.DelayRecorder
	// MeasureFrom excludes calls issued before this time from the FCT
	// recorder (the harness sets it to the scenario warmup). Calls and
	// Bytes still count the whole session.
	MeasureFrom sim.Time
}

// withDefaults fills zero fields.
func (c RPCConfig) withDefaults() RPCConfig {
	if c.ThinkMeanS <= 0 {
		c.ThinkMeanS = 0.2
	}
	if c.RespBytes <= 0 {
		c.RespBytes = 100 * 1024
	}
	if c.FCT == nil {
		c.FCT = &metrics.DelayRecorder{}
	}
	return c
}

// RPC is one request-response client. Construct with NewRPC.
type RPC struct {
	s   *sim.Simulator
	t   Transport
	cfg RPCConfig
	rng *rand.Rand

	issuedAt sim.Time
	pending  bool
	finished bool

	// Calls counts completed request-response exchanges.
	Calls int
	// Bytes counts response bytes across completed calls.
	Bytes int64
}

// NewRPC builds an RPC client over the transport. rng must be the
// simulation RNG so think times replay deterministically.
func NewRPC(s *sim.Simulator, t Transport, cfg RPCConfig, rng *rand.Rand) *RPC {
	return &RPC{s: s, t: t, cfg: cfg.withDefaults(), rng: rng}
}

// FCT exposes the completion-time recorder (shared or private).
func (r *RPC) FCT() *metrics.DelayRecorder { return r.cfg.FCT }

// Start implements App: issue the first request immediately.
func (r *RPC) Start(now sim.Time) { r.issue(now) }

func (r *RPC) issue(now sim.Time) {
	r.issuedAt = now
	r.pending = true
	r.t.Queue(r.cfg.RespBytes)
}

// OnTransferComplete implements App: record the call and think.
func (r *RPC) OnTransferComplete(now sim.Time) {
	if !r.pending {
		return
	}
	r.pending = false
	r.Calls++
	r.Bytes += int64(r.cfg.RespBytes)
	if r.issuedAt >= r.cfg.MeasureFrom {
		r.cfg.FCT.Add(now - r.issuedAt)
	}
	think := sim.FromSeconds(r.rng.ExpFloat64() * r.cfg.ThinkMeanS)
	r.s.After(think, func() {
		if r.finished {
			return
		}
		r.issue(r.s.Now())
	})
}

// Finish implements App: stop issuing new requests.
func (r *RPC) Finish(sim.Time) { r.finished = true }
