// Trace-driven workload replay: a recorded (time, bytes) log — one
// transfer request per line — replayed verbatim as an arrival process.
// Unlike the synthetic processes, a replay fixes both halves of the
// workload: Next yields the recorded inter-arrival gaps and Draw the
// recorded transfer sizes, so a production trace (or a log synthesized
// by a test) reproduces its exact offered load, burstiness included.
package app

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"abc/internal/sim"
)

// Replay is a recorded arrival log. It implements both Arrival and
// SizeDist, consuming entries in order: the workload runner draws the
// gap to the next arrival (Next), then that arrival's size (Draw). An
// exhausted replay reports an unreachable next arrival, ending the
// process. Times are offsets from the workload's start.
type Replay struct {
	times []sim.Time
	bytes []int

	next int      // entry the next Next will emit
	cur  int      // entry whose size Draw reports
	prev sim.Time // time of the previously emitted entry
}

// NewReplay builds a replay from parallel time/size slices. Times must
// be non-decreasing and sizes positive.
func NewReplay(times []sim.Time, sizes []int) (*Replay, error) {
	if len(times) != len(sizes) {
		return nil, fmt.Errorf("replay: %d times vs %d sizes", len(times), len(sizes))
	}
	for i := range times {
		if times[i] < 0 {
			return nil, fmt.Errorf("replay: entry %d: negative time", i)
		}
		if i > 0 && times[i] < times[i-1] {
			return nil, fmt.Errorf("replay: entry %d: time %v before previous %v", i, times[i], times[i-1])
		}
		if sizes[i] < 1 {
			return nil, fmt.Errorf("replay: entry %d: size %d < 1 byte", i, sizes[i])
		}
	}
	return &Replay{times: times, bytes: sizes}, nil
}

// Len reports the number of recorded arrivals.
func (r *Replay) Len() int { return len(r.times) }

// Entry returns the i-th recorded (time, bytes) pair.
func (r *Replay) Entry(i int) (sim.Time, int) { return r.times[i], r.bytes[i] }

// Reset rewinds the replay so the same instance can drive another run.
func (r *Replay) Reset() { r.next, r.cur, r.prev = 0, 0, 0 }

// Next implements Arrival: the gap from the previous arrival to the
// next recorded one, or an unreachable gap once the log is exhausted.
func (r *Replay) Next(*rand.Rand) sim.Time {
	if r.next >= len(r.times) {
		return sim.Time(math.MaxInt64)
	}
	gap := r.times[r.next] - r.prev
	r.prev = r.times[r.next]
	r.cur = r.next
	r.next++
	return gap
}

// Draw implements SizeDist: the size recorded for the arrival Next just
// emitted.
func (r *Replay) Draw(*rand.Rand) int {
	if len(r.bytes) == 0 {
		return 0
	}
	return r.bytes[r.cur]
}

// ParseReplay reads a (time_s, bytes) CSV log: one "seconds,bytes" pair
// per line, '#' comments and blank lines ignored. Times are offsets
// from the workload's start, non-decreasing; sizes are whole bytes.
func ParseReplay(r io.Reader) (*Replay, error) {
	var times []sim.Time
	var sizes []int
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		tStr, bStr, ok := strings.Cut(line, ",")
		if !ok {
			return nil, fmt.Errorf("replay: line %d: want \"time_s,bytes\", got %q", lineNo, line)
		}
		t, err := strconv.ParseFloat(strings.TrimSpace(tStr), 64)
		if err != nil {
			return nil, fmt.Errorf("replay: line %d: bad time: %v", lineNo, err)
		}
		b, err := strconv.Atoi(strings.TrimSpace(bStr))
		if err != nil {
			return nil, fmt.Errorf("replay: line %d: bad byte count: %v", lineNo, err)
		}
		times = append(times, sim.FromSeconds(t))
		sizes = append(sizes, b)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("replay: %v", err)
	}
	if len(times) == 0 {
		return nil, fmt.Errorf("replay: log has no entries")
	}
	rp, err := NewReplay(times, sizes)
	if err != nil {
		return nil, err
	}
	return rp, nil
}

// LoadReplay reads a replay log from a file. Only regular files are
// accepted: scenario compilation calls this on user- (and fuzzer-)
// supplied paths, and a device file like /dev/stdin would block forever.
func LoadReplay(path string) (*Replay, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("replay: %v", err)
	}
	defer f.Close()
	if st, err := f.Stat(); err != nil {
		return nil, fmt.Errorf("replay: %v", err)
	} else if !st.Mode().IsRegular() {
		return nil, fmt.Errorf("replay: %s is not a regular file", path)
	}
	rp, err := ParseReplay(f)
	if err != nil {
		return nil, fmt.Errorf("replay: %s: %v", path, err)
	}
	return rp, nil
}

// WriteReplay writes the log in the format ParseReplay reads, so
// synthesized workloads round-trip exactly (times have nanosecond
// precision, well past any log's).
func (r *Replay) WriteReplay(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# time_s,bytes")
	for i := range r.times {
		fmt.Fprintf(bw, "%.9f,%d\n", r.times[i].Seconds(), r.bytes[i])
	}
	return bw.Flush()
}
