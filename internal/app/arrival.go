// Open-loop workload primitives: arrival processes and flow-size
// distributions. Both draw exclusively from the RNG they are handed (the
// simulation's), so a seeded run replays the exact same workload.
package app

import (
	"math"
	"math/rand"

	"abc/internal/sim"
)

// Arrival generates inter-arrival gaps for an open-loop flow workload.
type Arrival interface {
	// Next draws the gap until the next arrival.
	Next(rng *rand.Rand) sim.Time
}

// Poisson is a Poisson arrival process: exponential inter-arrival times
// at PerSec flows per second.
type Poisson struct{ PerSec float64 }

// Next implements Arrival.
func (p Poisson) Next(rng *rand.Rand) sim.Time {
	if p.PerSec <= 0 {
		return sim.Time(math.MaxInt64)
	}
	return sim.FromSeconds(rng.ExpFloat64() / p.PerSec)
}

// Deterministic spaces arrivals exactly Gap apart (constant-rate
// benchmarking workloads).
type Deterministic struct{ Gap sim.Time }

// Next implements Arrival.
func (d Deterministic) Next(*rand.Rand) sim.Time {
	if d.Gap <= 0 {
		return sim.Time(math.MaxInt64)
	}
	return d.Gap
}

// SizeDist draws per-flow transfer sizes in bytes.
type SizeDist interface {
	Draw(rng *rand.Rand) int
}

// FixedSize gives every flow the same size (RPC-style workloads).
type FixedSize struct{ Bytes int }

// Draw implements SizeDist.
func (f FixedSize) Draw(*rand.Rand) int { return f.Bytes }

// BoundedPareto is the classic heavy-tailed web-flow size model: a
// Pareto(Alpha) tail truncated to [Min, Max] bytes by inverse-CDF
// sampling, so most flows are mice and a few are elephants.
type BoundedPareto struct {
	Min, Max int
	Alpha    float64
}

// Draw implements SizeDist.
func (b BoundedPareto) Draw(rng *rand.Rand) int {
	lo, hi := float64(b.Min), float64(b.Max)
	if lo < 1 {
		lo = 1
	}
	if hi <= lo {
		return int(lo)
	}
	a := b.Alpha
	if a <= 0 {
		a = 1.2
	}
	// Inverse CDF of the bounded Pareto on [lo, hi].
	u := rng.Float64()
	la, ha := math.Pow(lo, a), math.Pow(hi, a)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/a)
	if x < lo {
		x = lo
	}
	if x > hi {
		x = hi
	}
	return int(x)
}

// Choice draws from an explicit empirical distribution: Sizes[i] is
// picked with probability proportional to Weights[i] (equal weights when
// Weights is empty). It encodes measured workload CDFs as data.
type Choice struct {
	Sizes   []int
	Weights []float64
}

// Draw implements SizeDist.
func (c Choice) Draw(rng *rand.Rand) int {
	if len(c.Sizes) == 0 {
		return 0
	}
	if len(c.Weights) != len(c.Sizes) {
		return c.Sizes[rng.Intn(len(c.Sizes))]
	}
	var total float64
	for _, w := range c.Weights {
		total += w
	}
	if total <= 0 {
		return c.Sizes[rng.Intn(len(c.Sizes))]
	}
	u := rng.Float64() * total
	for i, w := range c.Weights {
		u -= w
		if u < 0 {
			return c.Sizes[i]
		}
	}
	return c.Sizes[len(c.Sizes)-1]
}
