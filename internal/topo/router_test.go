package topo

import (
	"testing"

	"abc/internal/packet"
	"abc/internal/sim"
)

// twoPathGraph builds a diamond: a → b → d over e1,e2 and a → c → d over
// e3,e4, all 8 Mbit/s rate links.
func twoPathGraph(t *testing.T, s *sim.Simulator) (g *Graph, e1, e2, e3, e4 int) {
	t.Helper()
	g = New(s)
	a, b, c, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("c"), g.AddNode("d")
	e1 = rateEdge(t, g, s, a, b, 2*sim.Millisecond, Impairments{})
	e2 = rateEdge(t, g, s, b, d, 2*sim.Millisecond, Impairments{})
	e3 = rateEdge(t, g, s, a, c, 2*sim.Millisecond, Impairments{})
	e4 = rateEdge(t, g, s, c, d, 2*sim.Millisecond, Impairments{})
	return g, e1, e2, e3, e4
}

func TestRerouteMovesTraffic(t *testing.T) {
	s := sim.New(1)
	g, e1, e2, e3, e4 := twoPathGraph(t, s)
	sink := &packet.Sink{}
	entry, err := g.RouteFlow(1, false, []int{e1, e2}, 0, sink)
	if err != nil {
		t.Fatal(err)
	}
	// 100 packets over a second; swap paths halfway through. The swap
	// happens between arrivals, so nothing is in flight and every packet
	// must be delivered — the early ones via b, the late ones via c.
	for i := 0; i < 100; i++ {
		seq := int64(i)
		s.At(sim.Time(i)*10*sim.Millisecond, func() {
			entry.Recv(packet.NewData(1, seq, packet.MTU, s.Now()))
		})
	}
	s.At(505*sim.Millisecond, func() {
		if err := g.Router().Reroute(1, false, []int{e3, e4}); err != nil {
			t.Errorf("reroute: %v", err)
		}
	})
	s.RunUntil(2 * sim.Second)
	if sink.Count != 100 {
		t.Fatalf("delivered %d/100 across the reroute", sink.Count)
	}
	if d := g.UnroutedDrops(); d != 0 {
		t.Fatalf("unrouted drops = %d, want 0 (swap happened with nothing in flight)", d)
	}
	if got := g.Edge(e3).Link.DeliveredBytes(); got != 49*packet.MTU {
		t.Fatalf("new path carried %d bytes, want %d", got, 49*packet.MTU)
	}
	if route, ok := g.RouteOf(1, false); !ok || len(route) != 2 || route[0] != e3 || route[1] != e4 {
		t.Fatalf("RouteOf after reroute = %v, %v", route, ok)
	}
}

func TestRerouteStrandsInFlightAsCountedDrops(t *testing.T) {
	s := sim.New(1)
	g, e1, e2, e3, e4 := twoPathGraph(t, s)
	sink := &packet.Sink{}
	entry, err := g.RouteFlow(1, false, []int{e1, e2}, 0, sink)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	// Burst everything at t=0: most packets are queued on e1 when the
	// route moves, drain to node b, and must be counted there — not
	// duplicated onto the new path, not silently lost.
	s.At(0, func() {
		for i := 0; i < n; i++ {
			entry.Recv(packet.NewData(1, int64(i), packet.MTU, s.Now()))
		}
	})
	s.At(10*sim.Millisecond, func() {
		if err := g.Router().Reroute(1, false, []int{e3, e4}); err != nil {
			t.Errorf("reroute: %v", err)
		}
	})
	s.RunUntil(2 * sim.Second)
	drops := g.UnroutedDrops()
	if drops == 0 {
		t.Fatal("expected in-flight packets stranded on the old path to be counted")
	}
	if int64(sink.Count)+drops != n {
		t.Fatalf("conservation violated: delivered %d + drops %d != sent %d", sink.Count, drops, n)
	}
	if g.Node(2).Drops != 0 { // node c is on the new path only
		t.Fatalf("node c counted %d drops, want 0", g.Node(2).Drops)
	}
}

func TestRerouteValidation(t *testing.T) {
	s := sim.New(1)
	g, e1, e2, e3, e4 := twoPathGraph(t, s)
	if _, err := g.RouteFlow(1, false, []int{e1, e2}, 0, &packet.Sink{}); err != nil {
		t.Fatal(err)
	}
	// Direct (edge-less) ACK route: reroutable routes need junctions.
	if _, err := g.RouteFlow(1, true, nil, sim.Millisecond, &packet.Sink{}); err != nil {
		t.Fatal(err)
	}
	r := g.Router()
	cases := []struct {
		name string
		err  error
	}{
		{"unknown flow", r.CheckReroute(9, false, []int{e3, e4})},
		{"direct route", r.CheckReroute(1, true, []int{e3, e4})},
		{"empty route", r.CheckReroute(1, false, nil)},
		{"wrong origin", r.CheckReroute(1, false, []int{e4})},
		{"non-contiguous", r.CheckReroute(1, false, []int{e3, e2})},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if err := r.CheckReroute(1, false, []int{e3, e4}); err != nil {
		t.Errorf("valid reroute rejected: %v", err)
	}
	// CheckReroute must not have mutated anything.
	if route, _ := g.RouteOf(1, false); route[0] != e1 {
		t.Error("CheckReroute mutated the installed route")
	}
}

func TestCheckPathRejectsLoopToOrigin(t *testing.T) {
	s := sim.New(1)
	g := New(s)
	a, b := g.AddNode("a"), g.AddNode("b")
	e1 := rateEdge(t, g, s, a, b, 0, Impairments{})
	e2 := rateEdge(t, g, s, b, a, 0, Impairments{})
	if err := g.CheckPath([]int{e1, e2}); err == nil {
		t.Fatal("route looping back to its origin accepted; the origin's table entry would conflict with the terminal's")
	}
}

func TestLinkDownGate(t *testing.T) {
	s := sim.New(1)
	g := New(s)
	a, b := g.AddNode("a"), g.AddNode("b")
	e1 := rateEdge(t, g, s, a, b, 0, Impairments{})
	sink := &packet.Sink{}
	entry, err := g.RouteFlow(1, false, []int{e1}, 0, sink)
	if err != nil {
		t.Fatal(err)
	}
	send(s, entry, 1, 10) // one per ms from t=0
	s.At(4500*sim.Microsecond, func() { g.Edge(e1).SetDown(true) })
	s.At(7500*sim.Microsecond, func() { g.Edge(e1).SetDown(false) })
	s.RunUntil(sim.Second)
	e := g.Edge(e1)
	if e.DownDrops != 3 { // packets at t=5,6,7 ms hit the gate
		t.Fatalf("down drops = %d, want 3", e.DownDrops)
	}
	if int64(sink.Count)+e.DownDrops != 10 {
		t.Fatalf("conservation violated: %d delivered + %d down drops != 10", sink.Count, e.DownDrops)
	}
	if g.DownDrops() != e.DownDrops {
		t.Fatalf("graph DownDrops %d != edge %d", g.DownDrops(), e.DownDrops)
	}
}

func TestSetDelay(t *testing.T) {
	s := sim.New(1)
	g := New(s)
	a, b := g.AddNode("a"), g.AddNode("b")
	// Pure-delay edge so arrival time is exactly injection + delay.
	e1, err := g.AddEdge("ab", a, b, 10*sim.Millisecond, Impairments{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []sim.Time
	sink := packet.NodeFunc(func(p *packet.Packet) {
		arrivals = append(arrivals, s.Now())
		p.Release()
	})
	entry, err := g.RouteFlow(1, false, []int{e1}, 0, sink)
	if err != nil {
		t.Fatal(err)
	}
	s.At(0, func() { entry.Recv(packet.NewData(1, 0, packet.MTU, s.Now())) })
	s.At(20*sim.Millisecond, func() {
		if err := g.Edge(e1).SetDelay(40 * sim.Millisecond); err != nil {
			t.Errorf("SetDelay: %v", err)
		}
	})
	s.At(30*sim.Millisecond, func() { entry.Recv(packet.NewData(1, 1, packet.MTU, s.Now())) })
	s.RunUntil(sim.Second)
	want := []sim.Time{10 * sim.Millisecond, 70 * sim.Millisecond}
	if len(arrivals) != 2 || arrivals[0] != want[0] || arrivals[1] != want[1] {
		t.Fatalf("arrivals = %v, want %v", arrivals, want)
	}

	// Zero-delay edges have no delay stage to retune.
	e2 := rateEdge(t, g, s, b, a, 0, Impairments{})
	if g.Edge(e2).DelayMutable() {
		t.Error("zero-delay edge reports a mutable delay")
	}
	if err := g.Edge(e2).SetDelay(sim.Millisecond); err == nil {
		t.Error("SetDelay on a zero-delay edge accepted")
	}
}

// TestDataAndAckRoutesShareJunction pins the (flow, direction) keying:
// the same flow's data and ACK routes may now traverse the same node,
// which the handover topologies rely on.
func TestDataAndAckRoutesShareJunction(t *testing.T) {
	s := sim.New(1)
	g := New(s)
	a, b := g.AddNode("a"), g.AddNode("b")
	down := rateEdge(t, g, s, a, b, 0, Impairments{})
	up := rateEdge(t, g, s, b, a, 0, Impairments{})
	dataSink := &packet.Sink{}
	ackSink := &packet.Sink{}
	dataEntry, err := g.RouteFlow(1, false, []int{down}, 0, dataSink)
	if err != nil {
		t.Fatal(err)
	}
	ackEntry, err := g.RouteFlow(1, true, []int{up}, 0, ackSink)
	if err != nil {
		t.Fatalf("ACK route sharing nodes with the data route rejected: %v", err)
	}
	s.At(0, func() {
		dataEntry.Recv(packet.NewData(1, 0, packet.MTU, s.Now()))
		ack := packet.Get()
		ack.Flow, ack.IsAck, ack.Size = 1, true, packet.AckSize
		ackEntry.Recv(ack)
	})
	s.RunUntil(sim.Second)
	if dataSink.Count != 1 || ackSink.Count != 1 {
		t.Fatalf("data %d, ack %d delivered; want 1 and 1", dataSink.Count, ackSink.Count)
	}
	if d := g.UnroutedDrops(); d != 0 {
		t.Fatalf("unrouted drops = %d", d)
	}
}
