// Impairment elements: per-edge jitter, random and bursty loss, and
// probabilistic reordering. They sit in front of an edge's link, so
// impaired traffic is dropped or delayed before it ever occupies the
// bottleneck queue, mirroring where radio-layer loss and scheduling
// jitter occur on real paths.
package topo

import (
	"math/rand"

	"abc/internal/packet"
	"abc/internal/sim"
)

// Impairments configures an edge's impairment stage. The zero value means
// an unimpaired edge and adds no elements at all.
type Impairments struct {
	// LossRate drops each packet independently with this probability.
	LossRate float64
	// Burst loss follows a two-state Gilbert-Elliott model: in the bad
	// state packets drop with BurstLossRate; the chain moves good→bad
	// with probability BurstPBad per packet and bad→good with BurstPGood.
	BurstLossRate float64
	BurstPBad     float64
	BurstPGood    float64
	// Jitter adds a uniform random extra delay in [0, Jitter] per packet.
	// Delivery order is preserved (FIFO jitter): a packet never overtakes
	// one that entered before it.
	Jitter sim.Time
	// ReorderProb defers a packet by ReorderDelay with this probability,
	// letting later packets overtake it (true reordering).
	ReorderProb  float64
	ReorderDelay sim.Time
}

// zero reports whether the stage would be a no-op.
func (im Impairments) zero() bool {
	return im.LossRate <= 0 && im.BurstLossRate <= 0 &&
		im.Jitter <= 0 && im.ReorderProb <= 0
}

// impairStats aggregates drops across the stage's elements.
type impairStats struct{ drops int64 }

// build assembles the stage in a fixed order — loss, burst loss,
// reordering, jitter — and returns its head. The fixed order keeps runs
// deterministic and reproducible from the spec alone. All elements share
// rng, the owning edge's private stream seeded from the edge name: the
// pattern one edge draws never depends on what other edges exist or
// forward (see Graph.AddEdge).
func (im Impairments) build(s *sim.Simulator, rng *rand.Rand, dst packet.Node) (packet.Node, *impairStats) {
	st := &impairStats{}
	head := dst
	if im.Jitter > 0 {
		head = &jitterPipe{s: s, rng: rng, dst: head, max: im.Jitter}
	}
	if im.ReorderProb > 0 && im.ReorderDelay > 0 {
		head = &reorderPipe{s: s, rng: rng, dst: head, prob: im.ReorderProb, delay: im.ReorderDelay}
	}
	if im.BurstLossRate > 0 {
		pBad, pGood := im.BurstPBad, im.BurstPGood
		if pBad <= 0 {
			pBad = 0.01
		}
		if pGood <= 0 {
			pGood = 0.2
		}
		head = &burstGate{rng: rng, dst: head, lossBad: im.BurstLossRate, pBad: pBad, pGood: pGood, st: st}
	}
	if im.LossRate > 0 {
		head = &lossGate{rng: rng, dst: head, p: im.LossRate, st: st}
	}
	return head, st
}

// lossGate drops packets independently with probability p.
type lossGate struct {
	rng *rand.Rand
	dst packet.Node
	p   float64
	st  *impairStats
}

// Recv implements packet.Node.
func (l *lossGate) Recv(p *packet.Packet) {
	if l.rng.Float64() < l.p {
		l.st.drops++
		p.Release()
		return
	}
	l.dst.Recv(p)
}

// burstGate is the two-state Gilbert-Elliott loss model.
type burstGate struct {
	rng     *rand.Rand
	dst     packet.Node
	lossBad float64
	pBad    float64 // good → bad transition probability per packet
	pGood   float64 // bad → good transition probability per packet
	bad     bool
	st      *impairStats
}

// Recv implements packet.Node.
func (b *burstGate) Recv(p *packet.Packet) {
	if b.bad {
		if b.rng.Float64() < b.pGood {
			b.bad = false
		}
	} else if b.rng.Float64() < b.pBad {
		b.bad = true
	}
	if b.bad && b.rng.Float64() < b.lossBad {
		b.st.drops++
		p.Release()
		return
	}
	b.dst.Recv(p)
}

// jitterDeliver is the static delivery callback (no per-packet closure).
func jitterDeliver(a, b any) { a.(*jitterPipe).dst.Recv(b.(*packet.Packet)) }

// jitterPipe adds uniform random delay while preserving FIFO order: each
// packet's deadline is clamped to be no earlier than the previous one's.
type jitterPipe struct {
	s    *sim.Simulator
	rng  *rand.Rand
	dst  packet.Node
	max  sim.Time
	last sim.Time // latest deadline handed out
}

// Recv implements packet.Node.
func (j *jitterPipe) Recv(p *packet.Packet) {
	now := j.s.Now()
	at := now + sim.Time(j.rng.Int63n(int64(j.max)+1))
	if at < j.last {
		at = j.last
	}
	j.last = at
	j.s.AfterArgs(at-now, jitterDeliver, j, p)
}

// reorderDeliver is the static delivery callback (no per-packet closure).
func reorderDeliver(a, b any) { a.(*reorderPipe).dst.Recv(b.(*packet.Packet)) }

// reorderPipe defers randomly chosen packets by a fixed extra delay so
// subsequent packets overtake them.
type reorderPipe struct {
	s     *sim.Simulator
	rng   *rand.Rand
	dst   packet.Node
	prob  float64
	delay sim.Time
}

// Recv implements packet.Node.
func (r *reorderPipe) Recv(p *packet.Packet) {
	if r.rng.Float64() < r.prob {
		r.s.AfterArgs(r.delay, reorderDeliver, r, p)
		return
	}
	r.dst.Recv(p)
}
