// Router: mid-run mutation of the graph's forwarding state. The
// simulator is single-threaded and forwarding is synchronous, so a
// table swap between two events is atomic with respect to every packet:
// a packet either sees the old tables at every hop of its current
// junction decision or the new ones — never a half-installed route.
//
// Conservation contract. A reroute only rewrites table entries; it never
// touches packets. Packets in flight on an abandoned edge keep draining
// through its impairment/link/delay chain and arrive at the edge's head
// node, where the next table lookup decides their fate: nodes shared
// with the new route forward them along it, nodes off the new route
// count them as unrouted drops and release them. Nothing is duplicated
// and nothing vanishes silently — every packet ends up delivered or in
// exactly one drop counter, which the harness's conservation property
// test asserts over randomized event timelines.
package topo

import "fmt"

// Router mutates a running graph's forwarding tables. Obtain one with
// Graph.Router; all methods must be called from simulator context (event
// callbacks or before the run starts).
type Router struct {
	g *Graph
}

// Router returns the mutation handle for the graph.
func (g *Graph) Router() *Router { return &Router{g: g} }

// CheckReroute validates a prospective Reroute without mutating
// anything, so Spec compilers can reject a malformed event timeline
// before the run starts: the flow must have a reroutable (table-backed)
// route in that direction, the new edges must form a well-formed path,
// and the path must start at the route's origin — the sender (or, for
// ACK routes, the receiver) keeps injecting at the same junction, only
// the junctions' decisions change.
func (r *Router) CheckReroute(flow int, ack bool, edges []int) error {
	g := r.g
	key := hopKey{flow: int32(flow), ack: ack}
	rt, ok := g.routes[key]
	if !ok {
		return fmt.Errorf("topo: reroute: flow %d has no %s route", flow, dirName(ack))
	}
	if rt.origin < 0 {
		return fmt.Errorf("topo: reroute: flow %d %s route is a direct wire (no junctions to re-decide)", flow, dirName(ack))
	}
	if len(edges) == 0 {
		return fmt.Errorf("topo: reroute: flow %d: empty route", flow)
	}
	if err := g.CheckPath(edges); err != nil {
		return fmt.Errorf("topo: reroute: flow %d route %v", flow, err)
	}
	if from := g.edges[edges[0]].From; from.ID != rt.origin {
		return fmt.Errorf("topo: reroute: flow %d %s route must start at its origin %q, not %q",
			flow, dirName(ack), g.nodes[rt.origin].Name, from.Name)
	}
	return nil
}

// Reroute atomically swaps one direction of a flow's route onto a new
// edge sequence: the old route's table entries are removed and the new
// ones installed in a single synchronous step, with the route's terminal
// (and its access-latency tail) re-attached at the new route's last
// node. See the package comment for what happens to packets in flight.
func (r *Router) Reroute(flow int, ack bool, edges []int) error {
	if err := r.CheckReroute(flow, ack, edges); err != nil {
		return err
	}
	g := r.g
	key := hopKey{flow: int32(flow), ack: ack}
	rt := g.routes[key]
	if g.Sharded() {
		// The tail's form depends on the new last node's shard: rebuild
		// it (a wire when terminal and last node are co-located, a
		// cross-shard hop otherwise). Tail wires hold no state, so the
		// rebuild does not disturb packets already in flight.
		last := g.edges[edges[len(edges)-1]].To
		tail, err := g.buildTail(&rt, last.shard)
		if err != nil {
			return fmt.Errorf("topo: reroute: flow %d %s route: %v", flow, dirName(ack), err)
		}
		rt.tail = tail
	}
	g.uninstall(key, rt.edges)
	rt.edges = append([]int(nil), edges...)
	g.install(key, rt.edges, rt.tail)
	g.routes[key] = rt
	return nil
}
