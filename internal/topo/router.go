// Router: mid-run mutation of the graph's forwarding state. The
// simulator is single-threaded and forwarding is synchronous, so a
// table swap between two events is atomic with respect to every packet:
// a packet either sees the old tables at every hop of its current
// junction decision or the new ones — never a half-installed route.
//
// Conservation contract. A reroute only rewrites table entries; it never
// touches packets. Packets in flight on an abandoned edge keep draining
// through its impairment/link/delay chain and arrive at the edge's head
// node, where the next table lookup decides their fate: nodes shared
// with the new route forward them along it, nodes off the new route
// count them as unrouted drops and release them. Nothing is duplicated
// and nothing vanishes silently — every packet ends up delivered or in
// exactly one drop counter, which the harness's conservation property
// test asserts over randomized event timelines.
package topo

import (
	"fmt"

	"abc/internal/obs"
	"abc/internal/sim"
)

// Router mutates a running graph's forwarding tables. Obtain one with
// Graph.Router; all methods must be called from simulator context (event
// callbacks or before the run starts).
type Router struct {
	g *Graph
}

// Router returns the mutation handle for the graph.
func (g *Graph) Router() *Router { return &Router{g: g} }

// CheckReroute validates a prospective Reroute without mutating
// anything, so Spec compilers can reject a malformed event timeline
// before the run starts: the flow must have a reroutable (table-backed)
// route in that direction, the new edges must form a well-formed path,
// and the path must start at the route's origin — the sender (or, for
// ACK routes, the receiver) keeps injecting at the same junction, only
// the junctions' decisions change.
func (r *Router) CheckReroute(flow int, ack bool, edges []int) error {
	g := r.g
	key := hopKey{flow: int32(flow), ack: ack}
	rt, ok := g.routes[key]
	if !ok {
		return fmt.Errorf("topo: reroute: flow %d has no %s route", flow, dirName(ack))
	}
	if rt.origin < 0 {
		return fmt.Errorf("topo: reroute: flow %d %s route is a direct wire (no junctions to re-decide)", flow, dirName(ack))
	}
	if rt.fan {
		return fmt.Errorf("topo: reroute: flow %d %s route is a fan-out (fan-out routes cannot be rerouted)", flow, dirName(ack))
	}
	if len(edges) == 0 {
		return fmt.Errorf("topo: reroute: flow %d: empty route", flow)
	}
	if err := g.CheckPath(edges); err != nil {
		return fmt.Errorf("topo: reroute: flow %d route %v", flow, err)
	}
	if from := g.edges[edges[0]].From; from.ID != rt.origin {
		return fmt.Errorf("topo: reroute: flow %d %s route must start at its origin %q, not %q",
			flow, dirName(ack), g.nodes[rt.origin].Name, from.Name)
	}
	return nil
}

// Reroute atomically swaps one direction of a flow's route onto a new
// edge sequence: the flow detaches from its old FIB class (the last flow
// off a class removes its table entries) and attaches to the class for
// the new sequence, all in a single synchronous step, with the route's
// terminal (and its access-latency tail) re-attached at the new route's
// last node. See the package comment for what happens to packets in
// flight.
func (r *Router) Reroute(flow int, ack bool, edges []int) error {
	return r.reroute(flow, ack, edges, 0)
}

// RerouteDraining is the make-before-break Reroute: new packets take the
// new route immediately, but for the drain window the junctions of the
// old route that are off the new one keep forwarding this flow's
// in-flight packets along the old path — all the way to the receiver —
// through per-flow override entries. When the window closes the
// overrides are removed and any stragglers are counted as unrouted drops
// at their next junction, so the conservation contract (delivered + drop
// counters = sent) holds throughout. Sequential graphs only.
func (r *Router) RerouteDraining(flow int, ack bool, edges []int, drain sim.Time) error {
	if r.g.Sharded() {
		return fmt.Errorf("topo: reroute: flow %d: draining reroutes are not supported on sharded graphs", flow)
	}
	if drain <= 0 {
		return fmt.Errorf("topo: reroute: flow %d: drain window must be positive", flow)
	}
	return r.reroute(flow, ack, edges, drain)
}

func (r *Router) reroute(flow int, ack bool, edges []int, drain sim.Time) error {
	if err := r.CheckReroute(flow, ack, edges); err != nil {
		return err
	}
	g := r.g
	key := hopKey{flow: int32(flow), ack: ack}
	rt := g.routes[key]
	if g.Sharded() {
		// The tail's form depends on the new last node's shard: rebuild
		// it (a wire when terminal and last node are co-located, a
		// cross-shard hop otherwise). Tail wires hold no state, so the
		// rebuild does not disturb packets already in flight.
		last := g.edges[edges[len(edges)-1]].To
		tail, err := g.buildTail(&rt, last.shard)
		if err != nil {
			return fmt.Errorf("topo: reroute: flow %d %s route: %v", flow, dirName(ack), err)
		}
		rt.tail = tail
		g.setFlowTail(flow, ack, tail)
	}
	// A newer reroute supersedes any overrides still draining from the
	// previous one; stragglers on that abandoned path fall back to the
	// ordinary counted-drop contract.
	clearOverrides(key, &rt)
	old := rt.edges
	rt.edges = append([]int(nil), edges...)
	if drain > 0 {
		installOverrides(g, key, &rt, old)
	}
	g.detachClass(rt.class)
	rt.class = g.attachClass(ack, rt.edges)
	g.setFlowClass(flow, ack, rt.class)
	g.routes[key] = rt
	if g.rec.Enabled(obs.CatRoute) {
		var draining int64
		if drain > 0 {
			draining = 1
		}
		g.rec.Emit(int64(g.S.Now()), obs.EvReroute, rt.class, int32(flow), draining, int64(len(edges)))
	}
	if drain > 0 {
		gen := rt.overGen
		g.S.After(drain, func() {
			cur, ok := g.routes[key]
			if !ok || cur.overGen != gen {
				return // a newer reroute already replaced these overrides
			}
			clearOverrides(key, &cur)
			g.routes[key] = cur
		})
	}
	return nil
}

// installOverrides writes the make-before-break exceptions: every node
// of the old route that is not on the new one keeps its old decision for
// this flow, so in-flight packets drain to the receiver instead of being
// dropped at the first off-route junction. Nodes shared with the new
// route need no override — the class entry already forwards toward the
// receiver. The route's origin is on both routes by construction, so new
// packets are never diverted.
func installOverrides(g *Graph, key hopKey, rt *routeState, old []int) {
	onNew := make(map[*Node]bool, len(rt.edges)+1)
	onNew[g.edges[rt.edges[0]].From] = true
	for _, eid := range rt.edges {
		onNew[g.edges[eid].To] = true
	}
	for i, eid := range old {
		n := g.edges[eid].To
		if onNew[n] {
			continue
		}
		h := hop{edge: -1} // end of the old route: the flow's own tail
		if i < len(old)-1 {
			h = hop{edge: int32(old[i+1])}
		}
		if n.override == nil {
			n.override = make(map[hopKey]hop)
		}
		n.override[key] = h
		rt.overNodes = append(rt.overNodes, n)
	}
	rt.overGen++
}

// clearOverrides removes a route's draining overrides, if any.
func clearOverrides(key hopKey, rt *routeState) {
	for _, n := range rt.overNodes {
		delete(n.override, key)
		if len(n.override) == 0 {
			n.override = nil
		}
	}
	rt.overNodes = nil
}
