package topo

import (
	"strings"
	"testing"

	"abc/internal/sim"
)

// TestPartitionZeroDelayNeverCut pins the lookahead-safety rule from two
// sides: the automatic heuristic keeps zero-delay neighbors together,
// and overrides that would force a zero-delay edge onto a shard cut are
// rejected rather than honored.
func TestPartitionZeroDelayNeverCut(t *testing.T) {
	// 0 -0ms- 1 -5ms- 2 -0ms- 3: only the middle edge is a cut candidate.
	edges := []PartEdge{
		{From: 0, To: 1, Delay: 0},
		{From: 1, To: 2, Delay: 5 * sim.Millisecond},
		{From: 2, To: 3, Delay: 0},
	}
	assign, err := Partition(4, edges, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != assign[1] || assign[2] != assign[3] {
		t.Fatalf("zero-delay neighbors split across shards: %v", assign)
	}
	if assign[1] == assign[2] {
		t.Fatalf("partition left a shard empty: %v", assign)
	}

	_, err = Partition(4, edges, 2, map[int]int{0: 0, 1: 1})
	if err == nil || !strings.Contains(err.Error(), "zero-delay") {
		t.Fatalf("override cutting a zero-delay edge not rejected: %v", err)
	}
	// The contraction is transitive: pinning the far ends of a zero-delay
	// chain apart is just as impossible.
	chain := []PartEdge{{0, 1, 0}, {1, 2, 0}}
	_, err = Partition(3, chain, 2, map[int]int{0: 0, 2: 1})
	if err == nil || !strings.Contains(err.Error(), "zero-delay") {
		t.Fatalf("transitive zero-delay pin conflict not rejected: %v", err)
	}
}

// TestPartitionOverridePins checks manual placement is honored and drags
// the whole zero-delay cluster along.
func TestPartitionOverridePins(t *testing.T) {
	edges := []PartEdge{
		{From: 0, To: 1, Delay: 0},
		{From: 1, To: 2, Delay: 5 * sim.Millisecond},
	}
	assign, err := Partition(3, edges, 2, map[int]int{1: 1})
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != 1 || assign[1] != 1 {
		t.Fatalf("override on node 1 should pin its cluster {0,1} to shard 1: %v", assign)
	}
	if _, err := Partition(3, edges, 2, map[int]int{1: 5}); err == nil {
		t.Fatal("out-of-range shard pin not rejected")
	}
	if _, err := Partition(3, edges, 2, map[int]int{9: 0}); err == nil {
		t.Fatal("unknown node pin not rejected")
	}
}

// TestPartitionBalanceAndAffinity: a ring of 4 two-node clusters over 4
// shards must land one cluster per shard (the balance cap forbids
// anything else), and a 2-shard split of the same ring keeps adjacent
// clusters together when it can.
func TestPartitionBalanceAndAffinity(t *testing.T) {
	var edges []PartEdge
	const d = 10 * sim.Millisecond
	for c := 0; c < 4; c++ {
		a, b := 2*c, 2*c+1
		edges = append(edges, PartEdge{From: a, To: b, Delay: 0})
		edges = append(edges, PartEdge{From: b, To: (a + 2) % 8, Delay: d})
	}
	assign, err := Partition(8, edges, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]int{}
	for i := 0; i < 8; i += 2 {
		if assign[i] != assign[i+1] {
			t.Fatalf("cluster {%d,%d} split: %v", i, i+1, assign)
		}
		used[assign[i]]++
	}
	if len(used) != 4 {
		t.Fatalf("want one cluster per shard, got %v (assign %v)", used, assign)
	}
	for sh, cnt := range used {
		if cnt != 1 {
			t.Fatalf("shard %d holds %d clusters: %v", sh, cnt, assign)
		}
	}
}

// TestPartitionSequentialTrivial: shards <= 1 is the all-zero map.
func TestPartitionSequentialTrivial(t *testing.T) {
	assign, err := Partition(3, []PartEdge{{0, 1, 0}}, 1, map[int]int{2: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range assign {
		if sh != 0 {
			t.Fatalf("node %d on shard %d in sequential mode", i, sh)
		}
	}
}
