// Graph partitioner: junction → shard assignment for sharded execution.
//
// The constraint that shapes everything here is lookahead: a shard-cut
// edge's propagation delay bounds how far its destination shard may run
// ahead, and a zero-delay edge offers no lookahead at all — so nodes
// joined by zero-delay edges are contracted into one cluster first and
// are never separated. Clusters are then spread over the shards by a
// greedy min-cut-ish heuristic over edge counts: big clusters first,
// each placed on the shard it has the most edges to, subject to a
// balance cap so the heuristic cannot collapse everything onto one
// shard. Manual overrides (Spec.ShardMap / the scenario "shard_map"
// clause) pin a node — and therefore its whole zero-delay cluster — to a
// shard; two pins that disagree inside one cluster are a contradiction
// and are rejected, which is the programmatic form of "zero-delay edges
// are not cut candidates".
package topo

import (
	"fmt"
	"sort"

	"abc/internal/sim"
)

// PartEdge describes one directed edge to the partitioner: endpoints by
// node id and the propagation delay that would become the channel
// lookahead if the edge were cut.
type PartEdge struct {
	From, To int
	Delay    sim.Time
}

// Partition assigns n nodes to shards and returns the node → shard map.
// override pins individual nodes (and, transitively, their zero-delay
// clusters). shards <= 1 yields the all-zero assignment.
func Partition(n int, edges []PartEdge, shards int, override map[int]int) ([]int, error) {
	assign := make([]int, n)
	if shards <= 1 {
		return assign, nil
	}
	for node, sh := range override {
		if node < 0 || node >= n {
			return nil, fmt.Errorf("topo: partition: override for unknown node %d", node)
		}
		if sh < 0 || sh >= shards {
			return nil, fmt.Errorf("topo: partition: node %d pinned to shard %d of %d", node, sh, shards)
		}
	}

	// Contract zero-delay edges: union-find over their endpoints.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return nil, fmt.Errorf("topo: partition: edge %d → %d references unknown node", e.From, e.To)
		}
		if e.Delay <= 0 {
			parent[find(e.From)] = find(e.To)
		}
	}

	// Number clusters in first-seen node order so the result is a pure
	// function of the input, then collect members and pins.
	cluster := make([]int, n)
	var members [][]int
	seen := map[int]int{}
	for i := 0; i < n; i++ {
		root := find(i)
		c, ok := seen[root]
		if !ok {
			c = len(members)
			seen[root] = c
			members = append(members, nil)
		}
		cluster[i] = c
		members[c] = append(members[c], i)
	}
	pin := make([]int, len(members))
	for c := range pin {
		pin[c] = -1
	}
	// Iterate overrides in node order for deterministic error messages.
	nodes := make([]int, 0, len(override))
	for node := range override {
		nodes = append(nodes, node)
	}
	sort.Ints(nodes)
	pinnedBy := make([]int, len(members))
	for _, node := range nodes {
		c, sh := cluster[node], override[node]
		switch {
		case pin[c] < 0:
			pin[c], pinnedBy[c] = sh, node
		case pin[c] != sh:
			return nil, fmt.Errorf(
				"topo: partition: nodes %d and %d are joined by zero-delay edges (no lookahead, not a cut candidate) but pinned to shards %d and %d",
				pinnedBy[c], node, pin[c], sh)
		}
	}

	// Cut weights between clusters: number of positive-delay edges, both
	// directions pooled — the quantity the greedy pass tries to keep
	// internal to a shard.
	w := make([]map[int]int, len(members))
	for c := range w {
		w[c] = map[int]int{}
	}
	for _, e := range edges {
		cf, ct := cluster[e.From], cluster[e.To]
		if cf != ct {
			w[cf][ct]++
			w[ct][cf]++
		}
	}

	// Greedy placement: big clusters first (ties by lowest member id),
	// each onto the shard it has the most edges to among shards with
	// room, lowest index on ties. The cap keeps shards balanced; a
	// cluster too big for every shard's remaining room falls back to the
	// least-loaded shard.
	order := make([]int, len(members))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := order[a], order[b]
		if len(members[ca]) != len(members[cb]) {
			return len(members[ca]) > len(members[cb])
		}
		return members[ca][0] < members[cb][0]
	})
	cap := (n + shards - 1) / shards
	load := make([]int, shards)
	shardOf := make([]int, len(members))
	for c := range shardOf {
		shardOf[c] = -1
	}
	for _, c := range order {
		if pin[c] >= 0 {
			shardOf[c] = pin[c]
			load[pin[c]] += len(members[c])
		}
	}
	for _, c := range order {
		if shardOf[c] >= 0 {
			continue
		}
		best, bestGain := -1, -1
		for sh := 0; sh < shards; sh++ {
			if load[sh]+len(members[c]) > cap {
				continue
			}
			gain := 0
			for other, cnt := range w[c] {
				if shardOf[other] == sh {
					gain += cnt
				}
			}
			if gain > bestGain {
				best, bestGain = sh, gain
			}
		}
		if best < 0 {
			for sh := 0; sh < shards; sh++ {
				if best < 0 || load[sh] < load[best] {
					best = sh
				}
			}
		}
		shardOf[c] = best
		load[best] += len(members[c])
	}
	for i := 0; i < n; i++ {
		assign[i] = shardOf[cluster[i]]
	}
	return assign, nil
}
