package topo

import (
	"math"
	"testing"

	"abc/internal/packet"
	"abc/internal/sim"
)

// testRNG builds a stage RNG the way AddEdge would for an edge name.
func testRNG(s *sim.Simulator, name string) *Edge {
	return &Edge{Name: name, g: &Graph{S: s}}
}

// TestGilbertElliottStationaryLoss checks the burst-loss gate against the
// model's stationary distribution: the chain spends π_bad = p_bad /
// (p_bad + p_good) of its time in the bad state and only drops there
// (with probability lossBad), so the long-run empirical loss rate must
// converge to π_bad·lossBad. Losses are burst-correlated (runs of length
// ~1/p_good), so the tolerance is wider than an i.i.d. bound.
func TestGilbertElliottStationaryLoss(t *testing.T) {
	cases := []struct {
		name                 string
		lossBad, pBad, pGood float64
	}{
		{"short bursts", 0.5, 0.02, 0.3},
		{"long bursts", 0.8, 0.01, 0.05},
		{"near-iid", 0.3, 0.2, 0.8},
	}
	const n = 200000
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := sim.New(7)
			sink := &packet.Sink{}
			head, st := Impairments{
				BurstLossRate: tc.lossBad,
				BurstPBad:     tc.pBad,
				BurstPGood:    tc.pGood,
			}.build(s, testRNG(s, "ge").rand("impair"), sink)
			for i := 0; i < n; i++ {
				head.Recv(packet.NewData(1, int64(i), packet.MTU, 0))
			}
			if int64(sink.Count)+st.drops != n {
				t.Fatalf("delivered %d + dropped %d != sent %d", sink.Count, st.drops, n)
			}
			piBad := tc.pBad / (tc.pBad + tc.pGood)
			want := piBad * tc.lossBad
			got := float64(st.drops) / n
			if rel := math.Abs(got-want) / want; rel > 0.10 {
				t.Errorf("empirical loss %.4f vs stationary π_bad·lossBad %.4f (off %.0f%%)",
					got, want, rel*100)
			}
		})
	}
}

// TestReorderConservesPackets: the reorder pipe may permute delivery but
// must never duplicate or drop — every sequence number injected comes out
// exactly once, and at p=0.3 some actual inversions must occur.
func TestReorderConservesPackets(t *testing.T) {
	s := sim.New(3)
	g := New(s)
	a, b := g.AddNode("a"), g.AddNode("b")
	e1, err := g.AddEdge("ab", a, b, sim.Millisecond,
		Impairments{ReorderProb: 0.3, ReorderDelay: 7 * sim.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	seen := make(map[int64]int, n)
	inverted := 0
	last := int64(-1)
	sink := packet.NodeFunc(func(p *packet.Packet) {
		seen[p.Seq]++
		if p.Seq < last {
			inverted++
		} else {
			last = p.Seq
		}
		p.Release()
	})
	entry, err := g.RouteFlow(1, false, []int{e1}, 0, sink)
	if err != nil {
		t.Fatal(err)
	}
	send(s, entry, 1, n)
	s.RunUntil(30 * sim.Second)
	if len(seen) != n {
		t.Fatalf("saw %d distinct seqs, want %d", len(seen), n)
	}
	for seq, count := range seen {
		if count != 1 {
			t.Fatalf("seq %d delivered %d times", seq, count)
		}
	}
	if inverted == 0 {
		t.Fatal("no reordering at p=0.3")
	}
	if d := g.ImpairDrops(); d != 0 {
		t.Fatalf("reorder stage recorded %d drops", d)
	}
}
