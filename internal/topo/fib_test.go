package topo

import (
	"testing"

	"abc/internal/packet"
	"abc/internal/sim"
)

// TestFIBClassSharing pins the aggregation contract: flows routed over
// the identical edge sequence share one class — and hence one table
// entry per junction — while still delivering to their own receivers
// through the per-flow tails.
func TestFIBClassSharing(t *testing.T) {
	s := sim.New(1)
	g, e1, e2, e3, e4 := twoPathGraph(t, s)
	sink1, sink2, sink3 := &packet.Sink{}, &packet.Sink{}, &packet.Sink{}
	entry, err := g.RouteFlow(1, false, []int{e1, e2}, 0, sink1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.RouteFlow(2, false, []int{e1, e2}, 0, sink2); err != nil {
		t.Fatal(err)
	}
	if _, err := g.RouteFlow(3, false, []int{e3, e4}, 0, sink3); err != nil {
		t.Fatal(err)
	}
	if c1, c2 := g.classOf[0][1], g.classOf[0][2]; c1 != c2 {
		t.Fatalf("flows 1 and 2 share a route but classes differ: %d vs %d", c1, c2)
	}
	if c1, c3 := g.classOf[0][1], g.classOf[0][3]; c1 == c3 {
		t.Fatalf("flows 1 and 3 use different routes but share class %d", c1)
	}
	// Junction b forwards for both shared-route flows off one entry.
	if n := len(g.Node(1).table); n != 1 {
		t.Fatalf("node b has %d table entries, want 1 (shared class)", n)
	}
	send(s, entry, 1, 10)
	for i := 0; i < 10; i++ {
		seq := int64(i)
		s.At(sim.Time(i)*sim.Millisecond, func() {
			g.Node(0).Recv(packet.NewData(2, seq, packet.MTU, s.Now()))
		})
	}
	s.RunUntil(sim.Second)
	if sink1.Count != 10 || sink2.Count != 10 {
		t.Fatalf("delivered %d/%d, want 10/10 (per-flow tails under a shared class)", sink1.Count, sink2.Count)
	}
}

// TestFIBClassRecycling: the last flow leaving a class removes its table
// entries and recycles the id for the next distinct route.
func TestFIBClassRecycling(t *testing.T) {
	s := sim.New(1)
	g, e1, e2, e3, e4 := twoPathGraph(t, s)
	if _, err := g.RouteFlow(1, false, []int{e1, e2}, 0, &packet.Sink{}); err != nil {
		t.Fatal(err)
	}
	old := g.classOf[0][1]
	if err := g.Router().Reroute(1, false, []int{e3, e4}); err != nil {
		t.Fatal(err)
	}
	if len(g.Node(1).table) != 0 {
		t.Fatal("old class entries not removed from node b after the last flow left")
	}
	// The freed id is immediately recycled by the new route's class:
	// a steady flap never grows the class registry.
	if got := g.classOf[0][1]; got != old {
		t.Fatalf("rerouted flow got class %d, want recycled id %d", got, old)
	}
	if len(g.classes) != 1 || len(g.freeClasses) != 0 {
		t.Fatalf("registry = %d classes, %d free; want 1 live class, 0 free", len(g.classes), len(g.freeClasses))
	}
	// A second flow over the rerouted flow's path shares its class; its
	// detach (another reroute) frees the now-unused id.
	if _, err := g.RouteFlow(2, false, []int{e1, e2}, 0, &packet.Sink{}); err != nil {
		t.Fatal(err)
	}
	second := g.classOf[0][2]
	if second == old {
		t.Fatalf("distinct route shares class %d", old)
	}
	if err := g.Router().Reroute(2, false, []int{e3, e4}); err != nil {
		t.Fatal(err)
	}
	if got := g.classOf[0][2]; got != old {
		t.Fatalf("flow 2 after reroute got class %d, want shared class %d", got, old)
	}
	if g.classes[old].refs != 2 {
		t.Fatalf("shared class refs = %d, want 2", g.classes[old].refs)
	}
	if len(g.freeClasses) != 1 || g.freeClasses[0] != second {
		t.Fatalf("freeClasses = %v, want [%d]", g.freeClasses, second)
	}
}

// TestFanoutDelivers: the origin duplicates every packet onto each
// branch and each branch delivers to its own terminal.
func TestFanoutDelivers(t *testing.T) {
	s := sim.New(1)
	g, e1, _, e3, _ := twoPathGraph(t, s)
	sb, sc := &packet.Sink{}, &packet.Sink{}
	entry, err := g.RouteFanout(1, false, [][]int{{e1}, {e3}}, sim.Millisecond, []packet.Node{sb, sc})
	if err != nil {
		t.Fatal(err)
	}
	send(s, entry, 1, 20)
	s.RunUntil(sim.Second)
	if sb.Count != 20 || sc.Count != 20 {
		t.Fatalf("branches delivered %d/%d, want 20/20", sb.Count, sc.Count)
	}
	if d := g.UnroutedDrops(); d != 0 {
		t.Fatalf("unrouted drops = %d", d)
	}
}

// TestFanoutValidation: malformed fan-outs fail loudly at install time,
// and fan routes are excluded from reroutes and route computation.
func TestFanoutValidation(t *testing.T) {
	s := sim.New(1)
	g, e1, e2, e3, e4 := twoPathGraph(t, s)
	sinks := []packet.Node{&packet.Sink{}, &packet.Sink{}}
	if _, err := g.RouteFanout(1, false, [][]int{{e1}}, 0, sinks[:1]); err == nil {
		t.Error("single-branch fan-out accepted")
	}
	if _, err := g.RouteFanout(1, false, [][]int{{e1}, {e3}}, 0, sinks[:1]); err == nil {
		t.Error("branch/terminal count mismatch accepted")
	}
	if _, err := g.RouteFanout(1, false, [][]int{{e1, e2}, {e3, e4}}, 0, sinks); err == nil {
		t.Error("branches converging on one node accepted")
	}
	if _, err := g.RouteFanout(1, false, [][]int{{e1}, {e4}}, 0, sinks); err == nil {
		t.Error("branches with different origins accepted")
	}
	if _, err := g.RouteFanout(1, false, [][]int{{e1}, {e3}}, 0, sinks); err != nil {
		t.Fatalf("valid fan-out rejected: %v", err)
	}
	if err := g.Router().CheckReroute(1, false, []int{e1}); err == nil {
		t.Error("reroute of a fan-out route accepted")
	}
	if _, err := g.RouteFanout(1, false, [][]int{{e1}, {e3}}, 0, sinks); err == nil {
		t.Error("duplicate fan-out install accepted")
	}
}

// TestRerouteDrainingDeliversInFlight: with a make-before-break window
// covering the drain time, every packet in flight on the abandoned path
// reaches the receiver — zero stranded drops — and the overrides are
// gone once the window closes.
func TestRerouteDrainingDeliversInFlight(t *testing.T) {
	s := sim.New(1)
	g, e1, e2, e3, e4 := twoPathGraph(t, s)
	sink := &packet.Sink{}
	entry, err := g.RouteFlow(1, false, []int{e1, e2}, 0, sink)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	s.At(0, func() {
		for i := 0; i < n; i++ {
			entry.Recv(packet.NewData(1, int64(i), packet.MTU, s.Now()))
		}
	})
	s.At(10*sim.Millisecond, func() {
		if err := g.Router().RerouteDraining(1, false, []int{e3, e4}, sim.Second); err != nil {
			t.Errorf("draining reroute: %v", err)
		}
	})
	s.RunUntil(3 * sim.Second)
	if sink.Count != n {
		t.Fatalf("delivered %d/%d across a draining reroute", sink.Count, n)
	}
	if d := g.UnroutedDrops(); d != 0 {
		t.Fatalf("unrouted drops = %d, want 0 (the drain window covers the in-flight packets)", d)
	}
	if g.Node(1).override != nil {
		t.Error("override entries survived the drain window")
	}
}

// TestRerouteDrainingExpiryCountsStragglers: a window shorter than the
// drain time strands the remainder, which must land in the drop
// counters — conservation holds on both sides of the expiry.
func TestRerouteDrainingExpiryCountsStragglers(t *testing.T) {
	s := sim.New(1)
	g, e1, e2, e3, e4 := twoPathGraph(t, s)
	sink := &packet.Sink{}
	entry, err := g.RouteFlow(1, false, []int{e1, e2}, 0, sink)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	s.At(0, func() {
		for i := 0; i < n; i++ {
			entry.Recv(packet.NewData(1, int64(i), packet.MTU, s.Now()))
		}
	})
	// 50 MTU packets at 8 Mbit/s serialize over ~75 ms; a 20 ms window
	// saves some and strands the rest.
	s.At(10*sim.Millisecond, func() {
		if err := g.Router().RerouteDraining(1, false, []int{e3, e4}, 20*sim.Millisecond); err != nil {
			t.Errorf("draining reroute: %v", err)
		}
	})
	s.RunUntil(3 * sim.Second)
	drops := g.UnroutedDrops()
	if drops == 0 {
		t.Fatal("expected stragglers past the drain window to be counted")
	}
	if int64(sink.Count)+drops != n {
		t.Fatalf("conservation violated: %d delivered + %d drops != %d sent", sink.Count, drops, n)
	}
	if int64(sink.Count) <= 10 {
		t.Fatalf("only %d delivered; the drain window should have saved the early in-flight packets", sink.Count)
	}
}

// TestRerouteDrainingSuperseded: a second reroute before the first's
// window closes replaces the overrides; the stale cleanup must not
// clobber them, and conservation holds throughout.
func TestRerouteDrainingSuperseded(t *testing.T) {
	s := sim.New(1)
	g, e1, e2, e3, e4 := twoPathGraph(t, s)
	sink := &packet.Sink{}
	entry, err := g.RouteFlow(1, false, []int{e1, e2}, 0, sink)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	s.At(0, func() {
		for i := 0; i < n; i++ {
			entry.Recv(packet.NewData(1, int64(i), packet.MTU, s.Now()))
		}
	})
	r := g.Router()
	s.At(10*sim.Millisecond, func() {
		if err := r.RerouteDraining(1, false, []int{e3, e4}, 30*sim.Millisecond); err != nil {
			t.Errorf("first draining reroute: %v", err)
		}
	})
	s.At(20*sim.Millisecond, func() {
		if err := r.RerouteDraining(1, false, []int{e1, e2}, 30*sim.Millisecond); err != nil {
			t.Errorf("second draining reroute: %v", err)
		}
	})
	s.RunUntil(3 * sim.Second)
	if int64(sink.Count)+g.UnroutedDrops() != n {
		t.Fatalf("conservation violated: %d delivered + %d drops != %d sent",
			sink.Count, g.UnroutedDrops(), n)
	}
	if route, _ := g.RouteOf(1, false); len(route) != 2 || route[0] != e1 {
		t.Fatalf("final route = %v, want [%d %d]", route, e1, e2)
	}
}

// TestRerouteDrainingValidation: non-positive windows are refused.
func TestRerouteDrainingValidation(t *testing.T) {
	s := sim.New(1)
	g, e1, e2, e3, e4 := twoPathGraph(t, s)
	if _, err := g.RouteFlow(1, false, []int{e1, e2}, 0, &packet.Sink{}); err != nil {
		t.Fatal(err)
	}
	if err := g.Router().RerouteDraining(1, false, []int{e3, e4}, 0); err == nil {
		t.Error("zero drain window accepted")
	}
	if err := g.Router().RerouteDraining(1, false, []int{e3, e4}, -sim.Millisecond); err == nil {
		t.Error("negative drain window accepted")
	}
}
