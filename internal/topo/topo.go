// Package topo models an experiment's network as a directed graph of
// nodes and links with explicit per-flow routes. A node is a junction
// that routes packets by flow id; an edge is one hop — an optional
// bottleneck link (trace-driven, rate-driven or Wi-Fi modelled), an
// optional impairment stage (jitter, random or bursty loss, reordering)
// and a propagation delay. A flow's data path and its ACK path are both
// routes over such edges, so reverse-path bottlenecks, asymmetric delays
// and cross traffic entering or leaving mid-path are all expressible
// without bespoke wiring.
//
// The graph adds no events of its own: junction routing is synchronous,
// so a chain of edges behaves (and schedules) exactly like the manually
// wired element chains it replaces. Misrouted packets — a flow arriving
// at a node with no route installed for it — are counted, not silently
// released; UnroutedDrops is the first thing to check when a new topology
// misbehaves.
package topo

import (
	"fmt"

	"abc/internal/netem"
	"abc/internal/packet"
	"abc/internal/sim"
)

// Link is a bottleneck element on an edge. netem.TraceLink, netem.RateLink
// and wifi.Link all satisfy it.
type Link interface {
	packet.Node
	// DeliveredBytes reports total payload bytes the link has delivered.
	DeliveredBytes() int64
}

// LinkFactory builds an edge's link with its downstream destination
// already wired (links in this codebase take their destination at
// construction). A nil factory makes the edge a pure propagation hop.
type LinkFactory func(dst packet.Node) (Link, error)

// Node is a junction: packets arriving here are routed by flow id to the
// next hop of that flow's route.
type Node struct {
	ID   int
	Name string
	// demux does the per-flow routing; unrouted arrivals are counted.
	demux *netem.Demux
}

// Recv implements packet.Node.
func (n *Node) Recv(p *packet.Packet) { n.demux.Recv(p) }

// Edge is one directed hop between two nodes.
type Edge struct {
	ID       int
	From, To *Node
	// Delay is the hop's propagation delay, applied after the link.
	Delay sim.Time
	// Link is the edge's bottleneck element (nil for pure delay hops).
	Link Link
	// head is the first element of the edge's chain:
	// impairments → link → delay wire → To.
	head packet.Node
	// impair exposes the impairment stage's drop counters.
	impair *impairStats
}

// ImpairDrops reports packets dropped by this edge's impairment stage.
func (e *Edge) ImpairDrops() int64 {
	if e.impair == nil {
		return 0
	}
	return e.impair.drops
}

// Graph is the topology under construction and, once flows are routed,
// the running network.
type Graph struct {
	S     *sim.Simulator
	nodes []*Node
	edges []*Edge
}

// New returns an empty graph on the simulator.
func New(s *sim.Simulator) *Graph { return &Graph{S: s} }

// AddNode adds a junction and returns its id.
func (g *Graph) AddNode(name string) int {
	n := &Node{ID: len(g.nodes), Name: name, demux: netem.NewDemux()}
	g.nodes = append(g.nodes, n)
	return n.ID
}

// Node returns the node with the given id.
func (g *Graph) Node(id int) *Node { return g.nodes[id] }

// AddEdge adds a directed hop from one node to another and returns its
// edge id. The link factory (which may be nil) is invoked immediately
// with the edge's tail — the delay wire when Delay is positive, otherwise
// the destination node — as its destination. Impairments, when non-zero,
// are applied before the link (arriving traffic is impaired, then queued).
func (g *Graph) AddEdge(from, to int, delay sim.Time, imp Impairments, mk LinkFactory) (int, error) {
	if from < 0 || from >= len(g.nodes) || to < 0 || to >= len(g.nodes) {
		return 0, fmt.Errorf("topo: AddEdge(%d → %d) references unknown node", from, to)
	}
	e := &Edge{ID: len(g.edges), From: g.nodes[from], To: g.nodes[to], Delay: delay}
	var tail packet.Node = e.To
	if delay > 0 {
		tail = netem.NewWire(g.S, delay, tail)
	}
	if mk != nil {
		l, err := mk(tail)
		if err != nil {
			return 0, err
		}
		e.Link = l
		tail = l
	}
	if !imp.zero() {
		head, stats := imp.build(g.S, tail)
		tail = head
		e.impair = stats
	}
	e.head = tail
	g.edges = append(g.edges, e)
	return e.ID, nil
}

// Edge returns the edge with the given id.
func (g *Graph) Edge(id int) *Edge { return g.edges[id] }

// Entry returns the first element of an edge's chain, the hop a sender
// attached at the edge's tail node transmits into.
func (g *Graph) Entry(edge int) packet.Node { return g.edges[edge].head }

// CheckPath verifies that an edge sequence is a well-formed route over
// the graph: every id names an existing edge, consecutive edges are
// contiguous (each starts at the node the previous one ends at), and no
// edge ends at a node an earlier edge already ended at — a junction
// routes each flow to exactly one next hop, so a route looping back over
// an installation node could never be wired. Spec compilers call it to
// reject malformed mesh routes before any wiring happens.
func (g *Graph) CheckPath(edges []int) error {
	seen := make(map[*Node]bool, len(edges))
	for i, id := range edges {
		if id < 0 || id >= len(g.edges) {
			return fmt.Errorf("references unknown edge %d", id)
		}
		e := g.edges[id]
		if i > 0 && e.From != g.edges[edges[i-1]].To {
			return fmt.Errorf("not contiguous: edge %d starts at %q, previous ends at %q",
				id, e.From.Name, g.edges[edges[i-1]].To.Name)
		}
		if seen[e.To] {
			return fmt.Errorf("loops back over node %q", e.To.Name)
		}
		seen[e.To] = true
	}
	return nil
}

// RouteFlow installs a flow's route along the given edge sequence and
// terminates it at terminal (the flow's receiver for data routes, its
// sender endpoint for ACK routes). tailDelay, when positive, inserts a
// final per-flow propagation hop — the flow's access latency — between
// the last node and the terminal. It returns the route's entry element.
//
// The edges must satisfy CheckPath, and the flow must not already be
// routed at any node along the way: a node routes each flow to exactly
// one next hop, so a flow's forward and reverse routes must not share
// nodes.
func (g *Graph) RouteFlow(flow int, edges []int, tailDelay sim.Time, terminal packet.Node) (packet.Node, error) {
	var tail packet.Node = terminal
	if tailDelay > 0 {
		tail = netem.NewWire(g.S, tailDelay, terminal)
	}
	if len(edges) == 0 {
		return tail, nil
	}
	if err := g.CheckPath(edges); err != nil {
		return nil, fmt.Errorf("topo: flow %d route %v", flow, err)
	}
	for i, id := range edges {
		at := g.edges[id].To
		if at.demux.Routed(flow) {
			return nil, fmt.Errorf("topo: flow %d already routed at node %q", flow, at.Name)
		}
		if i == len(edges)-1 {
			at.demux.Route(flow, tail)
		} else {
			at.demux.Route(flow, g.edges[edges[i+1]].head)
		}
	}
	return g.edges[edges[0]].head, nil
}

// UnroutedDrops sums packets dropped at junctions because no route was
// installed for their flow — the graph-wide wiring-bug counter.
func (g *Graph) UnroutedDrops() int64 {
	var n int64
	for _, nd := range g.nodes {
		n += nd.demux.Drops
	}
	return n
}

// ImpairDrops sums packets dropped by impairment stages across all edges
// (deliberate loss, as opposed to UnroutedDrops' wiring bugs).
func (g *Graph) ImpairDrops() int64 {
	var n int64
	for _, e := range g.edges {
		n += e.ImpairDrops()
	}
	return n
}
