// Package topo models an experiment's network as a directed graph of
// nodes and links with explicit per-flow routes. A node is a junction
// that forwards packets by table lookup; an edge is one hop — an optional
// bottleneck link (trace-driven, rate-driven or Wi-Fi modelled), an
// optional impairment stage (jitter, random or bursty loss, reordering)
// and a propagation delay. A flow's data path and its ACK path are both
// routes over such edges, so reverse-path bottlenecks, asymmetric delays
// and cross traffic entering or leaving mid-path are all expressible
// without bespoke wiring.
//
// Forwarding is a per-node decision: every node owns a forwarding table
// keyed by (flow, direction) — direction distinguishing a flow's data
// packets from its ACKs — whose entries name either the next edge of the
// route or the terminal delivery element (the receiver for data, the
// sender endpoint for ACKs). Because the decision is made hop by hop at
// run time rather than wired into a fixed chain at build time, routes can
// change mid-run: Router atomically swaps a flow's table entries while
// packets are in flight (see router.go for the conservation contract).
//
// The graph adds no events of its own: table lookup and the edge gate are
// synchronous, so a chain of edges behaves (and schedules) exactly like
// the manually wired element chains it replaces — a static route through
// the forwarding tables is byte-identical to the precompiled pipeline it
// superseded. Misrouted packets — a flow arriving at a node with no table
// entry for it — are counted, not silently released; UnroutedDrops is
// the first thing to check when a new topology misbehaves (after a
// mid-run reroute a non-zero count is expected: packets in flight on
// abandoned edges drain to the next junction and are dropped there).
package topo

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"abc/internal/netem"
	"abc/internal/obs"
	"abc/internal/packet"
	"abc/internal/qdisc"
	"abc/internal/sim"
)

// Link is a bottleneck element on an edge. netem.TraceLink, netem.RateLink
// and wifi.Link all satisfy it.
type Link interface {
	packet.Node
	// DeliveredBytes reports total payload bytes the link has delivered.
	DeliveredBytes() int64
}

// LinkFactory builds an edge's link with its downstream destination
// already wired (links in this codebase take their destination at
// construction). A nil factory makes the edge a pure propagation hop.
type LinkFactory func(dst packet.Node) (Link, error)

// hopKey addresses one direction of one flow: a flow's data packets and
// its ACKs are routed independently, so a data route and an ACK route
// may share junctions. Forwarding tables are keyed by FIB class, not by
// hopKey — the key survives in the route registry and in the per-flow
// override maps (make-before-break draining).
type hopKey struct {
	flow int32
	ack  bool
}

// hop is one forwarding-table entry. Exactly one of its shapes applies:
// edge >= 0 forwards onto that edge; fan (edge < 0) duplicates the
// packet onto every listed edge (multicast fan-out); terminal (edge < 0,
// fan nil) delivers to that element; all-zero (edge < 0, fan and
// terminal nil) delivers through the arriving flow's own access tail —
// the sentinel that lets flows with different receivers and RTTs share
// one aggregated class entry.
type hop struct {
	edge     int32
	terminal packet.Node
	fan      []int32
}

// Node is a junction: packets arriving here are forwarded by a FIB class
// lookup — flows whose route (direction and exact edge sequence) is
// identical share a single table entry — to the next edge of the class's
// route, or delivered through the flow's own tail at the route's end.
type Node struct {
	ID   int
	Name string
	g    *Graph
	// shard is the node's home shard; 0 on unsharded graphs.
	shard int
	// table is the forwarding table, keyed by FIB class id; Router
	// mutates it mid-run.
	table map[int32]hop
	// override holds per-flow exceptions consulted before the class
	// table; nil in steady state. Make-before-break reroutes install the
	// old route's hops here for the drain window, so in-flight packets
	// keep draining to the receiver while new packets take the new path.
	override map[hopKey]hop
	// Drops counts arrivals with no table entry (wiring bugs, or packets
	// stranded on an abandoned route after a mid-run reroute).
	Drops int64
}

// Recv implements packet.Node: one forwarding decision. The fast path is
// a single map lookup — the per-flow class resolution is a slice index —
// and allocation-free (BenchmarkFIBLookup pins 0 allocs/op).
func (n *Node) Recv(p *packet.Packet) {
	g := n.g
	dir := 0
	if p.IsAck {
		dir = 1
	}
	if n.override != nil {
		if h, ok := n.override[hopKey{flow: int32(p.Flow), ack: p.IsAck}]; ok {
			n.forward(h, dir, p)
			return
		}
	}
	cls := int32(-1)
	if byFlow := g.classOf[dir]; p.Flow >= 0 && p.Flow < len(byFlow) {
		cls = byFlow[p.Flow]
	}
	h, ok := n.table[cls]
	if !ok {
		// No route for this (flow, direction) here: the node is the last
		// holder. Count the drop so both wiring bugs and reroute-stranded
		// packets are visible.
		n.Drops++
		if g.rec.Enabled(obs.CatPacket) {
			g.rec.Emit(n.nowNS(), obs.EvUnroutedDrop, int32(n.ID), int32(p.Flow), 0, 0)
		}
		p.Release()
		return
	}
	n.forward(h, dir, p)
}

// forward executes one resolved table entry (see hop for the shapes).
func (n *Node) forward(h hop, dir int, p *packet.Packet) {
	if n.g.rec.Enabled(obs.CatHop) {
		n.g.rec.Emit(n.nowNS(), obs.EvHop, int32(n.ID), int32(p.Flow), int64(h.edge), 0)
	}
	if h.edge >= 0 {
		n.g.edges[h.edge].Recv(p)
		return
	}
	if h.fan != nil {
		// Multicast fan-out: duplicate onto every branch. Copies are
		// fresh free-list packets; the original rides the first branch,
		// sent last so the copies never read a consumed packet.
		for _, e := range h.fan[1:] {
			q := packet.Get()
			*q = *p
			n.g.edges[e].Recv(q)
		}
		n.g.edges[h.fan[0]].Recv(p)
		return
	}
	if h.terminal != nil {
		h.terminal.Recv(p)
		return
	}
	n.g.tails[dir][p.Flow].Recv(p)
}

// Edge is one directed hop between two nodes.
type Edge struct {
	ID int
	// Name identifies the edge in event timelines and, crucially, seeds
	// its private RNG streams: impairment and attack randomness derive
	// from (simulator seed, edge name), so adding or reordering unrelated
	// edges never reshuffles this edge's loss pattern.
	Name     string
	From, To *Node
	// Delay is the hop's propagation delay, applied after the link.
	Delay sim.Time
	// Link is the edge's bottleneck element (nil for pure delay hops).
	Link Link
	// DownDrops counts packets discarded at the edge's entry while the
	// edge was administratively down (SetDown).
	DownDrops int64
	// AdvDrops / AdvDelayed / AdvStripped count the installed attack's
	// actions: targeted discards, targeted extra-delay deferrals and
	// accel marks demoted by mark-stripping (adversary.go).
	AdvDrops    int64
	AdvDelayed  int64
	AdvStripped int64

	g *Graph
	// home is the simulator the edge's elements schedule on: the From
	// node's shard on sharded graphs, the graph's simulator otherwise.
	home *sim.Simulator
	// head is the first element of the edge's chain:
	// impairments → link → delay wire → To.
	head packet.Node
	// wire is the propagation stage, kept so SetDelay can retune it.
	wire *netem.Wire
	// cross replaces the wire on shard-cut edges: the propagation delay
	// is absorbed by the cross-shard handoff (see crossHop).
	cross *crossHop
	// impair exposes the impairment stage's drop counters.
	impair *impairStats
	// attack is the installed adversary stage (nil = honest edge); advRng
	// is its private RNG, created on first install and kept across
	// retunes so an event timeline swapping attacks stays deterministic.
	attack *Attack
	advRng *rand.Rand
	// down gates the edge: while set, arriving packets are counted into
	// DownDrops and released. Packets already inside the chain (queued in
	// the qdisc, in flight on the wire) still drain.
	down bool
}

// Recv implements packet.Node: the edge's entry, applying the up/down
// gate, then the attack stage, then the impairment/link/delay chain.
func (e *Edge) Recv(p *packet.Packet) {
	if e.down {
		e.DownDrops++
		if e.g.rec.Enabled(obs.CatPacket) {
			e.g.rec.Emit(int64(e.home.Now()), obs.EvDownDrop, int32(e.ID), int32(p.Flow), 0, 0)
		}
		p.Release()
		return
	}
	if e.attack != nil && !e.applyAttack(p) {
		return // dropped or deferred by the attack stage
	}
	e.head.Recv(p)
}

// SetDown takes the edge down (true) or back up (false). While down,
// packets arriving at the edge are dropped and counted in DownDrops;
// packets already queued or in flight on the edge still drain — an
// outage severs the hop, it does not vaporize its buffer. State changes
// notify the graph's link-state watchers (OnLinkChange).
func (e *Edge) SetDown(down bool) {
	changed := e.down != down
	e.down = down
	if changed {
		if e.g.rec.Enabled(obs.CatLink) {
			k := obs.EvLinkUp
			if down {
				k = obs.EvLinkDown
			}
			e.g.rec.Emit(int64(e.home.Now()), k, int32(e.ID), -1, 0, 0)
		}
		e.g.notifyLinkChange(e)
	}
}

// Down reports whether the edge is administratively down.
func (e *Edge) Down() bool { return e.down }

// DelayMutable reports whether SetDelay can retune this edge: only edges
// built with a positive propagation delay own a delay stage.
func (e *Edge) DelayMutable() bool { return e.wire != nil }

// CrossShard reports whether the edge's endpoints live on different
// shards, making its delay the synchronization channel's lookahead.
func (e *Edge) CrossShard() bool { return e.cross != nil }

// SetDelay retunes the edge's propagation delay mid-run. Deliveries
// already scheduled keep the old delay; subsequent packets use the new
// one. Edges built with zero delay have no delay stage to retune (give
// the edge a positive initial delay to make it mutable).
func (e *Edge) SetDelay(d sim.Time) error {
	if e.cross != nil {
		// The delay of a shard-cut edge is its channel's lookahead; a
		// smaller delay could deliver into the destination shard's past.
		return fmt.Errorf("topo: edge %d crosses shards; its delay is the channel lookahead and cannot be retuned", e.ID)
	}
	if e.wire == nil {
		return fmt.Errorf("topo: edge %d built with zero delay has no delay stage", e.ID)
	}
	if d < 0 {
		return fmt.Errorf("topo: negative delay %v", d)
	}
	e.Delay = d
	e.wire.Delay = d
	if e.g.rec.Enabled(obs.CatLink) {
		e.g.rec.Emit(int64(e.home.Now()), obs.EvSetDelay, int32(e.ID), -1, int64(d), 0)
	}
	e.g.notifyLinkChange(e)
	return nil
}

// OnLinkChange subscribes fn to link-state changes: it is called from
// SetDown (on actual up/down transitions) and successful SetDelay, with
// the affected edge. Route-computation policies hang off this hook.
func (g *Graph) OnLinkChange(fn func(*Edge)) { g.watchers = append(g.watchers, fn) }

func (g *Graph) notifyLinkChange(e *Edge) {
	for _, w := range g.watchers {
		w(e)
	}
}

// SetBackground couples a fluid background aggregate into the edge's
// service loop: the link (and, via its forwarding, a background-aware
// qdisc such as the ABC router) starts accounting for the aggregate's
// occupancy and service share. Wire edges and link models without
// background-aware service loops are rejected loudly — a background
// that silently did nothing would be a measurement bug.
func (e *Edge) SetBackground(bg qdisc.Background) error {
	if e.Link == nil {
		return fmt.Errorf("topo: edge %q is a pure delay hop; a background needs a bottleneck link", e.Name)
	}
	ba, ok := e.Link.(qdisc.BackgroundAware)
	if !ok {
		return fmt.Errorf("topo: edge %q: link model %T does not support fluid backgrounds", e.Name, e.Link)
	}
	ba.SetBackground(bg)
	return nil
}

// Home returns the simulator the edge's elements schedule on (the From
// node's shard on sharded graphs): background couplers must step here
// to stay shard-local.
func (e *Edge) Home() *sim.Simulator { return e.home }

// ImpairDrops reports packets dropped by this edge's impairment stage.
func (e *Edge) ImpairDrops() int64 {
	if e.impair == nil {
		return 0
	}
	return e.impair.drops
}

// routeState records one installed (flow, direction) route so Router can
// atomically swap it later.
type routeState struct {
	edges []int
	// origin is the node the route's traffic is injected at (the first
	// edge's tail), or -1 for direct routes (no edges: the terminal is
	// wired straight to the producer and nothing is reroutable).
	origin int
	// class is the FIB class the route's table entries are aggregated
	// under, or -1 for direct routes (which never touch tables).
	class int32
	// fan marks multicast fan-out routes (RouteFanout); they own a
	// dedicated class and cannot be rerouted.
	fan bool
	// tail is the delivery element the route's last node hands packets
	// to: the per-flow access-latency wire when the route has one, else
	// the terminal itself. A reroute moves it to the new last node. On
	// sharded graphs the tail is rebuilt per install from terminal /
	// tailDelay / termShard, because its form depends on which shard the
	// route's last node lands on (wire vs cross-shard hop).
	tail      packet.Node
	terminal  packet.Node
	tailDelay sim.Time
	termShard int
	// overNodes lists the junctions currently holding a make-before-
	// break override for this route's key; overGen guards the scheduled
	// cleanup against a newer reroute having replaced the overrides.
	overNodes []*Node
	overGen   int
}

// fibClass is one aggregated forwarding class: every flow whose route
// (direction plus exact edge sequence) is identical shares the class's
// table entries, so table size scales with the number of distinct routes
// rather than the number of flows. Delivery at the route's end goes
// through the arriving flow's own tail (Graph.tails), which is what lets
// flows with different receivers and access latencies share a class.
type fibClass struct {
	ack   bool
	edges []int
	// refs counts the flows attached to the class; the last detach
	// uninstalls its table entries and recycles the id.
	refs int
	// fan marks a multicast fan-out class (never shared, never rerouted).
	fan bool
}

// Graph is the topology under construction and, once flows are routed,
// the running network.
type Graph struct {
	// S is the graph's simulator: the one simulator on sequential runs,
	// shard 0's on sharded runs (use SimFor for per-node placement).
	S     *sim.Simulator
	coord *sim.Coordinator
	// assign maps node id -> shard on sharded graphs (see Partition).
	assign []int
	nodes  []*Node
	edges  []*Edge
	// routes registers every installed route by (flow, direction) for
	// mid-run mutation and conservation accounting.
	routes map[hopKey]routeState
	// classes is the FIB class registry; classByRoute deduplicates
	// classes by (direction, exact edge sequence) and freeClasses
	// recycles ids of fully-detached classes.
	classes      []fibClass
	classByRoute map[string]int32
	freeClasses  []int32
	// classOf resolves a flow to its FIB class per direction (index 0
	// data, 1 ACK; -1 = unrouted). Slices, not maps: the per-packet
	// lookup is a bounds-checked index.
	classOf [2][]int32
	// tails holds each flow's delivery element per direction — what a
	// class's end-of-route sentinel dereferences to.
	tails [2][]packet.Node
	// watchers are the link-state subscribers (route-computation
	// policies): every SetDown / successful SetDelay notifies them.
	watchers []func(*Edge)
	// rec is the attached flight recorder (nil = tracing off). All trace
	// points guard on rec.Enabled, which is nil-safe, so the disabled
	// path costs one pointer test on the per-packet paths.
	rec *obs.Recorder
}

// SetRecorder attaches a flight recorder to the graph: junctions, edges
// and the shard coordinator emit trace events into it, and every link
// (and its qdisc) that implements obs.Sink is wired with its edge id as
// the event source. Edges added after the call are wired by AddEdge.
// Tracing is passive — it never schedules events, draws randomness or
// mutates simulation state — so enabling it cannot change a run.
func (g *Graph) SetRecorder(rec *obs.Recorder) {
	g.rec = rec
	if g.coord != nil {
		g.coord.SetTrace(rec)
	}
	for _, e := range g.edges {
		e.wireObs()
	}
}

// Recorder returns the attached flight recorder (nil when tracing is
// off).
func (g *Graph) Recorder() *obs.Recorder { return g.rec }

// wireObs hands the graph recorder to the edge's link if it can carry
// one (netem links forward it to their qdisc).
func (e *Edge) wireObs() {
	if s, ok := e.Link.(obs.Sink); ok {
		s.SetObs(e.g.rec, int32(e.ID))
	}
}

// nowNS resolves the node's home-shard clock; only trace points pay for
// it, inside an Enabled guard.
func (n *Node) nowNS() int64 {
	g := n.g
	if g.coord == nil {
		return int64(g.S.Now())
	}
	return int64(g.coord.Shard(n.shard).Simulator.Now())
}

// New returns an empty graph on the simulator.
func New(s *sim.Simulator) *Graph {
	return &Graph{S: s, routes: make(map[hopKey]routeState), classByRoute: make(map[string]int32)}
}

// NewSharded returns an empty graph spread over the coordinator's
// shards: node i of the graph lives on shard assign[i] (AddNode consumes
// the assignment in creation order; see Partition for computing one).
// Same-shard edges behave exactly as on a sequential graph; edges whose
// endpoints land on different shards hand packets across via the
// coordinator's mailboxes, with the edge's propagation delay as the
// channel lookahead — which is why a shard-cut edge must have positive
// delay.
func NewSharded(c *sim.Coordinator, assign []int) *Graph {
	return &Graph{S: c.Shard(0).Simulator, coord: c, assign: assign,
		routes: make(map[hopKey]routeState), classByRoute: make(map[string]int32)}
}

// Sharded reports whether the graph spans multiple shard simulators.
func (g *Graph) Sharded() bool { return g.coord != nil }

// Coordinator returns the graph's shard coordinator (nil if unsharded).
func (g *Graph) Coordinator() *sim.Coordinator { return g.coord }

// ShardOf reports the shard a node lives on (0 on unsharded graphs).
func (g *Graph) ShardOf(node int) int { return g.nodes[node].shard }

// SimFor returns the simulator a node's components must schedule on.
func (g *Graph) SimFor(node int) *sim.Simulator {
	if g.coord == nil {
		return g.S
	}
	return g.coord.Shard(g.nodes[node].shard).Simulator
}

// AddNode adds a junction and returns its id.
func (g *Graph) AddNode(name string) int {
	id := len(g.nodes)
	shard := 0
	if g.coord != nil {
		if id >= len(g.assign) {
			panic(fmt.Sprintf("topo: node %d exceeds the shard assignment (%d nodes partitioned)", id, len(g.assign)))
		}
		shard = g.assign[id]
		if shard < 0 || shard >= g.coord.Shards() {
			panic(fmt.Sprintf("topo: node %d assigned to shard %d of %d", id, shard, g.coord.Shards()))
		}
	}
	n := &Node{ID: id, Name: name, g: g, shard: shard, table: make(map[int32]hop)}
	g.nodes = append(g.nodes, n)
	return n.ID
}

// Node returns the node with the given id.
func (g *Graph) Node(id int) *Node { return g.nodes[id] }

// AddEdge adds a directed hop named name from one node to another and
// returns its edge id. The link factory (which may be nil) is invoked
// immediately with the edge's tail — the delay wire when Delay is
// positive, otherwise the destination node — as its destination.
// Impairments, when non-zero, are applied before the link (arriving
// traffic is impaired, then queued) and draw from a per-edge RNG seeded
// by (simulator seed, name): the loss/jitter/reorder pattern an edge
// sees is a pure function of its own name and the run seed, never of
// how many other edges exist or what traffic they carry. Names should
// be unique per graph — two edges sharing one would also share their
// random pattern, not their RNG state.
func (g *Graph) AddEdge(name string, from, to int, delay sim.Time, imp Impairments, mk LinkFactory) (int, error) {
	if from < 0 || from >= len(g.nodes) || to < 0 || to >= len(g.nodes) {
		return 0, fmt.Errorf("topo: AddEdge(%d → %d) references unknown node", from, to)
	}
	e := &Edge{ID: len(g.edges), Name: name, From: g.nodes[from], To: g.nodes[to], Delay: delay, g: g}
	e.home = g.SimFor(from)
	var tail packet.Node = e.To
	if fs, ts := g.nodes[from].shard, g.nodes[to].shard; fs != ts {
		// Shard-cut edge: the propagation stage becomes the cross-shard
		// handoff, with the delay as the channel's lookahead. Zero-delay
		// edges cannot be cut — a message with no latency could land in
		// the destination shard's past.
		if delay <= 0 {
			return 0, fmt.Errorf("topo: edge %q crosses shards %d → %d with zero delay; shard-cut edges need positive propagation delay", name, fs, ts)
		}
		g.coord.SetLookahead(fs, ts, delay)
		e.cross = &crossHop{src: g.coord.Shard(fs), dst: ts, delay: delay, to: e.To}
		tail = e.cross
	} else if delay > 0 {
		e.wire = netem.NewWire(e.home, delay, tail)
		tail = e.wire
	}
	if mk != nil {
		l, err := mk(tail)
		if err != nil {
			return 0, err
		}
		e.Link = l
		tail = l
	}
	if !imp.zero() {
		head, stats := imp.build(e.home, e.rand("impair"), tail)
		tail = head
		e.impair = stats
	}
	e.head = tail
	g.edges = append(g.edges, e)
	if g.rec != nil {
		e.wireObs()
	}
	return e.ID, nil
}

// crossHop is the propagation stage of a shard-cut hop: instead of a
// local delay wire it posts the packet into the destination shard's
// mailbox, timestamped with the hop's propagation delay. Same-shard hops
// never see one — they keep the direct synchronous path.
type crossHop struct {
	src   *sim.Shard
	dst   int
	delay sim.Time
	to    packet.Node
}

// crossDeliver is the static delivery callback run on the destination
// shard (no per-packet closure).
func crossDeliver(a, b any) { a.(packet.Node).Recv(b.(*packet.Packet)) }

// Recv implements packet.Node on the source shard.
func (h *crossHop) Recv(p *packet.Packet) {
	h.src.Post(h.dst, h.src.Now()+h.delay, crossDeliver, h.to, p)
}

// rand returns a fresh RNG for one of the edge's random stages, seeded
// from (simulator seed, edge name, salt). Distinct salts give the
// impairment and attack stages independent streams, so installing an
// attack mid-run does not perturb the edge's impairment pattern.
func (e *Edge) rand(salt string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(e.Name))
	h.Write([]byte{0})
	h.Write([]byte(salt))
	return rand.New(rand.NewSource(e.g.S.Seed() ^ int64(h.Sum64())))
}

// Edge returns the edge with the given id.
func (g *Graph) Edge(id int) *Edge { return g.edges[id] }

// Edges returns the number of edges in the graph.
func (g *Graph) Edges() int { return len(g.edges) }

// Entry returns the entry element of an edge — the hop a sender attached
// at the edge's tail node transmits into (gate included).
func (g *Graph) Entry(edge int) packet.Node { return g.edges[edge] }

// CheckPath verifies that an edge sequence is a well-formed route over
// the graph: every id names an existing edge, consecutive edges are
// contiguous (each starts at the node the previous one ends at), and the
// route never revisits a node it started at or already passed through —
// a forwarding table maps each (flow, direction) to exactly one next
// hop, so a looping route could never be installed. Spec compilers call
// it to reject malformed mesh routes before any wiring happens.
func (g *Graph) CheckPath(edges []int) error {
	if len(edges) == 0 {
		return nil
	}
	if edges[0] < 0 || edges[0] >= len(g.edges) {
		return fmt.Errorf("references unknown edge %d", edges[0])
	}
	seen := make(map[*Node]bool, len(edges)+1)
	seen[g.edges[edges[0]].From] = true
	for i, id := range edges {
		if id < 0 || id >= len(g.edges) {
			return fmt.Errorf("references unknown edge %d", id)
		}
		e := g.edges[id]
		if i > 0 && e.From != g.edges[edges[i-1]].To {
			return fmt.Errorf("not contiguous: edge %d starts at %q, previous ends at %q",
				id, e.From.Name, g.edges[edges[i-1]].To.Name)
		}
		if seen[e.To] {
			return fmt.Errorf("loops back over node %q", e.To.Name)
		}
		seen[e.To] = true
	}
	return nil
}

// classKey canonicalizes a (direction, edge sequence) pair for the class
// dedup map. Only route installs and reroutes pay for it, never the
// per-packet path.
func classKey(ack bool, edges []int) string {
	b := make([]byte, 0, 1+4*len(edges))
	if ack {
		b = append(b, 1)
	}
	for _, e := range edges {
		b = append(b, byte(e), byte(e>>8), byte(e>>16), byte(e>>24))
	}
	return string(b)
}

// newClassID returns a recycled or fresh class id with the given state.
func (g *Graph) newClassID(c fibClass) int32 {
	if n := len(g.freeClasses); n > 0 {
		id := g.freeClasses[n-1]
		g.freeClasses = g.freeClasses[:n-1]
		g.classes[id] = c
		return id
	}
	g.classes = append(g.classes, c)
	return int32(len(g.classes) - 1)
}

// attachClass binds one more flow to the class for (ack, edges),
// creating the class — and installing its table entries — when this is
// the first flow routed over that exact sequence.
func (g *Graph) attachClass(ack bool, edges []int) int32 {
	key := classKey(ack, edges)
	if id, ok := g.classByRoute[key]; ok {
		g.classes[id].refs++
		g.traceClass(obs.EvClassAttach, id, g.classes[id].refs)
		return id
	}
	id := g.newClassID(fibClass{ack: ack, edges: append([]int(nil), edges...), refs: 1})
	g.classByRoute[key] = id
	g.installClass(id, edges)
	g.traceClass(obs.EvClassAttach, id, 1)
	return id
}

// traceClass emits a route-class refcount event (attach/detach).
func (g *Graph) traceClass(k obs.Kind, id int32, refs int) {
	if g.rec.Enabled(obs.CatRoute) {
		g.rec.Emit(int64(g.S.Now()), k, id, -1, int64(refs), 0)
	}
}

// detachClass unbinds one flow from a class; the last detach removes the
// class's table entries and recycles its id.
func (g *Graph) detachClass(id int32) {
	c := &g.classes[id]
	c.refs--
	g.traceClass(obs.EvClassDetach, id, c.refs)
	if c.refs > 0 {
		return
	}
	if !c.fan {
		g.uninstallClass(id, c.edges)
		delete(g.classByRoute, classKey(c.ack, c.edges))
	}
	g.classes[id] = fibClass{}
	g.freeClasses = append(g.freeClasses, id)
}

// installClass writes the class's table entries: the origin forwards
// onto the first edge, each intermediate node onto the next edge, and
// the last node carries the end-of-route sentinel (delivery through the
// arriving flow's own tail).
func (g *Graph) installClass(id int32, edges []int) {
	g.edges[edges[0]].From.table[id] = hop{edge: int32(edges[0])}
	for i, eid := range edges {
		next := hop{edge: -1}
		if i < len(edges)-1 {
			next = hop{edge: int32(edges[i+1])}
		}
		g.edges[eid].To.table[id] = next
	}
}

// uninstallClass removes the class's table entries.
func (g *Graph) uninstallClass(id int32, edges []int) {
	delete(g.edges[edges[0]].From.table, id)
	for _, eid := range edges {
		delete(g.edges[eid].To.table, id)
	}
}

// setFlowClass points one direction of a flow at a class (-1 detaches),
// growing the per-direction resolution slice as flow ids appear.
func (g *Graph) setFlowClass(flow int, ack bool, id int32) {
	dir := 0
	if ack {
		dir = 1
	}
	for len(g.classOf[dir]) <= flow {
		g.classOf[dir] = append(g.classOf[dir], -1)
	}
	g.classOf[dir][flow] = id
}

// setFlowTail records a flow's delivery element for one direction.
func (g *Graph) setFlowTail(flow int, ack bool, tail packet.Node) {
	dir := 0
	if ack {
		dir = 1
	}
	for len(g.tails[dir]) <= flow {
		g.tails[dir] = append(g.tails[dir], nil)
	}
	g.tails[dir][flow] = tail
}

// RouteFlow installs one direction of a flow's route along the given
// edge sequence and terminates it at terminal (the flow's receiver for
// data routes — ack false — and its sender endpoint for ACK routes — ack
// true). tailDelay, when positive, inserts a final per-flow propagation
// hop — the flow's access latency — between the last node and the
// terminal. It returns the element the route's traffic must be injected
// into: the route's origin node, so that every hop including the first
// is a forwarding-table decision (and hence reroutable).
//
// The edges must satisfy CheckPath, and the (flow, direction) pair must
// not already be routed at any node along the way — each table maps it
// to exactly one next hop. An empty edge sequence wires the terminal
// (behind its tailDelay) directly; such direct routes bypass the tables
// and cannot be rerouted.
func (g *Graph) RouteFlow(flow int, ack bool, edges []int, tailDelay sim.Time, terminal packet.Node) (packet.Node, error) {
	if g.Sharded() {
		return nil, fmt.Errorf("topo: flow %d: sharded graphs route with RouteFlowAt (the terminal's shard must be pinned)", flow)
	}
	return g.routeFlow(flow, ack, edges, tailDelay, terminal, 0, 0)
}

// RouteFlowAt is RouteFlow for sharded graphs. termShard pins the shard
// the terminal element lives (and schedules) on; injShard names the
// shard of the element that injects into the route and only matters for
// direct routes (no edges), where the returned tail is entered from the
// injector's shard rather than from a junction. When the route's last
// node and the terminal share a shard the tail is the usual access-
// latency wire; otherwise the tail becomes a cross-shard hop and
// tailDelay must be positive, for the same reason a shard-cut edge needs
// positive delay.
func (g *Graph) RouteFlowAt(flow int, ack bool, edges []int, tailDelay sim.Time, terminal packet.Node, termShard, injShard int) (packet.Node, error) {
	if !g.Sharded() {
		return nil, fmt.Errorf("topo: flow %d: RouteFlowAt needs a sharded graph", flow)
	}
	if n := g.coord.Shards(); termShard < 0 || termShard >= n || injShard < 0 || injShard >= n {
		return nil, fmt.Errorf("topo: flow %d: shard out of range", flow)
	}
	return g.routeFlow(flow, ack, edges, tailDelay, terminal, termShard, injShard)
}

func (g *Graph) routeFlow(flow int, ack bool, edges []int, tailDelay sim.Time, terminal packet.Node, termShard, injShard int) (packet.Node, error) {
	key := hopKey{flow: int32(flow), ack: ack}
	if _, dup := g.routes[key]; dup {
		return nil, fmt.Errorf("topo: flow %d %s route installed twice", flow, dirName(ack))
	}
	rt := routeState{terminal: terminal, tailDelay: tailDelay, termShard: termShard, class: -1}
	if len(edges) == 0 {
		tail, err := g.buildTail(&rt, injShard)
		if err != nil {
			return nil, fmt.Errorf("topo: flow %d %s route: %v", flow, dirName(ack), err)
		}
		rt.origin, rt.tail = -1, tail
		g.routes[key] = rt
		return tail, nil
	}
	if err := g.CheckPath(edges); err != nil {
		return nil, fmt.Errorf("topo: flow %d route %v", flow, err)
	}
	last := g.edges[edges[len(edges)-1]].To
	tail, err := g.buildTail(&rt, last.shard)
	if err != nil {
		return nil, fmt.Errorf("topo: flow %d %s route: %v", flow, dirName(ack), err)
	}
	rt.tail = tail
	g.setFlowTail(flow, ack, tail)
	rt.class = g.attachClass(ack, edges)
	g.setFlowClass(flow, ack, rt.class)
	origin := g.edges[edges[0]].From
	rt.edges, rt.origin = edges, origin.ID
	g.routes[key] = rt
	return origin, nil
}

// RouteFanout installs a multicast-style fan-out route for one direction
// of a flow: the shared origin duplicates every packet onto each
// branch's first edge, the branches forward independently, and branch i
// delivers to terminals[i] behind a tailDelay access wire. Branches must
// all start at the same junction and be node-disjoint beyond it — each
// junction keeps exactly one decision per class. Fan-out routes own a
// dedicated (never aggregated) class, cannot be rerouted, and are
// sequential-only.
func (g *Graph) RouteFanout(flow int, ack bool, branches [][]int, tailDelay sim.Time, terminals []packet.Node) (packet.Node, error) {
	if g.Sharded() {
		return nil, fmt.Errorf("topo: flow %d: fan-out routes are not supported on sharded graphs", flow)
	}
	key := hopKey{flow: int32(flow), ack: ack}
	if _, dup := g.routes[key]; dup {
		return nil, fmt.Errorf("topo: flow %d %s route installed twice", flow, dirName(ack))
	}
	if len(branches) < 2 {
		return nil, fmt.Errorf("topo: flow %d: fan-out needs at least two branches (RouteFlow installs single routes)", flow)
	}
	if len(terminals) != len(branches) {
		return nil, fmt.Errorf("topo: flow %d: %d branches but %d terminals", flow, len(branches), len(terminals))
	}
	seen := make(map[*Node]int)
	var origin *Node
	for bi, br := range branches {
		if len(br) == 0 {
			return nil, fmt.Errorf("topo: flow %d: fan-out branch %d is empty", flow, bi)
		}
		if err := g.CheckPath(br); err != nil {
			return nil, fmt.Errorf("topo: flow %d branch %d %v", flow, bi, err)
		}
		from := g.edges[br[0]].From
		if origin == nil {
			origin = from
		} else if from != origin {
			return nil, fmt.Errorf("topo: flow %d: branch %d starts at %q, branch 0 at %q — fan-out branches share one origin",
				flow, bi, from.Name, origin.Name)
		}
		for _, eid := range br {
			to := g.edges[eid].To
			if prev, dup := seen[to]; dup {
				return nil, fmt.Errorf("topo: flow %d: branches %d and %d both traverse node %q — fan-out branches must be node-disjoint",
					flow, prev, bi, to.Name)
			}
			seen[to] = bi
		}
	}
	rt := routeState{origin: origin.ID, fan: true, tailDelay: tailDelay}
	id := g.newClassID(fibClass{ack: ack, refs: 1, fan: true})
	fan := make([]int32, len(branches))
	for bi, br := range branches {
		fan[bi] = int32(br[0])
		var tail packet.Node = terminals[bi]
		if tailDelay > 0 {
			tail = netem.NewWire(g.S, tailDelay, terminals[bi])
		}
		for i, eid := range br {
			next := hop{edge: -1, terminal: tail}
			if i < len(br)-1 {
				next = hop{edge: int32(br[i+1])}
			}
			g.edges[eid].To.table[id] = next
		}
	}
	origin.table[id] = hop{edge: -1, fan: fan}
	rt.class = id
	g.setFlowClass(flow, ack, id)
	g.routes[key] = rt
	return origin, nil
}

// buildTail constructs the delivery element installed at a route's last
// node (or handed to a direct route's injector), given the shard that
// element is entered from. Unsharded graphs build the classic wire; on
// sharded graphs a tail whose terminal lives on another shard becomes a
// cross-shard hop with tailDelay as its lookahead.
func (g *Graph) buildTail(rt *routeState, fromShard int) (packet.Node, error) {
	if !g.Sharded() || fromShard == rt.termShard {
		s := g.S
		if g.Sharded() {
			s = g.coord.Shard(fromShard).Simulator
		}
		if rt.tailDelay > 0 {
			return netem.NewWire(s, rt.tailDelay, rt.terminal), nil
		}
		return rt.terminal, nil
	}
	if rt.tailDelay <= 0 {
		return nil, fmt.Errorf("terminal on shard %d entered from shard %d needs positive access latency", rt.termShard, fromShard)
	}
	g.coord.SetLookahead(fromShard, rt.termShard, rt.tailDelay)
	return &crossHop{src: g.coord.Shard(fromShard), dst: rt.termShard, delay: rt.tailDelay, to: rt.terminal}, nil
}

// RouteOf reports the edge sequence currently installed for one
// direction of a flow, and whether such a route exists. The returned
// slice must not be mutated.
func (g *Graph) RouteOf(flow int, ack bool) ([]int, bool) {
	rt, ok := g.routes[hopKey{flow: int32(flow), ack: ack}]
	if !ok {
		return nil, false
	}
	return rt.edges, true
}

// dirName names a route direction in errors.
func dirName(ack bool) string {
	if ack {
		return "ack"
	}
	return "data"
}

// UnroutedDrops sums packets dropped at junctions because no table entry
// existed for their (flow, direction) — wiring bugs in static
// topologies, expected transients across mid-run reroutes.
func (g *Graph) UnroutedDrops() int64 {
	var n int64
	for _, nd := range g.nodes {
		n += nd.Drops
	}
	return n
}

// ImpairDrops sums packets dropped by impairment stages across all edges
// (deliberate loss, as opposed to UnroutedDrops' wiring bugs).
func (g *Graph) ImpairDrops() int64 {
	var n int64
	for _, e := range g.edges {
		n += e.ImpairDrops()
	}
	return n
}

// DownDrops sums packets dropped at the entry of administratively-down
// edges across the graph (link_down outage windows).
func (g *Graph) DownDrops() int64 {
	var n int64
	for _, e := range g.edges {
		n += e.DownDrops
	}
	return n
}

// AdversaryDrops sums packets discarded by installed attack stages
// across all edges (targeted loss, as opposed to ImpairDrops' oblivious
// loss).
func (g *Graph) AdversaryDrops() int64 {
	var n int64
	for _, e := range g.edges {
		n += e.AdvDrops
	}
	return n
}

// AdversaryDelayed sums packets deferred by attack extra-delay stages
// across all edges.
func (g *Graph) AdversaryDelayed() int64 {
	var n int64
	for _, e := range g.edges {
		n += e.AdvDelayed
	}
	return n
}

// AdversaryStripped sums accel marks demoted by mark-stripping attacks
// across all edges.
func (g *Graph) AdversaryStripped() int64 {
	var n int64
	for _, e := range g.edges {
		n += e.AdvStripped
	}
	return n
}
