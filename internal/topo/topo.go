// Package topo models an experiment's network as a directed graph of
// nodes and links with explicit per-flow routes. A node is a junction
// that forwards packets by table lookup; an edge is one hop — an optional
// bottleneck link (trace-driven, rate-driven or Wi-Fi modelled), an
// optional impairment stage (jitter, random or bursty loss, reordering)
// and a propagation delay. A flow's data path and its ACK path are both
// routes over such edges, so reverse-path bottlenecks, asymmetric delays
// and cross traffic entering or leaving mid-path are all expressible
// without bespoke wiring.
//
// Forwarding is a per-node decision: every node owns a forwarding table
// keyed by (flow, direction) — direction distinguishing a flow's data
// packets from its ACKs — whose entries name either the next edge of the
// route or the terminal delivery element (the receiver for data, the
// sender endpoint for ACKs). Because the decision is made hop by hop at
// run time rather than wired into a fixed chain at build time, routes can
// change mid-run: Router atomically swaps a flow's table entries while
// packets are in flight (see router.go for the conservation contract).
//
// The graph adds no events of its own: table lookup and the edge gate are
// synchronous, so a chain of edges behaves (and schedules) exactly like
// the manually wired element chains it replaces — a static route through
// the forwarding tables is byte-identical to the precompiled pipeline it
// superseded. Misrouted packets — a flow arriving at a node with no table
// entry for it — are counted, not silently released; UnroutedDrops is
// the first thing to check when a new topology misbehaves (after a
// mid-run reroute a non-zero count is expected: packets in flight on
// abandoned edges drain to the next junction and are dropped there).
package topo

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"abc/internal/netem"
	"abc/internal/packet"
	"abc/internal/sim"
)

// Link is a bottleneck element on an edge. netem.TraceLink, netem.RateLink
// and wifi.Link all satisfy it.
type Link interface {
	packet.Node
	// DeliveredBytes reports total payload bytes the link has delivered.
	DeliveredBytes() int64
}

// LinkFactory builds an edge's link with its downstream destination
// already wired (links in this codebase take their destination at
// construction). A nil factory makes the edge a pure propagation hop.
type LinkFactory func(dst packet.Node) (Link, error)

// hopKey addresses one direction of one flow in a forwarding table: a
// flow's data packets and its ACKs are routed independently, so a data
// route and an ACK route may share junctions.
type hopKey struct {
	flow int32
	ack  bool
}

// hop is one forwarding-table entry: the next edge of the route, or the
// terminal delivery element when edge is negative.
type hop struct {
	edge     int32
	terminal packet.Node
}

// Node is a junction: packets arriving here are forwarded by a
// (flow, direction) table lookup to the next edge of that flow's route,
// or delivered to the route's terminal.
type Node struct {
	ID   int
	Name string
	g    *Graph
	// table is the forwarding table; Router mutates it mid-run.
	table map[hopKey]hop
	// Drops counts arrivals with no table entry (wiring bugs, or packets
	// stranded on an abandoned route after a mid-run reroute).
	Drops int64
}

// Recv implements packet.Node: one forwarding decision.
func (n *Node) Recv(p *packet.Packet) {
	h, ok := n.table[hopKey{flow: int32(p.Flow), ack: p.IsAck}]
	if !ok {
		// No route for this (flow, direction) here: the node is the last
		// holder. Count the drop so both wiring bugs and reroute-stranded
		// packets are visible.
		n.Drops++
		p.Release()
		return
	}
	if h.edge >= 0 {
		n.g.edges[h.edge].Recv(p)
		return
	}
	h.terminal.Recv(p)
}

// Edge is one directed hop between two nodes.
type Edge struct {
	ID int
	// Name identifies the edge in event timelines and, crucially, seeds
	// its private RNG streams: impairment and attack randomness derive
	// from (simulator seed, edge name), so adding or reordering unrelated
	// edges never reshuffles this edge's loss pattern.
	Name     string
	From, To *Node
	// Delay is the hop's propagation delay, applied after the link.
	Delay sim.Time
	// Link is the edge's bottleneck element (nil for pure delay hops).
	Link Link
	// DownDrops counts packets discarded at the edge's entry while the
	// edge was administratively down (SetDown).
	DownDrops int64
	// AdvDrops / AdvDelayed / AdvStripped count the installed attack's
	// actions: targeted discards, targeted extra-delay deferrals and
	// accel marks demoted by mark-stripping (adversary.go).
	AdvDrops    int64
	AdvDelayed  int64
	AdvStripped int64

	g *Graph
	// head is the first element of the edge's chain:
	// impairments → link → delay wire → To.
	head packet.Node
	// wire is the propagation stage, kept so SetDelay can retune it.
	wire *netem.Wire
	// impair exposes the impairment stage's drop counters.
	impair *impairStats
	// attack is the installed adversary stage (nil = honest edge); advRng
	// is its private RNG, created on first install and kept across
	// retunes so an event timeline swapping attacks stays deterministic.
	attack *Attack
	advRng *rand.Rand
	// down gates the edge: while set, arriving packets are counted into
	// DownDrops and released. Packets already inside the chain (queued in
	// the qdisc, in flight on the wire) still drain.
	down bool
}

// Recv implements packet.Node: the edge's entry, applying the up/down
// gate, then the attack stage, then the impairment/link/delay chain.
func (e *Edge) Recv(p *packet.Packet) {
	if e.down {
		e.DownDrops++
		p.Release()
		return
	}
	if e.attack != nil && !e.applyAttack(p) {
		return // dropped or deferred by the attack stage
	}
	e.head.Recv(p)
}

// SetDown takes the edge down (true) or back up (false). While down,
// packets arriving at the edge are dropped and counted in DownDrops;
// packets already queued or in flight on the edge still drain — an
// outage severs the hop, it does not vaporize its buffer.
func (e *Edge) SetDown(down bool) { e.down = down }

// Down reports whether the edge is administratively down.
func (e *Edge) Down() bool { return e.down }

// DelayMutable reports whether SetDelay can retune this edge: only edges
// built with a positive propagation delay own a delay stage.
func (e *Edge) DelayMutable() bool { return e.wire != nil }

// SetDelay retunes the edge's propagation delay mid-run. Deliveries
// already scheduled keep the old delay; subsequent packets use the new
// one. Edges built with zero delay have no delay stage to retune (give
// the edge a positive initial delay to make it mutable).
func (e *Edge) SetDelay(d sim.Time) error {
	if e.wire == nil {
		return fmt.Errorf("topo: edge %d built with zero delay has no delay stage", e.ID)
	}
	if d < 0 {
		return fmt.Errorf("topo: negative delay %v", d)
	}
	e.Delay = d
	e.wire.Delay = d
	return nil
}

// ImpairDrops reports packets dropped by this edge's impairment stage.
func (e *Edge) ImpairDrops() int64 {
	if e.impair == nil {
		return 0
	}
	return e.impair.drops
}

// routeState records one installed (flow, direction) route so Router can
// atomically swap it later.
type routeState struct {
	edges []int
	// origin is the node the route's traffic is injected at (the first
	// edge's tail), or -1 for direct routes (no edges: the terminal is
	// wired straight to the producer and nothing is reroutable).
	origin int
	// tail is the delivery element installed at the route's last node:
	// the per-flow access-latency wire when the route has one, else the
	// terminal itself. A reroute moves it to the new last node.
	tail packet.Node
}

// Graph is the topology under construction and, once flows are routed,
// the running network.
type Graph struct {
	S     *sim.Simulator
	nodes []*Node
	edges []*Edge
	// routes registers every installed route by (flow, direction) for
	// mid-run mutation and conservation accounting.
	routes map[hopKey]routeState
}

// New returns an empty graph on the simulator.
func New(s *sim.Simulator) *Graph {
	return &Graph{S: s, routes: make(map[hopKey]routeState)}
}

// AddNode adds a junction and returns its id.
func (g *Graph) AddNode(name string) int {
	n := &Node{ID: len(g.nodes), Name: name, g: g, table: make(map[hopKey]hop)}
	g.nodes = append(g.nodes, n)
	return n.ID
}

// Node returns the node with the given id.
func (g *Graph) Node(id int) *Node { return g.nodes[id] }

// AddEdge adds a directed hop named name from one node to another and
// returns its edge id. The link factory (which may be nil) is invoked
// immediately with the edge's tail — the delay wire when Delay is
// positive, otherwise the destination node — as its destination.
// Impairments, when non-zero, are applied before the link (arriving
// traffic is impaired, then queued) and draw from a per-edge RNG seeded
// by (simulator seed, name): the loss/jitter/reorder pattern an edge
// sees is a pure function of its own name and the run seed, never of
// how many other edges exist or what traffic they carry. Names should
// be unique per graph — two edges sharing one would also share their
// random pattern, not their RNG state.
func (g *Graph) AddEdge(name string, from, to int, delay sim.Time, imp Impairments, mk LinkFactory) (int, error) {
	if from < 0 || from >= len(g.nodes) || to < 0 || to >= len(g.nodes) {
		return 0, fmt.Errorf("topo: AddEdge(%d → %d) references unknown node", from, to)
	}
	e := &Edge{ID: len(g.edges), Name: name, From: g.nodes[from], To: g.nodes[to], Delay: delay, g: g}
	var tail packet.Node = e.To
	if delay > 0 {
		e.wire = netem.NewWire(g.S, delay, tail)
		tail = e.wire
	}
	if mk != nil {
		l, err := mk(tail)
		if err != nil {
			return 0, err
		}
		e.Link = l
		tail = l
	}
	if !imp.zero() {
		head, stats := imp.build(g.S, e.rand("impair"), tail)
		tail = head
		e.impair = stats
	}
	e.head = tail
	g.edges = append(g.edges, e)
	return e.ID, nil
}

// rand returns a fresh RNG for one of the edge's random stages, seeded
// from (simulator seed, edge name, salt). Distinct salts give the
// impairment and attack stages independent streams, so installing an
// attack mid-run does not perturb the edge's impairment pattern.
func (e *Edge) rand(salt string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(e.Name))
	h.Write([]byte{0})
	h.Write([]byte(salt))
	return rand.New(rand.NewSource(e.g.S.Seed() ^ int64(h.Sum64())))
}

// Edge returns the edge with the given id.
func (g *Graph) Edge(id int) *Edge { return g.edges[id] }

// Edges returns the number of edges in the graph.
func (g *Graph) Edges() int { return len(g.edges) }

// Entry returns the entry element of an edge — the hop a sender attached
// at the edge's tail node transmits into (gate included).
func (g *Graph) Entry(edge int) packet.Node { return g.edges[edge] }

// CheckPath verifies that an edge sequence is a well-formed route over
// the graph: every id names an existing edge, consecutive edges are
// contiguous (each starts at the node the previous one ends at), and the
// route never revisits a node it started at or already passed through —
// a forwarding table maps each (flow, direction) to exactly one next
// hop, so a looping route could never be installed. Spec compilers call
// it to reject malformed mesh routes before any wiring happens.
func (g *Graph) CheckPath(edges []int) error {
	if len(edges) == 0 {
		return nil
	}
	if edges[0] < 0 || edges[0] >= len(g.edges) {
		return fmt.Errorf("references unknown edge %d", edges[0])
	}
	seen := make(map[*Node]bool, len(edges)+1)
	seen[g.edges[edges[0]].From] = true
	for i, id := range edges {
		if id < 0 || id >= len(g.edges) {
			return fmt.Errorf("references unknown edge %d", id)
		}
		e := g.edges[id]
		if i > 0 && e.From != g.edges[edges[i-1]].To {
			return fmt.Errorf("not contiguous: edge %d starts at %q, previous ends at %q",
				id, e.From.Name, g.edges[edges[i-1]].To.Name)
		}
		if seen[e.To] {
			return fmt.Errorf("loops back over node %q", e.To.Name)
		}
		seen[e.To] = true
	}
	return nil
}

// checkFree verifies no node along the route (origin included) already
// holds a table entry for key.
func (g *Graph) checkFree(key hopKey, edges []int) error {
	check := func(n *Node) error {
		if _, dup := n.table[key]; dup {
			return fmt.Errorf("already routed at node %q", n.Name)
		}
		return nil
	}
	if err := check(g.edges[edges[0]].From); err != nil {
		return err
	}
	for _, id := range edges {
		if err := check(g.edges[id].To); err != nil {
			return err
		}
	}
	return nil
}

// install writes the route's table entries: the origin forwards onto the
// first edge, each intermediate node onto the next edge, and the last
// node delivers to tail.
func (g *Graph) install(key hopKey, edges []int, tail packet.Node) {
	g.edges[edges[0]].From.table[key] = hop{edge: int32(edges[0])}
	for i, id := range edges {
		next := hop{edge: -1, terminal: tail}
		if i < len(edges)-1 {
			next = hop{edge: int32(edges[i+1])}
		}
		g.edges[id].To.table[key] = next
	}
}

// uninstall removes the route's table entries.
func (g *Graph) uninstall(key hopKey, edges []int) {
	delete(g.edges[edges[0]].From.table, key)
	for _, id := range edges {
		delete(g.edges[id].To.table, key)
	}
}

// RouteFlow installs one direction of a flow's route along the given
// edge sequence and terminates it at terminal (the flow's receiver for
// data routes — ack false — and its sender endpoint for ACK routes — ack
// true). tailDelay, when positive, inserts a final per-flow propagation
// hop — the flow's access latency — between the last node and the
// terminal. It returns the element the route's traffic must be injected
// into: the route's origin node, so that every hop including the first
// is a forwarding-table decision (and hence reroutable).
//
// The edges must satisfy CheckPath, and the (flow, direction) pair must
// not already be routed at any node along the way — each table maps it
// to exactly one next hop. An empty edge sequence wires the terminal
// (behind its tailDelay) directly; such direct routes bypass the tables
// and cannot be rerouted.
func (g *Graph) RouteFlow(flow int, ack bool, edges []int, tailDelay sim.Time, terminal packet.Node) (packet.Node, error) {
	key := hopKey{flow: int32(flow), ack: ack}
	if _, dup := g.routes[key]; dup {
		return nil, fmt.Errorf("topo: flow %d %s route installed twice", flow, dirName(ack))
	}
	var tail packet.Node = terminal
	if tailDelay > 0 {
		tail = netem.NewWire(g.S, tailDelay, terminal)
	}
	if len(edges) == 0 {
		g.routes[key] = routeState{origin: -1, tail: tail}
		return tail, nil
	}
	if err := g.CheckPath(edges); err != nil {
		return nil, fmt.Errorf("topo: flow %d route %v", flow, err)
	}
	if err := g.checkFree(key, edges); err != nil {
		return nil, fmt.Errorf("topo: flow %d %v", flow, err)
	}
	g.install(key, edges, tail)
	origin := g.edges[edges[0]].From
	g.routes[key] = routeState{edges: edges, origin: origin.ID, tail: tail}
	return origin, nil
}

// RouteOf reports the edge sequence currently installed for one
// direction of a flow, and whether such a route exists. The returned
// slice must not be mutated.
func (g *Graph) RouteOf(flow int, ack bool) ([]int, bool) {
	rt, ok := g.routes[hopKey{flow: int32(flow), ack: ack}]
	if !ok {
		return nil, false
	}
	return rt.edges, true
}

// dirName names a route direction in errors.
func dirName(ack bool) string {
	if ack {
		return "ack"
	}
	return "data"
}

// UnroutedDrops sums packets dropped at junctions because no table entry
// existed for their (flow, direction) — wiring bugs in static
// topologies, expected transients across mid-run reroutes.
func (g *Graph) UnroutedDrops() int64 {
	var n int64
	for _, nd := range g.nodes {
		n += nd.Drops
	}
	return n
}

// ImpairDrops sums packets dropped by impairment stages across all edges
// (deliberate loss, as opposed to UnroutedDrops' wiring bugs).
func (g *Graph) ImpairDrops() int64 {
	var n int64
	for _, e := range g.edges {
		n += e.ImpairDrops()
	}
	return n
}

// DownDrops sums packets dropped at the entry of administratively-down
// edges across the graph (link_down outage windows).
func (g *Graph) DownDrops() int64 {
	var n int64
	for _, e := range g.edges {
		n += e.DownDrops
	}
	return n
}

// AdversaryDrops sums packets discarded by installed attack stages
// across all edges (targeted loss, as opposed to ImpairDrops' oblivious
// loss).
func (g *Graph) AdversaryDrops() int64 {
	var n int64
	for _, e := range g.edges {
		n += e.AdvDrops
	}
	return n
}

// AdversaryDelayed sums packets deferred by attack extra-delay stages
// across all edges.
func (g *Graph) AdversaryDelayed() int64 {
	var n int64
	for _, e := range g.edges {
		n += e.AdvDelayed
	}
	return n
}

// AdversaryStripped sums accel marks demoted by mark-stripping attacks
// across all edges.
func (g *Graph) AdversaryStripped() int64 {
	var n int64
	for _, e := range g.edges {
		n += e.AdvStripped
	}
	return n
}
