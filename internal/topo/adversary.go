// Adversarial impairments: targeted fault injection aimed at specific
// flows, as opposed to the oblivious loss/jitter/reordering of
// impair.go. An Attack installs on an edge (Edge.SetAttack) and gates
// three impairment actions — targeted drop, targeted extra delay,
// targeted mark-stripping — behind a Target selector that picks victims
// by flow id, by a seeded random fraction of flow ids, by direction
// (data vs ACK) and by time window. Attacks are retunable mid-run, so a
// timed event timeline can switch victims, escalate or call an attack
// off while packets are in flight.
//
// Determinism contract: victim selection by Fraction is a pure function
// of (simulator seed, flow id) — not of packet arrival order — and the
// attack's own randomness (DropRate draws) comes from a per-edge RNG
// stream seeded by the edge name, independent of the impairment stream.
// A fixed seed therefore replays the exact same attack regardless of
// unrelated topology or traffic changes.
package topo

import (
	"fmt"

	"abc/internal/obs"
	"abc/internal/packet"
	"abc/internal/sim"
)

// TargetDir selects which packet direction an attack matches.
type TargetDir int

const (
	// TargetBoth matches data packets and ACKs alike (the default).
	TargetBoth TargetDir = iota
	// TargetData matches only data packets.
	TargetData
	// TargetAck matches only acknowledgements.
	TargetAck
)

// String names the direction for errors and annotations.
func (d TargetDir) String() string {
	switch d {
	case TargetData:
		return "data"
	case TargetAck:
		return "ack"
	}
	return "both"
}

// Target selects the victim packets of an attack. A packet matches when
// its flow is selected (explicitly listed in Flows, or drawn into the
// seeded Fraction), its direction matches Dir, and the current time lies
// in [From, To) — To zero meaning forever. Flows and Fraction compose as
// a union; at least one must select something for the Target to be
// valid.
type Target struct {
	// Flows lists victim flow ids explicitly.
	Flows []int
	// Fraction additionally selects each flow id independently with this
	// probability, decided once per flow by a hash of (seed, flow id):
	// membership is stable across the run and across packet orderings,
	// and covers dynamically spawned workload flows too.
	Fraction float64
	// Dir restricts the attack to data packets or ACKs.
	Dir TargetDir
	// From / To bound the attack's active window on the simulation
	// clock; To zero means no end.
	From, To sim.Time
}

// Validate rejects malformed selectors with a descriptive error.
func (t Target) Validate() error {
	if t.Fraction < 0 || t.Fraction > 1 {
		return fmt.Errorf("target fraction %g outside [0, 1]", t.Fraction)
	}
	if len(t.Flows) == 0 && t.Fraction == 0 {
		return fmt.Errorf("target selects no flows (need flows or fraction)")
	}
	for _, f := range t.Flows {
		if f < 0 {
			return fmt.Errorf("target flow id %d is negative", f)
		}
	}
	if t.Dir < TargetBoth || t.Dir > TargetAck {
		return fmt.Errorf("unknown target direction %d", t.Dir)
	}
	if t.From < 0 || t.To < 0 {
		return fmt.Errorf("negative target time window")
	}
	if t.To > 0 && t.To <= t.From {
		return fmt.Errorf("target window [%v, %v) is empty", t.From, t.To)
	}
	return nil
}

// SelectsFlow reports whether the target's flow-level selection (Flows
// union Fraction, ignoring direction and time window) covers the given
// flow id under the given simulation seed. Experiment reporting uses it
// to classify flows into victims and bystanders with the exact rule the
// attack stage applies.
func (t Target) SelectsFlow(flow int, seed int64) bool {
	for _, f := range t.Flows {
		if f == flow {
			return true
		}
	}
	return t.Fraction > 0 && flowDraw(seed, flow) < t.Fraction
}

// matches reports whether a packet is a victim at the given time.
func (t Target) matches(now sim.Time, p *packet.Packet, seed int64) bool {
	if now < t.From || (t.To > 0 && now >= t.To) {
		return false
	}
	if (t.Dir == TargetData && p.IsAck) || (t.Dir == TargetAck && !p.IsAck) {
		return false
	}
	return t.SelectsFlow(p.Flow, seed)
}

// flowDraw maps (seed, flow) to a uniform value in [0, 1) with a
// splitmix64-style finalizer: per-flow victim membership is decided by
// this one draw, so it cannot drift with packet order or edge count.
func flowDraw(seed int64, flow int) float64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(flow+1)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(uint64(1)<<53)
}

// Attack is one edge's adversarial stage: every arriving packet the
// Target matches is subjected, in order, to a probabilistic drop, to
// mark-stripping, and to a fixed extra delay. At least one action must
// be configured.
type Attack struct {
	// Target selects the victim packets.
	Target Target
	// DropRate discards each matching packet with this probability
	// (drawn from the edge's private attack RNG).
	DropRate float64
	// StripMarks demotes an ABC accelerate to a brake on matching
	// packets — data marks and ACK-borne echoes alike, the same channel
	// an honest router may demote through, wielded indiscriminately.
	StripMarks bool
	// ExtraDelay defers each matching packet by this much before it
	// enters the edge's chain. Unlike jitter, delivery order is NOT
	// preserved: unmatched packets overtake deferred victims, which is
	// precisely the reordering a delay attack induces.
	ExtraDelay sim.Time
}

// Validate rejects malformed attacks with a descriptive error.
func (a *Attack) Validate() error {
	if err := a.Target.Validate(); err != nil {
		return err
	}
	if a.DropRate < 0 || a.DropRate > 1 {
		return fmt.Errorf("attack drop rate %g outside [0, 1]", a.DropRate)
	}
	if a.ExtraDelay < 0 {
		return fmt.Errorf("negative attack extra delay")
	}
	if a.DropRate == 0 && !a.StripMarks && a.ExtraDelay == 0 {
		return fmt.Errorf("attack configures no action (need drop, strip_marks or extra_delay)")
	}
	return nil
}

// String renders the attack for event annotations.
func (a *Attack) String() string {
	s := fmt.Sprintf("target{flows=%v frac=%g dir=%s}", a.Target.Flows, a.Target.Fraction, a.Target.Dir)
	if a.DropRate > 0 {
		s += fmt.Sprintf(" drop=%g", a.DropRate)
	}
	if a.StripMarks {
		s += " strip"
	}
	if a.ExtraDelay > 0 {
		s += fmt.Sprintf(" delay=%v", a.ExtraDelay)
	}
	return s
}

// SetAttack installs, replaces or (with nil) clears the edge's attack
// stage. The edge's attack RNG is created on first install and survives
// replacements, so a timeline that swaps attack configurations draws
// one continuous deterministic stream. The caller must not mutate a
// after installing it.
func (e *Edge) SetAttack(a *Attack) {
	if a != nil && e.advRng == nil {
		e.advRng = e.rand("attack")
	}
	if e.g.rec.Enabled(obs.CatAttack) {
		k := obs.EvAttackOff
		if a != nil {
			k = obs.EvAttackOn
		}
		e.g.rec.Emit(int64(e.home.Now()), k, int32(e.ID), -1, 0, 0)
	}
	e.attack = a
}

// Attacked reports whether an attack stage is currently installed.
func (e *Edge) Attacked() bool { return e.attack != nil }

// advDeliver is the static deferred-delivery callback (no per-packet
// closure). Deferred packets were already admitted past the down gate
// and the attack stage; they enter the edge chain directly, even if the
// edge went down or the attack was retuned while they were held.
func advDeliver(a, b any) { a.(*Edge).head.Recv(b.(*packet.Packet)) }

// applyAttack runs the attack stage on one packet, reporting whether the
// packet should continue into the edge chain now (false: it was dropped
// or deferred and the stage owns what happens next).
func (e *Edge) applyAttack(p *packet.Packet) bool {
	a := e.attack
	if !a.Target.matches(e.home.Now(), p, e.home.Seed()) {
		return true
	}
	if a.DropRate > 0 && e.advRng.Float64() < a.DropRate {
		e.AdvDrops++
		if e.g.rec.Enabled(obs.CatAttack) {
			e.g.rec.Emit(int64(e.home.Now()), obs.EvAttackDrop, int32(e.ID), int32(p.Flow), 0, 0)
		}
		p.Release()
		return false
	}
	if a.StripMarks && p.ECN == packet.Accel {
		p.ECN = packet.Brake
		e.AdvStripped++
		if e.g.rec.Enabled(obs.CatAttack) {
			e.g.rec.Emit(int64(e.home.Now()), obs.EvAttackStrip, int32(e.ID), int32(p.Flow), 0, 0)
		}
	}
	if a.ExtraDelay > 0 {
		e.AdvDelayed++
		if e.g.rec.Enabled(obs.CatAttack) {
			e.g.rec.Emit(int64(e.home.Now()), obs.EvAttackDelay, int32(e.ID), int32(p.Flow), int64(a.ExtraDelay), 0)
		}
		e.home.AfterArgs(a.ExtraDelay, advDeliver, e, p)
		return false
	}
	return true
}
