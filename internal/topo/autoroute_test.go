package topo

import (
	"fmt"
	"testing"

	"abc/internal/netem"
	"abc/internal/packet"
	"abc/internal/qdisc"
	"abc/internal/sim"
)

// delayDiamond builds a diamond with asymmetric propagation delays:
// a → b → d over e1,e2 (2 ms each) and a → c → d over e3,e4 (5 ms
// each), all 8 Mbit/s rate links — so the upper path is the shortest
// while it's up.
func delayDiamond(t *testing.T, s *sim.Simulator) (g *Graph, e1, e2, e3, e4 int) {
	t.Helper()
	g = New(s)
	a, b, c, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("c"), g.AddNode("d")
	mk := func(from, to int, delay sim.Time) int {
		id, err := g.AddEdge(fmt.Sprintf("d%d-%d", from, to), from, to, delay, Impairments{},
			func(dst packet.Node) (Link, error) {
				return netem.NewRateLink(s, netem.ConstRate(8e6), qdisc.NewDropTail(100), dst), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	e1 = mk(a, b, 2*sim.Millisecond)
	e2 = mk(b, d, 2*sim.Millisecond)
	e3 = mk(a, c, 5*sim.Millisecond)
	e4 = mk(c, d, 5*sim.Millisecond)
	return g, e1, e2, e3, e4
}

func TestLinkStateShortestPath(t *testing.T) {
	s := sim.New(1)
	g, e1, e2, e3, e4 := delayDiamond(t, s)
	v := LinkStateOf(g)
	if got := v.ShortestPath(0, 3, nil, false); len(got) != 2 || got[0] != e1 || got[1] != e2 {
		t.Fatalf("all-up shortest = %v, want [%d %d]", got, e1, e2)
	}
	g.Edge(e1).SetDown(true)
	if got := v.ShortestPath(0, 3, nil, false); len(got) != 2 || got[0] != e3 || got[1] != e4 {
		t.Fatalf("shortest with e1 down = %v, want [%d %d]", got, e3, e4)
	}
	// ignoreDown sees the full topology regardless of link state.
	if got := v.ShortestPath(0, 3, nil, true); len(got) != 2 || got[0] != e1 {
		t.Fatalf("ignoreDown shortest = %v, want the upper path", got)
	}
	g.Edge(e3).SetDown(true)
	if got := v.ShortestPath(0, 3, nil, false); got != nil {
		t.Fatalf("shortest with both first hops down = %v, want nil", got)
	}
	g.Edge(e1).SetDown(false)
	g.Edge(e3).SetDown(false)
	if got := v.ShortestPath(0, 3, map[int]bool{e1: true}, false); len(got) != 2 || got[0] != e3 {
		t.Fatalf("shortest avoiding e1 = %v, want the lower path", got)
	}
	if got := v.ShortestPath(0, 0, nil, false); got != nil {
		t.Fatalf("path to self = %v, want nil", got)
	}
}

// TestShortestPathEmergentReroute: no scripted reroutes — the policy
// reacts to link_down/link_up on its own, conservation holds, and the
// route returns to the shorter path once the outage clears.
func TestShortestPathEmergentReroute(t *testing.T) {
	s := sim.New(1)
	g, e1, e2, e3, e4 := delayDiamond(t, s)
	sink := &packet.Sink{}
	entry, err := g.RouteFlow(1, false, []int{e1, e2}, 0, sink)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := NewAutoRouter(g, ShortestPathPolicy{}, 5*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var changes [][]int
	ar.OnChange = func(flow int, ack bool, edges []int) {
		changes = append(changes, append([]int(nil), edges...))
	}
	if err := ar.Manage(1, false); err != nil {
		t.Fatal(err)
	}
	const n = 100
	send(s, entry, 1, n) // one per ms from t=0
	s.At(20500*sim.Microsecond, func() { g.Edge(e1).SetDown(true) })
	s.At(60500*sim.Microsecond, func() { g.Edge(e1).SetDown(false) })
	s.RunUntil(2 * sim.Second)

	if ar.Changes != 2 || len(changes) != 2 {
		t.Fatalf("route changes = %d (%v), want 2 (failover + recovery)", ar.Changes, changes)
	}
	if changes[0][0] != e3 || changes[0][1] != e4 {
		t.Fatalf("failover path = %v, want [%d %d]", changes[0], e3, e4)
	}
	if route, _ := g.RouteOf(1, false); route[0] != e1 || route[1] != e2 {
		t.Fatalf("final route = %v, want the recovered shortest path", route)
	}
	total := int64(sink.Count) + g.DownDrops() + g.UnroutedDrops()
	if total != n {
		t.Fatalf("conservation violated: delivered %d + down %d + unrouted %d != %d",
			sink.Count, g.DownDrops(), g.UnroutedDrops(), n)
	}
	if g.DownDrops() == 0 {
		t.Fatal("expected packets sent during the convergence window to hit the down gate")
	}
}

// TestAutoRouterCoalescesFlap: a down/up flap inside one convergence
// window is absorbed — by recompute time the link state matches the
// installed route and nothing moves.
func TestAutoRouterCoalescesFlap(t *testing.T) {
	s := sim.New(1)
	g, e1, e2, _, _ := delayDiamond(t, s)
	if _, err := g.RouteFlow(1, false, []int{e1, e2}, 0, &packet.Sink{}); err != nil {
		t.Fatal(err)
	}
	ar, err := NewAutoRouter(g, ShortestPathPolicy{}, 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := ar.Manage(1, false); err != nil {
		t.Fatal(err)
	}
	s.At(20*sim.Millisecond, func() { g.Edge(e1).SetDown(true) })
	s.At(22*sim.Millisecond, func() { g.Edge(e1).SetDown(false) })
	s.RunUntil(sim.Second)
	if ar.Changes != 0 {
		t.Fatalf("route changes = %d, want 0 (flap absorbed within the convergence window)", ar.Changes)
	}
	if route, _ := g.RouteOf(1, false); route[0] != e1 {
		t.Fatalf("route moved to %v during an absorbed flap", route)
	}
}

// TestKFailoverPolicy: backups are precomputed edge-disjoint at Manage
// time; outages fail over to the first fully-up candidate and recovery
// returns to the primary.
func TestKFailoverPolicy(t *testing.T) {
	s := sim.New(1)
	g, e1, e2, e3, e4 := delayDiamond(t, s)
	if _, err := g.RouteFlow(1, false, []int{e1, e2}, 0, &packet.Sink{}); err != nil {
		t.Fatal(err)
	}
	ar, err := NewAutoRouter(g, &KFailoverPolicy{K: 1}, 5*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := ar.Manage(1, false); err != nil {
		t.Fatal(err)
	}
	s.At(20*sim.Millisecond, func() { g.Edge(e2).SetDown(true) })
	s.At(100*sim.Millisecond, func() {
		if route, _ := g.RouteOf(1, false); route[0] != e3 || route[1] != e4 {
			t.Errorf("route after e2 outage = %v, want the precomputed backup", route)
		}
	})
	s.At(200*sim.Millisecond, func() { g.Edge(e2).SetDown(false) })
	s.RunUntil(sim.Second)
	if route, _ := g.RouteOf(1, false); route[0] != e1 || route[1] != e2 {
		t.Fatalf("final route = %v, want the recovered primary", route)
	}
	if ar.Changes != 2 {
		t.Fatalf("route changes = %d, want 2", ar.Changes)
	}
	// All candidates down: the policy leaves the route in place.
	s2 := sim.New(1)
	g2, f1, f2, f3, _ := delayDiamond(t, s2)
	if _, err := g2.RouteFlow(1, false, []int{f1, f2}, 0, &packet.Sink{}); err != nil {
		t.Fatal(err)
	}
	ar2, err := NewAutoRouter(g2, &KFailoverPolicy{}, 5*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := ar2.Manage(1, false); err != nil {
		t.Fatal(err)
	}
	s2.At(20*sim.Millisecond, func() {
		g2.Edge(f1).SetDown(true)
		g2.Edge(f3).SetDown(true)
	})
	s2.RunUntil(sim.Second)
	if ar2.Changes != 0 {
		t.Fatalf("route changes with every candidate down = %d, want 0", ar2.Changes)
	}
}

// TestKFailoverNoBackupError: a topology without an edge-disjoint
// alternative fails loudly at Manage time, not silently at failover.
func TestKFailoverNoBackupError(t *testing.T) {
	s := sim.New(1)
	g := New(s)
	a, b := g.AddNode("a"), g.AddNode("b")
	e1 := rateEdge(t, g, s, a, b, sim.Millisecond, Impairments{})
	if _, err := g.RouteFlow(1, false, []int{e1}, 0, &packet.Sink{}); err != nil {
		t.Fatal(err)
	}
	ar, err := NewAutoRouter(g, &KFailoverPolicy{K: 2}, 5*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := ar.Manage(1, false); err == nil {
		t.Fatal("kfailover accepted a route with no disjoint backup")
	}
}

// TestAutoRouterDrainingMakeBeforeBreak: with a drain window set, an
// emergent route change (triggered here by a delay increase, so the old
// path stays up) delivers every in-flight packet — zero stranded drops.
func TestAutoRouterDrainingMakeBeforeBreak(t *testing.T) {
	s := sim.New(1)
	g, e1, e2, e3, e4 := delayDiamond(t, s)
	sink := &packet.Sink{}
	entry, err := g.RouteFlow(1, false, []int{e1, e2}, 0, sink)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := NewAutoRouter(g, ShortestPathPolicy{}, 5*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ar.SetDrain(500 * sim.Millisecond)
	if err := ar.Manage(1, false); err != nil {
		t.Fatal(err)
	}
	const n = 50
	s.At(0, func() {
		for i := 0; i < n; i++ {
			entry.Recv(packet.NewData(1, int64(i), packet.MTU, s.Now()))
		}
	})
	// Degrade the upper path's delay: the lower path becomes shortest,
	// the policy moves the route while ~40 packets still queue on e1.
	s.At(10*sim.Millisecond, func() {
		if err := g.Edge(e2).SetDelay(40 * sim.Millisecond); err != nil {
			t.Errorf("SetDelay: %v", err)
		}
	})
	s.RunUntil(3 * sim.Second)
	if ar.Changes != 1 {
		t.Fatalf("route changes = %d, want 1", ar.Changes)
	}
	if route, _ := g.RouteOf(1, false); route[0] != e3 || route[1] != e4 {
		t.Fatalf("route = %v, want the lower path", route)
	}
	if sink.Count != n {
		t.Fatalf("delivered %d/%d; make-before-break must drain the old path", sink.Count, n)
	}
	if d := g.UnroutedDrops(); d != 0 {
		t.Fatalf("unrouted drops = %d, want 0", d)
	}
}

// TestAutoRouterValidation: construction and Manage reject what they
// cannot support, loudly.
func TestAutoRouterValidation(t *testing.T) {
	s := sim.New(1)
	g, e1, e2, e3, _ := delayDiamond(t, s)
	if _, err := NewAutoRouter(g, ShortestPathPolicy{}, 0); err == nil {
		t.Error("zero recompute latency accepted")
	}
	if _, err := NewAutoRouter(g, ShortestPathPolicy{}, -sim.Millisecond); err == nil {
		t.Error("negative recompute latency accepted")
	}
	ar, err := NewAutoRouter(g, ShortestPathPolicy{}, 5*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := ar.Manage(1, false); err == nil {
		t.Error("managing an unrouted flow accepted")
	}
	if _, err := g.RouteFlow(1, false, []int{e1, e2}, 0, &packet.Sink{}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.RouteFlow(1, true, nil, sim.Millisecond, &packet.Sink{}); err != nil {
		t.Fatal(err)
	}
	if err := ar.Manage(1, true); err == nil {
		t.Error("managing a direct-wire route accepted")
	}
	if err := ar.Manage(1, false); err != nil {
		t.Fatalf("valid manage rejected: %v", err)
	}
	if err := ar.Manage(1, false); err == nil {
		t.Error("double manage accepted")
	}
	if _, err := g.RouteFanout(2, false, [][]int{{e1}, {e3}}, 0,
		[]packet.Node{&packet.Sink{}, &packet.Sink{}}); err != nil {
		t.Fatal(err)
	}
	if err := ar.Manage(2, false); err == nil {
		t.Error("managing a fan-out route accepted")
	}
}

// TestOnLinkChangeNotifies pins the watcher contract: actual up/down
// transitions and successful delay changes notify, no-op SetDowns and
// failed SetDelays do not.
func TestOnLinkChangeNotifies(t *testing.T) {
	s := sim.New(1)
	g := New(s)
	a, b := g.AddNode("a"), g.AddNode("b")
	e1, err := g.AddEdge("ab", a, b, sim.Millisecond, Impairments{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e2 := rateEdge(t, g, s, b, a, 0, Impairments{})
	var n int
	g.OnLinkChange(func(*Edge) { n++ })
	g.Edge(e1).SetDown(true)
	if n != 1 {
		t.Fatalf("notifications after SetDown(true) = %d, want 1", n)
	}
	g.Edge(e1).SetDown(true) // no transition
	if n != 1 {
		t.Fatalf("no-op SetDown notified (n = %d)", n)
	}
	g.Edge(e1).SetDown(false)
	if n != 2 {
		t.Fatalf("notifications after SetDown(false) = %d, want 2", n)
	}
	if err := g.Edge(e1).SetDelay(2 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("notifications after SetDelay = %d, want 3", n)
	}
	if err := g.Edge(e2).SetDelay(sim.Millisecond); err == nil {
		t.Fatal("SetDelay on a zero-delay edge accepted")
	}
	if n != 3 {
		t.Fatalf("failed SetDelay notified (n = %d)", n)
	}
}
