package topo

import (
	"math"
	"testing"

	"abc/internal/packet"
	"abc/internal/sim"
)

// attackEdge builds a two-node graph with one pure-delay edge and routes
// the given flows (data direction) over it into per-flow counters.
func attackEdge(t *testing.T, seed int64, delay sim.Time, flows ...int) (*sim.Simulator, *Graph, *Edge, map[int]*[]int64) {
	t.Helper()
	s := sim.New(seed)
	g := New(s)
	a, b := g.AddNode("a"), g.AddNode("b")
	id, err := g.AddEdge("ab", a, b, delay, Impairments{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[int]*[]int64, len(flows))
	for _, f := range flows {
		f := f
		seqs := &[]int64{}
		got[f] = seqs
		sink := packet.NodeFunc(func(p *packet.Packet) {
			*seqs = append(*seqs, p.Seq)
			p.Release()
		})
		if _, err := g.RouteFlow(f, false, []int{id}, 0, sink); err != nil {
			t.Fatal(err)
		}
	}
	return s, g, g.Edge(id), got
}

func TestAttackValidate(t *testing.T) {
	bad := []Attack{
		{},                                      // no target, no action
		{Target: Target{Flows: []int{1}}},       // no action
		{Target: Target{Fraction: 1.5}, DropRate: 0.1},                 // fraction out of range
		{Target: Target{Flows: []int{-1}}, DropRate: 0.1},              // negative flow
		{Target: Target{Flows: []int{1}}, DropRate: 2},                 // drop rate out of range
		{Target: Target{Flows: []int{1}}, ExtraDelay: -sim.Second},     // negative delay
		{Target: Target{Flows: []int{1}, From: 5, To: 5}, DropRate: 1}, // empty window
		{Target: Target{Flows: []int{1}, Dir: 7}, DropRate: 1},         // unknown direction
	}
	for i, a := range bad {
		a := a
		if err := a.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, a)
		}
	}
	ok := Attack{Target: Target{Flows: []int{0}, Dir: TargetAck, From: sim.Second}, StripMarks: true}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid attack rejected: %v", err)
	}
}

// TestTargetedDropHitsOnlyVictim: a DropRate=1 attack on flow 1 kills all
// of flow 1's packets while flow 2 sails through untouched.
func TestTargetedDropHitsOnlyVictim(t *testing.T) {
	s, g, e, got := attackEdge(t, 1, sim.Millisecond, 1, 2)
	e.SetAttack(&Attack{Target: Target{Flows: []int{1}}, DropRate: 1})
	entry := g.Node(e.From.ID)
	for i := 0; i < 50; i++ {
		entry.Recv(packet.NewData(1, int64(i), packet.MTU, 0))
		entry.Recv(packet.NewData(2, int64(i), packet.MTU, 0))
	}
	s.Run()
	if n := len(*got[1]); n != 0 {
		t.Errorf("victim flow 1 delivered %d packets, want 0", n)
	}
	if n := len(*got[2]); n != 50 {
		t.Errorf("bystander flow 2 delivered %d packets, want 50", n)
	}
	if e.AdvDrops != 50 || g.AdversaryDrops() != 50 {
		t.Errorf("AdvDrops = %d (graph %d), want 50", e.AdvDrops, g.AdversaryDrops())
	}
}

// TestAttackWindow: the attack only bites inside [From, To).
func TestAttackWindow(t *testing.T) {
	s, g, e, got := attackEdge(t, 1, 0, 1)
	e.SetAttack(&Attack{
		Target:   Target{Flows: []int{1}, From: 10 * sim.Millisecond, To: 20 * sim.Millisecond},
		DropRate: 1,
	})
	entry := g.Node(e.From.ID)
	for i := 0; i < 30; i++ {
		seq := int64(i)
		s.At(sim.Time(i)*sim.Millisecond, func() {
			entry.Recv(packet.NewData(1, seq, packet.MTU, 0))
		})
	}
	s.Run()
	if n := len(*got[1]); n != 20 {
		t.Fatalf("delivered %d packets, want 20 (10 in-window dropped)", n)
	}
	for _, seq := range *got[1] {
		if seq >= 10 && seq < 20 {
			t.Errorf("in-window packet %d survived", seq)
		}
	}
}

// TestAttackDirection: a data-only attack spares ACKs and vice versa.
func TestAttackDirection(t *testing.T) {
	s := sim.New(1)
	g := New(s)
	a, b := g.AddNode("a"), g.AddNode("b")
	id, err := g.AddEdge("ab", a, b, 0, Impairments{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := g.Edge(id)
	var data, acks int
	dataSink := packet.NodeFunc(func(p *packet.Packet) { data++; p.Release() })
	ackSink := packet.NodeFunc(func(p *packet.Packet) { acks++; p.Release() })
	if _, err := g.RouteFlow(1, false, []int{id}, 0, dataSink); err != nil {
		t.Fatal(err)
	}
	if _, err := g.RouteFlow(1, true, []int{id}, 0, ackSink); err != nil {
		t.Fatal(err)
	}
	e.SetAttack(&Attack{Target: Target{Flows: []int{1}, Dir: TargetAck}, DropRate: 1})
	entry := g.Node(a)
	for i := 0; i < 10; i++ {
		entry.Recv(packet.NewData(1, int64(i), packet.MTU, 0))
		d := packet.NewData(1, int64(i), packet.MTU, 0)
		ack := packet.NewAck(d, int64(i)+1, 0)
		d.Release()
		entry.Recv(ack)
	}
	s.Run()
	if data != 10 {
		t.Errorf("data delivered %d, want 10 (ack-only attack)", data)
	}
	if acks != 0 {
		t.Errorf("acks delivered %d, want 0", acks)
	}
}

// TestStripMarksDemotesAccel: mark-stripping demotes Accel→Brake on
// victim packets only, and never promotes.
func TestStripMarksDemotesAccel(t *testing.T) {
	s := sim.New(1)
	g := New(s)
	a, b := g.AddNode("a"), g.AddNode("b")
	id, err := g.AddEdge("ab", a, b, 0, Impairments{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := g.Edge(id)
	e.SetAttack(&Attack{Target: Target{Flows: []int{1}}, StripMarks: true})
	var ecns []packet.ECN
	sink := packet.NodeFunc(func(p *packet.Packet) { ecns = append(ecns, p.ECN); p.Release() })
	if _, err := g.RouteFlow(1, false, []int{id}, 0, sink); err != nil {
		t.Fatal(err)
	}
	entry := g.Node(a)
	for _, ecn := range []packet.ECN{packet.Accel, packet.Brake, packet.Accel} {
		p := packet.NewData(1, 0, packet.MTU, 0)
		p.ECN = ecn
		entry.Recv(p)
	}
	s.Run()
	want := []packet.ECN{packet.Brake, packet.Brake, packet.Brake}
	for i, ecn := range ecns {
		if ecn != want[i] {
			t.Errorf("packet %d ECN = %d, want %d", i, ecn, want[i])
		}
	}
	if e.AdvStripped != 2 || g.AdversaryStripped() != 2 {
		t.Errorf("AdvStripped = %d (graph %d), want 2", e.AdvStripped, g.AdversaryStripped())
	}
}

// TestExtraDelayReorders: victims are deferred and overtaken by
// untargeted packets — unlike jitter, order is deliberately not held.
func TestExtraDelayReorders(t *testing.T) {
	s, g, e, got := attackEdge(t, 1, 0, 1, 2)
	e.SetAttack(&Attack{Target: Target{Flows: []int{1}}, ExtraDelay: 5 * sim.Millisecond})
	entry := g.Node(e.From.ID)
	var order []int
	for f := 1; f <= 2; f++ {
		f := f
		sink := packet.NodeFunc(func(p *packet.Packet) { order = append(order, f); p.Release() })
		// Rebind delivery tails to record global arrival order.
		g.setFlowTail(f, false, sink)
	}
	entry.Recv(packet.NewData(1, 0, packet.MTU, 0)) // victim, deferred 5ms
	entry.Recv(packet.NewData(2, 0, packet.MTU, 0)) // bystander, immediate
	s.Run()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("arrival order = %v, want [2 1] (bystander overtakes deferred victim)", order)
	}
	if e.AdvDelayed != 1 || g.AdversaryDelayed() != 1 {
		t.Errorf("AdvDelayed = %d (graph %d), want 1", e.AdvDelayed, g.AdversaryDelayed())
	}
	_ = got
}

// TestSetAttackRetune: replacing the attack mid-run switches victims, and
// clearing it stops the attack entirely.
func TestSetAttackRetune(t *testing.T) {
	s, g, e, got := attackEdge(t, 1, 0, 1, 2)
	e.SetAttack(&Attack{Target: Target{Flows: []int{1}}, DropRate: 1})
	entry := g.Node(e.From.ID)
	inject := func(n int) {
		for i := 0; i < n; i++ {
			entry.Recv(packet.NewData(1, 0, packet.MTU, 0))
			entry.Recv(packet.NewData(2, 0, packet.MTU, 0))
		}
	}
	inject(10) // phase 1: flow 1 victimized
	e.SetAttack(&Attack{Target: Target{Flows: []int{2}}, DropRate: 1})
	inject(10) // phase 2: flow 2 victimized
	e.SetAttack(nil)
	if e.Attacked() {
		t.Fatal("Attacked() true after clearing")
	}
	inject(10) // phase 3: honest
	s.Run()
	if n := len(*got[1]); n != 20 {
		t.Errorf("flow 1 delivered %d, want 20 (victim only in phase 1)", n)
	}
	if n := len(*got[2]); n != 20 {
		t.Errorf("flow 2 delivered %d, want 20 (victim only in phase 2)", n)
	}
	if e.AdvDrops != 20 {
		t.Errorf("AdvDrops = %d, want 20", e.AdvDrops)
	}
}

// TestFractionSelectionStableAndCalibrated: fraction-based victim
// selection is a pure function of (seed, flow) — identical across calls —
// and empirically close to the requested fraction over many flows.
func TestFractionSelectionStableAndCalibrated(t *testing.T) {
	tgt := Target{Fraction: 0.3}
	const n = 10000
	hits := 0
	for f := 0; f < n; f++ {
		first := tgt.SelectsFlow(f, 42)
		if first != tgt.SelectsFlow(f, 42) {
			t.Fatalf("flow %d selection not stable", f)
		}
		if first {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("fraction 0.3 selected %.3f of flows", got)
	}
	// A different seed picks a different victim set.
	diff := 0
	for f := 0; f < n; f++ {
		if tgt.SelectsFlow(f, 42) != tgt.SelectsFlow(f, 43) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("victim set identical across different seeds")
	}
}

// TestEdgeRNGSeededByName is the regression for the per-edge RNG fix:
// an edge's impairment pattern derives from its name, so adding an
// unrelated edge before it must not reshuffle which packets it drops.
func TestEdgeRNGSeededByName(t *testing.T) {
	run := func(extraEdge bool) []int64 {
		s := sim.New(9)
		g := New(s)
		a, b := g.AddNode("a"), g.AddNode("b")
		if extraEdge {
			c := g.AddNode("c")
			if _, err := g.AddEdge("unrelated", a, c, 0, Impairments{LossRate: 0.5}, nil); err != nil {
				t.Fatal(err)
			}
		}
		id, err := g.AddEdge("lossy", a, b, 0, Impairments{LossRate: 0.2}, nil)
		if err != nil {
			t.Fatal(err)
		}
		var seqs []int64
		sink := packet.NodeFunc(func(p *packet.Packet) { seqs = append(seqs, p.Seq); p.Release() })
		entry, err := g.RouteFlow(1, false, []int{id}, 0, sink)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			entry.Recv(packet.NewData(1, int64(i), packet.MTU, 0))
		}
		s.Run()
		return seqs
	}
	base, withExtra := run(false), run(true)
	if len(base) != len(withExtra) {
		t.Fatalf("survivor count changed: %d vs %d", len(base), len(withExtra))
	}
	for i := range base {
		if base[i] != withExtra[i] {
			t.Fatalf("loss pattern shifted at survivor %d: seq %d vs %d", i, base[i], withExtra[i])
		}
	}
}

// TestAttackRNGIndependentOfImpairments: the attack stage draws from a
// separately salted RNG stream, so installing an attack that removes no
// packets (mark-stripping) leaves the edge's impairment pattern
// byte-identical — and the two streams really are distinct.
func TestAttackRNGIndependentOfImpairments(t *testing.T) {
	run := func(attacked bool) []int64 {
		s := sim.New(5)
		g := New(s)
		a, b := g.AddNode("a"), g.AddNode("b")
		id, err := g.AddEdge("lossy", a, b, 0, Impairments{LossRate: 0.2}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if attacked {
			g.Edge(id).SetAttack(&Attack{Target: Target{Flows: []int{1}}, StripMarks: true})
		}
		var seqs []int64
		sink := packet.NodeFunc(func(p *packet.Packet) { seqs = append(seqs, p.Seq); p.Release() })
		entry, err := g.RouteFlow(1, false, []int{id}, 0, sink)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			p := packet.NewData(1, int64(i), packet.MTU, 0)
			p.ECN = packet.Accel
			entry.Recv(p)
		}
		s.Run()
		return seqs
	}
	honest, attacked := run(false), run(true)
	if len(honest) != len(attacked) {
		t.Fatalf("survivor count changed under non-dropping attack: %d vs %d", len(honest), len(attacked))
	}
	for i := range honest {
		if honest[i] != attacked[i] {
			t.Fatalf("impairment loss pattern shifted at %d", i)
		}
	}
	// And the salted streams are genuinely different from each other.
	e := &Edge{Name: "lossy", g: &Graph{S: sim.New(5)}}
	imp, atk := e.rand("impair"), e.rand("attack")
	same := true
	for i := 0; i < 8; i++ {
		if imp.Int63() != atk.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Error("impair and attack RNG streams are identical")
	}
}
