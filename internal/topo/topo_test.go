package topo

import (
	"fmt"
	"testing"

	"abc/internal/netem"
	"abc/internal/packet"
	"abc/internal/qdisc"
	"abc/internal/sim"
)

// rateEdge adds a 8 Mbit/s droptail rate-link edge between two nodes.
func rateEdge(t *testing.T, g *Graph, s *sim.Simulator, from, to int, delay sim.Time, imp Impairments) int {
	t.Helper()
	id, err := g.AddEdge(fmt.Sprintf("e%d-%d", from, to), from, to, delay, imp, func(dst packet.Node) (Link, error) {
		return netem.NewRateLink(s, netem.ConstRate(8e6), qdisc.NewDropTail(100), dst), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// send pushes n MTU data packets of the flow into entry.
func send(s *sim.Simulator, entry packet.Node, flow, n int) {
	for i := 0; i < n; i++ {
		seq := int64(i)
		s.At(sim.Time(i)*sim.Millisecond, func() {
			entry.Recv(packet.NewData(flow, seq, packet.MTU, s.Now()))
		})
	}
}

func TestRouteFlowDelivers(t *testing.T) {
	s := sim.New(1)
	g := New(s)
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	e1 := rateEdge(t, g, s, a, b, 5*sim.Millisecond, Impairments{})
	e2 := rateEdge(t, g, s, b, c, 0, Impairments{})
	sink := &packet.Sink{}
	entry, err := g.RouteFlow(7, false, []int{e1, e2}, 10*sim.Millisecond, sink)
	if err != nil {
		t.Fatal(err)
	}
	send(s, entry, 7, 20)
	s.RunUntil(sim.Second)
	if sink.Count != 20 {
		t.Fatalf("delivered %d/20 packets", sink.Count)
	}
	if d := g.UnroutedDrops(); d != 0 {
		t.Fatalf("unrouted drops = %d, want 0", d)
	}
	if got := g.Edge(e1).Link.DeliveredBytes(); got != 20*packet.MTU {
		t.Fatalf("edge 1 delivered %d bytes, want %d", got, 20*packet.MTU)
	}
}

func TestRouteFlowRejectsNonContiguous(t *testing.T) {
	s := sim.New(1)
	g := New(s)
	a, b, c, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("c"), g.AddNode("d")
	e1 := rateEdge(t, g, s, a, b, 0, Impairments{})
	e2 := rateEdge(t, g, s, c, d, 0, Impairments{})
	if _, err := g.RouteFlow(1, false, []int{e1, e2}, 0, &packet.Sink{}); err == nil {
		t.Fatal("non-contiguous route accepted")
	}
}

func TestRouteFlowRejectsDoubleRoute(t *testing.T) {
	s := sim.New(1)
	g := New(s)
	a, b := g.AddNode("a"), g.AddNode("b")
	e1 := rateEdge(t, g, s, a, b, 0, Impairments{})
	if _, err := g.RouteFlow(1, false, []int{e1}, 0, &packet.Sink{}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.RouteFlow(1, false, []int{e1}, 0, &packet.Sink{}); err == nil {
		t.Fatal("second route for the same flow at the same node accepted")
	}
}

func TestUnroutedPacketsCounted(t *testing.T) {
	s := sim.New(1)
	g := New(s)
	a, b := g.AddNode("a"), g.AddNode("b")
	e1 := rateEdge(t, g, s, a, b, 0, Impairments{})
	// Route flow 1 but inject flow 2: it reaches node b with no route.
	if _, err := g.RouteFlow(1, false, []int{e1}, 0, &packet.Sink{}); err != nil {
		t.Fatal(err)
	}
	send(s, g.Entry(e1), 2, 5)
	s.RunUntil(sim.Second)
	if d := g.UnroutedDrops(); d != 5 {
		t.Fatalf("unrouted drops = %d, want 5", d)
	}
}

func TestLossGateDropsAndCounts(t *testing.T) {
	s := sim.New(1)
	g := New(s)
	a, b := g.AddNode("a"), g.AddNode("b")
	e1 := rateEdge(t, g, s, a, b, 0, Impairments{LossRate: 0.5})
	sink := &packet.Sink{}
	entry, err := g.RouteFlow(1, false, []int{e1}, 0, sink)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	send(s, entry, 1, n)
	s.RunUntil(10 * sim.Second)
	drops := g.Edge(e1).ImpairDrops()
	if drops == 0 || drops == n {
		t.Fatalf("loss gate dropped %d of %d, want 0 < drops < %d", drops, n, n)
	}
	if int64(sink.Count)+drops != n {
		t.Fatalf("delivered %d + dropped %d != sent %d", sink.Count, drops, n)
	}
	if drops < n/3 || drops > 2*n/3 {
		t.Fatalf("loss gate dropped %d of %d at p=0.5, far off", drops, n)
	}
}

func TestJitterPreservesOrder(t *testing.T) {
	s := sim.New(1)
	g := New(s)
	a, b := g.AddNode("a"), g.AddNode("b")
	// Pure-delay jittery edge: no link, just impairment + wire.
	e1, err := g.AddEdge("ab", a, b, sim.Millisecond, Impairments{Jitter: 20 * sim.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var seqs []int64
	sink := packet.NodeFunc(func(p *packet.Packet) {
		seqs = append(seqs, p.Seq)
		p.Release()
	})
	entry, err := g.RouteFlow(1, false, []int{e1}, 0, sink)
	if err != nil {
		t.Fatal(err)
	}
	send(s, entry, 1, 200)
	s.RunUntil(10 * sim.Second)
	if len(seqs) != 200 {
		t.Fatalf("delivered %d/200", len(seqs))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			t.Fatalf("jitter reordered: seq %d after %d", seqs[i], seqs[i-1])
		}
	}
}

func TestReorderPipeReorders(t *testing.T) {
	s := sim.New(1)
	g := New(s)
	a, b := g.AddNode("a"), g.AddNode("b")
	e1, err := g.AddEdge("ab", a, b, sim.Millisecond,
		Impairments{ReorderProb: 0.2, ReorderDelay: 10 * sim.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	inverted := 0
	last := int64(-1)
	sink := packet.NodeFunc(func(p *packet.Packet) {
		if p.Seq < last {
			inverted++
		}
		if p.Seq > last {
			last = p.Seq
		}
		p.Release()
	})
	entry, err := g.RouteFlow(1, false, []int{e1}, 0, sink)
	if err != nil {
		t.Fatal(err)
	}
	send(s, entry, 1, 500)
	s.RunUntil(10 * sim.Second)
	if inverted == 0 {
		t.Fatal("reorder pipe produced no reordering at p=0.2")
	}
}

func TestImpairmentsDeterministic(t *testing.T) {
	run := func() (delivered int, drops int64) {
		s := sim.New(42)
		g := New(s)
		a, b := g.AddNode("a"), g.AddNode("b")
		e1 := rateEdge(t, g, s, a, b, 2*sim.Millisecond, Impairments{
			LossRate:      0.05,
			BurstLossRate: 0.5,
			BurstPBad:     0.02,
			BurstPGood:    0.3,
			Jitter:        5 * sim.Millisecond,
			ReorderProb:   0.1,
			ReorderDelay:  8 * sim.Millisecond,
		})
		sink := &packet.Sink{}
		entry, err := g.RouteFlow(1, false, []int{e1}, 0, sink)
		if err != nil {
			t.Fatal(err)
		}
		send(s, entry, 1, 1000)
		s.RunUntil(10 * sim.Second)
		return sink.Count, g.ImpairDrops()
	}
	d1, x1 := run()
	d2, x2 := run()
	if d1 != d2 || x1 != x2 {
		t.Fatalf("impaired run not deterministic: (%d,%d) vs (%d,%d)", d1, x1, d2, x2)
	}
	if x1 == 0 {
		t.Fatal("expected some impairment drops")
	}
}
