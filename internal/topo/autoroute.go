// Route computation: the layer that *decides* routes, so handover and
// flap recovery can be emergent behavior instead of scripted reroute
// timelines. A LinkState is a read-only view of the graph's edges —
// up/down state and propagation delay — kept current by the
// Graph.OnLinkChange hook (SetDown, SetDelay). A Policy computes the
// desired path for a managed (flow, direction) from that view, and an
// AutoRouter coalesces link-state changes over a recompute latency
// (modelling control-plane convergence) before applying policy decisions
// through the exact same Router.Reroute machinery scripted events use —
// emergent and scripted route changes obey one conservation contract.
//
// Two policies ship: ShortestPath recomputes a delay-weighted shortest
// path over the currently-up edges on every change, and KFailover
// precomputes k edge-disjoint backup paths per managed route at Manage
// time and fails over to the first fully-up candidate — the
// RoutingTableManager / route-finder split, with precomputed protection
// in place of an on-demand finder.
package topo

import (
	"fmt"
	"slices"

	"abc/internal/sim"
)

// LinkState is a read-only link-state view of a graph: the adjacency
// (edge ids leaving each node, in id order, for deterministic
// traversal), administrative up/down state and propagation delays.
type LinkState struct {
	g *Graph
	// out[node] lists the edge ids leaving node, ascending.
	out [][]int32
}

// LinkStateOf builds the link-state view of a graph. The topology must
// be complete (all edges added) before the view is built.
func LinkStateOf(g *Graph) *LinkState {
	v := &LinkState{g: g, out: make([][]int32, len(g.nodes))}
	for _, e := range g.edges {
		v.out[e.From.ID] = append(v.out[e.From.ID], int32(e.ID))
	}
	return v
}

// Up reports whether an edge is administratively up.
func (v *LinkState) Up(edge int) bool { return !v.g.edges[edge].down }

// Delay reports an edge's current propagation delay.
func (v *LinkState) Delay(edge int) sim.Time { return v.g.edges[edge].Delay }

// ShortestPath computes the lowest-total-propagation-delay path from
// origin to dst over the currently-up edges (Dijkstra; ties broken
// deterministically by scanning nodes and edges in id order, so a run is
// a pure function of the seed and the timeline). It returns nil when no
// up path exists. avoid, when non-nil, excludes edges (the k-failover
// precomputation removes already-used edges to get disjoint backups).
func (v *LinkState) ShortestPath(origin, dst int, avoid map[int]bool, ignoreDown bool) []int {
	const unreached = sim.Time(-1)
	dist := make([]sim.Time, len(v.out))
	via := make([]int32, len(v.out)) // edge that reached the node
	done := make([]bool, len(v.out))
	for i := range dist {
		dist[i], via[i] = unreached, -1
	}
	dist[origin] = 0
	for {
		u := -1
		for i := range dist {
			if done[i] || dist[i] == unreached {
				continue
			}
			if u < 0 || dist[i] < dist[u] {
				u = i
			}
		}
		if u < 0 || u == dst {
			break
		}
		done[u] = true
		for _, eid := range v.out[u] {
			e := v.g.edges[eid]
			if (e.down && !ignoreDown) || avoid[int(eid)] {
				continue
			}
			d := dist[u] + e.Delay
			if t := e.To.ID; dist[t] == unreached || d < dist[t] {
				dist[t], via[t] = d, eid
			}
		}
	}
	if dist[dst] == unreached || origin == dst {
		return nil
	}
	var path []int
	for n := dst; n != origin; {
		eid := via[n]
		path = append(path, int(eid))
		n = v.g.edges[eid].From.ID
	}
	slices.Reverse(path)
	return path
}

// Policy computes routes for managed flows from the link-state view.
type Policy interface {
	// Name identifies the policy in errors and annotations.
	Name() string
	// Setup is called once per managed route with its current installed
	// path, letting the policy precompute (k-failover backups).
	Setup(v *LinkState, flow int, ack bool, origin, dst int, current []int) error
	// Route returns the path the flow should use given the current link
	// state, or nil to leave the installed route in place (no live
	// alternative: packets keep draining into the outage and are counted
	// at the downed edge).
	Route(v *LinkState, flow int, ack bool, origin, dst int) []int
}

// ShortestPathPolicy recomputes a delay-weighted shortest path over the
// up edges on every link-state change.
type ShortestPathPolicy struct{}

// Name implements Policy.
func (ShortestPathPolicy) Name() string { return "shortest" }

// Setup implements Policy (stateless).
func (ShortestPathPolicy) Setup(*LinkState, int, bool, int, int, []int) error { return nil }

// Route implements Policy.
func (ShortestPathPolicy) Route(v *LinkState, _ int, _ bool, origin, dst int) []int {
	return v.ShortestPath(origin, dst, nil, false)
}

// KFailoverPolicy precomputes, per managed route, the installed path
// plus up to K edge-disjoint backup paths (successively shorter-first,
// each avoiding every edge of the candidates before it, computed on the
// all-up topology). On a link-state change the route moves to the first
// candidate whose edges are all up — deterministic failover with no
// on-demand search.
type KFailoverPolicy struct {
	// K is the number of precomputed backups (default 2 when zero).
	K int
	// plans holds the candidate lists per managed (flow, direction).
	plans map[hopKey][][]int
}

// Name implements Policy.
func (p *KFailoverPolicy) Name() string { return "kfailover" }

// Setup implements Policy: precompute the backup candidates.
func (p *KFailoverPolicy) Setup(v *LinkState, flow int, ack bool, origin, dst int, current []int) error {
	k := p.K
	if k <= 0 {
		k = 2
	}
	if p.plans == nil {
		p.plans = make(map[hopKey][][]int)
	}
	plans := [][]int{append([]int(nil), current...)}
	avoid := make(map[int]bool, len(current))
	for _, e := range current {
		avoid[e] = true
	}
	for b := 0; b < k; b++ {
		backup := v.ShortestPath(origin, dst, avoid, true)
		if backup == nil {
			break // the topology holds no further disjoint path
		}
		plans = append(plans, backup)
		for _, e := range backup {
			avoid[e] = true
		}
	}
	if len(plans) == 1 {
		return fmt.Errorf("topo: kfailover: flow %d %s route has no edge-disjoint backup path", flow, dirName(ack))
	}
	p.plans[hopKey{flow: int32(flow), ack: ack}] = plans
	return nil
}

// Route implements Policy: the first fully-up candidate wins.
func (p *KFailoverPolicy) Route(v *LinkState, flow int, ack bool, _, _ int) []int {
	for _, cand := range p.plans[hopKey{flow: int32(flow), ack: ack}] {
		up := true
		for _, e := range cand {
			if !v.Up(e) {
				up = false
				break
			}
		}
		if up {
			return cand
		}
	}
	return nil
}

// AutoRouter subscribes a Policy to the graph's link state and applies
// its decisions to the managed flows through Router.Reroute (or
// RerouteDraining when a make-before-break drain window is set).
// Link-state changes within one recompute latency are coalesced into a
// single recompute — a flap storm triggers one convergence, not one per
// event, and scripted events applied at the same instant are always
// observed atomically.
type AutoRouter struct {
	g       *Graph
	r       *Router
	v       *LinkState
	policy  Policy
	latency sim.Time
	drain   sim.Time
	managed []managedRoute
	pending bool
	// OnChange, when set, observes every applied route change (the new
	// edge ids) — the harness's Result annotations hang off it.
	OnChange func(flow int, ack bool, edges []int)
	// Changes counts applied route changes.
	Changes int
}

type managedRoute struct {
	flow        int
	ack         bool
	origin, dst int
}

// NewAutoRouter builds the route-computation layer for a graph.
// recomputeLatency models control-plane convergence and must be
// positive: it is both the reaction delay after a link-state change and
// the coalescing window for changes that arrive together. Sequential
// graphs only — route recomputation mutates tables across the whole
// topology.
func NewAutoRouter(g *Graph, p Policy, recomputeLatency sim.Time) (*AutoRouter, error) {
	if g.Sharded() {
		return nil, fmt.Errorf("topo: autoroute: sharded graphs do not support route computation")
	}
	if recomputeLatency <= 0 {
		return nil, fmt.Errorf("topo: autoroute: recompute latency must be positive (got %v)", recomputeLatency)
	}
	a := &AutoRouter{g: g, r: g.Router(), v: LinkStateOf(g), policy: p, latency: recomputeLatency}
	g.OnLinkChange(a.linkChanged)
	return a, nil
}

// SetDrain makes applied route changes make-before-break: the old path
// keeps draining to the receiver for the window (RerouteDraining).
func (a *AutoRouter) SetDrain(d sim.Time) { a.drain = d }

// Manage places one direction of a flow under policy control. The route
// must already be installed and reroutable (table-backed, not a direct
// wire, not a fan-out); its origin and destination junctions are fixed
// here, from the installed route.
func (a *AutoRouter) Manage(flow int, ack bool) error {
	g := a.g
	rt, ok := g.routes[hopKey{flow: int32(flow), ack: ack}]
	if !ok {
		return fmt.Errorf("topo: autoroute: flow %d has no %s route", flow, dirName(ack))
	}
	if rt.origin < 0 {
		return fmt.Errorf("topo: autoroute: flow %d %s route is a direct wire (nothing to recompute)", flow, dirName(ack))
	}
	if rt.fan {
		return fmt.Errorf("topo: autoroute: flow %d %s route is a fan-out (fan-out routes cannot be rerouted)", flow, dirName(ack))
	}
	for _, m := range a.managed {
		if m.flow == flow && m.ack == ack {
			return fmt.Errorf("topo: autoroute: flow %d %s route managed twice", flow, dirName(ack))
		}
	}
	dst := g.edges[rt.edges[len(rt.edges)-1]].To.ID
	if err := a.policy.Setup(a.v, flow, ack, rt.origin, dst, rt.edges); err != nil {
		return err
	}
	a.managed = append(a.managed, managedRoute{flow: flow, ack: ack, origin: rt.origin, dst: dst})
	return nil
}

// linkChanged is the OnLinkChange subscriber: arm one recompute per
// convergence window.
func (a *AutoRouter) linkChanged(*Edge) {
	if a.pending {
		return
	}
	a.pending = true
	a.g.S.After(a.latency, a.recompute)
}

// recompute applies the policy to every managed route, in Manage order.
func (a *AutoRouter) recompute() {
	a.pending = false
	for _, m := range a.managed {
		cur, _ := a.g.RouteOf(m.flow, m.ack)
		want := a.policy.Route(a.v, m.flow, m.ack, m.origin, m.dst)
		if want == nil || slices.Equal(cur, want) {
			continue
		}
		var err error
		if a.drain > 0 {
			err = a.r.RerouteDraining(m.flow, m.ack, want, a.drain)
		} else {
			err = a.r.Reroute(m.flow, m.ack, want)
		}
		if err != nil {
			// A policy route that fails validation is a policy bug; the
			// installed route stays, which is the safe outcome mid-run.
			continue
		}
		a.Changes++
		if a.OnChange != nil {
			a.OnChange(m.flow, m.ack, want)
		}
	}
}
