package topk

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExactWhenUnderK(t *testing.T) {
	s := New(10)
	s.Add(1, 100)
	s.Add(2, 50)
	s.Add(1, 25)
	top := s.Top(10)
	if len(top) != 2 {
		t.Fatalf("items = %d", len(top))
	}
	if top[0].Key != 1 || top[0].Count != 125 || top[0].Err != 0 {
		t.Errorf("top[0] = %+v", top[0])
	}
	if top[1].Key != 2 || top[1].Count != 50 {
		t.Errorf("top[1] = %+v", top[1])
	}
	if s.Total() != 175 {
		t.Errorf("total = %d", s.Total())
	}
}

func TestEvictionInheritsError(t *testing.T) {
	s := New(2)
	s.Add(1, 10)
	s.Add(2, 20)
	s.Add(3, 5) // evicts key 1 (count 10), inherits it
	top := s.Top(2)
	found := false
	for _, c := range top {
		if c.Key == 3 {
			found = true
			if c.Count != 15 || c.Err != 10 {
				t.Errorf("evictor counter = %+v", c)
			}
		}
		if c.Key == 1 {
			t.Error("evicted key still present")
		}
	}
	if !found {
		t.Error("new key not tracked")
	}
}

// TestHeavyHitterGuarantee: any key with true count > Total/K must be in
// the table — the Space-Saving guarantee the coexistence scheduler
// relies on.
func TestHeavyHitterGuarantee(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const k = 8
		s := New(k)
		truth := map[int]int64{}
		// One heavy key amid noise.
		heavy := 999
		for i := 0; i < 5000; i++ {
			var key int
			if rng.Float64() < 0.3 {
				key = heavy
			} else {
				key = rng.Intn(500)
			}
			s.Add(key, 1)
			truth[key]++
		}
		if truth[heavy] <= s.Total()/int64(k) {
			return true // not actually heavy this time
		}
		for _, c := range s.Top(k) {
			if c.Key == heavy {
				// Overestimate-bounded: Count-Err <= true <= Count.
				return c.Count >= truth[heavy] && c.Count-c.Err <= truth[heavy]
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestOverestimateProperty: for every monitored key, Count >= true count
// and Count - Err <= true count.
func TestOverestimateProperty(t *testing.T) {
	f := func(keysRaw []uint8) bool {
		s := New(4)
		truth := map[int]int64{}
		for _, kr := range keysRaw {
			k := int(kr % 32)
			s.Add(k, 1)
			truth[k]++
		}
		for _, c := range s.Top(4) {
			tr := truth[c.Key]
			if c.Count < tr || c.Count-c.Err > tr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTopOrderingDeterministic(t *testing.T) {
	s := New(5)
	s.Add(3, 10)
	s.Add(1, 10)
	s.Add(2, 20)
	top := s.Top(3)
	if top[0].Key != 2 || top[1].Key != 1 || top[2].Key != 3 {
		t.Errorf("ordering: %+v", top)
	}
}

func TestReset(t *testing.T) {
	s := New(3)
	s.Add(1, 5)
	s.Reset()
	if s.Total() != 0 || len(s.Top(3)) != 0 {
		t.Error("reset did not clear")
	}
}

func TestMinimumK(t *testing.T) {
	s := New(0) // clamps to 1
	s.Add(1, 1)
	s.Add(2, 1)
	if len(s.Top(5)) != 1 {
		t.Error("k=0 not clamped to 1")
	}
}
