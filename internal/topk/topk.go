// Package topk implements the Space-Saving algorithm (Metwally, Agrawal,
// El Abbadi 2005) for top-K heavy-hitter measurement in O(K) space. The
// ABC coexistence scheduler (§5.2) uses it to find the K largest flows in
// each queue when computing max-min fair queue weights.
package topk

import "sort"

// Counter is one monitored item.
type Counter struct {
	Key   int
	Count int64
	// Err bounds the overestimate of Count (the count the key inherited
	// when it evicted another item).
	Err int64
}

// SpaceSaving monitors at most K keys; any key's true count is guaranteed
// to satisfy Count-Err <= true <= Count, and every key with true count
// greater than N/K (N = total increments) is present in the table.
type SpaceSaving struct {
	k     int
	items map[int]*Counter
	total int64
}

// New returns a Space-Saving sketch tracking up to k keys.
func New(k int) *SpaceSaving {
	if k < 1 {
		k = 1
	}
	return &SpaceSaving{k: k, items: make(map[int]*Counter, k)}
}

// Add increments key by n (e.g. bytes of a packet).
func (s *SpaceSaving) Add(key int, n int64) {
	s.total += n
	if c, ok := s.items[key]; ok {
		c.Count += n
		return
	}
	if len(s.items) < s.k {
		s.items[key] = &Counter{Key: key, Count: n}
		return
	}
	// Evict the minimum-count item, inheriting its count as error.
	var min *Counter
	for _, c := range s.items {
		if min == nil || c.Count < min.Count {
			min = c
		}
	}
	delete(s.items, min.Key)
	s.items[key] = &Counter{Key: key, Count: min.Count + n, Err: min.Count}
}

// Total returns the sum of all increments seen.
func (s *SpaceSaving) Total() int64 { return s.total }

// Top returns up to n monitored counters, largest first, ties broken by
// key for determinism.
func (s *SpaceSaving) Top(n int) []Counter {
	out := make([]Counter, 0, len(s.items))
	for _, c := range s.items {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// Reset clears all counters, starting a new measurement epoch.
func (s *SpaceSaving) Reset() {
	s.items = make(map[int]*Counter, s.k)
	s.total = 0
}
