package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if Second != 1e9 {
		t.Fatalf("Second = %d", int64(Second))
	}
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Seconds() = %v, want 1.5", got)
	}
	if got := (250 * Microsecond).Millis(); got != 0.25 {
		t.Errorf("Millis() = %v, want 0.25", got)
	}
	if got := FromSeconds(2.5); got != 2500*Millisecond {
		t.Errorf("FromSeconds(2.5) = %v", got)
	}
	if got := FromDuration(3 * time.Millisecond); got != 3*Millisecond {
		t.Errorf("FromDuration = %v", got)
	}
	if got := (3 * Millisecond).Duration(); got != 3*time.Millisecond {
		t.Errorf("Duration = %v", got)
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New(1)
	var got []int
	s.At(30*Millisecond, func() { got = append(got, 3) })
	s.At(10*Millisecond, func() { got = append(got, 1) })
	s.At(20*Millisecond, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if s.Now() != 30*Millisecond {
		t.Errorf("clock = %v", s.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break violated at %d: %v", i, got)
		}
	}
}

func TestSchedulingInsideEvents(t *testing.T) {
	s := New(1)
	depth := 0
	var step func()
	step = func() {
		depth++
		if depth < 100 {
			s.After(Millisecond, step)
		}
	}
	s.After(0, step)
	s.Run()
	if depth != 100 {
		t.Errorf("depth = %d", depth)
	}
	if s.Now() != 99*Millisecond {
		t.Errorf("clock = %v", s.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(10*Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.At(5*Millisecond, func() {})
	})
	s.Run()
}

func TestRunUntilStopsAndAdvancesClock(t *testing.T) {
	s := New(1)
	ran := 0
	s.At(10*Millisecond, func() { ran++ })
	s.At(30*Millisecond, func() { ran++ })
	n := s.RunUntil(20 * Millisecond)
	if n != 1 || ran != 1 {
		t.Errorf("ran %d events, counted %d", n, ran)
	}
	if s.Now() != 20*Millisecond {
		t.Errorf("clock = %v, want 20ms", s.Now())
	}
	s.RunUntil(40 * Millisecond)
	if ran != 2 {
		t.Errorf("second event not run")
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	timer := s.At(10*Millisecond, func() { fired = true })
	if !timer.Stop() {
		t.Error("Stop on pending timer should report true")
	}
	if timer.Stop() {
		t.Error("second Stop should report false")
	}
	s.Run()
	if fired {
		t.Error("canceled timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := New(1)
	timer := s.At(Millisecond, func() {})
	s.Run()
	if timer.Stop() {
		t.Error("Stop after firing should report false")
	}
}

func TestHalt(t *testing.T) {
	s := New(1)
	ran := 0
	s.At(Millisecond, func() { ran++; s.Halt() })
	s.At(2*Millisecond, func() { ran++ })
	s.Run()
	if ran != 1 {
		t.Errorf("ran = %d after Halt", ran)
	}
	// Run can resume afterwards.
	s.Run()
	if ran != 2 {
		t.Errorf("ran = %d after resume", ran)
	}
}

func TestEvery(t *testing.T) {
	s := New(1)
	count := 0
	s.Every(10*Millisecond, func() bool {
		count++
		return count < 5
	})
	s.Run()
	if count != 5 {
		t.Errorf("count = %d", count)
	}
	if s.Now() != 50*Millisecond {
		t.Errorf("clock = %v", s.Now())
	}
}

func TestEveryZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero period")
		}
	}()
	New(1).Every(0, func() bool { return false })
}

func TestEventLimit(t *testing.T) {
	s := New(1)
	s.SetEventLimit(10)
	var loop func()
	loop = func() { s.After(Millisecond, loop) }
	s.After(0, loop)
	defer func() {
		if recover() == nil {
			t.Error("expected event-limit panic")
		}
	}()
	s.Run()
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		s := New(42)
		var times []Time
		var jitter func()
		jitter = func() {
			times = append(times, s.Now())
			if len(times) < 50 {
				d := Time(s.Rand().Int63n(int64(10 * Millisecond)))
				s.After(d, jitter)
			}
		}
		s.After(0, jitter)
		s.Run()
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestHeapOrderingProperty verifies the event queue is a total order over
// random schedules: execution times must be non-decreasing.
func TestHeapOrderingProperty(t *testing.T) {
	f := func(seed int64, delaysRaw []uint32) bool {
		if len(delaysRaw) == 0 {
			return true
		}
		s := New(seed)
		rng := rand.New(rand.NewSource(seed))
		var last Time = -1
		ok := true
		check := func() {
			if s.Now() < last {
				ok = false
			}
			last = s.Now()
		}
		for _, d := range delaysRaw {
			s.At(Time(d%1_000_000)*Microsecond, check)
		}
		// A few nested schedulings too.
		s.At(Time(rng.Int63n(int64(Second))), func() {
			check()
			s.After(Time(rng.Int63n(int64(Millisecond))), check)
		})
		s.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPendingAndExecuted(t *testing.T) {
	s := New(1)
	s.At(Millisecond, func() {})
	s.At(2*Millisecond, func() {})
	if s.Pending() != 2 {
		t.Errorf("Pending = %d", s.Pending())
	}
	s.Run()
	if s.Executed() != 2 {
		t.Errorf("Executed = %d", s.Executed())
	}
	if s.Pending() != 0 {
		t.Errorf("Pending after run = %d", s.Pending())
	}
}
