package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if Second != 1e9 {
		t.Fatalf("Second = %d", int64(Second))
	}
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Seconds() = %v, want 1.5", got)
	}
	if got := (250 * Microsecond).Millis(); got != 0.25 {
		t.Errorf("Millis() = %v, want 0.25", got)
	}
	if got := FromSeconds(2.5); got != 2500*Millisecond {
		t.Errorf("FromSeconds(2.5) = %v", got)
	}
	if got := FromDuration(3 * time.Millisecond); got != 3*Millisecond {
		t.Errorf("FromDuration = %v", got)
	}
	if got := (3 * Millisecond).Duration(); got != 3*time.Millisecond {
		t.Errorf("Duration = %v", got)
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New(1)
	var got []int
	s.At(30*Millisecond, func() { got = append(got, 3) })
	s.At(10*Millisecond, func() { got = append(got, 1) })
	s.At(20*Millisecond, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if s.Now() != 30*Millisecond {
		t.Errorf("clock = %v", s.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break violated at %d: %v", i, got)
		}
	}
}

func TestSchedulingInsideEvents(t *testing.T) {
	s := New(1)
	depth := 0
	var step func()
	step = func() {
		depth++
		if depth < 100 {
			s.After(Millisecond, step)
		}
	}
	s.After(0, step)
	s.Run()
	if depth != 100 {
		t.Errorf("depth = %d", depth)
	}
	if s.Now() != 99*Millisecond {
		t.Errorf("clock = %v", s.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(10*Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.At(5*Millisecond, func() {})
	})
	s.Run()
}

func TestRunUntilStopsAndAdvancesClock(t *testing.T) {
	s := New(1)
	ran := 0
	s.At(10*Millisecond, func() { ran++ })
	s.At(30*Millisecond, func() { ran++ })
	n := s.RunUntil(20 * Millisecond)
	if n != 1 || ran != 1 {
		t.Errorf("ran %d events, counted %d", n, ran)
	}
	if s.Now() != 20*Millisecond {
		t.Errorf("clock = %v, want 20ms", s.Now())
	}
	s.RunUntil(40 * Millisecond)
	if ran != 2 {
		t.Errorf("second event not run")
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	timer := s.At(10*Millisecond, func() { fired = true })
	if !timer.Stop() {
		t.Error("Stop on pending timer should report true")
	}
	if timer.Stop() {
		t.Error("second Stop should report false")
	}
	s.Run()
	if fired {
		t.Error("canceled timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := New(1)
	timer := s.At(Millisecond, func() {})
	s.Run()
	if timer.Stop() {
		t.Error("Stop after firing should report false")
	}
}

func TestHalt(t *testing.T) {
	s := New(1)
	ran := 0
	s.At(Millisecond, func() { ran++; s.Halt() })
	s.At(2*Millisecond, func() { ran++ })
	s.Run()
	if ran != 1 {
		t.Errorf("ran = %d after Halt", ran)
	}
	// Run can resume afterwards.
	s.Run()
	if ran != 2 {
		t.Errorf("ran = %d after resume", ran)
	}
}

func TestEvery(t *testing.T) {
	s := New(1)
	count := 0
	s.Every(10*Millisecond, func() bool {
		count++
		return count < 5
	})
	s.Run()
	if count != 5 {
		t.Errorf("count = %d", count)
	}
	if s.Now() != 50*Millisecond {
		t.Errorf("clock = %v", s.Now())
	}
}

func TestEveryZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero period")
		}
	}()
	New(1).Every(0, func() bool { return false })
}

func TestEventLimit(t *testing.T) {
	s := New(1)
	s.SetEventLimit(10)
	var loop func()
	loop = func() { s.After(Millisecond, loop) }
	s.After(0, loop)
	defer func() {
		if recover() == nil {
			t.Error("expected event-limit panic")
		}
	}()
	s.Run()
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		s := New(42)
		var times []Time
		var jitter func()
		jitter = func() {
			times = append(times, s.Now())
			if len(times) < 50 {
				d := Time(s.Rand().Int63n(int64(10 * Millisecond)))
				s.After(d, jitter)
			}
		}
		s.After(0, jitter)
		s.Run()
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestHeapOrderingProperty verifies the event queue is a total order over
// random schedules: execution times must be non-decreasing.
func TestHeapOrderingProperty(t *testing.T) {
	f := func(seed int64, delaysRaw []uint32) bool {
		if len(delaysRaw) == 0 {
			return true
		}
		s := New(seed)
		rng := rand.New(rand.NewSource(seed))
		var last Time = -1
		ok := true
		check := func() {
			if s.Now() < last {
				ok = false
			}
			last = s.Now()
		}
		for _, d := range delaysRaw {
			s.At(Time(d%1_000_000)*Microsecond, check)
		}
		// A few nested schedulings too.
		s.At(Time(rng.Int63n(int64(Second))), func() {
			check()
			s.After(Time(rng.Int63n(int64(Millisecond))), check)
		})
		s.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPendingAndExecuted(t *testing.T) {
	s := New(1)
	s.At(Millisecond, func() {})
	s.At(2*Millisecond, func() {})
	if s.Pending() != 2 {
		t.Errorf("Pending = %d", s.Pending())
	}
	s.Run()
	if s.Executed() != 2 {
		t.Errorf("Executed = %d", s.Executed())
	}
	if s.Pending() != 0 {
		t.Errorf("Pending after run = %d", s.Pending())
	}
}

// TestTimerStopEagerRemoval is the tombstone-leak regression test: a
// long-lived simulation that schedules and cancels many timers (e.g.
// retransmission timers) must not grow its event queue. Before eager
// removal, canceled events lingered until their deadline and Pending()
// counted them.
func TestTimerStopEagerRemoval(t *testing.T) {
	s := New(1)
	const n = 100_000
	for i := 0; i < n; i++ {
		timer := s.At(Time(i+1)*Second, func() { t.Error("canceled event fired") })
		if !timer.Stop() {
			t.Fatalf("Stop %d reported false", i)
		}
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after canceling all %d timers, want 0", got, n)
	}
	if s.Run() != 0 {
		t.Error("Run executed canceled events")
	}
}

// TestTimerStopInterleaved cancels a random subset and checks the
// survivors run in order with the canceled ones truly gone.
func TestTimerStopInterleaved(t *testing.T) {
	s := New(7)
	rng := rand.New(rand.NewSource(99))
	var want []Time
	var got []Time
	timers := make([]Timer, 0, 1000)
	ats := make([]Time, 0, 1000)
	for i := 0; i < 1000; i++ {
		at := Time(rng.Int63n(int64(Second)))
		timers = append(timers, s.At(at, func() { got = append(got, s.Now()) }))
		ats = append(ats, at)
	}
	for i := range timers {
		if rng.Intn(2) == 0 {
			if !timers[i].Stop() {
				t.Fatalf("Stop %d reported false", i)
			}
			ats[i] = -1
		}
	}
	for _, at := range ats {
		if at >= 0 {
			want = append(want, at)
		}
	}
	if s.Pending() != len(want) {
		t.Fatalf("Pending() = %d, want %d", s.Pending(), len(want))
	}
	s.Run()
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	last := Time(-1)
	for _, at := range got {
		if at < last {
			t.Fatalf("out of order execution at %v after %v", at, last)
		}
		last = at
	}
}

// TestTimerSlotReuseDoesNotCrossCancel checks that a Timer kept after its
// event fired cannot cancel an unrelated event that recycled the slot.
func TestTimerSlotReuseDoesNotCrossCancel(t *testing.T) {
	s := New(1)
	old := s.At(Millisecond, func() {})
	s.Run() // fires; slot freed
	fired := false
	s.At(2*Millisecond, func() { fired = true })
	if old.Stop() {
		t.Error("stale Timer canceled a recycled slot's event")
	}
	s.Run()
	if !fired {
		t.Error("second event did not fire")
	}
}

// TestZeroTimerStop: the zero Timer is inert.
func TestZeroTimerStop(t *testing.T) {
	var timer Timer
	if timer.Stop() {
		t.Error("zero Timer Stop reported true")
	}
}

// TestScheduleSteadyStateAllocs verifies the event core recycles its heap
// and slot storage: scheduling and draining events in steady state must
// not allocate (the static callback carries pointer-shaped args).
func TestScheduleSteadyStateAllocs(t *testing.T) {
	s := New(1)
	ping := func(a, b any) {}
	// Warm up the heap, slot table and free list.
	for i := 0; i < 1024; i++ {
		s.AfterArgs(Time(i)*Microsecond, ping, s, nil)
	}
	s.Run()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			s.AfterArgs(Time(i)*Microsecond, ping, s, nil)
		}
		for i := 0; i < 32; i++ {
			s.AfterArgs(Time(i)*Microsecond, ping, s, nil).Stop()
		}
		s.Run()
	})
	if allocs > 0 {
		t.Errorf("steady-state schedule/cancel/run allocated %.1f times per run, want 0", allocs)
	}
}
