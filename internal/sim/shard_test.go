package sim

import (
	"fmt"
	"testing"
)

// TestCoordinatorPingPong bounces a message between two shards with 5ms
// lookahead each way and checks both orderings and final clocks.
func TestCoordinatorPingPong(t *testing.T) {
	c := NewCoordinator(1, 2)
	c.SetLookahead(0, 1, 5*Millisecond)
	c.SetLookahead(1, 0, 5*Millisecond)
	var log []string
	const hops = 10
	var bounce ArgsFunc
	bounce = func(a, b any) {
		sh := a.(*Shard)
		n := b.(*int)
		log = append(log, fmt.Sprintf("%d@%v", sh.ID(), sh.Now()))
		if *n++; *n >= hops {
			return
		}
		peer := 1 - sh.ID()
		sh.Post(peer, sh.Now()+5*Millisecond, bounce, c.Shard(peer), n)
	}
	n := 0
	c.Shard(0).AtArgs(0, bounce, c.Shard(0), &n)
	c.Run(100 * Millisecond)
	if n != hops {
		t.Fatalf("executed %d hops, want %d", n, hops)
	}
	for i, entry := range log {
		want := fmt.Sprintf("%d@%v", i%2, Time(i*5)*Millisecond)
		if entry != want {
			t.Fatalf("hop %d = %q, want %q", i, entry, want)
		}
	}
	for i := 0; i < 2; i++ {
		if now := c.Shard(i).Now(); now != 100*Millisecond {
			t.Fatalf("shard %d clock %v, want 100ms", i, now)
		}
	}
}

// TestCoordinatorIdleShardWakeup pins the transitive lower-bound rule: a
// chain 0 -> 1 -> 2 where shard 1 starts idle must not let shard 2 run
// into the future that shard 1 will soon occupy on shard 0's behalf.
func TestCoordinatorIdleShardWakeup(t *testing.T) {
	c := NewCoordinator(1, 3)
	c.SetLookahead(0, 1, 1*Millisecond)
	c.SetLookahead(1, 2, 1*Millisecond)
	var arrived []Time
	deliver2 := ArgsFunc(func(a, b any) {
		arrived = append(arrived, c.Shard(2).Now())
	})
	relay1 := ArgsFunc(func(a, b any) {
		c.Shard(1).Post(2, c.Shard(1).Now()+1*Millisecond, deliver2, nil, nil)
	})
	// Shard 2 has a dense local schedule; shard 1 is empty until shard 0
	// relays through it.
	for i := Time(1); i <= 20; i++ {
		c.Shard(2).At(i*Millisecond, func() {})
	}
	c.Shard(0).AtArgs(3*Millisecond, func(a, b any) {
		c.Shard(0).Post(1, 4*Millisecond, relay1, nil, nil)
	}, nil, nil)
	c.Run(20 * Millisecond)
	if len(arrived) != 1 || arrived[0] != 5*Millisecond {
		t.Fatalf("arrivals %v, want [5ms]", arrived)
	}
}

// TestCoordinatorGlobalEvents checks that coordinator events fire with
// all shard clocks quiesced to the event time, in registration order,
// and before same-instant shard events.
func TestCoordinatorGlobalEvents(t *testing.T) {
	c := NewCoordinator(1, 2)
	c.SetLookahead(0, 1, 1*Millisecond)
	c.SetLookahead(1, 0, 1*Millisecond)
	var order []string
	c.Shard(0).At(10*Millisecond, func() { order = append(order, "shard0@10") })
	c.GlobalAt(10*Millisecond, func() {
		if n0, n1 := c.Shard(0).Now(), c.Shard(1).Now(); n0 != 10*Millisecond || n1 != 10*Millisecond {
			t.Errorf("global fired with clocks %v/%v, want 10ms/10ms", n0, n1)
		}
		order = append(order, "globalA")
	})
	c.GlobalAt(10*Millisecond, func() { order = append(order, "globalB") })
	c.GlobalAt(5*Millisecond, func() { order = append(order, "globalEarly") })
	c.Run(20 * Millisecond)
	want := []string{"globalEarly", "globalA", "globalB", "shard0@10"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// TestCoordinatorLookaheadValidation pins the safety contracts: no
// non-positive lookahead, no post below the channel's lookahead.
func TestCoordinatorLookaheadValidation(t *testing.T) {
	c := NewCoordinator(1, 2)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero lookahead", func() { c.SetLookahead(0, 1, 0) })
	mustPanic("negative lookahead", func() { c.SetLookahead(0, 1, -Millisecond) })
	mustPanic("self lookahead", func() { c.SetLookahead(1, 1, Millisecond) })

	c.SetLookahead(0, 1, 5*Millisecond)
	nop := ArgsFunc(func(a, b any) {})
	c.Shard(0).AtArgs(0, func(a, b any) {
		mustPanic("post below lookahead", func() {
			c.Shard(0).Post(1, c.Shard(0).Now()+Millisecond, nop, nil, nil)
		})
	}, nil, nil)
	c.Run(Millisecond)
}

// TestCoordinatorDeterminism runs the same two-shard workload twice and
// compares execution traces exactly.
func TestCoordinatorDeterminism(t *testing.T) {
	run := func() []string {
		c := NewCoordinator(7, 2)
		c.SetLookahead(0, 1, 2*Millisecond)
		c.SetLookahead(1, 0, 3*Millisecond)
		// Traces are per shard: windows run concurrently, and a shared
		// slice would both race and record scheduler-dependent order.
		traces := [2][]string{}
		var chat ArgsFunc
		chat = func(a, b any) {
			sh := a.(*Shard)
			depth := b.(*int)
			id := sh.ID()
			traces[id] = append(traces[id], fmt.Sprintf("%d@%v#%d", id, sh.Now(), *depth))
			if *depth <= 0 {
				return
			}
			d := *depth - 1
			peer := 1 - id
			la := Time(2+id) * Millisecond // channel (id -> peer) lookahead
			sh.Post(peer, sh.Now()+la, chat, sh.c.Shard(peer), &d)
			sh.After(Millisecond, func() { traces[id] = append(traces[id], fmt.Sprintf("%d-local", id)) })
		}
		for i := 0; i < 3; i++ {
			d := 4
			c.Shard(i%2).AtArgs(Time(i)*Millisecond, chat, c.Shard(i%2), &d)
		}
		c.Run(60 * Millisecond)
		return append(append([]string{}, traces[0]...), traces[1]...)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %q vs %q", i, a[i], b[i])
		}
	}
}
