// Sharded execution: a Coordinator advances several independent
// Simulator instances ("shards") in bounded time windows, classic
// conservative (null-message) parallel discrete-event simulation.
//
// Each cross-shard channel (src, dst) carries a positive lookahead: the
// minimum latency any message posted by src can impose on dst. Before
// each window the coordinator collects every shard's earliest pending
// event time (its null-message lower bound), closes the bounds under the
// channel graph (an idle shard may still be woken by a neighbor, so the
// bound must account for transitive wakeups), and derives a per-shard
// horizon: the earliest instant at which a cross-shard message could
// still arrive. Shards then execute events strictly before their horizon
// in parallel, one goroutine per shard, and hand cross-shard events to
// per-(src,dst) mailbox lanes. At the barrier the coordinator drains the
// lanes into the destination heaps in (timestamp, source shard, posting
// order) order — the same tie-break discipline as the event heap's
// (time, seq) rule — so sequence numbers, and therefore execution order,
// are a pure function of the configuration and seed. No shard ever
// receives an event in its past, and progress is guaranteed because
// every lookahead is positive.
package sim

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"abc/internal/obs"
)

// timeInf is a sentinel "no pending event" timestamp.
const timeInf = Time(math.MaxInt64)

// Shard is one partition of a sharded simulation: a full Simulator (its
// own 4-ary heap, slot free-list, clock and RNG) advanced by its
// Coordinator in bounded windows.
type Shard struct {
	*Simulator
	id int
	c  *Coordinator
}

// ID returns the shard's index within its coordinator.
func (sh *Shard) ID() int { return sh.id }

// Post hands an event to shard dst, to run at absolute time at. It may
// only be called while the posting shard executes a window (or during
// single-threaded setup before Run), and at must respect the registered
// lookahead for the (sh, dst) channel. fn/a/b follow AtArgs conventions.
func (sh *Shard) Post(dst int, at Time, fn ArgsFunc, a, b any) {
	sh.c.post(sh.id, dst, at, fn, a, b)
}

// mailItem is one cross-shard message parked in a lane until the next
// barrier.
type mailItem struct {
	at   Time
	fn   ArgsFunc
	a, b any
}

// globalEvent is a coordinator-level event (topology mutation, attack
// toggle, …) that must observe and mutate state across shards. It fires
// at a barrier where every shard has quiesced up to its timestamp.
type globalEvent struct {
	at Time
	fn func()
}

// Coordinator owns a set of shards and advances them in bounded windows.
type Coordinator struct {
	shards []*Shard
	n      int
	// la[src*n+dst] is the minimum lookahead of the (src, dst) channel;
	// 0 means no channel exists (or none registered yet).
	la []Time
	// lanes[src*n+dst] buffers cross-shard messages during a window.
	// Each lane has a single producer (the src shard's goroutine), so
	// appends need no locks; the coordinator drains them at barriers.
	lanes   [][]mailItem
	globals []globalEvent
	gNext   int
	started bool

	work []chan Time
	wg   sync.WaitGroup

	// rec, when set, receives one EvHorizon event per shard per window
	// (the lookahead observability feed); rounds counts synchronization
	// windows executed, for the null-message-overhead metrics.
	rec    *obs.Recorder
	rounds uint64

	// per-round scratch, reused to keep the steady state allocation-free
	nb      []Time
	out     []Time
	horizon []Time
	inbox   []mailItem
}

// NewCoordinator creates n shards. Every shard shares the same base seed
// so seed-derived sub-streams (e.g. per-edge impairment RNGs keyed on
// Seed()^hash(name)) are identical regardless of which shard a component
// lands on.
func NewCoordinator(seed int64, n int) *Coordinator {
	if n < 1 {
		panic("sim: coordinator needs at least one shard")
	}
	c := &Coordinator{
		n:       n,
		la:      make([]Time, n*n),
		lanes:   make([][]mailItem, n*n),
		nb:      make([]Time, n),
		out:     make([]Time, n),
		horizon: make([]Time, n),
	}
	for i := 0; i < n; i++ {
		c.shards = append(c.shards, &Shard{Simulator: New(seed), id: i, c: c})
	}
	return c
}

// Shards returns the number of shards.
func (c *Coordinator) Shards() int { return c.n }

// SetTrace attaches a flight recorder: each synchronization window emits
// one EvHorizon event per shard (T = the shard's horizon, Src = shard,
// A = the shard's null-message lower bound, B = the window index).
// Tracing is passive — it never changes window boundaries or event
// order. Nil detaches.
func (c *Coordinator) SetTrace(rec *obs.Recorder) { c.rec = rec }

// Rounds reports how many synchronization windows Run has executed —
// the conservative algorithm's null-message overhead (each round is one
// lower-bound fixpoint plus a barrier).
func (c *Coordinator) Rounds() uint64 { return c.rounds }

// HorizonLag reports, for shard i, how far its most recent horizon
// trailed the round's furthest horizon — 0 when the shard runs at the
// front, large when tight lookahead holds it back. Valid between
// windows (coordinator goroutine / GlobalAt callbacks).
func (c *Coordinator) HorizonLag(i int) Time {
	max := c.horizon[0]
	for _, h := range c.horizon[1:] {
		if h > max {
			max = h
		}
	}
	return max - c.horizon[i]
}

// Shard returns shard i.
func (c *Coordinator) Shard(i int) *Shard { return c.shards[i] }

// SetLookahead registers (or tightens) the lookahead of the (src, dst)
// channel. A channel's lookahead must be the minimum latency of any
// message ever posted on it; zero or negative lookahead would let a
// message land in the destination's past, so it is rejected.
func (c *Coordinator) SetLookahead(src, dst int, d Time) {
	if d <= 0 {
		panic(fmt.Sprintf("sim: lookahead on channel %d->%d must be positive, got %v", src, dst, d))
	}
	if src == dst {
		panic("sim: lookahead is for cross-shard channels only")
	}
	if cur := c.la[src*c.n+dst]; cur == 0 || d < cur {
		c.la[src*c.n+dst] = d
	}
}

// Lookahead returns the registered lookahead for (src, dst); 0 = none.
func (c *Coordinator) Lookahead(src, dst int) Time { return c.la[src*c.n+dst] }

// GlobalAt schedules fn at absolute time t on the coordinator timeline.
// It fires at a barrier where every shard's clock has quiesced to t, so
// fn may touch any shard's components. Events at equal times run in
// registration order, before any same-instant shard event — mirroring
// the sequential harness, where timeline events are scheduled at compile
// time and hold lower sequence numbers than runtime packet events.
// GlobalAt must be called before Run.
func (c *Coordinator) GlobalAt(t Time, fn func()) {
	if c.started {
		panic("sim: GlobalAt after Run started")
	}
	if t < 0 {
		panic("sim: GlobalAt in the past")
	}
	c.globals = append(c.globals, globalEvent{at: t, fn: fn})
}

// post appends a message to the (src, dst) lane. Before Run it schedules
// directly (setup is single-threaded).
func (c *Coordinator) post(src, dst int, at Time, fn ArgsFunc, a, b any) {
	if !c.started {
		c.shards[dst].Simulator.schedule(at, nil, fn, a, b)
		return
	}
	if src == dst {
		panic("sim: cross-shard post to own shard")
	}
	if min := c.shards[src].Simulator.now + c.la[src*c.n+dst]; at < min {
		panic(fmt.Sprintf("sim: post on channel %d->%d at %v violates lookahead (min %v)", src, dst, at, min))
	}
	li := src*c.n + dst
	c.lanes[li] = append(c.lanes[li], mailItem{at: at, fn: fn, a: a, b: b})
}

// lowerBounds fills nb with each shard's earliest pending event time and
// closes it under the channel graph into out: out[j] is a lower bound on
// the timestamp of ANY event shard j may ever execute from now on, even
// if its heap is empty and it is only woken transitively by neighbors.
// This is the Chandy-Misra null-message fixpoint, computed by relaxation
// (positive lookahead guarantees convergence in <= n passes).
func (c *Coordinator) lowerBounds() {
	for i, sh := range c.shards {
		t := timeInf
		if len(sh.Simulator.heap) > 0 {
			t = sh.Simulator.heap[0].at
		}
		c.nb[i] = t
		c.out[i] = t
	}
	for changed := true; changed; {
		changed = false
		for src := 0; src < c.n; src++ {
			if c.out[src] == timeInf {
				continue
			}
			for dst := 0; dst < c.n; dst++ {
				d := c.la[src*c.n+dst]
				if d == 0 {
					continue
				}
				if v := c.out[src] + d; v < c.out[dst] {
					c.out[dst] = v
					changed = true
				}
			}
		}
	}
}

// drain moves every lane targeting dst into its heap, in (timestamp,
// source shard, posting order) order, so sequence-number assignment —
// and therefore same-instant tie-breaking — is deterministic.
func (c *Coordinator) drain(dst int) {
	buf := c.inbox[:0]
	for src := 0; src < c.n; src++ {
		li := src*c.n + dst
		items := c.lanes[li]
		for _, m := range items {
			// Stable insert by timestamp: iteration order (src asc, then
			// posting order) supplies the tie-break for equal times.
			k := len(buf)
			for k > 0 && buf[k-1].at > m.at {
				k--
			}
			buf = append(buf, mailItem{})
			copy(buf[k+1:], buf[k:])
			buf[k] = m
		}
		for i := range items {
			items[i] = mailItem{} // drop arg references
		}
		c.lanes[li] = items[:0]
	}
	sh := c.shards[dst].Simulator
	for _, m := range buf {
		sh.schedule(m.at, nil, m.fn, m.a, m.b)
	}
	for i := range buf {
		buf[i] = mailItem{}
	}
	c.inbox = buf[:0]
}

// worker is the persistent per-shard goroutine: it runs one window per
// horizon received and signals the barrier.
func (c *Coordinator) worker(i int, work <-chan Time) {
	sh := c.shards[i].Simulator
	for limit := range work {
		sh.RunBefore(limit)
		c.wg.Done()
	}
}

// Run advances all shards until no event at or before end remains,
// then leaves every shard clock at end (RunUntil semantics). Reports
// the number of shard events executed.
func (c *Coordinator) Run(end Time) uint64 {
	c.started = true
	sort.SliceStable(c.globals, func(i, j int) bool { return c.globals[i].at < c.globals[j].at })
	var start uint64
	for _, sh := range c.shards {
		start += sh.Executed()
	}
	c.work = make([]chan Time, c.n)
	for i := range c.work {
		c.work[i] = make(chan Time, 1)
		go c.worker(i, c.work[i])
	}
	for {
		c.lowerBounds()
		allDone := true
		for _, t := range c.nb {
			if t <= end {
				allDone = false
				break
			}
		}
		g := timeInf
		if c.gNext < len(c.globals) {
			g = c.globals[c.gNext].at
		}
		if g <= end {
			allDone = false
			fire := true
			for _, t := range c.nb {
				if t < g {
					fire = false
					break
				}
			}
			if fire {
				// Every shard has quiesced to g: advance clocks and run
				// all coordinator events at this instant in order.
				for _, sh := range c.shards {
					if sh.Simulator.now < g {
						sh.Simulator.now = g
					}
				}
				for c.gNext < len(c.globals) && c.globals[c.gNext].at == g {
					c.globals[c.gNext].fn()
					c.gNext++
				}
				continue
			}
		}
		if allDone {
			break
		}
		// Horizon: the earliest instant a cross-shard message could still
		// reach shard i, capped by the next coordinator event and by
		// end+1 (windows are half-open, so end+1 admits events at end).
		for i := range c.shards {
			h := end + 1
			if g < h {
				h = g
			}
			for j := 0; j < c.n; j++ {
				d := c.la[j*c.n+i]
				if d == 0 || c.out[j] == timeInf {
					continue
				}
				if v := c.out[j] + d; v < h {
					h = v
				}
			}
			c.horizon[i] = h
		}
		if c.rec.Enabled(obs.CatShard) {
			for i := range c.shards {
				c.rec.Emit(int64(c.horizon[i]), obs.EvHorizon, int32(i), -1, int64(c.nb[i]), int64(c.rounds))
			}
		}
		c.rounds++
		active := 0
		for i := range c.shards {
			if c.nb[i] < c.horizon[i] {
				active++
			}
		}
		c.wg.Add(active)
		for i := range c.shards {
			if c.nb[i] < c.horizon[i] {
				c.work[i] <- c.horizon[i]
			}
		}
		c.wg.Wait()
		for dst := 0; dst < c.n; dst++ {
			c.drain(dst)
		}
	}
	for i := range c.work {
		close(c.work[i])
	}
	c.work = nil
	c.started = false
	var total uint64
	for _, sh := range c.shards {
		if sh.Simulator.now < end {
			sh.Simulator.now = end
		}
		total += sh.Executed()
	}
	return total - start
}
