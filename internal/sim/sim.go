// Package sim provides a deterministic discrete-event simulator used as the
// substrate for all network experiments in this repository.
//
// Time is virtual, measured in integer nanoseconds from the start of the
// simulation. Events are callbacks scheduled at absolute virtual times and
// executed in (time, insertion-order) order, which makes every run fully
// deterministic: two simulations configured identically (including RNG
// seeds) produce byte-identical results.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp in nanoseconds since simulation start.
type Time int64

// Common time unit conversions.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds returns t expressed in (floating point) seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns t expressed in (floating point) milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Duration converts t to a time.Duration. Both are int64 nanoseconds.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// FromDuration converts a time.Duration into a sim.Time delta.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// FromSeconds converts seconds into a sim.Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// String formats the time with millisecond precision for logs.
func (t Time) String() string { return fmt.Sprintf("%.3fms", t.Millis()) }

// event is a scheduled callback. seq breaks ties between events scheduled
// for the same instant: earlier-scheduled events run first.
type event struct {
	at  Time
	seq uint64
	fn  func()
	// canceled events stay in the heap but are skipped when popped.
	canceled bool
	index    int
}

// Timer is a handle to a scheduled event that can be canceled.
type Timer struct{ ev *event }

// Stop cancels the timer. It is safe to call multiple times and after the
// event has fired (in which case it has no effect). Reports whether the
// event had not yet fired.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.canceled || t.ev.index < 0 {
		return false
	}
	t.ev.canceled = true
	return true
}

// eventHeap implements container/heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Simulator owns the virtual clock and the event queue.
type Simulator struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *rand.Rand
	// executed counts events run, useful for runaway detection in tests.
	executed uint64
	// limit aborts Run after this many events (0 = unlimited).
	limit  uint64
	halted bool
}

// New returns a simulator with its clock at zero and the given RNG seed.
// All randomness used by simulated components must come from Rand() so that
// runs are reproducible.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation's deterministic RNG.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Executed returns the number of events executed so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// SetEventLimit aborts Run after n events; 0 disables the limit.
func (s *Simulator) SetEventLimit(n uint64) { s.limit = n }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a logic error in a component.
func (s *Simulator) At(t Time, fn func()) *Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d after the current time.
func (s *Simulator) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Halt stops the run loop after the current event completes.
func (s *Simulator) Halt() { s.halted = true }

// Pending reports the number of scheduled (possibly canceled) events.
func (s *Simulator) Pending() int { return len(s.events) }

// RunUntil executes events in order until the queue is empty or the next
// event is strictly after end. The clock is left at min(end, last event
// time). Reports the number of events executed by this call.
func (s *Simulator) RunUntil(end Time) uint64 {
	start := s.executed
	s.halted = false
	for len(s.events) > 0 && !s.halted {
		next := s.events[0]
		if next.at > end {
			break
		}
		heap.Pop(&s.events)
		if next.canceled {
			continue
		}
		s.now = next.at
		s.executed++
		if s.limit != 0 && s.executed > s.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at %v", s.limit, s.now))
		}
		next.fn()
	}
	if s.now < end {
		s.now = end
	}
	return s.executed - start
}

// Run executes all events until the queue drains.
func (s *Simulator) Run() uint64 {
	start := s.executed
	s.halted = false
	for len(s.events) > 0 && !s.halted {
		next := heap.Pop(&s.events).(*event)
		if next.canceled {
			continue
		}
		s.now = next.at
		s.executed++
		if s.limit != 0 && s.executed > s.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at %v", s.limit, s.now))
		}
		next.fn()
	}
	return s.executed - start
}

// Every schedules fn to run every period until it returns false or the
// simulation ends. The first call happens one period from now.
func (s *Simulator) Every(period Time, fn func() bool) {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	var tick func()
	tick = func() {
		if fn() {
			s.After(period, tick)
		}
	}
	s.After(period, tick)
}
