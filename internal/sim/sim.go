// Package sim provides a deterministic discrete-event simulator used as the
// substrate for all network experiments in this repository.
//
// Time is virtual, measured in integer nanoseconds from the start of the
// simulation. Events are callbacks scheduled at absolute virtual times and
// executed in (time, insertion-order) order, which makes every run fully
// deterministic: two simulations configured identically (including RNG
// seeds) produce byte-identical results.
//
// The event queue is a hand-rolled 4-ary min-heap over inline event
// structs. Scheduling state (the heap slice, the slot table and its free
// list) is recycled across events, so At/After/Stop and the run loop are
// allocation-free in steady state; the only per-event allocation is
// whatever closure the caller passes in. Callers on hot paths can avoid
// even that with AtArgs/AfterArgs, which carry a static function plus two
// pointer-shaped arguments inline in the event. Timer.Stop removes the
// event from the heap eagerly, so canceled events cost nothing and
// Pending() reflects live events only.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp in nanoseconds since simulation start.
type Time int64

// Common time unit conversions.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds returns t expressed in (floating point) seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns t expressed in (floating point) milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Duration converts t to a time.Duration. Both are int64 nanoseconds.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// FromDuration converts a time.Duration into a sim.Time delta.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// FromSeconds converts seconds into a sim.Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// String formats the time with millisecond precision for logs.
func (t Time) String() string { return fmt.Sprintf("%.3fms", t.Millis()) }

// ArgsFunc is a callback that receives the two scheduling arguments given
// to AtArgs/AfterArgs. Both arguments should be pointer-shaped so that
// boxing them into the event is allocation-free.
type ArgsFunc func(a, b any)

// event is a scheduled callback, stored inline in the heap slice. seq
// breaks ties between events scheduled for the same instant:
// earlier-scheduled events run first. Exactly one of fn and fn2 is set.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	fn2  ArgsFunc
	a, b any
	slot int32
}

// slotInfo tracks one Timer handle slot: the event's current heap index
// and a generation counter that invalidates stale Timers when the slot is
// recycled.
type slotInfo struct {
	idx int32
	gen uint32
}

// Timer is a handle to a scheduled event that can be canceled. The zero
// Timer is inert: Stop on it reports false.
type Timer struct {
	s    *Simulator
	slot int32
	gen  uint32
}

// Stop cancels the timer, eagerly removing the event from the queue. It
// is safe to call multiple times and after the event has fired (in which
// case it has no effect). Reports whether the event had not yet fired.
func (t Timer) Stop() bool {
	if t.s == nil {
		return false
	}
	sl := &t.s.slots[t.slot]
	if sl.gen != t.gen {
		return false // already fired, stopped, or slot recycled
	}
	t.s.heapRemove(int(sl.idx))
	t.s.freeSlot(t.slot)
	return true
}

// Simulator owns the virtual clock and the event queue.
type Simulator struct {
	now  Time
	seq  uint64
	heap []event
	// slots maps Timer handles to heap positions; free lists recyclable
	// slot indices. Both are reused for the life of the simulator.
	slots []slotInfo
	free  []int32
	rng  *rand.Rand
	seed int64
	// executed counts events run, useful for runaway detection in tests.
	executed uint64
	// limit aborts Run after this many events (0 = unlimited).
	limit  uint64
	halted bool
}

// New returns a simulator with its clock at zero and the given RNG seed.
// All randomness used by simulated components must come from Rand() so that
// runs are reproducible.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns the seed the simulator was created with, so components
// can derive independent sub-streams (e.g. per-edge impairment RNGs)
// that stay stable under unrelated topology changes.
func (s *Simulator) Seed() int64 { return s.seed }

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation's deterministic RNG.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Executed returns the number of events executed so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// SetEventLimit aborts Run after n events; 0 disables the limit.
func (s *Simulator) SetEventLimit(n uint64) { s.limit = n }

// less orders events by (at, seq).
func (s *Simulator) less(i, j int) bool {
	if s.heap[i].at != s.heap[j].at {
		return s.heap[i].at < s.heap[j].at
	}
	return s.heap[i].seq < s.heap[j].seq
}

// place writes ev into heap position i and updates its slot's index.
func (s *Simulator) place(i int, ev event) {
	s.heap[i] = ev
	s.slots[ev.slot].idx = int32(i)
}

// siftUp restores the heap invariant upward from position i.
func (s *Simulator) siftUp(i int) {
	ev := s.heap[i]
	for i > 0 {
		parent := (i - 1) / 4
		p := s.heap[parent]
		if ev.at > p.at || (ev.at == p.at && ev.seq > p.seq) {
			break
		}
		s.place(i, p)
		i = parent
	}
	s.place(i, ev)
}

// siftDown restores the heap invariant downward from position i.
func (s *Simulator) siftDown(i int) {
	n := len(s.heap)
	ev := s.heap[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if s.less(c, best) {
				best = c
			}
		}
		b := s.heap[best]
		if ev.at < b.at || (ev.at == b.at && ev.seq < b.seq) {
			break
		}
		s.place(i, b)
		i = best
	}
	s.place(i, ev)
}

// heapPush inserts ev.
func (s *Simulator) heapPush(ev event) {
	s.heap = append(s.heap, ev)
	s.slots[ev.slot].idx = int32(len(s.heap) - 1)
	s.siftUp(len(s.heap) - 1)
}

// heapRemove deletes the event at heap index i, preserving the invariant.
func (s *Simulator) heapRemove(i int) {
	n := len(s.heap) - 1
	last := s.heap[n]
	s.heap[n] = event{} // drop closure/arg references
	s.heap = s.heap[:n]
	if i == n {
		return
	}
	s.place(i, last)
	s.siftDown(i)
	if int(s.slots[last.slot].idx) == i {
		s.siftUp(i)
	}
}

// allocSlot returns a slot index for a new event, reusing freed slots.
func (s *Simulator) allocSlot() int32 {
	if n := len(s.free); n > 0 {
		sl := s.free[n-1]
		s.free = s.free[:n-1]
		return sl
	}
	// Generations start at 1 so the zero Timer never matches a live slot.
	s.slots = append(s.slots, slotInfo{gen: 1})
	return int32(len(s.slots) - 1)
}

// freeSlot invalidates outstanding Timers for the slot and recycles it.
func (s *Simulator) freeSlot(sl int32) {
	s.slots[sl].gen++
	s.free = append(s.free, sl)
}

// schedule inserts an event at absolute time t.
func (s *Simulator) schedule(t Time, fn func(), fn2 ArgsFunc, a, b any) Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	sl := s.allocSlot()
	s.heapPush(event{at: t, seq: s.seq, fn: fn, fn2: fn2, a: a, b: b, slot: sl})
	s.seq++
	return Timer{s: s, slot: sl, gen: s.slots[sl].gen}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a logic error in a component.
func (s *Simulator) At(t Time, fn func()) Timer {
	return s.schedule(t, fn, nil, nil, nil)
}

// After schedules fn to run d after the current time.
func (s *Simulator) After(d Time, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.schedule(s.now+d, fn, nil, nil, nil)
}

// AtArgs schedules fn(a, b) at absolute time t without allocating a
// closure: fn should be a static function and a, b pointer-shaped values.
func (s *Simulator) AtArgs(t Time, fn ArgsFunc, a, b any) Timer {
	return s.schedule(t, nil, fn, a, b)
}

// AfterArgs schedules fn(a, b) to run d after the current time; see AtArgs.
func (s *Simulator) AfterArgs(d Time, fn ArgsFunc, a, b any) Timer {
	if d < 0 {
		d = 0
	}
	return s.schedule(s.now+d, nil, fn, a, b)
}

// Halt stops the run loop after the current event completes.
func (s *Simulator) Halt() { s.halted = true }

// Pending reports the number of scheduled events. Canceled events are
// removed eagerly and never counted.
func (s *Simulator) Pending() int { return len(s.heap) }

// popHead removes the root event and returns it.
func (s *Simulator) popHead() event {
	ev := s.heap[0]
	s.heapRemove(0)
	s.freeSlot(ev.slot)
	return ev
}

// dispatch runs one event's callback.
func (s *Simulator) dispatch(ev event) {
	s.executed++
	if s.limit != 0 && s.executed > s.limit {
		panic(fmt.Sprintf("sim: event limit %d exceeded at %v", s.limit, s.now))
	}
	if ev.fn2 != nil {
		ev.fn2(ev.a, ev.b)
	} else {
		ev.fn()
	}
}

// RunUntil executes events in order until the queue is empty or the next
// event is strictly after end. The clock is left at min(end, last event
// time). Reports the number of events executed by this call.
func (s *Simulator) RunUntil(end Time) uint64 {
	start := s.executed
	s.halted = false
	for len(s.heap) > 0 && !s.halted {
		if s.heap[0].at > end {
			break
		}
		ev := s.popHead()
		s.now = ev.at
		s.dispatch(ev)
	}
	if s.now < end {
		s.now = end
	}
	return s.executed - start
}

// RunBefore executes pending events with timestamps strictly before
// limit, leaving the clock at the last executed event — the caller owns
// final clock placement. This is the shard window primitive: windows are
// half-open because an event exactly at the horizon may still be
// preceded by a cross-shard arrival at the same instant.
func (s *Simulator) RunBefore(limit Time) uint64 {
	start := s.executed
	s.halted = false
	for len(s.heap) > 0 && !s.halted {
		if s.heap[0].at >= limit {
			break
		}
		ev := s.popHead()
		s.now = ev.at
		s.dispatch(ev)
	}
	return s.executed - start
}

// Run executes all events until the queue drains.
func (s *Simulator) Run() uint64 {
	start := s.executed
	s.halted = false
	for len(s.heap) > 0 && !s.halted {
		ev := s.popHead()
		s.now = ev.at
		s.dispatch(ev)
	}
	return s.executed - start
}

// Every schedules fn to run every period until it returns false or the
// simulation ends. The first call happens one period from now.
func (s *Simulator) Every(period Time, fn func() bool) {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	var tick func()
	tick = func() {
		if fn() {
			s.After(period, tick)
		}
	}
	s.After(period, tick)
}
