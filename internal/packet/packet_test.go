package packet

import (
	"testing"
	"testing/quick"

	"abc/internal/sim"
)

func TestECNCapable(t *testing.T) {
	cases := []struct {
		e    ECN
		want bool
	}{
		{NotECT, false},
		{Accel, true},
		{Brake, true},
		{CE, false},
	}
	for _, c := range cases {
		if got := c.e.ECNCapable(); got != c.want {
			t.Errorf("%v.ECNCapable() = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestECNString(t *testing.T) {
	for e, want := range map[ECN]string{
		NotECT: "NotECT",
		Accel:  "Accel(ECT1)",
		Brake:  "Brake(ECT0)",
		CE:     "CE",
	} {
		if got := e.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", e, got, want)
		}
	}
	if got := ECN(9).String(); got != "ECN(9)" {
		t.Errorf("unknown codepoint String = %q", got)
	}
}

func TestNewDataFields(t *testing.T) {
	p := NewData(3, 17, MTU, 5*sim.Millisecond)
	if p.Flow != 3 || p.Seq != 17 || p.Size != MTU || p.SentAt != 5*sim.Millisecond {
		t.Errorf("NewData fields wrong: %+v", p)
	}
	if p.IsAck {
		t.Error("data packet marked as ACK")
	}
}

// TestAckEchoesMarks verifies the §5.1.2 echo rules: accel → NS-style
// accel echo, brake → brake echo, CE → ECE.
func TestAckEchoesMarks(t *testing.T) {
	mk := func(e ECN) *Packet {
		p := NewData(1, 2, MTU, 0)
		p.ECN = e
		return p
	}
	a := NewAck(mk(Accel), 3, sim.Millisecond)
	if !a.EchoValid || !a.EchoAccel {
		t.Errorf("accel echo wrong: %+v", a)
	}
	b := NewAck(mk(Brake), 3, sim.Millisecond)
	if !b.EchoValid || b.EchoAccel {
		t.Errorf("brake echo wrong: %+v", b)
	}
	c := NewAck(mk(CE), 3, sim.Millisecond)
	if c.EchoValid || !c.EchoCE {
		t.Errorf("CE echo wrong: %+v", c)
	}
	n := NewAck(mk(NotECT), 3, sim.Millisecond)
	if n.EchoValid || n.EchoCE {
		t.Errorf("NotECT echo wrong: %+v", n)
	}
}

func TestAckCarriesTimestampsAndHeaders(t *testing.T) {
	p := NewData(1, 9, MTU, 7*sim.Millisecond)
	p.QueueDelay = 4 * sim.Millisecond
	p.XCP = XCPHeader{CwndBytes: 30000, RTT: 100 * sim.Millisecond, Feedback: 1500, Valid: true}
	p.RCPRate = 5e6
	p.VCPLoad = 2
	p.ABCFlow = true

	a := NewAck(p, 10, 20*sim.Millisecond)
	if !a.IsAck || a.Seq != 9 || a.CumAck != 10 {
		t.Errorf("ack identity wrong: %+v", a)
	}
	if a.AckSentAt != 7*sim.Millisecond {
		t.Errorf("AckSentAt = %v", a.AckSentAt)
	}
	if a.AckQueueDelay != 4*sim.Millisecond {
		t.Errorf("AckQueueDelay = %v", a.AckQueueDelay)
	}
	if !a.XCP.Valid || a.XCP.Feedback != 1500 {
		t.Errorf("XCP header not echoed: %+v", a.XCP)
	}
	if a.RCPRate != 5e6 || a.VCPLoad != 2 || !a.ABCFlow {
		t.Errorf("explicit fields not echoed: %+v", a)
	}
	if a.Size != AckSize {
		t.Errorf("ack size = %d", a.Size)
	}
}

// TestAckEchoProperty: for any ECN codepoint, the echo is lossless — the
// receiver can always distinguish accel, brake and CE.
func TestAckEchoProperty(t *testing.T) {
	f := func(raw uint8) bool {
		e := ECN(raw % 4)
		p := NewData(1, 1, MTU, 0)
		p.ECN = e
		a := NewAck(p, 2, 0)
		switch e {
		case Accel:
			return a.EchoValid && a.EchoAccel && !a.EchoCE
		case Brake:
			return a.EchoValid && !a.EchoAccel && !a.EchoCE
		case CE:
			return !a.EchoValid && a.EchoCE
		default:
			return !a.EchoValid && !a.EchoCE
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSinkCounts(t *testing.T) {
	s := &Sink{}
	s.Recv(NewData(1, 0, 100, 0))
	s.Recv(NewData(1, 1, 200, 0))
	if s.Count != 2 || s.Bytes != 300 {
		t.Errorf("sink = %+v", s)
	}
	if s.Last == nil || s.Last.Seq != 1 {
		t.Error("Last not tracked")
	}
}

func TestNodeFunc(t *testing.T) {
	n := 0
	var f NodeFunc = func(p *Packet) { n += p.Size }
	f.Recv(NewData(1, 0, 50, 0))
	if n != 50 {
		t.Errorf("NodeFunc not invoked: %d", n)
	}
}

func TestRetxAckSuppressesRTTSample(t *testing.T) {
	p := NewData(1, 5, MTU, 3*sim.Millisecond)
	p.Retx = true
	a := NewAck(p, 6, 9*sim.Millisecond)
	if !a.Retx {
		t.Error("ack of retransmission must carry Retx")
	}
}

func TestPoolRecyclesZeroed(t *testing.T) {
	p := NewData(3, 42, MTU, 7)
	p.ECN = Accel
	p.QueueDelay = 5
	p.Release()
	q := Get()
	// q may or may not be the same object (sync.Pool), but it must be
	// zeroed either way.
	if *q != (Packet{}) {
		t.Errorf("Get returned a dirty packet: %+v", q)
	}
	q.Release()
}

func TestNewAckLeavesDataPacketIntact(t *testing.T) {
	p := NewData(1, 9, MTU, 100)
	p.ECN = Brake
	p.QueueDelay = 11
	a := NewAck(p, 10, 200)
	if a == p {
		t.Fatal("ACK aliases the data packet")
	}
	if p.ECN != Brake || p.Seq != 9 || p.QueueDelay != 11 {
		t.Errorf("data packet mutated by NewAck: %+v", p)
	}
	if !a.IsAck || a.Size != AckSize || a.AckSentAt != 100 || a.AckQueueDelay != 11 {
		t.Errorf("ack fields wrong: %+v", a)
	}
	if !a.EchoValid || a.EchoAccel {
		t.Errorf("brake echo wrong: %+v", a)
	}
	p.Release()
	a.Release()
}
