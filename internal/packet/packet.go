// Package packet defines the packet model shared by every simulated
// network element: senders, routers, links and receivers.
//
// The model mirrors what ABC (NSDI 2020) actually puts on the wire. In
// particular the ECN codepoint carries ABC's accelerate/brake signal using
// the paper's §5.1.2 reinterpretation of the two IP ECN bits, and a small
// number of extra fields model the multi-bit headers used by the explicit
// baselines (XCP, RCP) that the paper compares against.
package packet

import (
	"fmt"
	"sync"

	"abc/internal/sim"
)

// MTU is the packet size used throughout the evaluation, matching the
// paper's MTU-sized (1500 byte) packets and Mahimahi's delivery
// opportunities.
const MTU = 1500

// AckSize is the size of a pure acknowledgement.
const AckSize = 64

// ECN is the two-bit IP ECN codepoint. ABC reinterprets the two
// ECN-capable codepoints as accelerate and brake (paper §5.1.2):
//
//	ECT CE   standard meaning      ABC meaning
//	 0  0    Not-ECT               Not-ECT
//	 0  1    ECT(1)                Accelerate
//	 1  0    ECT(0)                Brake
//	 1  1    CE (congestion)       CE (congestion)
//
// Routers may flip Accel→Brake (never the reverse), and legacy ECN routers
// may flip either to CE; both transitions are representable here.
type ECN uint8

const (
	// NotECT marks a non-ECN-capable transport.
	NotECT ECN = iota
	// Accel is ECT(1): the ABC accelerate signal.
	Accel
	// Brake is ECT(0): the ABC brake signal.
	Brake
	// CE is the standard congestion-experienced mark set by legacy AQMs.
	CE
)

// String returns the codepoint name.
func (e ECN) String() string {
	switch e {
	case NotECT:
		return "NotECT"
	case Accel:
		return "Accel(ECT1)"
	case Brake:
		return "Brake(ECT0)"
	case CE:
		return "CE"
	}
	return fmt.Sprintf("ECN(%d)", uint8(e))
}

// ECNCapable reports whether a legacy ECN router may mark this packet CE
// instead of dropping it. Both ABC codepoints present as ECN-capable to
// legacy routers — that is the heart of the paper's deployment story.
func (e ECN) ECNCapable() bool { return e == Accel || e == Brake }

// Packet is a simulated packet. A single struct covers both data packets
// and acknowledgements; IsAck distinguishes them.
type Packet struct {
	// Flow identifies the flow this packet belongs to.
	Flow int
	// Seq is the data sequence number (in packets, not bytes). For an
	// ACK, Seq is the sequence of the data packet being acknowledged.
	Seq int64
	// CumAck is, on an ACK, the highest sequence such that every packet
	// below it has been received (cumulative acknowledgement).
	CumAck int64
	// Size is the wire size in bytes.
	Size int
	// IsAck marks pure acknowledgements.
	IsAck bool
	// Retx marks retransmissions (they do not update RTT estimates).
	Retx bool

	// ECN is the IP ECN codepoint, carrying accel/brake for ABC flows.
	// On an ACK of an ABC flow it carries the *echoed* mark (NewAck copies
	// the data packet's accel/brake here), so reverse-path ABC routers and
	// marking qdiscs can demote the echo in flight exactly as forward-path
	// routers demote data marks — the sender then consumes the minimum of
	// marks over the full round trip, not just the forward chain.
	ECN ECN
	// EchoAccel is set on ACKs when the receiver echoes an accelerate
	// (it echoes brake when false and EchoValid is set). This models the
	// TCP NS-bit echo described in §5.1.2. It records what the receiver
	// saw; ECN records what survived the reverse path.
	EchoAccel bool
	// EchoValid reports whether EchoAccel carries a valid accel/brake echo
	// (only ABC receivers set it).
	EchoValid bool
	// EchoCE is the standard ECN-Echo (ECE) flag: set on ACKs when the
	// corresponding data packet arrived marked CE.
	EchoCE bool

	// XCP models the multi-bit congestion header used by XCP-family
	// protocols: the sender writes its cwnd and RTT estimates, routers
	// update Feedback, and the receiver echoes it back.
	XCP XCPHeader
	// RCPRate is the bottleneck-stamped rate (bits/sec) for RCP flows;
	// routers take the minimum along the path. Zero means unset.
	RCPRate float64
	// VCPLoad is VCP's 2-bit load factor code (0 unset, 1 low, 2 high,
	// 3 overload). Routers only ever increase it along the path.
	VCPLoad uint8

	// ABCFlow tags packets of ABC flows so dual-queue routers (§5.2) can
	// classify them, modelling the IPv6 flow-label convention.
	ABCFlow bool

	// SentAt is when the (data) packet left the sender.
	SentAt sim.Time
	// EnqueuedAt is set by the qdisc on enqueue at the current hop.
	EnqueuedAt sim.Time
	// QueueDelay accumulates time spent in queues along the whole path.
	QueueDelay sim.Time
	// AckSentAt is copied from SentAt into the ACK so the sender can
	// compute RTT samples without per-packet maps.
	AckSentAt sim.Time
	// AckQueueDelay echoes the data packet's accumulated queue delay.
	AckQueueDelay sim.Time
	// AppLimited marks packets from application-limited flows (used only
	// for reporting).
	AppLimited bool
}

// XCPHeader is the congestion header carried by XCP/XCPw packets.
type XCPHeader struct {
	// CwndBytes is the sender's current congestion window in bytes.
	CwndBytes float64
	// RTT is the sender's current RTT estimate.
	RTT sim.Time
	// Feedback is the per-packet window adjustment in bytes, initialized
	// by the sender to its demand and decreased by routers.
	Feedback float64
	// Valid reports whether the header is in use.
	Valid bool
}

// pool recycles Packet structs across the whole process. Simulated flows
// churn through one data packet and one ACK per exchange; without
// recycling that is the dominant allocation in every experiment. The pool
// is safe for concurrent use, so parallel experiment cells share it.
var pool = sync.Pool{New: func() any { return new(Packet) }}

// Get returns a zeroed packet from the free list.
//
// Ownership rules: a packet has exactly one owner at a time — whoever
// holds the pointer last is responsible for either forwarding it (links,
// qdiscs, wires) or releasing it (terminal consumers: the receiver for
// data packets, the sender endpoint for ACKs, and whichever element drops
// it). Qdisc.Enqueue returning false leaves ownership with the caller;
// drops inside a qdisc's Dequeue are released by the qdisc itself.
func Get() *Packet { return pool.Get().(*Packet) }

// Release zeroes p and returns it to the free list. The caller must not
// touch p afterwards. Test sinks that retain packets simply skip Release.
func (p *Packet) Release() {
	*p = Packet{}
	pool.Put(p)
}

// NewData returns a data packet of the given flow, sequence and size,
// drawn from the free list.
func NewData(flow int, seq int64, size int, now sim.Time) *Packet {
	p := Get()
	p.Flow, p.Seq, p.Size, p.SentAt = flow, seq, size, now
	return p
}

// NewAck builds the acknowledgement for data packet p, carrying the
// receiver's cumulative ack and echoing ABC/ECN signals. The ACK is drawn
// from the free list; p itself is left untouched (the caller still owns
// and eventually releases it).
func NewAck(p *Packet, cumAck int64, now sim.Time) *Packet {
	a := Get()
	a.Flow = p.Flow
	a.Seq = p.Seq
	a.CumAck = cumAck
	a.Size = AckSize
	a.IsAck = true
	a.Retx = p.Retx
	a.AckSentAt = p.SentAt
	a.AckQueueDelay = p.QueueDelay
	a.ABCFlow = p.ABCFlow
	a.AppLimited = p.AppLimited
	switch p.ECN {
	case Accel:
		a.EchoValid = true
		a.EchoAccel = true
		// The echo also rides the ACK's own codepoint so reverse-path
		// routers can demote it (Accel → Brake, or CE from a legacy AQM).
		a.ECN = Accel
	case Brake:
		a.EchoValid = true
		a.EchoAccel = false
		a.ECN = Brake
	case CE:
		a.EchoCE = true
	}
	if p.XCP.Valid {
		a.XCP = p.XCP
	}
	if p.RCPRate != 0 {
		a.RCPRate = p.RCPRate
	}
	a.VCPLoad = p.VCPLoad
	return a
}

// Node is anything that can receive a packet: links, wires, hosts, routers.
type Node interface {
	// Recv hands the packet to the node at the current simulation time.
	Recv(p *Packet)
}

// NodeFunc adapts a function to the Node interface.
type NodeFunc func(p *Packet)

// Recv implements Node.
func (f NodeFunc) Recv(p *Packet) { f(p) }

// Sink is a Node that counts and then discards packets; useful as a
// default destination and in tests.
type Sink struct {
	Count int
	Bytes int64
	Last  *Packet
}

// Recv implements Node.
func (s *Sink) Recv(p *Packet) {
	s.Count++
	s.Bytes += int64(p.Size)
	s.Last = p
}
