package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"abc/internal/packet"
	"abc/internal/sim"
)

func TestParseBasic(t *testing.T) {
	tr, err := Parse("t", strings.NewReader("0\n5\n5\n10\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Period() != 10*sim.Millisecond {
		t.Errorf("period = %v", tr.Period())
	}
	if tr.Opportunities() != 3 {
		t.Errorf("opportunities = %d", tr.Opportunities())
	}
}

func TestParseRejectsDecreasing(t *testing.T) {
	if _, err := Parse("t", strings.NewReader("5\n3\n")); err == nil {
		t.Error("expected error for decreasing timestamps")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse("t", strings.NewReader("abc\n")); err == nil {
		t.Error("expected error for non-numeric line")
	}
	if _, err := Parse("t", strings.NewReader("")); err == nil {
		t.Error("expected error for empty trace")
	}
}

func TestParseSkipsCommentsAndBlanks(t *testing.T) {
	tr, err := Parse("t", strings.NewReader("# header\n\n1\n2\n\n8\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Opportunities() != 2 { // 1, 2 (8 is the period marker)
		t.Errorf("opportunities = %d", tr.Opportunities())
	}
}

func TestWriteToRoundTrip(t *testing.T) {
	orig, err := New("t", []sim.Time{
		0, 2 * sim.Millisecond, 2 * sim.Millisecond, 7 * sim.Millisecond,
	}, 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse("t", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Period() != orig.Period() {
		t.Errorf("period %v != %v", back.Period(), orig.Period())
	}
	if back.Opportunities() != orig.Opportunities() {
		t.Errorf("ops %d != %d", back.Opportunities(), orig.Opportunities())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("t", nil, sim.Second); err == nil {
		t.Error("empty ops accepted")
	}
	if _, err := New("t", []sim.Time{0}, 0); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := New("t", []sim.Time{sim.Second}, sim.Second); err == nil {
		t.Error("op at period accepted")
	}
	if _, err := New("t", []sim.Time{-1}, sim.Second); err == nil {
		t.Error("negative op accepted")
	}
}

func TestNextOpportunityWrapsPeriods(t *testing.T) {
	tr, _ := New("t", []sim.Time{2 * sim.Millisecond, 8 * sim.Millisecond}, 10*sim.Millisecond)
	cases := []struct{ now, want sim.Time }{
		{0, 2 * sim.Millisecond},
		{2 * sim.Millisecond, 8 * sim.Millisecond}, // strictly after
		{8 * sim.Millisecond, 12 * sim.Millisecond},
		{9 * sim.Millisecond, 12 * sim.Millisecond},
		{12 * sim.Millisecond, 18 * sim.Millisecond},
		{25 * sim.Millisecond, 28 * sim.Millisecond},
	}
	for _, c := range cases {
		if got := tr.NextOpportunity(c.now); got != c.want {
			t.Errorf("NextOpportunity(%v) = %v, want %v", c.now, got, c.want)
		}
	}
}

func TestCountIn(t *testing.T) {
	tr, _ := New("t", []sim.Time{0, 5 * sim.Millisecond}, 10*sim.Millisecond)
	cases := []struct {
		from, to sim.Time
		want     int64
	}{
		{0, 10 * sim.Millisecond, 2},
		{0, 100 * sim.Millisecond, 20},
		{0, 5 * sim.Millisecond, 1},
		{5 * sim.Millisecond, 10 * sim.Millisecond, 1},
		{3 * sim.Millisecond, 3 * sim.Millisecond, 0},
		{10 * sim.Millisecond, 20 * sim.Millisecond, 2},
	}
	for _, c := range cases {
		if got := tr.CountIn(c.from, c.to); got != c.want {
			t.Errorf("CountIn(%v,%v) = %d, want %d", c.from, c.to, got, c.want)
		}
	}
}

// TestCountAdditivityProperty: CountIn is additive over adjacent
// intervals for arbitrary traces — the invariant the delivery loop and
// the utilization accounting both rely on.
func TestCountAdditivityProperty(t *testing.T) {
	f := func(opsRaw []uint16, aRaw, bRaw, cRaw uint32) bool {
		if len(opsRaw) == 0 {
			return true
		}
		period := sim.Second
		ops := make([]sim.Time, 0, len(opsRaw))
		for _, o := range opsRaw {
			ops = append(ops, sim.Time(o)*sim.Microsecond%period)
		}
		tr, err := New("q", ops, period)
		if err != nil {
			return true
		}
		pts := []sim.Time{
			sim.Time(aRaw) * sim.Microsecond,
			sim.Time(bRaw) * sim.Microsecond,
			sim.Time(cRaw) * sim.Microsecond,
		}
		// Sort the three points.
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if pts[j] < pts[i] {
					pts[i], pts[j] = pts[j], pts[i]
				}
			}
		}
		return tr.CountIn(pts[0], pts[2]) == tr.CountIn(pts[0], pts[1])+tr.CountIn(pts[1], pts[2])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConstantRate(t *testing.T) {
	tr := Constant("c", 12e6)
	got := tr.AvgRateBps()
	if math.Abs(got-12e6)/12e6 > 0.01 {
		t.Errorf("avg rate %.0f, want 12e6", got)
	}
	// Capacity over any full second is the same.
	c1 := tr.CapacityBps(2*sim.Second, sim.Second)
	c2 := tr.CapacityBps(5*sim.Second, sim.Second)
	if math.Abs(c1-c2) > 1 {
		t.Errorf("capacity not constant: %v vs %v", c1, c2)
	}
}

func TestSquareWaveRates(t *testing.T) {
	tr := SquareWave("sq", 12e6, 24e6, 500*sim.Millisecond)
	hi := tr.CapacityBps(450*sim.Millisecond, 300*sim.Millisecond)
	lo := tr.CapacityBps(950*sim.Millisecond, 300*sim.Millisecond)
	if math.Abs(hi-24e6)/24e6 > 0.05 {
		t.Errorf("high phase %.1f Mbps", hi/1e6)
	}
	if math.Abs(lo-12e6)/12e6 > 0.05 {
		t.Errorf("low phase %.1f Mbps", lo/1e6)
	}
	if avg := tr.AvgRateBps(); math.Abs(avg-18e6)/18e6 > 0.02 {
		t.Errorf("avg %.1f Mbps, want 18", avg/1e6)
	}
}

func TestStepsPattern(t *testing.T) {
	tr := Steps("st", []float64{5e6, 15e6}, sim.Second)
	a := tr.CapacityBps(900*sim.Millisecond, 800*sim.Millisecond)
	b := tr.CapacityBps(1900*sim.Millisecond, 800*sim.Millisecond)
	if math.Abs(a-5e6)/5e6 > 0.05 || math.Abs(b-15e6)/15e6 > 0.05 {
		t.Errorf("steps: %.1f / %.1f Mbps", a/1e6, b/1e6)
	}
}

func TestFutureCapacityLooksAhead(t *testing.T) {
	tr := SquareWave("sq", 0.1e6, 24e6, 500*sim.Millisecond)
	// Standing just before the high→low transition, the future window
	// must see the low rate while the trailing window sees the high.
	at := 480 * sim.Millisecond
	past := tr.CapacityBps(at, 200*sim.Millisecond)
	future := tr.FutureCapacityBps(at, 200*sim.Millisecond)
	if future >= past {
		t.Errorf("future %.1f Mbps should be below past %.1f Mbps", future/1e6, past/1e6)
	}
}

func TestNamedCellularAllExist(t *testing.T) {
	for _, name := range CellularNames {
		tr, err := NamedCellular(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		avg := tr.AvgRateBps() / 1e6
		if avg < 1 || avg > 40 {
			t.Errorf("%s: avg rate %.1f Mbps out of LTE range", name, avg)
		}
		if tr.Period() != 60*sim.Second {
			t.Errorf("%s: period %v", name, tr.Period())
		}
	}
	if _, err := NamedCellular("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestCellularDeterminism(t *testing.T) {
	a := MustNamedCellular("Verizon1")
	b := MustNamedCellular("Verizon1")
	if a.Opportunities() != b.Opportunities() {
		t.Error("same-name traces differ")
	}
}

// TestCellularVariability checks the paper's premise: the rate varies by
// several x within short horizons.
func TestCellularVariability(t *testing.T) {
	tr := MustNamedCellular("Verizon1")
	minR, maxR := math.Inf(1), 0.0
	for at := sim.Second; at < tr.Period(); at += 500 * sim.Millisecond {
		r := tr.CapacityBps(at, 500*sim.Millisecond)
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	if maxR/math.Max(minR, 1) < 3 {
		t.Errorf("trace not variable enough: min %.1f max %.1f Mbps", minR/1e6, maxR/1e6)
	}
}

func TestCapacityUsesMTUPerOpportunity(t *testing.T) {
	tr, _ := New("t", []sim.Time{0}, sim.Millisecond) // 1 op/ms = 12 Mbps
	got := tr.CapacityBps(sim.Second, sim.Second)
	want := float64(packet.MTU*8) * 1000
	if math.Abs(got-want) > 1 {
		t.Errorf("capacity %.0f, want %.0f", got, want)
	}
}

func TestFromRateFuncZeroRate(t *testing.T) {
	tr := FromRateFunc("z", sim.Second, func(sim.Time) float64 { return 0 })
	if tr.Opportunities() != 1 { // degenerate single op
		t.Errorf("ops = %d", tr.Opportunities())
	}
}
