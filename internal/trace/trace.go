// Package trace models time-varying link capacity as Mahimahi-style packet
// delivery traces, and generates the synthetic cellular traces used in
// place of the paper's recorded Verizon/AT&T/T-Mobile captures.
//
// A trace is a sorted multiset of millisecond timestamps. Each entry is one
// delivery opportunity: the link may transmit up to one MTU-sized (1500 B)
// packet at that instant. The trace loops forever with period equal to its
// last timestamp (rounded up to a millisecond). These are exactly the
// semantics of Mahimahi's LinkShell, which the paper uses for all cellular
// experiments.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"abc/internal/packet"
	"abc/internal/sim"
)

// Trace is an immutable delivery-opportunity schedule that loops forever.
type Trace struct {
	// Name identifies the trace in reports.
	Name string
	// ops holds opportunity times within one period, sorted ascending.
	ops []sim.Time
	// period is the loop length; always >= the last opportunity and > 0.
	period sim.Time
}

// New builds a trace from opportunity times (need not be sorted) and a loop
// period. Opportunities at or after the period are rejected.
func New(name string, ops []sim.Time, period sim.Time) (*Trace, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("trace %q: no delivery opportunities", name)
	}
	if period <= 0 {
		return nil, fmt.Errorf("trace %q: non-positive period %v", name, period)
	}
	sorted := make([]sim.Time, len(ops))
	copy(sorted, ops)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if sorted[0] < 0 {
		return nil, fmt.Errorf("trace %q: negative opportunity time", name)
	}
	if last := sorted[len(sorted)-1]; last >= period {
		return nil, fmt.Errorf("trace %q: opportunity %v at/after period %v", name, last, period)
	}
	return &Trace{Name: name, ops: sorted, period: period}, nil
}

// Parse reads the Mahimahi trace format: one integer millisecond timestamp
// per line, non-decreasing, possibly repeated. The loop period is the last
// timestamp (a trailing entry at N ms yields an N ms period, matching
// Mahimahi's convention).
func Parse(name string, r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	var ops []sim.Time
	var last int64 = -1
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		ms, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace %q line %d: %v", name, line, err)
		}
		if ms < last {
			return nil, fmt.Errorf("trace %q line %d: timestamps must be non-decreasing", name, line)
		}
		last = ms
		ops = append(ops, sim.Time(ms)*sim.Millisecond)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("trace %q: empty", name)
	}
	period := ops[len(ops)-1]
	if period == 0 {
		period = sim.Millisecond
	}
	// Mahimahi treats the final timestamp as the wrap point: an
	// opportunity exactly at the period belongs to the next cycle.
	body := ops
	for len(body) > 0 && body[len(body)-1] >= period {
		body = body[:len(body)-1]
	}
	if len(body) == 0 {
		// Degenerate single-timestamp trace: one opportunity per period.
		body = []sim.Time{0}
	}
	return New(name, body, period)
}

// WriteTo emits the trace in Mahimahi format (millisecond resolution).
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for _, op := range t.ops {
		c, err := fmt.Fprintf(bw, "%d\n", int64(op/sim.Millisecond))
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	c, err := fmt.Fprintf(bw, "%d\n", int64(t.period/sim.Millisecond))
	n += int64(c)
	if err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// Period returns the loop period.
func (t *Trace) Period() sim.Time { return t.period }

// Opportunities returns the number of delivery opportunities per period.
func (t *Trace) Opportunities() int { return len(t.ops) }

// countUpTo returns the number of opportunities in [0, x) for x >= 0.
func (t *Trace) countUpTo(x sim.Time) int64 {
	if x <= 0 {
		return 0
	}
	full := int64(x / t.period)
	rem := x % t.period
	idx := sort.Search(len(t.ops), func(i int) bool { return t.ops[i] >= rem })
	return full*int64(len(t.ops)) + int64(idx)
}

// CountIn returns the number of delivery opportunities in the half-open
// interval [from, to).
func (t *Trace) CountIn(from, to sim.Time) int64 {
	if to <= from {
		return 0
	}
	return t.countUpTo(to) - t.countUpTo(from)
}

// NextOpportunity returns the first opportunity time strictly after now.
func (t *Trace) NextOpportunity(now sim.Time) sim.Time {
	if now < 0 {
		now = -1
	}
	cycle := now / t.period
	rem := now % t.period
	idx := sort.Search(len(t.ops), func(i int) bool { return t.ops[i] > rem })
	if idx < len(t.ops) {
		return cycle*t.period + t.ops[idx]
	}
	return (cycle+1)*t.period + t.ops[0]
}

// CapacityBps returns the average link capacity over the window ending at
// now, in bits per second, assuming each opportunity carries one MTU.
func (t *Trace) CapacityBps(now, window sim.Time) float64 {
	if window <= 0 {
		window = 100 * sim.Millisecond
	}
	from := now - window
	if from < 0 {
		from = 0
	}
	if now <= from {
		return 0
	}
	n := t.CountIn(from, now)
	return float64(n) * packet.MTU * 8 / (now - from).Seconds()
}

// FutureCapacityBps returns the average capacity over [now, now+window):
// the oracle used by PK-ABC (§6.6).
func (t *Trace) FutureCapacityBps(now, window sim.Time) float64 {
	if window <= 0 {
		window = 100 * sim.Millisecond
	}
	n := t.CountIn(now, now+window)
	return float64(n) * packet.MTU * 8 / window.Seconds()
}

// AvgRateBps returns the long-run average capacity of the trace.
func (t *Trace) AvgRateBps() float64 {
	return float64(len(t.ops)) * packet.MTU * 8 / t.period.Seconds()
}

// --- Constructors for analytically shaped traces ---

// Constant returns a fixed-rate trace of the given bits/sec. The period is
// chosen to give millisecond-accurate spacing.
func Constant(name string, bps float64) *Trace {
	if bps <= 0 {
		panic("trace: Constant requires positive rate")
	}
	// Opportunities are evenly spaced at MTU*8/bps.
	gap := float64(packet.MTU*8) / bps // seconds per opportunity
	n := int(math.Round(1.0 / gap))    // opportunities per second
	if n < 1 {
		n = 1
		gap = 1.0
	}
	ops := make([]sim.Time, n)
	for i := range ops {
		ops[i] = sim.FromSeconds(float64(i) * gap)
	}
	period := sim.FromSeconds(float64(n) * gap)
	tr, err := New(name, ops, period)
	if err != nil {
		panic(err)
	}
	return tr
}

// FromRateFunc samples a rate function (bits/sec as a function of time)
// into delivery opportunities over [0, total) and loops it.
func FromRateFunc(name string, total sim.Time, rate func(sim.Time) float64) *Trace {
	if total <= 0 {
		panic("trace: FromRateFunc requires positive duration")
	}
	const tick = sim.Millisecond
	var ops []sim.Time
	var credit float64 // accumulated bytes
	for t := sim.Time(0); t < total; t += tick {
		r := rate(t)
		if r < 0 {
			r = 0
		}
		credit += r * tick.Seconds() / 8
		for credit >= packet.MTU {
			credit -= packet.MTU
			ops = append(ops, t)
		}
	}
	if len(ops) == 0 {
		ops = []sim.Time{0}
	}
	tr, err := New(name, ops, total)
	if err != nil {
		panic(err)
	}
	return tr
}

// SquareWave alternates between lowBps and highBps every halfPeriod,
// starting high. Used for the Fig. 17 12↔24 Mbit/s experiment.
func SquareWave(name string, lowBps, highBps float64, halfPeriod sim.Time) *Trace {
	return FromRateFunc(name, 2*halfPeriod, func(t sim.Time) float64 {
		if t < halfPeriod {
			return highBps
		}
		return lowBps
	})
}

// Steps holds each rate for stepDur in sequence, then loops. Used for the
// Fig. 6 wired/wireless bottleneck-switching experiment.
func Steps(name string, ratesBps []float64, stepDur sim.Time) *Trace {
	if len(ratesBps) == 0 {
		panic("trace: Steps requires at least one rate")
	}
	total := sim.Time(len(ratesBps)) * stepDur
	return FromRateFunc(name, total, func(t sim.Time) float64 {
		return ratesBps[int(t/stepDur)%len(ratesBps)]
	})
}

// --- Synthetic cellular traces ---

// CellParams shapes a synthetic cellular trace.
type CellParams struct {
	// Seed makes the trace reproducible.
	Seed int64
	// Duration is the loop length.
	Duration sim.Time
	// MeanMbps is the long-run average rate.
	MeanMbps float64
	// Sigma is the per-step standard deviation of the log-rate random
	// walk. Larger values give the violent swings of LTE links.
	Sigma float64
	// MinMbps / MaxMbps clamp the walk.
	MinMbps, MaxMbps float64
	// OutageProb is the per-100ms probability of entering an outage.
	OutageProb float64
	// OutageMs is the mean outage duration in milliseconds.
	OutageMs float64
}

// Cellular generates a synthetic cellular trace: a mean-reverting random
// walk in log-rate space with occasional outages, producing the 4x-within-
// a-second swings the paper describes (§2), at millisecond granularity.
func Cellular(name string, p CellParams) *Trace {
	if p.Duration <= 0 {
		p.Duration = 60 * sim.Second
	}
	if p.MeanMbps <= 0 {
		p.MeanMbps = 10
	}
	if p.Sigma <= 0 {
		p.Sigma = 0.18
	}
	if p.MinMbps <= 0 {
		p.MinMbps = 0.4
	}
	if p.MaxMbps <= 0 {
		p.MaxMbps = 4 * p.MeanMbps
	}
	if p.OutageMs <= 0 {
		p.OutageMs = 250
	}
	rng := rand.New(rand.NewSource(p.Seed))
	logMean := math.Log(p.MeanMbps)
	logRate := logMean
	outageLeft := 0.0 // ms of outage remaining
	// The walk steps every 100 ms: LTE scheduling-grant granularity.
	// With σ ≈ 0.2–0.3 per step the rate typically swings 2–4x within a
	// second, matching the variability the paper describes (§2).
	const stepMs = 100.0
	steps := int(p.Duration.Millis() / stepMs)
	rates := make([]float64, steps)
	for i := range rates {
		if outageLeft > 0 {
			outageLeft -= stepMs
			rates[i] = 0
			continue
		}
		// Mean-reverting (Ornstein-Uhlenbeck-like) walk in log space.
		logRate += 0.1*(logMean-logRate) + p.Sigma*rng.NormFloat64()
		lo, hi := math.Log(p.MinMbps), math.Log(p.MaxMbps)
		if logRate < lo {
			logRate = lo
		}
		if logRate > hi {
			logRate = hi
		}
		rates[i] = math.Exp(logRate)
		if rng.Float64() < p.OutageProb*stepMs/100.0 {
			outageLeft = p.OutageMs * (0.5 + rng.Float64())
		}
	}
	// Linear interpolation between steps keeps capacity continuous, as
	// real schedulers ramp rather than jump.
	return FromRateFunc(name, p.Duration, func(t sim.Time) float64 {
		pos := t.Millis() / stepMs
		i := int(pos)
		if i >= len(rates)-1 {
			return rates[len(rates)-1] * 1e6
		}
		frac := pos - float64(i)
		return (rates[i]*(1-frac) + rates[i+1]*frac) * 1e6
	})
}

// CellularNames lists the eight synthetic traces standing in for the
// paper's recorded captures (Fig. 9).
var CellularNames = []string{
	"Verizon1", "Verizon2", "Verizon3", "Verizon4",
	"TMobile1", "TMobile2", "ATT1", "ATT2",
}

// NamedCellular returns one of the eight standard synthetic traces by
// name. Parameters differ per carrier family to span the range of mean
// rates and variability the paper's trace set covers.
func NamedCellular(name string) (*Trace, error) {
	params := map[string]CellParams{
		"Verizon1": {Seed: 11, MeanMbps: 9, Sigma: 0.22, OutageProb: 0.015},
		"Verizon2": {Seed: 12, MeanMbps: 6, Sigma: 0.26, OutageProb: 0.03},
		"Verizon3": {Seed: 13, MeanMbps: 14, Sigma: 0.18, OutageProb: 0.01},
		"Verizon4": {Seed: 14, MeanMbps: 4, Sigma: 0.3, OutageProb: 0.04},
		"TMobile1": {Seed: 21, MeanMbps: 11, Sigma: 0.2, OutageProb: 0.02},
		"TMobile2": {Seed: 22, MeanMbps: 7, Sigma: 0.24, OutageProb: 0.025},
		"ATT1":     {Seed: 31, MeanMbps: 12, Sigma: 0.16, OutageProb: 0.012},
		"ATT2":     {Seed: 32, MeanMbps: 5, Sigma: 0.28, OutageProb: 0.035},
	}
	p, ok := params[name]
	if !ok {
		return nil, fmt.Errorf("trace: unknown cellular trace %q", name)
	}
	p.Duration = 60 * sim.Second
	return Cellular(name, p), nil
}

// MustNamedCellular is NamedCellular panicking on error.
func MustNamedCellular(name string) *Trace {
	t, err := NamedCellular(name)
	if err != nil {
		panic(err)
	}
	return t
}
