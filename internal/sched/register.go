// Registry hookup: the dual-queue coexistence router joins the qdisc
// registry under both of its weight policies.
package sched

import (
	"abc/internal/qdisc"
)

// buildDual constructs a dual queue with the harness conventions: the
// buffer bounds both queues and the delay threshold override reaches the
// inner ABC router.
func buildDual(policy WeightPolicy) qdisc.Builder {
	return func(s qdisc.BuildSpec) (qdisc.Qdisc, error) {
		cfg := DefaultConfig()
		cfg.Policy = policy
		cfg.ABCLimit, cfg.OtherLimit = s.Buffer, s.Buffer
		if s.DelayThreshold > 0 {
			cfg.Router.DelayThreshold = s.DelayThreshold
		}
		return NewDualQueue(cfg), nil
	}
}

func init() {
	qdisc.Register("dual-maxmin", buildDual(MaxMin))
	qdisc.Register("dual-zombie", buildDual(ZombieList))
}
