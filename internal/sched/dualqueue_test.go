package sched

import (
	"math"
	"testing"
	"testing/quick"

	"abc/internal/packet"
	"abc/internal/sim"
)

func mkPkt(flow int, abcFlow bool, seq int64) *packet.Packet {
	p := packet.NewData(flow, seq, packet.MTU, 0)
	p.ABCFlow = abcFlow
	if abcFlow {
		p.ECN = packet.Accel
	}
	return p
}

func newDQ() *DualQueue {
	dq := NewDualQueue(DefaultConfig())
	dq.SetCapacityProvider(func(sim.Time) float64 { return 24e6 })
	return dq
}

func TestClassification(t *testing.T) {
	dq := newDQ()
	dq.Enqueue(0, mkPkt(1, true, 0))
	dq.Enqueue(0, mkPkt(2, false, 0))
	dq.Enqueue(0, mkPkt(1, true, 1))
	if dq.ABC.Len() != 2 || dq.Other.Len() != 1 {
		t.Errorf("abc=%d other=%d", dq.ABC.Len(), dq.Other.Len())
	}
	if dq.Len() != 3 || dq.Bytes() != 3*packet.MTU {
		t.Errorf("len=%d bytes=%d", dq.Len(), dq.Bytes())
	}
}

func TestWeightedService(t *testing.T) {
	dq := newDQ()
	dq.wABC = 0.75
	// Fill both queues deeply.
	for i := int64(0); i < 100; i++ {
		dq.Enqueue(0, mkPkt(1, true, i))
		dq.Enqueue(0, mkPkt(2, false, i))
	}
	abcServed := 0
	for i := 0; i < 80; i++ {
		p := dq.Dequeue(0)
		if p == nil {
			t.Fatal("empty dequeue")
		}
		if p.ABCFlow {
			abcServed++
		}
	}
	frac := float64(abcServed) / 80
	if math.Abs(frac-0.75) > 0.05 {
		t.Errorf("ABC service fraction %.2f, want 0.75", frac)
	}
}

func TestWorkConservation(t *testing.T) {
	dq := newDQ()
	dq.wABC = 0.9
	// Only the non-ABC queue has traffic: it must get full service.
	for i := int64(0); i < 10; i++ {
		dq.Enqueue(0, mkPkt(2, false, i))
	}
	for i := 0; i < 10; i++ {
		if dq.Dequeue(0) == nil {
			t.Fatal("starved a backlogged queue")
		}
	}
}

func TestInnerABCCapacityScaledByWeight(t *testing.T) {
	dq := newDQ()
	dq.wABC = 0.5
	// The inner router's µ must be half the link: target rate = η·12e6.
	tr := dq.ABC.TargetRate(0)
	want := 0.98 * 12e6
	if math.Abs(tr-want)/want > 0.01 {
		t.Errorf("inner target rate %.0f, want %.0f", tr, want)
	}
}

func TestMaxMinReweighsTowardHeavyDemand(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Interval = 100 * sim.Millisecond
	dq := NewDualQueue(cfg)
	dq.SetCapacityProvider(func(sim.Time) float64 { return 24e6 })
	now := sim.Time(0)
	// 3 ABC long flows vs 1 Cubic long flow, all backlogged: max-min
	// gives ABC 3/4 of the link.
	seq := int64(0)
	for step := 0; step < 3000; step++ {
		now += sim.Millisecond
		for f := 0; f < 3; f++ {
			dq.Enqueue(now, mkPkt(f, true, seq))
			seq++
		}
		dq.Enqueue(now, mkPkt(10, false, seq))
		seq++
		for i := 0; i < 4; i++ {
			dq.Dequeue(now)
		}
	}
	if w := dq.WeightABC(); math.Abs(w-0.75) > 0.1 {
		t.Errorf("maxmin weight %.2f, want ≈ 0.75", w)
	}
}

func TestZombieCountsFlowsNotDemand(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = ZombieList
	cfg.Interval = 100 * sim.Millisecond
	dq := NewDualQueue(cfg)
	dq.SetCapacityProvider(func(sim.Time) float64 { return 24e6 })
	now := sim.Time(0)
	seq := int64(0)
	// 1 ABC flow vs 3 distinct Cubic flows: zombie policy weights 1:3
	// regardless of demand.
	for step := 0; step < 3000; step++ {
		now += sim.Millisecond
		dq.Enqueue(now, mkPkt(0, true, seq))
		seq++
		dq.Enqueue(now, mkPkt(10+int(seq)%3, false, seq))
		seq++
		dq.Dequeue(now)
		dq.Dequeue(now)
	}
	if w := dq.WeightABC(); math.Abs(w-0.25) > 0.1 {
		t.Errorf("zombie weight %.2f, want ≈ 0.25", w)
	}
}

func TestMaxMinAllocateBasics(t *testing.T) {
	// Ample capacity: everyone gets their demand.
	al := MaxMinAllocate(100, []float64{10, 20, 30})
	for i, want := range []float64{10, 20, 30} {
		if math.Abs(al[i]-want) > 1e-9 {
			t.Errorf("alloc[%d] = %v", i, al[i])
		}
	}
	// Scarce capacity: equal split among the unconstrained.
	al = MaxMinAllocate(30, []float64{5, 100, 100})
	if math.Abs(al[0]-5) > 1e-9 {
		t.Errorf("demand-limited got %v", al[0])
	}
	if math.Abs(al[1]-12.5) > 1e-9 || math.Abs(al[2]-12.5) > 1e-9 {
		t.Errorf("unconstrained got %v, %v", al[1], al[2])
	}
}

func TestMaxMinAllocateEdgeCases(t *testing.T) {
	if got := MaxMinAllocate(0, []float64{1}); got[0] != 0 {
		t.Error("zero capacity should allocate nothing")
	}
	if got := MaxMinAllocate(10, nil); len(got) != 0 {
		t.Error("no demands should return empty")
	}
}

// TestMaxMinProperties: allocations never exceed demand, never exceed
// capacity in total, and demand-limited users are fully satisfied before
// anyone gets more than they do.
func TestMaxMinProperties(t *testing.T) {
	f := func(demRaw []uint16, capRaw uint32) bool {
		if len(demRaw) == 0 {
			return true
		}
		demands := make([]float64, len(demRaw))
		for i, d := range demRaw {
			demands[i] = float64(d)
		}
		capacity := float64(capRaw%100000) + 1
		al := MaxMinAllocate(capacity, demands)
		var total float64
		for i, a := range al {
			if a > demands[i]+1e-6 {
				return false // over-allocated
			}
			total += a
		}
		if total > capacity+1e-6 {
			return false
		}
		// Max-min property: if user i got strictly less than its
		// demand, no user j got more than a_i + epsilon unless j's
		// allocation equals j's demand... equivalently, all
		// unsatisfied users receive the same share.
		share := -1.0
		for i, a := range al {
			if a < demands[i]-1e-6 {
				if share < 0 {
					share = a
				} else if math.Abs(a-share) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDualQueueRespectsLimits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ABCLimit, cfg.OtherLimit = 5, 5
	dq := NewDualQueue(cfg)
	dq.SetCapacityProvider(func(sim.Time) float64 { return 24e6 })
	for i := int64(0); i < 10; i++ {
		dq.Enqueue(0, mkPkt(1, true, i))
		dq.Enqueue(0, mkPkt(2, false, i))
	}
	if dq.ABC.Len() > 5 || dq.Other.Len() > 5 {
		t.Errorf("limits exceeded: %d / %d", dq.ABC.Len(), dq.Other.Len())
	}
	if dq.Stats.DroppedPackets == 0 {
		t.Error("no drops counted")
	}
}

func TestWeightClamped(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Interval = 10 * sim.Millisecond
	dq := NewDualQueue(cfg)
	dq.SetCapacityProvider(func(sim.Time) float64 { return 24e6 })
	now := sim.Time(0)
	// Only non-ABC traffic for a long time: weight must stay above the
	// minimum so ABC is never starved out of existence.
	for i := int64(0); i < 2000; i++ {
		now += sim.Millisecond
		dq.Enqueue(now, mkPkt(2, false, i))
		dq.Dequeue(now)
	}
	if w := dq.WeightABC(); w < cfg.MinWeight-1e-9 || w > 1-cfg.MinWeight+1e-9 {
		t.Errorf("weight %.3f outside clamp", w)
	}
}
