// Package sched implements the paper's §5.2 coexistence machinery: a
// dual-queue bottleneck router that isolates ABC from non-ABC traffic,
// schedules between the queues by weight, and periodically recomputes the
// weights. Two weight policies are provided — ABC's max-min allocation
// over measured flow demands, and RCP's Zombie-List equal-average-rate
// policy, reproduced here as the baseline whose short-flow unfairness
// Fig. 12 demonstrates.
package sched

import (
	"abc/internal/abc"
	"abc/internal/packet"
	"abc/internal/qdisc"
	"abc/internal/sim"
	"abc/internal/topk"
)

// WeightPolicy selects how queue weights are assigned.
type WeightPolicy int

const (
	// MaxMin is ABC's policy: estimate per-flow demands (top-K flows at
	// X% above current throughput, short flows at current aggregate),
	// compute the max-min fair allocation, and set each queue's weight
	// to the sum of its flows' allocations.
	MaxMin WeightPolicy = iota
	// ZombieList emulates RCP: estimate the number of flows in each
	// queue and equalize the average per-flow rate, which overweights
	// queues full of short flows (§5.2, Fig. 12b).
	ZombieList
)

// Config parameterizes the dual-queue router.
type Config struct {
	// Policy selects the weight assignment strategy.
	Policy WeightPolicy
	// K is the number of large flows tracked per queue.
	K int
	// DemandHeadroom is X: top-K flow demand is (1+X) times measured
	// throughput (paper: X = 10%).
	DemandHeadroom float64
	// Interval is the weight recomputation period.
	Interval sim.Time
	// ABCLimit / OtherLimit bound each queue in packets.
	ABCLimit, OtherLimit int
	// Router configures the inner ABC router for the ABC queue.
	Router abc.RouterConfig
	// MinWeight clamps weights away from starvation.
	MinWeight float64
}

// DefaultConfig returns the paper's coexistence parameters.
func DefaultConfig() Config {
	rc := abc.DefaultRouterConfig()
	rc.Limit = 0 // the dual queue enforces its own limits
	return Config{
		Policy:         MaxMin,
		K:              10,
		DemandHeadroom: 0.10,
		// 200 ms intervals: with X=10% headroom the weights converge to
		// the fair split in a couple of seconds.
		Interval:   200 * sim.Millisecond,
		ABCLimit:   250,
		OtherLimit: 250,
		Router:     rc,
		MinWeight:  0.05,
	}
}

// DualQueue is a qdisc with two child queues: an ABC router for ABC flows
// and a droptail FIFO for everything else, served in proportion to
// dynamically computed weights. It implements qdisc.Qdisc and
// qdisc.CapacityAware.
type DualQueue struct {
	Cfg Config
	// ABC is the inner ABC router (exported so experiments can read its
	// marking stats).
	ABC *abc.Router
	// Other is the non-ABC queue.
	Other *qdisc.DropTail

	capacity func(now sim.Time) float64
	wABC     float64

	// Per-queue service accounting for weighted scheduling.
	servedABC   float64
	servedOther float64

	// Per-interval measurement.
	intervalStart sim.Time
	abcSketch     *topk.SpaceSaving
	otherSketch   *topk.SpaceSaving
	abcBytes      int64
	otherBytes    int64
	// Zombie-list flow estimation: a fixed-size reservoir sample of
	// dequeued packets per queue; the number of distinct flows in the
	// reservoir estimates the queue's flow count weighted by rate, as
	// SRED's zombie list does.
	abcReservoir   []int
	otherReservoir []int
	abcSeen        int64
	otherSeen      int64

	Stats qdisc.Stats
}

// NewDualQueue returns the coexistence router.
func NewDualQueue(cfg Config) *DualQueue {
	if cfg.K <= 0 {
		cfg.K = 10
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 500 * sim.Millisecond
	}
	if cfg.MinWeight <= 0 {
		cfg.MinWeight = 0.05
	}
	dq := &DualQueue{
		Cfg:         cfg,
		ABC:         abc.NewRouter(cfg.Router),
		Other:       qdisc.NewDropTail(cfg.OtherLimit),
		wABC:        0.5,
		abcSketch:   topk.New(cfg.K),
		otherSketch: topk.New(cfg.K),
	}
	return dq
}

// SetCapacityProvider implements qdisc.CapacityAware. The inner ABC
// router sees only ABC's share of the link (§5.2: "ABC's target rate
// calculation considers only ABC's share of the link capacity").
func (d *DualQueue) SetCapacityProvider(f func(now sim.Time) float64) {
	d.capacity = f
	d.ABC.SetCapacityProvider(func(now sim.Time) float64 {
		return d.wABC * f(now)
	})
}

// WeightABC returns the current ABC-queue weight.
func (d *DualQueue) WeightABC() float64 { return d.wABC }

// Enqueue implements qdisc.Qdisc, classifying by the ABC flow tag.
func (d *DualQueue) Enqueue(now sim.Time, p *packet.Packet) bool {
	if d.intervalStart == 0 {
		d.intervalStart = now
	}
	d.maybeReweigh(now)
	var ok bool
	if p.ABCFlow {
		if d.Cfg.ABCLimit > 0 && d.ABC.Len() >= d.Cfg.ABCLimit {
			d.Stats.DroppedPackets++
			return false
		}
		ok = d.ABC.Enqueue(now, p)
	} else {
		ok = d.Other.Enqueue(now, p)
	}
	if ok {
		d.Stats.EnqueuedPackets++
	} else {
		d.Stats.DroppedPackets++
	}
	return ok
}

// Dequeue implements qdisc.Qdisc: serve the queue with the least
// weight-normalized service among the non-empty queues.
func (d *DualQueue) Dequeue(now sim.Time) *packet.Packet {
	d.maybeReweigh(now)
	abcEmpty := d.ABC.Len() == 0
	otherEmpty := d.Other.Len() == 0
	if abcEmpty && otherEmpty {
		return nil
	}
	useABC := false
	switch {
	case otherEmpty:
		useABC = true
	case abcEmpty:
		useABC = false
	default:
		wA, wO := d.wABC, 1-d.wABC
		useABC = d.servedABC/wA <= d.servedOther/wO
	}
	var p *packet.Packet
	if useABC {
		p = d.ABC.Dequeue(now)
		if p != nil {
			d.servedABC += float64(p.Size)
		}
	} else {
		p = d.Other.Dequeue(now)
		if p != nil {
			d.servedOther += float64(p.Size)
		}
	}
	if p == nil {
		return nil
	}
	// Account the dequeued flow's bytes for the demand estimator.
	if p.ABCFlow {
		d.abcSketch.Add(p.Flow, int64(p.Size))
		d.abcBytes += int64(p.Size)
		d.abcSeen++
		reservoirAdd(&d.abcReservoir, p.Flow, d.abcSeen)
	} else {
		d.otherSketch.Add(p.Flow, int64(p.Size))
		d.otherBytes += int64(p.Size)
		d.otherSeen++
		reservoirAdd(&d.otherReservoir, p.Flow, d.otherSeen)
	}
	d.Stats.DequeuedPackets++
	d.Stats.DequeuedBytes += int64(p.Size)
	return p
}

// Len implements qdisc.Qdisc.
func (d *DualQueue) Len() int { return d.ABC.Len() + d.Other.Len() }

// Bytes implements qdisc.Qdisc.
func (d *DualQueue) Bytes() int { return d.ABC.Bytes() + d.Other.Bytes() }

// maybeReweigh recomputes queue weights once per interval.
func (d *DualQueue) maybeReweigh(now sim.Time) {
	if d.intervalStart == 0 || now-d.intervalStart < d.Cfg.Interval {
		return
	}
	dur := (now - d.intervalStart).Seconds()
	var c float64
	if d.capacity != nil {
		c = d.capacity(now) / 8 // bytes/sec
	}
	switch d.Cfg.Policy {
	case ZombieList:
		d.reweighZombie()
	default:
		d.reweighMaxMin(dur, c)
	}
	// Clamp and reset measurement state.
	if d.wABC < d.Cfg.MinWeight {
		d.wABC = d.Cfg.MinWeight
	}
	if d.wABC > 1-d.Cfg.MinWeight {
		d.wABC = 1 - d.Cfg.MinWeight
	}
	d.intervalStart = now
	d.abcSketch.Reset()
	d.otherSketch.Reset()
	d.abcBytes, d.otherBytes = 0, 0
	d.abcReservoir = d.abcReservoir[:0]
	d.otherReservoir = d.otherReservoir[:0]
	d.abcSeen, d.otherSeen = 0, 0
	// Reset service counters so the new weights take effect afresh.
	d.servedABC, d.servedOther = 0, 0
}

// reservoirSize bounds the zombie-list sample per queue per interval.
const reservoirSize = 20

// reservoirAdd keeps a deterministic rate-proportional sample: the first
// reservoirSize packets fill it, after which every (seen/reservoirSize)-th
// packet replaces a rotating slot. Deterministic replacement keeps runs
// reproducible while still sampling roughly in proportion to rate.
func reservoirAdd(r *[]int, flow int, seen int64) {
	if len(*r) < reservoirSize {
		*r = append(*r, flow)
		return
	}
	stride := seen / reservoirSize
	if stride > 0 && seen%stride == 0 {
		(*r)[int(seen/stride)%reservoirSize] = flow
	}
}

// distinct counts unique flows in a reservoir.
func distinct(r []int) int {
	seen := make(map[int]struct{}, len(r))
	for _, f := range r {
		seen[f] = struct{}{}
	}
	return len(seen)
}

// demand describes one max-min participant.
type demand struct {
	rate float64 // bytes/sec demanded
	abc  bool
}

// reweighMaxMin implements ABC's policy: per-flow demands from the top-K
// measurement plus one short-flow aggregate per queue, then a max-min
// water-fill of the link capacity; each queue's weight is the share of
// capacity its flows were allocated.
func (d *DualQueue) reweighMaxMin(dur float64, capacityBps float64) {
	if capacityBps <= 0 || dur <= 0 {
		return
	}
	var demands []demand
	build := func(sk *topk.SpaceSaving, total int64, isABC bool) {
		var topBytes int64
		for _, c := range sk.Top(d.Cfg.K) {
			topBytes += c.Count
			demands = append(demands, demand{
				rate: float64(c.Count) / dur * (1 + d.Cfg.DemandHeadroom),
				abc:  isABC,
			})
		}
		if shorts := total - topBytes; shorts > 0 {
			demands = append(demands, demand{rate: float64(shorts) / dur, abc: isABC})
		}
	}
	build(d.abcSketch, d.abcBytes, true)
	build(d.otherSketch, d.otherBytes, false)
	if len(demands) == 0 {
		return
	}
	alloc := MaxMinAllocate(capacityBps, demandRates(demands))
	var abcAlloc, total float64
	for i, a := range alloc {
		total += a
		if demands[i].abc {
			abcAlloc += a
		}
	}
	if total > 0 {
		d.wABC = abcAlloc / total
	}
}

func demandRates(ds []demand) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.rate
	}
	return out
}

// reweighZombie implements the RCP baseline: weight each queue by its
// estimated flow count (from the zombie-list reservoir), equalizing
// average per-flow throughput. Short flows inflate the count without
// using their share, which long flows in the same queue then absorb —
// the unfairness Fig. 12b shows.
func (d *DualQueue) reweighZombie() {
	nABC := float64(distinct(d.abcReservoir))
	nOther := float64(distinct(d.otherReservoir))
	if nABC+nOther == 0 {
		return
	}
	d.wABC = nABC / (nABC + nOther)
}

// MaxMinAllocate water-fills capacity over the given demands: demand-
// limited participants receive their demand; the rest split the remainder
// equally. The returned allocations sum to at most capacity.
func MaxMinAllocate(capacity float64, demands []float64) []float64 {
	n := len(demands)
	alloc := make([]float64, n)
	if n == 0 || capacity <= 0 {
		return alloc
	}
	remaining := capacity
	active := make([]int, 0, n)
	for i := range demands {
		active = append(active, i)
	}
	for len(active) > 0 {
		fair := remaining / float64(len(active))
		progressed := false
		next := active[:0]
		for _, i := range active {
			if demands[i] <= fair {
				alloc[i] = demands[i]
				remaining -= demands[i]
				progressed = true
			} else {
				next = append(next, i)
			}
		}
		active = next
		if !progressed {
			fair = remaining / float64(len(active))
			for _, i := range active {
				alloc[i] = fair
			}
			remaining = 0
			break
		}
	}
	return alloc
}
