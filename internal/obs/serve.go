package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// Well-known metric names read by the progress line. Publishers (the
// exp harness, the binaries) use these constants so the progress
// goroutine and the exposition endpoint agree.
const (
	MetricSimSeconds  = "abc_run_sim_seconds"      // gauge: virtual time simulated so far
	MetricSimEvents   = "abc_sim_events_total"     // counter: simulator events executed
	MetricCellsTotal  = "abc_harness_cells_total"  // counter: sweep cells scheduled
	MetricCellsDone   = "abc_harness_cells_done"   // counter: sweep cells finished
	MetricCellsFailed = "abc_harness_cells_failed" // counter: sweep cells that returned an error or panicked
)

// Handler returns an http.Handler exposing reg at /metrics (and at /,
// for curl convenience) in Prometheus text format.
func Handler(reg *Registry) http.Handler {
	h := func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteProm(w)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", h)
	mux.HandleFunc("/", h)
	return mux
}

// Serve starts an HTTP server for reg on addr in a background
// goroutine and returns the bound address (useful with ":0"). The
// server lives for the remainder of the process; runs are short-lived
// batch jobs, so there is no shutdown plumbing.
func Serve(addr string, reg *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// StartProgress starts a goroutine that writes a one-line progress
// summary to w every period: sim-time vs wall-time, events/sec since
// the previous line, and sweep cells done. Returns a stop function
// that halts the ticker (already-started writes may still land).
func StartProgress(w io.Writer, reg *Registry, period time.Duration) (stop func()) {
	var stopped atomic.Bool
	start := time.Now()
	go func() {
		tick := time.NewTicker(period)
		defer tick.Stop()
		var lastEvents int64
		lastWall := start
		for range tick.C {
			if stopped.Load() {
				return
			}
			now := time.Now()
			events := int64(reg.Counter(MetricSimEvents).Value())
			rate := float64(events-lastEvents) / now.Sub(lastWall).Seconds()
			lastEvents, lastWall = events, now
			simSec := reg.Gauge(MetricSimSeconds).Value()
			total := reg.Counter(MetricCellsTotal).Value()
			done := reg.Counter(MetricCellsDone).Value()
			failed := reg.Counter(MetricCellsFailed).Value()
			line := fmt.Sprintf("[obs] wall=%s sim=%.3fs events=%d (%.0f/s)",
				now.Sub(start).Truncate(time.Millisecond), simSec, events, rate)
			if total > 0 {
				line += fmt.Sprintf(" cells=%d/%d", done, total)
				if failed > 0 {
					line += fmt.Sprintf(" failed=%d", failed)
				}
			}
			fmt.Fprintln(w, line)
		}
	}()
	return func() { stopped.Store(true) }
}
