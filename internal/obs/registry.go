package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe
// for concurrent use and allocation-free.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (d must be >= 0).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Store overwrites the count. It exists for mirroring an externally
// maintained cumulative count (a simulator-side statistic) into the
// registry; counters owned by the registry should use Add/Inc.
func (c *Counter) Store(v int64) { c.v.Store(v) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The float64 value is
// stored via math.Float64bits in a uint64 so reads and writes are
// single atomic operations.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Sample is one (name, value) pair from a registry snapshot.
type Sample struct {
	Name      string // full exposition name, labels included
	Value     float64
	IsCounter bool
}

// Registry is a get-or-create collection of named counters and gauges.
// Names follow Prometheus conventions and may embed labels directly:
// `abc_queue_pkts{edge="fwd0"}`. Registration takes a lock; the
// returned handles are lock-free, so hot paths should hold on to them.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	help     map[string]string // metric family -> HELP text
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		help:     make(map[string]string),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry used by the binaries.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter registered under name, creating it if
// needed. Registering the same name as both counter and gauge panics.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	if _, ok := r.gauges[name]; ok {
		panic("obs: metric " + name + " already registered as a gauge")
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	if _, ok := r.counters[name]; ok {
		panic("obs: metric " + name + " already registered as a counter")
	}
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Help sets the HELP text for a metric family (the name before any
// `{` label block).
func (r *Registry) Help(family, text string) {
	r.mu.Lock()
	r.help[family] = text
	r.mu.Unlock()
}

// Snapshot returns a consistent point-in-time view of every metric,
// sorted by name. Individual values are read atomically; the set of
// registered names is captured under the registry lock.
func (r *Registry) Snapshot() []Sample {
	r.mu.RLock()
	out := make([]Sample, 0, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out = append(out, Sample{Name: name, Value: float64(c.Value()), IsCounter: true})
	}
	for name, g := range r.gauges {
		out = append(out, Sample{Name: name, Value: g.Value()})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// family strips the label block from an exposition name.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WriteProm writes the registry in Prometheus text exposition format
// (version 0.0.4): # HELP / # TYPE headers per family, then one sample
// per line, sorted by name.
func (r *Registry) WriteProm(w io.Writer) error {
	samples := r.Snapshot()
	r.mu.RLock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.RUnlock()

	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, s := range samples {
		fam := family(s.Name)
		if fam != lastFamily {
			lastFamily = fam
			if h, ok := help[fam]; ok {
				if _, err := fmt.Fprintf(bw, "# HELP %s %s\n", fam, h); err != nil {
					return err
				}
			}
			typ := "gauge"
			if s.IsCounter {
				typ = "counter"
			}
			if _, err := fmt.Fprintf(bw, "# TYPE %s %s\n", fam, typ); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(bw, "%s %s\n", s.Name, formatValue(s.Value)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// formatValue renders a float the way Prometheus text format expects:
// integers without a decimal point, everything else via %g.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
