// Package obs is the observability substrate for the simulator: a
// fixed-capacity flight recorder of compact binary trace events and an
// atomically snapshottable metrics registry with Prometheus-style text
// exposition.
//
// obs deliberately depends on nothing but the standard library so that
// every layer of the simulator (sim, topo, netem, abc, cc, exp) can
// import it without cycles. Timestamps are raw int64 nanoseconds of
// virtual sim-time; callers convert from their own time types.
//
// The recorder is passive: emitting an event never schedules simulator
// work, never draws randomness, and never allocates in steady state, so
// enabling tracing cannot perturb a run (golden digests stay
// byte-identical with tracing on).
package obs

import (
	"bufio"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Cat is a bitmask of event categories used to enable/disable tracing
// per subsystem without touching call sites.
type Cat uint32

const (
	// CatPacket covers queue-level packet life cycle: enqueue, dequeue,
	// and the various drop flavours.
	CatPacket Cat = 1 << iota
	// CatMark covers accel/brake mark issuance and demotion decisions
	// inside the ABC router.
	CatMark
	// CatRoute covers route-class attach/detach and reroutes.
	CatRoute
	// CatLink covers link up/down and delay/rate changes.
	CatLink
	// CatAttack covers adversary window open/close and per-packet
	// attack actions.
	CatAttack
	// CatCC covers congestion-control state updates (cwnd, pacing rate).
	CatCC
	// CatShard covers conservative-lookahead horizon advances in the
	// sharded coordinator.
	CatShard
	// CatHop covers per-hop FIB forwarding. This is the hottest trace
	// point in the simulator; enable it only when you really want a
	// packet-level flight path.
	CatHop

	// CatAll enables every category.
	CatAll Cat = 1<<iota - 1
)

// Kind identifies what happened. Kinds are stable small integers so
// events stay compact in the ring and in columnar dumps.
type Kind uint16

const (
	// KindNone is the zero Kind; it never appears in a recorded event.
	KindNone Kind = iota

	// Packet life cycle (CatPacket).
	EvEnqueue      // packet accepted by a qdisc. A=queue len after, B=queue bytes after
	EvDequeue      // packet left a qdisc. A=queueing delay ns, B=queue len after
	EvQdiscDrop    // qdisc rejected the packet (buffer full / AQM)
	EvUnroutedDrop // node had no FIB entry for the flow
	EvDownDrop     // packet arrived at a downed link

	// Mark issuance (CatMark).
	EvAccel       // router issued an accelerate mark
	EvBrake       // router issued a brake mark
	EvEchoKept    // echoed accel on the reverse path kept
	EvEchoDemoted // echoed accel demoted to brake (accel->brake demotion)
	EvLiePromoted // lying router promoted a brake to accel

	// Routing (CatRoute).
	EvClassAttach // route class installed. Src=class id, A=refcount
	EvClassDetach // route class removed. Src=class id, A=refcount
	EvReroute     // flow moved to a new path. A=1 if draining (make-before-break)

	// Link state (CatLink).
	EvLinkUp
	EvLinkDown
	EvSetDelay // A=new delay ns
	EvSetRate  // A=new rate bits/sec

	// Adversary (CatAttack).
	EvAttackOn
	EvAttackOff
	EvAttackDrop
	EvAttackDelay // A=added delay ns
	EvAttackStrip // feedback stripped from packet

	// Congestion control (CatCC).
	EvCwnd // A=cwnd in 1/1024 pkts, B=pacing rate bits/sec (0 if none)

	// Sharded execution (CatShard).
	EvHorizon // shard safe-horizon advance. Src=shard, A=neighbour bound ns

	// Forwarding (CatHop).
	EvHop // packet forwarded one hop. Src=node id, A=edge id

	kindCount // sentinel
)

// kindInfo maps a Kind to its wire name and category.
var kindInfo = [kindCount]struct {
	name string
	cat  Cat
}{
	KindNone:       {"none", 0},
	EvEnqueue:      {"enqueue", CatPacket},
	EvDequeue:      {"dequeue", CatPacket},
	EvQdiscDrop:    {"qdisc_drop", CatPacket},
	EvUnroutedDrop: {"unrouted_drop", CatPacket},
	EvDownDrop:     {"down_drop", CatPacket},
	EvAccel:        {"accel", CatMark},
	EvBrake:        {"brake", CatMark},
	EvEchoKept:     {"echo_kept", CatMark},
	EvEchoDemoted:  {"echo_demoted", CatMark},
	EvLiePromoted:  {"lie_promoted", CatMark},
	EvClassAttach:  {"class_attach", CatRoute},
	EvClassDetach:  {"class_detach", CatRoute},
	EvReroute:      {"reroute", CatRoute},
	EvLinkUp:       {"link_up", CatLink},
	EvLinkDown:     {"link_down", CatLink},
	EvSetDelay:     {"set_delay", CatLink},
	EvSetRate:      {"set_rate", CatLink},
	EvAttackOn:     {"attack_on", CatAttack},
	EvAttackOff:    {"attack_off", CatAttack},
	EvAttackDrop:   {"attack_drop", CatAttack},
	EvAttackDelay:  {"attack_delay", CatAttack},
	EvAttackStrip:  {"attack_strip", CatAttack},
	EvCwnd:         {"cwnd", CatCC},
	EvHorizon:      {"horizon", CatShard},
	EvHop:          {"hop", CatHop},
}

// String returns the stable wire name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindInfo) && kindInfo[k].name != "" {
		return kindInfo[k].name
	}
	return fmt.Sprintf("kind(%d)", uint16(k))
}

// Category returns the category the kind belongs to.
func (k Kind) Category() Cat {
	if int(k) < len(kindInfo) {
		return kindInfo[k].cat
	}
	return 0
}

// Event is one flight-recorder entry: 32 bytes, no pointers.
// The meaning of Src, Flow, A and B depends on Kind; see the Kind
// constants. Src is a subsystem-local identity (edge index, node id,
// shard id, route class id), Flow is the flow id or -1.
type Event struct {
	T    int64 // virtual sim-time, nanoseconds
	A, B int64 // kind-specific payload
	Src  int32
	Flow int32
	Kind Kind
	_    [6]byte // pad to 32 bytes so the ring stays cache-line friendly
}

// Recorder is a fixed-capacity ring of Events guarded by a mutex so
// parallel sweep cells and shard workers can share one instance under
// -race. A nil *Recorder is valid and permanently disabled, which is
// the zero-cost fast path: call sites guard emission with
// rec.Enabled(cat), which is a nil check plus one atomic load.
type Recorder struct {
	mask atomic.Uint32 // Cat bitmask of enabled categories

	mu    sync.Mutex
	ring  []Event
	total uint64 // events ever emitted; ring[total%cap] is the next slot
}

// NewRecorder returns a recorder holding the most recent capacity
// events for the categories in mask. capacity must be > 0.
func NewRecorder(capacity int, mask Cat) *Recorder {
	if capacity <= 0 {
		panic("obs: NewRecorder capacity must be > 0")
	}
	r := &Recorder{ring: make([]Event, capacity)}
	r.mask.Store(uint32(mask))
	return r
}

// Enabled reports whether events in category c would be recorded.
// Safe on a nil receiver; this is the per-call-site fast path.
func (r *Recorder) Enabled(c Cat) bool {
	return r != nil && Cat(r.mask.Load())&c != 0
}

// SetMask replaces the enabled-category bitmask.
func (r *Recorder) SetMask(mask Cat) { r.mask.Store(uint32(mask)) }

// Mask returns the current enabled-category bitmask.
func (r *Recorder) Mask() Cat { return Cat(r.mask.Load()) }

// Emit records one event. It allocates nothing and is safe for
// concurrent use. Callers are expected to have checked Enabled first;
// Emit re-checks the mask so racing SetMask calls stay consistent.
func (r *Recorder) Emit(t int64, k Kind, src, flow int32, a, b int64) {
	if r == nil || Cat(r.mask.Load())&k.Category() == 0 {
		return
	}
	r.mu.Lock()
	r.ring[r.total%uint64(len(r.ring))] = Event{T: t, A: a, B: b, Src: src, Flow: flow, Kind: k}
	r.total++
	r.mu.Unlock()
}

// Cap returns the ring capacity.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.ring)
}

// Total returns how many events have ever been emitted.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Overwritten returns how many events have been lost to ring
// wraparound (total emitted minus capacity, floored at 0).
func (r *Recorder) Overwritten() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total <= uint64(len(r.ring)) {
		return 0
	}
	return r.total - uint64(len(r.ring))
}

// Snapshot copies the retained events oldest-first.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.total
	capU := uint64(len(r.ring))
	if n > capU {
		out := make([]Event, capU)
		start := n % capU // oldest retained slot
		copied := copy(out, r.ring[start:])
		copy(out[copied:], r.ring[:start])
		return out
	}
	out := make([]Event, n)
	copy(out, r.ring[:n])
	return out
}

// WriteJSONL writes the retained events as one JSON object per line,
// oldest first, keyed by sim-time.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range r.Snapshot() {
		_, err := fmt.Fprintf(bw, `{"t":%d,"kind":%q,"src":%d,"flow":%d,"a":%d,"b":%d}`+"\n",
			e.T, e.Kind.String(), e.Src, e.Flow, e.A, e.B)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteColumns writes the retained events as a CSV-style columnar dump
// (header row then one row per event, oldest first).
func (r *Recorder) WriteColumns(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "t,kind,src,flow,a,b"); err != nil {
		return err
	}
	for _, e := range r.Snapshot() {
		_, err := fmt.Fprintf(bw, "%d,%s,%d,%d,%d,%d\n",
			e.T, e.Kind.String(), e.Src, e.Flow, e.A, e.B)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Sink is implemented by components that can carry a recorder plus a
// stable source id for the events they emit (edge index, router id).
// Wiring code uses it to thread one recorder through heterogeneous
// links and qdiscs without type switches at every site.
type Sink interface {
	SetObs(rec *Recorder, src int32)
}

// ParseMask parses a comma-separated category list ("packet,mark,hop",
// or "all") into a Cat bitmask.
func ParseMask(s string) (Cat, error) {
	if s == "" || s == "all" {
		return CatAll, nil
	}
	var m Cat
	start := 0
	for i := 0; i <= len(s); i++ {
		if i != len(s) && s[i] != ',' {
			continue
		}
		name := s[start:i]
		start = i + 1
		switch name {
		case "":
		case "packet":
			m |= CatPacket
		case "mark":
			m |= CatMark
		case "route":
			m |= CatRoute
		case "link":
			m |= CatLink
		case "attack":
			m |= CatAttack
		case "cc":
			m |= CatCC
		case "shard":
			m |= CatShard
		case "hop":
			m |= CatHop
		case "all":
			m = CatAll
		default:
			return 0, fmt.Errorf("obs: unknown trace category %q (want packet,mark,route,link,attack,cc,shard,hop,all)", name)
		}
	}
	return m, nil
}
