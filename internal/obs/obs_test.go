package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestRingWraparound(t *testing.T) {
	r := NewRecorder(4, CatAll)
	for i := 0; i < 10; i++ {
		r.Emit(int64(i), EvEnqueue, 0, int32(i), 0, 0)
	}
	if got := r.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	if got := r.Overwritten(); got != 6 {
		t.Fatalf("Overwritten = %d, want 6", got)
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(snap))
	}
	for i, e := range snap {
		want := int64(6 + i) // oldest retained first
		if e.T != want || e.Flow != int32(want) {
			t.Fatalf("snap[%d] = {T:%d Flow:%d}, want T=Flow=%d", i, e.T, e.Flow, want)
		}
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRecorder(8, CatAll)
	r.Emit(1, EvAccel, 2, 3, 4, 5)
	r.Emit(2, EvBrake, 2, 3, 4, 5)
	if r.Overwritten() != 0 {
		t.Fatalf("Overwritten = %d, want 0", r.Overwritten())
	}
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Kind != EvAccel || snap[1].Kind != EvBrake {
		t.Fatalf("unexpected snapshot %+v", snap)
	}
}

func TestMaskFiltering(t *testing.T) {
	r := NewRecorder(8, CatMark)
	if r.Enabled(CatPacket) {
		t.Fatal("CatPacket should be disabled")
	}
	if !r.Enabled(CatMark) {
		t.Fatal("CatMark should be enabled")
	}
	r.Emit(1, EvEnqueue, 0, 0, 0, 0) // filtered by mask
	r.Emit(2, EvBrake, 0, 0, 0, 0)
	if got := r.Total(); got != 1 {
		t.Fatalf("Total = %d, want 1 (enqueue must be filtered)", got)
	}
	var nilRec *Recorder
	if nilRec.Enabled(CatAll) {
		t.Fatal("nil recorder must report disabled")
	}
	nilRec.Emit(1, EvBrake, 0, 0, 0, 0) // must not panic
	if nilRec.Snapshot() != nil || nilRec.Total() != 0 || nilRec.Cap() != 0 {
		t.Fatal("nil recorder accessors must be zero")
	}
}

func TestParseMask(t *testing.T) {
	m, err := ParseMask("packet,hop")
	if err != nil || m != CatPacket|CatHop {
		t.Fatalf("ParseMask(packet,hop) = %v, %v", m, err)
	}
	if m, err = ParseMask("all"); err != nil || m != CatAll {
		t.Fatalf("ParseMask(all) = %v, %v", m, err)
	}
	if m, err = ParseMask(""); err != nil || m != CatAll {
		t.Fatalf("ParseMask(\"\") = %v, %v", m, err)
	}
	if _, err = ParseMask("bogus"); err == nil {
		t.Fatal("ParseMask(bogus) should error")
	}
}

func TestKindCoverage(t *testing.T) {
	for k := Kind(1); k < kindCount; k++ {
		if kindInfo[k].name == "" {
			t.Errorf("kind %d has no name", k)
		}
		if kindInfo[k].cat == 0 {
			t.Errorf("kind %d (%s) has no category", k, k)
		}
	}
}

func TestDumps(t *testing.T) {
	r := NewRecorder(4, CatAll)
	r.Emit(100, EvHop, 7, 3, 42, 0)
	r.Emit(200, EvQdiscDrop, 1, 3, 0, 0)

	var jb strings.Builder
	if err := r.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	wantJSON := `{"t":100,"kind":"hop","src":7,"flow":3,"a":42,"b":0}` + "\n" +
		`{"t":200,"kind":"qdisc_drop","src":1,"flow":3,"a":0,"b":0}` + "\n"
	if jb.String() != wantJSON {
		t.Fatalf("JSONL:\n%s\nwant:\n%s", jb.String(), wantJSON)
	}

	var cb strings.Builder
	if err := r.WriteColumns(&cb); err != nil {
		t.Fatal(err)
	}
	wantCSV := "t,kind,src,flow,a,b\n100,hop,7,3,42,0\n200,qdisc_drop,1,3,0,0\n"
	if cb.String() != wantCSV {
		t.Fatalf("columns:\n%s\nwant:\n%s", cb.String(), wantCSV)
	}
}

// TestRecorderConcurrent exercises Emit/Snapshot/SetMask under -race.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(64, CatAll)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Emit(int64(i), EvEnqueue, int32(w), int32(i), 0, 0)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = r.Snapshot()
			r.SetMask(CatAll)
		}
	}()
	wg.Wait()
	if got := r.Total(); got != 4000 {
		t.Fatalf("Total = %d, want 4000", got)
	}
}

// TestRegistryConcurrent checks snapshot consistency while writers are
// racing: every observed value must be a multiple of 3 because the
// writer always adds 3 in one atomic op.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const writers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter(fmt.Sprintf(`abc_test_total{w="%d"}`, w))
			g := reg.Gauge(fmt.Sprintf(`abc_test_gauge{w="%d"}`, w))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Add(3)
				g.Set(float64(i))
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		for _, s := range reg.Snapshot() {
			if s.IsCounter && int64(s.Value)%3 != 0 {
				t.Fatalf("torn counter read: %s = %v", s.Name, s.Value)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("abc_x_total")
	c2 := reg.Counter("abc_x_total")
	if c1 != c2 {
		t.Fatal("Counter must return the same handle for the same name")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter name as a gauge must panic")
		}
	}()
	reg.Gauge("abc_x_total")
}

// TestPromExpositionGolden locks the exposition format byte-for-byte.
func TestPromExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Help("abc_queue_pkts", "Instantaneous queue depth in packets.")
	reg.Help("abc_drops_total", "Packets dropped.")
	reg.Gauge(`abc_queue_pkts{edge="fwd0"}`).Set(17)
	reg.Gauge(`abc_queue_pkts{edge="rev0"}`).Set(2.5)
	reg.Counter(`abc_drops_total{edge="fwd0"}`).Add(5)
	reg.Gauge("abc_run_sim_seconds").Set(1.25)

	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP abc_drops_total Packets dropped.
# TYPE abc_drops_total counter
abc_drops_total{edge="fwd0"} 5
# HELP abc_queue_pkts Instantaneous queue depth in packets.
# TYPE abc_queue_pkts gauge
abc_queue_pkts{edge="fwd0"} 17
abc_queue_pkts{edge="rev0"} 2.5
# TYPE abc_run_sim_seconds gauge
abc_run_sim_seconds 1.25
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func BenchmarkEmit(b *testing.B) {
	r := NewRecorder(1<<16, CatAll)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Emit(int64(i), EvHop, 1, 2, 3, 4)
	}
}

func BenchmarkEmitDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Enabled(CatHop) {
			r.Emit(int64(i), EvHop, 1, 2, 3, 4)
		}
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("abc_bench_total")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
