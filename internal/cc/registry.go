// Scheme registry: congestion-control algorithms self-register under the
// name the paper's evaluation uses, together with the bottleneck
// discipline they are paired with. The experiment harness resolves both
// through this registry instead of a hard-coded switch, so adding a scheme
// is a Register call in its own package rather than an edit to the
// harness.
package cc

import (
	"fmt"
	"sort"
)

// Scheme is one registered congestion-control scheme.
type Scheme struct {
	// Name is the registry key ("ABC", "Cubic+Codel", ...).
	Name string
	// New constructs a fresh algorithm instance for one flow.
	New func() Algorithm
	// Qdisc names the bottleneck discipline the paper's evaluation pairs
	// with the scheme ("" means droptail). The harness uses it for
	// "auto" qdisc resolution.
	Qdisc string
}

var schemes = map[string]Scheme{}

// Register installs a scheme. It panics on duplicates or on a nil
// constructor so registration bugs surface at startup.
func Register(s Scheme) {
	if s.Name == "" || s.New == nil {
		panic("cc: Register with empty name or nil constructor")
	}
	if _, dup := schemes[s.Name]; dup {
		panic(fmt.Sprintf("cc: duplicate Register(%q)", s.Name))
	}
	schemes[s.Name] = s
}

// New constructs a fresh algorithm for the named scheme.
func New(name string) (Algorithm, error) {
	s, ok := schemes[name]
	if !ok {
		return nil, fmt.Errorf("cc: unknown scheme %q (registered: %v)", name, SchemeNames())
	}
	return s.New(), nil
}

// QdiscFor returns the bottleneck discipline kind paired with the scheme,
// defaulting to droptail for unknown or unpaired schemes.
func QdiscFor(name string) string {
	if s, ok := schemes[name]; ok && s.Qdisc != "" {
		return s.Qdisc
	}
	return "droptail"
}

// SchemeNames returns the registered scheme names, sorted.
func SchemeNames() []string {
	out := make([]string, 0, len(schemes))
	for n := range schemes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// init registers the schemes this package itself provides. ABC and the
// explicit baselines register from their own packages.
func init() {
	Register(Scheme{Name: "Cubic", New: func() Algorithm { return NewCubic() }})
	Register(Scheme{Name: "Cubic+Codel", New: func() Algorithm { return NewCubic() }, Qdisc: "codel"})
	Register(Scheme{Name: "Cubic+PIE", New: func() Algorithm { return NewCubic() }, Qdisc: "pie"})
	Register(Scheme{Name: "Reno", New: func() Algorithm { return NewReno() }})
	Register(Scheme{Name: "Vegas", New: func() Algorithm { return NewVegas() }})
	Register(Scheme{Name: "Copa", New: func() Algorithm { return NewCopa() }})
	Register(Scheme{Name: "BBR", New: func() Algorithm { return NewBBR() }})
	Register(Scheme{Name: "PCC", New: func() Algorithm { return NewVivace() }})
	Register(Scheme{Name: "Sprout", New: func() Algorithm { return NewSprout() }})
	Register(Scheme{Name: "Verus", New: func() Algorithm { return NewVerus() }})
}
