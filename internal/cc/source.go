// Data sources: backlogged, rate-limited (application-limited flows,
// §6.6), on-off (Fig. 11 cross traffic) and fixed-size (Fig. 12 short
// flows).
package cc

import "abc/internal/sim"

// Backlogged always has data; equivalent to a nil Source.
type Backlogged struct{}

// Available implements Source.
func (Backlogged) Available(sim.Time) bool { return true }

// OnSend implements Source.
func (Backlogged) OnSend(sim.Time, int) {}

// Done implements Source.
func (Backlogged) Done() bool { return false }

// RateLimited releases data at a fixed application rate via a token
// bucket, modelling the paper's application-limited flows that "send
// traffic at an aggregate of 1 Mbit/s" (Fig. 13).
type RateLimited struct {
	// Bps is the application data rate in bits/sec.
	Bps float64
	// Burst caps accumulated credit in bytes (default 2 packets).
	Burst float64

	credit float64
	lastAt sim.Time
	inited bool
}

// NewRateLimited returns a source producing bps of application data.
func NewRateLimited(bps float64) *RateLimited {
	return &RateLimited{Bps: bps, Burst: 3000}
}

func (r *RateLimited) refill(now sim.Time) {
	if !r.inited {
		r.inited = true
		r.lastAt = now
		return
	}
	r.credit += r.Bps / 8 * (now - r.lastAt).Seconds()
	if r.credit > r.Burst {
		r.credit = r.Burst
	}
	r.lastAt = now
}

// Available implements Source.
func (r *RateLimited) Available(now sim.Time) bool {
	r.refill(now)
	return r.credit >= 1 // a packet may be sent once any credit exists
}

// OnSend implements Source.
func (r *RateLimited) OnSend(now sim.Time, n int) {
	r.refill(now)
	r.credit -= float64(n)
}

// Done implements Source.
func (r *RateLimited) Done() bool { return false }

// OnOff alternates between sending and silent periods (cross traffic in
// Fig. 11's yellow/grey regions).
type OnOff struct {
	// Schedule lists alternating (on, off) durations from time Start;
	// beyond the schedule the source repeats the last state forever.
	Start  sim.Time
	OnFor  sim.Time
	OffFor sim.Time
}

// Available implements Source.
func (o *OnOff) Available(now sim.Time) bool {
	if now < o.Start {
		return false
	}
	cycle := o.OnFor + o.OffFor
	if cycle <= 0 {
		return true
	}
	phase := (now - o.Start) % cycle
	return phase < o.OnFor
}

// OnSend implements Source.
func (o *OnOff) OnSend(sim.Time, int) {}

// Done implements Source.
func (o *OnOff) Done() bool { return false }

// Fixed carries a finite number of bytes then completes (short flows).
type Fixed struct {
	Remaining int
}

// NewFixed returns a source with n bytes to send.
func NewFixed(n int) *Fixed { return &Fixed{Remaining: n} }

// Available implements Source.
func (f *Fixed) Available(sim.Time) bool { return f.Remaining > 0 }

// OnSend implements Source.
func (f *Fixed) OnSend(_ sim.Time, n int) { f.Remaining -= n }

// Done implements Source.
func (f *Fixed) Done() bool { return f.Remaining <= 0 }

// Gated is a source that an experiment can switch on and off explicitly.
type Gated struct{ On bool }

// Available implements Source.
func (g *Gated) Available(sim.Time) bool { return g.On }

// OnSend implements Source.
func (g *Gated) OnSend(sim.Time, int) {}

// Done implements Source.
func (g *Gated) Done() bool { return false }
