// Sprout (Winstein, Sivaraman, Balakrishnan, NSDI 2013), simplified: a
// conservative forecast of link throughput caps how much data may be in
// flight so that queuing delay stays under a target with high probability.
// The paper finds Sprout too conservative on its traces (utilization 0.55
// of ABC's); this model keeps that character.
package cc

import (
	"math"

	"abc/internal/packet"
	"abc/internal/sim"
)

// Sprout implements the simplified forecast controller.
type Sprout struct {
	// TargetDelay is the queuing-delay budget (Sprout uses 100 ms).
	TargetDelay sim.Time
	// Conservatism is how many standard deviations below the mean the
	// forecast sits (Sprout's 5th-percentile forecast ≈ 1.64σ).
	Conservatism float64

	// Delivery-rate statistics over a short horizon.
	ewmaRate float64 // bytes/sec
	ewmaVar  float64
	lastAck  sim.Time
	ackedAcc float64

	srtt, minRTT sim.Time
	cwnd         float64
}

// NewSprout returns a simplified Sprout sender.
func NewSprout() *Sprout {
	return &Sprout{
		TargetDelay:  100 * sim.Millisecond,
		Conservatism: 1.64,
		cwnd:         4,
	}
}

// Name implements Algorithm.
func (s *Sprout) Name() string { return "Sprout" }

// OnAck implements Algorithm.
func (s *Sprout) OnAck(now sim.Time, e *Endpoint, info AckInfo) {
	if info.AckedBytes == 0 {
		return
	}
	s.srtt, s.minRTT = e.SRTT(), e.MinRTT()
	s.ackedAcc += float64(info.AckedBytes)
	if s.lastAck == 0 {
		s.lastAck = now
		return
	}
	// Update rate statistics every 20 ms tick (Sprout's tick).
	const tick = 20 * sim.Millisecond
	if now-s.lastAck < tick {
		return
	}
	rate := s.ackedAcc / (now - s.lastAck).Seconds()
	s.ackedAcc = 0
	s.lastAck = now
	if s.ewmaRate == 0 {
		s.ewmaRate = rate
	}
	dev := rate - s.ewmaRate
	s.ewmaRate += 0.2 * dev
	s.ewmaVar = 0.8*s.ewmaVar + 0.2*dev*dev

	// While the path shows little queuing we are the limiter, not the
	// link: the delivery-rate statistics then reflect our own window,
	// so probe upward instead of trusting the forecast (real Sprout's
	// Bayesian model serves the same purpose by keeping probability
	// mass above the observed rate when the queue is empty).
	if s.srtt > 0 && s.minRTT > 0 && s.srtt < s.minRTT+s.TargetDelay/2 {
		s.cwnd += 2
		return
	}
	// Forecast: the conservative rate sustained for the delay budget;
	// floored at half the mean so one variance spike cannot zero it.
	forecast := s.ewmaRate - s.Conservatism*math.Sqrt(s.ewmaVar)
	if floor := 0.5 * s.ewmaRate; forecast < floor {
		forecast = floor
	}
	s.cwnd = forecast * s.TargetDelay.Seconds() / packet.MTU
	if s.cwnd < 2 {
		s.cwnd = 2
	}
}

// OnCongestion implements Algorithm.
func (s *Sprout) OnCongestion(now sim.Time, e *Endpoint) {
	s.cwnd /= 2
	if s.cwnd < 2 {
		s.cwnd = 2
	}
}

// OnRTO implements Algorithm.
func (s *Sprout) OnRTO(now sim.Time, e *Endpoint) { s.cwnd = 2 }

// CwndPkts implements Algorithm.
func (s *Sprout) CwndPkts() float64 { return s.cwnd }
