// TCP NewReno-style AIMD, the simplest loss-based baseline (§2 cites
// NewReno among the schemes that fill buffers on wireless paths).
package cc

import "abc/internal/sim"

// Reno implements slow start plus AIMD congestion avoidance with a 0.5
// multiplicative decrease.
type Reno struct {
	cwnd     float64
	ssthresh float64
}

// NewReno returns a Reno sender with the conventional initial window.
func NewReno() *Reno { return &Reno{cwnd: 4, ssthresh: 1e9} }

// Name implements Algorithm.
func (r *Reno) Name() string { return "Reno" }

// OnAck implements Algorithm.
func (r *Reno) OnAck(now sim.Time, e *Endpoint, info AckInfo) {
	if info.AckedBytes == 0 {
		return
	}
	if r.cwnd < r.ssthresh {
		r.cwnd++
	} else {
		r.cwnd += 1 / r.cwnd
	}
}

// OnCongestion implements Algorithm.
func (r *Reno) OnCongestion(now sim.Time, e *Endpoint) {
	r.ssthresh = r.cwnd / 2
	if r.ssthresh < 2 {
		r.ssthresh = 2
	}
	r.cwnd = r.ssthresh
}

// OnRTO implements Algorithm.
func (r *Reno) OnRTO(now sim.Time, e *Endpoint) {
	r.ssthresh = r.cwnd / 2
	if r.ssthresh < 2 {
		r.ssthresh = 2
	}
	r.cwnd = 1
}

// CwndPkts implements Algorithm.
func (r *Reno) CwndPkts() float64 { return r.cwnd }
