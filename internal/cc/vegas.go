// TCP Vegas (Brakmo & Peterson 1994), the delay-based baseline in the
// paper's Wi-Fi comparison (Fig. 10).
package cc

import "abc/internal/sim"

// Vegas keeps between Alpha and Beta packets queued at the bottleneck,
// estimated from the gap between expected and actual throughput.
type Vegas struct {
	// Alpha and Beta are the queue-occupancy bounds in packets
	// (conventional values 2 and 4).
	Alpha, Beta float64
	// Gamma bounds slow-start's queue build-up.
	Gamma float64

	cwnd      float64
	ssthresh  float64
	slowStart bool
	lastAdj   sim.Time
}

// NewVegas returns a Vegas sender with conventional parameters.
func NewVegas() *Vegas {
	return &Vegas{Alpha: 2, Beta: 4, Gamma: 1, cwnd: 4, ssthresh: 1e9, slowStart: true}
}

// Name implements Algorithm.
func (v *Vegas) Name() string { return "Vegas" }

// OnAck implements Algorithm.
func (v *Vegas) OnAck(now sim.Time, e *Endpoint, info AckInfo) {
	if info.AckedBytes == 0 || !info.RTTValid {
		return
	}
	base := e.MinRTT()
	rtt := info.RTT
	if base == 0 || rtt == 0 {
		return
	}
	// diff = (expected - actual) * baseRTT, in packets queued.
	diff := v.cwnd * float64(rtt-base) / float64(rtt)

	if v.slowStart {
		if diff > v.Gamma {
			v.slowStart = false
			v.cwnd -= diff / 2
			if v.cwnd < 2 {
				v.cwnd = 2
			}
		} else if now-v.lastAdj >= rtt {
			// Vegas slow start doubles every other RTT.
			v.cwnd *= 2
			v.lastAdj = now
		}
		return
	}
	// Congestion avoidance: adjust once per RTT.
	if now-v.lastAdj < rtt {
		return
	}
	v.lastAdj = now
	switch {
	case diff < v.Alpha:
		v.cwnd++
	case diff > v.Beta:
		v.cwnd--
	}
	if v.cwnd < 2 {
		v.cwnd = 2
	}
}

// OnCongestion implements Algorithm.
func (v *Vegas) OnCongestion(now sim.Time, e *Endpoint) {
	v.slowStart = false
	v.cwnd *= 0.75
	if v.cwnd < 2 {
		v.cwnd = 2
	}
}

// OnRTO implements Algorithm.
func (v *Vegas) OnRTO(now sim.Time, e *Endpoint) {
	v.slowStart = false
	v.cwnd = 2
}

// CwndPkts implements Algorithm.
func (v *Vegas) CwndPkts() float64 { return v.cwnd }
