package cc

import (
	"testing"

	"abc/internal/packet"
	"abc/internal/sim"
)

// ack fabricates an AckInfo with a valid RTT sample.
func ack(rtt sim.Time) AckInfo {
	return AckInfo{
		Ack:        &packet.Packet{IsAck: true},
		RTT:        rtt,
		RTTValid:   true,
		AckedBytes: packet.MTU,
		Inflight:   10,
	}
}

// fakeEndpoint builds an endpoint carrying RTT state without a network.
func fakeEndpoint(srtt, minRTT sim.Time) *Endpoint {
	e := NewEndpoint(sim.New(1), 0, packet.NodeFunc(func(*packet.Packet) {}), &fixedWindow{w: 1})
	e.updateRTT(minRTT)
	for i := 0; i < 20; i++ {
		e.updateRTT(srtt)
	}
	return e
}

func TestRenoAIMD(t *testing.T) {
	r := NewReno()
	e := fakeEndpoint(100*sim.Millisecond, 100*sim.Millisecond)
	// Slow start: exponential.
	w0 := r.CwndPkts()
	for i := 0; i < 10; i++ {
		r.OnAck(0, e, ack(100*sim.Millisecond))
	}
	if r.CwndPkts() != w0+10 {
		t.Errorf("slow start: %v", r.CwndPkts())
	}
	r.OnCongestion(0, e)
	half := r.CwndPkts()
	if half >= w0+10 {
		t.Error("no multiplicative decrease")
	}
	// Congestion avoidance: ~1/w per ack.
	before := r.CwndPkts()
	r.OnAck(0, e, ack(100*sim.Millisecond))
	if d := r.CwndPkts() - before; d <= 0 || d > 1 {
		t.Errorf("CA increment = %v", d)
	}
	r.OnRTO(0, e)
	if r.CwndPkts() != 1 {
		t.Errorf("after RTO cwnd = %v", r.CwndPkts())
	}
}

func TestRenoIgnoresDupAcks(t *testing.T) {
	r := NewReno()
	e := fakeEndpoint(100*sim.Millisecond, 100*sim.Millisecond)
	w := r.CwndPkts()
	info := ack(100 * sim.Millisecond)
	info.AckedBytes = 0
	r.OnAck(0, e, info)
	if r.CwndPkts() != w {
		t.Error("window moved on a duplicate ACK")
	}
}

func TestCubicGrowthAndDecrease(t *testing.T) {
	c := NewCubic()
	e := fakeEndpoint(100*sim.Millisecond, 100*sim.Millisecond)
	now := sim.Time(0)
	// Slow start to 100 packets.
	for c.CwndPkts() < 100 {
		c.OnAck(now, e, ack(100*sim.Millisecond))
		now += sim.Millisecond
	}
	c.OnCongestion(now, e)
	w := c.CwndPkts()
	if w > 0.75*100 || w < 0.6*100 {
		t.Errorf("beta decrease to %v", w)
	}
	// After decrease the window regrows towards wMax (concave phase).
	for i := 0; i < 3000; i++ {
		now += 10 * sim.Millisecond
		c.OnAck(now, e, ack(100*sim.Millisecond))
	}
	if c.CwndPkts() < 95 {
		t.Errorf("cubic failed to regrow: %v", c.CwndPkts())
	}
}

func TestCubicSetCwndClamps(t *testing.T) {
	c := NewCubic()
	c.SetCwnd(0.1)
	if c.Cwnd() != 1 {
		t.Errorf("SetCwnd floor: %v", c.Cwnd())
	}
}

func TestVegasHoldsSmallQueue(t *testing.T) {
	v := NewVegas()
	e := fakeEndpoint(100*sim.Millisecond, 100*sim.Millisecond)
	now := sim.Time(0)
	// RTT == baseRTT: no queue, Vegas should grow.
	for i := 0; i < 400; i++ {
		now += 10 * sim.Millisecond
		v.OnAck(now, e, ack(100*sim.Millisecond))
	}
	grown := v.CwndPkts()
	if grown <= 4 {
		t.Errorf("no growth at empty queue: %v", grown)
	}
	// Large RTT inflation: Vegas must back off.
	for i := 0; i < 400; i++ {
		now += 10 * sim.Millisecond
		v.OnAck(now, e, ack(200*sim.Millisecond))
	}
	if v.CwndPkts() >= grown {
		t.Errorf("no decrease under queuing: %v >= %v", v.CwndPkts(), grown)
	}
}

func TestBBRTracksDeliveryRate(t *testing.T) {
	b := NewBBR()
	e := fakeEndpoint(100*sim.Millisecond, 100*sim.Millisecond)
	now := sim.Time(0)
	// Feed ~12 Mbit/s of ACKs for 3 seconds.
	gap := sim.FromSeconds(float64(packet.MTU*8) / 12e6)
	for now < 3*sim.Second {
		now += gap
		b.OnAck(now, e, ack(100*sim.Millisecond))
	}
	rate, ok := b.PacingRate(now)
	if !ok {
		t.Fatal("no pacing rate")
	}
	// Post-startup the pacing rate should be within a gain factor of
	// the true rate.
	if rate < 6e6 || rate > 40e6 {
		t.Errorf("pacing rate %.1f Mbit/s for a 12 Mbit/s link", rate/1e6)
	}
	if b.CwndPkts() < 4 {
		t.Errorf("cwnd %v below floor", b.CwndPkts())
	}
}

func TestCopaTargetRate(t *testing.T) {
	c := NewCopa()
	e := fakeEndpoint(100*sim.Millisecond, 100*sim.Millisecond)
	now := sim.Time(0)
	// Mild queuing (5 ms): the 1/(δ·dq) target is high, Copa grows.
	for i := 0; i < 400; i++ {
		now += 10 * sim.Millisecond
		c.OnAck(now, e, ack(105*sim.Millisecond))
	}
	grown := c.CwndPkts()
	if grown <= 4 {
		t.Errorf("no growth: %v", grown)
	}
	// Heavy queuing (300 ms): the target collapses, Copa must shrink.
	for i := 0; i < 2000; i++ {
		now += 10 * sim.Millisecond
		c.OnAck(now, e, ack(400*sim.Millisecond))
	}
	if c.CwndPkts() >= grown/2 {
		t.Errorf("no decrease under queuing: %v (was %v)", c.CwndPkts(), grown)
	}
}

func TestSproutProbesWhenUnqueued(t *testing.T) {
	s := NewSprout()
	e := fakeEndpoint(100*sim.Millisecond, 100*sim.Millisecond)
	now := sim.Time(0)
	w0 := s.CwndPkts()
	gap := sim.FromSeconds(float64(packet.MTU*8) / 10e6)
	for now < sim.Second {
		now += gap
		s.OnAck(now, e, ack(100*sim.Millisecond))
	}
	// RTT at the propagation floor: Sprout is self-limited and probes.
	if s.CwndPkts() <= w0 {
		t.Errorf("no probing at empty queue: %v", s.CwndPkts())
	}
}

func TestSproutForecastConservative(t *testing.T) {
	s := NewSprout()
	// Standing queue (srtt 100 ms over a 40 ms floor, above half the
	// 100 ms delay budget): the conservative forecast governs.
	e := fakeEndpoint(140*sim.Millisecond, 40*sim.Millisecond)
	now := sim.Time(0)
	gap := sim.FromSeconds(float64(packet.MTU*8) / 10e6)
	for now < 2*sim.Second {
		now += gap
		s.OnAck(now, e, ack(140*sim.Millisecond))
	}
	// 10 Mbit/s steady: the 100 ms budget allows ~83 packets; the
	// conservative forecast must be at or below that.
	w := s.CwndPkts()
	if w < 2 || w > 90 {
		t.Errorf("sprout window %v outside conservative range", w)
	}
}

func TestVerusBacksOffAboveSetpoint(t *testing.T) {
	v := NewVerus()
	e := fakeEndpoint(100*sim.Millisecond, 50*sim.Millisecond)
	now := sim.Time(0)
	for i := 0; i < 100; i++ {
		now += 10 * sim.Millisecond
		v.OnAck(now, e, ack(100*sim.Millisecond)) // below 4x setpoint
	}
	grown := v.CwndPkts()
	if grown <= 4 {
		t.Errorf("no growth below setpoint: %v", grown)
	}
	for i := 0; i < 200; i++ {
		now += 10 * sim.Millisecond
		v.OnAck(now, e, ack(400*sim.Millisecond)) // above 4x50ms=200ms
	}
	if v.CwndPkts() >= grown {
		t.Errorf("no backoff above setpoint: %v", v.CwndPkts())
	}
}

func TestVivaceRespondsToUtility(t *testing.T) {
	v := NewVivace()
	e := fakeEndpoint(50*sim.Millisecond, 50*sim.Millisecond)
	now := sim.Time(0)
	// Feed plentiful ACKs at constant RTT: utility rises with rate, so
	// the rate should climb.
	r0, _ := v.PacingRate(now)
	for i := 0; i < 5000; i++ {
		now += 2 * sim.Millisecond
		v.OnAck(now, e, ack(50*sim.Millisecond))
	}
	r1, _ := v.PacingRate(now)
	if r1 <= r0 {
		t.Errorf("rate did not climb under good utility: %.1f -> %.1f Mbit/s", r0/1e6, r1/1e6)
	}
}

func TestAlgorithmNames(t *testing.T) {
	names := map[string]Algorithm{
		"Reno": NewReno(), "Cubic": NewCubic(), "Vegas": NewVegas(),
		"BBR": NewBBR(), "Copa": NewCopa(), "PCC": NewVivace(),
		"Sprout": NewSprout(), "Verus": NewVerus(),
	}
	for want, alg := range names {
		if alg.Name() != want {
			t.Errorf("Name() = %q, want %q", alg.Name(), want)
		}
	}
}
