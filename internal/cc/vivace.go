// PCC Vivace (Dong et al., NSDI 2018), simplified: rate-based online
// gradient ascent on the Vivace-latency utility over monitor intervals.
// On rapidly varying links the RTT-gradient term misfires and Vivace runs
// hot, matching the high-throughput/high-delay corner the paper reports
// for PCC (Fig. 8, Fig. 9).
package cc

import (
	"math"

	"abc/internal/packet"
	"abc/internal/sim"
)

// vivacePhase is one monitor interval's accounting.
type vivacePhase struct {
	rate      float64 // bits/sec tried
	start     sim.Time
	acked     float64 // bytes
	lost      float64 // packets
	rttFirst  sim.Time
	rttLast   sim.Time
	haveFirst bool
}

// Vivace implements simplified PCC Vivace-latency.
type Vivace struct {
	// Exponent, LatCoeff and LossCoeff shape the utility
	// U = rate^Exponent − LatCoeff·rate·(dRTT/dt) − LossCoeff·rate·loss.
	Exponent  float64
	LatCoeff  float64
	LossCoeff float64
	// Epsilon is the probe amplitude.
	Epsilon float64

	rate     float64 // current base rate, bits/sec
	probeHi  bool    // which direction this MI probes
	cur      vivacePhase
	prevUtil float64
	prevRate float64
	havePrev bool
	step     float64
}

// NewVivace returns a Vivace-latency sender.
func NewVivace() *Vivace {
	return &Vivace{
		Exponent:  0.9,
		LatCoeff:  900,
		LossCoeff: 11.35,
		Epsilon:   0.05,
		rate:      2e6,
		step:      1,
	}
}

// Name implements Algorithm.
func (v *Vivace) Name() string { return "PCC" }

// utility evaluates the Vivace-latency utility for a finished interval.
func (v *Vivace) utility(ph *vivacePhase, dur sim.Time) float64 {
	if dur <= 0 {
		return 0
	}
	// Attribute the interval's rate, discounted by losses, rather than
	// the raw ACK arrival rate: ACKs for this interval's packets land an
	// RTT later, and judging the probe by stale arrivals zeroes the
	// gradient. (Vivace aligns monitor intervals with RTT for the same
	// reason.)
	mbps := ph.rate / 1e6
	if achieved := ph.acked * 8 / dur.Seconds() / 1e6; achieved > 0 && achieved < mbps/2 {
		// Persistently starved interval: trust the measurement.
		mbps = achieved
	}
	lossRate := 0.0
	sentPkts := ph.acked/packet.MTU + ph.lost
	if sentPkts > 0 {
		lossRate = ph.lost / sentPkts
	}
	rttGrad := 0.0
	if ph.haveFirst && ph.rttLast > 0 && dur > 0 {
		rttGrad = (ph.rttLast - ph.rttFirst).Seconds() / dur.Seconds()
	}
	if rttGrad < 0 {
		rttGrad = 0
	}
	return math.Pow(mbps, v.Exponent) - v.LatCoeff*mbps*rttGrad/1000 - v.LossCoeff*mbps*lossRate
}

// OnAck implements Algorithm.
func (v *Vivace) OnAck(now sim.Time, e *Endpoint, info AckInfo) {
	if v.cur.start == 0 {
		v.startPhase(now)
	}
	v.cur.acked += float64(info.AckedBytes)
	if info.RTTValid {
		if !v.cur.haveFirst {
			v.cur.rttFirst = info.RTT
			v.cur.haveFirst = true
		}
		v.cur.rttLast = info.RTT
	}
	// Close the monitor interval after ~1 RTT (min 10 ms).
	mi := e.SRTT()
	if mi < 10*sim.Millisecond {
		mi = 10 * sim.Millisecond
	}
	if now-v.cur.start >= mi {
		v.closePhase(now)
	}
}

// startPhase begins a monitor interval at the probed rate.
func (v *Vivace) startPhase(now sim.Time) {
	v.cur = vivacePhase{start: now}
	if v.probeHi {
		v.cur.rate = v.rate * (1 + v.Epsilon)
	} else {
		v.cur.rate = v.rate * (1 - v.Epsilon)
	}
}

// closePhase evaluates utility and takes a gradient step every two MIs.
func (v *Vivace) closePhase(now sim.Time) {
	util := v.utility(&v.cur, now-v.cur.start)
	if v.havePrev {
		// Gradient over the two probed rates.
		dRate := (v.cur.rate - v.prevRate) / 1e6
		if dRate != 0 {
			grad := (util - v.prevUtil) / dRate
			delta := v.step * grad * 1e6 * 0.05
			max := v.rate * 0.3
			if delta > max {
				delta = max
			}
			if delta < -max {
				delta = -max
			}
			v.rate += delta
			if v.rate < 0.2e6 {
				v.rate = 0.2e6
			}
			// Confidence amplification on consistent direction.
			if (grad > 0) == v.probeHi {
				v.step *= 1.2
				if v.step > 8 {
					v.step = 8
				}
			} else {
				v.step = 1
			}
		}
		v.havePrev = false
	} else {
		v.prevUtil = util
		v.prevRate = v.cur.rate
		v.havePrev = true
	}
	v.probeHi = !v.probeHi
	v.startPhase(now)
}

// OnCongestion implements Algorithm. Loss enters the utility, not a
// window backoff.
func (v *Vivace) OnCongestion(now sim.Time, e *Endpoint) { v.cur.lost++ }

// OnRTO implements Algorithm.
func (v *Vivace) OnRTO(now sim.Time, e *Endpoint) {
	v.rate /= 2
	if v.rate < 0.2e6 {
		v.rate = 0.2e6
	}
}

// CwndPkts implements Algorithm: a generous cap so pacing dominates.
func (v *Vivace) CwndPkts() float64 {
	// Allow up to ~2x the rate's worth of data over a 200 ms horizon.
	return math.Max(8, v.rate*0.4/8/packet.MTU)
}

// PacingRate implements Pacer.
func (v *Vivace) PacingRate(now sim.Time) (float64, bool) {
	if v.cur.rate > 0 {
		return v.cur.rate, true
	}
	return v.rate, true
}
