// BBR (Cardwell et al. 2016), simplified to the elements that determine
// its behaviour on time-varying wireless links: windowed-max bandwidth and
// windowed-min RTT filters, startup/drain, the ProbeBW pacing-gain cycle
// and periodic ProbeRTT. The paper (§2, fn. 1) observes that BBR's pulsed
// probing overshoots on variable links, producing queuing — the same
// behaviour this model reproduces.
package cc

import (
	"abc/internal/packet"
	"abc/internal/sim"
)

// bwSample is a timestamped delivery-rate measurement.
type bwSample struct {
	at  sim.Time
	bps float64
}

// maxFilter keeps the maximum over a sliding time window.
type maxFilter struct {
	window  sim.Time
	samples []bwSample
}

func (f *maxFilter) add(now sim.Time, v float64) {
	f.samples = append(f.samples, bwSample{now, v})
	cut := 0
	for cut < len(f.samples) && f.samples[cut].at < now-f.window {
		cut++
	}
	f.samples = f.samples[cut:]
}

func (f *maxFilter) max() float64 {
	var m float64
	for _, s := range f.samples {
		if s.bps > m {
			m = s.bps
		}
	}
	return m
}

// BBR is the simplified BBR v1 model.
type BBR struct {
	state       int // 0 startup, 1 drain, 2 probeBW, 3 probeRTT
	btlBw       maxFilter
	fullBwCount int
	fullBw      float64

	cycleIndex  int
	cycleStart  sim.Time
	probeRTTEnd sim.Time
	lastProbe   sim.Time

	// delivery-rate estimation
	lastAckTime  sim.Time
	ackedInRound float64

	minRTT  sim.Time // cached from the endpoint for CwndPkts
	pktSize float64
}

var bbrGains = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// NewBBR returns a simplified BBR sender.
func NewBBR() *BBR {
	return &BBR{
		btlBw:   maxFilter{window: 10 * sim.Second},
		pktSize: packet.MTU,
	}
}

// Name implements Algorithm.
func (b *BBR) Name() string { return "BBR" }

// bdpPkts returns the estimated bandwidth-delay product in packets.
func (b *BBR) bdpPkts(e *Endpoint) float64 {
	bw := b.btlBw.max()
	rtt := e.MinRTT()
	if bw <= 0 || rtt <= 0 {
		return 4
	}
	return bw * rtt.Seconds() / 8 / b.pktSize
}

// OnAck implements Algorithm.
func (b *BBR) OnAck(now sim.Time, e *Endpoint, info AckInfo) {
	if info.AckedBytes == 0 {
		return
	}
	b.minRTT = e.MinRTT()
	// Delivery-rate sample: bytes acked over the inter-ACK gap gives a
	// noisy instantaneous rate; smooth over the last SRTT by counting
	// bytes per round.
	b.ackedInRound += float64(info.AckedBytes)
	rtt := e.SRTT()
	if rtt <= 0 {
		rtt = 100 * sim.Millisecond
	}
	if b.lastAckTime == 0 {
		b.lastAckTime = now
	}
	if now-b.lastAckTime >= rtt/4 {
		bps := b.ackedInRound * 8 / (now - b.lastAckTime).Seconds()
		b.btlBw.add(now, bps)
		b.ackedInRound = 0
		b.lastAckTime = now
	}

	switch b.state {
	case 0: // startup: exit when bandwidth stops growing 25% per round
		bw := b.btlBw.max()
		if bw > b.fullBw*1.25 {
			b.fullBw = bw
			b.fullBwCount = 0
		} else if bw > 0 {
			b.fullBwCount++
			if b.fullBwCount >= 3 {
				b.state = 1
			}
		}
	case 1: // drain: until inflight falls to the BDP
		if float64(info.Inflight) <= b.bdpPkts(e) {
			b.state = 2
			b.cycleStart = now
			b.cycleIndex = 0
			b.lastProbe = now
		}
	case 2: // probeBW: rotate the gain cycle each min RTT
		minRTT := e.MinRTT()
		if minRTT <= 0 {
			minRTT = 100 * sim.Millisecond
		}
		if now-b.cycleStart > minRTT {
			b.cycleStart = now
			b.cycleIndex = (b.cycleIndex + 1) % len(bbrGains)
		}
		if now-b.lastProbe > 10*sim.Second {
			b.state = 3
			b.probeRTTEnd = now + 200*sim.Millisecond
		}
	case 3: // probeRTT: small window for 200 ms
		if now > b.probeRTTEnd {
			b.state = 2
			b.lastProbe = now
			b.cycleStart = now
		}
	}
}

// OnCongestion implements Algorithm. BBR v1 ignores individual losses.
func (b *BBR) OnCongestion(now sim.Time, e *Endpoint) {}

// OnRTO implements Algorithm.
func (b *BBR) OnRTO(now sim.Time, e *Endpoint) {
	// Restart bandwidth discovery after a timeout.
	b.fullBw = 0
	b.fullBwCount = 0
	b.state = 0
}

// CwndPkts implements Algorithm.
func (b *BBR) CwndPkts() float64 {
	switch b.state {
	case 0:
		return 2.885 * b.lastBDP()
	case 3:
		return 4
	default:
		return 2 * b.lastBDP()
	}
}

// lastBDP is the BDP in packets from the cached filter state; a floor
// keeps startup moving before any samples exist.
func (b *BBR) lastBDP() float64 {
	bw := b.btlBw.max()
	rtt := b.minRTT
	if bw <= 0 || rtt <= 0 {
		return 4
	}
	bdp := bw * rtt.Seconds() / 8 / b.pktSize
	if bdp < 4 {
		bdp = 4
	}
	return bdp
}

// PacingRate implements Pacer.
func (b *BBR) PacingRate(now sim.Time) (float64, bool) {
	bw := b.btlBw.max()
	if bw <= 0 {
		return 10e6 * 2.885, true // startup probing floor
	}
	gain := 1.0
	switch b.state {
	case 0:
		gain = 2.885
	case 1:
		gain = 1 / 2.885
	case 2:
		gain = bbrGains[b.cycleIndex]
	case 3:
		gain = 0.5
	}
	return bw * gain, true
}
