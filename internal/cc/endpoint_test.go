package cc

import (
	"testing"

	"abc/internal/packet"
	"abc/internal/sim"
)

// lossyPipe connects an endpoint to a receiver-like echo with a fixed
// one-way delay, optionally dropping chosen data sequence numbers once.
type lossyPipe struct {
	s       *sim.Simulator
	ep      *Endpoint
	delay   sim.Time
	dropSet map[int64]bool
	// Delivered counts data packets that survived.
	Delivered int64
	cum       int64
	pending   map[int64]bool
}

func newLossyPipe(s *sim.Simulator, delay sim.Time) *lossyPipe {
	return &lossyPipe{s: s, delay: delay, dropSet: map[int64]bool{}, pending: map[int64]bool{}}
}

// Recv implements packet.Node for data packets from the endpoint.
func (lp *lossyPipe) Recv(p *packet.Packet) {
	if lp.dropSet[p.Seq] && !p.Retx {
		delete(lp.dropSet, p.Seq) // drop once
		return
	}
	lp.s.After(lp.delay, func() {
		lp.Delivered++
		// Cumulative-ack bookkeeping like a real receiver.
		if p.Seq == lp.cum {
			lp.cum++
			for lp.pending[lp.cum] {
				delete(lp.pending, lp.cum)
				lp.cum++
			}
		} else if p.Seq > lp.cum {
			lp.pending[p.Seq] = true
		}
		ack := packet.NewAck(p, lp.cum, lp.s.Now())
		lp.s.After(lp.delay, func() { lp.ep.Recv(ack) })
	})
}

// fixedWindow is a trivial Algorithm with a constant window.
type fixedWindow struct {
	w          float64
	congestion int
	rtos       int
}

func (f *fixedWindow) Name() string                       { return "fixed" }
func (f *fixedWindow) OnAck(sim.Time, *Endpoint, AckInfo) {}
func (f *fixedWindow) OnCongestion(sim.Time, *Endpoint)   { f.congestion++ }
func (f *fixedWindow) OnRTO(sim.Time, *Endpoint)          { f.rtos++ }
func (f *fixedWindow) CwndPkts() float64                  { return f.w }

func TestEndpointWindowLimitsInflight(t *testing.T) {
	s := sim.New(1)
	pipe := newLossyPipe(s, 20*sim.Millisecond)
	alg := &fixedWindow{w: 5}
	ep := NewEndpoint(s, 0, pipe, alg)
	pipe.ep = ep
	ep.Start()
	s.RunUntil(10 * sim.Millisecond) // before any ACK returns
	if got := ep.Inflight(); got != 5 {
		t.Errorf("inflight = %d, want 5", got)
	}
	s.RunUntil(2 * sim.Second)
	if ep.Inflight() > 5 {
		t.Errorf("inflight %d exceeded window", ep.Inflight())
	}
	if ep.LostPackets != 0 {
		t.Errorf("lost %d packets on a clean path", ep.LostPackets)
	}
}

func TestEndpointRTTEstimation(t *testing.T) {
	s := sim.New(1)
	pipe := newLossyPipe(s, 25*sim.Millisecond)
	ep := NewEndpoint(s, 0, pipe, &fixedWindow{w: 4})
	pipe.ep = ep
	ep.Start()
	s.RunUntil(3 * sim.Second)
	want := 50 * sim.Millisecond
	if d := ep.SRTT() - want; d < -sim.Millisecond || d > 5*sim.Millisecond {
		t.Errorf("srtt = %v, want ≈ %v", ep.SRTT(), want)
	}
	if ep.MinRTT() < want || ep.MinRTT() > want+sim.Millisecond {
		t.Errorf("minRTT = %v", ep.MinRTT())
	}
}

func TestEndpointFastRetransmit(t *testing.T) {
	s := sim.New(1)
	pipe := newLossyPipe(s, 20*sim.Millisecond)
	pipe.dropSet[7] = true
	alg := &fixedWindow{w: 10}
	ep := NewEndpoint(s, 0, pipe, alg)
	pipe.ep = ep
	ep.Start()
	s.RunUntil(3 * sim.Second)
	if ep.LostPackets != 1 {
		t.Errorf("lost = %d, want 1", ep.LostPackets)
	}
	if ep.RetxPackets != 1 {
		t.Errorf("retx = %d, want 1", ep.RetxPackets)
	}
	if alg.congestion != 1 {
		t.Errorf("congestion events = %d, want 1", alg.congestion)
	}
	if alg.rtos != 0 {
		t.Errorf("RTOs = %d, want 0 (dup-ack recovery)", alg.rtos)
	}
}

func TestEndpointCongestionEventPerWindow(t *testing.T) {
	s := sim.New(1)
	pipe := newLossyPipe(s, 20*sim.Millisecond)
	// Drop a burst within one window: one congestion event.
	pipe.dropSet[5] = true
	pipe.dropSet[6] = true
	pipe.dropSet[8] = true
	alg := &fixedWindow{w: 12}
	ep := NewEndpoint(s, 0, pipe, alg)
	pipe.ep = ep
	ep.Start()
	s.RunUntil(3 * sim.Second)
	if ep.LostPackets != 3 {
		t.Errorf("lost = %d, want 3", ep.LostPackets)
	}
	if alg.congestion != 1 {
		t.Errorf("congestion events = %d, want 1 for same-window losses", alg.congestion)
	}
}

func TestEndpointRTOOnBlackout(t *testing.T) {
	s := sim.New(1)
	// A pipe that swallows everything after the first 5 packets.
	swallowAfter := int64(5)
	pipe := newLossyPipe(s, 20*sim.Millisecond)
	alg := &fixedWindow{w: 8}
	ep := NewEndpoint(s, 0, pipe, alg)
	pipe.ep = ep
	// Wrap: drop all data with seq >= swallowAfter (always, incl. retx)
	// for the first 1.5 seconds.
	inner := packet.Node(pipe)
	ep.Out = packet.NodeFunc(func(p *packet.Packet) {
		if p.Seq >= swallowAfter && s.Now() < 1500*sim.Millisecond {
			return
		}
		inner.Recv(p)
	})
	ep.Start()
	s.RunUntil(5 * sim.Second)
	if alg.rtos == 0 {
		t.Error("no RTO during blackout")
	}
	// After the blackout everything must eventually be delivered.
	if pipe.cum < 20 {
		t.Errorf("cum ack %d: transfer did not resume after blackout", pipe.cum)
	}
}

func TestEndpointCEEchoTriggersCongestion(t *testing.T) {
	s := sim.New(1)
	alg := &fixedWindow{w: 4}
	var ep *Endpoint
	echo := packet.NodeFunc(func(p *packet.Packet) {
		p.ECN = packet.CE // bottleneck marks every packet
		ack := packet.NewAck(p, p.Seq+1, s.Now())
		s.After(10*sim.Millisecond, func() { ep.Recv(ack) })
	})
	ep = NewEndpoint(s, 0, echo, alg)
	ep.Start()
	s.RunUntil(300 * sim.Millisecond)
	if alg.congestion == 0 {
		t.Error("CE echoes never signalled congestion")
	}
	if ep.CEEchoes == 0 {
		t.Error("CE echo counter not incremented")
	}
	// And at most one event per window: far fewer events than ACKs.
	if int64(alg.congestion) > ep.AckedPackets/2 {
		t.Errorf("congestion %d times for %d acks", alg.congestion, ep.AckedPackets)
	}
}

func TestEndpointFiniteSourceCompletes(t *testing.T) {
	s := sim.New(1)
	pipe := newLossyPipe(s, 10*sim.Millisecond)
	ep := NewEndpoint(s, 0, pipe, &fixedWindow{w: 4})
	pipe.ep = ep
	ep.Src = NewFixed(10 * packet.MTU)
	done := sim.Time(-1)
	ep.OnComplete = func(now sim.Time) { done = now }
	ep.Start()
	s.RunUntil(5 * sim.Second)
	if done < 0 {
		t.Fatal("OnComplete never fired")
	}
	if pipe.Delivered != 10 {
		t.Errorf("delivered %d packets, want 10", pipe.Delivered)
	}
	if ep.SentPackets != 10 {
		t.Errorf("sent %d, want 10", ep.SentPackets)
	}
}

func TestEndpointRateLimitedSourcePaces(t *testing.T) {
	s := sim.New(1)
	pipe := newLossyPipe(s, 10*sim.Millisecond)
	ep := NewEndpoint(s, 0, pipe, &fixedWindow{w: 100})
	pipe.ep = ep
	ep.Src = NewRateLimited(1.2e6) // 100 pkt/s
	ep.Start()
	s.RunUntil(4 * sim.Second)
	rate := float64(pipe.Delivered) / 4
	if rate < 70 || rate > 110 {
		t.Errorf("delivery rate %.0f pkt/s, want ≈ 100", rate)
	}
}

func TestEndpointStopHaltsTraffic(t *testing.T) {
	s := sim.New(1)
	pipe := newLossyPipe(s, 10*sim.Millisecond)
	ep := NewEndpoint(s, 0, pipe, &fixedWindow{w: 4})
	pipe.ep = ep
	ep.Start()
	s.RunUntil(500 * sim.Millisecond)
	sent := ep.SentPackets
	ep.Stop()
	s.RunUntil(2 * sim.Second)
	if ep.SentPackets != sent {
		t.Errorf("sent %d more packets after Stop", ep.SentPackets-sent)
	}
}

func TestOnOffSource(t *testing.T) {
	src := &OnOff{Start: sim.Second, OnFor: sim.Second, OffFor: sim.Second}
	cases := []struct {
		at   sim.Time
		want bool
	}{
		{0, false},
		{1500 * sim.Millisecond, true},
		{2500 * sim.Millisecond, false},
		{3500 * sim.Millisecond, true},
	}
	for _, c := range cases {
		if got := src.Available(c.at); got != c.want {
			t.Errorf("Available(%v) = %v", c.at, got)
		}
	}
}

func TestGatedSource(t *testing.T) {
	g := &Gated{}
	if g.Available(0) {
		t.Error("closed gate available")
	}
	g.On = true
	if !g.Available(0) {
		t.Error("open gate unavailable")
	}
	if g.Done() {
		t.Error("gated source should never report done")
	}
}

func TestBackloggedSource(t *testing.T) {
	var b Backlogged
	if !b.Available(0) || b.Done() {
		t.Error("backlogged must always be available")
	}
}

func TestEndpointStopBeforeFirstPacket(t *testing.T) {
	// Flow lifetime edge: Stop fires before Start (a Spec with Stop <
	// Start). The endpoint must never transmit and must not panic.
	s := sim.New(1)
	pipe := newLossyPipe(s, 10*sim.Millisecond)
	ep := NewEndpoint(s, 0, pipe, &fixedWindow{w: 4})
	pipe.ep = ep
	ep.Src = NewFixed(10 * packet.MTU)
	s.At(sim.Second, ep.Stop)
	s.At(2*sim.Second, ep.Start)
	s.RunUntil(5 * sim.Second)
	if ep.SentPackets != 0 {
		t.Errorf("sent %d packets from a stopped-before-start flow", ep.SentPackets)
	}
	if pipe.Delivered != 0 {
		t.Errorf("delivered %d packets from a stopped-before-start flow", pipe.Delivered)
	}
}

func TestEndpointFixedDrainsExactlyAtStop(t *testing.T) {
	// Flow lifetime edge: Stop scheduled at the very instant the fixed
	// source drains. The event core runs same-instant events in insertion
	// order, and a Spec schedules Stop at setup time — so Stop runs
	// before the final ACK's delivery event and deterministically wins
	// the tie: the completion is suppressed, nothing panics, and no
	// packet is sent twice. One nanosecond later and the completion
	// fires. Both orderings are pinned here.
	run := func(stopAt sim.Time) (completions int, done sim.Time, sent int64) {
		s := sim.New(1)
		pipe := newLossyPipe(s, 10*sim.Millisecond)
		ep := NewEndpoint(s, 0, pipe, &fixedWindow{w: 4})
		pipe.ep = ep
		ep.Src = NewFixed(10 * packet.MTU)
		ep.OnComplete = func(now sim.Time) { completions++; done = now }
		if stopAt > 0 {
			s.At(stopAt, ep.Stop)
		}
		ep.Start()
		s.RunUntil(5 * sim.Second)
		return completions, done, ep.SentPackets
	}
	n, done, sent := run(0)
	if n != 1 || done <= 0 || sent != 10 {
		t.Fatalf("baseline run: %d completions at %v, %d sent", n, done, sent)
	}
	n2, _, sent2 := run(done)
	if n2 != 0 {
		t.Errorf("stop exactly at drain: %d completions, want 0 (Stop wins the tie)", n2)
	}
	if sent2 != 10 {
		t.Errorf("stop exactly at drain sent %d packets, want 10", sent2)
	}
	n3, done3, sent3 := run(done + 1)
	if n3 != 1 || done3 != done || sent3 != 10 {
		t.Errorf("stop after drain: %d completions at %v (%d sent), want 1 at %v",
			n3, done3, sent3, done)
	}
}

func TestEndpointBeginTransferReArmsCompletion(t *testing.T) {
	// Persistent application flows: a second transfer queued after the
	// first completes must re-fire OnComplete (BeginTransfer re-arms it).
	s := sim.New(1)
	pipe := newLossyPipe(s, 10*sim.Millisecond)
	ep := NewEndpoint(s, 0, pipe, &fixedWindow{w: 4})
	pipe.ep = ep
	src := &Fixed{Remaining: 5 * packet.MTU}
	ep.Src = src
	var completions []sim.Time
	ep.OnComplete = func(now sim.Time) {
		completions = append(completions, now)
		if len(completions) == 1 {
			src.Remaining += 5 * packet.MTU
			ep.BeginTransfer()
		}
	}
	ep.Start()
	s.RunUntil(5 * sim.Second)
	if len(completions) != 2 {
		t.Fatalf("%d completions, want 2 (one per transfer)", len(completions))
	}
	if completions[1] <= completions[0] {
		t.Errorf("second completion %v not after first %v", completions[1], completions[0])
	}
	if ep.SentPackets != 10 {
		t.Errorf("sent %d packets, want 10 across both transfers", ep.SentPackets)
	}
}
