package cc

import (
	"testing"

	"abc/internal/packet"
	"abc/internal/sim"
)

// fakeAlg records the feedback it is shown.
type fakeAlg struct {
	cwnd        float64
	sawAccel    []bool
	sawCE       []bool
	sawXCP      []float64
	sawRCP      []float64
	sawVCP      []uint8
	congestions int
}

func (f *fakeAlg) Name() string { return "fake" }
func (f *fakeAlg) OnAck(now sim.Time, e *Endpoint, info AckInfo) {
	a := info.Ack
	f.sawAccel = append(f.sawAccel, a.EchoAccel)
	f.sawCE = append(f.sawCE, a.EchoCE)
	f.sawXCP = append(f.sawXCP, a.XCP.Feedback)
	f.sawRCP = append(f.sawRCP, a.RCPRate)
	f.sawVCP = append(f.sawVCP, a.VCPLoad)
}
func (f *fakeAlg) OnCongestion(now sim.Time, e *Endpoint) { f.congestions++ }
func (f *fakeAlg) OnRTO(now sim.Time, e *Endpoint)        {}
func (f *fakeAlg) CwndPkts() float64                      { return f.cwnd }

// TestGreedyForgesFeedback: every feedback channel a scheme could hear
// congestion through reaches the inner algorithm scrubbed clean.
func TestGreedyForgesFeedback(t *testing.T) {
	inner := &fakeAlg{cwnd: 4}
	g := NewGreedy(inner)

	ack := packet.Get()
	ack.IsAck = true
	ack.EchoValid = true
	ack.EchoAccel = false // brake echo
	ack.ECN = packet.Brake
	ack.EchoCE = true
	ack.XCP = packet.XCPHeader{Valid: true, Feedback: -5000}
	ack.RCPRate = 8e6
	ack.VCPLoad = 3 // overload

	g.OnAck(0, nil, AckInfo{Ack: ack})
	if !inner.sawAccel[0] {
		t.Error("inner saw a brake echo")
	}
	if inner.sawCE[0] {
		t.Error("inner saw a CE echo")
	}
	if ack.ECN != packet.Accel {
		t.Errorf("ACK codepoint = %d, want forged Accel", ack.ECN)
	}
	if inner.sawXCP[0] != 0 {
		t.Errorf("inner saw XCP feedback %g, want clamped 0", inner.sawXCP[0])
	}
	if inner.sawVCP[0] != 1 {
		t.Errorf("inner saw VCP load %d, want downgraded 1", inner.sawVCP[0])
	}
	if g.BrakesIgnored != 1 || g.CEsIgnored != 1 || g.FeedbackClamped != 2 {
		t.Errorf("counters = %d/%d/%d, want 1/1/2",
			g.BrakesIgnored, g.CEsIgnored, g.FeedbackClamped)
	}

	// A second ACK stamped with a lower RCP rate is rewritten up to the
	// high-water mark.
	ack2 := packet.Get()
	ack2.IsAck = true
	ack2.RCPRate = 2e6
	g.OnAck(0, nil, AckInfo{Ack: ack2})
	if inner.sawRCP[1] != 8e6 {
		t.Errorf("inner saw RCP rate %g, want held at 8e6", inner.sawRCP[1])
	}
	ack.Release()
	ack2.Release()
}

// TestGreedyIgnoresCongestionAndFloorsWindow: loss events never reach
// the inner algorithm, and the window never drops below half its peak.
func TestGreedyIgnoresCongestionAndFloorsWindow(t *testing.T) {
	inner := &fakeAlg{cwnd: 40}
	g := NewGreedy(inner)
	ack := packet.Get()
	ack.IsAck = true
	g.OnAck(0, nil, AckInfo{Ack: ack}) // records peak 40
	ack.Release()

	g.OnCongestion(0, nil)
	if inner.congestions != 0 {
		t.Error("congestion event reached inner algorithm")
	}
	inner.cwnd = 1 // inner collapsed (e.g. RTO path)
	if w := g.CwndPkts(); w != 20 {
		t.Errorf("CwndPkts = %g, want floor 20 (half of peak 40)", w)
	}
	if g.Name() != "fake/greedy" {
		t.Errorf("Name = %q", g.Name())
	}
	if !g.HandlesCE() {
		t.Error("greedy must claim CE handling to suppress endpoint backoff")
	}
}
