// Verus (Zaki et al., SIGCOMM 2015), simplified: learn a delay-vs-window
// profile and chase a delay set-point with multiplicative corrections.
// The profile lags the channel on fast-varying links, producing the large
// rate oscillations and elevated delay the paper shows in Fig. 1b.
package cc

import "abc/internal/sim"

// Verus implements the simplified delay-profile controller.
type Verus struct {
	// R is the target ratio of RTT to minimum RTT (Verus' delay
	// set-point multiplier; the Verus paper sweeps 2-6).
	R float64
	// EpochMS is the update epoch.
	Epoch sim.Time

	cwnd      float64
	lastEpoch sim.Time
	maxRTT    sim.Time
	epochRTT  sim.Time
	haveRTT   bool
	lossSeen  bool
}

// NewVerus returns a simplified Verus sender.
func NewVerus() *Verus {
	return &Verus{R: 4, Epoch: 5 * sim.Millisecond, cwnd: 4}
}

// Name implements Algorithm.
func (v *Verus) Name() string { return "Verus" }

// OnAck implements Algorithm.
func (v *Verus) OnAck(now sim.Time, e *Endpoint, info AckInfo) {
	if info.RTTValid {
		v.epochRTT = info.RTT
		v.haveRTT = true
		if info.RTT > v.maxRTT {
			v.maxRTT = info.RTT
		}
	}
	if v.lastEpoch == 0 {
		v.lastEpoch = now
		return
	}
	if now-v.lastEpoch < v.Epoch || !v.haveRTT {
		return
	}
	v.lastEpoch = now
	base := e.MinRTT()
	if base <= 0 {
		return
	}
	target := sim.Time(float64(base) * v.R)
	if v.lossSeen {
		v.cwnd /= 2
		v.lossSeen = false
	} else if v.epochRTT > target {
		// Above the delay set-point: back off proportionally to the
		// overshoot (Verus walks down its delay profile).
		over := float64(v.epochRTT-target) / float64(target)
		v.cwnd *= 1 - 0.15*minF(over, 1)
	} else {
		// Below the set-point: climb. The climb is aggressive relative
		// to the epoch so the window oscillates on varying links, as
		// observed of Verus in the paper.
		v.cwnd += 1 + 2*float64(target-v.epochRTT)/float64(target)
	}
	if v.cwnd < 2 {
		v.cwnd = 2
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// OnCongestion implements Algorithm.
func (v *Verus) OnCongestion(now sim.Time, e *Endpoint) { v.lossSeen = true }

// OnRTO implements Algorithm.
func (v *Verus) OnRTO(now sim.Time, e *Endpoint) { v.cwnd = 2 }

// CwndPkts implements Algorithm.
func (v *Verus) CwndPkts() float64 { return v.cwnd }
