// Copa (Arun & Balakrishnan, NSDI 2018), simplified to its default-mode
// control law: steer the sending rate towards 1/(δ·dq) where dq is the
// measured queuing delay, with velocity-based acceleration. Copa is one of
// the low-delay baselines that the paper shows underutilizes fast-varying
// links (Fig. 8, Fig. 9).
package cc

import "abc/internal/sim"

// Copa implements the simplified Copa controller.
type Copa struct {
	// Delta is the δ parameter trading throughput for delay (default
	// 0.5, the Copa paper's default mode).
	Delta float64

	cwnd      float64
	velocity  float64
	dirUp     bool
	lastDir   sim.Time
	lastSS    sim.Time
	slowStart bool
}

// NewCopa returns a Copa sender in default mode.
func NewCopa() *Copa {
	return &Copa{Delta: 0.5, cwnd: 4, velocity: 1, slowStart: true}
}

// Name implements Algorithm.
func (c *Copa) Name() string { return "Copa" }

// OnAck implements Algorithm.
func (c *Copa) OnAck(now sim.Time, e *Endpoint, info AckInfo) {
	if info.AckedBytes == 0 || !info.RTTValid {
		return
	}
	rtt := info.RTT
	base := e.MinRTT()
	dq := (rtt - base).Seconds() // standing queuing delay
	// Target rate λ = 1/(δ·dq); compare against the current rate
	// cwnd/RTT, both in packets/sec.
	curRate := c.cwnd / rtt.Seconds()
	var targetRate float64
	if dq <= 0 {
		targetRate = curRate * 2 // no queue observed: push up
	} else {
		targetRate = 1 / (c.Delta * dq)
	}

	if c.slowStart {
		// Copa's slow start doubles once per RTT while the current
		// rate remains below target.
		if targetRate > curRate {
			if now-c.lastSS >= rtt {
				c.cwnd *= 2
				c.lastSS = now
			}
		} else {
			c.slowStart = false
		}
		return
	}

	up := targetRate > curRate
	// Velocity doubles each RTT the direction is consistent, resets on
	// a direction change (Copa §2.2).
	if up != c.dirUp {
		// Any direction change resets velocity immediately; carrying a
		// large velocity across the flip would overshoot wildly.
		c.velocity = 1
		c.dirUp = up
		c.lastDir = now
	} else if rtt > 0 && now-c.lastDir >= rtt {
		// Velocity doubles each consistent RTT (Copa §2.2); the cap
		// only guards numeric overflow.
		c.velocity *= 2
		if c.velocity > 1<<20 {
			c.velocity = 1 << 20
		}
		c.lastDir = now
	}
	step := c.velocity / (c.Delta * c.cwnd)
	if up {
		c.cwnd += step
	} else {
		c.cwnd -= step
	}
	if c.cwnd < 2 {
		c.cwnd = 2
	}
}

// OnCongestion implements Algorithm. Copa's loss response halves δ's
// effect by halving the window once per window of data.
func (c *Copa) OnCongestion(now sim.Time, e *Endpoint) {
	c.slowStart = false
	c.cwnd /= 2
	if c.cwnd < 2 {
		c.cwnd = 2
	}
	c.velocity = 1
}

// OnRTO implements Algorithm.
func (c *Copa) OnRTO(now sim.Time, e *Endpoint) {
	c.slowStart = false
	c.cwnd = 2
	c.velocity = 1
}

// CwndPkts implements Algorithm.
func (c *Copa) CwndPkts() float64 { return c.cwnd }
