// Greedy is a misbehaving-sender wrapper: it runs a real algorithm's
// machinery but forges the congestion feedback that algorithm sees, so
// explicit-feedback schemes are measured against a participant that
// simply refuses to slow down. The wrapper cheats on every feedback
// channel the repo's schemes consume — ABC's accel/brake echoes (both
// the NS-bit echo and the ACK's own codepoint), ECN CE echoes, XCP's
// negative window feedback, RCP's stamped rate and VCP's load codes —
// and neuters loss-driven backoff by swallowing congestion events and
// flooring its window at half its own high-water mark. It deliberately
// stays a wrapper: the greedy flow's packets are stamped and routed like
// any honest flow of the same scheme, so routers cannot tell it apart.
package cc

import (
	"math"

	"abc/internal/packet"
	"abc/internal/sim"
)

// Greedy wraps an Algorithm and lies to it about congestion.
type Greedy struct {
	inner Algorithm
	// peak is the highest window the inner algorithm ever reached; the
	// greedy flow never falls below half of it, capping its own backoff
	// even when the inner algorithm would collapse (e.g. after an RTO).
	peak float64
	// maxRate is the highest RCP rate stamp ever seen; lower stamps are
	// rewritten up to it.
	maxRate float64

	// BrakesIgnored counts accel/brake echoes rewritten from brake to
	// accelerate, CEsIgnored suppressed CE echoes, FeedbackClamped XCP
	// negative-feedback zeroings plus RCP rate-stamp raises plus VCP
	// load-code downgrades.
	BrakesIgnored   int64
	CEsIgnored      int64
	FeedbackClamped int64
}

// NewGreedy wraps inner in a greedy misbehaving sender.
func NewGreedy(inner Algorithm) *Greedy { return &Greedy{inner: inner} }

// Inner returns the wrapped algorithm (reports unwrap it for stats).
func (g *Greedy) Inner() Algorithm { return g.inner }

// Name implements Algorithm.
func (g *Greedy) Name() string { return g.inner.Name() + "/greedy" }

// OnAck rewrites the ACK's feedback fields to deny congestion, then
// lets the inner algorithm process the sanitized view. The rewrite
// happens on the ACK itself: the endpoint consumes EchoCE after OnAck,
// so clearing it here also suppresses the endpoint's own CE reaction.
func (g *Greedy) OnAck(now sim.Time, e *Endpoint, info AckInfo) {
	if a := info.Ack; a != nil {
		if a.EchoValid && !a.EchoAccel {
			a.EchoAccel = true
			g.BrakesIgnored++
		}
		// Forge the ACK codepoint too: ABC senders take the min of the
		// NS-bit echo and what survived the reverse path.
		if a.ECN == packet.Brake || a.ECN == packet.CE {
			a.ECN = packet.Accel
		}
		if a.EchoCE {
			a.EchoCE = false
			g.CEsIgnored++
		}
		if a.XCP.Valid && a.XCP.Feedback < 0 {
			a.XCP.Feedback = 0
			g.FeedbackClamped++
		}
		if a.RCPRate > 0 {
			if a.RCPRate > g.maxRate {
				g.maxRate = a.RCPRate
			} else if a.RCPRate < g.maxRate {
				a.RCPRate = g.maxRate
				g.FeedbackClamped++
			}
		}
		if a.VCPLoad > 1 {
			a.VCPLoad = 1 // always report low load: multiplicative increase
			g.FeedbackClamped++
		}
	}
	g.inner.OnAck(now, e, info)
	if w := g.inner.CwndPkts(); w > g.peak {
		g.peak = w
	}
}

// OnCongestion implements Algorithm: greedy senders ignore loss events.
func (g *Greedy) OnCongestion(now sim.Time, e *Endpoint) {}

// OnRTO delegates — an RTO means nothing is flowing, and even a cheater
// must retransmit — but the CwndPkts floor below limits the collapse.
func (g *Greedy) OnRTO(now sim.Time, e *Endpoint) { g.inner.OnRTO(now, e) }

// CwndPkts implements Algorithm: the inner window, floored at half the
// high-water mark so backoff the inner algorithm sneaks in through paths
// other than OnCongestion (e.g. RTO collapse) is capped.
func (g *Greedy) CwndPkts() float64 { return math.Max(g.inner.CwndPkts(), g.peak/2) }

// PacingRate implements Pacer by delegation, inflating nothing itself:
// rate-based schemes are already fed forged feedback in OnAck.
func (g *Greedy) PacingRate(now sim.Time) (bps float64, ok bool) {
	if p, is := g.inner.(Pacer); is {
		return p.PacingRate(now)
	}
	return 0, false
}

// StampData implements DataStamper by delegation so greedy flows stay
// wire-indistinguishable from honest flows of the same scheme.
func (g *Greedy) StampData(now sim.Time, e *Endpoint, p *packet.Packet) {
	if st, is := g.inner.(DataStamper); is {
		st.StampData(now, e, p)
	}
}

// HandlesCE implements CEHandler: always true, so the endpoint never
// translates a (suppressed) CE echo into a congestion event behind the
// wrapper's back.
func (g *Greedy) HandlesCE() bool { return true }
