// CUBIC (Ha, Rhee, Xu 2008; RFC 8312), the paper's primary loss-based
// baseline and the algorithm ABC's wnonabc window emulates (§5.1.1).
package cc

import (
	"math"

	"abc/internal/sim"
)

// Cubic implements the CUBIC window growth function with fast convergence
// and the TCP-friendly (Reno-emulation) region.
type Cubic struct {
	// C is the scaling constant (RFC default 0.4).
	C float64
	// Beta is the multiplicative decrease factor (RFC default 0.7).
	Beta float64

	cwnd       float64
	ssthresh   float64
	wMax       float64
	k          float64
	epochStart sim.Time
	wEst       float64 // Reno-friendly estimate
	ackCount   float64
}

// NewCubic returns a CUBIC sender with RFC 8312 constants.
func NewCubic() *Cubic {
	return &Cubic{C: 0.4, Beta: 0.7, cwnd: 4, ssthresh: 1e9}
}

// Name implements Algorithm.
func (c *Cubic) Name() string { return "Cubic" }

// OnAck implements Algorithm.
func (c *Cubic) OnAck(now sim.Time, e *Endpoint, info AckInfo) {
	if info.AckedBytes == 0 {
		return
	}
	if c.cwnd < c.ssthresh {
		c.cwnd++
		return
	}
	c.update(now, e.SRTT())
}

// update applies the cubic growth function once per ACK.
func (c *Cubic) update(now sim.Time, rtt sim.Time) {
	if c.epochStart == 0 {
		c.epochStart = now
		if c.cwnd < c.wMax {
			c.k = math.Cbrt((c.wMax - c.cwnd) / c.C)
		} else {
			c.k = 0
			c.wMax = c.cwnd
		}
		c.wEst = c.cwnd
		c.ackCount = 0
	}
	t := (now - c.epochStart).Seconds() + rtt.Seconds()
	target := c.C*math.Pow(t-c.k, 3) + c.wMax

	// TCP-friendly region: emulate Reno's growth so CUBIC never does
	// worse than standard TCP at small BDPs.
	c.ackCount++
	c.wEst += 3 * (1 - c.Beta) / (1 + c.Beta) / c.cwnd
	if target < c.wEst {
		target = c.wEst
	}

	if target > c.cwnd {
		// Approach the target over one RTT.
		c.cwnd += (target - c.cwnd) / c.cwnd
	} else {
		c.cwnd += 0.01 / c.cwnd // tiny growth to probe
	}
}

// OnCongestion implements Algorithm.
func (c *Cubic) OnCongestion(now sim.Time, e *Endpoint) {
	c.epochStart = 0
	// Fast convergence: release bandwidth faster when the window is
	// still below the previous maximum.
	if c.cwnd < c.wMax {
		c.wMax = c.cwnd * (1 + c.Beta) / 2
	} else {
		c.wMax = c.cwnd
	}
	c.cwnd *= c.Beta
	if c.cwnd < 2 {
		c.cwnd = 2
	}
	c.ssthresh = c.cwnd
}

// OnRTO implements Algorithm.
func (c *Cubic) OnRTO(now sim.Time, e *Endpoint) {
	c.epochStart = 0
	c.wMax = c.cwnd
	c.ssthresh = c.cwnd * c.Beta
	if c.ssthresh < 2 {
		c.ssthresh = 2
	}
	c.cwnd = 1
}

// CwndPkts implements Algorithm.
func (c *Cubic) CwndPkts() float64 { return c.cwnd }

// Cwnd exposes the raw window for ABC's dual-window coupling.
func (c *Cubic) Cwnd() float64 { return c.cwnd }

// SetCwnd clamps the window (used by ABC's 2x-inflight cap, §5.1.1).
func (c *Cubic) SetCwnd(w float64) {
	if w < 1 {
		w = 1
	}
	c.cwnd = w
}
