// Package cc provides the sender-side transport framework and the
// congestion-control algorithms the paper evaluates against ABC.
//
// An Endpoint owns everything every scheme shares — sequencing, in-flight
// accounting, RTT estimation, dup-ACK and RTO loss recovery, ACK-clocked
// and paced transmission — and delegates window/rate decisions to an
// Algorithm. ABC itself (package internal/abc) plugs into the same
// interface, exactly as the paper's kernel module plugs into pluggable
// TCP.
package cc

import (
	"math"

	"abc/internal/obs"
	"abc/internal/packet"
	"abc/internal/sim"
)

// AckInfo summarizes one acknowledgement for an Algorithm.
type AckInfo struct {
	// Ack is the raw acknowledgement, carrying accel/brake and ECN echo.
	Ack *packet.Packet
	// RTT is the sample from this ACK; valid only if RTTValid.
	RTT      sim.Time
	RTTValid bool
	// AckedBytes is the number of newly acknowledged bytes (0 for a
	// duplicate or stale ACK).
	AckedBytes int
	// Inflight is the number of packets outstanding after this ACK.
	Inflight int
}

// Algorithm is a congestion-control scheme.
type Algorithm interface {
	// Name identifies the scheme in reports.
	Name() string
	// OnAck processes every acknowledgement.
	OnAck(now sim.Time, e *Endpoint, info AckInfo)
	// OnCongestion signals at most one loss/CE event per window.
	OnCongestion(now sim.Time, e *Endpoint)
	// OnRTO signals a retransmission timeout.
	OnRTO(now sim.Time, e *Endpoint)
	// CwndPkts returns the current window in packets; the endpoint sends
	// while fewer packets are in flight.
	CwndPkts() float64
}

// Pacer is implemented by rate-based algorithms (BBR, RCP, PCC, Sprout,
// Verus). When implemented and enabled, the endpoint sends on a pacing
// timer instead of purely ACK-clocked.
type Pacer interface {
	// PacingRate returns the current sending rate in bits/sec, or ok
	// false to fall back to ACK clocking.
	PacingRate(now sim.Time) (bps float64, ok bool)
}

// DataStamper lets an algorithm annotate outgoing data packets (ABC marks
// accelerate; XCP fills its congestion header).
type DataStamper interface {
	StampData(now sim.Time, e *Endpoint, p *packet.Packet)
}

// CEHandler is implemented by algorithms that consume CE echoes
// themselves (ABC's proxied encoding uses CE as the brake signal); the
// endpoint then suppresses its default CE-is-congestion behaviour.
type CEHandler interface {
	HandlesCE() bool
}

// Source models application data availability. A nil source means a
// backlogged (iperf-like) flow.
type Source interface {
	// Available reports whether a packet's worth of data is ready.
	Available(now sim.Time) bool
	// OnSend informs the source that n bytes were sent.
	OnSend(now sim.Time, n int)
	// Done reports that the flow has no further data ever (flow ends).
	Done() bool
}

// sent tracks one outstanding packet.
type sent struct {
	seq    int64
	size   int
	sentAt sim.Time
	retx   bool
}

// seqHeap is a hand-rolled min-heap of outstanding sequence numbers for
// O(log n) loss detection. Avoiding container/heap keeps push/pop free
// of the per-call int64 boxing that used to dominate sender allocations.
type seqHeap []int64

func (h *seqHeap) push(v int64) {
	q := append(*h, v)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent] <= q[i] {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
	*h = q
}

func (h *seqHeap) pop() int64 {
	q := *h
	v := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && q[r] < q[l] {
			least = r
		}
		if q[i] <= q[least] {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	*h = q
	return v
}

// Endpoint is one sender. It implements packet.Node to receive ACKs.
type Endpoint struct {
	S    *sim.Simulator
	Flow int
	// Out is the first hop towards the receiver.
	Out packet.Node
	Alg Algorithm
	// Src is the data source; nil means backlogged.
	Src Source
	// PktSize is the data packet size (default MTU).
	PktSize int
	// MinRTO floors the retransmission timeout.
	MinRTO sim.Time
	// ReorderThresh is the dup-ACK reordering threshold in packets.
	ReorderThresh int64
	// OnComplete fires once when a finite source has been fully
	// delivered and acknowledged.
	OnComplete func(now sim.Time)

	started bool
	stopped bool

	nextSeq   int64
	inflight  map[int64]sent
	outSeqs   seqHeap
	hiSacked  int64 // highest individually acked sequence
	cumAcked  int64
	lostQueue []int64

	srtt, rttvar sim.Time
	minRTT       sim.Time
	lastAckAt    sim.Time
	rtoBackoff   int

	recoveryUntil int64 // congestion events below this seq are merged

	// Stats.
	SentPackets  int64
	RetxPackets  int64
	AckedPackets int64
	AckedBytes   int64
	LostPackets  int64
	CEEchoes     int64

	pacing        bool
	pacerArmed    bool
	completeFired bool
	// paceFn is the bound pacing callback, created once so re-arming the
	// pacer does not allocate a method-value closure per packet.
	paceFn func()

	// rec/obsSrc feed per-ACK congestion-control state (EvCwnd) to the
	// flight recorder (obs.Sink); nil rec = off.
	rec    *obs.Recorder
	obsSrc int32
}

// SetObs implements obs.Sink: every processed ACK emits an EvCwnd event
// (A = cwnd in 1/1024 packets, B = pacing rate in bits/sec, 0 when
// ACK-clocked) under the given source id.
func (e *Endpoint) SetObs(rec *obs.Recorder, src int32) { e.rec, e.obsSrc = rec, src }

// NewEndpoint wires a sender for the flow. Call Start to begin.
func NewEndpoint(s *sim.Simulator, flow int, out packet.Node, alg Algorithm) *Endpoint {
	e := &Endpoint{
		S:             s,
		Flow:          flow,
		Out:           out,
		Alg:           alg,
		PktSize:       packet.MTU,
		MinRTO:        250 * sim.Millisecond,
		ReorderThresh: 3,
		inflight:      make(map[int64]sent),
		minRTT:        math.MaxInt64,
	}
	e.paceFn = e.paceNext
	return e
}

// Start begins transmission at the current simulation time.
func (e *Endpoint) Start() {
	if e.started {
		return
	}
	e.started = true
	e.lastAckAt = e.S.Now()
	if p, ok := e.Alg.(Pacer); ok {
		if _, use := p.PacingRate(e.S.Now()); use {
			e.pacing = true
		}
	}
	if e.pacing {
		e.armPacer()
	} else {
		e.trySend()
	}
	// Periodic housekeeping: RTO checks, source refill for ACK-clocked
	// flows, pacer restarts after idle.
	e.S.Every(10*sim.Millisecond, func() bool {
		if e.stopped {
			return false
		}
		e.checkRTO()
		if e.pacing {
			e.armPacer()
		} else {
			e.trySend()
		}
		return true
	})
}

// Stop halts the sender (flow departure in staggered-arrival experiments).
func (e *Endpoint) Stop() { e.stopped = true }

// BeginTransfer re-arms OnComplete for the next application transfer on
// a persistent flow and kicks transmission immediately. Callers must add
// the transfer's bytes to the source before calling, or an already-idle
// flow completes the empty transfer on the spot.
func (e *Endpoint) BeginTransfer() {
	e.completeFired = false
	if !e.started || e.stopped {
		return
	}
	if e.pacing {
		e.armPacer()
	} else {
		e.trySend()
	}
}

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (e *Endpoint) SRTT() sim.Time { return e.srtt }

// MinRTT returns the minimum RTT observed (0 before the first sample).
func (e *Endpoint) MinRTT() sim.Time {
	if e.minRTT == math.MaxInt64 {
		return 0
	}
	return e.minRTT
}

// Inflight returns the number of outstanding packets.
func (e *Endpoint) Inflight() int { return len(e.inflight) }

// NextSeq returns the next unsent sequence number.
func (e *Endpoint) NextSeq() int64 { return e.nextSeq }

// rto returns the current retransmission timeout with backoff applied.
func (e *Endpoint) rto() sim.Time {
	base := e.MinRTO
	if e.srtt > 0 {
		calc := e.srtt + 4*e.rttvar
		if calc > base {
			base = calc
		}
	}
	// Exponential backoff capped at one second: long caps let a flow
	// joining a standing-full droptail queue starve for tens of seconds
	// between attempts.
	for i := 0; i < e.rtoBackoff && base < sim.Second; i++ {
		base *= 2
	}
	if base > 2*sim.Second {
		base = 2 * sim.Second
	}
	return base
}

// checkRTO fires a timeout if nothing has been acknowledged for an RTO
// while data is outstanding.
func (e *Endpoint) checkRTO() {
	if len(e.inflight) == 0 {
		return
	}
	now := e.S.Now()
	if now-e.lastAckAt < e.rto() {
		return
	}
	e.lastAckAt = now
	e.rtoBackoff++
	// Declare everything outstanding lost and retransmit from the
	// oldest (go-back-N style recovery keeps the framework simple and
	// is only exercised during outages).
	for seq := range e.inflight {
		e.lostQueue = append(e.lostQueue, seq)
		delete(e.inflight, seq)
	}
	e.outSeqs = e.outSeqs[:0]
	e.LostPackets += int64(len(e.lostQueue))
	sortInt64s(e.lostQueue)
	e.recoveryUntil = e.nextSeq
	e.Alg.OnRTO(now, e)
	if !e.pacing {
		e.trySend()
	}
}

// sortInt64s sorts in place (tiny helper avoiding sort.Slice allocation
// on the hot path).
func sortInt64s(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// available reports whether the source has data.
func (e *Endpoint) available() bool {
	if e.Src == nil {
		return true
	}
	return e.Src.Available(e.S.Now())
}

// sourceDone reports whether the flow has sent everything it ever will.
func (e *Endpoint) sourceDone() bool {
	return e.Src != nil && e.Src.Done()
}

// trySend transmits while the window and source allow (ACK-clocked mode).
func (e *Endpoint) trySend() {
	if e.stopped {
		return
	}
	for e.canSend() {
		e.sendOne()
	}
	e.maybeComplete()
}

// canSend reports whether one more packet may be transmitted now.
func (e *Endpoint) canSend() bool {
	if e.stopped {
		return false
	}
	if float64(len(e.inflight)) >= e.Alg.CwndPkts() {
		return false
	}
	if len(e.lostQueue) > 0 {
		return true // retransmissions bypass the source
	}
	return e.available() && !e.sourceDone()
}

// sendOne transmits the next retransmission or new data packet.
func (e *Endpoint) sendOne() {
	now := e.S.Now()
	var seq int64
	retx := false
	if len(e.lostQueue) > 0 {
		seq = e.lostQueue[0]
		e.lostQueue = e.lostQueue[1:]
		retx = true
		e.RetxPackets++
	} else {
		seq = e.nextSeq
		e.nextSeq++
		if e.Src != nil {
			e.Src.OnSend(now, e.PktSize)
		}
	}
	p := packet.NewData(e.Flow, seq, e.PktSize, now)
	p.Retx = retx
	if e.Src != nil {
		p.AppLimited = true
	}
	if st, ok := e.Alg.(DataStamper); ok {
		st.StampData(now, e, p)
	}
	e.inflight[seq] = sent{seq: seq, size: e.PktSize, sentAt: now, retx: retx}
	e.outSeqs.push(seq)
	e.SentPackets++
	e.Out.Recv(p)
}

// armPacer schedules the next paced transmission if not already armed.
func (e *Endpoint) armPacer() {
	if e.pacerArmed || e.stopped {
		return
	}
	e.pacerArmed = true
	e.paceNext()
}

// paceNext sends one packet if allowed and re-arms at the pacing rate.
func (e *Endpoint) paceNext() {
	if e.stopped {
		e.pacerArmed = false
		return
	}
	now := e.S.Now()
	rate := 0.0
	if p, ok := e.Alg.(Pacer); ok {
		if r, use := p.PacingRate(now); use {
			rate = r
		}
	}
	if rate <= 0 {
		// No rate yet: poll shortly.
		e.S.After(5*sim.Millisecond, e.paceFn)
		return
	}
	gap := sim.FromSeconds(float64(e.PktSize*8) / rate)
	if gap < 10*sim.Microsecond {
		gap = 10 * sim.Microsecond
	}
	if e.canSend() {
		e.sendOne()
		e.S.After(gap, e.paceFn)
	} else {
		// Window-limited or source-limited: retry soon.
		retry := gap
		if retry < sim.Millisecond {
			retry = sim.Millisecond
		}
		e.S.After(retry, e.paceFn)
	}
	e.maybeComplete()
}

// maybeComplete fires OnComplete once for finite sources.
func (e *Endpoint) maybeComplete() {
	if e.completeFired || e.OnComplete == nil {
		return
	}
	if e.sourceDone() && len(e.inflight) == 0 && len(e.lostQueue) == 0 {
		e.completeFired = true
		e.OnComplete(e.S.Now())
	}
}

// Recv implements packet.Node for acknowledgements. The endpoint is the
// ACK's terminal consumer and releases it; algorithms must not retain
// info.Ack beyond OnAck.
func (e *Endpoint) Recv(p *packet.Packet) {
	if !p.IsAck || p.Flow != e.Flow {
		// Misrouted traffic: the endpoint is still the last holder.
		p.Release()
		return
	}
	if e.stopped {
		p.Release()
		return
	}
	defer p.Release()
	now := e.S.Now()
	info := AckInfo{Ack: p}

	if s, ok := e.inflight[p.Seq]; ok {
		delete(e.inflight, p.Seq)
		info.AckedBytes = s.size
		e.AckedPackets++
		e.AckedBytes += int64(s.size)
		if !p.Retx && !s.retx {
			info.RTT = now - p.AckSentAt
			info.RTTValid = true
			e.updateRTT(info.RTT)
		}
		if p.Seq > e.hiSacked {
			e.hiSacked = p.Seq
		}
		e.lastAckAt = now
		e.rtoBackoff = 0
	}
	if p.CumAck > e.cumAcked {
		e.cumAcked = p.CumAck
	}
	if p.EchoCE {
		e.CEEchoes++
	}

	e.detectLoss(now)

	info.Inflight = len(e.inflight)
	e.Alg.OnAck(now, e, info)
	if e.rec.Enabled(obs.CatCC) {
		var bps int64
		if pr, ok := e.Alg.(Pacer); ok {
			if v, use := pr.PacingRate(now); use {
				bps = int64(v)
			}
		}
		e.rec.Emit(int64(now), obs.EvCwnd, e.obsSrc, int32(e.Flow), int64(e.Alg.CwndPkts()*1024), bps)
	}

	if p.EchoCE && p.Seq >= e.recoveryUntil {
		if h, ok := e.Alg.(CEHandler); !ok || !h.HandlesCE() {
			e.recoveryUntil = e.nextSeq
			e.Alg.OnCongestion(now, e)
		}
	}

	if !e.pacing {
		e.trySend()
	}
	e.maybeComplete()
}

// detectLoss declares packets below the reordering window lost.
func (e *Endpoint) detectLoss(now sim.Time) {
	lost := false
	for len(e.outSeqs) > 0 {
		top := e.outSeqs[0]
		s, stillOut := e.inflight[top]
		if !stillOut {
			e.outSeqs.pop() // already acked (lazy deletion)
			continue
		}
		if top <= e.hiSacked-e.ReorderThresh {
			if s.retx {
				// A retransmission is already in flight for this
				// sequence; dup-ACK evidence predates it, so normally
				// wait for its ACK. But if the retransmission itself
				// has been out for an RTO it was lost too — without
				// this check one dropped retransmission would block
				// loss detection (and congestion signals) forever.
				if now-s.sentAt <= e.rto() {
					break
				}
			}
			e.outSeqs.pop()
			delete(e.inflight, top)
			e.lostQueue = append(e.lostQueue, top)
			e.LostPackets++
			lost = true
			continue
		}
		break
	}
	if lost {
		sortInt64s(e.lostQueue)
		// One congestion event per window.
		if e.hiSacked >= e.recoveryUntil {
			e.recoveryUntil = e.nextSeq
			e.Alg.OnCongestion(now, e)
		}
	}
}

// updateRTT applies the standard SRTT/RTTVAR estimator (RFC 6298).
func (e *Endpoint) updateRTT(rtt sim.Time) {
	if rtt < e.minRTT {
		e.minRTT = rtt
	}
	if e.srtt == 0 {
		e.srtt = rtt
		e.rttvar = rtt / 2
		return
	}
	d := e.srtt - rtt
	if d < 0 {
		d = -d
	}
	e.rttvar = (3*e.rttvar + d) / 4
	e.srtt = (7*e.srtt + rtt) / 8
}
