// Package wifi models an 802.11n access point at the fidelity ABC's
// link-rate estimator needs (§4.1): A-MPDU batch transmission, block
// acknowledgements, per-MCS PHY bitrates and stochastic per-batch overhead
// (channel contention, preamble, ACK turnaround). It also implements the
// paper's estimator itself: from each (batch size, inter-ACK time,
// bitrate) observation it extrapolates the backlogged inter-ACK time
// (Eq. 8) and hence the link capacity (Eq. 6).
package wifi

import (
	"math/rand"

	"abc/internal/packet"
	"abc/internal/qdisc"
	"abc/internal/sim"
)

// MCSRates maps 802.11n MCS index (20 MHz, one spatial stream, 800 ns GI)
// to PHY bitrate in bits/sec.
var MCSRates = []float64{
	6.5e6, 13e6, 19.5e6, 26e6, 39e6, 52e6, 58.5e6, 65e6,
}

// BitrateForMCS returns the PHY rate for an MCS index, clamping the index
// to the valid range.
func BitrateForMCS(idx int) float64 {
	if idx < 0 {
		idx = 0
	}
	if idx >= len(MCSRates) {
		idx = len(MCSRates) - 1
	}
	return MCSRates[idx]
}

// LinkConfig parameterizes the modelled AP.
type LinkConfig struct {
	// MaxBatch is M, the negotiated A-MPDU limit in frames.
	MaxBatch int
	// FrameSize is S in bytes (all frames are MTU-sized, footnote 4).
	FrameSize int
	// OverheadBase is the deterministic part of h(t): DIFS, preamble,
	// block-ACK turnaround.
	OverheadBase sim.Time
	// OverheadJitter is the half-width of the uniform contention jitter
	// added to h(t); Fig. 4's vertical spread comes from this.
	OverheadJitter sim.Time
	// MCS returns the MCS index at a given time (experiments vary it to
	// model user movement).
	MCS func(now sim.Time) int
}

// DefaultLinkConfig models the paper's testbed defaults.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{
		MaxBatch:       20,
		FrameSize:      packet.MTU,
		OverheadBase:   1200 * sim.Microsecond,
		OverheadJitter: 900 * sim.Microsecond,
		MCS:            func(sim.Time) int { return 5 },
	}
}

// BatchObserver receives one observation per block ACK: the batch size b,
// the inter-ACK time TIA(b, t) and the PHY bitrate R used.
type BatchObserver func(now sim.Time, b int, tia sim.Time, bitrate float64)

// Link is the AP: packets enter a qdisc (droptail or an ABC router) and
// leave in A-MPDU batches.
type Link struct {
	S   *sim.Simulator
	Cfg LinkConfig
	Q   qdisc.Qdisc
	Dst packet.Node
	// Est, when set, is fed every block ACK and provides the capacity
	// estimate to a capacity-aware qdisc.
	Est *Estimator
	// OnBatch, if set, observes batches (Fig. 4 sampling).
	OnBatch BatchObserver
	// OnDeliver, if set, observes each delivered frame.
	OnDeliver func(now sim.Time, p *packet.Packet)

	rng       *rand.Rand
	busy      bool
	delivered int64
	// batch is the in-flight A-MPDU, reused across batches; finishFn is
	// the bound completion callback. Together they keep the per-batch
	// path allocation-free.
	batch        []*packet.Packet
	batchTIA     sim.Time
	batchBitrate float64
	finishFn     func()
}

// NewLink wires an 802.11n link. If est is non-nil it becomes the
// capacity provider for capacity-aware qdiscs (the ABC deployment).
func NewLink(s *sim.Simulator, cfg LinkConfig, q qdisc.Qdisc, dst packet.Node, est *Estimator) *Link {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 20
	}
	if cfg.FrameSize <= 0 {
		cfg.FrameSize = packet.MTU
	}
	if cfg.MCS == nil {
		cfg.MCS = func(sim.Time) int { return 5 }
	}
	l := &Link{S: s, Cfg: cfg, Q: q, Dst: dst, Est: est, rng: s.Rand()}
	l.finishFn = l.finishBatch
	if est != nil {
		if ca, ok := q.(qdisc.CapacityAware); ok {
			ca.SetCapacityProvider(est.RateBps)
		}
	}
	return l
}

// DeliveredBytes reports total payload bytes delivered.
func (l *Link) DeliveredBytes() int64 { return l.delivered }

// Recv implements packet.Node.
func (l *Link) Recv(p *packet.Packet) {
	now := l.S.Now()
	if !l.Q.Enqueue(now, p) {
		p.Release()
		return
	}
	if !l.busy {
		l.startBatch()
	}
}

// overhead draws h(t) for one batch.
func (l *Link) overhead() sim.Time {
	j := l.Cfg.OverheadJitter
	if j <= 0 {
		return l.Cfg.OverheadBase
	}
	return l.Cfg.OverheadBase + sim.Time(l.rng.Int63n(int64(2*j))) - j
}

// startBatch assembles up to M frames and transmits them as one A-MPDU.
func (l *Link) startBatch() {
	now := l.S.Now()
	l.batch = l.batch[:0]
	for len(l.batch) < l.Cfg.MaxBatch {
		p := l.Q.Dequeue(now)
		if p == nil {
			break
		}
		l.batch = append(l.batch, p)
	}
	if len(l.batch) == 0 {
		l.busy = false
		return
	}
	l.busy = true
	b := len(l.batch)
	l.batchBitrate = BitrateForMCS(l.Cfg.MCS(now))
	txTime := sim.FromSeconds(float64(b*l.Cfg.FrameSize*8) / l.batchBitrate)
	l.batchTIA = txTime + l.overhead()
	l.S.After(l.batchTIA, l.finishFn)
}

// finishBatch fires at the block-ACK instant: it delivers the batch,
// feeds the estimator, and starts the next A-MPDU.
func (l *Link) finishBatch() {
	done := l.S.Now()
	b := len(l.batch)
	for i, p := range l.batch {
		l.batch[i] = nil
		p.QueueDelay += done - p.EnqueuedAt
		l.delivered += int64(p.Size)
		if l.OnDeliver != nil {
			l.OnDeliver(done, p)
		}
		l.Dst.Recv(p)
	}
	if l.Est != nil {
		l.Est.OnBlockAck(done, b, l.batchTIA, l.batchBitrate)
	}
	if l.OnBatch != nil {
		l.OnBatch(done, b, l.batchTIA, l.batchBitrate)
	}
	l.startBatch()
}

// Estimator implements the paper's §4.1 link-rate estimation. On each
// block ACK it extrapolates what the inter-ACK time would have been for a
// full M-frame batch,
//
//	T̂IA(M, t) = TIA(b, t) + (M − b)·S/R        (Eq. 8)
//
// estimates the capacity µ̂(t) = M·S / T̂IA(M, t) (Eq. 6), smooths over a
// sliding window of length T (40 ms in the paper) and caps the prediction
// at twice the current dequeue rate, since ABC cannot more than double a
// sender's rate in one RTT.
type Estimator struct {
	// M and S mirror the link's negotiated batch limit and frame size.
	M int
	S int
	// Window is the smoothing window T.
	Window sim.Time
	// Cap enables the 2x-current-rate prediction cap.
	Cap bool

	samples  []estSample
	head     int
	deqBytes []estSample
	deqHead  int
	// lastMu holds the most recent per-batch estimate so a lightly
	// loaded link (batches sparser than the window) still reports its
	// last known capacity instead of zero, which would deadlock an ABC
	// router into permanent brakes.
	lastMu float64
}

type estSample struct {
	at sim.Time
	v  float64
}

// NewEstimator returns an estimator for a link with batch limit m and
// frame size s bytes.
func NewEstimator(m, s int, window sim.Time) *Estimator {
	if window <= 0 {
		window = 40 * sim.Millisecond
	}
	return &Estimator{M: m, S: s, Window: window, Cap: true}
}

// OnBlockAck feeds one batch observation.
func (e *Estimator) OnBlockAck(now sim.Time, b int, tia sim.Time, bitrate float64) {
	if b <= 0 || tia <= 0 || bitrate <= 0 {
		return
	}
	tiaFull := tia + sim.FromSeconds(float64((e.M-b)*e.S*8)/bitrate)
	mu := float64(e.M*e.S*8) / tiaFull.Seconds()
	e.samples = append(e.samples, estSample{now, mu})
	e.deqBytes = append(e.deqBytes, estSample{now, float64(b * e.S)})
	e.lastMu = mu
	e.prune(now)
}

func (e *Estimator) prune(now sim.Time) {
	for e.head < len(e.samples) && e.samples[e.head].at < now-e.Window {
		e.head++
	}
	if e.head > 64 && e.head*2 >= len(e.samples) {
		n := copy(e.samples, e.samples[e.head:])
		e.samples = e.samples[:n]
		e.head = 0
	}
	// The dequeue meter for the 2x cap uses a longer horizon than the
	// estimate itself: with a lightly loaded link, batches arrive
	// sparser than T and a T-length cap window would collapse to zero
	// between batches.
	for e.deqHead < len(e.deqBytes) && e.deqBytes[e.deqHead].at < now-5*e.Window {
		e.deqHead++
	}
	if e.deqHead > 64 && e.deqHead*2 >= len(e.deqBytes) {
		n := copy(e.deqBytes, e.deqBytes[e.deqHead:])
		e.deqBytes = e.deqBytes[:n]
		e.deqHead = 0
	}
}

// RateBps returns the smoothed capacity estimate µ̂(t) at time now.
func (e *Estimator) RateBps(now sim.Time) float64 {
	e.prune(now)
	n := len(e.samples) - e.head
	var mu float64
	if n == 0 {
		// No batch inside the window: hold the last known estimate.
		mu = e.lastMu
	} else {
		var sum float64
		for _, s := range e.samples[e.head:] {
			sum += s.v
		}
		mu = sum / float64(n)
	}
	if e.Cap && mu > 0 {
		// Dequeue rate over the (longer) cap horizon.
		var bytes float64
		for _, s := range e.deqBytes[e.deqHead:] {
			bytes += s.v
		}
		cr := bytes * 8 / (5 * e.Window).Seconds()
		if cap2 := 2 * cr; mu > cap2 && cap2 > 0 {
			mu = cap2
		}
	}
	return mu
}

// TrueCapacityBps returns the ground-truth backlogged capacity of a link
// with the given config at time now: M frames per TIA(M) with the mean
// overhead. Fig. 5 compares estimates against this.
func TrueCapacityBps(cfg LinkConfig, now sim.Time) float64 {
	bitrate := BitrateForMCS(cfg.MCS(now))
	tx := float64(cfg.MaxBatch*cfg.FrameSize*8) / bitrate
	tia := tx + cfg.OverheadBase.Seconds()
	return float64(cfg.MaxBatch*cfg.FrameSize*8) / tia
}
