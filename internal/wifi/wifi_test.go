package wifi

import (
	"math"
	"testing"
	"testing/quick"

	"abc/internal/packet"
	"abc/internal/qdisc"
	"abc/internal/sim"
)

func TestBitrateForMCS(t *testing.T) {
	if got := BitrateForMCS(0); got != 6.5e6 {
		t.Errorf("MCS0 = %v", got)
	}
	if got := BitrateForMCS(7); got != 65e6 {
		t.Errorf("MCS7 = %v", got)
	}
	// Clamping.
	if got := BitrateForMCS(-3); got != 6.5e6 {
		t.Errorf("MCS-3 = %v", got)
	}
	if got := BitrateForMCS(99); got != 65e6 {
		t.Errorf("MCS99 = %v", got)
	}
}

func fill(s *sim.Simulator, l *Link, n int) {
	for i := 0; i < n; i++ {
		l.Recv(packet.NewData(0, int64(i), packet.MTU, s.Now()))
	}
}

func TestLinkBatchesUpToM(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultLinkConfig()
	cfg.MaxBatch = 8
	var batches []int
	sink := &packet.Sink{}
	l := NewLink(s, cfg, qdisc.NewDropTail(0), sink, nil)
	l.OnBatch = func(now sim.Time, b int, tia sim.Time, bitrate float64) {
		batches = append(batches, b)
	}
	fill(s, l, 20)
	s.Run()
	// The first frame departs alone (the link was idle when it arrived);
	// the backlog then drains in full batches of M with a remainder.
	total := 0
	full := 0
	for _, b := range batches {
		if b > 8 {
			t.Errorf("batch of %d exceeds M=8", b)
		}
		if b == 8 {
			full++
		}
		total += b
	}
	if total != 20 || full < 2 {
		t.Errorf("batches = %v", batches)
	}
	if sink.Count != 20 {
		t.Errorf("delivered = %d", sink.Count)
	}
}

func TestLinkTIAMatchesModel(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultLinkConfig()
	cfg.OverheadJitter = 0                    // deterministic
	cfg.MCS = func(sim.Time) int { return 3 } // 26 Mbit/s
	var tias []sim.Time
	var sizes []int
	l := NewLink(s, cfg, qdisc.NewDropTail(0), &packet.Sink{}, nil)
	l.OnBatch = func(now sim.Time, b int, tia sim.Time, bitrate float64) {
		tias = append(tias, tia)
		sizes = append(sizes, b)
	}
	fill(s, l, 25) // 20 + 5
	s.Run()
	for i := range tias {
		want := sim.FromSeconds(float64(sizes[i]*packet.MTU*8)/26e6) + cfg.OverheadBase
		if d := tias[i] - want; d < -sim.Microsecond || d > sim.Microsecond {
			t.Errorf("batch %d (b=%d): TIA %v, want %v", i, sizes[i], tias[i], want)
		}
	}
}

// TestEstimatorExtrapolation: feeding the estimator a partial batch with
// zero jitter must reproduce the exact backlogged capacity (Eq. 6–8).
func TestEstimatorExtrapolation(t *testing.T) {
	const M, S = 20, packet.MTU
	est := NewEstimator(M, S, 40*sim.Millisecond)
	est.Cap = false
	R := 26e6
	h := 1200 * sim.Microsecond
	for _, b := range []int{1, 5, 13, 20} {
		est.samples = est.samples[:0]
		est.head = 0
		tia := sim.FromSeconds(float64(b*S*8)/R) + h
		est.OnBlockAck(sim.Second, b, tia, R)
		got := est.RateBps(sim.Second)
		want := float64(M*S*8) / (float64(M*S*8)/R + h.Seconds())
		if math.Abs(got-want)/want > 1e-6 {
			t.Errorf("b=%d: mu = %.0f, want %.0f", b, got, want)
		}
	}
}

// TestEstimatorBatchInvariance is the heart of §4.1: the capacity
// estimate must not depend on the batch size the observation came from,
// for any (b, R, h) combination.
func TestEstimatorBatchInvariance(t *testing.T) {
	f := func(bRaw, mcsRaw uint8, hRawUs uint16) bool {
		const M, S = 32, packet.MTU
		b := 1 + int(bRaw)%M
		R := BitrateForMCS(int(mcsRaw) % 8)
		h := sim.Time(hRawUs%5000) * sim.Microsecond
		est := NewEstimator(M, S, 40*sim.Millisecond)
		est.Cap = false
		tia := sim.FromSeconds(float64(b*S*8)/R) + h
		est.OnBlockAck(sim.Second, b, tia, R)
		got := est.RateBps(sim.Second)
		want := float64(M*S*8) / (float64(M*S*8)/R + h.Seconds())
		return math.Abs(got-want)/want < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEstimatorCapAtTwiceDequeueRate(t *testing.T) {
	const M, S = 20, packet.MTU
	est := NewEstimator(M, S, 100*sim.Millisecond)
	R := 65e6
	// A trickle: one 1-frame batch per 50 ms => dequeue rate 240 kbit/s.
	now := sim.Time(0)
	for i := 0; i < 4; i++ {
		now += 50 * sim.Millisecond
		tia := sim.FromSeconds(float64(S*8)/R) + sim.Millisecond
		est.OnBlockAck(now, 1, tia, R)
	}
	got := est.RateBps(now)
	deqRate := 3.0 * S * 8 / 0.1 // 3 batches within the 100 ms window
	cap2 := 2 * deqRate
	if got > cap2*1.01 {
		t.Errorf("estimate %.1f Mbit/s exceeds 2x dequeue rate %.1f", got/1e6, cap2/1e6)
	}
}

func TestEstimatorWindowExpiryHoldsLastValue(t *testing.T) {
	est := NewEstimator(20, packet.MTU, 40*sim.Millisecond)
	est.Cap = false
	est.OnBlockAck(0, 20, 10*sim.Millisecond, 26e6)
	inWindow := est.RateBps(20 * sim.Millisecond)
	// Past the window the estimator holds the last estimate (a lightly
	// loaded link must not read as zero capacity, which would deadlock
	// an ABC router into permanent brakes).
	if held := est.RateBps(sim.Second); held != inWindow {
		t.Errorf("held estimate %v != windowed estimate %v", held, inWindow)
	}
	// With the cap enabled, the stale estimate is bounded by the (zero)
	// recent dequeue rate only if packets stopped entirely — the cap
	// horizon is 5x the window.
	est.Cap = true
	if capped := est.RateBps(sim.Second); capped > inWindow {
		t.Errorf("capped stale estimate %v exceeds raw %v", capped, inWindow)
	}
}

func TestEstimatorIgnoresInvalid(t *testing.T) {
	est := NewEstimator(20, packet.MTU, 40*sim.Millisecond)
	est.OnBlockAck(0, 0, sim.Millisecond, 26e6)
	est.OnBlockAck(0, 5, 0, 26e6)
	est.OnBlockAck(0, 5, sim.Millisecond, 0)
	if len(est.samples) != 0 {
		t.Error("invalid observations accepted")
	}
}

func TestTrueCapacityBps(t *testing.T) {
	cfg := DefaultLinkConfig()
	cfg.MCS = func(sim.Time) int { return 7 }
	got := TrueCapacityBps(cfg, 0)
	// Must be below the PHY rate (batch overhead costs ~25% at MCS 7)
	// but above 70% of it.
	if got >= 65e6 || got < 0.7*65e6 {
		t.Errorf("true capacity %.1f Mbit/s", got/1e6)
	}
}

// TestLinkEstimatorClosedLoop: a backlogged link with the estimator
// attached must report close to the true capacity.
func TestLinkEstimatorClosedLoop(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultLinkConfig()
	cfg.MCS = func(sim.Time) int { return 5 }
	est := NewEstimator(cfg.MaxBatch, cfg.FrameSize, 40*sim.Millisecond)
	l := NewLink(s, cfg, qdisc.NewDropTail(0), &packet.Sink{}, est)
	// Keep it backlogged.
	seq := int64(0)
	s.Every(10*sim.Millisecond, func() bool {
		for i := 0; i < 40; i++ {
			l.Recv(packet.NewData(0, seq, packet.MTU, s.Now()))
			seq++
		}
		return s.Now() < 3*sim.Second
	})
	s.RunUntil(3 * sim.Second)
	got := est.RateBps(3 * sim.Second)
	want := TrueCapacityBps(cfg, 0)
	if math.Abs(got-want)/want > 0.08 {
		t.Errorf("backlogged estimate %.1f Mbit/s, true %.1f", got/1e6, want/1e6)
	}
}

func TestLinkQueueDelayAccounted(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultLinkConfig()
	cfg.MCS = func(sim.Time) int { return 0 } // slow link: visible delay
	var delays []sim.Time
	l := NewLink(s, cfg, qdisc.NewDropTail(0), packet.NodeFunc(func(p *packet.Packet) {
		delays = append(delays, p.QueueDelay)
	}), nil)
	fill(s, l, 60) // 3 batches at MCS0: each batch ~37ms+overhead
	s.Run()
	if len(delays) != 60 {
		t.Fatalf("delivered %d", len(delays))
	}
	if delays[59] <= delays[0] {
		t.Error("later packets should queue longer")
	}
}
