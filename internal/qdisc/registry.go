// Qdisc registry: queueing disciplines self-register under a kind name
// and experiments build them from a provider-agnostic BuildSpec. This
// inverts the old dependency direction, where the experiment harness
// hard-coded a constructor switch over every discipline package: now each
// package (qdisc, abc, explicit, sched) registers its own kinds from an
// init function and the harness only knows the registry.
package qdisc

import (
	"fmt"
	"math/rand"
	"sort"

	"abc/internal/sim"
)

// DefaultBuffer is the queue limit applied when a BuildSpec leaves Buffer
// unset: the paper's 250-packet cellular emulation buffer.
const DefaultBuffer = 250

// BuildSpec describes one discipline instance generically. Fields beyond
// Kind and Buffer are interpreted by the registered builder; providers
// that need richer configuration read their own config type from Config.
type BuildSpec struct {
	// Kind names the registered discipline ("" builds a droptail FIFO).
	Kind string
	// Buffer is the queue limit in packets (<= 0 means DefaultBuffer).
	Buffer int
	// DelayThreshold carries a delay-target override for disciplines that
	// have one (ABC's dt, swept by Fig. 10).
	DelayThreshold sim.Time
	// Feedback is a provider-defined mode selector (ABC uses it to pick
	// dequeue- vs enqueue-rate feedback, Fig. 2).
	Feedback uint8
	// Lie configures a misbehaving (lying) router for kinds that model
	// one: the fraction of brake-bound packets the router fraudulently
	// promotes back to accelerate (ABC's lying-router mode). Callers
	// must not set it for kinds without a misbehaving variant (the exp
	// harness enforces this for QdiscSpec, as with Config).
	Lie float64
	// Config, when non-nil, is a provider-specific full configuration
	// (e.g. *abc.RouterConfig for ablation sweeps). Builders that
	// interpret Config must reject values of a type they do not
	// recognize; callers must not pass a Config to a kind that takes
	// none (the exp harness enforces this for QdiscSpec).
	Config any
	// Rand supplies randomness to probabilistic disciplines (RED, PIE).
	// Builders must tolerate nil.
	Rand *rand.Rand
}

// Builder constructs a discipline from its spec. The spec's Buffer is
// already defaulted by Build.
type Builder func(spec BuildSpec) (Qdisc, error)

var builders = map[string]Builder{}

// Register installs a builder for a kind. It panics on duplicates, which
// turns conflicting registrations into an immediate startup failure
// instead of a silent override.
func Register(kind string, b Builder) {
	if kind == "" || b == nil {
		panic("qdisc: Register with empty kind or nil builder")
	}
	if _, dup := builders[kind]; dup {
		panic(fmt.Sprintf("qdisc: duplicate Register(%q)", kind))
	}
	builders[kind] = b
}

// Build constructs the discipline named by spec.Kind via the registry.
func Build(spec BuildSpec) (Qdisc, error) {
	kind := spec.Kind
	if kind == "" {
		kind = "droptail"
	}
	if spec.Buffer <= 0 {
		spec.Buffer = DefaultBuffer
	}
	b, ok := builders[kind]
	if !ok {
		return nil, fmt.Errorf("qdisc: unknown kind %q (registered: %v)", kind, Kinds())
	}
	return b(spec)
}

// Kinds returns the registered kind names, sorted.
func Kinds() []string {
	out := make([]string, 0, len(builders))
	for k := range builders {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// init registers the disciplines this package itself provides.
func init() {
	Register("droptail", func(s BuildSpec) (Qdisc, error) {
		return NewDropTail(s.Buffer), nil
	})
	Register("codel", func(s BuildSpec) (Qdisc, error) {
		return NewCoDel(s.Buffer, false), nil
	})
	Register("pie", func(s BuildSpec) (Qdisc, error) {
		return NewPIE(s.Buffer, false, s.Rand), nil
	})
	Register("red", func(s BuildSpec) (Qdisc, error) {
		return NewRED(s.Buffer, false, s.Rand), nil
	})
}
