// CoDel per RFC 8289, the AQM the paper pairs with Cubic as its primary
// low-delay baseline (Cubic+Codel).
package qdisc

import (
	"math"

	"abc/internal/packet"
	"abc/internal/sim"
)

// CoDel implements the Controlled Delay AQM. Packets whose queue sojourn
// exceeds Target for at least Interval trigger the dropping state, in which
// packets are dropped (or CE-marked if ECN-capable) at intervals shrinking
// with the square root of the drop count, per the RFC 8289 control law.
type CoDel struct {
	// Target is the acceptable standing queue delay (RFC default 5 ms).
	Target sim.Time
	// Interval is the sliding-minimum window (RFC default 100 ms).
	Interval sim.Time
	// Limit bounds the queue in packets; overflow is dropped at the tail.
	Limit int
	// UseECN marks ECN-capable packets instead of dropping them.
	UseECN bool

	Stats Stats

	q             fifo
	firstAboveAt  sim.Time // when sojourn first went above target (0 = not above)
	dropping      bool
	dropNextAt    sim.Time
	dropCount     int
	lastDropCount int
}

// NewCoDel returns a CoDel queue with RFC 8289 defaults and the given
// packet limit.
func NewCoDel(limit int, useECN bool) *CoDel {
	return &CoDel{
		Target:   5 * sim.Millisecond,
		Interval: 100 * sim.Millisecond,
		Limit:    limit,
		UseECN:   useECN,
	}
}

// Enqueue implements Qdisc.
func (c *CoDel) Enqueue(now sim.Time, p *packet.Packet) bool {
	if c.Limit > 0 && c.q.len() >= c.Limit {
		c.Stats.DroppedPackets++
		return false
	}
	p.EnqueuedAt = now
	c.q.push(p)
	c.Stats.EnqueuedPackets++
	return true
}

// controlLaw returns the next drop time after t for the current count.
func (c *CoDel) controlLaw(t sim.Time) sim.Time {
	return t + sim.Time(float64(c.Interval)/math.Sqrt(float64(c.dropCount)))
}

// doDequeue pops one packet and updates the "ok to drop" condition, per
// the RFC pseudocode.
func (c *CoDel) doDequeue(now sim.Time) (*packet.Packet, bool) {
	p := c.q.pop()
	if p == nil {
		c.firstAboveAt = 0
		return nil, false
	}
	sojourn := now - p.EnqueuedAt
	if sojourn < c.Target || c.q.bytes <= packet.MTU {
		c.firstAboveAt = 0
		return p, false
	}
	okToDrop := false
	if c.firstAboveAt == 0 {
		c.firstAboveAt = now + c.Interval
	} else if now >= c.firstAboveAt {
		okToDrop = true
	}
	return p, okToDrop
}

// Dequeue implements Qdisc, applying the CoDel state machine.
func (c *CoDel) Dequeue(now sim.Time) *packet.Packet {
	p, okToDrop := c.doDequeue(now)
	if p == nil {
		c.dropping = false
		return nil
	}
	if c.dropping {
		if !okToDrop {
			c.dropping = false
		} else {
			for now >= c.dropNextAt && c.dropping {
				if c.UseECN && p.ECN.ECNCapable() {
					// Marking suffices: signal and leave the
					// dropping schedule advanced.
					p.ECN = packet.CE
					c.Stats.MarkedPackets++
					c.dropCount++
					c.dropNextAt = c.controlLaw(c.dropNextAt)
					break
				}
				c.Stats.DroppedPackets++
				c.dropCount++
				p.Release() // dropped inside the discipline: it owns p
				p, okToDrop = c.doDequeue(now)
				if p == nil {
					c.dropping = false
					break
				}
				if !okToDrop {
					c.dropping = false
				} else {
					c.dropNextAt = c.controlLaw(c.dropNextAt)
				}
			}
		}
	} else if okToDrop {
		// Enter dropping state with one signal.
		if c.UseECN && p.ECN.ECNCapable() {
			p.ECN = packet.CE
			c.Stats.MarkedPackets++
		} else {
			c.Stats.DroppedPackets++
			p.Release() // dropped inside the discipline: it owns p
			p, _ = c.doDequeue(now)
		}
		c.dropping = true
		// Restart count near the previous steady-state rate if the last
		// dropping episode was recent (RFC 8289 §5.4).
		delta := c.dropCount - c.lastDropCount
		c.dropCount = 1
		if delta > 1 && now-c.dropNextAt < 16*c.Interval {
			c.dropCount = delta
		}
		c.dropNextAt = c.controlLaw(now)
		c.lastDropCount = c.dropCount
	}
	if p != nil {
		c.Stats.DequeuedPackets++
		c.Stats.DequeuedBytes += int64(p.Size)
	}
	return p
}

// Len implements Qdisc.
func (c *CoDel) Len() int { return c.q.len() }

// Bytes implements Qdisc.
func (c *CoDel) Bytes() int { return c.q.bytes }
