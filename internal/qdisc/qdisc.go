// Package qdisc implements the queueing disciplines used at simulated
// bottleneck links: the plain droptail FIFO the paper uses for its
// cellular-emulation buffers, and the AQM baselines (RED, CoDel, PIE) that
// the paper evaluates underneath Cubic.
//
// All disciplines are passive objects driven by the owning link: the link
// calls Enqueue when a packet arrives and Dequeue at each transmission
// opportunity. Time is supplied by the caller so disciplines stay free of
// any global clock and remain trivially testable.
package qdisc

import (
	"abc/internal/packet"
	"abc/internal/sim"
)

// Qdisc is a queueing discipline instance for one link.
type Qdisc interface {
	// Enqueue offers p to the queue at time now. It reports whether the
	// packet was accepted; rejected packets are dropped.
	Enqueue(now sim.Time, p *packet.Packet) bool
	// Dequeue removes and returns the next packet to transmit, or nil if
	// the queue is empty (or the discipline chose to drop everything).
	Dequeue(now sim.Time) *packet.Packet
	// Len returns the number of queued packets.
	Len() int
	// Bytes returns the number of queued bytes.
	Bytes() int
}

// CapacityAware is implemented by disciplines that need the link's current
// capacity estimate (ABC, XCP, RCP, VCP routers). The link installs the
// provider before the simulation starts.
type CapacityAware interface {
	SetCapacityProvider(f func(now sim.Time) float64)
}

// Background is a fluid background aggregate coupled into a link's
// service loop (implemented by fluid.Coupler). The aggregate is a
// deterministic fixed-step rate process standing in for many virtual
// flows: it drains a share of the link's capacity and contributes queue
// occupancy, without any per-packet events. Consumers read it at packet
// granularity; the values advance only at the aggregate's own step
// instants, which is the coupling contract's time resolution.
type Background interface {
	// QueueBytes is the fluid backlog (bytes of virtual background
	// traffic queued at the link) at time now.
	QueueBytes(now sim.Time) float64
	// Share is the fraction of link service the aggregate consumed over
	// the current coupling step, in [0, 1). Links serve foreground
	// packets at the residual (1 − Share) of their capacity.
	Share(now sim.Time) float64
	// ServedBps is the aggregate's service rate over the last step in
	// bits/sec (part of the total dequeue rate a router measures).
	ServedBps(now sim.Time) float64
	// ServedBytes is the cumulative fluid bytes served so far.
	ServedBytes(now sim.Time) float64
}

// BackgroundAware is implemented by links and disciplines whose service
// accounting can host a fluid background (netem links, the ABC router).
type BackgroundAware interface {
	SetBackground(bg Background)
}

// Stats counts events common to every discipline.
type Stats struct {
	EnqueuedPackets int64
	DroppedPackets  int64
	MarkedPackets   int64 // CE marks by AQM
	DequeuedPackets int64
	DequeuedBytes   int64
}

// fifo is the common packet store: a slice-backed FIFO with byte counting.
type fifo struct {
	pkts  []*packet.Packet
	bytes int
	head  int
}

func (f *fifo) push(p *packet.Packet) {
	f.pkts = append(f.pkts, p)
	f.bytes += p.Size
}

func (f *fifo) pop() *packet.Packet {
	if f.head >= len(f.pkts) {
		return nil
	}
	p := f.pkts[f.head]
	f.pkts[f.head] = nil
	f.head++
	f.bytes -= p.Size
	// Compact once the dead prefix dominates, keeping amortized O(1).
	if f.head > 64 && f.head*2 >= len(f.pkts) {
		n := copy(f.pkts, f.pkts[f.head:])
		f.pkts = f.pkts[:n]
		f.head = 0
	}
	return p
}

func (f *fifo) peek() *packet.Packet {
	if f.head >= len(f.pkts) {
		return nil
	}
	return f.pkts[f.head]
}

func (f *fifo) len() int { return len(f.pkts) - f.head }

// DropTail is a FIFO with a packet-count limit, the buffer model used for
// the paper's 250-packet cellular bottleneck buffers.
type DropTail struct {
	Limit int // packets; <=0 means unlimited
	Stats Stats
	q     fifo
	bg    Background
}

// NewDropTail returns a droptail queue bounded to limit packets.
func NewDropTail(limit int) *DropTail { return &DropTail{Limit: limit} }

// SetBackground implements BackgroundAware: the buffer is shared, so
// fluid backlog occupies droptail slots exactly as real background
// packets would.
func (d *DropTail) SetBackground(bg Background) { d.bg = bg }

// Enqueue implements Qdisc.
func (d *DropTail) Enqueue(now sim.Time, p *packet.Packet) bool {
	if d.Limit > 0 {
		occupied := d.q.len()
		if d.bg != nil {
			occupied += int(d.bg.QueueBytes(now) / packet.MTU)
		}
		if occupied >= d.Limit {
			d.Stats.DroppedPackets++
			return false
		}
	}
	p.EnqueuedAt = now
	d.q.push(p)
	d.Stats.EnqueuedPackets++
	return true
}

// Dequeue implements Qdisc.
func (d *DropTail) Dequeue(now sim.Time) *packet.Packet {
	p := d.q.pop()
	if p != nil {
		d.Stats.DequeuedPackets++
		d.Stats.DequeuedBytes += int64(p.Size)
	}
	return p
}

// Len implements Qdisc.
func (d *DropTail) Len() int { return d.q.len() }

// Bytes implements Qdisc.
func (d *DropTail) Bytes() int { return d.q.bytes }

// markOrDrop applies an AQM congestion signal to p: ECN-capable packets
// are CE-marked (and kept), others indicate they must be dropped.
// It reports whether the packet survives.
func markOrDrop(p *packet.Packet, st *Stats) bool {
	if p.ECN.ECNCapable() {
		p.ECN = packet.CE
		st.MarkedPackets++
		return true
	}
	st.DroppedPackets++
	return false
}
