// PIE per RFC 8033, the second AQM baseline (Cubic+PIE).
package qdisc

import (
	"math/rand"

	"abc/internal/packet"
	"abc/internal/sim"
)

// PIE implements the Proportional Integral controller Enhanced AQM. The
// drop probability is updated on a fixed period from the estimated queuing
// delay (queue bytes / measured departure rate) and applied on enqueue.
type PIE struct {
	// Target is the queue-delay reference (RFC default 15 ms).
	Target sim.Time
	// TUpdate is the probability-update period (RFC default 15 ms).
	TUpdate sim.Time
	// Alpha and Beta are the PI controller gains (RFC defaults).
	Alpha, Beta float64
	// Limit bounds the queue in packets.
	Limit int
	// UseECN marks ECN-capable packets instead of dropping while the drop
	// probability is below 10% (RFC 8033 §5.1).
	UseECN bool

	Stats Stats

	rng *rand.Rand
	q   fifo

	dropProb     float64
	qdelayOld    sim.Time
	lastUpdate   sim.Time
	burstAllow   sim.Time
	departedB    int64    // bytes departed in current rate-measurement cycle
	measStart    sim.Time // start of rate measurement
	avgDrainRate float64  // bytes/sec
	inMeasure    bool
}

// NewPIE returns a PIE queue with RFC 8033 defaults.
func NewPIE(limit int, useECN bool, rng *rand.Rand) *PIE {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &PIE{
		Target:     15 * sim.Millisecond,
		TUpdate:    15 * sim.Millisecond,
		Alpha:      0.125,
		Beta:       1.25,
		Limit:      limit,
		UseECN:     useECN,
		rng:        rng,
		burstAllow: 150 * sim.Millisecond,
	}
}

// qdelay estimates the current queuing delay from the departure rate.
func (pi *PIE) qdelay() sim.Time {
	if pi.avgDrainRate <= 0 {
		return 0
	}
	return sim.FromSeconds(float64(pi.q.bytes) / pi.avgDrainRate)
}

// update recomputes the drop probability; called lazily from Enqueue and
// Dequeue whenever TUpdate has elapsed, which keeps the discipline free of
// timers while remaining faithful to the RFC control law.
func (pi *PIE) update(now sim.Time) {
	for now-pi.lastUpdate >= pi.TUpdate {
		pi.lastUpdate += pi.TUpdate
		qd := pi.qdelay()
		p := pi.Alpha*float64(qd-pi.Target)/float64(sim.Second) +
			pi.Beta*float64(qd-pi.qdelayOld)/float64(sim.Second)
		// RFC 8033 auto-tuning: scale the adjustment with the current
		// probability so small probabilities move gently.
		switch {
		case pi.dropProb < 0.000001:
			p /= 2048
		case pi.dropProb < 0.00001:
			p /= 512
		case pi.dropProb < 0.0001:
			p /= 128
		case pi.dropProb < 0.001:
			p /= 32
		case pi.dropProb < 0.01:
			p /= 8
		case pi.dropProb < 0.1:
			p /= 2
		}
		pi.dropProb += p
		// Exponential decay when the queue is idle.
		if qd == 0 && pi.qdelayOld == 0 {
			pi.dropProb *= 0.98
		}
		if pi.dropProb < 0 {
			pi.dropProb = 0
		}
		if pi.dropProb > 1 {
			pi.dropProb = 1
		}
		pi.qdelayOld = qd
		if pi.dropProb == 0 && qd == 0 {
			pi.burstAllow = 150 * sim.Millisecond
		} else if pi.burstAllow > 0 {
			pi.burstAllow -= pi.TUpdate
		}
	}
}

// Enqueue implements Qdisc.
func (pi *PIE) Enqueue(now sim.Time, p *packet.Packet) bool {
	if pi.lastUpdate == 0 {
		pi.lastUpdate = now
	}
	pi.update(now)
	if pi.Limit > 0 && pi.q.len() >= pi.Limit {
		pi.Stats.DroppedPackets++
		return false
	}
	if pi.burstAllow <= 0 && pi.dropProb > 0 && pi.qdelay() > pi.Target/2 {
		if pi.rng.Float64() < pi.dropProb {
			if !pi.UseECN || pi.dropProb >= 0.1 || !p.ECN.ECNCapable() {
				pi.Stats.DroppedPackets++
				return false
			}
			p.ECN = packet.CE
			pi.Stats.MarkedPackets++
		}
	}
	p.EnqueuedAt = now
	pi.q.push(p)
	pi.Stats.EnqueuedPackets++
	return true
}

// Dequeue implements Qdisc, also feeding the departure-rate estimator.
func (pi *PIE) Dequeue(now sim.Time) *packet.Packet {
	pi.update(now)
	p := pi.q.pop()
	if p == nil {
		pi.inMeasure = false
		return nil
	}
	pi.Stats.DequeuedPackets++
	pi.Stats.DequeuedBytes += int64(p.Size)
	// Departure-rate measurement per RFC 8033 §4.3: measure while at
	// least a threshold of data is queued.
	const threshold = 10 * packet.MTU
	if pi.q.bytes >= threshold && !pi.inMeasure {
		pi.inMeasure = true
		pi.measStart = now
		pi.departedB = 0
	}
	if pi.inMeasure {
		pi.departedB += int64(p.Size)
		if dur := now - pi.measStart; dur >= 30*sim.Millisecond {
			rate := float64(pi.departedB) / dur.Seconds()
			if pi.avgDrainRate == 0 {
				pi.avgDrainRate = rate
			} else {
				pi.avgDrainRate = 0.9*pi.avgDrainRate + 0.1*rate
			}
			pi.inMeasure = false
		}
	}
	return p
}

// Len implements Qdisc.
func (pi *PIE) Len() int { return pi.q.len() }

// Bytes implements Qdisc.
func (pi *PIE) Bytes() int { return pi.q.bytes }
