package qdisc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"abc/internal/packet"
	"abc/internal/sim"
)

func mkPkt(seq int64, ecn packet.ECN) *packet.Packet {
	p := packet.NewData(1, seq, packet.MTU, 0)
	p.ECN = ecn
	return p
}

func TestDropTailFIFOOrder(t *testing.T) {
	q := NewDropTail(10)
	for i := int64(0); i < 5; i++ {
		if !q.Enqueue(sim.Time(i), mkPkt(i, packet.NotECT)) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	if q.Len() != 5 || q.Bytes() != 5*packet.MTU {
		t.Errorf("len=%d bytes=%d", q.Len(), q.Bytes())
	}
	for i := int64(0); i < 5; i++ {
		p := q.Dequeue(10 * sim.Millisecond)
		if p == nil || p.Seq != i {
			t.Fatalf("dequeue %d: got %v", i, p)
		}
	}
	if q.Dequeue(0) != nil {
		t.Error("empty queue returned a packet")
	}
}

func TestDropTailLimit(t *testing.T) {
	q := NewDropTail(3)
	for i := int64(0); i < 5; i++ {
		q.Enqueue(0, mkPkt(i, packet.NotECT))
	}
	if q.Len() != 3 {
		t.Errorf("len = %d, want 3", q.Len())
	}
	if q.Stats.DroppedPackets != 2 {
		t.Errorf("drops = %d, want 2", q.Stats.DroppedPackets)
	}
}

func TestDropTailUnlimited(t *testing.T) {
	q := NewDropTail(0)
	for i := int64(0); i < 1000; i++ {
		if !q.Enqueue(0, mkPkt(i, packet.NotECT)) {
			t.Fatal("unlimited queue rejected a packet")
		}
	}
	if q.Len() != 1000 {
		t.Errorf("len = %d", q.Len())
	}
}

// TestFIFOCompaction exercises the head-compaction path with interleaved
// operations.
func TestFIFOCompaction(t *testing.T) {
	q := NewDropTail(0)
	next := int64(0)
	out := int64(0)
	for round := 0; round < 50; round++ {
		for i := 0; i < 40; i++ {
			q.Enqueue(0, mkPkt(next, packet.NotECT))
			next++
		}
		for i := 0; i < 35; i++ {
			p := q.Dequeue(0)
			if p == nil || p.Seq != out {
				t.Fatalf("round %d: got %v want seq %d", round, p, out)
			}
			out++
		}
	}
	if q.Len() != int(next-out) {
		t.Errorf("len = %d, want %d", q.Len(), next-out)
	}
}

// TestFIFOOrderProperty: for any interleaving of pushes and pops the
// FIFO never reorders.
func TestFIFOOrderProperty(t *testing.T) {
	f := func(ops []bool) bool {
		q := NewDropTail(0)
		var next, out int64
		for _, push := range ops {
			if push {
				q.Enqueue(0, mkPkt(next, packet.NotECT))
				next++
			} else if p := q.Dequeue(0); p != nil {
				if p.Seq != out {
					return false
				}
				out++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// drainAt pops until empty at the given per-packet interval, returning
// max sojourn observed by the caller's clock.
func TestCoDelMarksPersistentQueue(t *testing.T) {
	q := NewCoDel(0, true)
	now := sim.Time(0)
	// Build a standing queue of ECN-capable packets and drain slower
	// than the arrival for a while.
	seq := int64(0)
	marked := 0
	for step := 0; step < 4000; step++ {
		now += sim.Millisecond
		q.Enqueue(now, mkPkt(seq, packet.Accel))
		seq++
		if step%2 == 0 { // drain at half the arrival rate
			if p := q.Dequeue(now); p != nil && p.ECN == packet.CE {
				marked++
			}
		}
	}
	if marked == 0 {
		t.Error("CoDel never CE-marked a persistently over-target queue")
	}
}

func TestCoDelDropsWithoutECN(t *testing.T) {
	q := NewCoDel(0, false)
	now := sim.Time(0)
	seq := int64(0)
	for step := 0; step < 4000; step++ {
		now += sim.Millisecond
		q.Enqueue(now, mkPkt(seq, packet.NotECT))
		seq++
		if step%2 == 0 {
			q.Dequeue(now)
		}
	}
	if q.Stats.DroppedPackets == 0 {
		t.Error("CoDel never dropped a persistently over-target queue")
	}
}

func TestCoDelIdleBelowTarget(t *testing.T) {
	q := NewCoDel(0, false)
	now := sim.Time(0)
	// Arrival == departure, sojourn ~0: no drops ever.
	for i := int64(0); i < 1000; i++ {
		now += sim.Millisecond
		q.Enqueue(now, mkPkt(i, packet.NotECT))
		if p := q.Dequeue(now); p == nil {
			t.Fatal("lost a packet")
		}
	}
	if q.Stats.DroppedPackets != 0 {
		t.Errorf("dropped %d packets with empty queue", q.Stats.DroppedPackets)
	}
}

func TestPIEDropsUnderLoad(t *testing.T) {
	q := NewPIE(0, false, rand.New(rand.NewSource(1)))
	now := sim.Time(0)
	seq := int64(0)
	// Overload: 2 arrivals per departure, 1500B/ms departures (12Mbps).
	for step := 0; step < 5000; step++ {
		now += sim.Millisecond
		q.Enqueue(now, mkPkt(seq, packet.NotECT))
		seq++
		q.Enqueue(now, mkPkt(seq, packet.NotECT))
		seq++
		q.Dequeue(now)
	}
	if q.Stats.DroppedPackets == 0 {
		t.Error("PIE never dropped under 2x overload")
	}
}

func TestPIECalmWhenUnloaded(t *testing.T) {
	q := NewPIE(0, false, rand.New(rand.NewSource(1)))
	now := sim.Time(0)
	for i := int64(0); i < 2000; i++ {
		now += sim.Millisecond
		q.Enqueue(now, mkPkt(i, packet.NotECT))
		q.Dequeue(now)
	}
	if q.Stats.DroppedPackets > 0 {
		t.Errorf("PIE dropped %d packets at zero standing queue", q.Stats.DroppedPackets)
	}
}

func TestREDDropsAboveThreshold(t *testing.T) {
	q := NewRED(100, false, rand.New(rand.NewSource(1)))
	now := sim.Time(0)
	seq := int64(0)
	for step := 0; step < 5000; step++ {
		now += 100 * sim.Microsecond
		q.Enqueue(now, mkPkt(seq, packet.NotECT))
		seq++
		if step%2 == 0 {
			q.Dequeue(now)
		}
	}
	if q.Stats.DroppedPackets == 0 {
		t.Error("RED never dropped despite persistent overload")
	}
}

func TestREDECNMarksInsteadOfDropping(t *testing.T) {
	q := NewRED(100, true, rand.New(rand.NewSource(1)))
	now := sim.Time(0)
	seq := int64(0)
	for step := 0; step < 5000; step++ {
		now += 100 * sim.Microsecond
		q.Enqueue(now, mkPkt(seq, packet.Accel))
		seq++
		if step%2 == 0 {
			q.Dequeue(now)
		}
	}
	if q.Stats.MarkedPackets == 0 {
		t.Error("RED with ECN never marked")
	}
}

// TestQdiscConservation: packets in = packets out + drops + still queued,
// for every discipline, under random load patterns.
func TestQdiscConservation(t *testing.T) {
	mk := map[string]func() Qdisc{
		"droptail": func() Qdisc { return NewDropTail(50) },
		"codel":    func() Qdisc { return NewCoDel(50, false) },
		"pie":      func() Qdisc { return NewPIE(50, false, rand.New(rand.NewSource(2))) },
		"red":      func() Qdisc { return NewRED(50, false, rand.New(rand.NewSource(2))) },
	}
	for name, ctor := range mk {
		t.Run(name, func(t *testing.T) {
			q := ctor()
			rng := rand.New(rand.NewSource(7))
			now := sim.Time(0)
			var in, out, rejected int64
			for step := 0; step < 20000; step++ {
				now += sim.Time(rng.Int63n(int64(2 * sim.Millisecond)))
				if rng.Intn(3) > 0 {
					in++
					if !q.Enqueue(now, mkPkt(in, packet.NotECT)) {
						rejected++
					}
				} else if q.Dequeue(now) != nil {
					out++
				}
			}
			var stats Stats
			switch qq := q.(type) {
			case *DropTail:
				stats = qq.Stats
			case *CoDel:
				stats = qq.Stats
			case *PIE:
				stats = qq.Stats
			case *RED:
				stats = qq.Stats
			}
			// CoDel drops at dequeue time too, so account via stats.
			total := out + int64(q.Len()) + stats.DroppedPackets
			if total != in {
				t.Errorf("%s: in=%d out=%d queued=%d dropped=%d (sum %d)",
					name, in, out, q.Len(), stats.DroppedPackets, total)
			}
		})
	}
}

func TestMarkOrDrop(t *testing.T) {
	var st Stats
	p := mkPkt(1, packet.Accel)
	if !markOrDrop(p, &st) || p.ECN != packet.CE || st.MarkedPackets != 1 {
		t.Errorf("ECN-capable packet should be CE-marked: %v", p.ECN)
	}
	p2 := mkPkt(2, packet.NotECT)
	if markOrDrop(p2, &st) || st.DroppedPackets != 1 {
		t.Error("NotECT packet should be dropped")
	}
}
