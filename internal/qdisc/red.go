// RED (Floyd & Jacobson 1993), included for completeness among the AQM
// baselines the paper cites (§2).
package qdisc

import (
	"math/rand"

	"abc/internal/packet"
	"abc/internal/sim"
)

// RED implements Random Early Detection with the classic gentle variant:
// the drop probability ramps from 0 at MinTh to MaxP at MaxTh, then to 1
// at 2*MaxTh, computed over an EWMA of the queue length.
type RED struct {
	// MinTh and MaxTh are the average-queue thresholds in packets.
	MinTh, MaxTh float64
	// MaxP is the drop probability at MaxTh.
	MaxP float64
	// Wq is the EWMA weight for the average queue length.
	Wq float64
	// Limit bounds the instantaneous queue in packets.
	Limit int
	// UseECN marks instead of dropping where possible.
	UseECN bool

	Stats Stats

	rng     *rand.Rand
	q       fifo
	avg     float64
	count   int // packets since last mark/drop
	idleAt  sim.Time
	wasIdle bool
}

// NewRED returns a RED queue with conventional parameters scaled to the
// given buffer limit.
func NewRED(limit int, useECN bool, rng *rand.Rand) *RED {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &RED{
		MinTh:  float64(limit) * 0.2,
		MaxTh:  float64(limit) * 0.6,
		MaxP:   0.1,
		Wq:     0.002,
		Limit:  limit,
		UseECN: useECN,
		rng:    rng,
	}
}

// Enqueue implements Qdisc.
func (r *RED) Enqueue(now sim.Time, p *packet.Packet) bool {
	if r.Limit > 0 && r.q.len() >= r.Limit {
		r.Stats.DroppedPackets++
		return false
	}
	// Update the average, decaying it for idle periods.
	if r.wasIdle {
		idle := (now - r.idleAt).Seconds()
		// Treat idle time as ~1500 pkt/s of virtual departures.
		m := idle * 1500
		for i := 0; i < int(m) && r.avg > 0; i++ {
			r.avg *= 1 - r.Wq
		}
		r.wasIdle = false
	}
	r.avg = (1-r.Wq)*r.avg + r.Wq*float64(r.q.len())

	drop := false
	switch {
	case r.avg < r.MinTh:
		r.count = 0
	case r.avg < r.MaxTh:
		r.count++
		pb := r.MaxP * (r.avg - r.MinTh) / (r.MaxTh - r.MinTh)
		pa := pb / (1 - float64(r.count)*pb)
		if pa < 0 || pa > 1 {
			pa = 1
		}
		if r.rng.Float64() < pa {
			drop = true
			r.count = 0
		}
	case r.avg < 2*r.MaxTh: // gentle region
		r.count++
		pb := r.MaxP + (1-r.MaxP)*(r.avg-r.MaxTh)/r.MaxTh
		if r.rng.Float64() < pb {
			drop = true
			r.count = 0
		}
	default:
		drop = true
		r.count = 0
	}
	if drop {
		if r.UseECN && p.ECN.ECNCapable() {
			p.ECN = packet.CE
			r.Stats.MarkedPackets++
		} else {
			r.Stats.DroppedPackets++
			return false
		}
	}
	p.EnqueuedAt = now
	r.q.push(p)
	r.Stats.EnqueuedPackets++
	return true
}

// Dequeue implements Qdisc.
func (r *RED) Dequeue(now sim.Time) *packet.Packet {
	p := r.q.pop()
	if p == nil {
		if !r.wasIdle {
			r.wasIdle = true
			r.idleAt = now
		}
		return nil
	}
	r.Stats.DequeuedPackets++
	r.Stats.DequeuedBytes += int64(p.Size)
	if r.q.len() == 0 {
		r.wasIdle = true
		r.idleAt = now
	}
	return p
}

// Len implements Qdisc.
func (r *RED) Len() int { return r.q.len() }

// Bytes implements Qdisc.
func (r *RED) Bytes() int { return r.q.bytes }
