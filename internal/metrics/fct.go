// Application-level metrics: flow-completion-time statistics for
// open-loop workloads and the video quality-of-experience summary the
// paper's motivation (low delay for interactive traffic) is judged by.
package metrics

import "fmt"

// FCTStats condenses a workload's flow-completion-time distribution.
// Slowdown fields are only meaningful when the recorder was fed
// normalized samples (they report zero otherwise).
type FCTStats struct {
	Class  string
	Count  int
	MeanMs float64
	P95Ms  float64
	// MeanSlowdown/P95Slowdown are FCTs normalized by the ideal
	// completion time of a same-size transfer on the unloaded path
	// (dimensionless, >= 1 in a well-behaved run).
	MeanSlowdown float64
	P95Slowdown  float64
	// Bytes is the measured delivered volume.
	Bytes int64
}

// NewFCTStats summarizes a completion-time recorder and an optional
// slowdown recorder (nil or empty leaves the slowdown fields zero).
func NewFCTStats(class string, fct, slowdown *DelayRecorder, bytes int64) FCTStats {
	st := FCTStats{
		Class:  class,
		Count:  fct.Count(),
		MeanMs: fct.Mean(),
		P95Ms:  fct.P95(),
		Bytes:  bytes,
	}
	if slowdown != nil && slowdown.Count() > 0 {
		st.MeanSlowdown = slowdown.Mean()
		st.P95Slowdown = slowdown.P95()
	}
	return st
}

// String renders one workload row.
func (s FCTStats) String() string {
	base := fmt.Sprintf("%-10s flows=%5d  FCT mean=%7.1f ms  p95=%7.1f ms",
		s.Class, s.Count, s.MeanMs, s.P95Ms)
	if s.MeanSlowdown > 0 {
		base += fmt.Sprintf("  slowdown mean=%5.2f p95=%5.2f", s.MeanSlowdown, s.P95Slowdown)
	}
	return base
}

// QoE summarizes an ABR video session: the three components of the
// standard QoE objective (quality, rebuffering, smoothness) plus the
// raw session accounting behind them.
type QoE struct {
	// MeanKbps is the average bitrate of the downloaded chunks.
	MeanKbps float64
	// RebufferRatio is stalled time over (played + stalled) time, after
	// startup.
	RebufferRatio float64
	// RebufferS is the absolute stalled seconds behind the ratio.
	RebufferS float64
	// Switches counts bitrate changes between consecutive chunks.
	Switches int
	// Chunks is the number of fully downloaded chunks.
	Chunks int
	// StartupS is the time from session start to first play.
	StartupS float64
	// PlayedS is the video time actually played out.
	PlayedS float64
}

// String renders one video session row.
func (q QoE) String() string {
	return fmt.Sprintf("bitrate=%6.0f kbps  rebuffer=%5.2f%% (%.1fs)  switches=%3d  chunks=%4d  startup=%.1fs",
		q.MeanKbps, q.RebufferRatio*100, q.RebufferS, q.Switches, q.Chunks, q.StartupS)
}
