// Package metrics collects the measurements the paper reports: per-packet
// delay distributions (mean and percentiles), link utilization against
// delivery opportunities, throughput time series and the Jain fairness
// index.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"abc/internal/sim"
)

// DelayRecorder accumulates per-packet delay statistics in fixed memory:
// a running sum for the mean and a Greenwald-Khanna sketch for
// percentiles. The zero value is ready to use. Setting Exact to true
// before the first Add switches to the historical exact mode, which
// buffers every sample and sorts on query — kept for tests that need
// bit-exact percentiles on large inputs.
type DelayRecorder struct {
	// Exact, when set before the first Add, stores every sample and
	// computes exact nearest-rank percentiles (unbounded memory).
	Exact bool

	count  int64
	sum    float64
	sketch gkSketch

	samples []float64 // exact mode only, milliseconds
	sorted  bool
}

// Add records one delay sample. The sketch is fed in both modes (it is
// cheap and fixed-memory), so flipping Exact mid-stream degrades to the
// streaming estimate instead of misbehaving.
func (d *DelayRecorder) Add(t sim.Time) { d.AddSample(t.Millis()) }

// AddSample records one raw sample in the recorder's unit — milliseconds
// for delay distributions, dimensionless for the slowdown distributions
// that reuse the same streaming machinery.
func (d *DelayRecorder) AddSample(v float64) {
	d.count++
	d.sum += v
	if d.Exact {
		d.samples = append(d.samples, v)
		d.sorted = false
	}
	d.sketch.Add(v)
}

// Merge folds another recorder's samples into this one, as if every
// sample o recorded had been Added here: counts and sums combine
// exactly, sketches merge with the mergeable-summary error bound (the
// two epsilons add). The sharded harness uses it to pool per-shard and
// per-flow recorders in a deterministic order after the run. In Exact
// mode the merged recorder stays exact only if o is Exact too;
// otherwise percentile queries fall back to the merged sketch. o is
// flushed but otherwise unchanged.
func (d *DelayRecorder) Merge(o *DelayRecorder) {
	d.count += o.count
	d.sum += o.sum
	if d.Exact && o.Exact {
		d.samples = append(d.samples, o.samples...)
		d.sorted = false
	}
	d.sketch.merge(&o.sketch)
}

// Count returns the number of samples.
func (d *DelayRecorder) Count() int { return int(d.count) }

// Mean returns the mean delay in milliseconds (0 with no samples).
func (d *DelayRecorder) Mean() float64 {
	if d.count == 0 {
		return 0
	}
	return d.sum / float64(d.count)
}

// Percentile returns the p-th percentile delay in milliseconds with
// nearest-rank semantics; p in [0,100]. In the default streaming mode the
// returned rank is within the sketch's epsilon of the true rank (exact
// for small sample counts); in Exact mode it is the true order statistic.
func (d *DelayRecorder) Percentile(p float64) float64 {
	if d.count == 0 {
		return 0
	}
	// Exact mode only has the full sample set if Exact was set before
	// the first Add; otherwise fall back to the (complete) sketch.
	if d.Exact && int64(len(d.samples)) == d.count {
		if !d.sorted {
			sort.Float64s(d.samples)
			d.sorted = true
		}
		if p <= 0 {
			return d.samples[0]
		}
		if p >= 100 {
			return d.samples[len(d.samples)-1]
		}
		rank := int(math.Ceil(p / 100 * float64(len(d.samples))))
		if rank < 1 {
			rank = 1
		}
		return d.samples[rank-1]
	}
	if p <= 0 {
		return d.sketch.Min()
	}
	if p >= 100 {
		return d.sketch.Max()
	}
	return d.sketch.Query(int64(math.Ceil(p / 100 * float64(d.count))))
}

// P95 is the 95th percentile, the paper's headline delay metric.
func (d *DelayRecorder) P95() float64 { return d.Percentile(95) }

// Timeseries samples a value on a fixed period, for the paper's
// throughput/queuing-delay time plots.
type Timeseries struct {
	Period sim.Time
	Times  []float64 // seconds
	Values []float64
}

// NewTimeseries starts sampling fn every period on the simulator.
func NewTimeseries(s *sim.Simulator, period sim.Time, until sim.Time, fn func(now sim.Time) float64) *Timeseries {
	ts := &Timeseries{Period: period}
	s.Every(period, func() bool {
		now := s.Now()
		if now > until {
			return false
		}
		ts.Times = append(ts.Times, now.Seconds())
		ts.Values = append(ts.Values, fn(now))
		return true
	})
	return ts
}

// Mean returns the mean of the sampled values.
func (t *Timeseries) Mean() float64 {
	if len(t.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range t.Values {
		sum += v
	}
	return sum / float64(len(t.Values))
}

// Max returns the maximum sampled value.
func (t *Timeseries) Max() float64 {
	m := math.Inf(-1)
	for _, v := range t.Values {
		if v > m {
			m = v
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// RateCounter converts byte deliveries into interval throughput in bits/s.
type RateCounter struct {
	bytes     int64
	lastBytes int64
	lastAt    sim.Time
}

// Add records n delivered bytes.
func (r *RateCounter) Add(n int) { r.bytes += int64(n) }

// TotalBytes returns all bytes recorded.
func (r *RateCounter) TotalBytes() int64 { return r.bytes }

// SampleBps returns the average rate since the previous call.
func (r *RateCounter) SampleBps(now sim.Time) float64 {
	dur := now - r.lastAt
	if dur <= 0 {
		return 0
	}
	bps := float64(r.bytes-r.lastBytes) * 8 / dur.Seconds()
	r.lastBytes = r.bytes
	r.lastAt = now
	return bps
}

// JainIndex computes Jain's fairness index over per-flow throughputs:
// (Σx)² / (n·Σx²), which is 1 for perfect fairness and 1/n at worst.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1 // all zero: degenerate but "equal"
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Utilization is delivered/capacity clamped to [0, 1+], reported as the
// paper does against trace delivery opportunities.
func Utilization(deliveredBytes, capacityBytes int64) float64 {
	if capacityBytes <= 0 {
		return 0
	}
	return float64(deliveredBytes) / float64(capacityBytes)
}

// Summary is the (throughput, delay) pair the paper's scatter plots use.
type Summary struct {
	Scheme      string
	Utilization float64
	TputMbps    float64
	MeanMs      float64
	P95Ms       float64
}

// String renders one result row; utilization is omitted when unknown
// (Wi-Fi runs report throughput only, as the paper does).
func (s Summary) String() string {
	if s.Utilization == 0 {
		return fmt.Sprintf("%-14s tput=%6.2f Mbit/s  delay mean=%7.1f ms  p95=%7.1f ms",
			s.Scheme, s.TputMbps, s.MeanMs, s.P95Ms)
	}
	return fmt.Sprintf("%-14s util=%5.1f%%  tput=%6.2f Mbit/s  delay mean=%7.1f ms  p95=%7.1f ms",
		s.Scheme, s.Utilization*100, s.TputMbps, s.MeanMs, s.P95Ms)
}
