package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"abc/internal/sim"
)

func TestDelayRecorderMeanPercentile(t *testing.T) {
	var d DelayRecorder
	for i := 1; i <= 100; i++ {
		d.Add(sim.Time(i) * sim.Millisecond)
	}
	if d.Count() != 100 {
		t.Errorf("count = %d", d.Count())
	}
	if got := d.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("mean = %v", got)
	}
	if got := d.Percentile(95); got != 95 {
		t.Errorf("p95 = %v", got)
	}
	if got := d.P95(); got != 95 {
		t.Errorf("P95() = %v", got)
	}
	if got := d.Percentile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := d.Percentile(100); got != 100 {
		t.Errorf("p100 = %v", got)
	}
}

func TestDelayRecorderEmpty(t *testing.T) {
	var d DelayRecorder
	if d.Mean() != 0 || d.P95() != 0 {
		t.Error("empty recorder must return 0")
	}
}

func TestDelayRecorderAddAfterPercentile(t *testing.T) {
	var d DelayRecorder
	d.Add(10 * sim.Millisecond)
	_ = d.P95()
	d.Add(5 * sim.Millisecond)
	if got := d.Percentile(0); got != 5 {
		t.Errorf("min after re-sort = %v", got)
	}
}

// TestPercentileMonotonicProperty: percentiles are monotone in p and
// bounded by the sample range.
func TestPercentileMonotonicProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var d DelayRecorder
		for _, v := range raw {
			d.Add(sim.Time(v) * sim.Microsecond)
		}
		prev := -1.0
		for p := 0.0; p <= 100; p += 7 {
			v := d.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		sorted := append([]uint16(nil), raw...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		min := float64(sorted[0]) / 1000
		max := float64(sorted[len(sorted)-1]) / 1000
		return d.Percentile(0) >= min-1e-9 && d.Percentile(100) <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestJainIndexKnownValues(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal shares: %v", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("one hog of four: %v", got)
	}
	if got := JainIndex(nil); got != 0 {
		t.Errorf("empty: %v", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 1 {
		t.Errorf("all-zero: %v", got)
	}
}

// TestJainIndexBoundsProperty: 1/n <= J <= 1 for any non-negative input
// with at least one positive value.
func TestJainIndexBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		anyPos := false
		for i, v := range raw {
			xs[i] = float64(v)
			if v > 0 {
				anyPos = true
			}
		}
		if !anyPos {
			return true
		}
		j := JainIndex(xs)
		n := float64(len(xs))
		return j >= 1/n-1e-12 && j <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUtilization(t *testing.T) {
	if got := Utilization(500, 1000); got != 0.5 {
		t.Errorf("util = %v", got)
	}
	if got := Utilization(10, 0); got != 0 {
		t.Errorf("zero capacity: %v", got)
	}
}

func TestRateCounter(t *testing.T) {
	var r RateCounter
	r.Add(1500)
	r.Add(1500)
	bps := r.SampleBps(sim.Second)
	if math.Abs(bps-24000) > 1 {
		t.Errorf("rate = %v", bps)
	}
	// Next interval with no bytes: zero.
	if got := r.SampleBps(2 * sim.Second); got != 0 {
		t.Errorf("idle rate = %v", got)
	}
	if r.TotalBytes() != 3000 {
		t.Errorf("total = %d", r.TotalBytes())
	}
}

func TestTimeseriesSampling(t *testing.T) {
	s := sim.New(1)
	v := 0.0
	ts := NewTimeseries(s, 100*sim.Millisecond, sim.Second, func(now sim.Time) float64 {
		v++
		return v
	})
	s.RunUntil(2 * sim.Second)
	if len(ts.Values) != 10 {
		t.Fatalf("samples = %d", len(ts.Values))
	}
	if ts.Mean() != 5.5 {
		t.Errorf("mean = %v", ts.Mean())
	}
	if ts.Max() != 10 {
		t.Errorf("max = %v", ts.Max())
	}
}

func TestTimeseriesEmpty(t *testing.T) {
	ts := &Timeseries{}
	if ts.Mean() != 0 || ts.Max() != 0 {
		t.Error("empty timeseries stats must be 0")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{Scheme: "ABC", Utilization: 0.9, TputMbps: 10, MeanMs: 50, P95Ms: 100}
	str := s.String()
	if len(str) == 0 {
		t.Error("empty summary string")
	}
}
