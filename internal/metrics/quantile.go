// Greenwald-Khanna streaming quantile sketch (SIGMOD '01), the engine
// behind DelayRecorder's fixed-memory percentile estimates. The sketch
// keeps a sorted list of tuples (v, g, delta) such that for every tuple
// the true rank of v lies in [rmin, rmin+delta], with rmin the running sum
// of g. Inserts are buffered and merged in sorted batches so the
// per-sample cost is amortized O(log b + s/b); memory is
// O((1/eps)·log(eps·n)) instead of one float64 per sample.
//
// For small inputs (n < 1/(2·eps) samples, i.e. before the first
// compression) the sketch holds every sample with g=1, delta=0 and
// queries degenerate to exact nearest-rank percentiles, which keeps unit
// tests on handfuls of samples bit-exact with a sorted slice.
package metrics

import "sort"

// defaultEpsilon is the rank-error bound: p95 on n samples is off by at
// most epsilon·n ranks. 0.0005 keeps sketches exact below 1000 samples
// and within ±0.05% rank at the millions of samples a 60 s cellular run
// produces, while bounding memory to a few thousand tuples.
const defaultEpsilon = 0.0005

// gkTuple is one summary entry: value, rank gap to the previous tuple's
// minimum rank, and rank uncertainty.
type gkTuple struct {
	v     float64
	g     int64
	delta int64
}

// gkSketch is a Greenwald-Khanna epsilon-approximate quantile summary.
// The zero value is ready to use with defaultEpsilon.
type gkSketch struct {
	eps    float64
	n      int64
	tuples []gkTuple
	// spare is the previous tuple buffer, recycled as the next flush's
	// merge destination so steady-state flushes do not allocate.
	spare []gkTuple
	buf   []float64
	// bufLimit caches bufCap() so the per-sample path skips the float
	// division.
	bufLimit int
}

// epsilon returns the configured error bound.
func (s *gkSketch) epsilon() float64 {
	if s.eps <= 0 {
		return defaultEpsilon
	}
	return s.eps
}

// bufCap is the insert-buffer size: one compression period's worth of
// samples, so merges amortize to O(1) comparisons per sample.
func (s *gkSketch) bufCap() int { return int(1/(2*s.epsilon())) + 1 }

// Add inserts one observation.
func (s *gkSketch) Add(v float64) {
	if s.bufLimit == 0 {
		s.bufLimit = s.bufCap()
	}
	s.buf = append(s.buf, v)
	s.n++
	if len(s.buf) >= s.bufLimit {
		s.flush()
	}
}

// Count returns the number of observations.
func (s *gkSketch) Count() int64 { return s.n }

// flush sort-merges the buffered samples into the tuple list and
// compresses mergeable neighbours in the same pass.
func (s *gkSketch) flush() {
	if len(s.buf) == 0 {
		return
	}
	sort.Float64s(s.buf)
	// Merge the sorted buffer and the existing tuples into the recycled
	// spare buffer. New samples enter with g=1; delta is the standard
	// insertion bound floor(2·eps·n)-ish, except at the extremes which
	// must stay exact.
	maxDelta := int64(2 * s.epsilon() * float64(s.n))
	need := len(s.tuples) + len(s.buf)
	merged := s.spare[:0]
	if cap(merged) < need {
		merged = make([]gkTuple, 0, need+need/2)
	}
	ti, bi := 0, 0
	for ti < len(s.tuples) || bi < len(s.buf) {
		if bi >= len(s.buf) {
			merged = append(merged, s.tuples[ti])
			ti++
			continue
		}
		if ti >= len(s.tuples) {
			merged = append(merged, s.newTuple(s.buf[bi], len(merged) == 0, bi == len(s.buf)-1, maxDelta))
			bi++
			continue
		}
		if s.tuples[ti].v <= s.buf[bi] {
			merged = append(merged, s.tuples[ti])
			ti++
		} else {
			// A tuple with a larger value remains, so this insert is
			// never the new maximum.
			merged = append(merged, s.newTuple(s.buf[bi], len(merged) == 0, false, maxDelta))
			bi++
		}
	}
	s.buf = s.buf[:0]
	s.spare = s.tuples[:0]
	s.tuples = s.compress(merged)
}

// newTuple builds the insertion tuple for value v. Extremes carry delta 0
// so min/max stay exact.
func (s *gkSketch) newTuple(v float64, first, last bool, maxDelta int64) gkTuple {
	d := maxDelta
	if d > 0 {
		d-- // standard GK insertion uses floor(2·eps·n)-1 when positive
	}
	if first || last {
		d = 0
	}
	return gkTuple{v: v, g: 1, delta: d}
}

// compress merges adjacent tuples whose combined rank band fits within
// the error budget, bounding summary size.
func (s *gkSketch) compress(ts []gkTuple) []gkTuple {
	if len(ts) <= 2 {
		return ts
	}
	budget := int64(2 * s.epsilon() * float64(s.n))
	out := ts[:1] // never merge away the minimum
	for i := 1; i < len(ts); i++ {
		t := ts[i]
		last := &out[len(out)-1]
		// Merging last into t: t absorbs last's gap.
		if len(out) > 1 && i < len(ts)-1 && last.g+t.g+t.delta <= budget {
			t.g += last.g
			out[len(out)-1] = t
		} else {
			out = append(out, t)
		}
	}
	return out
}

// Query returns the value whose rank is within epsilon·n of r (1-based).
// With an uncompressed summary this is exactly the rank-r order statistic.
func (s *gkSketch) Query(r int64) float64 {
	s.flush()
	if len(s.tuples) == 0 {
		return 0
	}
	if r < 1 {
		r = 1
	}
	if r > s.n {
		r = s.n
	}
	margin := int64(s.epsilon() * float64(s.n))
	var rmin int64
	for i := range s.tuples {
		rmin += s.tuples[i].g
		if i+1 == len(s.tuples) {
			return s.tuples[i].v
		}
		nextRmax := rmin + s.tuples[i+1].g + s.tuples[i+1].delta
		if nextRmax > r+margin {
			return s.tuples[i].v
		}
	}
	return s.tuples[len(s.tuples)-1].v
}

// Min returns the smallest observation (exact).
func (s *gkSketch) Min() float64 {
	s.flush()
	if len(s.tuples) == 0 {
		return 0
	}
	return s.tuples[0].v
}

// Max returns the largest observation (exact).
func (s *gkSketch) Max() float64 {
	s.flush()
	if len(s.tuples) == 0 {
		return 0
	}
	return s.tuples[len(s.tuples)-1].v
}

// merge folds another sketch into this one: both are flushed, the tuple
// lists are merged in value order with their (g, delta) bands kept
// verbatim, and the result is compressed against the combined count.
// Each tuple's rank band stays valid in the merged summary (ranks only
// shift by whole tuples from the other side, which the running g sums
// account for), so the merged error is bounded by the sum of the two
// sketches' epsilons — the standard mergeable-summary bound. o is
// flushed but otherwise unchanged.
//
// When the two sketches were built with different epsilons the merged
// summary adopts the looser bound: the source's (g, delta) bands are
// only as tight as its own epsilon allows, so compressing them against a
// tighter destination budget would claim a rank guarantee the tuples
// cannot support.
func (s *gkSketch) merge(o *gkSketch) {
	s.flush()
	o.flush()
	if o.n == 0 {
		return
	}
	if o.epsilon() > s.epsilon() {
		s.eps = o.epsilon()
		s.bufLimit = 0 // recompute the insert-buffer cap for the new bound
	}
	if s.n == 0 {
		s.n = o.n
		s.tuples = append(s.tuples[:0], o.tuples...)
		return
	}
	need := len(s.tuples) + len(o.tuples)
	merged := s.spare[:0]
	if cap(merged) < need {
		merged = make([]gkTuple, 0, need+need/2)
	}
	si, oi := 0, 0
	for si < len(s.tuples) || oi < len(o.tuples) {
		switch {
		case oi >= len(o.tuples):
			merged = append(merged, s.tuples[si])
			si++
		case si >= len(s.tuples):
			merged = append(merged, o.tuples[oi])
			oi++
		case s.tuples[si].v <= o.tuples[oi].v:
			merged = append(merged, s.tuples[si])
			si++
		default:
			merged = append(merged, o.tuples[oi])
			oi++
		}
	}
	s.n += o.n
	s.spare = s.tuples[:0]
	s.tuples = s.compress(merged)
}

// TupleCount reports the summary size (for memory-bound tests).
func (s *gkSketch) TupleCount() int {
	s.flush()
	return len(s.tuples)
}
