package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"abc/internal/sim"
)

// exactPercentile is the nearest-rank reference implementation.
func exactPercentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// distributions generate the delay shapes the paper's experiments see:
// roughly uniform queuing sweeps, bimodal outage/no-outage mixtures, and
// heavy-tailed bufferbloat spikes.
var distributions = map[string]func(rng *rand.Rand) float64{
	"uniform": func(rng *rand.Rand) float64 { return 10 + 90*rng.Float64() },
	"bimodal": func(rng *rand.Rand) float64 {
		if rng.Float64() < 0.8 {
			return 20 + 5*rng.NormFloat64()
		}
		return 400 + 50*rng.NormFloat64()
	},
	"heavytail": func(rng *rand.Rand) float64 {
		// Pareto(alpha=1.5): infinite variance, the worst case for
		// rank sketches.
		return 10 * math.Pow(rng.Float64(), -1/1.5)
	},
}

// TestStreamingPercentileMatchesExact: the default streaming recorder's
// p50/p95/p99 must land within the sketch's rank tolerance of the exact
// sorted-sample percentile across distribution shapes and sizes.
func TestStreamingPercentileMatchesExact(t *testing.T) {
	for name, gen := range distributions {
		for _, n := range []int{10, 999, 5_000, 200_000} {
			rng := rand.New(rand.NewSource(int64(n) + 17))
			var d DelayRecorder
			samples := make([]float64, 0, n)
			for i := 0; i < n; i++ {
				v := gen(rng)
				samples = append(samples, v)
				d.Add(sim.FromSeconds(v / 1000))
			}
			sort.Float64s(samples)
			for _, p := range []float64{50, 95, 99} {
				got := d.Percentile(p)
				// The sketch guarantees a rank within eps*n of the
				// target; accept any value between the bracketing
				// order statistics (plus float conversion slack).
				slack := int(math.Ceil(2 * defaultEpsilon * float64(n)))
				rank := int(math.Ceil(p / 100 * float64(n)))
				lo := samples[clampIdx(rank-1-slack, n)]
				hi := samples[clampIdx(rank-1+slack, n)]
				if got < lo-1e-6 || got > hi+1e-6 {
					t.Errorf("%s n=%d p%.0f: streaming %.4f outside exact band [%.4f, %.4f]",
						name, n, p, got, lo, hi)
				}
			}
		}
	}
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// TestStreamingSmallInputsExact: below the first compression the sketch
// must reproduce nearest-rank percentiles bit-exactly.
func TestStreamingSmallInputsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var stream, exact DelayRecorder
	exact.Exact = true
	var raw []float64
	for i := 0; i < 500; i++ {
		v := rng.Float64() * 250
		raw = append(raw, v)
		ts := sim.FromSeconds(v / 1000)
		stream.Add(ts)
		exact.Add(ts)
	}
	sort.Float64s(raw)
	for p := 0.0; p <= 100; p += 2.5 {
		if got, want := stream.Percentile(p), exact.Percentile(p); got != want {
			t.Fatalf("p%.1f: streaming %v != exact %v", p, got, want)
		}
	}
}

// TestStreamingMemoryBounded: the sketch must not grow linearly with the
// input. 2M samples must fit in a few thousand tuples.
func TestStreamingMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("2M-sample soak")
	}
	rng := rand.New(rand.NewSource(11))
	var d DelayRecorder
	for i := 0; i < 2_000_000; i++ {
		d.Add(sim.Time(rng.Int63n(int64(sim.Second))))
	}
	if got := d.sketch.TupleCount(); got > 64*int(1/defaultEpsilon) {
		t.Errorf("sketch holds %d tuples for 2M samples; not fixed-memory", got)
	}
	if d.Count() != 2_000_000 {
		t.Errorf("count = %d", d.Count())
	}
}

// TestStreamingMinMaxExact: extremes are tracked exactly in both modes.
func TestStreamingMinMaxExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var d DelayRecorder
	min, max := math.Inf(1), math.Inf(-1)
	for i := 0; i < 10_000; i++ {
		ts := sim.FromSeconds(rng.ExpFloat64() / 10)
		// Track extremes of the value the recorder actually stores
		// (milliseconds after integer-nanosecond quantization).
		min = math.Min(min, ts.Millis())
		max = math.Max(max, ts.Millis())
		d.Add(ts)
	}
	if got := d.Percentile(0); math.Abs(got-min) > 1e-9 {
		t.Errorf("p0 = %v, want exact min %v", got, min)
	}
	if got := d.Percentile(100); math.Abs(got-max) > 1e-9 {
		t.Errorf("p100 = %v, want exact max %v", got, max)
	}
}

// TestExactModeMatchesSeedBehaviour: Exact mode reproduces the original
// buffered implementation including re-sorting after late Adds.
func TestExactModeMatchesSeedBehaviour(t *testing.T) {
	var d DelayRecorder
	d.Exact = true
	d.Add(10 * sim.Millisecond)
	_ = d.P95()
	d.Add(5 * sim.Millisecond)
	if got := d.Percentile(0); got != 5 {
		t.Errorf("min after re-sort = %v", got)
	}
	if got := d.Mean(); math.Abs(got-7.5) > 1e-12 {
		t.Errorf("mean = %v", got)
	}
}

// TestExactSetAfterAddFallsBack: flipping Exact on mid-stream must not
// panic — the recorder falls back to the (complete) sketch.
func TestExactSetAfterAddFallsBack(t *testing.T) {
	var d DelayRecorder
	d.Add(10 * sim.Millisecond)
	d.Add(20 * sim.Millisecond)
	d.Exact = true
	d.Add(30 * sim.Millisecond)
	if got := d.Percentile(50); got != 20 {
		t.Errorf("p50 after late Exact = %v, want 20 (sketch fallback)", got)
	}
	if got := d.Count(); got != 3 {
		t.Errorf("count = %d", got)
	}
}
