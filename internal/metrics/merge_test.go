package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestDelayRecorderMerge: merging K recorders fed disjoint slices of a
// sample stream must agree with one recorder fed the whole stream —
// exactly on count/mean/min/max, within the summed epsilon bound on
// percentiles.
func TestDelayRecorderMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, parts := range []int{2, 4, 7} {
		for _, n := range []int{10, 999, 20000} {
			samples := make([]float64, n)
			for i := range samples {
				// Heavy-tailed-ish mixture, the shape delay data takes.
				v := rng.ExpFloat64() * 20
				if rng.Float64() < 0.1 {
					v += 200 * rng.Float64()
				}
				samples[i] = v
			}
			var whole DelayRecorder
			shards := make([]DelayRecorder, parts)
			for i, v := range samples {
				whole.AddSample(v)
				shards[i%parts].AddSample(v)
			}
			var merged DelayRecorder
			for i := range shards {
				merged.Merge(&shards[i])
			}
			if merged.Count() != whole.Count() {
				t.Fatalf("parts=%d n=%d: merged count %d != %d", parts, n, merged.Count(), whole.Count())
			}
			if math.Abs(merged.Mean()-whole.Mean()) > 1e-9 {
				t.Fatalf("parts=%d n=%d: merged mean %v != %v", parts, n, merged.Mean(), whole.Mean())
			}
			if merged.Percentile(0) != whole.Percentile(0) || merged.Percentile(100) != whole.Percentile(100) {
				t.Fatalf("parts=%d n=%d: min/max drifted under merge", parts, n)
			}
			sorted := append([]float64(nil), samples...)
			sort.Float64s(sorted)
			for _, p := range []float64{50, 95, 99} {
				got := merged.Percentile(p)
				// Allowed rank error: one epsilon per merged sketch plus
				// the query's own epsilon (conservative).
				slack := int(math.Ceil(defaultEpsilon*float64(n)))*(parts+1) + 1
				rank := int(math.Ceil(p / 100 * float64(n)))
				lo, hi := rank-1-slack, rank-1+slack
				if lo < 0 {
					lo = 0
				}
				if hi >= n {
					hi = n - 1
				}
				if got < sorted[lo] || got > sorted[hi] {
					t.Fatalf("parts=%d n=%d p%g: merged %v outside rank band [%v, %v]",
						parts, n, p, got, sorted[lo], sorted[hi])
				}
			}
		}
	}
}

// TestMergeMixedEpsilonAdoptsLooserBound: merging sketches built with
// different epsilon bounds must adopt the looser of the two and keep the
// merged quantiles within the summed rank error versus the exact order
// statistics. (The regression: merge used to compress the source's wide
// bands against the *destination's* epsilon, silently voiding the rank
// guarantee when the destination was the tighter sketch.)
func TestMergeMixedEpsilonAdoptsLooserBound(t *testing.T) {
	const (
		n        = 40_000
		tightEps = defaultEpsilon // 0.0005
		looseEps = 0.02
	)
	for _, dir := range []string{"loose-into-tight", "tight-into-loose"} {
		rng := rand.New(rand.NewSource(9))
		samples := make([]float64, n)
		tight := &gkSketch{eps: tightEps}
		loose := &gkSketch{eps: looseEps}
		for i := range samples {
			v := rng.ExpFloat64() * 15
			if rng.Float64() < 0.1 {
				v += 300 * rng.Float64()
			}
			samples[i] = v
			if i%2 == 0 {
				tight.Add(v)
			} else {
				loose.Add(v)
			}
		}
		dst, src := tight, loose
		if dir == "tight-into-loose" {
			dst, src = loose, tight
		}
		dst.merge(src)
		if got := dst.epsilon(); got != looseEps {
			t.Fatalf("%s: merged epsilon %v, want looser bound %v", dir, got, looseEps)
		}
		if dst.bufLimit != 0 && dst.bufLimit != dst.bufCap() {
			t.Fatalf("%s: stale insert-buffer cap %d (epsilon now %v wants %d)",
				dir, dst.bufLimit, dst.epsilon(), dst.bufCap())
		}
		if dst.Count() != n {
			t.Fatalf("%s: merged count %d != %d", dir, dst.Count(), n)
		}
		sorted := append([]float64(nil), samples...)
		sort.Float64s(sorted)
		// Allowed rank error: one epsilon per constituent sketch (the
		// mergeable-summary bound) plus the query's own margin at the
		// merged — looser — epsilon.
		slack := int(math.Ceil((tightEps+looseEps)*n)) + int(math.Ceil(looseEps*n)) + 1
		for _, p := range []float64{25, 50, 90, 95, 99} {
			rank := int(math.Ceil(p / 100 * n))
			got := dst.Query(int64(rank))
			lo, hi := clampIdx(rank-1-slack, n), clampIdx(rank-1+slack, n)
			if got < sorted[lo] || got > sorted[hi] {
				t.Fatalf("%s p%g: merged %v outside rank band [%v, %v] (slack %d ranks)",
					dir, p, got, sorted[lo], sorted[hi], slack)
			}
		}
		// The merged sketch must stay usable as a stream: further Adds
		// flush against the adopted bound without violating it.
		for i := 0; i < 2*dst.bufCap(); i++ {
			dst.Add(sorted[n/2])
		}
		if dst.Count() != int64(n+2*dst.bufCap()) {
			t.Fatalf("%s: post-merge Adds lost samples", dir)
		}
	}
}

// TestDelayRecorderMergeExact: Exact recorders merge into an Exact
// recorder with bit-identical percentiles.
func TestDelayRecorderMergeExact(t *testing.T) {
	var a, b, whole DelayRecorder
	a.Exact, b.Exact, whole.Exact = true, true, true
	for i := 0; i < 100; i++ {
		v := float64((i * 37) % 101)
		whole.AddSample(v)
		if i%2 == 0 {
			a.AddSample(v)
		} else {
			b.AddSample(v)
		}
	}
	var m DelayRecorder
	m.Exact = true
	m.Merge(&a)
	m.Merge(&b)
	for _, p := range []float64{0, 25, 50, 95, 100} {
		if m.Percentile(p) != whole.Percentile(p) {
			t.Fatalf("p%g: exact merge %v != %v", p, m.Percentile(p), whole.Percentile(p))
		}
	}
}

// TestDelayRecorderMergeEmpty: merging with empty recorders on either
// side is the identity.
func TestDelayRecorderMergeEmpty(t *testing.T) {
	var empty, d DelayRecorder
	d.AddSample(3)
	d.AddSample(5)
	d.Merge(&empty)
	if d.Count() != 2 || d.Mean() != 4 {
		t.Fatalf("merge with empty changed recorder: count=%d mean=%v", d.Count(), d.Mean())
	}
	var dst DelayRecorder
	dst.Merge(&d)
	if dst.Count() != 2 || dst.Percentile(100) != 5 {
		t.Fatalf("merge into empty lost samples: count=%d max=%v", dst.Count(), dst.Percentile(100))
	}
}
