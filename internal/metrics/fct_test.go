package metrics

import (
	"strings"
	"testing"

	"abc/internal/sim"
)

func TestAddSampleMatchesAdd(t *testing.T) {
	var a, b DelayRecorder
	for i := 1; i <= 100; i++ {
		a.Add(sim.Time(i) * sim.Millisecond)
		b.AddSample(float64(i))
	}
	if a.Mean() != b.Mean() || a.P95() != b.P95() || a.Count() != b.Count() {
		t.Errorf("Add and AddSample diverge: mean %v/%v p95 %v/%v",
			a.Mean(), b.Mean(), a.P95(), b.P95())
	}
}

func TestNewFCTStats(t *testing.T) {
	var fct, slow DelayRecorder
	for i := 1; i <= 20; i++ {
		fct.Add(sim.Time(i) * 10 * sim.Millisecond)
		slow.AddSample(float64(i) / 10)
	}
	st := NewFCTStats("web", &fct, &slow, 12345)
	if st.Class != "web" || st.Count != 20 || st.Bytes != 12345 {
		t.Errorf("stats header wrong: %+v", st)
	}
	if st.MeanMs != fct.Mean() || st.P95Ms != fct.P95() {
		t.Errorf("FCT fields wrong: %+v", st)
	}
	if st.MeanSlowdown != slow.Mean() || st.P95Slowdown != slow.P95() {
		t.Errorf("slowdown fields wrong: %+v", st)
	}
	if !strings.Contains(st.String(), "slowdown") {
		t.Errorf("String omits slowdown: %q", st.String())
	}

	empty := NewFCTStats("idle", &DelayRecorder{}, nil, 0)
	if empty.Count != 0 || empty.MeanSlowdown != 0 {
		t.Errorf("empty stats wrong: %+v", empty)
	}
	if strings.Contains(empty.String(), "slowdown") {
		t.Errorf("String shows slowdown with none recorded: %q", empty.String())
	}
}

func TestQoEString(t *testing.T) {
	q := QoE{MeanKbps: 1200, RebufferRatio: 0.05, RebufferS: 2.5, Switches: 3, Chunks: 40, StartupS: 0.8}
	s := q.String()
	for _, want := range []string{"1200", "5.00%", "switches", "chunks"} {
		if !strings.Contains(s, want) {
			t.Errorf("QoE string %q missing %q", s, want)
		}
	}
}
