// Hybrid fluid/packet driver: the experiment behind `abcsim -exp
// hybrid`. It holds a packet-level interactive foreground fixed — one
// ABR video session plus RPC request-response clients — and scales a
// fluid background aggregate on the same bottleneck from zero users to
// a million, in constant simulation cost per scale (the aggregate is a
// fixed-step rate process, not per-user packet events). The rows show
// foreground QoE/FCT degrading as the background claims link share,
// while wall time stays near-flat — the hybrid mode's whole point.
package exp

import (
	"fmt"

	"abc/internal/app"
	"abc/internal/metrics"
	"abc/internal/netem"
	"abc/internal/sim"
)

// HybridScales is the default ladder of background user counts.
var HybridScales = []int{0, 1_000, 1_000_000}

// hybridBpsPerUser is the offered background rate per virtual user:
// ~48 bits/sec each, so a million users offer 48 Mbps against the
// driver's 60 Mbps bottleneck while a thousand offer a negligible
// 48 kbps.
const hybridBpsPerUser = 48.0

// hybridRateMbps is the driver's bottleneck capacity.
const hybridRateMbps = 60.0

// hybridRPCClients is the number of concurrent RPC clients per cell.
const hybridRPCClients = 2

// HybridCell is one background-scale row of the hybrid experiment.
type HybridCell struct {
	// Users is the number of virtual background users the fluid
	// aggregate stands in for (0 = packet-only baseline).
	Users int
	// BgOfferedMbps is the aggregate's steady offered rate.
	BgOfferedMbps float64
	// BgServedMB / BgMeanShare report what the fluid actually consumed:
	// megabytes served and the time-averaged fraction of link service.
	BgServedMB  float64
	BgMeanShare float64
	// VideoQoE / VideoTputMbps summarize the ABR session.
	VideoQoE      metrics.QoE
	VideoTputMbps float64
	// RPCFCT pools the RPC clients' per-call completion times; RPCCalls
	// counts completed exchanges.
	RPCFCT   metrics.FCTStats
	RPCCalls int
	// QDelayP95 is the foreground pooled p95 per-packet accumulated
	// queueing delay (ms) — fluid-inflated when the background is on.
	QDelayP95 float64
}

// Hybrid runs the hybrid fluid/packet experiment: per background scale
// in scales (nil = HybridScales), a 60 Mbps rate bottleneck with an ABC
// qdisc carries one ABR video flow and hybridRPCClients RPC clients
// packet-by-packet, plus one "const" fluid aggregate of scale virtual
// users at hybridBpsPerUser each (skipped when scale is 0). scheme ""
// picks ABC.
func Hybrid(scheme string, scales []int, dur sim.Time, seed int64) ([]HybridCell, error) {
	if scheme == "" {
		scheme = "ABC"
	}
	if len(scales) == 0 {
		scales = HybridScales
	}
	out := make([]HybridCell, len(scales))
	err := forEachCell(len(scales), func(i int) string {
		return fmt.Sprintf("hybrid scheme=%s users=%d seed=%d", scheme, scales[i], seed)
	}, func(i int) error {
		users := scales[i]
		pool := &metrics.DelayRecorder{}
		flows := []FlowSpec{{
			Scheme: scheme,
			App:    &AppSpec{Kind: "abr"},
		}}
		for c := 0; c < hybridRPCClients; c++ {
			flows = append(flows, FlowSpec{
				Scheme: scheme,
				App:    &AppSpec{Kind: "rpc", RPC: app.RPCConfig{FCT: pool}},
			})
		}
		spec := Spec{
			Seed:     seed,
			Duration: dur,
			Links: []LinkSpec{{
				Rate:  netem.ConstRate(hybridRateMbps * 1e6),
				Qdisc: QdiscSpec{Kind: "auto", Buffer: 250},
			}},
			Flows: flows,
		}
		offered := float64(users) * hybridBpsPerUser / 1e6
		if users > 0 {
			spec.Background = []BackgroundSpec{{
				Edge:     "fwd0",
				Kind:     "const",
				Flows:    users,
				RateMbps: offered,
				Ramp:     sim.Second,
			}}
		}
		res, pooled, rerr := Run(spec)
		if rerr != nil {
			return rerr
		}
		video := &res.Flows[0]
		cell := HybridCell{
			Users:         users,
			BgOfferedMbps: offered,
			VideoQoE:      video.App.(*app.ABR).QoE(),
			VideoTputMbps: video.TputMbps,
			QDelayP95:     pooled.P95(),
		}
		var bytes int64
		for c := 1; c <= hybridRPCClients; c++ {
			f := &res.Flows[c]
			cell.RPCCalls += f.App.(*app.RPC).Calls
			bytes += f.Bytes
		}
		cell.RPCFCT = metrics.NewFCTStats("rpc", pool, nil, bytes)
		if len(res.Backgrounds) > 0 {
			cell.BgServedMB = res.Backgrounds[0].ServedMB
			cell.BgMeanShare = res.Backgrounds[0].MeanShare
		}
		out[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
