package exp

import (
	"math/rand"
	"strings"
	"testing"

	"abc/internal/abc"
	"abc/internal/cc"
	"abc/internal/metrics"
	"abc/internal/netem"
	"abc/internal/packet"
	"abc/internal/qdisc"
	"abc/internal/sim"
)

// conservationSpec is the diamond used by the conservation property
// test: two sources reach one sink over two alternative two-hop routes
// each, every bottleneck a droptail rate link so drops are countable.
//
//	s1 ── eA ── m1 ── f1 ── d
//	  └── eB ── m2 ── f2 ──┘
//	s2 ── g1 ── m1 , s2 ── g2 ── m2
func conservationSpec(seed int64, stop, dur sim.Time) Spec {
	mk := func(name, from, to string, mbps float64) EdgeSpec {
		return EdgeSpec{Name: name, From: from, To: to, Link: LinkSpec{
			Rate:  netem.ConstRate(mbps * 1e6),
			Delay: sim.Millisecond, // positive so set_delay events are legal
			Qdisc: QdiscSpec{Kind: "droptail", Buffer: 50},
		}}
	}
	return Spec{
		Seed:     seed,
		Duration: dur,
		Warmup:   1, // count every delivery: conservation is exact, not windowed
		RTT:      20 * sim.Millisecond,
		Nodes:    []string{"s1", "s2", "m1", "m2", "d"},
		Edges: []EdgeSpec{
			mk("eA", "s1", "m1", 8), mk("eB", "s1", "m2", 6),
			mk("f1", "m1", "d", 5), mk("f2", "m2", "d", 5),
			mk("g1", "s2", "m1", 6), mk("g2", "s2", "m2", 4),
		},
		Flows: []FlowSpec{
			{Scheme: "Cubic", Path: []string{"eA", "f1"}, Stop: stop},
			{Scheme: "Cubic", Path: []string{"g2", "f2"}, Stop: stop},
		},
	}
}

// randomTimeline generates a random event sequence over the diamond:
// reroutes between each flow's two legal routes, flaps, rate and delay
// changes — ending with every edge forced up so the network drains.
func randomTimeline(rng *rand.Rand, stop sim.Time) []EventSpec {
	edges := []string{"eA", "eB", "f1", "f2", "g1", "g2"}
	routes := [2][2][]string{
		{{"eA", "f1"}, {"eB", "f2"}},
		{{"g1", "f1"}, {"g2", "f2"}},
	}
	n := 1 + rng.Intn(8)
	evs := make([]EventSpec, 0, n+len(edges))
	for i := 0; i < n; i++ {
		at := sim.FromSeconds(0.05 + rng.Float64()*(stop.Seconds()-0.1))
		switch rng.Intn(5) {
		case 0, 1:
			flow := rng.Intn(2)
			evs = append(evs, EventSpec{At: at, Kind: EventReroute, Flow: flow,
				Path: routes[flow][rng.Intn(2)]})
		case 2:
			kind := EventLinkDown
			if rng.Intn(2) == 0 {
				kind = EventLinkUp
			}
			evs = append(evs, EventSpec{At: at, Kind: kind, Edge: edges[rng.Intn(len(edges))]})
		case 3:
			evs = append(evs, EventSpec{At: at, Kind: EventSetRate,
				Edge: edges[rng.Intn(len(edges))], RateMbps: 2 + 14*rng.Float64()})
		case 4:
			evs = append(evs, EventSpec{At: at, Kind: EventSetDelay,
				Edge: edges[rng.Intn(len(edges))], Delay: sim.FromSeconds(0.02 * rng.Float64())})
		}
	}
	// Drain guarantee: whatever the timeline did, every edge is up once
	// the senders have stopped.
	for _, e := range edges {
		evs = append(evs, EventSpec{At: stop, Kind: EventLinkUp, Edge: e})
	}
	return evs
}

// TestRoutingConservationRandomTimelines is the routing layer's
// conservation property: over randomized reroute/flap/rate/delay
// timelines, once the network has drained every transmitted data packet
// is accounted for exactly once — delivered, dropped by a qdisc, dropped
// at a downed link, or dropped unrouted at a junction. An imbalance in
// either direction (silent loss, duplication) fails the equality.
//
// Every second iteration layers the route-computation policy on top of
// the scripted timeline (emergent reroutes riding the same flap storm,
// with a randomized convergence latency), and every fourth iteration
// additionally makes those emergent changes make-before-break — the
// drain overrides must deliver or strand-and-count, never duplicate.
func TestRoutingConservationRandomTimelines(t *testing.T) {
	iters := 1000
	if testing.Short() {
		iters = 100
	}
	master := rand.New(rand.NewSource(7))
	for i := 0; i < iters; i++ {
		seed := master.Int63()
		rng := rand.New(rand.NewSource(master.Int63()))
		const stop = 1200 * sim.Millisecond
		spec := conservationSpec(seed, stop, 3*sim.Second)
		spec.Events = randomTimeline(rng, stop)
		if i%2 == 1 {
			spec.Routing = &RoutingSpec{
				Policy:           "shortest",
				RecomputeLatency: sim.FromSeconds(0.005 + 0.045*rng.Float64()),
			}
			if i%4 == 3 {
				spec.Routing.Drain = sim.FromSeconds(0.01 + 0.09*rng.Float64())
			}
		}
		res, _, err := Run(spec)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		var sent, deliveredBytes int64
		for f := range res.Flows {
			sent += res.Flows[f].Endpoint.SentPackets
			deliveredBytes += res.Flows[f].Bytes
		}
		if deliveredBytes%packet.MTU != 0 {
			t.Fatalf("iter %d: delivered %d bytes is not MTU-aligned", i, deliveredBytes)
		}
		var qdrops int64
		for _, q := range res.Qdiscs {
			dt, ok := q.(*qdisc.DropTail)
			if !ok {
				t.Fatalf("iter %d: unexpected qdisc %T", i, q)
			}
			qdrops += dt.Stats.DroppedPackets
		}
		accounted := deliveredBytes/packet.MTU + qdrops + res.Drops + res.LinkDownDrops
		if sent != accounted {
			t.Fatalf("iter %d (events %+v): conservation violated: sent %d != delivered %d + qdrops %d + unrouted %d + down %d",
				i, spec.Events, sent, deliveredBytes/packet.MTU, qdrops, res.Drops, res.LinkDownDrops)
		}
	}
}

// TestAckRerouteStaleEchoesDoNotBrake is the feedback-correctness
// regression for ACK-path changes: a downlink ABC flow whose echoes are
// being demoted on a congested reverse edge is rerouted onto a clean
// one; echoes still in flight on the old edge are stale. Once they have
// drained, nothing may keep braking the sender — ReverseBrakes must
// stop growing and the windowed throughput must recover well past its
// throttled level.
func TestAckRerouteStaleEchoesDoNotBrake(t *testing.T) {
	const rerouteAt = 12 * sim.Second
	spec := Spec{
		Seed:     1,
		Duration: 24 * sim.Second,
		Warmup:   2 * sim.Second,
		RTT:      60 * sim.Millisecond,
		Sample:   100 * sim.Millisecond,
		Nodes:    []string{"bs", "ue", "gw"},
		Edges: []EdgeSpec{
			{Name: "down", From: "bs", To: "ue",
				Link: LinkSpec{Rate: netem.ConstRate(12e6), Qdisc: QdiscSpec{Kind: "auto"}}},
			{Name: "upbad", From: "ue", To: "gw",
				Link: LinkSpec{Rate: netem.ConstRate(0.4e6), Qdisc: QdiscSpec{Kind: "abc"}}},
			{Name: "upgood", From: "ue", To: "gw",
				Link: LinkSpec{Rate: netem.ConstRate(20e6), Qdisc: QdiscSpec{Kind: "abc"}}},
		},
		Flows: []FlowSpec{
			{Scheme: "ABC", Path: []string{"down"}, AckPath: []string{"upbad"}},
			// Cross traffic keeps the bad uplink's ABC router braking.
			{Scheme: "ABC", Path: []string{"upbad"}, Source: cc.NewRateLimited(0.36e6)},
		},
		Events: []EventSpec{
			{At: rerouteAt, Kind: EventReroute, Flow: 0, Ack: true, Path: []string{"upgood"}},
		},
	}
	var brakesAfterSettle int64 = -1
	settleAt := rerouteAt + 3*sim.Second
	spec.Probe = func(now sim.Time, r *Result) {
		if now >= settleAt && brakesAfterSettle < 0 {
			brakesAfterSettle = r.Flows[0].Algorithm.(*abc.Sender).ReverseBrakes
		}
	}
	res, _, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	snd := res.Flows[0].Algorithm.(*abc.Sender)
	if snd.ReverseBrakes == 0 {
		t.Fatal("pre-reroute phase produced no demoted echoes; the scenario is not exercising the regression")
	}
	if brakesAfterSettle < 0 {
		t.Fatal("probe never sampled the settled state")
	}
	if snd.ReverseBrakes != brakesAfterSettle {
		t.Fatalf("stale-echo brakes kept arriving after the old ACK path drained: %d at settle, %d at end",
			brakesAfterSettle, snd.ReverseBrakes)
	}
	// Compare the throttled window just before the reroute against the
	// recovered one, skipping the settle transient.
	preWin := windowMean(res.Flows[0].Tput, rerouteAt-3*sim.Second, rerouteAt)
	postWin := windowMean(res.Flows[0].Tput, settleAt, spec.Duration)
	if postWin < 2*preWin {
		t.Fatalf("throughput did not recover after the ACK reroute: %.2f Mbit/s throttled, %.2f after",
			preWin, postWin)
	}
}

// windowMean averages a throughput series over [from, to).
func windowMean(ts *metrics.Timeseries, from, to sim.Time) float64 {
	var sum float64
	var n int
	for i, at := range ts.Times {
		when := sim.FromSeconds(at)
		if when >= from && when < to {
			sum += ts.Values[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TestEventValidation: malformed timelines are Spec errors before the
// run starts, with messages naming the offending event.
func TestEventValidation(t *testing.T) {
	base := func() Spec {
		return Spec{
			Seed:     1,
			Duration: 2 * sim.Second,
			Nodes:    []string{"a", "b"},
			Edges: []EdgeSpec{
				{Name: "e1", From: "a", To: "b",
					Link: LinkSpec{Rate: netem.ConstRate(8e6), Qdisc: QdiscSpec{Kind: "droptail"}}},
				{Name: "e2", From: "a", To: "b",
					Link: LinkSpec{Kind: "wire", Delay: 5 * sim.Millisecond}},
				{Name: "back", From: "b", To: "a",
					Link: LinkSpec{Kind: "wire", Delay: 5 * sim.Millisecond}},
			},
			Flows: []FlowSpec{{Scheme: "Cubic", Path: []string{"e1"}}},
		}
	}
	cases := []struct {
		name string
		ev   EventSpec
		want string
	}{
		{"unknown kind", EventSpec{Kind: "warp"}, "unknown event kind"},
		{"negative time", EventSpec{At: -1, Kind: EventLinkDown, Edge: "e1"}, "negative time"},
		{"unknown edge", EventSpec{Kind: EventLinkDown, Edge: "nope"}, "unknown edge"},
		{"missing edge", EventSpec{Kind: EventLinkUp}, "missing edge"},
		{"flow out of range", EventSpec{Kind: EventReroute, Flow: 7, Path: []string{"e2"}}, "out of range"},
		{"reroute empty path", EventSpec{Kind: EventReroute}, "missing path"},
		{"reroute unknown edge", EventSpec{Kind: EventReroute, Path: []string{"zz"}}, "unknown edge"},
		{"reroute non-contiguous", EventSpec{Kind: EventReroute, Path: []string{"e1", "e2"}}, "not contiguous"},
		{"reroute wrong origin", EventSpec{Kind: EventReroute, Path: []string{"back"}}, "must start at its origin"},
		{"reroute loop to origin", EventSpec{Kind: EventReroute, Path: []string{"e1", "back"}}, "loops back"},
		{"reroute direct ack", EventSpec{Kind: EventReroute, Ack: true, Path: []string{"e2"}}, "direct wire"},
		{"reroute stray edge field", EventSpec{Kind: EventReroute, Path: []string{"e2"}, Edge: "e1"}, "not reroute fields"},
		{"set_rate on wire", EventSpec{Kind: EventSetRate, Edge: "e2", RateMbps: 3}, "not a rate link"},
		{"set_rate nonpositive", EventSpec{Kind: EventSetRate, Edge: "e1"}, "rate_mbps > 0"},
		{"set_delay on zero-delay edge", EventSpec{Kind: EventSetDelay, Edge: "e1", Delay: sim.Millisecond}, "zero delay"},
		{"set_rate stray delay", EventSpec{Kind: EventSetRate, Edge: "e1", RateMbps: 2, Delay: sim.Millisecond}, "set_delay field"},
		{"set_delay stray rate", EventSpec{Kind: EventSetDelay, Edge: "e2", Delay: sim.Millisecond, RateMbps: 2}, "set_rate field"},
		{"set_rate stray path", EventSpec{Kind: EventSetRate, Edge: "e1", RateMbps: 2, Path: []string{"e2"}}, "reroute fields"},
		{"link_down stray flow", EventSpec{Kind: EventLinkDown, Edge: "e1", Flow: 1}, "reroute fields"},
		{"link_down stray rate", EventSpec{Kind: EventLinkDown, Edge: "e1", RateMbps: 2}, "not link_down"},
	}
	for _, tc := range cases {
		spec := base()
		spec.Events = []EventSpec{tc.ev}
		_, _, err := Run(spec)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Run err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	// The valid forms of each kind run clean.
	spec := base()
	spec.Events = []EventSpec{
		{At: 200 * sim.Millisecond, Kind: EventSetRate, Edge: "e1", RateMbps: 4},
		{At: 400 * sim.Millisecond, Kind: EventSetDelay, Edge: "e2", Delay: 10 * sim.Millisecond},
		{At: 600 * sim.Millisecond, Kind: EventLinkDown, Edge: "e1"},
		{At: 800 * sim.Millisecond, Kind: EventLinkUp, Edge: "e1"},
		{At: sim.Second, Kind: EventReroute, Flow: 0, Path: []string{"e2"}},
	}
	res, _, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != len(spec.Events) {
		t.Fatalf("executed %d events, want %d: %+v", len(res.Events), len(spec.Events), res.Events)
	}
}

// TestChainEventAddressing: chain links answer to the canonical
// "fwd<i>"/"rev<i>" edge names.
func TestChainEventAddressing(t *testing.T) {
	spec := Spec{
		Seed:         1,
		Duration:     2 * sim.Second,
		Warmup:       1,
		Links:        []LinkSpec{{Rate: netem.ConstRate(8e6), Qdisc: QdiscSpec{Kind: "droptail"}}},
		ReverseLinks: []LinkSpec{{Rate: netem.ConstRate(8e6), Qdisc: QdiscSpec{Kind: "droptail"}}},
		Flows:        []FlowSpec{{Scheme: "Cubic"}},
		Events: []EventSpec{
			{At: 500 * sim.Millisecond, Kind: EventLinkDown, Edge: "fwd0"},
			{At: 700 * sim.Millisecond, Kind: EventLinkUp, Edge: "fwd0"},
			{At: 900 * sim.Millisecond, Kind: EventSetRate, Edge: "rev0", RateMbps: 1},
		},
	}
	res, _, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.LinkDownDrops == 0 {
		t.Fatal("link_down on fwd0 dropped nothing; chain addressing is broken")
	}
	if len(res.Events) != 3 {
		t.Fatalf("executed %d events, want 3", len(res.Events))
	}
}
