package exp

import (
	"testing"

	"abc/internal/sim"
	"abc/internal/trace"
)

// TestABCConstantLink is the canonical sanity check: on a fixed-rate link
// ABC must achieve ~η utilization with queuing delay settling near the
// delay threshold dt.
func TestABCConstantLink(t *testing.T) {
	tr := trace.Constant("const12", 12e6)
	res, pooled, err := Run(Spec{
		Seed:     1,
		Duration: 30 * sim.Second,
		Warmup:   5 * sim.Second,
		RTT:      100 * sim.Millisecond,
		Links:    []LinkSpec{{Trace: tr}},
		Flows:    []FlowSpec{{Scheme: "ABC"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &res.Flows[0]
	t.Logf("util=%.3f tput=%.2f qdelay mean=%.0f p95=%.0f delay p95=%.0f lost=%d retx=%d",
		res.Utilization, f.TputMbps, f.QDelay.Mean(), f.QDelay.P95(), pooled.P95(), f.Lost, f.Retx)
	if res.Utilization < 0.90 {
		t.Errorf("ABC utilization %.3f < 0.90 on constant link", res.Utilization)
	}
	if f.QDelay.P95() > 60 {
		t.Errorf("ABC p95 queuing delay %.0f ms too high on constant link", f.QDelay.P95())
	}
}
