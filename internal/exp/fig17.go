// Fig. 17 (Appendix D): ABC, RCP and XCPw on a link whose capacity
// square-waves between 12 and 24 Mbit/s every 500 ms. Window-based ABC
// and per-packet XCPw adapt within an RTT; rate-based RCP lags, over-
// reducing on downswings and underutilizing.
package exp

import (
	"fmt"

	"abc/internal/metrics"
	"abc/internal/sim"
	"abc/internal/trace"
)

// Fig17Run is one scheme's square-wave trajectory.
type Fig17Run struct {
	Scheme  string
	Tput    *metrics.Timeseries
	QDelay  *metrics.Timeseries
	Summary metrics.Summary
	// QDelayP95 isolates queuing delay (ms).
	QDelayP95 float64
}

// Fig17SquareWave runs the given schemes (default ABC, RCP, XCPw) on the
// 12↔24 Mbit/s square wave for 10 s.
func Fig17SquareWave(schemes []string, seed int64) ([]Fig17Run, error) {
	if len(schemes) == 0 {
		schemes = []string{"ABC", "RCP", "XCPw"}
	}
	tr := trace.SquareWave("fig17", 12e6, 24e6, 500*sim.Millisecond)
	out := make([]Fig17Run, len(schemes))
	err := forEachCell(len(schemes), func(i int) string {
		return fmt.Sprintf("fig17 trace=squarewave scheme=%s seed=%d", schemes[i], seed)
	}, func(i int) error {
		sch := schemes[i]
		res, pooled, err := Run(Spec{
			Seed:     seed,
			Duration: 10 * sim.Second,
			Warmup:   2 * sim.Second,
			RTT:      100 * sim.Millisecond,
			Links:    []LinkSpec{{Trace: tr}},
			Flows:    []FlowSpec{{Scheme: sch}},
			Sample:   100 * sim.Millisecond,
		})
		if err != nil {
			return err
		}
		out[i] = Fig17Run{
			Scheme:    sch,
			Tput:      res.Flows[0].Tput,
			QDelay:    res.QueueDelayTS,
			Summary:   res.Summary(sch, pooled),
			QDelayP95: res.Flows[0].QDelay.P95(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
