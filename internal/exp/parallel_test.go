package exp

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"abc/internal/metrics"
	"abc/internal/sim"
)

// gobBytes serializes v so "byte-identical" is checked literally.
func gobBytes(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("gob: %v", err)
	}
	return buf.Bytes()
}

// TestParallelDeterminismFig9 is the harness determinism contract: for a
// fixed seed the parallel fan-out must produce results byte-identical to
// the sequential path.
func TestParallelDeterminismFig9(t *testing.T) {
	old := Parallelism
	defer func() { Parallelism = old }()

	schemes := []string{"ABC", "Cubic", "Cubic+Codel"}
	traces := []string{"Verizon1", "TMobile1"}
	const dur = 4 * sim.Second

	Parallelism = 1
	seq, err := Fig9Bars(schemes, traces, dur, 1)
	if err != nil {
		t.Fatal(err)
	}
	Parallelism = 8
	par, err := Fig9Bars(schemes, traces, dur, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel Fig9Bars diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
	// Byte-identical over a canonical (trace, scheme)-ordered flattening
	// (gob of the map itself would vary with Go's map iteration order).
	if !bytes.Equal(gobBytes(t, flatten(seq)), gobBytes(t, flatten(par))) {
		t.Fatal("parallel Fig9Bars not byte-identical to sequential")
	}
	// And re-running in parallel is self-consistent.
	par2, err := Fig9Bars(schemes, traces, dur, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gobBytes(t, flatten(par)), gobBytes(t, flatten(par2))) {
		t.Fatal("two parallel Fig9Bars runs diverged")
	}
}

// flatten lays a BarsResult's cells out in deterministic order.
func flatten(b *BarsResult) []metrics.Summary {
	var out []metrics.Summary
	for _, tr := range b.Traces {
		for _, sch := range b.Schemes {
			out = append(out, b.Cells[tr][sch])
		}
	}
	return out
}

// TestParallelDeterminismFig12 covers the (load, run) aggregation order:
// concatenated per-run rate vectors must match the sequential sweep.
func TestParallelDeterminismFig12(t *testing.T) {
	old := Parallelism
	defer func() { Parallelism = old }()

	cfg := Fig12Config{Runs: 3, Duration: 6 * sim.Second, Loads: []float64{0.125, 0.25}, Seed: 1}
	Parallelism = 1
	seq, err := Fig12WeightPolicy("maxmin", cfg)
	if err != nil {
		t.Fatal(err)
	}
	Parallelism = 6
	par, err := Fig12WeightPolicy("maxmin", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel Fig12 diverged:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestForEachErrorIsDeterministic: the lowest-index error wins regardless
// of completion order.
func TestForEachErrorIsDeterministic(t *testing.T) {
	old := Parallelism
	defer func() { Parallelism = old }()
	Parallelism = 4
	errA := &testErr{"a"}
	errB := &testErr{"b"}
	err := forEach(10, func(i int) error {
		switch i {
		case 3:
			return errB
		case 7:
			return errA
		}
		return nil
	})
	if err != errB {
		t.Fatalf("got %v, want the index-3 error", err)
	}
}

type testErr struct{ s string }

func (e *testErr) Error() string { return e.s }
