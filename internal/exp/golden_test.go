// Golden-figure regression suite: every figure driver and scenario
// driver runs at a fixed seed and short duration, its result is
// serialized to canonical JSON (encoding/json sorts map keys, floats use
// the shortest round-trip form) and SHA-256-digested, and the digest is
// diffed against testdata/golden.json. A refactor that changes any
// output byte — a float, a counter, an ordering — fails here mechanically
// instead of relying on ad-hoc byte comparisons between branches.
//
// After an *intentional* output change, regenerate with
//
//	go test ./internal/exp/ -run TestGoldenFigures -update-golden
//
// and commit the new testdata/golden.json together with the change that
// explains it.
package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"sort"
	"testing"

	"abc/internal/sim"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden.json with recomputed digests")

const goldenPath = "testdata/golden.json"

type goldenCase struct {
	name string
	run  func() (any, error)
}

// goldenCases enumerates every locked-down driver. Durations are short —
// the digest locks determinism and output compatibility, not steady-state
// physics (the physics assertions live in the figure tests).
func goldenCases() []goldenCase {
	const short = 8 * sim.Second
	fig12 := func(policy string) (any, error) {
		cfg := DefaultFig12Config()
		cfg.Runs, cfg.Duration, cfg.Seed = 1, short, 1
		return Fig12WeightPolicy(policy, cfg)
	}
	return []goldenCase{
		{"fig1-timeseries", func() (any, error) { return Fig1Timeseries(1) }},
		{"fig2-feedback-mode", func() (any, error) { return Fig2FeedbackMode(1) }},
		{"fig6-nonabc-bottleneck", func() (any, error) { return Fig6NonABCBottleneck(1) }},
		{"fig8-scatter-downlink", func() (any, error) {
			return Fig8Scatter(Downlink, []string{"ABC", "Cubic"}, short, 1)
		}},
		{"fig9-bars", func() (any, error) { return Fig9Bars([]string{"ABC", "Cubic"}, nil, short, 1) }},
		{"fig10-wifi", func() (any, error) { return Fig10WiFi(1, AlternatingMCS(1), short, 1) }},
		{"fig11-cross-traffic", func() (any, error) { return Fig11CrossTraffic(1) }},
		{"fig12-maxmin", func() (any, error) { return fig12("maxmin") }},
		{"fig12-zombie", func() (any, error) { return fig12("zombie") }},
		{"fig17-square-wave", func() (any, error) { return Fig17SquareWave([]string{"ABC", "RCP"}, 1) }},
		{"uplink-congested-ack", func() (any, error) {
			return UplinkCongestedACK([]string{"ABC", "Cubic"}, 2, short, 1)
		}},
		{"hetero-rtt", func() (any, error) { return HeteroRTTFairness("ABC", nil, short, 1) }},
		{"lossy-random", func() (any, error) { return LossyLink([]string{"ABC"}, nil, false, short, 1) }},
		{"lossy-bursty", func() (any, error) { return LossyLink([]string{"ABC"}, nil, true, short, 1) }},
		{"mesh-shared-junction", func() (any, error) {
			return MeshSharedJunction([]string{"ABC", "Cubic"}, short, 1)
		}},
		{"marked-uplink", func() (any, error) { return MarkedUplink([]string{"ABC", "Cubic"}, 2, short, 1) }},
		{"handover", func() (any, error) { return Handover([]string{"ABC", "Cubic"}, short, 1) }},
		{"flap", func() (any, error) { return LinkFlap([]string{"ABC", "Cubic"}, short, 1) }},
		{"autoroute", func() (any, error) { return AutoRoute([]string{"ABC", "Cubic"}, short, 1) }},
		{"flapstorm", func() (any, error) { return FlapStorm([]string{"ABC", "Cubic"}, short, 1) }},
		{"targeted", func() (any, error) { return Targeted([]string{"ABC", "Cubic"}, short, 1) }},
		{"greedy", func() (any, error) { return Greedy([]string{"ABC", "XCP"}, short, 1) }},
		{"app-shortflows", func() (any, error) { return ShortFlows([]string{"ABC", "Cubic"}, "", short, 1) }},
		{"app-video", func() (any, error) { return VideoExp([]string{"ABC", "Cubic"}, "", short, 1) }},
		{"app-rpc", func() (any, error) { return RPCExp([]string{"ABC", "Cubic"}, "", short, 1) }},
		{"hybrid", func() (any, error) { return Hybrid("", nil, short, 1) }},
		// The three sharded-mesh entries digest the same result with the
		// shard count masked, so the corpus itself asserts the sharded
		// runtime's digest invariance: all three lines must stay equal.
		{"sharded-mesh-s1", func() (any, error) { return shardedMeshGolden(1, short) }},
		{"sharded-mesh-s2", func() (any, error) { return shardedMeshGolden(2, short) }},
		{"sharded-mesh-s4", func() (any, error) { return shardedMeshGolden(4, short) }},
	}
}

// shardedMeshGolden runs the sharded-mesh driver and masks the shard
// count, the one field allowed to differ between the s1/s2/s4 entries.
func shardedMeshGolden(shards int, dur sim.Time) (any, error) {
	r, err := ShardedMesh(shards, dur, 1)
	if err != nil {
		return nil, err
	}
	c := *r
	c.Shards = 0
	return &c, nil
}

// goldenDigest canonicalizes a driver result and digests it. The byte
// length comes along so a result type that quietly stops marshalling
// (unexported fields, nil maps) fails loudly instead of locking down an
// empty object.
func goldenDigest(v any) (digest string, size int, err error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", 0, err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), len(b), nil
}

// TestGoldenFigures recomputes every case and diffs its digest against
// the checked-in corpus. With -update-golden it rewrites the corpus
// instead of diffing.
func TestGoldenFigures(t *testing.T) {
	want := map[string]string{}
	if !*updateGolden {
		data, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("no golden corpus (%v); generate one with -update-golden", err)
		}
		if err := json.Unmarshal(data, &want); err != nil {
			t.Fatalf("corrupt %s: %v", goldenPath, err)
		}
	}
	cases := goldenCases()
	got := make(map[string]string, len(cases))
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			v, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			d, n, err := goldenDigest(v)
			if err != nil {
				t.Fatal(err)
			}
			if n <= 2 {
				t.Fatalf("result serialized to %d bytes — digest locks down nothing", n)
			}
			got[c.name] = d
			if *updateGolden {
				return
			}
			switch w, ok := want[c.name]; {
			case !ok:
				t.Errorf("no golden digest for %q; add it with -update-golden", c.name)
			case w != d:
				t.Errorf("output digest changed:\n got %s\nwant %s\nif intentional, regenerate with -update-golden and commit the new corpus", d, w)
			}
		})
	}
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d digests to %s", len(got), goldenPath)
		return
	}
	// Stale corpus entries mean a driver was renamed or dropped without
	// regenerating — as much a silent drift as a changed digest.
	var stale []string
	for name := range want {
		if _, ok := got[name]; !ok {
			stale = append(stale, name)
		}
	}
	sort.Strings(stale)
	for _, name := range stale {
		t.Errorf("stale golden entry %q has no driver; regenerate with -update-golden", name)
	}
}

// TestGoldenParallelModes asserts the digests are a pure function of the
// spec, independent of harness scheduling: sequential (Parallelism=1) and
// worker-pool (Parallelism=4) runs of multi-cell drivers must produce
// byte-identical serializations. Combined with the CI -race run of this
// package, this is the acceptance bar for every future harness change.
func TestGoldenParallelModes(t *testing.T) {
	pick := map[string]bool{
		"fig9-bars": true, "mesh-shared-junction": true, "marked-uplink": true,
		"app-shortflows": true, "app-video": true, "app-rpc": true,
		"handover": true, "flap": true, "targeted": true, "greedy": true,
		"autoroute": true, "flapstorm": true, "hybrid": true,
	}
	defer func(p int) { Parallelism = p }(Parallelism)
	for _, c := range goldenCases() {
		if !pick[c.name] {
			continue
		}
		c := c
		t.Run(c.name, func(t *testing.T) {
			Parallelism = 1
			v1, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			seq, _, err := goldenDigest(v1)
			if err != nil {
				t.Fatal(err)
			}
			Parallelism = 4
			v2, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			par, _, err := goldenDigest(v2)
			if err != nil {
				t.Fatal(err)
			}
			if seq != par {
				t.Errorf("sequential digest %s != parallel digest %s", seq, par)
			}
		})
	}
}
