package exp

import (
	"math"
	"strings"
	"testing"

	"abc/internal/sim"
)

// TestShardedMeshDigestInvariant is the multi-shard golden pick: the
// sharded-mesh driver must serialize byte-identically at 1, 2 and 4
// shards. Anything less means the conservative synchronization let an
// event fire in a shard's past, or a pooled metric depended on
// cross-flow arrival interleaving.
func TestShardedMeshDigestInvariant(t *testing.T) {
	const dur = 10 * sim.Second
	digests := map[int]string{}
	for _, shards := range []int{1, 2, 4} {
		r, err := ShardedMesh(shards, dur, 1)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if r.Drops != 0 {
			t.Fatalf("shards=%d: %d unrouted drops", shards, r.Drops)
		}
		if r.Flows[0].Bytes == 0 {
			t.Fatalf("shards=%d: no traffic measured", shards)
		}
		// Shards is the one field expected to differ; digest the rest.
		c := *r
		c.Shards = 0
		d, _, err := goldenDigest(&c)
		if err != nil {
			t.Fatal(err)
		}
		digests[shards] = d
	}
	if digests[2] != digests[1] || digests[4] != digests[1] {
		t.Errorf("digests diverge across shard counts: %v", digests)
	}
}

// TestShardedMeshRepeatable: a fixed (seed, shard count) pair must be
// digest-stable run to run — parallel shard workers may not leak
// scheduling nondeterminism into the result.
func TestShardedMeshRepeatable(t *testing.T) {
	var first string
	for i := 0; i < 3; i++ {
		r, err := ShardedMesh(4, 10*sim.Second, 3)
		if err != nil {
			t.Fatal(err)
		}
		d, _, err := goldenDigest(r)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = d
		} else if d != first {
			t.Fatalf("run %d digest %s != first %s", i, d, first)
		}
	}
}

// shardedTolerance asserts two measurements agree within frac.
func shardedTolerance(t *testing.T, what string, seq, sh, frac float64) {
	t.Helper()
	if seq == 0 && sh == 0 {
		return
	}
	ref := math.Max(math.Abs(seq), math.Abs(sh))
	if math.Abs(seq-sh) > frac*ref {
		t.Errorf("%s: sequential %v vs sharded %v differ by more than %.0f%%", what, seq, sh, frac*100)
	}
}

// TestShardedHandoverMatchesSequential runs the handover topology (mid-
// run reroute of both routes, executed as a coordinator global) sharded
// and compares it against the sequential run. Same-instant cross-shard
// ties may order differently than the sequential heap, so the
// comparison is behavioral (throughput/delay within tolerance), not a
// digest.
func TestShardedHandoverMatchesSequential(t *testing.T) {
	const dur = 12 * sim.Second
	spec := handoverSpec("ABC", dur/2, dur, 1)
	spec.Sample = 0 // time series are sequential-only
	seq, _, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec = handoverSpec("ABC", dur/2, dur, 1)
	spec.Sample = 0
	spec.Shards = 2
	sh, _, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sh.Events) != 2 {
		t.Fatalf("sharded run executed %d events, want 2", len(sh.Events))
	}
	shardedTolerance(t, "throughput", seq.Flows[0].TputMbps, sh.Flows[0].TputMbps, 0.15)
	shardedTolerance(t, "mean delay", seq.Flows[0].Delay.Mean(), sh.Flows[0].Delay.Mean(), 0.15)
	if seqB, shB := seq.Flows[0].Bytes, sh.Flows[0].Bytes; seqB == 0 || shB == 0 {
		t.Fatalf("no traffic: sequential %d bytes, sharded %d", seqB, shB)
	}
}

// TestShardedTargetedMatchesSequential: the targeted-attack chain (all
// four flows through one bottleneck, adversarial stage on the cut edge)
// sharded across the bottleneck vs sequential, within tolerance.
func TestShardedTargetedMatchesSequential(t *testing.T) {
	const dur = 12 * sim.Second
	build := func(shards int) Spec {
		spec := targetedSpec("ABC", dur, 1)
		// Give the single link a positive delay so the chain has a legal
		// shard cut (zero-delay edges are contracted, not cut).
		spec.Links[0].Delay = 4 * sim.Millisecond
		spec.Links[0].Attack = targetedAttack()
		spec.Shards = shards
		return spec
	}
	seq, _, err := Run(build(1))
	if err != nil {
		t.Fatal(err)
	}
	sh, _, err := Run(build(2))
	if err != nil {
		t.Fatal(err)
	}
	if sh.AdvDelayed == 0 && sh.AdvDrops == 0 {
		t.Fatal("sharded run recorded no adversarial actions; attack not exercised")
	}
	var seqTput, shTput float64
	for i := range seq.Flows {
		seqTput += seq.Flows[i].TputMbps
		shTput += sh.Flows[i].TputMbps
	}
	shardedTolerance(t, "aggregate throughput", seqTput, shTput, 0.15)
	shardedTolerance(t, "victim p95", seq.Flows[0].Delay.P95(), sh.Flows[0].Delay.P95(), 0.2)
	if seq.Adversary == nil || sh.Adversary == nil {
		t.Fatal("missing adversary report")
	}
	shardedTolerance(t, "victim class p95", seq.Adversary.VictimP95Ms, sh.Adversary.VictimP95Ms, 0.2)
}

// TestShardedSpecValidation pins the sharded path's feature gates and
// the cross-shard event restrictions.
func TestShardedSpecValidation(t *testing.T) {
	base := func() Spec {
		spec := shardedMeshSpec(2, 10*sim.Second, 1)
		return spec
	}

	spec := base()
	spec.Sample = 100 * sim.Millisecond
	if _, _, err := Run(spec); err == nil || !strings.Contains(err.Error(), "Sample") {
		t.Errorf("Sample on a sharded spec not rejected: %v", err)
	}

	spec = base()
	spec.Workloads = []WorkloadSpec{{Scheme: "Cubic", Path: []string{"bot0", "hop0"}}}
	if _, _, err := Run(spec); err == nil || !strings.Contains(err.Error(), "Workloads") {
		t.Errorf("Workloads on a sharded spec not rejected: %v", err)
	}

	spec = base()
	spec.ShardMap = map[string]int{"nope": 0}
	if _, _, err := Run(spec); err == nil || !strings.Contains(err.Error(), "unknown node") {
		t.Errorf("unknown ShardMap node not rejected: %v", err)
	}

	// set_delay on a shard-cut edge would retune the synchronization
	// lookahead; the timeline compiler must reject it statically. Pin
	// hop0's endpoints (j1 -> j2) apart so it is a cut by construction.
	spec = base()
	spec.ShardMap = map[string]int{"j1": 0, "j2": 1}
	spec.Events = []EventSpec{{At: 5 * sim.Second, Kind: EventSetDelay, Edge: "hop0", Delay: 9 * sim.Millisecond}}
	if _, _, err := Run(spec); err == nil || !strings.Contains(err.Error(), "crosses shards") {
		t.Errorf("set_delay on a shard-cut edge not rejected: %v", err)
	}
	// The same event on an unsharded run of the same spec is legal.
	spec.Shards = 1
	if _, _, err := Run(spec); err != nil {
		t.Errorf("set_delay rejected on the sequential twin: %v", err)
	}

	// ShardMap pins are honored: forcing the whole ring onto one shard
	// leaves no cut edges, so even set_delay is legal again.
	spec = base()
	spec.ShardMap = map[string]int{}
	for j := 0; j < 8; j++ {
		spec.ShardMap["j"+string(rune('0'+j))] = 0
	}
	spec.Events = []EventSpec{{At: 5 * sim.Second, Kind: EventSetDelay, Edge: "hop0", Delay: 9 * sim.Millisecond}}
	if _, _, err := Run(spec); err != nil {
		t.Errorf("pinning all nodes to one shard should legalize set_delay: %v", err)
	}
}

// TestScenarioShardsClause pins the declarative spelling: "shards" and
// "shard_map" compile into Spec.Shards/ShardMap, and malformed clauses
// fail at Compile with a static error.
func TestScenarioShardsClause(t *testing.T) {
	sc, err := ParseScenario([]byte(`{
		"duration_s": 10,
		"shards": 2,
		"shard_map": {"a": 0, "b": 1},
		"nodes": ["a", "b"],
		"edges": [{"name": "e", "from": "a", "to": "b",
		           "kind": "rate", "rate_mbps": 8, "delay_ms": 3,
		           "qdisc": {"kind": "droptail", "buffer": 100}}],
		"flows": [{"scheme": "ABC", "path": ["e"]}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Shards != 2 || spec.ShardMap["b"] != 1 {
		t.Errorf("shards clause not carried into the Spec: %+v", spec.ShardMap)
	}

	bad := []struct {
		name, in, want string
	}{
		{"negative shards", `{"shards": -1, "flows": []}`, "negative shards"},
		{"map without shards", `{"shard_map": {"a": 0}, "flows": []}`, "shards > 1"},
		{"pin out of range", `{"shards": 2, "shard_map": {"a": 2}, "flows": []}`, "out of range"},
	}
	for _, tc := range bad {
		sc, err := ParseScenario([]byte(tc.in))
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		if _, err := sc.Compile(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Compile() err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
