// Ablations over ABC's design parameters, exercising the choices the
// paper motivates: the delay threshold dt (batching tolerance), the drain
// constant δ (Theorem 3.1), the utilization target η, the token-bucket
// limit, and the measurement window T. Each sweep runs a single
// backlogged ABC flow on the same cellular trace and reports the
// utilization/delay trade-off per value.
package exp

import (
	"abc/internal/abc"
	"abc/internal/metrics"
	"abc/internal/sim"
	"abc/internal/trace"
)

// AblationPoint is one parameter value's outcome.
type AblationPoint struct {
	Param  string
	Value  float64
	Util   float64
	P95Ms  float64 // p95 queuing delay
	MeanMs float64
}

// runABCWith runs ABC with a customized router config.
func runABCWith(mutate func(*abc.RouterConfig), dur sim.Time, seed int64) (util, p95, mean float64, err error) {
	tr := trace.MustNamedCellular("Verizon1")
	cfg := abc.DefaultRouterConfig()
	mutate(&cfg)
	res, _, err := Run(Spec{
		Seed:     seed,
		Duration: dur,
		RTT:      100 * sim.Millisecond,
		Links:    []LinkSpec{{Trace: tr, Qdisc: QdiscSpec{Kind: "abc", ABCConfig: &cfg}}},
		Flows:    []FlowSpec{{Scheme: "ABC"}},
	})
	if err != nil {
		return 0, 0, 0, err
	}
	f := &res.Flows[0]
	return res.Utilization, f.QDelay.P95(), f.QDelay.Mean(), nil
}

// AblateDelayThreshold sweeps dt (the paper evaluates 20/60/100 ms on
// Wi-Fi): larger thresholds trade delay for throughput.
func AblateDelayThreshold(dur sim.Time, seed int64) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, dtMs := range []float64{5, 20, 60, 100} {
		u, p95, mean, err := runABCWith(func(c *abc.RouterConfig) {
			c.DelayThreshold = sim.FromSeconds(dtMs / 1000)
		}, dur, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{Param: "dt_ms", Value: dtMs, Util: u, P95Ms: p95, MeanMs: mean})
	}
	return out, nil
}

// AblateDelta sweeps δ around the Theorem 3.1 boundary (2/3·τ = 67 ms at
// τ=100 ms): small δ over-reacts and oscillates, large δ drains slowly.
func AblateDelta(dur sim.Time, seed int64) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, deltaMs := range []float64{30, 67, 133, 266, 532} {
		u, p95, mean, err := runABCWith(func(c *abc.RouterConfig) {
			c.Delta = sim.FromSeconds(deltaMs / 1000)
		}, dur, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{Param: "delta_ms", Value: deltaMs, Util: u, P95Ms: p95, MeanMs: mean})
	}
	return out, nil
}

// AblateEta sweeps the target utilization η: the paper's 0.98 trades a
// little throughput for much lower delay than η=1.
func AblateEta(dur sim.Time, seed int64) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, eta := range []float64{0.85, 0.9, 0.95, 0.98, 1.0} {
		u, p95, mean, err := runABCWith(func(c *abc.RouterConfig) {
			c.Eta = eta
		}, dur, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{Param: "eta", Value: eta, Util: u, P95Ms: p95, MeanMs: mean})
	}
	return out, nil
}

// AblateTokenLimit sweeps Algorithm 1's token bucket cap: tiny caps
// throttle legitimate accelerates, huge caps allow bursts.
func AblateTokenLimit(dur sim.Time, seed int64) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, lim := range []float64{1.5, 4, 10, 50} {
		u, p95, mean, err := runABCWith(func(c *abc.RouterConfig) {
			c.TokenLimit = lim
		}, dur, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{Param: "token_limit", Value: lim, Util: u, P95Ms: p95, MeanMs: mean})
	}
	return out, nil
}

// AblateWindow sweeps the dequeue-rate measurement window T.
func AblateWindow(dur sim.Time, seed int64) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, winMs := range []float64{10, 25, 50, 100, 200} {
		u, p95, mean, err := runABCWith(func(c *abc.RouterConfig) {
			c.Window = sim.FromSeconds(winMs / 1000)
		}, dur, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{Param: "window_ms", Value: winMs, Util: u, P95Ms: p95, MeanMs: mean})
	}
	return out, nil
}

// ProxiedComparison runs standard and proxied-encoding ABC on the same
// path: the §5.1.2 claim is that the proxied deployment behaves like the
// NS-bit deployment without receiver changes.
func ProxiedComparison(dur sim.Time, seed int64) (std, proxied metrics.Summary, err error) {
	tr := trace.MustNamedCellular("Verizon1")
	std, err = RunSingle("ABC", tr, 100*sim.Millisecond, dur, seed)
	if err != nil {
		return
	}
	proxied, err = RunSingle("ABC-proxied", tr, 100*sim.Millisecond, dur, seed)
	return
}
