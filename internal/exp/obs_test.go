package exp

import (
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"

	"abc/internal/netem"
	"abc/internal/obs"
	"abc/internal/sim"
)

// TestGoldenTracingInvariance re-runs the full golden corpus with the
// flight recorder attached at full category mask and requires every
// digest to stay byte-identical to the committed corpus: tracing must be
// purely passive — no scheduled events, no RNG draws, no state the
// simulation can observe. The final assertion that events were actually
// captured keeps the test from passing vacuously if the wiring breaks.
func TestGoldenTracingInvariance(t *testing.T) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("no golden corpus (%v)", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt %s: %v", goldenPath, err)
	}
	rec := obs.NewRecorder(1<<16, obs.CatAll)
	EnableTracing(rec)
	defer EnableTracing(nil)
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			v, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			d, _, err := goldenDigest(v)
			if err != nil {
				t.Fatal(err)
			}
			if w, ok := want[c.name]; ok && w != d {
				t.Errorf("digest changed with tracing enabled:\n got %s\nwant %s\ntracing must not perturb the simulation", d, w)
			}
		})
	}
	if rec.Total() == 0 {
		t.Fatal("full-mask recorder captured no events across the corpus — trace wiring is dead")
	}
}

// TestForEachCellPanic asserts a panicking cell is converted into an
// error naming the cell instead of killing the sweep. The worker pool
// keeps draining after the panic (every cell runs); the sequential path
// keeps its fail-fast contract and stops at the failing cell.
func TestForEachCellPanic(t *testing.T) {
	defer func(p int) { Parallelism = p }(Parallelism)
	for _, par := range []int{1, 4} {
		Parallelism = par
		ran := make([]bool, 3)
		err := forEachCell(3, func(i int) string {
			return []string{"a", "b", "c"}[i]
		}, func(i int) error {
			ran[i] = true
			if i == 1 {
				panic("boom")
			}
			return nil
		})
		if err == nil {
			t.Fatalf("par=%d: panic swallowed", par)
		}
		for _, frag := range []string{"cell b", "panicked", "boom"} {
			if !strings.Contains(err.Error(), frag) {
				t.Errorf("par=%d: error %q missing %q", par, err, frag)
			}
		}
		if par > 1 {
			for i, r := range ran {
				if !r {
					t.Errorf("par=%d: cell %d did not run after sibling panic", par, i)
				}
			}
		}
	}
}

// TestForEachCellErrorLabel asserts plain errors come back wrapped with
// the cell's identity and still unwrap to the original.
func TestForEachCellErrorLabel(t *testing.T) {
	sentinel := errors.New("cell exploded")
	err := forEachCell(2, func(i int) string {
		return []string{"scheme=ABC seed=7", "scheme=Cubic seed=7"}[i]
	}, func(i int) error {
		if i == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("wrapped error lost the original: %v", err)
	}
	if !strings.Contains(err.Error(), "cell scheme=Cubic seed=7") {
		t.Fatalf("error %q missing cell identity", err)
	}
}

// TestMetricsSampling runs a small scenario with live metrics enabled
// and checks the registry ends up with the advertised families: per-edge
// queue and token gauges, per-flow cwnd, and the sim-progress pair read
// by the progress line.
func TestMetricsSampling(t *testing.T) {
	reg := obs.NewRegistry()
	EnableMetrics(reg, 200*sim.Millisecond)
	defer EnableMetrics(nil, 0)
	_, _, err := Run(Spec{
		Seed:     1,
		Duration: 2 * sim.Second,
		Warmup:   500 * sim.Millisecond,
		RTT:      50 * sim.Millisecond,
		Links:    []LinkSpec{{Rate: netem.ConstRate(10e6), Qdisc: QdiscSpec{Kind: "abc"}}},
		Flows:    []FlowSpec{{Scheme: "ABC"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	have := map[string]obs.Sample{}
	for _, s := range reg.Snapshot() {
		have[s.Name] = s
	}
	for _, name := range []string{
		`abc_queue_pkts{edge="fwd0"}`,
		`abc_queue_bytes{edge="fwd0"}`,
		`abc_tokens{edge="fwd0"}`,
		`abc_marks_total{edge="fwd0",kind="accel"}`,
		`abc_flow_cwnd_pkts{flow="0"}`,
		`abc_flow_reverse_brakes{flow="0"}`,
		obs.MetricSimSeconds,
		obs.MetricSimEvents,
	} {
		if _, ok := have[name]; !ok {
			t.Errorf("registry missing %s after a metered run", name)
		}
	}
	if s := have[obs.MetricSimSeconds]; s.Value != 2 {
		t.Errorf("final %s = %g, want 2 (the run duration)", obs.MetricSimSeconds, s.Value)
	}
	if s := have[obs.MetricSimEvents]; s.Value <= 0 {
		t.Errorf("%s = %g, want > 0", obs.MetricSimEvents, s.Value)
	}
}
