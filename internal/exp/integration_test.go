package exp

import (
	"math"
	"testing"

	"abc/internal/sim"
	"abc/internal/trace"
)

// TestFig3AIConvergesMIMDDoesNot checks the Fig. 3 headline end to end:
// the additive-increase term turns MIMD into a fair MAIMD.
func TestFig3AIConvergesMIMDDoesNot(t *testing.T) {
	if testing.Short() {
		t.Skip("250 s scenario")
	}
	with, err := Fig3Fairness(true, 1)
	if err != nil {
		t.Fatal(err)
	}
	without, err := Fig3Fairness(false, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("jain with AI=%.3f without=%.3f", with.JainAllActive, without.JainAllActive)
	if with.JainAllActive < 0.9 {
		t.Errorf("with AI: Jain %.3f < 0.9", with.JainAllActive)
	}
	if without.JainAllActive > with.JainAllActive-0.1 {
		t.Errorf("MIMD (%.3f) should be clearly less fair than MAIMD (%.3f)",
			without.JainAllActive, with.JainAllActive)
	}
}

// TestFig6DualWindowTracksBottleneckSwitches checks the Fig. 6 behaviour:
// low tracking error across wired/wireless bottleneck switches.
func TestFig6DualWindowTracksBottleneckSwitches(t *testing.T) {
	r, err := Fig6NonABCBottleneck(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tracking error %.1f%%, p95 qdelay %.0f ms", r.TrackError*100, r.QDelayP95)
	if r.TrackError > 0.15 {
		t.Errorf("tracking error %.1f%% too high", r.TrackError*100)
	}
	// Both windows must have been sampled and the cap respected: the
	// larger window stays within ~2x the in-flight implied by the other.
	if len(r.WABC.Values) == 0 || len(r.WCubic.Values) == 0 {
		t.Fatal("window series missing")
	}
}

// TestFig7FairSharingLowABCDelay checks Fig. 7: fair sharing with Cubic
// while ABC's queue stays an order of magnitude shorter.
func TestFig7FairSharingLowABCDelay(t *testing.T) {
	if testing.Short() {
		t.Skip("200 s scenario")
	}
	r, err := Fig7Coexistence(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("steady=%v jain=%.3f abcQ=%.0fms cubicQ=%.0fms",
		r.SteadyTput, r.Jain, r.ABCQDelayP95, r.CubicQDelayP95)
	if r.Jain < 0.85 {
		t.Errorf("Jain %.3f < 0.85", r.Jain)
	}
	if r.ABCQDelayP95 > r.CubicQDelayP95/4 {
		t.Errorf("ABC queue p95 %.0f ms not clearly below Cubic's %.0f ms",
			r.ABCQDelayP95, r.CubicQDelayP95)
	}
}

// TestFig8TwoHopABCStillWins checks the multi-ABC-bottleneck path: ABC
// keeps a better delay profile than Cubic on the two-hop scenario.
func TestFig8TwoHopABCStillWins(t *testing.T) {
	sums, err := Fig8Scatter(UplinkDownlink, []string{"ABC", "Cubic"}, 20*sim.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	var abcP95, cubicP95, abcTput, cubicTput float64
	for _, s := range sums {
		t.Logf("%v", s)
		switch s.Scheme {
		case "ABC":
			abcP95, abcTput = s.P95Ms, s.TputMbps
		case "Cubic":
			cubicP95, cubicTput = s.P95Ms, s.TputMbps
		}
	}
	if abcP95 >= cubicP95 {
		t.Errorf("ABC p95 %.0f ms should beat Cubic's %.0f ms across two cell hops", abcP95, cubicP95)
	}
	if abcTput < cubicTput/2 {
		t.Errorf("ABC throughput %.1f collapsed vs Cubic %.1f", abcTput, cubicTput)
	}
}

// TestFig9OrderingMatchesPaper spot-checks the qualitative ordering the
// paper reports on the cellular corpus: Cubic ≥ tput but ≫ delay; ABC
// beats Cubic+Codel on throughput at comparable delay.
func TestFig9OrderingMatchesPaper(t *testing.T) {
	bars, err := Fig9Bars([]string{"ABC", "Cubic", "Cubic+Codel"},
		[]string{"Verizon1", "TMobile1"}, 20*sim.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	au, _, ap := bars.Average("ABC")
	cu, _, cp := bars.Average("Cubic")
	ccu, _, ccp := bars.Average("Cubic+Codel")
	t.Logf("ABC %.2f/%.0fms Cubic %.2f/%.0fms Cubic+Codel %.2f/%.0fms", au, ap, cu, cp, ccu, ccp)
	if cp < 2*ap {
		t.Errorf("Cubic p95 %.0f ms should be ≫ ABC's %.0f ms", cp, ap)
	}
	if au < ccu {
		t.Errorf("ABC utilization %.2f should beat Cubic+Codel's %.2f", au, ccu)
	}
	if cu < au {
		t.Errorf("Cubic utilization %.2f should be ≥ ABC's %.2f", cu, au)
	}
}

// TestFig10ABCParetoOnWiFi checks Fig. 10's claim on the modelled Wi-Fi
// link: ABC(dt=100) achieves Cubic-class throughput at far lower delay.
func TestFig10ABCParetoOnWiFi(t *testing.T) {
	byLabel := map[string]struct{ tput, p95 float64 }{}
	for _, ws := range []WiFiScheme{
		{Label: "ABC_100", Scheme: "ABC", ABCdt: 100 * sim.Millisecond},
		{Label: "Cubic", Scheme: "Cubic"},
		{Label: "Vegas", Scheme: "Vegas"},
	} {
		s, err := RunWiFi(ws, 1, AlternatingMCS(1), 20*sim.Second, 1)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s tput=%.1f p95=%.0f", ws.Label, s.TputMbps, s.P95Ms)
		byLabel[ws.Label] = struct{ tput, p95 float64 }{s.TputMbps, s.P95Ms}
	}
	abc, cubic, vegas := byLabel["ABC_100"], byLabel["Cubic"], byLabel["Vegas"]
	if abc.tput < 0.75*cubic.tput {
		t.Errorf("ABC tput %.1f too far below Cubic %.1f", abc.tput, cubic.tput)
	}
	if abc.p95 >= cubic.p95 {
		t.Errorf("ABC p95 %.0f should beat Cubic %.0f", abc.p95, cubic.p95)
	}
	if abc.tput < vegas.tput {
		t.Errorf("ABC tput %.1f should beat Vegas %.1f", abc.tput, vegas.tput)
	}
}

// TestFig12MaxMinFairZombieUnfair checks Fig. 12's comparison at one
// offered load.
func TestFig12MaxMinFairZombieUnfair(t *testing.T) {
	cfg := Fig12Config{Runs: 2, Duration: 25 * sim.Second, Loads: []float64{0.25}, Seed: 1}
	mm, err := Fig12WeightPolicy("maxmin", cfg)
	if err != nil {
		t.Fatal(err)
	}
	zb, err := Fig12WeightPolicy("zombie", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("maxmin ABC %.1f vs Cubic %.1f; zombie ABC %.1f vs Cubic %.1f",
		mm[0].ABCMean, mm[0].CubicMean, zb[0].ABCMean, zb[0].CubicMean)
	mmGap := math.Abs(mm[0].ABCMean-mm[0].CubicMean) / mm[0].CubicMean
	zbGap := (zb[0].CubicMean - zb[0].ABCMean) / zb[0].CubicMean
	if mmGap > 0.35 {
		t.Errorf("maxmin gap %.0f%% too large", mmGap*100)
	}
	if zbGap < mmGap {
		t.Errorf("zombie gap (%.0f%%) should exceed maxmin gap (%.0f%%)", zbGap*100, mmGap*100)
	}
}

// TestFig18ABCHoldsAcrossRTTs: ABC outperforms Cubic's delay at every
// propagation RTT.
func TestFig18ABCHoldsAcrossRTTs(t *testing.T) {
	out, err := Fig18RTTSweep([]string{"ABC", "Cubic"}, 20*sim.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, rtt := range []int{20, 50, 100, 200} {
		a, c := out[rtt]["ABC"], out[rtt]["Cubic"]
		t.Logf("rtt=%d: ABC %.2f/%.0fms Cubic %.2f/%.0fms",
			rtt, a.Utilization, a.P95Ms, c.Utilization, c.P95Ms)
		if a.P95Ms >= c.P95Ms {
			t.Errorf("rtt %d ms: ABC p95 %.0f not below Cubic %.0f", rtt, a.P95Ms, c.P95Ms)
		}
		if a.Utilization < 0.6 {
			t.Errorf("rtt %d ms: ABC utilization %.2f too low", rtt, a.Utilization)
		}
	}
}

// TestPKABCHalvesDelay checks §6.6: future knowledge cuts p95 queuing
// delay substantially without wrecking utilization.
func TestPKABCHalvesDelay(t *testing.T) {
	r, err := PKABC(30*sim.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ABC %.0fms@%.2f -> PK %.0fms@%.2f",
		r.QDelayP95ABC, r.ABC.Utilization, r.QDelayP95PK, r.PK.Utilization)
	if r.QDelayP95PK > 0.7*r.QDelayP95ABC {
		t.Errorf("PK p95 %.0f ms not clearly below ABC's %.0f ms", r.QDelayP95PK, r.QDelayP95ABC)
	}
	if r.PK.Utilization < r.ABC.Utilization-0.15 {
		t.Errorf("PK utilization dropped too much: %.2f vs %.2f",
			r.PK.Utilization, r.ABC.Utilization)
	}
}

// TestProxiedEncodingEquivalent checks §5.1.2: the proxied deployment
// (brake = CE, unmodified receiver) performs like the NS-bit deployment.
func TestProxiedEncodingEquivalent(t *testing.T) {
	std, prox, err := ProxiedComparison(20*sim.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("standard: %v", std)
	t.Logf("proxied:  %v", prox)
	if math.Abs(std.Utilization-prox.Utilization) > 0.1 {
		t.Errorf("utilization diverged: %.2f vs %.2f", std.Utilization, prox.Utilization)
	}
	if prox.P95Ms > std.P95Ms*1.5+20 {
		t.Errorf("proxied delay %.0f ms diverged from standard %.0f ms", prox.P95Ms, std.P95Ms)
	}
}

// TestAblationsProduceMonotoneTradeoffs sanity-checks the parameter
// sweeps: larger dt must not reduce delay, and η=1 must not lower
// utilization versus η=0.9.
func TestAblationsProduceMonotoneTradeoffs(t *testing.T) {
	dt, err := AblateDelayThreshold(20*sim.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range dt {
		t.Logf("dt=%v: util=%.2f p95=%.0f", p.Value, p.Util, p.P95Ms)
	}
	if dt[0].P95Ms > dt[len(dt)-1].P95Ms {
		t.Errorf("p95 at dt=%v (%.0f) exceeds dt=%v (%.0f)",
			dt[0].Value, dt[0].P95Ms, dt[len(dt)-1].Value, dt[len(dt)-1].P95Ms)
	}
	eta, err := AblateEta(20*sim.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range eta {
		t.Logf("eta=%v: util=%.2f p95=%.0f", p.Value, p.Util, p.P95Ms)
	}
	lo, hi := eta[0], eta[len(eta)-1]
	if hi.Util < lo.Util-0.03 {
		t.Errorf("eta=%.2f util %.2f below eta=%.2f util %.2f", hi.Value, hi.Util, lo.Value, lo.Util)
	}
}

// TestUplinkTraceIndependence: the two hops of the UplinkDownlink path use
// different traces, so their capacities differ over time.
func TestUplinkTraceIndependence(t *testing.T) {
	up := trace.MustNamedCellular("Verizon2")
	down := trace.MustNamedCellular("Verizon1")
	same := 0
	for at := sim.Second; at < 30*sim.Second; at += sim.Second {
		a := up.CapacityBps(at, sim.Second)
		b := down.CapacityBps(at, sim.Second)
		if math.Abs(a-b) < 1e3 {
			same++
		}
	}
	if same > 5 {
		t.Errorf("uplink and downlink traces look identical (%d matching samples)", same)
	}
}
