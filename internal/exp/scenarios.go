// Scenario drivers beyond the paper's figures, exercising topologies the
// paper's evaluation gestures at but its emulation setup could not
// express: a cellular downlink whose ACKs fight uplink cross traffic for
// a congested reverse path, flows of heterogeneous propagation RTTs
// sharing one bottleneck, and a bottleneck behind a lossy (random or
// bursty) link. All three are plain Specs over the topology harness and
// are also reachable declaratively through scenario files (cmd/abcsim
// -scenario).
package exp

import (
	"fmt"

	"abc/internal/cc"
	"abc/internal/metrics"
	"abc/internal/netem"
	"abc/internal/qdisc"
	"abc/internal/sim"
	"abc/internal/topo"
	"abc/internal/trace"
)

// UplinkResult is one scheme's outcome on the congested-uplink scenario.
type UplinkResult struct {
	// Down summarizes the downlink flow under test.
	Down metrics.Summary
	// QDelayP95 is the downlink flow's p95 accumulated queuing delay (ms),
	// which includes time its ACKs' clock-feedback loop let the data
	// queue grow.
	QDelayP95 float64
	// UpTputMbps is the reverse-direction cross flow's throughput.
	UpTputMbps float64
	// AckPathDrops counts droptail losses on the reverse (ACK) link.
	AckPathDrops int64
}

// UplinkCongestedACK runs each scheme's backlogged downlink flow over a
// Verizon-like cellular trace while a Cubic uplink flow (application-
// limited to 60% of the uplink) congests the slow reverse link that also
// carries the downlink's ACKs — the asymmetric-cellular setup where ACK
// queuing, compression and loss degrade schemes that rely on a pristine
// feedback channel. A fully backlogged uplink starves every scheme's
// ACK clock outright; the rate-limited cross flow keeps the reverse path
// congested but alive, which is where the schemes differ.
func UplinkCongestedACK(schemes []string, uplinkMbps float64, dur sim.Time, seed int64) (map[string]UplinkResult, error) {
	if len(schemes) == 0 {
		schemes = []string{"ABC", "Cubic", "Cubic+Codel", "BBR"}
	}
	if uplinkMbps <= 0 {
		uplinkMbps = 2
	}
	down := trace.MustNamedCellular("Verizon1")
	results := make([]UplinkResult, len(schemes))
	err := forEachCell(len(schemes), func(i int) string {
		return fmt.Sprintf("uplink trace=Verizon1 scheme=%s seed=%d", schemes[i], seed)
	}, func(i int) error {
		sch := schemes[i]
		res, _, err := Run(Spec{
			Seed:     seed,
			Duration: dur,
			RTT:      100 * sim.Millisecond,
			Links:    []LinkSpec{{Trace: down}},
			ReverseLinks: []LinkSpec{{
				Rate:  netem.ConstRate(uplinkMbps * 1e6),
				Qdisc: QdiscSpec{Kind: "droptail", Buffer: 50},
			}},
			Flows: []FlowSpec{
				{Scheme: sch},
				{Scheme: "Cubic", Dir: Reverse, Source: cc.NewRateLimited(0.6 * uplinkMbps * 1e6)},
			},
		})
		if err != nil {
			return err
		}
		// The summary reports the downlink flow alone: the pooled
		// recorder would fold the uplink cross flow's (heavily queued)
		// per-packet delays into the scheme's numbers.
		f0 := &res.Flows[0]
		r := UplinkResult{
			Down: metrics.Summary{
				Scheme:      sch,
				Utilization: res.Utilization,
				TputMbps:    f0.TputMbps,
				MeanMs:      f0.Delay.Mean(),
				P95Ms:       f0.Delay.P95(),
			},
			QDelayP95:  f0.QDelay.P95(),
			UpTputMbps: res.Flows[1].TputMbps,
		}
		if dt, ok := res.ReverseQdiscs[0].(*qdisc.DropTail); ok {
			r.AckPathDrops = dt.Stats.DroppedPackets
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]UplinkResult, len(schemes))
	for i, sch := range schemes {
		out[sch] = results[i]
	}
	return out, nil
}

// HeteroRTTResult reports the heterogeneous-RTT fairness sweep.
type HeteroRTTResult struct {
	RTTsMs []int
	// TputMbps[i] is the throughput of the flow with RTTsMs[i].
	TputMbps []float64
	// Jain is the fairness index across the flows.
	Jain float64
	// MaxQDelayP95 is the worst flow's p95 accumulated queuing delay (ms).
	MaxQDelayP95 float64
}

// HeteroRTTFairness runs one backlogged flow per RTT on a shared
// 24 Mbit/s bottleneck with the scheme's own discipline, measuring how
// much the scheme's capacity split favours short-RTT flows (window
// dynamics paced per-RTT always favour them; the Jain index quantifies
// by how much).
func HeteroRTTFairness(scheme string, rttsMs []int, dur sim.Time, seed int64) (*HeteroRTTResult, error) {
	if scheme == "" {
		scheme = "ABC"
	}
	if len(rttsMs) == 0 {
		rttsMs = []int{20, 50, 100, 200}
	}
	flows := make([]FlowSpec, len(rttsMs))
	for i, ms := range rttsMs {
		flows[i] = FlowSpec{Scheme: scheme, RTT: sim.Time(ms) * sim.Millisecond}
	}
	res, _, err := Run(Spec{
		Seed:     seed,
		Duration: dur,
		Warmup:   10 * sim.Second,
		RTT:      100 * sim.Millisecond,
		Links: []LinkSpec{{
			Rate:  netem.ConstRate(24e6),
			Qdisc: QdiscSpec{Kind: "auto", Buffer: 500},
		}},
		Flows: flows,
	})
	if err != nil {
		return nil, err
	}
	out := &HeteroRTTResult{RTTsMs: rttsMs}
	for i := range res.Flows {
		out.TputMbps = append(out.TputMbps, res.Flows[i].TputMbps)
		if p := res.Flows[i].QDelay.P95(); p > out.MaxQDelayP95 {
			out.MaxQDelayP95 = p
		}
	}
	out.Jain = metrics.JainIndex(out.TputMbps)
	return out, nil
}

// LossyPoint is one (scheme, loss rate) cell of the robustness sweep.
type LossyPoint struct {
	Scheme   string
	LossRate float64
	Bursty   bool
	TputMbps float64
	P95Ms    float64
	// ImpairDrops counts packets the lossy stage discarded.
	ImpairDrops int64
}

// LossyLink sweeps random (or bursty, Gilbert-Elliott) loss in front of a
// 24 Mbit/s bottleneck for each scheme: loss-as-congestion schemes
// collapse as loss grows while ABC's explicit feedback keeps the link
// busy. Results are ordered scheme-major, loss-minor.
func LossyLink(schemes []string, lossRates []float64, bursty bool, dur sim.Time, seed int64) ([]LossyPoint, error) {
	if len(schemes) == 0 {
		schemes = []string{"ABC", "Cubic", "BBR"}
	}
	if len(lossRates) == 0 {
		lossRates = []float64{0, 0.001, 0.01, 0.05}
	}
	out := make([]LossyPoint, len(schemes)*len(lossRates))
	err := forEachCell(len(out), func(i int) string {
		si, li := i/len(lossRates), i%len(lossRates)
		return fmt.Sprintf("lossy scheme=%s loss=%g bursty=%t seed=%d", schemes[si], lossRates[li], bursty, seed)
	}, func(i int) error {
		si, li := i/len(lossRates), i%len(lossRates)
		sch, loss := schemes[si], lossRates[li]
		imp := topo.Impairments{LossRate: loss}
		if bursty {
			imp = topo.Impairments{BurstLossRate: loss * 10, BurstPBad: 0.02, BurstPGood: 0.2}
		}
		res, pooled, err := Run(Spec{
			Seed:     seed,
			Duration: dur,
			RTT:      100 * sim.Millisecond,
			Links: []LinkSpec{{
				Rate:   netem.ConstRate(24e6),
				Qdisc:  QdiscSpec{Kind: "auto", Buffer: 250},
				Impair: imp,
			}},
			Flows: []FlowSpec{{Scheme: sch}},
		})
		if err != nil {
			return err
		}
		out[i] = LossyPoint{
			Scheme:      sch,
			LossRate:    loss,
			Bursty:      bursty,
			TputMbps:    res.Flows[0].TputMbps,
			P95Ms:       pooled.P95(),
			ImpairDrops: res.ImpairDrops,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
