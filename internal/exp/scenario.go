// Declarative scenario files: a JSON description of links, reverse
// links and flows that compiles to a Spec, so new topologies are a data
// file rather than a new driver. Schemes and qdisc kinds are resolved
// through the registries, which means a scenario file can name anything
// a package has registered without this package knowing about it.
//
// The format (all durations in the units their field names say):
//
//	{
//	  "name": "congested-uplink",
//	  "seed": 1,
//	  "duration_s": 30,
//	  "warmup_s": 4,
//	  "rtt_ms": 100,
//	  "sample_ms": 0,
//	  "links": [
//	    {"kind": "trace", "trace": "Verizon1",
//	     "qdisc": {"kind": "auto", "buffer": 250}}
//	  ],
//	  "reverse_links": [
//	    {"kind": "rate", "rate_mbps": 2, "delay_ms": 5,
//	     "loss": 0.01, "qdisc": {"kind": "droptail", "buffer": 100}}
//	  ],
//	  "flows": [
//	    {"scheme": "ABC"},
//	    {"scheme": "Cubic", "dir": "reverse", "start_s": 5}
//	  ]
//	}
//
// Link kinds: "trace" (named cellular corpus trace, or "steps" with
// steps_mbps/step_ms, or "square" with low/high/half-period), "rate"
// (constant rate_mbps) and "wifi" (fixed "mcs", optional "estimate" for
// the §4.1 estimator). Every link takes optional delay_ms, jitter_ms,
// loss, burst_loss/burst_p_bad/burst_p_good, reorder_prob/
// reorder_delay_ms and a qdisc clause naming any registered kind.
// Flows take scheme, start_s/stop_s, dir ("forward"/"reverse"),
// enter_at/exit_at, rtt_ms and either rate_mbps (shorthand for an
// application-limited rate source) or an explicit source clause —
// {"kind": "backlogged"|"rate"|"onoff"|"fixed", ...} — or an app clause
// binding a closed-loop application to the flow:
//
//	{"scheme": "ABC", "app": {"kind": "abr", "ladder_kbps": [300, 1200]}}
//	{"scheme": "ABC", "app": {"kind": "rpc", "resp_kb": 100, "think_ms": 200}}
//
// A scenario may also declare open-loop workloads that spawn finite
// flows mid-run, each reported with FCT statistics:
//
//	"workloads": [
//	  {"scheme": "Cubic", "class": "web", "arrival": "poisson",
//	   "per_s": 4, "size": {"kind": "pareto", "min_kb": 10,
//	   "max_kb": 1024, "alpha": 1.2}, "ref_mbps": 9}
//	]
//
// Workloads route exactly like flows (dir/enter_at/exit_at on chains,
// path/ack_path on meshes) and accept start_s/stop_s bounds, a
// max_active cap and a ref_mbps slowdown baseline. Size kinds: "fixed"
// (kb), "pareto" (min_kb/max_kb/alpha) and "choice" (sizes_kb +
// optional weights).
//
// Instead of the links/reverse_links chains, a scenario may declare a
// mesh: "nodes" names the junctions and "edges" the directed hops
// between them, each edge being a link clause plus name/from/to (the
// extra kind "wire" makes a pure propagation edge: delay_ms and
// impairments only, no bottleneck, no qdisc). Mesh flows route by edge
// name — "path" for data, "ack_path" for ACKs (empty means an
// uncongested direct wire back) — instead of dir/enter_at/exit_at. An
// ack_path must start at the node where the flow's data path ends (the
// receiver stamps the echoes), but may end anywhere: it models the
// congested segment of the return journey, and the rest is the same
// implicit lossless wire an empty ack_path uses end to end:
//
//	{
//	  "name": "marked-uplink",
//	  "nodes": ["gw", "ue", "sink"],
//	  "edges": [
//	    {"name": "down", "from": "gw", "to": "ue",
//	     "kind": "rate", "rate_mbps": 24, "qdisc": {"kind": "auto"}},
//	    {"name": "up", "from": "ue", "to": "gw",
//	     "kind": "rate", "rate_mbps": 2, "qdisc": {"kind": "abc"}},
//	    {"name": "drain", "from": "gw", "to": "sink", "kind": "wire"}
//	  ],
//	  "flows": [
//	    {"scheme": "ABC", "path": ["down"], "ack_path": ["up"]},
//	    {"scheme": "ABC", "path": ["up"], "ack_path": ["drain"], "rate_mbps": 1.2}
//	  ]
//	}
//
// An ACK path's edges may host an ABC router or marking qdisc; the
// accel/brake echo the receiver stamps onto ACKs is then subject to
// demotion on the way back, and the sender paces to the minimum of
// marks over the full round trip.
//
// A scenario may also declare a timed event timeline mutating the
// topology mid-run — route changes, link rate/delay changes, outages:
//
//	"events": [
//	  {"at_s": 10, "kind": "reroute", "flow": 0, "path": ["cell2", "air2"]},
//	  {"at_s": 10, "kind": "reroute", "flow": 0, "ack": true, "path": ["up2"]},
//	  {"at_s": 12, "kind": "set_rate", "edge": "up", "rate_mbps": 1},
//	  {"at_s": 14, "kind": "set_delay", "edge": "air2", "delay_ms": 20},
//	  {"at_s": 16, "kind": "link_down", "edge": "cell1"},
//	  {"at_s": 17, "kind": "link_up", "edge": "cell1"}
//	]
//
// Mesh edges are addressed by their declared names; chain links by the
// canonical names "fwd<i>" / "rev<i>" (link i of links / reverse_links).
// A reroute's path must start at the junction the flow's existing route
// starts at; set_rate targets rate links, and set_delay needs an edge
// built with a positive delay_ms. Packets in flight on edges a reroute
// abandons drain to the next junction and are counted as drops there
// (the conservation contract — no duplication, no silent loss).
//
// Instead of (or alongside) scripted reroutes, a "routing" clause puts
// flows under policy-driven route computation: the policy watches link
// state (link_down / link_up / set_delay) and recomputes routes itself,
// making handover and flap recovery emergent:
//
//	"routing": {"policy": "shortest", "recompute_ms": 10}
//	"routing": {"policy": "kfailover", "k": 2, "drain_ms": 20,
//	            "flows": [0]}
//
// Policies: "shortest" (delay-weighted shortest path over the up edges,
// the default) and "kfailover" (k edge-disjoint backups precomputed per
// route, first fully-up candidate wins; "k" defaults to 2 and is only
// meaningful here — setting it with "shortest" is an error).
// recompute_ms models control-plane convergence (default 10); a
// positive drain_ms makes changes make-before-break (the old path keeps
// draining for that window); "flows" restricts management to the listed
// flow indices (default: all flows — each flow's data route plus its
// ACK route when the latter is table-backed). Routing is
// sequential-only (rejected with shards > 1).
//
// Adversaries come in three declarable forms. A targeted attack is an
// "attack" clause on any link or edge (wire edges included), or an
// "attack" / "clear_attack" event installing, retuning or removing one
// mid-run; a misbehaving sender is "misbehave": "greedy" on a flow; a
// lying ABC router is "lie" on an abc qdisc clause:
//
//	{"kind": "rate", "rate_mbps": 16,
//	 "attack": {"flows": [0], "drop_rate": 0.01, "strip_marks": true,
//	            "extra_delay_ms": 30, "dir": "data", "from_s": 10}}
//	{"scheme": "ABC", "misbehave": "greedy"}
//	"qdisc": {"kind": "abc", "lie": 0.3}
//	{"at_s": 20, "kind": "attack", "edge": "fwd0",
//	 "attack": {"fraction": 0.5, "drop_rate": 0.05}}
//	{"at_s": 30, "kind": "clear_attack", "edge": "fwd0"}
//
// Any of the three makes the run's Result carry an Adversary report:
// victim/bystander/attacker throughput, p95 delay, FCT, QoE and Jain
// fairness splits.
//
// A "background" clause attaches fluid background aggregates to named
// edges (mesh edge names, or chain links "fwd<i>" / "rev<i>"): each is
// a deterministic fixed-step rate process standing in for many virtual
// flows — it drains link capacity and contributes queue occupancy at
// constant cost regardless of the flow count, while the scenario's
// packet-level flows see the residual service rate and the
// fluid-inflated queuing delay. Kinds: "const" (fixed aggregate
// rate_mbps, optional ramp_s), "aimd" (a TCP-like ensemble of "flows"
// virtual AIMD flows driven by the Eq.-13 machinery; rtt_ms sets the
// ensemble RTT), and "onoff" (rate_mbps gated by an on_s/off_s diurnal
// square schedule). start_s/stop_s bound activity, step_ms overrides
// the 10 ms coupling step. Trace and rate links only; unknown edges,
// unknown kinds, non-positive rates and malformed schedules are
// compile-time errors:
//
//	"background": [
//	  {"edge": "fwd0", "kind": "onoff", "flows": 1000000,
//	   "rate_mbps": 48, "on_s": 6, "off_s": 4, "ramp_s": 2}
//	]
//
// A top-level "shards" count splits the simulation into that many
// parallel event queues synchronized by conservative lookahead (runs
// are deterministic for a fixed seed and shard count), and "shard_map"
// pins named junctions to shard indices, overriding the automatic
// partitioner:
//
//	"shards": 2,
//	"shard_map": {"gw": 0, "sink": 1}
package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"abc/internal/app"
	"abc/internal/cc"
	"abc/internal/fluid"
	"abc/internal/metrics"
	"abc/internal/netem"
	"abc/internal/sim"
	"abc/internal/topo"
	"abc/internal/trace"
	"abc/internal/wifi"
)

// ScenarioQdisc is the JSON qdisc clause.
type ScenarioQdisc struct {
	Kind   string  `json:"kind"`
	Buffer int     `json:"buffer"`
	DTms   float64 `json:"dt_ms"`
	// Lie makes an ABC router misbehave: the fraction of brake-bound
	// packets it fraudulently promotes back to accelerate.
	Lie float64 `json:"lie,omitempty"`
}

// ScenarioAttack is the JSON attack clause: a targeted adversarial stage
// on an edge. Target selection: "flows" lists victim flow indices
// explicitly, "fraction" selects a seeded pseudo-random fraction of all
// flow ids (stable per flow, covering workload-spawned flows too); "dir"
// restricts matching to "data" or "ack" packets ("both"/"" matches
// everything); from_s/to_s bound the active window (to_s 0 = forever).
// Actions: drop_rate, strip_marks (accel→brake demotion of ABC marks),
// extra_delay_ms.
type ScenarioAttack struct {
	Flows        []int   `json:"flows,omitempty"`
	Fraction     float64 `json:"fraction,omitempty"`
	Dir          string  `json:"dir,omitempty"`
	FromS        float64 `json:"from_s,omitempty"`
	ToS          float64 `json:"to_s,omitempty"`
	DropRate     float64 `json:"drop_rate,omitempty"`
	StripMarks   bool    `json:"strip_marks,omitempty"`
	ExtraDelayMs float64 `json:"extra_delay_ms,omitempty"`
}

// compile builds the topo.Attack. where locates the clause in errors.
func (sa *ScenarioAttack) compile(where string) (*topo.Attack, error) {
	a := &topo.Attack{
		Target: topo.Target{
			Flows:    sa.Flows,
			Fraction: sa.Fraction,
			From:     sim.FromSeconds(sa.FromS),
			To:       sim.FromSeconds(sa.ToS),
		},
		DropRate:   sa.DropRate,
		StripMarks: sa.StripMarks,
		ExtraDelay: ms(sa.ExtraDelayMs),
	}
	switch sa.Dir {
	case "", "both":
		a.Target.Dir = topo.TargetBoth
	case "data":
		a.Target.Dir = topo.TargetData
	case "ack":
		a.Target.Dir = topo.TargetAck
	default:
		return nil, fmt.Errorf("%s: unknown dir %q (want both, data or ack)", where, sa.Dir)
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %v", where, err)
	}
	return a, nil
}

// ScenarioLink is the JSON link clause.
type ScenarioLink struct {
	Kind string `json:"kind"`
	// Trace selects a named cellular trace; Steps/Square build synthetic
	// ones.
	Trace        string    `json:"trace"`
	StepsMbps    []float64 `json:"steps_mbps"`
	StepMs       float64   `json:"step_ms"`
	SquareLoMbps float64   `json:"square_low_mbps"`
	SquareHiMbps float64   `json:"square_high_mbps"`
	SquareHalfMs float64   `json:"square_half_ms"`
	RateMbps     float64   `json:"rate_mbps"`
	// MCS fixes a wifi link's MCS index; nil keeps the wifi default
	// (a pointer so an explicit "mcs": 0 is distinguishable from the
	// key being absent).
	MCS         *int    `json:"mcs"`
	Estimate    bool    `json:"estimate"`
	LookaheadMs float64 `json:"lookahead_ms"`

	DelayMs        float64 `json:"delay_ms"`
	JitterMs       float64 `json:"jitter_ms"`
	Loss           float64 `json:"loss"`
	BurstLoss      float64 `json:"burst_loss"`
	BurstPBad      float64 `json:"burst_p_bad"`
	BurstPGood     float64 `json:"burst_p_good"`
	ReorderProb    float64 `json:"reorder_prob"`
	ReorderDelayMs float64 `json:"reorder_delay_ms"`

	Qdisc ScenarioQdisc `json:"qdisc"`
	// Attack installs a targeted adversarial stage on the edge at build
	// time (wire edges may carry one too — the stage precedes the link).
	Attack *ScenarioAttack `json:"attack,omitempty"`
}

// ScenarioFlow is the JSON flow clause.
type ScenarioFlow struct {
	Scheme   string  `json:"scheme"`
	StartS   float64 `json:"start_s"`
	StopS    float64 `json:"stop_s"`
	Dir      string  `json:"dir"`
	EnterAt  int     `json:"enter_at"`
	ExitAt   int     `json:"exit_at"`
	RTTms    float64 `json:"rtt_ms"`
	RateMbps float64 `json:"rate_mbps"`
	// Misbehave wraps the flow's sender in a misbehaving shim ("greedy").
	Misbehave string `json:"misbehave,omitempty"`
	// Source selects a registered data source explicitly; the legacy
	// rate_mbps shorthand is equivalent to {"kind":"rate","mbps":...}.
	Source *ScenarioSource `json:"source,omitempty"`
	// App binds a closed-loop application ("abr" or "rpc") to the flow.
	App *ScenarioApp `json:"app,omitempty"`
	// Path and AckPath route a mesh scenario's flow over named edges.
	Path    []string `json:"path,omitempty"`
	AckPath []string `json:"ack_path,omitempty"`
}

// ScenarioSource is the JSON source clause: which data source feeds a
// flow. Kinds: "backlogged" (the default when the clause is absent),
// "rate" (token-bucket application-limited, mbps), "onoff" (alternating
// on_s/off_s from start_s) and "fixed" (a finite transfer of bytes).
type ScenarioSource struct {
	Kind   string  `json:"kind"`
	Mbps   float64 `json:"mbps"`
	Bytes  int     `json:"bytes"`
	OnS    float64 `json:"on_s"`
	OffS   float64 `json:"off_s"`
	StartS float64 `json:"start_s"`
}

// sourceKinds names the accepted source kinds for error messages.
const sourceKinds = "backlogged, rate, onoff, fixed"

// compile builds the cc.Source. where locates the clause in errors.
func (ss *ScenarioSource) compile(where string) (cc.Source, error) {
	switch ss.Kind {
	case "backlogged":
		if ss.Mbps != 0 || ss.Bytes != 0 || ss.OnS != 0 || ss.OffS != 0 || ss.StartS != 0 {
			return nil, fmt.Errorf("%s: backlogged source takes no parameters", where)
		}
		return nil, nil // nil Source means backlogged
	case "rate":
		if ss.Mbps <= 0 {
			return nil, fmt.Errorf("%s: rate source needs mbps > 0", where)
		}
		return cc.NewRateLimited(ss.Mbps * 1e6), nil
	case "onoff":
		if ss.OnS <= 0 || ss.OffS < 0 {
			return nil, fmt.Errorf("%s: onoff source needs on_s > 0 and off_s >= 0", where)
		}
		return &cc.OnOff{
			Start:  sim.FromSeconds(ss.StartS),
			OnFor:  sim.FromSeconds(ss.OnS),
			OffFor: sim.FromSeconds(ss.OffS),
		}, nil
	case "fixed":
		if ss.Bytes <= 0 {
			return nil, fmt.Errorf("%s: fixed source needs bytes > 0", where)
		}
		return cc.NewFixed(ss.Bytes), nil
	}
	return nil, fmt.Errorf("%s: unknown source kind %q (want %s)", where, ss.Kind, sourceKinds)
}

// ScenarioApp is the JSON app clause binding a closed-loop application
// to a flow.
type ScenarioApp struct {
	Kind string `json:"kind"` // "abr" | "rpc"
	// ABR fields. Policy selects the adaptation policy: "buffer" (BBA,
	// the default) or "rate" (harmonic-mean throughput prediction over
	// the last history_chunks downloads, scaled by safety).
	LadderKbps    []float64 `json:"ladder_kbps,omitempty"`
	ChunkS        float64   `json:"chunk_s,omitempty"`
	MaxBufS       float64   `json:"max_buf_s,omitempty"`
	Policy        string    `json:"policy,omitempty"`
	HistoryChunks int       `json:"history_chunks,omitempty"`
	Safety        float64   `json:"safety,omitempty"`
	// RPC fields.
	ThinkMs float64 `json:"think_ms,omitempty"`
	RespKB  float64 `json:"resp_kb,omitempty"`
}

// compile builds the AppSpec. where locates the clause in errors.
func (sa *ScenarioApp) compile(where string) (*AppSpec, error) {
	// Zero means "take the default" for every numeric field; a negative
	// value is a typo that must not silently become the default.
	if sa.ChunkS < 0 || sa.MaxBufS < 0 || sa.ThinkMs < 0 || sa.RespKB < 0 ||
		sa.HistoryChunks < 0 || sa.Safety < 0 {
		return nil, fmt.Errorf("%s: negative app parameters (omit a field for its default)", where)
	}
	switch sa.Kind {
	case "abr":
		if sa.ThinkMs != 0 || sa.RespKB != 0 {
			return nil, fmt.Errorf("%s: think_ms/resp_kb are rpc fields", where)
		}
		switch sa.Policy {
		case "", "buffer", "rate":
		default:
			return nil, fmt.Errorf("%s: unknown abr policy %q (want buffer or rate)", where, sa.Policy)
		}
		if sa.Policy != "rate" && (sa.HistoryChunks != 0 || sa.Safety != 0) {
			return nil, fmt.Errorf("%s: history_chunks/safety are rate-policy fields", where)
		}
		for i, kbps := range sa.LadderKbps {
			if kbps <= 0 {
				return nil, fmt.Errorf("%s: ladder_kbps[%d] must be > 0", where, i)
			}
			if i > 0 && kbps <= sa.LadderKbps[i-1] {
				return nil, fmt.Errorf("%s: ladder_kbps must be strictly ascending", where)
			}
		}
		return &AppSpec{Kind: "abr", ABR: app.ABRConfig{
			LadderKbps:    sa.LadderKbps,
			ChunkS:        sa.ChunkS,
			MaxBufS:       sa.MaxBufS,
			Policy:        sa.Policy,
			HistoryChunks: sa.HistoryChunks,
			SafetyFactor:  sa.Safety,
		}}, nil
	case "rpc":
		if len(sa.LadderKbps) > 0 || sa.ChunkS != 0 || sa.MaxBufS != 0 ||
			sa.Policy != "" || sa.HistoryChunks != 0 || sa.Safety != 0 {
			return nil, fmt.Errorf("%s: ladder_kbps/chunk_s/max_buf_s/policy are abr fields", where)
		}
		return &AppSpec{Kind: "rpc", RPC: app.RPCConfig{
			ThinkMeanS: sa.ThinkMs / 1000,
			RespBytes:  int(sa.RespKB * 1024),
		}}, nil
	}
	return nil, fmt.Errorf("%s: unknown app kind %q (want abr or rpc)", where, sa.Kind)
}

// ScenarioArrival is the JSON arrival clause. It accepts either a bare
// string naming a synthetic process ("poisson", "deterministic") or an
// object for processes with parameters of their own — today the
// trace-driven replay, {"kind": "replay", "file": "arrivals.csv"},
// which replays a recorded (time_s, bytes) log verbatim: arrival
// instants and transfer sizes both come from the file (relative to the
// workload's start_s), so per_s and size must be absent.
type ScenarioArrival struct {
	Kind string `json:"kind"`
	File string `json:"file,omitempty"`
}

// UnmarshalJSON accepts the string and object forms.
func (sa *ScenarioArrival) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		return json.Unmarshal(data, &sa.Kind)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	type plain ScenarioArrival // drop the method set to avoid recursion
	return dec.Decode((*plain)(sa))
}

// MarshalJSON emits the compact string form when only a kind is set, so
// parse → marshal → parse round-trips both spellings.
func (sa ScenarioArrival) MarshalJSON() ([]byte, error) {
	if sa.File == "" {
		return json.Marshal(sa.Kind)
	}
	type plain ScenarioArrival
	return json.Marshal(plain(sa))
}

// ScenarioWorkload is the JSON workload clause: an open-loop arrival
// process spawning finite flows mid-run.
type ScenarioWorkload struct {
	Scheme string `json:"scheme"`
	Class  string `json:"class,omitempty"`
	// Arrival selects the process: "poisson" (the default) with per_s
	// arrivals per second, "deterministic" with the same mean gap, or
	// {"kind": "replay", "file": ...} to replay a recorded log.
	Arrival *ScenarioArrival `json:"arrival,omitempty"`
	PerS    float64          `json:"per_s,omitempty"`
	Size    ScenarioSize     `json:"size,omitempty"`
	StartS  float64          `json:"start_s"`
	StopS   float64          `json:"stop_s"`
	// Routing, exactly as on flows.
	Dir     string   `json:"dir,omitempty"`
	EnterAt int      `json:"enter_at,omitempty"`
	ExitAt  int      `json:"exit_at,omitempty"`
	Path    []string `json:"path,omitempty"`
	AckPath []string `json:"ack_path,omitempty"`
	RTTms   float64  `json:"rtt_ms,omitempty"`
	// MaxActive caps concurrent spawned flows (default 1024).
	MaxActive int `json:"max_active,omitempty"`
	// RefMbps enables slowdown reporting against this reference rate.
	RefMbps float64 `json:"ref_mbps,omitempty"`
}

// ScenarioSize is the JSON flow-size clause. Kinds: "fixed" (kb),
// "pareto" (bounded Pareto over [min_kb, max_kb] with tail index alpha)
// and "choice" (empirical pmf over sizes_kb, optionally weighted).
type ScenarioSize struct {
	Kind    string    `json:"kind"`
	KB      float64   `json:"kb,omitempty"`
	MinKB   float64   `json:"min_kb,omitempty"`
	MaxKB   float64   `json:"max_kb,omitempty"`
	Alpha   float64   `json:"alpha,omitempty"`
	SizesKB []float64 `json:"sizes_kb,omitempty"`
	Weights []float64 `json:"weights,omitempty"`
}

// compile builds the size distribution. where locates the clause.
func (sz *ScenarioSize) compile(where string) (app.SizeDist, error) {
	switch sz.Kind {
	case "fixed":
		if sz.KB <= 0 {
			return nil, fmt.Errorf("%s: fixed size needs kb > 0", where)
		}
		return app.FixedSize{Bytes: int(sz.KB * 1024)}, nil
	case "pareto":
		if sz.MinKB <= 0 || sz.MaxKB < sz.MinKB {
			return nil, fmt.Errorf("%s: pareto size needs 0 < min_kb <= max_kb", where)
		}
		// Absent alpha (0) takes the web-workload default; a negative one
		// is a typo that must not silently become a different tail index.
		alpha := sz.Alpha
		if alpha < 0 {
			return nil, fmt.Errorf("%s: pareto size needs alpha > 0 (or omit it for the 1.2 default)", where)
		}
		if alpha == 0 {
			alpha = 1.2
		}
		return app.BoundedPareto{
			Min:   int(sz.MinKB * 1024),
			Max:   int(sz.MaxKB * 1024),
			Alpha: alpha,
		}, nil
	case "choice":
		if len(sz.SizesKB) == 0 {
			return nil, fmt.Errorf("%s: choice size needs sizes_kb", where)
		}
		if len(sz.Weights) > 0 && len(sz.Weights) != len(sz.SizesKB) {
			return nil, fmt.Errorf("%s: weights must match sizes_kb (%d != %d)", where, len(sz.Weights), len(sz.SizesKB))
		}
		var totalW float64
		for i, w := range sz.Weights {
			if w < 0 {
				return nil, fmt.Errorf("%s: weights[%d] must be >= 0", where, i)
			}
			totalW += w
		}
		if len(sz.Weights) > 0 && totalW == 0 {
			return nil, fmt.Errorf("%s: weights sum to zero (omit them for a uniform pick)", where)
		}
		sizes := make([]int, len(sz.SizesKB))
		for i, kb := range sz.SizesKB {
			if kb <= 0 {
				return nil, fmt.Errorf("%s: sizes_kb[%d] must be > 0", where, i)
			}
			sizes[i] = int(kb * 1024)
		}
		return app.Choice{Sizes: sizes, Weights: sz.Weights}, nil
	}
	return nil, fmt.Errorf("%s: unknown size kind %q (want fixed, pareto or choice)", where, sz.Kind)
}

// ScenarioEdge is one directed edge of a mesh scenario: a link clause
// plus a name and its two endpoints.
type ScenarioEdge struct {
	Name string `json:"name"`
	From string `json:"from"`
	To   string `json:"to"`
	ScenarioLink
}

// ScenarioEvent is one entry of the timed event timeline. Kind-specific
// fields: reroute takes flow/ack/path, set_rate takes edge/rate_mbps,
// set_delay takes edge/delay_ms, link_down/link_up take edge.
type ScenarioEvent struct {
	AtS      float64  `json:"at_s"`
	Kind     string   `json:"kind"`
	Flow     int      `json:"flow,omitempty"`
	Ack      bool     `json:"ack,omitempty"`
	Path     []string `json:"path,omitempty"`
	Edge     string   `json:"edge,omitempty"`
	RateMbps float64  `json:"rate_mbps,omitempty"`
	DelayMs  float64  `json:"delay_ms,omitempty"`
	// Attack is the adversarial stage installed by "attack" events.
	Attack *ScenarioAttack `json:"attack,omitempty"`
}

// ScenarioRouting is the JSON routing clause: policy-driven route
// computation for the scenario's flows.
type ScenarioRouting struct {
	Policy      string  `json:"policy,omitempty"`
	K           int     `json:"k,omitempty"`
	RecomputeMs float64 `json:"recompute_ms,omitempty"`
	DrainMs     float64 `json:"drain_ms,omitempty"`
	Flows       []int   `json:"flows,omitempty"`
}

// ScenarioBackground is one entry of the "background" clause: a fluid
// aggregate standing in for many virtual flows on a named edge. Kinds:
// "const" (fixed rate_mbps), "aimd" (flows virtual AIMD flows, rate
// derived from Eq. 13; rtt_ms sets the ensemble RTT) and "onoff"
// (rate_mbps gated by an on_s/off_s square schedule).
type ScenarioBackground struct {
	Edge     string  `json:"edge"`
	Kind     string  `json:"kind"`
	Flows    int     `json:"flows,omitempty"`
	RateMbps float64 `json:"rate_mbps,omitempty"`
	RampS    float64 `json:"ramp_s,omitempty"`
	OnS      float64 `json:"on_s,omitempty"`
	OffS     float64 `json:"off_s,omitempty"`
	StartS   float64 `json:"start_s,omitempty"`
	StopS    float64 `json:"stop_s,omitempty"`
	StepMs   float64 `json:"step_ms,omitempty"`
	RTTms    float64 `json:"rtt_ms,omitempty"`
}

// Scenario is a complete declarative scenario file: either a chain
// (links / reverse_links) or a mesh (nodes / edges).
type Scenario struct {
	Name         string         `json:"name"`
	Seed         int64          `json:"seed"`
	DurationS    float64        `json:"duration_s"`
	WarmupS      float64        `json:"warmup_s"`
	RTTms        float64        `json:"rtt_ms"`
	SampleMs     float64        `json:"sample_ms"`
	// Shards splits the simulation into this many parallel event queues
	// synchronized by conservative lookahead (0/1 = the sequential
	// simulator). ShardMap pins named junctions (mesh node names, or the
	// chain junctions "fwd<i>"/"rev<i>") to shard indices; unpinned
	// junctions are placed by the automatic partitioner.
	Shards   int            `json:"shards,omitempty"`
	ShardMap map[string]int `json:"shard_map,omitempty"`
	Links        []ScenarioLink `json:"links,omitempty"`
	ReverseLinks []ScenarioLink `json:"reverse_links,omitempty"`
	Nodes        []string       `json:"nodes,omitempty"`
	Edges        []ScenarioEdge `json:"edges,omitempty"`
	Flows        []ScenarioFlow `json:"flows"`
	// Workloads spawn flows mid-run from open-loop arrival processes.
	Workloads []ScenarioWorkload `json:"workloads,omitempty"`
	// Events mutate the topology mid-run on the simulation clock.
	Events []ScenarioEvent `json:"events,omitempty"`
	// Routing enables policy-driven route computation.
	Routing *ScenarioRouting `json:"routing,omitempty"`
	// Background attaches fluid aggregates to named edges.
	Background []ScenarioBackground `json:"background,omitempty"`

	// dir is the directory the scenario was loaded from; relative file
	// references (replay logs) resolve against it. Empty for scenarios
	// parsed from raw bytes, which resolve against the process cwd.
	dir string
}

// LoadScenario reads and parses a scenario file. File references inside
// the scenario (e.g. a replay arrival's log) resolve relative to the
// scenario file's directory.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc, err := ParseScenario(data)
	if err != nil {
		return nil, err
	}
	sc.dir = filepath.Dir(path)
	return sc, nil
}

// ParseScenario parses a scenario from JSON bytes. Unknown keys are an
// error: a typo'd field name must fail loudly, not silently leave a
// default in place.
func ParseScenario(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	return &sc, nil
}

// ms converts a float millisecond count to sim.Time.
func ms(v float64) sim.Time { return sim.FromSeconds(v / 1000) }

// compileLink turns one link clause into a LinkSpec.
func compileLink(sl *ScenarioLink, idx int, chain string) (LinkSpec, error) {
	ls := LinkSpec{
		Kind:      sl.Kind,
		Delay:     ms(sl.DelayMs),
		Lookahead: ms(sl.LookaheadMs),
		Impair: topo.Impairments{
			LossRate:      sl.Loss,
			BurstLossRate: sl.BurstLoss,
			BurstPBad:     sl.BurstPBad,
			BurstPGood:    sl.BurstPGood,
			Jitter:        ms(sl.JitterMs),
			ReorderProb:   sl.ReorderProb,
			ReorderDelay:  ms(sl.ReorderDelayMs),
		},
		Qdisc: QdiscSpec{
			Kind:              sl.Qdisc.Kind,
			Buffer:            sl.Qdisc.Buffer,
			ABCDelayThreshold: ms(sl.Qdisc.DTms),
			ABCLie:            sl.Qdisc.Lie,
		},
	}
	where := fmt.Sprintf("scenario: %s[%d]", chain, idx)
	if sl.Attack != nil {
		a, err := sl.Attack.compile(where + ".attack")
		if err != nil {
			return LinkSpec{}, err
		}
		ls.Attack = a
	}
	switch sl.Kind {
	case "wire":
		// Pure propagation hop (mesh edges only): no bottleneck model, no
		// qdisc. Anything that configures one is a contradiction.
		if chain != "edges" {
			return LinkSpec{}, fmt.Errorf("%s: wire is a mesh edge kind; chain links need a bottleneck", where)
		}
		if sl.Trace != "" || len(sl.StepsMbps) > 0 || sl.SquareHiMbps > 0 ||
			sl.RateMbps > 0 || sl.MCS != nil || sl.Estimate || sl.LookaheadMs > 0 {
			return LinkSpec{}, fmt.Errorf("%s: wire links carry no bottleneck model", where)
		}
		if sl.Qdisc != (ScenarioQdisc{}) {
			return LinkSpec{}, fmt.Errorf("%s: wire links have no qdisc", where)
		}
		ls.Qdisc = QdiscSpec{}
	case "trace", "":
		switch {
		case sl.Trace != "":
			tr, err := trace.NamedCellular(sl.Trace)
			if err != nil {
				return LinkSpec{}, fmt.Errorf("%s: %v", where, err)
			}
			ls.Trace = tr
		case len(sl.StepsMbps) > 0:
			if sl.StepMs <= 0 {
				return LinkSpec{}, fmt.Errorf("%s: steps_mbps without step_ms", where)
			}
			bps := make([]float64, len(sl.StepsMbps))
			for i, m := range sl.StepsMbps {
				bps[i] = m * 1e6
			}
			ls.Trace = trace.Steps(fmt.Sprintf("%s-steps-%d", chain, idx), bps, ms(sl.StepMs))
		case sl.SquareHiMbps > 0:
			if sl.SquareHalfMs <= 0 {
				return LinkSpec{}, fmt.Errorf("%s: square wave without square_half_ms", where)
			}
			ls.Trace = trace.SquareWave(fmt.Sprintf("%s-square-%d", chain, idx),
				sl.SquareLoMbps*1e6, sl.SquareHiMbps*1e6, ms(sl.SquareHalfMs))
		case sl.RateMbps > 0 && sl.Kind == "":
			ls.Kind = "rate"
			ls.Rate = netem.ConstRate(sl.RateMbps * 1e6)
		default:
			return LinkSpec{}, fmt.Errorf("%s: trace link needs trace, steps_mbps or square_*", where)
		}
		if ls.Kind == "" {
			ls.Kind = "trace"
		}
	case "rate":
		if sl.RateMbps <= 0 {
			return LinkSpec{}, fmt.Errorf("%s: rate link needs rate_mbps > 0", where)
		}
		ls.Rate = netem.ConstRate(sl.RateMbps * 1e6)
	case "wifi":
		cfg := wifi.DefaultLinkConfig()
		if sl.MCS != nil {
			mcs := *sl.MCS
			cfg.MCS = func(sim.Time) int { return mcs }
		}
		ls.Wifi = &WiFiLinkSpec{Config: cfg, Estimate: sl.Estimate}
	default:
		return LinkSpec{}, fmt.Errorf("%s: unknown link kind %q", where, sl.Kind)
	}
	return ls, nil
}

// Compile turns the scenario into a runnable Spec. Scheme names are
// validated against the registry up front so a typo fails with the list
// of registered schemes instead of mid-run.
func (sc *Scenario) Compile() (Spec, error) {
	spec := Spec{
		Seed:     sc.Seed,
		Duration: sim.FromSeconds(sc.DurationS),
		Warmup:   sim.FromSeconds(sc.WarmupS),
		RTT:      ms(sc.RTTms),
		Sample:   ms(sc.SampleMs),
		Shards:   sc.Shards,
		ShardMap: sc.ShardMap,
	}
	if sc.Shards < 0 {
		return Spec{}, fmt.Errorf("scenario: negative shards")
	}
	if sc.SampleMs < 0 {
		return Spec{}, fmt.Errorf("scenario: negative sample_ms")
	}
	if sc.DurationS < 0 || sc.WarmupS < 0 || sc.RTTms < 0 {
		return Spec{}, fmt.Errorf("scenario: negative duration_s/warmup_s/rtt_ms")
	}
	if len(sc.ShardMap) > 0 && sc.Shards <= 1 {
		return Spec{}, fmt.Errorf("scenario: shard_map needs shards > 1")
	}
	for name, idx := range sc.ShardMap {
		if idx < 0 || idx >= sc.Shards {
			return Spec{}, fmt.Errorf("scenario: shard_map[%q] = %d out of range [0, %d)", name, idx, sc.Shards)
		}
	}
	for i := range sc.Links {
		ls, err := compileLink(&sc.Links[i], i, "links")
		if err != nil {
			return Spec{}, err
		}
		spec.Links = append(spec.Links, ls)
	}
	for i := range sc.ReverseLinks {
		ls, err := compileLink(&sc.ReverseLinks[i], i, "reverse_links")
		if err != nil {
			return Spec{}, err
		}
		spec.ReverseLinks = append(spec.ReverseLinks, ls)
	}
	spec.Nodes = append(spec.Nodes, sc.Nodes...)
	for i := range sc.Edges {
		se := &sc.Edges[i]
		ls, err := compileLink(&se.ScenarioLink, i, "edges")
		if err != nil {
			return Spec{}, err
		}
		spec.Edges = append(spec.Edges, EdgeSpec{Name: se.Name, From: se.From, To: se.To, Link: ls})
	}
	for i := range sc.Flows {
		sf := &sc.Flows[i]
		if _, err := cc.New(sf.Scheme); err != nil {
			return Spec{}, fmt.Errorf("scenario: flows[%d]: %v", i, err)
		}
		fs := FlowSpec{
			Scheme:    sf.Scheme,
			Start:     sim.FromSeconds(sf.StartS),
			Stop:      sim.FromSeconds(sf.StopS),
			EnterAt:   sf.EnterAt,
			ExitAt:    sf.ExitAt,
			RTT:       ms(sf.RTTms),
			Path:      sf.Path,
			AckPath:   sf.AckPath,
			Misbehave: sf.Misbehave,
		}
		switch sf.Misbehave {
		case "", "greedy":
		default:
			return Spec{}, fmt.Errorf("scenario: flows[%d]: unknown misbehave %q (want greedy)", i, sf.Misbehave)
		}
		switch sf.Dir {
		case "", "forward":
		case "reverse":
			fs.Dir = Reverse
		default:
			return Spec{}, fmt.Errorf("scenario: flows[%d]: unknown dir %q", i, sf.Dir)
		}
		if len(sf.Path) > 0 && (sf.Dir != "" || sf.EnterAt != 0 || sf.ExitAt != 0) {
			return Spec{}, fmt.Errorf("scenario: flows[%d]: path routes over mesh edges; dir/enter_at/exit_at are chain fields", i)
		}
		where := fmt.Sprintf("scenario: flows[%d]", i)
		if sf.RateMbps > 0 {
			if sf.Source != nil {
				return Spec{}, fmt.Errorf("%s: rate_mbps is shorthand for a rate source; drop it when a source clause is present", where)
			}
			fs.Source = cc.NewRateLimited(sf.RateMbps * 1e6)
		}
		if sf.Source != nil {
			src, err := sf.Source.compile(where + ".source")
			if err != nil {
				return Spec{}, err
			}
			fs.Source = src
		}
		if sf.App != nil {
			if fs.Source != nil {
				return Spec{}, fmt.Errorf("%s: app and source are mutually exclusive (the app owns the source)", where)
			}
			as, err := sf.App.compile(where + ".app")
			if err != nil {
				return Spec{}, err
			}
			fs.App = as
		}
		spec.Flows = append(spec.Flows, fs)
	}
	for i := range sc.Workloads {
		sw := &sc.Workloads[i]
		where := fmt.Sprintf("scenario: workloads[%d]", i)
		if _, err := cc.New(sw.Scheme); err != nil {
			return Spec{}, fmt.Errorf("%s: %v", where, err)
		}
		ws := WorkloadSpec{
			Scheme:    sw.Scheme,
			Class:     sw.Class,
			Start:     sim.FromSeconds(sw.StartS),
			Stop:      sim.FromSeconds(sw.StopS),
			EnterAt:   sw.EnterAt,
			ExitAt:    sw.ExitAt,
			Path:      sw.Path,
			AckPath:   sw.AckPath,
			RTT:       ms(sw.RTTms),
			MaxActive: sw.MaxActive,
			RefMbps:   sw.RefMbps,
		}
		switch sw.Dir {
		case "", "forward":
		case "reverse":
			ws.Dir = Reverse
		default:
			return Spec{}, fmt.Errorf("%s: unknown dir %q", where, sw.Dir)
		}
		if len(sw.Path) > 0 && (sw.Dir != "" || sw.EnterAt != 0 || sw.ExitAt != 0) {
			return Spec{}, fmt.Errorf("%s: path routes over mesh edges; dir/enter_at/exit_at are chain fields", where)
		}
		kind, file := "", ""
		if sw.Arrival != nil {
			kind, file = sw.Arrival.Kind, sw.Arrival.File
		}
		if kind != "replay" && file != "" {
			return Spec{}, fmt.Errorf("%s: file is a replay-arrival field", where)
		}
		switch kind {
		case "", "poisson":
			if sw.PerS <= 0 {
				return Spec{}, fmt.Errorf("%s: needs per_s > 0", where)
			}
			ws.Arrival = app.Poisson{PerSec: sw.PerS}
		case "deterministic":
			if sw.PerS <= 0 {
				return Spec{}, fmt.Errorf("%s: needs per_s > 0", where)
			}
			ws.Arrival = app.Deterministic{Gap: sim.FromSeconds(1 / sw.PerS)}
		case "replay":
			// The log carries both the arrival instants and the transfer
			// sizes, so the synthetic-process knobs must be absent.
			if file == "" {
				return Spec{}, fmt.Errorf("%s: replay arrival needs a file", where)
			}
			if sw.PerS != 0 {
				return Spec{}, fmt.Errorf("%s: per_s conflicts with a replay arrival (the log fixes the instants)", where)
			}
			if sw.Size.Kind != "" || sw.Size.KB != 0 || sw.Size.MinKB != 0 || sw.Size.MaxKB != 0 ||
				sw.Size.Alpha != 0 || len(sw.Size.SizesKB) != 0 || len(sw.Size.Weights) != 0 {
				return Spec{}, fmt.Errorf("%s: size conflicts with a replay arrival (the log fixes the sizes)", where)
			}
			if !filepath.IsAbs(file) && sc.dir != "" {
				file = filepath.Join(sc.dir, file)
			}
			rp, err := app.LoadReplay(file)
			if err != nil {
				return Spec{}, fmt.Errorf("%s: %v", where, err)
			}
			ws.Arrival, ws.Sizes = rp, rp
		default:
			return Spec{}, fmt.Errorf("%s: unknown arrival %q (want poisson, deterministic or replay)", where, kind)
		}
		if ws.Sizes == nil {
			sizes, err := sw.Size.compile(where + ".size")
			if err != nil {
				return Spec{}, err
			}
			ws.Sizes = sizes
		}
		spec.Workloads = append(spec.Workloads, ws)
	}
	for i := range sc.Events {
		se := &sc.Events[i]
		where := fmt.Sprintf("scenario: events[%d]", i)
		if se.AtS < 0 {
			return Spec{}, fmt.Errorf("%s: negative at_s", where)
		}
		switch se.Kind {
		case EventReroute, EventSetRate, EventSetDelay, EventLinkDown, EventLinkUp,
			EventAttack, EventClearAttack:
		default:
			return Spec{}, fmt.Errorf("%s: unknown event kind %q", where, se.Kind)
		}
		var attack *topo.Attack
		if se.Attack != nil {
			a, err := se.Attack.compile(where + ".attack")
			if err != nil {
				return Spec{}, err
			}
			attack = a
		}
		// Kind-specific field validation (edge names, flow indices, route
		// shapes) happens against the compiled graph in scheduleEvents;
		// here only the clause shape is checked.
		spec.Events = append(spec.Events, EventSpec{
			At:       sim.FromSeconds(se.AtS),
			Kind:     se.Kind,
			Flow:     se.Flow,
			Ack:      se.Ack,
			Path:     se.Path,
			Edge:     se.Edge,
			RateMbps: se.RateMbps,
			Delay:    ms(se.DelayMs),
			Attack:   attack,
		})
	}
	if sc.Routing != nil {
		sr := sc.Routing
		if sr.RecomputeMs < 0 {
			return Spec{}, fmt.Errorf("scenario: routing: negative recompute_ms")
		}
		if sr.DrainMs < 0 {
			return Spec{}, fmt.Errorf("scenario: routing: negative drain_ms")
		}
		spec.Routing = &RoutingSpec{
			Policy:           sr.Policy,
			K:                sr.K,
			RecomputeLatency: ms(sr.RecomputeMs),
			Drain:            ms(sr.DrainMs),
			Flows:            sr.Flows,
		}
		// Fail the remaining clause checks (policy name, K misuse, flow
		// indices) at compile time, not first run.
		if err := validateRouting(&spec); err != nil {
			return Spec{}, err
		}
	}
	if len(sc.Background) > 0 {
		// Edge names are known at compile time: mesh edge names, or the
		// chain links "fwd<i>"/"rev<i>".
		known := make(map[string]bool, len(sc.Links)+len(sc.ReverseLinks)+len(sc.Edges))
		for i := range sc.Links {
			known[fmt.Sprintf("fwd%d", i)] = true
		}
		for i := range sc.ReverseLinks {
			known[fmt.Sprintf("rev%d", i)] = true
		}
		for i := range sc.Edges {
			known[sc.Edges[i].Name] = true
		}
		seen := make(map[string]bool, len(sc.Background))
		for i := range sc.Background {
			sb := &sc.Background[i]
			where := fmt.Sprintf("scenario: background[%d]", i)
			if sb.Edge == "" {
				return Spec{}, fmt.Errorf("%s: missing edge", where)
			}
			if !known[sb.Edge] {
				return Spec{}, fmt.Errorf("%s: unknown edge %q", where, sb.Edge)
			}
			if seen[sb.Edge] {
				return Spec{}, fmt.Errorf("%s: edge %q already carries an aggregate", where, sb.Edge)
			}
			seen[sb.Edge] = true
			bs := BackgroundSpec{
				Edge:     sb.Edge,
				Kind:     sb.Kind,
				Flows:    sb.Flows,
				RateMbps: sb.RateMbps,
				Ramp:     sim.FromSeconds(sb.RampS),
				On:       sim.FromSeconds(sb.OnS),
				Off:      sim.FromSeconds(sb.OffS),
				Start:    sim.FromSeconds(sb.StartS),
				Stop:     sim.FromSeconds(sb.StopS),
				Step:     ms(sb.StepMs),
				RTT:      ms(sb.RTTms),
			}
			// Validate the aggregate parameters (kind, rate, schedule) at
			// compile time, not first run; fluid owns the rules.
			if _, err := fluid.NewAggregate(bs.config(&spec)); err != nil {
				return Spec{}, fmt.Errorf("%s: %v", where, err)
			}
			spec.Background = append(spec.Background, bs)
		}
	}
	return spec, nil
}

// RunScenario loads, compiles and runs a scenario file, returning the
// result and the pooled delay recorder.
func RunScenario(path string) (*Result, *metrics.DelayRecorder, error) {
	sc, err := LoadScenario(path)
	if err != nil {
		return nil, nil, err
	}
	spec, err := sc.Compile()
	if err != nil {
		return nil, nil, err
	}
	return Run(spec)
}
