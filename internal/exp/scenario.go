// Declarative scenario files: a JSON description of links, reverse
// links and flows that compiles to a Spec, so new topologies are a data
// file rather than a new driver. Schemes and qdisc kinds are resolved
// through the registries, which means a scenario file can name anything
// a package has registered without this package knowing about it.
//
// The format (all durations in the units their field names say):
//
//	{
//	  "name": "congested-uplink",
//	  "seed": 1,
//	  "duration_s": 30,
//	  "warmup_s": 4,
//	  "rtt_ms": 100,
//	  "sample_ms": 0,
//	  "links": [
//	    {"kind": "trace", "trace": "Verizon1",
//	     "qdisc": {"kind": "auto", "buffer": 250}}
//	  ],
//	  "reverse_links": [
//	    {"kind": "rate", "rate_mbps": 2, "delay_ms": 5,
//	     "loss": 0.01, "qdisc": {"kind": "droptail", "buffer": 100}}
//	  ],
//	  "flows": [
//	    {"scheme": "ABC"},
//	    {"scheme": "Cubic", "dir": "reverse", "start_s": 5}
//	  ]
//	}
//
// Link kinds: "trace" (named cellular corpus trace, or "steps" with
// steps_mbps/step_ms, or "square" with low/high/half-period), "rate"
// (constant rate_mbps) and "wifi" (fixed "mcs", optional "estimate" for
// the §4.1 estimator). Every link takes optional delay_ms, jitter_ms,
// loss, burst_loss/burst_p_bad/burst_p_good, reorder_prob/
// reorder_delay_ms and a qdisc clause naming any registered kind.
// Flows take scheme, start_s/stop_s, dir ("forward"/"reverse"),
// enter_at/exit_at, rtt_ms and rate_mbps (an application-limited
// source).
//
// Instead of the links/reverse_links chains, a scenario may declare a
// mesh: "nodes" names the junctions and "edges" the directed hops
// between them, each edge being a link clause plus name/from/to (the
// extra kind "wire" makes a pure propagation edge: delay_ms and
// impairments only, no bottleneck, no qdisc). Mesh flows route by edge
// name — "path" for data, "ack_path" for ACKs (empty means an
// uncongested direct wire back) — instead of dir/enter_at/exit_at. An
// ack_path must start at the node where the flow's data path ends (the
// receiver stamps the echoes), but may end anywhere: it models the
// congested segment of the return journey, and the rest is the same
// implicit lossless wire an empty ack_path uses end to end:
//
//	{
//	  "name": "marked-uplink",
//	  "nodes": ["gw", "ue", "sink"],
//	  "edges": [
//	    {"name": "down", "from": "gw", "to": "ue",
//	     "kind": "rate", "rate_mbps": 24, "qdisc": {"kind": "auto"}},
//	    {"name": "up", "from": "ue", "to": "gw",
//	     "kind": "rate", "rate_mbps": 2, "qdisc": {"kind": "abc"}},
//	    {"name": "drain", "from": "gw", "to": "sink", "kind": "wire"}
//	  ],
//	  "flows": [
//	    {"scheme": "ABC", "path": ["down"], "ack_path": ["up"]},
//	    {"scheme": "ABC", "path": ["up"], "ack_path": ["drain"], "rate_mbps": 1.2}
//	  ]
//	}
//
// An ACK path's edges may host an ABC router or marking qdisc; the
// accel/brake echo the receiver stamps onto ACKs is then subject to
// demotion on the way back, and the sender paces to the minimum of
// marks over the full round trip.
package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"abc/internal/cc"
	"abc/internal/metrics"
	"abc/internal/netem"
	"abc/internal/sim"
	"abc/internal/topo"
	"abc/internal/trace"
	"abc/internal/wifi"
)

// ScenarioQdisc is the JSON qdisc clause.
type ScenarioQdisc struct {
	Kind   string  `json:"kind"`
	Buffer int     `json:"buffer"`
	DTms   float64 `json:"dt_ms"`
}

// ScenarioLink is the JSON link clause.
type ScenarioLink struct {
	Kind string `json:"kind"`
	// Trace selects a named cellular trace; Steps/Square build synthetic
	// ones.
	Trace        string    `json:"trace"`
	StepsMbps    []float64 `json:"steps_mbps"`
	StepMs       float64   `json:"step_ms"`
	SquareLoMbps float64   `json:"square_low_mbps"`
	SquareHiMbps float64   `json:"square_high_mbps"`
	SquareHalfMs float64   `json:"square_half_ms"`
	RateMbps     float64   `json:"rate_mbps"`
	// MCS fixes a wifi link's MCS index; nil keeps the wifi default
	// (a pointer so an explicit "mcs": 0 is distinguishable from the
	// key being absent).
	MCS         *int    `json:"mcs"`
	Estimate    bool    `json:"estimate"`
	LookaheadMs float64 `json:"lookahead_ms"`

	DelayMs        float64 `json:"delay_ms"`
	JitterMs       float64 `json:"jitter_ms"`
	Loss           float64 `json:"loss"`
	BurstLoss      float64 `json:"burst_loss"`
	BurstPBad      float64 `json:"burst_p_bad"`
	BurstPGood     float64 `json:"burst_p_good"`
	ReorderProb    float64 `json:"reorder_prob"`
	ReorderDelayMs float64 `json:"reorder_delay_ms"`

	Qdisc ScenarioQdisc `json:"qdisc"`
}

// ScenarioFlow is the JSON flow clause.
type ScenarioFlow struct {
	Scheme   string  `json:"scheme"`
	StartS   float64 `json:"start_s"`
	StopS    float64 `json:"stop_s"`
	Dir      string  `json:"dir"`
	EnterAt  int     `json:"enter_at"`
	ExitAt   int     `json:"exit_at"`
	RTTms    float64 `json:"rtt_ms"`
	RateMbps float64 `json:"rate_mbps"`
	// Path and AckPath route a mesh scenario's flow over named edges.
	Path    []string `json:"path,omitempty"`
	AckPath []string `json:"ack_path,omitempty"`
}

// ScenarioEdge is one directed edge of a mesh scenario: a link clause
// plus a name and its two endpoints.
type ScenarioEdge struct {
	Name string `json:"name"`
	From string `json:"from"`
	To   string `json:"to"`
	ScenarioLink
}

// Scenario is a complete declarative scenario file: either a chain
// (links / reverse_links) or a mesh (nodes / edges).
type Scenario struct {
	Name         string         `json:"name"`
	Seed         int64          `json:"seed"`
	DurationS    float64        `json:"duration_s"`
	WarmupS      float64        `json:"warmup_s"`
	RTTms        float64        `json:"rtt_ms"`
	SampleMs     float64        `json:"sample_ms"`
	Links        []ScenarioLink `json:"links,omitempty"`
	ReverseLinks []ScenarioLink `json:"reverse_links,omitempty"`
	Nodes        []string       `json:"nodes,omitempty"`
	Edges        []ScenarioEdge `json:"edges,omitempty"`
	Flows        []ScenarioFlow `json:"flows"`
}

// LoadScenario reads and parses a scenario file.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseScenario(data)
}

// ParseScenario parses a scenario from JSON bytes. Unknown keys are an
// error: a typo'd field name must fail loudly, not silently leave a
// default in place.
func ParseScenario(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	return &sc, nil
}

// ms converts a float millisecond count to sim.Time.
func ms(v float64) sim.Time { return sim.FromSeconds(v / 1000) }

// compileLink turns one link clause into a LinkSpec.
func compileLink(sl *ScenarioLink, idx int, chain string) (LinkSpec, error) {
	ls := LinkSpec{
		Kind:      sl.Kind,
		Delay:     ms(sl.DelayMs),
		Lookahead: ms(sl.LookaheadMs),
		Impair: topo.Impairments{
			LossRate:      sl.Loss,
			BurstLossRate: sl.BurstLoss,
			BurstPBad:     sl.BurstPBad,
			BurstPGood:    sl.BurstPGood,
			Jitter:        ms(sl.JitterMs),
			ReorderProb:   sl.ReorderProb,
			ReorderDelay:  ms(sl.ReorderDelayMs),
		},
		Qdisc: QdiscSpec{
			Kind:              sl.Qdisc.Kind,
			Buffer:            sl.Qdisc.Buffer,
			ABCDelayThreshold: ms(sl.Qdisc.DTms),
		},
	}
	where := fmt.Sprintf("scenario: %s[%d]", chain, idx)
	switch sl.Kind {
	case "wire":
		// Pure propagation hop (mesh edges only): no bottleneck model, no
		// qdisc. Anything that configures one is a contradiction.
		if chain != "edges" {
			return LinkSpec{}, fmt.Errorf("%s: wire is a mesh edge kind; chain links need a bottleneck", where)
		}
		if sl.Trace != "" || len(sl.StepsMbps) > 0 || sl.SquareHiMbps > 0 ||
			sl.RateMbps > 0 || sl.MCS != nil || sl.Estimate || sl.LookaheadMs > 0 {
			return LinkSpec{}, fmt.Errorf("%s: wire links carry no bottleneck model", where)
		}
		if sl.Qdisc != (ScenarioQdisc{}) {
			return LinkSpec{}, fmt.Errorf("%s: wire links have no qdisc", where)
		}
		ls.Qdisc = QdiscSpec{}
	case "trace", "":
		switch {
		case sl.Trace != "":
			tr, err := trace.NamedCellular(sl.Trace)
			if err != nil {
				return LinkSpec{}, fmt.Errorf("%s: %v", where, err)
			}
			ls.Trace = tr
		case len(sl.StepsMbps) > 0:
			if sl.StepMs <= 0 {
				return LinkSpec{}, fmt.Errorf("%s: steps_mbps without step_ms", where)
			}
			bps := make([]float64, len(sl.StepsMbps))
			for i, m := range sl.StepsMbps {
				bps[i] = m * 1e6
			}
			ls.Trace = trace.Steps(fmt.Sprintf("%s-steps-%d", chain, idx), bps, ms(sl.StepMs))
		case sl.SquareHiMbps > 0:
			if sl.SquareHalfMs <= 0 {
				return LinkSpec{}, fmt.Errorf("%s: square wave without square_half_ms", where)
			}
			ls.Trace = trace.SquareWave(fmt.Sprintf("%s-square-%d", chain, idx),
				sl.SquareLoMbps*1e6, sl.SquareHiMbps*1e6, ms(sl.SquareHalfMs))
		case sl.RateMbps > 0 && sl.Kind == "":
			ls.Kind = "rate"
			ls.Rate = netem.ConstRate(sl.RateMbps * 1e6)
		default:
			return LinkSpec{}, fmt.Errorf("%s: trace link needs trace, steps_mbps or square_*", where)
		}
		if ls.Kind == "" {
			ls.Kind = "trace"
		}
	case "rate":
		if sl.RateMbps <= 0 {
			return LinkSpec{}, fmt.Errorf("%s: rate link needs rate_mbps > 0", where)
		}
		ls.Rate = netem.ConstRate(sl.RateMbps * 1e6)
	case "wifi":
		cfg := wifi.DefaultLinkConfig()
		if sl.MCS != nil {
			mcs := *sl.MCS
			cfg.MCS = func(sim.Time) int { return mcs }
		}
		ls.Wifi = &WiFiLinkSpec{Config: cfg, Estimate: sl.Estimate}
	default:
		return LinkSpec{}, fmt.Errorf("%s: unknown link kind %q", where, sl.Kind)
	}
	return ls, nil
}

// Compile turns the scenario into a runnable Spec. Scheme names are
// validated against the registry up front so a typo fails with the list
// of registered schemes instead of mid-run.
func (sc *Scenario) Compile() (Spec, error) {
	spec := Spec{
		Seed:     sc.Seed,
		Duration: sim.FromSeconds(sc.DurationS),
		Warmup:   sim.FromSeconds(sc.WarmupS),
		RTT:      ms(sc.RTTms),
		Sample:   ms(sc.SampleMs),
	}
	for i := range sc.Links {
		ls, err := compileLink(&sc.Links[i], i, "links")
		if err != nil {
			return Spec{}, err
		}
		spec.Links = append(spec.Links, ls)
	}
	for i := range sc.ReverseLinks {
		ls, err := compileLink(&sc.ReverseLinks[i], i, "reverse_links")
		if err != nil {
			return Spec{}, err
		}
		spec.ReverseLinks = append(spec.ReverseLinks, ls)
	}
	spec.Nodes = append(spec.Nodes, sc.Nodes...)
	for i := range sc.Edges {
		se := &sc.Edges[i]
		ls, err := compileLink(&se.ScenarioLink, i, "edges")
		if err != nil {
			return Spec{}, err
		}
		spec.Edges = append(spec.Edges, EdgeSpec{Name: se.Name, From: se.From, To: se.To, Link: ls})
	}
	for i := range sc.Flows {
		sf := &sc.Flows[i]
		if _, err := cc.New(sf.Scheme); err != nil {
			return Spec{}, fmt.Errorf("scenario: flows[%d]: %v", i, err)
		}
		fs := FlowSpec{
			Scheme:  sf.Scheme,
			Start:   sim.FromSeconds(sf.StartS),
			Stop:    sim.FromSeconds(sf.StopS),
			EnterAt: sf.EnterAt,
			ExitAt:  sf.ExitAt,
			RTT:     ms(sf.RTTms),
			Path:    sf.Path,
			AckPath: sf.AckPath,
		}
		switch sf.Dir {
		case "", "forward":
		case "reverse":
			fs.Dir = Reverse
		default:
			return Spec{}, fmt.Errorf("scenario: flows[%d]: unknown dir %q", i, sf.Dir)
		}
		if len(sf.Path) > 0 && (sf.Dir != "" || sf.EnterAt != 0 || sf.ExitAt != 0) {
			return Spec{}, fmt.Errorf("scenario: flows[%d]: path routes over mesh edges; dir/enter_at/exit_at are chain fields", i)
		}
		if sf.RateMbps > 0 {
			fs.Source = cc.NewRateLimited(sf.RateMbps * 1e6)
		}
		spec.Flows = append(spec.Flows, fs)
	}
	return spec, nil
}

// RunScenario loads, compiles and runs a scenario file, returning the
// result and the pooled delay recorder.
func RunScenario(path string) (*Result, *metrics.DelayRecorder, error) {
	sc, err := LoadScenario(path)
	if err != nil {
		return nil, nil, err
	}
	spec, err := sc.Compile()
	if err != nil {
		return nil, nil, err
	}
	return Run(spec)
}
