// Observability wiring for the harness: process-wide switches that
// attach a flight recorder and a metrics registry to every scenario the
// harness runs. Both are off by default and both are passive with
// respect to golden digests in their default state — tracing never
// schedules simulator events at all, and metric sampling (which does
// schedule a sampler) only activates when EnableMetrics was called.
package exp

import (
	"fmt"
	"sync/atomic"

	"abc/internal/abc"
	"abc/internal/obs"
	"abc/internal/qdisc"
	"abc/internal/sim"
	"abc/internal/topo"
)

var (
	// traceRec is the recorder every new scenario graph attaches
	// (EnableTracing); nil = tracing off.
	traceRec atomic.Pointer[obs.Recorder]
	// metReg / metPeriodNs configure run-metrics sampling
	// (EnableMetrics); nil registry = metrics off.
	metReg      atomic.Pointer[obs.Registry]
	metPeriodNs atomic.Int64
)

// EnableTracing attaches a flight recorder to every scenario the
// harness runs from now on: the topology graph, its links and qdiscs,
// every flow endpoint and (on sharded runs) the coordinator emit trace
// events into it, filtered by the recorder's category mask. Pass nil to
// turn tracing back off. Safe to call concurrently with running sweeps;
// cells read the switch once at cell start.
func EnableTracing(r *obs.Recorder) { traceRec.Store(r) }

// TracingRecorder returns the recorder installed by EnableTracing (nil
// when tracing is off).
func TracingRecorder() *obs.Recorder { return traceRec.Load() }

// EnableMetrics publishes live run metrics into reg, sampled every
// period of virtual time: per-edge queue depth/bytes (plus ABC tokens
// and mark counts on ABC bottlenecks), per-flow cwnd/pacing-rate (plus
// ReverseBrakes for ABC senders), graph-wide drop counters, shard
// synchronization counters, and the well-known obs.MetricSimSeconds /
// obs.MetricSimEvents read by the progress line. Unlike tracing, the
// sampler schedules real simulator events, so runs with metrics enabled
// are NOT digest-comparable to runs without; gauges show the most
// recent sample from whichever sweep cell sampled last, while counters
// aggregate across cells. Pass a nil registry to turn metrics off.
func EnableMetrics(reg *obs.Registry, period sim.Time) {
	if period <= 0 {
		period = sim.Second
	}
	metPeriodNs.Store(int64(period))
	metReg.Store(reg)
}

// attachObs hands the process-wide recorder, if any, to a freshly built
// scenario graph. Called by both spec compilers right after graph
// construction, before any edges exist (AddEdge wires links as they
// appear).
func attachObs(g *topo.Graph) {
	if r := traceRec.Load(); r != nil {
		g.SetRecorder(r)
	}
}

// namedQdisc pairs an addressable edge name with its built discipline
// for metric labels.
type namedQdisc struct {
	name string
	q    qdisc.Qdisc
}

// runSampler captures everything one scenario publishes per sample into
// the metrics registry. Handles are resolved once at construction so
// the per-sample work is atomic stores plus a few map-free loops.
type runSampler struct {
	reg    *obs.Registry
	g      *topo.Graph
	res    *Result
	qdiscs []namedQdisc
	// prevEvents tracks the executed-event count already published, so
	// obs.MetricSimEvents aggregates correctly across parallel cells.
	prevEvents uint64
}

// newRunSampler builds the sampler for one scenario, or nil when
// metrics are off. It must be called after the result's qdisc lists are
// populated (post buildChain / mesh edge compilation).
func newRunSampler(g *topo.Graph, res *Result) *runSampler {
	reg := metReg.Load()
	if reg == nil {
		return nil
	}
	rs := &runSampler{reg: reg, g: g, res: res}
	if res.EdgeQdiscs != nil {
		for name, q := range res.EdgeQdiscs {
			rs.qdiscs = append(rs.qdiscs, namedQdisc{name: name, q: q})
		}
	} else {
		for i, q := range res.Qdiscs {
			rs.qdiscs = append(rs.qdiscs, namedQdisc{name: fmt.Sprintf("fwd%d", i), q: q})
		}
		for i, q := range res.ReverseQdiscs {
			rs.qdiscs = append(rs.qdiscs, namedQdisc{name: fmt.Sprintf("rev%d", i), q: q})
		}
	}
	reg.Help("abc_queue_pkts", "Instantaneous bottleneck queue depth in packets.")
	reg.Help("abc_queue_bytes", "Instantaneous bottleneck queue depth in bytes.")
	reg.Help("abc_tokens", "ABC router token-bucket level (Algorithm 1).")
	reg.Help("abc_marks_total", "ABC marking decisions by kind.")
	reg.Help("abc_qdisc_drops_total", "Packets rejected by the bottleneck discipline.")
	reg.Help("abc_flow_cwnd_pkts", "Congestion window in packets.")
	reg.Help("abc_flow_rate_bps", "Pacing rate in bits/sec (0 = ACK-clocked).")
	reg.Help("abc_flow_reverse_brakes", "Brakes the ABC sender consumed off the reverse path.")
	reg.Help("abc_drops_total", "Packets dropped, by cause.")
	reg.Help("abc_shard_rounds_total", "Conservative-sync windows executed by the coordinator.")
	reg.Help("abc_shard_events_total", "Events executed per shard.")
	reg.Help("abc_shard_horizon_lag_seconds", "How far each shard's horizon trails the furthest shard.")
	return rs
}

// sample publishes one snapshot at virtual time now.
func (rs *runSampler) sample(now sim.Time) {
	reg, g := rs.reg, rs.g
	reg.Gauge(obs.MetricSimSeconds).Set(now.Seconds())

	var events uint64
	if c := g.Coordinator(); c != nil {
		for i := 0; i < c.Shards(); i++ {
			ex := c.Shard(i).Executed()
			events += ex
			reg.Counter(fmt.Sprintf(`abc_shard_events_total{shard="%d"}`, i)).Store(int64(ex))
			reg.Gauge(fmt.Sprintf(`abc_shard_horizon_lag_seconds{shard="%d"}`, i)).Set(c.HorizonLag(i).Seconds())
		}
		reg.Counter("abc_shard_rounds_total").Store(int64(c.Rounds()))
	} else {
		events = g.S.Executed()
	}
	reg.Counter(obs.MetricSimEvents).Add(int64(events - rs.prevEvents))
	rs.prevEvents = events

	for _, nq := range rs.qdiscs {
		reg.Gauge(`abc_queue_pkts{edge="` + nq.name + `"}`).Set(float64(nq.q.Len()))
		reg.Gauge(`abc_queue_bytes{edge="` + nq.name + `"}`).Set(float64(nq.q.Bytes()))
		if r, ok := nq.q.(*abc.Router); ok {
			reg.Gauge(`abc_tokens{edge="` + nq.name + `"}`).Set(r.Token())
			reg.Counter(`abc_marks_total{edge="` + nq.name + `",kind="accel"}`).Store(r.AccelMarked)
			reg.Counter(`abc_marks_total{edge="` + nq.name + `",kind="brake"}`).Store(r.BrakeMarked)
			reg.Counter(`abc_marks_total{edge="` + nq.name + `",kind="echo_demoted"}`).Store(r.EchoDemoted)
			reg.Counter(`abc_qdisc_drops_total{edge="` + nq.name + `"}`).Store(r.Stats.DroppedPackets)
		}
	}

	for i := range rs.res.Flows {
		fr := &rs.res.Flows[i]
		label := fmt.Sprintf(`{flow="%d"}`, i)
		reg.Gauge("abc_flow_cwnd_pkts" + label).Set(fr.Algorithm.CwndPkts())
		var bps float64
		if pr, ok := fr.Algorithm.(interface {
			PacingRate(now sim.Time) (float64, bool)
		}); ok {
			if v, use := pr.PacingRate(now); use {
				bps = v
			}
		}
		reg.Gauge("abc_flow_rate_bps" + label).Set(bps)
		if s, ok := fr.Algorithm.(*abc.Sender); ok {
			reg.Gauge("abc_flow_reverse_brakes" + label).Set(float64(s.ReverseBrakes))
		}
	}

	reg.Counter(`abc_drops_total{cause="unrouted"}`).Store(g.UnroutedDrops())
	reg.Counter(`abc_drops_total{cause="impair"}`).Store(g.ImpairDrops())
	reg.Counter(`abc_drops_total{cause="link_down"}`).Store(g.DownDrops())
	reg.Counter(`abc_drops_total{cause="adversary"}`).Store(g.AdversaryDrops())
}

// scheduleMetrics arms the run's metric sampler, when metrics are
// enabled: a periodic simulator event on sequential runs, pre-scheduled
// coordinator barriers on sharded ones (GlobalAt must be registered
// before Run). Must be called before the simulation starts. It returns
// the sampler so the runner can publish one final snapshot after the
// run (nil when metrics are off).
func scheduleMetrics(g *topo.Graph, spec *Spec, res *Result) *runSampler {
	rs := newRunSampler(g, res)
	if rs == nil {
		return nil
	}
	period := sim.Time(metPeriodNs.Load())
	if c := g.Coordinator(); c != nil {
		for t := period; t <= spec.Duration; t += period {
			at := t
			c.GlobalAt(at, func() { rs.sample(at) })
		}
		return rs
	}
	s := g.S
	s.Every(period, func() bool {
		if s.Now() > spec.Duration {
			return false
		}
		rs.sample(s.Now())
		return true
	})
	return rs
}
