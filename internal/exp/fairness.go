// Fairness experiments: Fig. 3 (additive increase gives fairness among
// ABC flows) and the §6.5 Jain-index sweep.
package exp

import (
	"abc/internal/abc"
	"abc/internal/cc"
	"abc/internal/metrics"
	"abc/internal/netem"
	"abc/internal/sim"
)

// Fig3Result holds the staggered-flow fairness run.
type Fig3Result struct {
	WithAI bool
	// Tput[i] is flow i's throughput series.
	Tput []*metrics.Timeseries
	// JainAllActive is the fairness index over the window where all five
	// flows are active.
	JainAllActive float64
}

// Fig3Fairness reproduces Fig. 3: five ABC flows with the same RTT start
// and depart one by one on a 24 Mbit/s link. With the additive-increase
// term the flows converge to equal shares; without it (pure MIMD) they
// hold whatever split they happened to start with.
func Fig3Fairness(withAI bool, seed int64) (*Fig3Result, error) {
	const n = 5
	dur := 250 * sim.Second
	flows := make([]FlowSpec, n)
	for i := range flows {
		flows[i] = FlowSpec{
			Scheme: "ABC",
			Start:  sim.Time(i) * 25 * sim.Second,
			Stop:   dur - sim.Time(i)*25*sim.Second,
		}
	}
	spec := Spec{
		Seed:     seed,
		Duration: dur,
		Warmup:   time(2),
		RTT:      100 * sim.Millisecond,
		Links: []LinkSpec{{
			Rate:  netem.ConstRate(24e6),
			Qdisc: QdiscSpec{Kind: "abc", Buffer: 500},
		}},
		Flows:  flows,
		Sample: sim.Second,
	}
	res, _, err := Run(spec)
	if err != nil {
		return nil, err
	}
	// Disable AI per flow after construction is impossible through Run;
	// instead the harness runs standard ABC. For the MIMD ablation we
	// rebuild with the DisableAI flag below.
	if !withAI {
		return fig3NoAI(seed)
	}
	return fig3Finish(res, withAI)
}

// time is a tiny helper: seconds to sim.Time.
func time(s float64) sim.Time { return sim.FromSeconds(s) }

// fig3Finish computes the fairness index over the all-active window
// (100 s – 125 s, when all five flows run).
func fig3Finish(res *Result, withAI bool) (*Fig3Result, error) {
	out := &Fig3Result{WithAI: withAI}
	rates := make([]float64, len(res.Flows))
	for i := range res.Flows {
		out.Tput = append(out.Tput, res.Flows[i].Tput)
		// Mean over samples in [105, 123] s.
		ts := res.Flows[i].Tput
		var sum float64
		var n int
		for j, t := range ts.Times {
			if t >= 105 && t <= 123 {
				sum += ts.Values[j]
				n++
			}
		}
		if n > 0 {
			rates[i] = sum / float64(n)
		}
	}
	out.JainAllActive = metrics.JainIndex(rates)
	return out, nil
}

// fig3NoAI rebuilds the scenario with DisableAI senders, which requires
// constructing the algorithms directly.
func fig3NoAI(seed int64) (*Fig3Result, error) {
	const n = 5
	dur := 250 * sim.Second
	flows := make([]FlowSpec, n)
	for i := range flows {
		flows[i] = FlowSpec{
			Scheme: "ABC",
			Start:  sim.Time(i) * 25 * sim.Second,
			Stop:   dur - sim.Time(i)*25*sim.Second,
			Mutate: func(alg cc.Algorithm) {
				alg.(*abc.Sender).DisableAI = true
			},
		}
	}
	spec := Spec{
		Seed:     seed,
		Duration: dur,
		Warmup:   time(2),
		RTT:      100 * sim.Millisecond,
		Links: []LinkSpec{{
			Rate:  netem.ConstRate(24e6),
			Qdisc: QdiscSpec{Kind: "abc", Buffer: 500},
		}},
		Flows:  flows,
		Sample: sim.Second,
	}
	res, _, err := Run(spec)
	if err != nil {
		return nil, err
	}
	return fig3Finish(res, false)
}

// JainFairness runs n concurrent ABC flows on a 24 Mbit/s wired
// bottleneck for 60 s and returns Jain's index of their throughputs
// (§6.5 reports within 5% of 1 for 2–32 flows).
func JainFairness(n int, seed int64) (float64, error) {
	flows := make([]FlowSpec, n)
	for i := range flows {
		flows[i] = FlowSpec{Scheme: "ABC"}
	}
	res, _, err := Run(Spec{
		Seed:     seed,
		Duration: 60 * sim.Second,
		Warmup:   10 * sim.Second,
		RTT:      100 * sim.Millisecond,
		Links: []LinkSpec{{
			Rate:  netem.ConstRate(24e6),
			Qdisc: QdiscSpec{Kind: "abc", Buffer: 500},
		}},
		Flows: flows,
	})
	if err != nil {
		return 0, err
	}
	rates := make([]float64, n)
	for i := range res.Flows {
		rates[i] = res.Flows[i].TputMbps
	}
	return metrics.JainIndex(rates), nil
}
