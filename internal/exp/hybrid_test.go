// Hybrid fluid/packet fidelity: the whole point of the fluid background
// is to stand in for real packet-level background flows, so these tests
// run both on the same bottleneck — N genuine rate-limited packet flows
// versus one "const" fluid aggregate offering the same total — and
// require the packet-level foreground to agree on throughput and p95
// queueing delay between the two worlds within stated tolerances.
package exp

import (
	"fmt"
	"math"
	"testing"

	"abc/internal/cc"
	"abc/internal/netem"
	"abc/internal/sim"
)

// fidelityRun runs one backlogged foreground flow of the given scheme
// against either N real rate-limited background flows (fluid=false) or
// one fluid const aggregate of the same total offered rate (fluid=true)
// on a 48 Mbps rate bottleneck, and returns the foreground's throughput
// and p95 queueing delay.
func fidelityRun(t *testing.T, scheme string, n int, totalMbps float64, fluid bool) (tputMbps, qP95 float64) {
	t.Helper()
	const muMbps = 48.0
	spec := Spec{
		Seed:     1,
		Duration: 12 * sim.Second,
		Links: []LinkSpec{{
			Rate:  netem.ConstRate(muMbps * 1e6),
			Qdisc: QdiscSpec{Kind: "auto", Buffer: 250},
		}},
		Flows: []FlowSpec{{Scheme: scheme}},
	}
	if fluid {
		spec.Background = []BackgroundSpec{{
			Edge: "fwd0", Kind: "const", Flows: n, RateMbps: totalMbps,
		}}
	} else {
		per := totalMbps * 1e6 / float64(n)
		for i := 0; i < n; i++ {
			spec.Flows = append(spec.Flows, FlowSpec{
				Scheme: scheme,
				Source: cc.NewRateLimited(per),
			})
		}
	}
	res, _, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	fg := &res.Flows[0]
	return fg.TputMbps, fg.QDelay.P95()
}

// TestHybridFidelity is the satellite property test: across flow
// counts, offered loads and schemes, the fluid stand-in and the real
// packet ensemble must leave the foreground in the same place —
// throughput within 15% (or 1.5 Mbps, whichever is looser) and p95
// queueing delay within 25% or 5 ms.
func TestHybridFidelity(t *testing.T) {
	cases := []struct {
		scheme    string
		n         int
		totalMbps float64
	}{
		{"ABC", 4, 12},
		{"ABC", 16, 24},
		{"Cubic", 4, 12},
		{"Cubic", 16, 24},
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("%s-n%d-r%g", c.scheme, c.n, c.totalMbps), func(t *testing.T) {
			t.Parallel()
			pktTput, pktQ := fidelityRun(t, c.scheme, c.n, c.totalMbps, false)
			fluTput, fluQ := fidelityRun(t, c.scheme, c.n, c.totalMbps, true)
			t.Logf("packet: fg %.2f Mbps, q p95 %.1f ms; fluid: fg %.2f Mbps, q p95 %.1f ms",
				pktTput, pktQ, fluTput, fluQ)

			tputTol := math.Max(0.15*pktTput, 1.5)
			if diff := math.Abs(fluTput - pktTput); diff > tputTol {
				t.Errorf("foreground throughput disagrees: packet %.2f Mbps vs fluid %.2f Mbps (tol %.2f)",
					pktTput, fluTput, tputTol)
			}
			qTol := math.Max(0.25*pktQ, 5)
			if diff := math.Abs(fluQ - pktQ); diff > qTol {
				t.Errorf("foreground p95 queueing delay disagrees: packet %.1f ms vs fluid %.1f ms (tol %.1f)",
					pktQ, fluQ, qTol)
			}
		})
	}
}

// TestHybridWiring locks down the loud-failure contract of the
// background clause at the harness level: unknown edges, duplicate
// edges and link models without a background-aware service loop are
// errors, not silent no-ops.
func TestHybridWiring(t *testing.T) {
	base := func() Spec {
		return Spec{
			Seed:     1,
			Duration: sim.Second,
			Links: []LinkSpec{{
				Rate:  netem.ConstRate(10e6),
				Qdisc: QdiscSpec{Kind: "auto", Buffer: 250},
			}},
			Flows: []FlowSpec{{Scheme: "ABC"}},
		}
	}
	t.Run("unknown-edge", func(t *testing.T) {
		spec := base()
		spec.Background = []BackgroundSpec{{Edge: "fwd7", Kind: "const", RateMbps: 1}}
		if _, _, err := Run(spec); err == nil {
			t.Fatal("background on unknown edge did not error")
		}
	})
	t.Run("duplicate-edge", func(t *testing.T) {
		spec := base()
		spec.Background = []BackgroundSpec{
			{Edge: "fwd0", Kind: "const", RateMbps: 1},
			{Edge: "fwd0", Kind: "const", RateMbps: 2},
		}
		if _, _, err := Run(spec); err == nil {
			t.Fatal("duplicate background edge did not error")
		}
	})
	t.Run("bad-kind", func(t *testing.T) {
		spec := base()
		spec.Background = []BackgroundSpec{{Edge: "fwd0", Kind: "poisson", RateMbps: 1}}
		if _, _, err := Run(spec); err == nil {
			t.Fatal("unknown aggregate kind did not error")
		}
	})
	t.Run("works-on-trace-link", func(t *testing.T) {
		spec := base()
		spec.Background = []BackgroundSpec{{Edge: "fwd0", Kind: "aimd", Flows: 100}}
		res, _, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Backgrounds) != 1 || res.Backgrounds[0].ServedMB <= 0 {
			t.Fatalf("background result missing or idle: %+v", res.Backgrounds)
		}
	})
}

// TestHybridShardsDeterminism: couplers step on their edge's home
// simulator, so a background-carrying mesh must produce identical
// foreground results under sequential and sharded execution.
func TestHybridShardsDeterminism(t *testing.T) {
	run := func(shards int) *Result {
		spec := Spec{
			Seed:     1,
			Duration: 4 * sim.Second,
			Shards:   shards,
			Nodes:    []string{"src", "gw", "dst"},
			Edges: []EdgeSpec{
				{Name: "up", From: "src", To: "gw",
					Link: LinkSpec{Rate: netem.ConstRate(30e6), Qdisc: QdiscSpec{Kind: "auto", Buffer: 250}}},
				{Name: "down", From: "gw", To: "dst",
					Link: LinkSpec{Rate: netem.ConstRate(20e6), Qdisc: QdiscSpec{Kind: "auto", Buffer: 250}}},
			},
			Flows: []FlowSpec{{Scheme: "ABC", Path: []string{"up", "down"}}},
			Background: []BackgroundSpec{
				{Edge: "down", Kind: "const", Flows: 1000, RateMbps: 8},
			},
		}
		res, _, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	shd := run(2)
	if seq.Flows[0].TputMbps != shd.Flows[0].TputMbps {
		t.Errorf("foreground throughput differs across shard counts: %.4f vs %.4f",
			seq.Flows[0].TputMbps, shd.Flows[0].TputMbps)
	}
	if a, b := seq.Backgrounds[0].ServedMB, shd.Backgrounds[0].ServedMB; a != b {
		t.Errorf("background served bytes differ across shard counts: %.6f vs %.6f", a, b)
	}
}
