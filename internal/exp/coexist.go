// Coexistence experiments: Fig. 6 (non-ABC bottleneck and the dual
// window), Fig. 7 (ABC and Cubic sharing a dual-queue ABC router) and
// Fig. 11 (on-off cross traffic on a wired hop).
package exp

import (
	"abc/internal/abc"
	"abc/internal/metrics"
	"abc/internal/netem"
	"abc/internal/sim"
	"abc/internal/trace"
)

// Fig6Result holds the bottleneck-switching run.
type Fig6Result struct {
	// Tput is the flow's throughput series (Mbit/s).
	Tput *metrics.Timeseries
	// WABC / WCubic sample the sender's two windows (packets).
	WABC, WCubic *metrics.Timeseries
	// WirelessRate samples the wireless link's current rate (Mbit/s).
	WirelessRate *metrics.Timeseries
	// QDelayP95 is the p95 accumulated queuing delay (ms).
	QDelayP95 float64
	// TrackError is mean |tput − min(wireless, wired)| / ideal.
	TrackError float64
}

// fig6WirelessRates is the step pattern of the emulated wireless link:
// the bottleneck alternates between the wireless link and the 12 Mbit/s
// wired link several times, as in Fig. 6.
var fig6WirelessRates = []float64{10e6, 18e6, 6e6, 16e6, 8e6, 20e6, 4e6, 14e6}

// Fig6NonABCBottleneck reproduces Fig. 6: an ABC flow traverses an
// ABC-capable wireless link (stepped rate, 5 s steps) followed by a
// 12 Mbit/s wired droptail link. Whichever of wabc/wcubic is smaller
// governs the flow, and ABC tracks the bottleneck switches.
func Fig6NonABCBottleneck(seed int64) (*Fig6Result, error) {
	stepDur := 5 * sim.Second
	wireless := trace.Steps("fig6-wireless", fig6WirelessRates, stepDur)
	dur := sim.Time(len(fig6WirelessRates)) * stepDur * 2 // two cycles

	out := &Fig6Result{}
	var wabcTS, wcubTS, rateTS *metrics.Timeseries
	spec := Spec{
		Seed:     seed,
		Duration: dur,
		Warmup:   2 * sim.Second,
		RTT:      100 * sim.Millisecond,
		Links: []LinkSpec{
			{Trace: wireless, Qdisc: QdiscSpec{Kind: "abc", Buffer: 500}},
			{Rate: netem.ConstRate(12e6), Qdisc: QdiscSpec{Kind: "droptail", Buffer: 100}},
		},
		Flows:  []FlowSpec{{Scheme: "ABC"}},
		Sample: 200 * sim.Millisecond,
	}
	spec.Probe = func(now sim.Time, r *Result) {
		s := r.Flows[0].Algorithm.(*abc.Sender)
		if wabcTS == nil {
			wabcTS = &metrics.Timeseries{}
			wcubTS = &metrics.Timeseries{}
			rateTS = &metrics.Timeseries{}
		}
		wabcTS.Times = append(wabcTS.Times, now.Seconds())
		wabcTS.Values = append(wabcTS.Values, s.WABC())
		wcubTS.Times = append(wcubTS.Times, now.Seconds())
		wcubTS.Values = append(wcubTS.Values, s.WCubic())
		rateTS.Times = append(rateTS.Times, now.Seconds())
		rateTS.Values = append(rateTS.Values, wireless.CapacityBps(now, 100*sim.Millisecond)/1e6)
	}
	res, _, err := Run(spec)
	if err != nil {
		return nil, err
	}
	out.Tput = res.Flows[0].Tput
	out.WABC, out.WCubic, out.WirelessRate = wabcTS, wcubTS, rateTS
	out.QDelayP95 = res.Flows[0].QDelay.P95()

	// Tracking error against the ideal min(wireless step rate, 12 Mbit/s),
	// sampled away from step boundaries.
	var errSum float64
	var n int
	for i, t := range out.Tput.Times {
		if t < 5 {
			continue
		}
		step := int(t/stepDur.Seconds()) % len(fig6WirelessRates)
		ideal := fig6WirelessRates[step] / 1e6
		if ideal > 12 {
			ideal = 12
		}
		// Skip the second right after each step boundary.
		if t-float64(int(t/stepDur.Seconds()))*stepDur.Seconds() < 1.5 {
			continue
		}
		diff := out.Tput.Values[i] - ideal
		if diff < 0 {
			diff = -diff
		}
		errSum += diff / ideal
		n++
	}
	if n > 0 {
		out.TrackError = errSum / float64(n)
	}
	return out, nil
}

// Fig7Result holds the ABC/Cubic dual-queue sharing run.
type Fig7Result struct {
	// Tput[i] is flow i's throughput series (ABC1, ABC2, Cubic1, Cubic2).
	Tput []*metrics.Timeseries
	// ABCQDelayP95 and CubicQDelayP95 are per-queue p95 queuing delays:
	// ABC flows keep low delay despite the Cubic queue (ms).
	ABCQDelayP95, CubicQDelayP95 float64
	// SteadyTput are mean throughputs over the window where all four
	// flows are active.
	SteadyTput []float64
	// Jain is the fairness index over SteadyTput.
	Jain float64
}

// Fig7Coexistence reproduces Fig. 7: two ABC then two Cubic flows arrive
// one after another on a 24 Mbit/s dual-queue ABC bottleneck and share it
// fairly, with ABC keeping low queuing delay.
func Fig7Coexistence(seed int64) (*Fig7Result, error) {
	dur := 200 * sim.Second
	flows := []FlowSpec{
		{Scheme: "ABC", Start: 0},
		{Scheme: "ABC", Start: 25 * sim.Second},
		{Scheme: "Cubic", Start: 50 * sim.Second},
		{Scheme: "Cubic", Start: 75 * sim.Second},
	}
	res, _, err := Run(Spec{
		Seed:     seed,
		Duration: dur,
		Warmup:   2 * sim.Second,
		RTT:      100 * sim.Millisecond,
		Links: []LinkSpec{{
			Rate:  netem.ConstRate(24e6),
			Qdisc: QdiscSpec{Kind: "dual-maxmin", Buffer: 250},
		}},
		Flows:  flows,
		Sample: sim.Second,
	})
	if err != nil {
		return nil, err
	}
	out := &Fig7Result{}
	for i := range res.Flows {
		out.Tput = append(out.Tput, res.Flows[i].Tput)
		// Steady window: 100–195 s (all flows active).
		ts := res.Flows[i].Tput
		var sum float64
		var n int
		for j, t := range ts.Times {
			if t >= 100 && t <= 195 {
				sum += ts.Values[j]
				n++
			}
		}
		if n > 0 {
			out.SteadyTput = append(out.SteadyTput, sum/float64(n))
		} else {
			out.SteadyTput = append(out.SteadyTput, 0)
		}
	}
	out.Jain = metrics.JainIndex(out.SteadyTput)
	out.ABCQDelayP95 = res.Flows[0].QDelay.P95()
	out.CubicQDelayP95 = res.Flows[2].QDelay.P95()
	return out, nil
}

// Fig11Result holds the cross-traffic tracking run.
type Fig11Result struct {
	// Tput is the ABC flow's throughput series.
	Tput *metrics.Timeseries
	// Ideal is the fair-share ideal rate series.
	Ideal *metrics.Timeseries
	// TrackError is mean |tput − ideal| / ideal over steady samples.
	TrackError float64
	// QDelayP95NoCross is p95 queuing delay during no-cross-traffic
	// periods (should be low: ABC controls the bottleneck then).
	QDelayP95NoCross float64
}

// Fig11CrossTraffic reproduces Fig. 11: an ABC flow crosses an ABC
// wireless link then a 12 Mbit/s wired droptail link shared with on-off
// Cubic cross traffic; the flow should track min(wireless rate, fair
// share of the wired link) as the bottleneck moves.
func Fig11CrossTraffic(seed int64) (*Fig11Result, error) {
	stepDur := 5 * sim.Second
	rates := []float64{10e6, 4e6, 8e6, 5e6, 9e6, 3e6, 7e6, 10e6}
	wireless := trace.Steps("fig11-wireless", rates, stepDur)
	dur := 80 * sim.Second
	// Cross traffic: off for the first 30 s, on 30–55 s, off afterwards.
	cross := &onOffWindows{on: [][2]float64{{30, 55}}}

	var idealTS metrics.Timeseries
	spec := Spec{
		Seed:     seed,
		Duration: dur,
		Warmup:   2 * sim.Second,
		RTT:      100 * sim.Millisecond,
		Links: []LinkSpec{
			{Trace: wireless, Qdisc: QdiscSpec{Kind: "abc", Buffer: 500}},
			{Rate: netem.ConstRate(12e6), Qdisc: QdiscSpec{Kind: "droptail", Buffer: 100}},
		},
		Flows: []FlowSpec{
			{Scheme: "ABC"},
			{Scheme: "Cubic", EnterAt: 1, Source: cross},
		},
		Sample: 500 * sim.Millisecond,
	}
	spec.Probe = func(now sim.Time, r *Result) {
		t := now.Seconds()
		step := int(t/stepDur.Seconds()) % len(rates)
		wirelessMbps := rates[step] / 1e6
		wired := 12.0
		if cross.Available(now) {
			wired = 6.0 // fair share against one cross flow
		}
		ideal := wirelessMbps
		if wired < ideal {
			ideal = wired
		}
		idealTS.Times = append(idealTS.Times, t)
		idealTS.Values = append(idealTS.Values, ideal)
	}
	res, _, err := Run(spec)
	if err != nil {
		return nil, err
	}
	out := &Fig11Result{Tput: res.Flows[0].Tput, Ideal: &idealTS}
	var errSum float64
	var n int
	for i, t := range idealTS.Times {
		if t < 5 || i >= len(out.Tput.Values) {
			continue
		}
		// Skip samples near step or cross-traffic transitions.
		if nearBoundary(t, stepDur.Seconds()) || nearAny(t, []float64{30, 55}, 3) {
			continue
		}
		ideal := idealTS.Values[i]
		diff := out.Tput.Values[i] - ideal
		if diff < 0 {
			diff = -diff
		}
		errSum += diff / ideal
		n++
	}
	if n > 0 {
		out.TrackError = errSum / float64(n)
	}
	out.QDelayP95NoCross = res.Flows[0].QDelay.P95()
	return out, nil
}

// nearBoundary reports whether t is within 2 s after a step boundary.
func nearBoundary(t, step float64) bool {
	frac := t - float64(int(t/step))*step
	return frac < 2
}

// nearAny reports whether t is within w seconds of any point.
func nearAny(t float64, points []float64, w float64) bool {
	for _, p := range points {
		if t >= p-w && t <= p+w {
			return true
		}
	}
	return false
}

// onOffWindows is a source active during the listed [start, end) second
// windows.
type onOffWindows struct{ on [][2]float64 }

// Available implements cc.Source.
func (o *onOffWindows) Available(now sim.Time) bool {
	t := now.Seconds()
	for _, w := range o.on {
		if t >= w[0] && t < w[1] {
			return true
		}
	}
	return false
}

// OnSend implements cc.Source.
func (o *onOffWindows) OnSend(sim.Time, int) {}

// Done implements cc.Source.
func (o *onOffWindows) Done() bool { return false }
