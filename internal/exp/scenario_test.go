package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"abc/internal/app"
	"abc/internal/cc"
	"abc/internal/packet"
	"abc/internal/sim"
)

// TestScenarioRejectsUnknownKeys: a typo'd field name must fail loudly,
// never silently leave a default in place.
func TestScenarioRejectsUnknownKeys(t *testing.T) {
	cases := []string{
		`{"name":"x","durations_s":10}`,
		`{"links":[{"kind":"rate","rate_mbp":8}]}`,
		`{"edges":[{"name":"e","form":"a","to":"b"}]}`,
		`{"flows":[{"scheme":"ABC","paths":["e"]}]}`,
	}
	for _, c := range cases {
		if _, err := ParseScenario([]byte(c)); err == nil ||
			!strings.Contains(err.Error(), "unknown field") {
			t.Errorf("ParseScenario(%s) = %v, want unknown-field error", c, err)
		}
	}
}

// TestScenarioFilesRoundTrip: every example scenario must survive a
// parse → marshal → parse cycle structurally unchanged and still compile
// to the same Spec shape — the declarative files are the stable contract
// the fuzz corpus seeds from.
func TestScenarioFilesRoundTrip(t *testing.T) {
	paths, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example scenarios found: %v", err)
	}
	for _, path := range paths {
		sc, err := LoadScenario(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("%s: marshal: %v", path, err)
		}
		sc2, err := ParseScenario(out)
		if err != nil {
			t.Fatalf("%s: re-parse of own marshal: %v", path, err)
		}
		// The load directory is process state, not scenario content; carry
		// it over so relative file references still resolve.
		sc2.dir = sc.dir
		if !reflect.DeepEqual(sc, sc2) {
			t.Errorf("%s: round trip changed the scenario:\n%+v\n%+v", path, sc, sc2)
		}
		if _, err := sc2.Compile(); err != nil {
			t.Errorf("%s: round-tripped scenario no longer compiles: %v", path, err)
		}
	}
}

// TestScenarioMeshFieldValidation covers the mesh-specific compile
// errors: mixing chain routing fields with mesh paths is rejected at the
// scenario layer, and wire edges cannot carry bottleneck configuration.
func TestScenarioMeshFieldValidation(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"path with dir",
			`{"nodes":["a","b"],"edges":[{"name":"e","from":"a","to":"b","kind":"rate","rate_mbps":8}],
			  "flows":[{"scheme":"ABC","path":["e"],"dir":"reverse"}]}`,
			"chain fields"},
		{"path with enter_at",
			`{"nodes":["a","b"],"edges":[{"name":"e","from":"a","to":"b","kind":"rate","rate_mbps":8}],
			  "flows":[{"scheme":"ABC","path":["e"],"enter_at":1}]}`,
			"chain fields"},
		{"wire with rate",
			`{"nodes":["a","b"],"edges":[{"name":"e","from":"a","to":"b","kind":"wire","rate_mbps":8}],
			  "flows":[{"scheme":"ABC","path":["e"]}]}`,
			"no bottleneck"},
		{"wire with qdisc",
			`{"nodes":["a","b"],"edges":[{"name":"e","from":"a","to":"b","kind":"wire","qdisc":{"kind":"droptail"}}],
			  "flows":[{"scheme":"ABC","path":["e"]}]}`,
			"no qdisc"},
		{"wire on chain link",
			`{"links":[{"kind":"wire","delay_ms":5}],"flows":[{"scheme":"ABC"}]}`,
			"mesh edge kind"},
	}
	for _, tc := range cases {
		sc, err := ParseScenario([]byte(tc.in))
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		if _, err := sc.Compile(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Compile() err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestScenarioBackgroundClause covers the background clause's
// compile-time contract: every bad form — unknown kind, non-positive
// rate, unknown or duplicate edge, malformed schedule — is a loud
// Compile error naming the entry, and the valid forms lower to
// BackgroundSpec entries.
func TestScenarioBackgroundClause(t *testing.T) {
	chain := func(bg string) string {
		return `{"duration_s":5,"links":[{"kind":"rate","rate_mbps":60}],
			"flows":[{"scheme":"ABC"}],"background":` + bg + `}`
	}
	bad := []struct {
		name, in, want string
	}{
		{"unknown kind", chain(`[{"edge":"fwd0","kind":"poisson","rate_mbps":1}]`), "unknown aggregate kind"},
		{"negative rate", chain(`[{"edge":"fwd0","kind":"const","rate_mbps":-4}]`), "positive rate"},
		{"zero rate", chain(`[{"edge":"fwd0","kind":"onoff","on_s":1,"off_s":1}]`), "positive rate"},
		{"unknown edge", chain(`[{"edge":"uplink9","kind":"aimd","flows":100}]`), `unknown edge "uplink9"`},
		{"reverse edge without reverse links", chain(`[{"edge":"rev0","kind":"const","rate_mbps":1}]`), `unknown edge "rev0"`},
		{"missing edge", chain(`[{"kind":"const","rate_mbps":1}]`), "missing edge"},
		{"duplicate edge", chain(`[{"edge":"fwd0","kind":"const","rate_mbps":1},{"edge":"fwd0","kind":"const","rate_mbps":2}]`), "already carries"},
		{"aimd with rate", chain(`[{"edge":"fwd0","kind":"aimd","flows":10,"rate_mbps":5}]`), "rate must be unset"},
		{"aimd without flows", chain(`[{"edge":"fwd0","kind":"aimd"}]`), "positive flow count"},
		{"negative start", chain(`[{"edge":"fwd0","kind":"const","rate_mbps":1,"start_s":-1}]`), "non-negative"},
		{"stop before start", chain(`[{"edge":"fwd0","kind":"const","rate_mbps":1,"start_s":3,"stop_s":1}]`), "not after start"},
	}
	for _, tc := range bad {
		sc, err := ParseScenario([]byte(tc.in))
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		if _, err := sc.Compile(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Compile() err = %v, want substring %q", tc.name, err, tc.want)
		}
	}

	sc, err := ParseScenario([]byte(chain(
		`[{"edge":"fwd0","kind":"onoff","flows":1000000,"rate_mbps":48,"on_s":6,"off_s":4,"ramp_s":2,"rtt_ms":80}]`)))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sc.Compile()
	if err != nil {
		t.Fatalf("valid background clause rejected: %v", err)
	}
	if len(spec.Background) != 1 {
		t.Fatalf("got %d background entries, want 1", len(spec.Background))
	}
	bs := spec.Background[0]
	if bs.Edge != "fwd0" || bs.Kind != "onoff" || bs.Flows != 1_000_000 ||
		bs.RateMbps != 48 || bs.On != 6*sim.Second || bs.Off != 4*sim.Second ||
		bs.Ramp != 2*sim.Second || bs.RTT != 80*sim.Millisecond {
		t.Fatalf("background clause lowered incorrectly: %+v", bs)
	}
	// And the compiled scenario actually runs with the aggregate live.
	res, _, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Backgrounds) != 1 || res.Backgrounds[0].ServedMB <= 0 {
		t.Fatalf("scenario background never served: %+v", res.Backgrounds)
	}
}

// FuzzScenarioJSON throws arbitrary bytes at the scenario parser and
// compiler: neither may panic, and anything the parser accepts must
// marshal back to JSON the parser accepts again (the round-trip contract
// the example files rely on). The seed corpus (testdata/fuzz) includes
// every example scenario plus malformed fragments.
func FuzzScenarioJSON(f *testing.F) {
	paths, _ := filepath.Glob("../../examples/scenarios/*.json")
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name":"x","links":[{"kind":"rate","rate_mbps":-1}]}`))
	f.Add([]byte(`{"nodes":["a"],"edges":[{"name":"e","from":"a","to":"a","kind":"wire"}]}`))
	f.Add([]byte(`{"flows":[{"scheme":"nope"}]}`))
	f.Add([]byte(`{"links":[{"trace":"NoSuchTrace"}]}`))
	f.Add([]byte(`{"links":[{"rate_mbps":1}],"flows":[{"scheme":"Cubic","source":{"kind":"onoff","on_s":1,"off_s":1}}]}`))
	f.Add([]byte(`{"links":[{"rate_mbps":1}],"flows":[{"scheme":"Cubic","source":{"kind":"warp"}}]}`))
	f.Add([]byte(`{"links":[{"rate_mbps":1}],"flows":[{"scheme":"ABC","app":{"kind":"abr","ladder_kbps":[300]}}]}`))
	f.Add([]byte(`{"links":[{"rate_mbps":1}],"flows":[{"scheme":"ABC","app":{"kind":"rpc","resp_kb":10,"think_ms":50}}]}`))
	f.Add([]byte(`{"links":[{"rate_mbps":1}],"workloads":[{"scheme":"Cubic","per_s":1,"size":{"kind":"fixed","kb":10}}]}`))
	f.Add([]byte(`{"links":[{"rate_mbps":1}],"workloads":[{"scheme":"Cubic","arrival":"deterministic","per_s":-2,"size":{"kind":"pareto","min_kb":1,"max_kb":0}}]}`))
	f.Add([]byte(`{"workloads":[{"scheme":"Cubic","per_s":1,"size":{"kind":"choice","sizes_kb":[1,2],"weights":[1]}}]}`))
	f.Add([]byte(`{"links":[{"rate_mbps":8}],"flows":[{"scheme":"ABC"}],"events":[{"at_s":1,"kind":"link_down","edge":"fwd0"},{"at_s":2,"kind":"link_up","edge":"fwd0"}]}`))
	f.Add([]byte(`{"nodes":["a","b"],"edges":[{"name":"e","from":"a","to":"b","kind":"rate","rate_mbps":8}],"flows":[{"scheme":"ABC","path":["e"]}],"events":[{"at_s":1,"kind":"reroute","flow":0,"ack":true,"path":["e"]}]}`))
	f.Add([]byte(`{"events":[{"at_s":-3,"kind":"teleport","edge":"","rate_mbps":-1}]}`))
	f.Add([]byte(`{"links":[{"rate_mbps":8}],"workloads":[{"scheme":"Cubic","arrival":{"kind":"replay","file":"no-such.csv"}}]}`))
	f.Add([]byte(`{"links":[{"rate_mbps":8}],"workloads":[{"scheme":"Cubic","arrival":{"kind":"replay"},"per_s":1}]}`))
	f.Add([]byte(`{"links":[{"rate_mbps":8}],"flows":[{"scheme":"ABC","app":{"kind":"abr","policy":"rate","history_chunks":3,"safety":0.85}}]}`))
	f.Add([]byte(`{"links":[{"rate_mbps":8}],"flows":[{"scheme":"ABC","app":{"kind":"abr","policy":"warp"}}]}`))
	f.Add([]byte(`{"links":[{"rate_mbps":8}],"flows":[{"scheme":"ABC"}],"sample_ms":-5}`))
	f.Add([]byte(`{"nodes":["a","b"],"edges":[{"name":"e","from":"a","to":"b","kind":"rate","rate_mbps":8}],"flows":[{"scheme":"ABC","path":["e"]}],"routing":{"policy":"kfailover","k":1,"recompute_ms":20,"drain_ms":50,"flows":[0]}}`))
	f.Add([]byte(`{"nodes":["a","b"],"edges":[{"name":"e","from":"a","to":"b","kind":"rate","rate_mbps":8}],"flows":[{"scheme":"ABC","path":["e"]}],"routing":{"policy":"shortest","k":3}}`))
	f.Add([]byte(`{"links":[{"rate_mbps":8}],"flows":[{"scheme":"ABC"}],"routing":{"policy":"rip","recompute_ms":-1,"drain_ms":-1,"flows":[9,9]}}`))
	f.Add([]byte(`{"links":[{"rate_mbps":60}],"flows":[{"scheme":"ABC"}],"background":[{"edge":"fwd0","kind":"const","flows":1000000,"rate_mbps":48,"ramp_s":2}]}`))
	f.Add([]byte(`{"links":[{"rate_mbps":60}],"flows":[{"scheme":"ABC"}],"background":[{"edge":"fwd0","kind":"poisson","rate_mbps":1}]}`))
	f.Add([]byte(`{"links":[{"rate_mbps":60}],"flows":[{"scheme":"ABC"}],"background":[{"edge":"fwd0","kind":"const","rate_mbps":-4}]}`))
	f.Add([]byte(`{"links":[{"rate_mbps":60}],"flows":[{"scheme":"ABC"}],"background":[{"edge":"uplink9","kind":"aimd","flows":100}]}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := ParseScenario(data)
		if err != nil {
			return
		}
		if _, err := sc.Compile(); err != nil {
			return
		}
		out, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("accepted scenario does not marshal: %v", err)
		}
		if _, err := ParseScenario(out); err != nil {
			t.Fatalf("marshal of accepted scenario re-parses with error: %v", err)
		}
	})
}

// TestScenarioSourceClauses covers the explicit source clause: every
// kind compiles to the right cc.Source, and malformed clauses fail with
// a Spec error naming the flow.
func TestScenarioSourceClauses(t *testing.T) {
	compile := func(flow string) (Spec, error) {
		sc, err := ParseScenario([]byte(`{
			"duration_s": 5,
			"links": [{"kind": "rate", "rate_mbps": 10}],
			"flows": [` + flow + `]
		}`))
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		return sc.Compile()
	}

	spec, err := compile(`{"scheme": "Cubic", "source": {"kind": "backlogged"}}`)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Flows[0].Source != nil {
		t.Error("backlogged source should compile to nil (the backlogged default)")
	}

	spec, err = compile(`{"scheme": "Cubic", "source": {"kind": "rate", "mbps": 2}}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := spec.Flows[0].Source.(*cc.RateLimited); !ok {
		t.Errorf("rate source compiled to %T", spec.Flows[0].Source)
	}

	spec, err = compile(`{"scheme": "Cubic", "source": {"kind": "onoff", "on_s": 1, "off_s": 2, "start_s": 3}}`)
	if err != nil {
		t.Fatal(err)
	}
	oo, ok := spec.Flows[0].Source.(*cc.OnOff)
	if !ok {
		t.Fatalf("onoff source compiled to %T", spec.Flows[0].Source)
	}
	if oo.OnFor != sim.Second || oo.OffFor != 2*sim.Second || oo.Start != 3*sim.Second {
		t.Errorf("onoff parameters wrong: %+v", oo)
	}

	spec, err = compile(`{"scheme": "Cubic", "source": {"kind": "fixed", "bytes": 100000}}`)
	if err != nil {
		t.Fatal(err)
	}
	fx, ok := spec.Flows[0].Source.(*cc.Fixed)
	if !ok {
		t.Fatalf("fixed source compiled to %T", spec.Flows[0].Source)
	}
	if fx.Remaining != 100000 {
		t.Errorf("fixed source has %d bytes, want 100000", fx.Remaining)
	}

	bad := []struct{ name, flow string }{
		{"unknown kind", `{"scheme": "Cubic", "source": {"kind": "warp"}}`},
		{"rate without mbps", `{"scheme": "Cubic", "source": {"kind": "rate"}}`},
		{"onoff without on_s", `{"scheme": "Cubic", "source": {"kind": "onoff", "off_s": 1}}`},
		{"fixed without bytes", `{"scheme": "Cubic", "source": {"kind": "fixed"}}`},
		{"backlogged with params", `{"scheme": "Cubic", "source": {"kind": "backlogged", "mbps": 1}}`},
		{"source plus rate_mbps", `{"scheme": "Cubic", "rate_mbps": 1, "source": {"kind": "fixed", "bytes": 1}}`},
		{"app plus source", `{"scheme": "Cubic", "source": {"kind": "fixed", "bytes": 1}, "app": {"kind": "rpc"}}`},
		{"unknown app kind", `{"scheme": "Cubic", "app": {"kind": "quic"}}`},
		{"abr fields on rpc", `{"scheme": "Cubic", "app": {"kind": "rpc", "chunk_s": 2}}`},
		{"rpc fields on abr", `{"scheme": "Cubic", "app": {"kind": "abr", "think_ms": 10}}`},
		{"abr nonpositive ladder rung", `{"scheme": "Cubic", "app": {"kind": "abr", "ladder_kbps": [-300, 100]}}`},
		{"abr non-ascending ladder", `{"scheme": "Cubic", "app": {"kind": "abr", "ladder_kbps": [300, 300]}}`},
		{"rpc negative think_ms", `{"scheme": "Cubic", "app": {"kind": "rpc", "think_ms": -200}}`},
		{"abr negative chunk_s", `{"scheme": "Cubic", "app": {"kind": "abr", "chunk_s": -2}}`},
	}
	for _, tc := range bad {
		if _, err := compile(tc.flow); err == nil {
			t.Errorf("%s: compiled without error", tc.name)
		}
	}
}

// TestScenarioWorkloadClauses covers the workload block: a well-formed
// clause compiles to a WorkloadSpec, malformed clauses fail loudly.
func TestScenarioWorkloadClauses(t *testing.T) {
	compile := func(workload string) (Spec, error) {
		sc, err := ParseScenario([]byte(`{
			"duration_s": 5,
			"links": [{"kind": "rate", "rate_mbps": 10}],
			"flows": [{"scheme": "Cubic"}],
			"workloads": [` + workload + `]
		}`))
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		return sc.Compile()
	}

	spec, err := compile(`{"scheme": "ABC", "class": "web", "per_s": 2,
		"size": {"kind": "pareto", "min_kb": 10, "max_kb": 500, "alpha": 1.3},
		"stop_s": 4, "max_active": 9, "ref_mbps": 8}`)
	if err != nil {
		t.Fatal(err)
	}
	ws := spec.Workloads[0]
	if ws.Scheme != "ABC" || ws.Class != "web" || ws.MaxActive != 9 || ws.RefMbps != 8 {
		t.Errorf("workload fields wrong: %+v", ws)
	}
	if _, ok := ws.Arrival.(app.Poisson); !ok {
		t.Errorf("default arrival compiled to %T, want Poisson", ws.Arrival)
	}
	if bp, ok := ws.Sizes.(app.BoundedPareto); !ok || bp.Alpha != 1.3 {
		t.Errorf("pareto size compiled to %#v", ws.Sizes)
	}

	// Absent alpha resolves to the documented 1.2 default at compile
	// time, never silently at draw time.
	spec2, err := compile(`{"scheme": "Cubic", "per_s": 1,
		"size": {"kind": "pareto", "min_kb": 1, "max_kb": 10}}`)
	if err != nil {
		t.Fatal(err)
	}
	if bp := spec2.Workloads[0].Sizes.(app.BoundedPareto); bp.Alpha != 1.2 {
		t.Errorf("absent alpha compiled to %v, want the 1.2 default", bp.Alpha)
	}

	spec, err = compile(`{"scheme": "Cubic", "arrival": "deterministic", "per_s": 4,
		"size": {"kind": "choice", "sizes_kb": [10, 100], "weights": [3, 1]}}`)
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := spec.Workloads[0].Arrival.(app.Deterministic); !ok || d.Gap != 250*sim.Millisecond {
		t.Errorf("deterministic arrival compiled to %#v", spec.Workloads[0].Arrival)
	}

	bad := []struct{ name, workload string }{
		{"unknown scheme", `{"scheme": "nope", "per_s": 1, "size": {"kind": "fixed", "kb": 1}}`},
		{"missing per_s", `{"scheme": "Cubic", "size": {"kind": "fixed", "kb": 1}}`},
		{"unknown arrival", `{"scheme": "Cubic", "arrival": "bursty", "per_s": 1, "size": {"kind": "fixed", "kb": 1}}`},
		{"unknown size kind", `{"scheme": "Cubic", "per_s": 1, "size": {"kind": "zipf"}}`},
		{"fixed size without kb", `{"scheme": "Cubic", "per_s": 1, "size": {"kind": "fixed"}}`},
		{"pareto bad range", `{"scheme": "Cubic", "per_s": 1, "size": {"kind": "pareto", "min_kb": 10, "max_kb": 5}}`},
		{"pareto negative alpha", `{"scheme": "Cubic", "per_s": 1, "size": {"kind": "pareto", "min_kb": 1, "max_kb": 10, "alpha": -1.2}}`},
		{"choice weight mismatch", `{"scheme": "Cubic", "per_s": 1, "size": {"kind": "choice", "sizes_kb": [1, 2], "weights": [1]}}`},
		{"choice negative weight", `{"scheme": "Cubic", "per_s": 1, "size": {"kind": "choice", "sizes_kb": [1, 2], "weights": [3, -1]}}`},
		{"choice zero-sum weights", `{"scheme": "Cubic", "per_s": 1, "size": {"kind": "choice", "sizes_kb": [1, 2], "weights": [0, 0]}}`},
		{"choice nonpositive size", `{"scheme": "Cubic", "per_s": 1, "size": {"kind": "choice", "sizes_kb": [0]}}`},
		{"unknown dir", `{"scheme": "Cubic", "per_s": 1, "dir": "sideways", "size": {"kind": "fixed", "kb": 1}}`},
		{"mesh path on chain", `{"scheme": "Cubic", "per_s": 1, "path": ["x"], "size": {"kind": "fixed", "kb": 1}}`},
	}
	for _, tc := range bad {
		// Some routing errors surface at Run (the chain/mesh compilers own
		// route validation, as for flows); both layers count as rejection.
		spec, err := compile(tc.workload)
		if err == nil {
			_, _, err = Run(spec)
		}
		if err == nil {
			t.Errorf("%s: compiled and ran without error", tc.name)
		}
	}
}

// TestScenarioEventClauses covers the events block: shape errors are
// compile errors, deep errors (unknown edges, malformed routes) surface
// from Run, and a well-formed timeline executes.
func TestScenarioEventClauses(t *testing.T) {
	compileRun := func(events string) error {
		sc, err := ParseScenario([]byte(`{
			"seed": 1, "duration_s": 2,
			"nodes": ["a", "b"],
			"edges": [
				{"name": "e1", "from": "a", "to": "b", "kind": "rate", "rate_mbps": 8,
				 "qdisc": {"kind": "droptail"}, "delay_ms": 2},
				{"name": "e2", "from": "a", "to": "b", "kind": "wire", "delay_ms": 5}
			],
			"flows": [{"scheme": "Cubic", "path": ["e1"]}],
			"events": [` + events + `]
		}`))
		if err != nil {
			return err
		}
		spec, err := sc.Compile()
		if err != nil {
			return err
		}
		_, _, err = Run(spec)
		return err
	}
	good := `{"at_s": 0.5, "kind": "set_rate", "edge": "e1", "rate_mbps": 4},
		{"at_s": 0.7, "kind": "set_delay", "edge": "e1", "delay_ms": 10},
		{"at_s": 0.9, "kind": "link_down", "edge": "e1"},
		{"at_s": 1.0, "kind": "link_up", "edge": "e1"},
		{"at_s": 1.2, "kind": "reroute", "flow": 0, "path": ["e2"]}`
	if err := compileRun(good); err != nil {
		t.Fatalf("well-formed timeline failed: %v", err)
	}
	bad := []struct{ name, in string }{
		{"unknown kind", `{"at_s": 1, "kind": "teleport"}`},
		{"negative time", `{"at_s": -1, "kind": "link_up", "edge": "e1"}`},
		{"unknown edge", `{"at_s": 1, "kind": "link_down", "edge": "zz"}`},
		{"unknown path edge", `{"at_s": 1, "kind": "reroute", "flow": 0, "path": ["zz"]}`},
		{"set_rate on wire", `{"at_s": 1, "kind": "set_rate", "edge": "e2", "rate_mbps": 2}`},
		{"reroute bad flow", `{"at_s": 1, "kind": "reroute", "flow": 5, "path": ["e2"]}`},
	}
	for _, tc := range bad {
		if err := compileRun(tc.in); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestScenarioReplayWorkload: the replay arrival clause spawns exactly
// the logged flows with the logged sizes.
func TestScenarioReplayWorkload(t *testing.T) {
	dir := t.TempDir()
	log := filepath.Join(dir, "arrivals.csv")
	entries := []struct {
		atS   float64
		bytes int
	}{{0.2, 30000}, {0.9, 4500}, {1.7, 120000}, {2.4, 1500}}
	var sb strings.Builder
	for _, e := range entries {
		fmt.Fprintf(&sb, "%.3f,%d\n", e.atS, e.bytes)
	}
	if err := os.WriteFile(log, []byte(sb.String()), 0644); err != nil {
		t.Fatal(err)
	}
	sc, err := ParseScenario([]byte(`{
		"seed": 1, "duration_s": 10, "warmup_s": 0.001,
		"links": [{"kind": "rate", "rate_mbps": 20}],
		"workloads": [{"scheme": "Cubic",
			"arrival": {"kind": "replay", "file": "` + log + `"}}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	w := &res.Workloads[0]
	if w.Spawned != len(entries) || w.Completed != len(entries) {
		t.Fatalf("spawned %d / completed %d, want %d", w.Spawned, w.Completed, len(entries))
	}
	// Deliveries are MTU-quantized: each logged size rounds up to whole
	// packets, and nothing else may arrive.
	var want int64
	for _, e := range entries {
		want += int64((e.bytes + packet.MTU - 1) / packet.MTU * packet.MTU)
	}
	if w.Bytes != want {
		t.Fatalf("delivered %d bytes, want %d (MTU-rounded log sizes)", w.Bytes, want)
	}

	bad := []struct{ name, workload string }{
		{"replay with per_s", `{"scheme": "Cubic", "per_s": 2, "arrival": {"kind": "replay", "file": "` + log + `"}}`},
		{"replay with size", `{"scheme": "Cubic", "arrival": {"kind": "replay", "file": "` + log + `"},
			"size": {"kind": "fixed", "kb": 1}}`},
		{"replay without file", `{"scheme": "Cubic", "arrival": {"kind": "replay"}}`},
		{"file on poisson", `{"scheme": "Cubic", "per_s": 1, "arrival": {"kind": "poisson", "file": "x"},
			"size": {"kind": "fixed", "kb": 1}}`},
		{"missing log", `{"scheme": "Cubic", "arrival": {"kind": "replay", "file": "` + log + `.nope"}}`},
	}
	for _, tc := range bad {
		sc, err := ParseScenario([]byte(`{
			"duration_s": 5,
			"links": [{"kind": "rate", "rate_mbps": 10}],
			"workloads": [` + tc.workload + `]
		}`))
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		if _, err := sc.Compile(); err == nil {
			t.Errorf("%s: compiled without error", tc.name)
		}
	}
}

// TestScenarioABRPolicyClause: the abr policy fields compile through to
// the app config and malformed combinations fail.
func TestScenarioABRPolicyClause(t *testing.T) {
	compile := func(app string) (Spec, error) {
		sc, err := ParseScenario([]byte(`{
			"duration_s": 5,
			"links": [{"kind": "rate", "rate_mbps": 10}],
			"flows": [{"scheme": "ABC", "app": ` + app + `}]
		}`))
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		return sc.Compile()
	}
	spec, err := compile(`{"kind": "abr", "policy": "rate", "history_chunks": 8, "safety": 0.8}`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := spec.Flows[0].App.ABR
	if cfg.Policy != "rate" || cfg.HistoryChunks != 8 || cfg.SafetyFactor != 0.8 {
		t.Fatalf("abr config = %+v", cfg)
	}
	bad := []struct{ name, app string }{
		{"unknown policy", `{"kind": "abr", "policy": "oracle"}`},
		{"history on buffer policy", `{"kind": "abr", "history_chunks": 4}`},
		{"policy on rpc", `{"kind": "rpc", "policy": "rate"}`},
		{"negative safety", `{"kind": "abr", "policy": "rate", "safety": -1}`},
	}
	for _, tc := range bad {
		if _, err := compile(tc.app); err == nil {
			t.Errorf("%s: compiled without error", tc.name)
		}
	}
}

// TestScenarioWorkloadRuns: a declarative scenario with a workload block
// runs end to end and reports completions.
func TestScenarioWorkloadRuns(t *testing.T) {
	sc, err := ParseScenario([]byte(`{
		"seed": 1, "duration_s": 10, "warmup_s": 1,
		"links": [{"kind": "rate", "rate_mbps": 10}],
		"workloads": [{"scheme": "Cubic", "arrival": "deterministic", "per_s": 1,
			"size": {"kind": "fixed", "kb": 50}}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workloads[0].Completed == 0 {
		t.Error("declarative workload completed no flows")
	}
}
