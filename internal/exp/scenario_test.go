package exp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestScenarioRejectsUnknownKeys: a typo'd field name must fail loudly,
// never silently leave a default in place.
func TestScenarioRejectsUnknownKeys(t *testing.T) {
	cases := []string{
		`{"name":"x","durations_s":10}`,
		`{"links":[{"kind":"rate","rate_mbp":8}]}`,
		`{"edges":[{"name":"e","form":"a","to":"b"}]}`,
		`{"flows":[{"scheme":"ABC","paths":["e"]}]}`,
	}
	for _, c := range cases {
		if _, err := ParseScenario([]byte(c)); err == nil ||
			!strings.Contains(err.Error(), "unknown field") {
			t.Errorf("ParseScenario(%s) = %v, want unknown-field error", c, err)
		}
	}
}

// TestScenarioFilesRoundTrip: every example scenario must survive a
// parse → marshal → parse cycle structurally unchanged and still compile
// to the same Spec shape — the declarative files are the stable contract
// the fuzz corpus seeds from.
func TestScenarioFilesRoundTrip(t *testing.T) {
	paths, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example scenarios found: %v", err)
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := ParseScenario(data)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("%s: marshal: %v", path, err)
		}
		sc2, err := ParseScenario(out)
		if err != nil {
			t.Fatalf("%s: re-parse of own marshal: %v", path, err)
		}
		if !reflect.DeepEqual(sc, sc2) {
			t.Errorf("%s: round trip changed the scenario:\n%+v\n%+v", path, sc, sc2)
		}
		if _, err := sc2.Compile(); err != nil {
			t.Errorf("%s: round-tripped scenario no longer compiles: %v", path, err)
		}
	}
}

// TestScenarioMeshFieldValidation covers the mesh-specific compile
// errors: mixing chain routing fields with mesh paths is rejected at the
// scenario layer, and wire edges cannot carry bottleneck configuration.
func TestScenarioMeshFieldValidation(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"path with dir",
			`{"nodes":["a","b"],"edges":[{"name":"e","from":"a","to":"b","kind":"rate","rate_mbps":8}],
			  "flows":[{"scheme":"ABC","path":["e"],"dir":"reverse"}]}`,
			"chain fields"},
		{"path with enter_at",
			`{"nodes":["a","b"],"edges":[{"name":"e","from":"a","to":"b","kind":"rate","rate_mbps":8}],
			  "flows":[{"scheme":"ABC","path":["e"],"enter_at":1}]}`,
			"chain fields"},
		{"wire with rate",
			`{"nodes":["a","b"],"edges":[{"name":"e","from":"a","to":"b","kind":"wire","rate_mbps":8}],
			  "flows":[{"scheme":"ABC","path":["e"]}]}`,
			"no bottleneck"},
		{"wire with qdisc",
			`{"nodes":["a","b"],"edges":[{"name":"e","from":"a","to":"b","kind":"wire","qdisc":{"kind":"droptail"}}],
			  "flows":[{"scheme":"ABC","path":["e"]}]}`,
			"no qdisc"},
		{"wire on chain link",
			`{"links":[{"kind":"wire","delay_ms":5}],"flows":[{"scheme":"ABC"}]}`,
			"mesh edge kind"},
	}
	for _, tc := range cases {
		sc, err := ParseScenario([]byte(tc.in))
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		if _, err := sc.Compile(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Compile() err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// FuzzScenarioJSON throws arbitrary bytes at the scenario parser and
// compiler: neither may panic, and anything the parser accepts must
// marshal back to JSON the parser accepts again (the round-trip contract
// the example files rely on). The seed corpus (testdata/fuzz) includes
// every example scenario plus malformed fragments.
func FuzzScenarioJSON(f *testing.F) {
	paths, _ := filepath.Glob("../../examples/scenarios/*.json")
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name":"x","links":[{"kind":"rate","rate_mbps":-1}]}`))
	f.Add([]byte(`{"nodes":["a"],"edges":[{"name":"e","from":"a","to":"a","kind":"wire"}]}`))
	f.Add([]byte(`{"flows":[{"scheme":"nope"}]}`))
	f.Add([]byte(`{"links":[{"trace":"NoSuchTrace"}]}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := ParseScenario(data)
		if err != nil {
			return
		}
		if _, err := sc.Compile(); err != nil {
			return
		}
		out, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("accepted scenario does not marshal: %v", err)
		}
		if _, err := ParseScenario(out); err != nil {
			t.Fatalf("marshal of accepted scenario re-parses with error: %v", err)
		}
	})
}
