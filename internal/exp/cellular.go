// Shared cellular runners: Fig. 1 time series, Fig. 2 feedback-mode
// ablation, Fig. 8 scatter plots, Fig. 9/15/16 bars, Table 1, Fig. 18 RTT
// sweep, §6.6 PK-ABC and Fig. 13 application-limited flows.
package exp

import (
	"fmt"
	"sort"

	"abc/internal/abc"
	"abc/internal/cc"
	"abc/internal/metrics"
	"abc/internal/sim"
	"abc/internal/trace"
)

// RunSingle runs one backlogged flow of the scheme over the trace and
// returns the paper's summary metrics.
func RunSingle(scheme string, tr *trace.Trace, rtt, dur sim.Time, seed int64) (metrics.Summary, error) {
	res, pooled, err := Run(Spec{
		Seed:     seed,
		Duration: dur,
		RTT:      rtt,
		Links:    []LinkSpec{{Trace: tr}},
		Flows:    []FlowSpec{{Scheme: scheme}},
	})
	if err != nil {
		return metrics.Summary{}, err
	}
	return res.Summary(scheme, pooled), nil
}

// TimeseriesRun is one scheme's Fig.-1-style trajectory.
type TimeseriesRun struct {
	Scheme  string
	Tput    *metrics.Timeseries // Mbit/s, per sample period
	QDelay  *metrics.Timeseries // bottleneck standing queue delay, ms
	Summary metrics.Summary
}

// LTETrace returns the emulated LTE link used by Fig. 1: a volatile
// cellular trace whose capacity both collapses and surges within seconds.
func LTETrace() *trace.Trace {
	return trace.Cellular("LTE", trace.CellParams{
		Seed: 7, Duration: 30 * sim.Second, MeanMbps: 8,
		Sigma: 0.3, MinMbps: 0.6, MaxMbps: 16, OutageProb: 0.02,
	})
}

// Fig1Timeseries reproduces Fig. 1: Cubic, Verus, Cubic+CoDel and ABC on
// an emulated LTE link (RTT 100 ms, 250-packet buffer), reporting
// throughput and queuing-delay trajectories.
func Fig1Timeseries(seed int64) ([]TimeseriesRun, error) {
	tr := LTETrace()
	schemes := []string{"Cubic", "Verus", "Cubic+Codel", "ABC"}
	out := make([]TimeseriesRun, len(schemes))
	err := forEachCell(len(schemes), func(i int) string {
		return fmt.Sprintf("fig1 trace=LTE scheme=%s seed=%d", schemes[i], seed)
	}, func(i int) error {
		sch := schemes[i]
		res, pooled, err := Run(Spec{
			Seed:     seed,
			Duration: 30 * sim.Second,
			Warmup:   2 * sim.Second,
			RTT:      100 * sim.Millisecond,
			Links:    []LinkSpec{{Trace: tr}},
			Flows:    []FlowSpec{{Scheme: sch}},
			Sample:   200 * sim.Millisecond,
		})
		if err != nil {
			return err
		}
		out[i] = TimeseriesRun{
			Scheme:  sch,
			Tput:    res.Flows[0].Tput,
			QDelay:  res.QueueDelayTS,
			Summary: res.Summary(sch, pooled),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig2Result compares ABC's dequeue-rate feedback with the enqueue-rate
// ablation.
type Fig2Result struct {
	Dequeue, Enqueue metrics.Summary
	// QDelayP95Dequeue/Enqueue are 95th-percentile accumulated queuing
	// delays (the figure's y-axis).
	QDelayP95Dequeue float64
	QDelayP95Enqueue float64
}

// Fig2FeedbackMode reproduces Fig. 2: computing f(t) from the enqueue
// rate roughly doubles 95th-percentile queuing delay versus ABC's
// dequeue-rate rule.
func Fig2FeedbackMode(seed int64) (*Fig2Result, error) {
	tr := trace.Cellular("fig2", trace.CellParams{
		Seed: 42, Duration: 60 * sim.Second, MeanMbps: 10, Sigma: 0.25,
	})
	run := func(mode abc.FeedbackMode) (metrics.Summary, float64, error) {
		res, pooled, err := Run(Spec{
			Seed:     seed,
			Duration: 60 * sim.Second,
			RTT:      100 * sim.Millisecond,
			Links: []LinkSpec{{
				Trace: tr,
				Qdisc: QdiscSpec{Kind: "abc", ABCFeedback: mode},
			}},
			Flows: []FlowSpec{{Scheme: "ABC"}},
		})
		if err != nil {
			return metrics.Summary{}, 0, err
		}
		return res.Summary("ABC", pooled), res.Flows[0].QDelay.P95(), nil
	}
	deq, dq95, err := run(abc.DequeueRate)
	if err != nil {
		return nil, err
	}
	enq, eq95, err := run(abc.EnqueueRate)
	if err != nil {
		return nil, err
	}
	return &Fig2Result{Dequeue: deq, Enqueue: enq, QDelayP95Dequeue: dq95, QDelayP95Enqueue: eq95}, nil
}

// ScatterKind selects the Fig. 8 sub-figure.
type ScatterKind int

const (
	// Downlink is Fig. 8a.
	Downlink ScatterKind = iota
	// Uplink is Fig. 8b.
	Uplink
	// UplinkDownlink is Fig. 8c: the two-hop smartphone-to-smartphone
	// path with two cellular bottlenecks.
	UplinkDownlink
)

// Fig8Scatter reproduces Fig. 8: every scheme's (p95 delay, utilization)
// on Verizon-like traces, optionally across two cellular hops.
func Fig8Scatter(kind ScatterKind, schemes []string, dur sim.Time, seed int64) ([]metrics.Summary, error) {
	if len(schemes) == 0 {
		schemes = Schemes
	}
	down := trace.MustNamedCellular("Verizon1")
	up := trace.MustNamedCellular("Verizon2")
	var links []LinkSpec
	switch kind {
	case Downlink:
		links = []LinkSpec{{Trace: down}}
	case Uplink:
		links = []LinkSpec{{Trace: up}}
	case UplinkDownlink:
		links = []LinkSpec{{Trace: up}, {Trace: down}}
	}
	out := make([]metrics.Summary, len(schemes))
	err := forEachCell(len(schemes), func(i int) string {
		return fmt.Sprintf("fig8 kind=%d scheme=%s seed=%d", kind, schemes[i], seed)
	}, func(i int) error {
		sch := schemes[i]
		ls := make([]LinkSpec, len(links))
		copy(ls, links)
		res, pooled, err := Run(Spec{
			Seed: seed, Duration: dur, RTT: 100 * sim.Millisecond,
			Links: ls, Flows: []FlowSpec{{Scheme: sch}},
		})
		if err != nil {
			return err
		}
		out[i] = res.Summary(sch, pooled)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BarsResult holds Fig. 9/15/16 data: per-trace, per-scheme summaries.
type BarsResult struct {
	Traces  []string
	Schemes []string
	// Cells[traceName][scheme] is that run's summary.
	Cells map[string]map[string]metrics.Summary
}

// Average returns the cross-trace mean utilization, mean delay and p95
// delay for a scheme.
func (b *BarsResult) Average(scheme string) (util, meanMs, p95Ms float64) {
	var n float64
	for _, tr := range b.Traces {
		s, ok := b.Cells[tr][scheme]
		if !ok {
			continue
		}
		util += s.Utilization
		meanMs += s.MeanMs
		p95Ms += s.P95Ms
		n++
	}
	if n == 0 {
		return 0, 0, 0
	}
	return util / n, meanMs / n, p95Ms / n
}

// Fig9Bars reproduces Fig. 9 (and feeds Fig. 15, Fig. 16 and Table 1):
// every scheme on the eight-trace cellular corpus. The (trace, scheme)
// cells are independent simulations and fan out across the worker pool;
// results are byte-identical to a sequential sweep.
func Fig9Bars(schemes, traces []string, dur sim.Time, seed int64) (*BarsResult, error) {
	if len(schemes) == 0 {
		schemes = Schemes
	}
	if len(traces) == 0 {
		traces = trace.CellularNames
	}
	res := &BarsResult{
		Traces:  traces,
		Schemes: schemes,
		Cells:   make(map[string]map[string]metrics.Summary),
	}
	// Parse traces up front (shared immutable inputs for all cells).
	trs := make([]*trace.Trace, len(traces))
	for i, trName := range traces {
		tr, err := trace.NamedCellular(trName)
		if err != nil {
			return nil, err
		}
		trs[i] = tr
	}
	sums := make([]metrics.Summary, len(traces)*len(schemes))
	err := forEachCell(len(sums), func(i int) string {
		ti, si := i/len(schemes), i%len(schemes)
		return fmt.Sprintf("bars trace=%s scheme=%s seed=%d", traces[ti], schemes[si], seed)
	}, func(i int) error {
		ti, si := i/len(schemes), i%len(schemes)
		s, err := RunSingle(schemes[si], trs[ti], 100*sim.Millisecond, dur, seed)
		sums[i] = s
		return err
	})
	if err != nil {
		return nil, err
	}
	for ti, trName := range traces {
		res.Cells[trName] = make(map[string]metrics.Summary, len(schemes))
		for si, sch := range schemes {
			res.Cells[trName][sch] = sums[ti*len(schemes)+si]
		}
	}
	return res, nil
}

// Table1Row is one line of the paper's §1 summary table.
type Table1Row struct {
	Scheme    string
	NormTput  float64
	NormDelay float64 // 95th percentile, normalized to ABC
}

// SummaryTable reproduces Table 1: throughput and p95 delay normalized to
// ABC, averaged over the cellular corpus.
func SummaryTable(bars *BarsResult) []Table1Row {
	abcUtil, _, abcP95 := bars.Average("ABC")
	rows := make([]Table1Row, 0, len(bars.Schemes))
	for _, sch := range bars.Schemes {
		u, _, p := bars.Average(sch)
		row := Table1Row{Scheme: sch}
		if abcUtil > 0 {
			row.NormTput = u / abcUtil
		}
		if abcP95 > 0 {
			row.NormDelay = p / abcP95
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig18RTTSweep reproduces Fig. 18: each scheme across propagation RTTs
// of 20/50/100/200 ms on a Verizon-like trace. Keyed [rttMs][scheme].
func Fig18RTTSweep(schemes []string, dur sim.Time, seed int64) (map[int]map[string]metrics.Summary, error) {
	if len(schemes) == 0 {
		schemes = Schemes
	}
	tr := trace.MustNamedCellular("Verizon1")
	rtts := []int{20, 50, 100, 200}
	sums := make([]metrics.Summary, len(rtts)*len(schemes))
	err := forEachCell(len(sums), func(i int) string {
		ri, si := i/len(schemes), i%len(schemes)
		return fmt.Sprintf("fig18 rtt=%dms scheme=%s seed=%d", rtts[ri], schemes[si], seed)
	}, func(i int) error {
		ri, si := i/len(schemes), i%len(schemes)
		rtt := sim.Time(rtts[ri]) * sim.Millisecond
		sch := schemes[si]
		link := LinkSpec{Trace: tr}
		if sch == "ABC" {
			// Theorem 3.1 requires δ > (2/3)τ; scale δ with the
			// propagation RTT as the paper's 133 ms = 1.33 × 100 ms.
			cfg := abc.DefaultRouterConfig()
			if d := sim.Time(float64(rtt) * 1.33); d > cfg.Delta {
				cfg.Delta = d
			}
			link.Qdisc = QdiscSpec{Kind: "abc", ABCConfig: &cfg}
		}
		res, pooled, err := Run(Spec{
			Seed: seed, Duration: dur, RTT: rtt,
			Links: []LinkSpec{link},
			Flows: []FlowSpec{{Scheme: sch}},
		})
		if err != nil {
			return err
		}
		sums[i] = res.Summary(sch, pooled)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[int]map[string]metrics.Summary, len(rtts))
	for ri, rttMs := range rtts {
		out[rttMs] = make(map[string]metrics.Summary, len(schemes))
		for si, sch := range schemes {
			out[rttMs][sch] = sums[ri*len(schemes)+si]
		}
	}
	return out, nil
}

// PKABCResult compares standard ABC with the perfect-knowledge oracle.
type PKABCResult struct {
	ABC, PK metrics.Summary
	// QDelayP95* isolate queuing delay, the §6.6 metric.
	QDelayP95ABC, QDelayP95PK float64
}

// PKABC reproduces §6.6's perfect-future-knowledge experiment: PK-ABC
// uses the link rate one RTT in the future and sharply cuts p95 delay at
// equal utilization.
func PKABC(dur sim.Time, seed int64) (*PKABCResult, error) {
	tr := trace.MustNamedCellular("Verizon2")
	run := func(lookahead sim.Time) (metrics.Summary, float64, error) {
		res, pooled, err := Run(Spec{
			Seed: seed, Duration: dur, RTT: 100 * sim.Millisecond,
			Links: []LinkSpec{{Trace: tr, Lookahead: lookahead}},
			Flows: []FlowSpec{{Scheme: "ABC"}},
		})
		if err != nil {
			return metrics.Summary{}, 0, err
		}
		return res.Summary("ABC", pooled), res.Flows[0].QDelay.P95(), nil
	}
	std, stdQ, err := run(0)
	if err != nil {
		return nil, err
	}
	pk, pkQ, err := run(100 * sim.Millisecond)
	if err != nil {
		return nil, err
	}
	return &PKABCResult{ABC: std, PK: pk, QDelayP95ABC: stdQ, QDelayP95PK: pkQ}, nil
}

// Fig13Result reports the application-limited-flows experiment.
type Fig13Result struct {
	Utilization float64
	QDelayP95   float64
	// BackloggedTput and AppLimitedTput split throughput between the one
	// backlogged flow and the app-limited aggregate.
	BackloggedTputMbps float64
	AppLimitedTputMbps float64
}

// Fig13AppLimited reproduces Fig. 13: one backlogged ABC flow shares an
// ABC cellular bottleneck with n application-limited ABC flows sending
// aggAppMbps in aggregate; everyone keeps low delay and the link stays
// utilized.
func Fig13AppLimited(n int, aggAppMbps float64, dur sim.Time, seed int64) (*Fig13Result, error) {
	tr := trace.MustNamedCellular("Verizon3")
	flows := make([]FlowSpec, 0, n+1)
	flows = append(flows, FlowSpec{Scheme: "ABC"}) // backlogged
	per := aggAppMbps * 1e6 / float64(n)
	for i := 0; i < n; i++ {
		flows = append(flows, FlowSpec{Scheme: "ABC", Source: cc.NewRateLimited(per)})
	}
	res, _, err := Run(Spec{
		Seed: seed, Duration: dur, RTT: 100 * sim.Millisecond,
		Links: []LinkSpec{{Trace: tr}},
		Flows: flows,
	})
	if err != nil {
		return nil, err
	}
	out := &Fig13Result{Utilization: res.Utilization}
	qd := metrics.DelayRecorder{}
	for i := range res.Flows {
		f := &res.Flows[i]
		if i == 0 {
			out.BackloggedTputMbps = f.TputMbps
		} else {
			out.AppLimitedTputMbps += f.TputMbps
		}
		qd.Add(sim.FromSeconds(f.QDelay.P95() / 1000))
	}
	out.QDelayP95 = res.Flows[0].QDelay.P95()
	return out, nil
}

// FormatSummaries renders summaries sorted by scheme order for reports.
func FormatSummaries(sums []metrics.Summary) string {
	s := ""
	sorted := make([]metrics.Summary, len(sums))
	copy(sorted, sums)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Scheme < sorted[j].Scheme })
	for _, x := range sorted {
		s += fmt.Sprintln(x)
	}
	return s
}
