// Bounded worker pool for the multi-run figure drivers. Every (trace,
// scheme, seed) cell of a figure owns its own sim.Simulator, RNG and
// metric recorders, and reads only immutable shared state (parsed
// traces), so independent cells can run on separate cores with results
// byte-identical to a sequential sweep.
package exp

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"abc/internal/obs"
)

// Parallelism bounds the number of experiment cells running concurrently
// in the multi-run figure drivers (Fig. 1/8/9/10/12/17/18, Table 1).
// Zero, the default, means one worker per available CPU. Set to 1 to
// force sequential execution (useful when bisecting or profiling a
// single cell).
//
// Determinism contract: each cell is a pure function of its spec — the
// pool only changes *when* cells run, never what they compute — so for a
// fixed seed the driver output is byte-identical at any parallelism
// level. A regression test asserts this.
var Parallelism int

// workers resolves the worker count for n independent cells.
func workers(n int) int {
	w := Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forEach runs fn(i) for every i in [0, n) across the worker pool and
// returns the lowest-index error (so error reporting is deterministic
// too). fn must write its result into a caller-provided slot indexed by
// i and must not touch other slots. Drivers that can name their cells
// should use forEachCell so failures carry the cell's identity.
func forEach(n int, fn func(i int) error) error { return forEachCell(n, nil, fn) }

// forEachCell is forEach with a cell-naming hook: label(i) renders cell
// i's sweep coordinates ("trace=Verizon scheme=abc seed=42") into every
// error and panic report, so a failure inside a 300-cell fan-out is
// attributable without re-running the sweep sequentially. A panicking
// cell no longer kills the process: the panic is converted into that
// cell's error (with its stack) and the remaining cells complete. When
// live metrics are enabled, the obs cell counters
// (obs.MetricCellsTotal/Done/Failed) track sweep progress for the
// /metrics endpoint and the progress line.
func forEachCell(n int, label func(i int) string, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	reg := metReg.Load()
	if reg != nil {
		reg.Counter(obs.MetricCellsTotal).Add(int64(n))
	}
	run := func(i int) (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("cell panicked: %v\n%s", p, debug.Stack())
			}
			if err != nil && label != nil {
				err = fmt.Errorf("cell %s: %w", label(i), err)
			}
			if reg != nil {
				reg.Counter(obs.MetricCellsDone).Inc()
				if err != nil {
					reg.Counter(obs.MetricCellsFailed).Inc()
				}
			}
		}()
		return fn(i)
	}
	if w := workers(n); w > 1 {
		var next atomic.Int64
		errs := make([]error, n)
		var wg sync.WaitGroup
		wg.Add(w)
		for k := 0; k < w; k++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					errs[i] = run(i)
				}
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < n; i++ {
		if err := run(i); err != nil {
			return err
		}
	}
	return nil
}
