// Application workloads over the scenario harness: open-loop flow
// arrival processes that spawn finite flows mid-run (Spec.Workloads) and
// closed-loop applications bound to declared flows (FlowSpec.App). Both
// ride the same topology graph and registries as static flows, so any
// registered scheme can carry them, and all randomness (arrival gaps,
// flow sizes, think times) comes from the simulation RNG — a seeded run
// replays the exact same workload.
package exp

import (
	"fmt"

	"abc/internal/app"
	"abc/internal/cc"
	"abc/internal/metrics"
	"abc/internal/netem"
	"abc/internal/packet"
	"abc/internal/sim"
	"abc/internal/topo"
)

// WorkloadSpec describes one open-loop arrival process: flows of Scheme
// arrive with Arrival-drawn gaps, carry Sizes-drawn bytes, complete, and
// report flow-completion times. Routing uses the same fields as a
// FlowSpec (Dir/EnterAt/ExitAt on chains, Path/AckPath on meshes).
type WorkloadSpec struct {
	Scheme string
	// Class labels the workload in results (default "w<index>").
	Class string
	// Arrival draws inter-arrival gaps (required).
	Arrival app.Arrival
	// Sizes draws per-flow transfer sizes in bytes (required).
	Sizes app.SizeDist
	// Start/Stop bound the arrival process; Stop 0 means Duration.
	Start, Stop sim.Time
	// Chain routing, exactly as on FlowSpec.
	Dir             Direction
	EnterAt, ExitAt int
	// Mesh routing, exactly as on FlowSpec.
	Path, AckPath []string
	// RTT overrides Spec.RTT for spawned flows.
	RTT sim.Time
	// MaxActive caps concurrently active spawned flows; arrivals beyond
	// the cap are rejected and counted (default 1024). The cap bounds
	// the *live* simulation load under overload (endpoints sending,
	// housekeeping timers, queue occupancy) where an open-loop process
	// outpaces the link indefinitely; per-flow route entries on the
	// graph persist for the run, so total footprint still grows with
	// Spawned, just without unbounded concurrent work.
	MaxActive int
	// RefMbps, when > 0, additionally reports each FCT as a slowdown
	// against an ideal same-size transfer at this rate plus one RTT.
	RefMbps float64
}

// WorkloadResult reports one workload's completion metrics. Only flows
// arriving at or after Warmup feed the recorders; Bytes likewise counts
// post-warmup deliveries.
type WorkloadResult struct {
	Class string
	// Spawned/Completed/Rejected/Active count flows over the whole run:
	// Active is what was still in flight when the run ended, Rejected
	// what the MaxActive cap refused.
	Spawned, Completed, Rejected, Active int
	Bytes                                int64
	// FCT holds completion times (ms); Slowdown the RefMbps-normalized
	// ratios; QDelay per-packet accumulated queueing delay (ms).
	FCT, Slowdown, QDelay metrics.DelayRecorder
}

// Stats condenses the result for reports.
func (w *WorkloadResult) Stats() metrics.FCTStats {
	return metrics.NewFCTStats(w.Class, &w.FCT, &w.Slowdown, w.Bytes)
}

// AppSpec attaches a closed-loop application to a FlowSpec: the app
// drives the flow's source and reacts to transfer completions. Mutually
// exclusive with FlowSpec.Source.
type AppSpec struct {
	// Kind selects the application: "abr" (video client) or "rpc"
	// (request-response client).
	Kind string
	ABR  app.ABRConfig
	RPC  app.RPCConfig
}

// appTransport adapts one endpoint + fixed source pair to app.Transport.
// The single-owner rule for app-driven flows: the application is the
// only writer of src.Remaining, and the endpoint the only reader, so a
// transfer's byte count never races its completion callback.
type appTransport struct {
	ep  *cc.Endpoint
	src *cc.Fixed
}

// Queue implements app.Transport.
func (t *appTransport) Queue(n int) {
	t.src.Remaining += n
	t.ep.BeginTransfer()
}

// buildApp wires an application onto a flow's endpoint. The returned app
// still needs Start scheduled at the flow's start time.
func buildApp(s *sim.Simulator, ep *cc.Endpoint, as *AppSpec, warmup sim.Time) (app.App, error) {
	src := &cc.Fixed{}
	ep.Src = src
	tr := &appTransport{ep: ep, src: src}
	var a app.App
	switch as.Kind {
	case "abr":
		switch as.ABR.Policy {
		case "", app.PolicyBuffer, app.PolicyRate:
		default:
			return nil, fmt.Errorf("exp: unknown abr policy %q (want buffer or rate)", as.ABR.Policy)
		}
		a = app.NewABR(s, tr, as.ABR)
	case "rpc":
		cfg := as.RPC
		if cfg.MeasureFrom == 0 {
			cfg.MeasureFrom = warmup
		}
		a = app.NewRPC(s, tr, cfg, s.Rand())
	default:
		return nil, fmt.Errorf("exp: unknown app kind %q (want abr or rpc)", as.Kind)
	}
	ep.OnComplete = a.OnTransferComplete
	return a, nil
}

// workloadRunner drives one arrival process over the compiled graph.
type workloadRunner struct {
	s      *sim.Simulator
	g      *topo.Graph
	spec   *Spec
	ws     *WorkloadSpec
	wr     *WorkloadResult
	pooled *metrics.DelayRecorder
	adv    *advCollector
	route  flowRoute
	nextID *int
	stopAt sim.Time
	active int
	err    error
}

// startWorkloads validates every workload and schedules its arrival
// process. Spawned flows get ids after the static flows'. The returned
// runners must be finished (finishWorkloads) after the run to surface
// mid-run wiring errors and final active counts.
func startWorkloads(s *sim.Simulator, g *topo.Graph, spec *Spec, res *Result, pooled *metrics.DelayRecorder, routes []flowRoute) ([]*workloadRunner, error) {
	if len(spec.Workloads) == 0 {
		return nil, nil
	}
	res.Workloads = make([]WorkloadResult, len(spec.Workloads))
	nextID := len(spec.Flows)
	runners := make([]*workloadRunner, 0, len(spec.Workloads))
	for i := range spec.Workloads {
		ws := &spec.Workloads[i]
		if ws.Arrival == nil {
			return nil, fmt.Errorf("exp: workload %d: missing Arrival process", i)
		}
		// Stateful arrival processes (replays) rewind so the same Spec can
		// drive several runs.
		if rst, ok := ws.Arrival.(interface{ Reset() }); ok {
			rst.Reset()
		}
		if ws.Sizes == nil {
			return nil, fmt.Errorf("exp: workload %d: missing Sizes distribution", i)
		}
		if _, err := cc.New(ws.Scheme); err != nil {
			return nil, fmt.Errorf("exp: workload %d: %v", i, err)
		}
		wr := &res.Workloads[i]
		wr.Class = ws.Class
		if wr.Class == "" {
			wr.Class = fmt.Sprintf("w%d", i)
		}
		stop := ws.Stop
		if stop <= 0 || stop > spec.Duration {
			stop = spec.Duration
		}
		r := &workloadRunner{
			s: s, g: g, spec: spec, ws: ws, wr: wr, pooled: pooled,
			adv: res.adv, route: routes[i], nextID: &nextID, stopAt: stop,
		}
		runners = append(runners, r)
		s.At(ws.Start, r.schedule)
	}
	return runners, nil
}

// finishWorkloads records end-of-run state and surfaces the first
// mid-run wiring error (dropping offered load silently would corrupt the
// experiment).
func finishWorkloads(runners []*workloadRunner) error {
	for _, r := range runners {
		r.wr.Active = r.active
		if r.err != nil {
			return r.err
		}
	}
	return nil
}

// schedule draws the next inter-arrival gap and arms the spawn event.
// The process self-terminates once the next arrival would land at or
// past the stop time.
func (r *workloadRunner) schedule() {
	if r.err != nil {
		return
	}
	gap := r.ws.Arrival.Next(r.s.Rand())
	now := r.s.Now()
	if gap <= 0 {
		gap = 1 // degenerate processes still make progress
	}
	if gap >= r.stopAt-now {
		return
	}
	r.s.After(gap, func() {
		r.spawn(r.s.Now())
		r.schedule()
	})
}

// spawn wires one finite flow onto the graph and starts it.
func (r *workloadRunner) spawn(now sim.Time) {
	max := r.ws.MaxActive
	if max <= 0 {
		max = 1024
	}
	if r.active >= max {
		r.wr.Rejected++
		return
	}
	size := r.ws.Sizes.Draw(r.s.Rand())
	if size < 1 {
		size = 1
	}
	alg, err := cc.New(r.ws.Scheme)
	if err != nil {
		r.fail(err)
		return
	}
	id := *r.nextID
	*r.nextID = id + 1
	rtt := r.ws.RTT
	if rtt <= 0 {
		rtt = r.spec.RTT
	}
	ep := cc.NewEndpoint(r.s, id, nil, alg)
	if rec := r.g.Recorder(); rec != nil {
		ep.SetObs(rec, int32(id))
	}
	ackEntry, err := r.g.RouteFlow(id, true, r.route.ack, rtt/2, ep)
	if err != nil {
		r.fail(err)
		return
	}
	recv := netem.NewReceiver(r.s, id, ackEntry)
	warm := r.spec.Warmup
	wr, pooled := r.wr, r.pooled
	recv.OnData = func(t sim.Time, p *packet.Packet) {
		if t < warm {
			return
		}
		wr.Bytes += int64(p.Size)
		pooled.Add(t - p.SentAt)
		wr.QDelay.Add(p.QueueDelay)
	}
	dataEntry, err := r.g.RouteFlow(id, false, r.route.data, rtt/2, recv)
	if err != nil {
		r.fail(err)
		return
	}
	ep.Out = dataEntry
	ep.Src = cc.NewFixed(size)
	r.active++
	r.wr.Spawned++
	measured := now >= warm
	ep.OnComplete = func(done sim.Time) {
		ep.Stop()
		r.active--
		r.wr.Completed++
		if !measured {
			return
		}
		fct := done - now
		wr.FCT.Add(fct)
		slow := 0.0
		if r.ws.RefMbps > 0 {
			ideal := rtt + sim.FromSeconds(float64(size)*8/(r.ws.RefMbps*1e6))
			if ideal > 0 {
				slow = fct.Seconds() / ideal.Seconds()
				wr.Slowdown.AddSample(slow)
			}
		}
		if r.adv != nil {
			r.adv.addFCT(id, fct, slow, int64(size))
		}
	}
	ep.Start()
}

// fail records the first wiring error and stops the arrival process.
func (r *workloadRunner) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}
