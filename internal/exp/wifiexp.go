// Wi-Fi experiments: Fig. 4 (inter-ACK time vs batch size), Fig. 5 (link
// rate prediction accuracy), Fig. 10 (full-stack comparison on a varying
// 802.11n link, one and two users) and Fig. 14 (Brownian MCS walk).
package exp

import (
	"fmt"
	"math"

	"abc/internal/abc"
	"abc/internal/metrics"
	"abc/internal/packet"
	"abc/internal/qdisc"
	"abc/internal/sim"
	"abc/internal/wifi"
)

// Fig4Sample is one (batch size, inter-ACK time) observation.
type Fig4Sample struct {
	Batch int
	TIAms float64
}

// Fig4Result holds the batching characterization.
type Fig4Result struct {
	Samples []Fig4Sample
	// MeanTIA[b] is the average inter-ACK time for batch size b (ms).
	MeanTIA map[int]float64
	// FittedSlopeMs is the slope of mean TIA vs b (ms/frame); the paper
	// shows it equals S/R.
	FittedSlopeMs float64
	// TheorySlopeMs is S/R for the link's bitrate.
	TheorySlopeMs float64
}

// Fig4InterACK reproduces Fig. 4: drive a fixed-MCS 802.11n link at
// several offered loads so batches of every size occur, and record the
// inter-ACK time for each batch.
func Fig4InterACK(seed int64) (*Fig4Result, error) {
	cfg := wifi.DefaultLinkConfig()
	cfg.MCS = func(sim.Time) int { return 1 } // 13 Mbit/s PHY: visible slope
	out := &Fig4Result{MeanTIA: make(map[int]float64)}
	counts := make(map[int]int)

	for _, loadMbps := range []float64{1, 2, 4, 6, 8, 10, 11, 12} {
		s := sim.New(seed)
		sink := &packet.Sink{}
		link := wifi.NewLink(s, cfg, qdisc.NewDropTail(1000), sink, nil)
		link.OnBatch = func(now sim.Time, b int, tia sim.Time, bitrate float64) {
			if now < sim.Second { // settle
				return
			}
			out.Samples = append(out.Samples, Fig4Sample{Batch: b, TIAms: tia.Millis()})
			out.MeanTIA[b] += tia.Millis()
			counts[b]++
		}
		injectCBR(s, link, loadMbps*1e6, 10*sim.Second)
		s.RunUntil(10 * sim.Second)
	}
	for b, c := range counts {
		out.MeanTIA[b] /= float64(c)
	}
	// Least-squares slope over the per-batch means.
	var sx, sy, sxx, sxy, n float64
	for b, m := range out.MeanTIA {
		x := float64(b)
		sx += x
		sy += m
		sxx += x * x
		sxy += x * m
		n++
	}
	if d := n*sxx - sx*sx; d != 0 {
		out.FittedSlopeMs = (n*sxy - sx*sy) / d
	}
	out.TheorySlopeMs = float64(cfg.FrameSize*8) / wifi.BitrateForMCS(1) * 1000
	return out, nil
}

// injectCBR feeds MTU packets into dst at the given bit rate until end.
func injectCBR(s *sim.Simulator, dst packet.Node, bps float64, end sim.Time) {
	gap := sim.FromSeconds(float64(packet.MTU*8) / bps)
	var seq int64
	var tick func()
	tick = func() {
		if s.Now() >= end {
			return
		}
		p := packet.NewData(0, seq, packet.MTU, s.Now())
		seq++
		dst.Recv(p)
		s.After(gap, tick)
	}
	s.After(gap, tick)
}

// Fig5Point is one (offered load, predicted rate) measurement on a link.
type Fig5Point struct {
	Link          string
	OfferedMbps   float64
	PredictedMbps float64
	TrueMbps      float64
	// CapRegion marks points where the 2x-dequeue-rate cap binds (the
	// dashed slanted line in the figure).
	CapRegion bool
}

// Fig5RatePrediction reproduces Fig. 5: the estimator's predictions for a
// non-backlogged user across offered loads on three different Wi-Fi
// links. Near and above saturation the prediction lands within 5% of the
// true link capacity.
func Fig5RatePrediction(seed int64) ([]Fig5Point, error) {
	links := map[string]int{"Link1": 2, "Link2": 4, "Link3": 6}
	loads := []float64{1, 2, 4, 6, 8, 10, 14, 18, 22, 26, 30, 36, 42, 48}
	var out []Fig5Point
	for name, mcs := range links {
		cfg := wifi.DefaultLinkConfig()
		m := mcs
		cfg.MCS = func(sim.Time) int { return m }
		trueCap := wifi.TrueCapacityBps(cfg, 0) / 1e6
		for _, load := range loads {
			s := sim.New(seed)
			est := wifi.NewEstimator(cfg.MaxBatch, cfg.FrameSize, 40*sim.Millisecond)
			sink := &packet.Sink{}
			link := wifi.NewLink(s, cfg, qdisc.NewDropTail(1000), sink, est)
			injectCBR(s, link, load*1e6, 12*sim.Second)
			// Sample the estimate every 100 ms after settling.
			var sum float64
			var n int
			s.Every(100*sim.Millisecond, func() bool {
				if s.Now() < 2*sim.Second {
					return true
				}
				if v := est.RateBps(s.Now()); v > 0 {
					sum += v / 1e6
					n++
				}
				return s.Now() < 12*sim.Second
			})
			s.RunUntil(12 * sim.Second)
			pt := Fig5Point{Link: name, OfferedMbps: load, TrueMbps: trueCap}
			if n > 0 {
				pt.PredictedMbps = sum / float64(n)
			}
			pt.CapRegion = 2*load < trueCap
			out = append(out, pt)
		}
	}
	return out, nil
}

// WiFiScheme names one Fig. 10 contender; ABC appears at three delay
// thresholds.
type WiFiScheme struct {
	Label  string
	Scheme string
	ABCdt  sim.Time
}

// Fig10SchemeSet is the paper's Wi-Fi comparison set.
var Fig10SchemeSet = []WiFiScheme{
	{Label: "ABC_20", Scheme: "ABC", ABCdt: 20 * sim.Millisecond},
	{Label: "ABC_60", Scheme: "ABC", ABCdt: 60 * sim.Millisecond},
	{Label: "ABC_100", Scheme: "ABC", ABCdt: 100 * sim.Millisecond},
	{Label: "Cubic+Codel", Scheme: "Cubic+Codel"},
	{Label: "Copa", Scheme: "Copa"},
	{Label: "Vegas", Scheme: "Vegas"},
	{Label: "BBR", Scheme: "BBR"},
	{Label: "PCC", Scheme: "PCC"},
	{Label: "Cubic", Scheme: "Cubic"},
}

// MCSWalk produces the MCS trajectory for the Wi-Fi experiments.
type MCSWalk func(seed int64) func(now sim.Time) int

// AlternatingMCS alternates between MCS 1 and 7 every two seconds
// (Fig. 10's emulated user movement).
func AlternatingMCS(seed int64) func(now sim.Time) int {
	return func(now sim.Time) int {
		if int(now/(2*sim.Second))%2 == 0 {
			return 1
		}
		return 7
	}
}

// BrownianMCS performs the Appendix B random walk on [3, 7], stepping
// every two seconds (Fig. 14).
func BrownianMCS(seed int64) func(now sim.Time) int {
	// Precompute a deterministic walk long enough for any run.
	walk := make([]int, 512)
	state := uint64(seed)*2862933555777941757 + 3037000493
	cur := 5
	for i := range walk {
		state = state*6364136223846793005 + 1442695040888963407
		switch state >> 62 {
		case 0, 1:
			cur++
		case 2, 3:
			cur--
		}
		if cur < 3 {
			cur = 3
		}
		if cur > 7 {
			cur = 7
		}
		walk[i] = cur
	}
	return func(now sim.Time) int {
		i := int(now / (2 * sim.Second))
		if i >= len(walk) {
			i = len(walk) - 1
		}
		return walk[i]
	}
}

// RunWiFi runs nUsers backlogged flows of one scheme over the modelled
// 802.11n link for the duration and reports total throughput and the
// mean per-user p95 one-way delay, matching Fig. 10's metrics. The link
// is an ordinary LinkSpec of Kind "wifi", so the run goes through the
// same topology harness as every cellular figure.
func RunWiFi(ws WiFiScheme, nUsers int, mcs func(now sim.Time) int, dur sim.Time, seed int64) (metrics.Summary, error) {
	cfg := wifi.DefaultLinkConfig()
	cfg.MCS = mcs

	// The Wi-Fi links reach ~50 Mbit/s; at dt = 100 ms the standing
	// queue alone is ~400 packets, so the AP buffer must be deeper than
	// the cellular 250 (commodity APs buffer ~1000 frames).
	const buf = 1000
	wl := &WiFiLinkSpec{Config: cfg}
	q := QdiscSpec{Kind: "auto", Buffer: buf}
	if ws.Scheme == "ABC" {
		rc := abc.DefaultRouterConfig()
		rc.Limit = buf
		rc.Window = 40 * sim.Millisecond
		if ws.ABCdt > 0 {
			rc.DelayThreshold = ws.ABCdt
		}
		q = QdiscSpec{Kind: "abc", ABCConfig: &rc}
		wl.Estimate = true
	}

	flows := make([]FlowSpec, nUsers)
	for u := range flows {
		flows[u] = FlowSpec{Scheme: ws.Scheme}
	}
	res, _, err := Run(Spec{
		Seed:     seed,
		Duration: dur,
		Warmup:   3 * sim.Second,
		RTT:      60 * sim.Millisecond,
		Links:    []LinkSpec{{Wifi: wl, Qdisc: q}},
		Flows:    flows,
	})
	if err != nil {
		return metrics.Summary{}, err
	}

	sum := metrics.Summary{Scheme: ws.Label}
	var p95Sum, meanSum float64
	for i := range res.Flows {
		f := &res.Flows[i]
		sum.TputMbps += f.TputMbps
		p95Sum += f.Delay.P95()
		meanSum += f.Delay.Mean()
	}
	sum.P95Ms = p95Sum / float64(nUsers)
	sum.MeanMs = meanSum / float64(nUsers)
	return sum, nil
}

// Fig10WiFi reproduces Fig. 10 (or Fig. 14 with the Brownian walk): all
// schemes on the varying Wi-Fi link.
func Fig10WiFi(nUsers int, mcs func(now sim.Time) int, dur sim.Time, seed int64) ([]metrics.Summary, error) {
	out := make([]metrics.Summary, len(Fig10SchemeSet))
	err := forEachCell(len(Fig10SchemeSet), func(i int) string {
		return fmt.Sprintf("fig10 wifi users=%d scheme=%s seed=%d", nUsers, Fig10SchemeSet[i], seed)
	}, func(i int) error {
		s, err := RunWiFi(Fig10SchemeSet[i], nUsers, mcs, dur, seed)
		out[i] = s
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig5MaxErrorBacklogged returns the worst relative prediction error
// among backlogged points (offered ≥ capacity), the paper's 5% claim.
func Fig5MaxErrorBacklogged(points []Fig5Point) float64 {
	worst := 0.0
	for _, p := range points {
		if p.OfferedMbps < p.TrueMbps {
			continue
		}
		e := math.Abs(p.PredictedMbps-p.TrueMbps) / p.TrueMbps
		if e > worst {
			worst = e
		}
	}
	return worst
}

// FormatFig5 renders the prediction table.
func FormatFig5(points []Fig5Point) string {
	s := ""
	for _, p := range points {
		s += fmt.Sprintf("%-6s offered=%5.1f  predicted=%6.2f  true=%6.2f  cap=%v\n",
			p.Link, p.OfferedMbps, p.PredictedMbps, p.TrueMbps, p.CapRegion)
	}
	return s
}
