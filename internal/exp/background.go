// Fluid background wiring: Spec.Background attaches fluid.Coupler
// aggregates to named edges, turning "millions of users behind this
// bottleneck" into a constant-cost clause instead of millions of packet
// events. Foreground flows stay packet-level and see the residual
// service rate and the fluid-inflated queuing delay (abc.Router marks
// against the total load). See DESIGN.md "Hybrid fluid/packet".
package exp

import (
	"fmt"

	"abc/internal/fluid"
	"abc/internal/netem"
	"abc/internal/qdisc"
	"abc/internal/sim"
	"abc/internal/topo"
)

// BackgroundSpec attaches one fluid aggregate to one edge.
type BackgroundSpec struct {
	// Edge names the hosting edge: a mesh EdgeSpec.Name, or a chain
	// link "fwd<i>" / "rev<i>". Trace and rate links only — wires and
	// Wi-Fi links reject backgrounds at wiring time.
	Edge string
	// Kind is the rate process: "const", "aimd" or "onoff" (fluid
	// package aggregate kinds).
	Kind string
	// Flows is N, the number of virtual background flows. Required for
	// "aimd" (it drives the Eq.-13 drift term); descriptive otherwise.
	Flows int
	// RateMbps is the aggregate offered rate for "const"/"onoff";
	// "aimd" derives its rate from Eq. 13 and rejects it.
	RateMbps float64
	// Ramp linearly scales the offered rate from zero over this window
	// after Start.
	Ramp sim.Time
	// On/Off define the "onoff" diurnal square schedule.
	On, Off sim.Time
	// Start/Stop bound the aggregate's activity (Stop 0 = whole run).
	Start, Stop sim.Time
	// Step overrides the fixed coupling step (default 10 ms).
	Step sim.Time
	// RTT is the "aimd" ensemble round-trip delay; defaults to the
	// spec's RTT.
	RTT sim.Time
}

// config lowers the spec to the fluid package's configuration.
func (bs *BackgroundSpec) config(spec *Spec) fluid.AggregateConfig {
	rtt := bs.RTT
	if rtt <= 0 {
		rtt = spec.RTT
	}
	return fluid.AggregateConfig{
		Kind:    bs.Kind,
		Flows:   bs.Flows,
		RateBps: bs.RateMbps * 1e6,
		OnFor:   bs.On,
		OffFor:  bs.Off,
		Ramp:    bs.Ramp,
		Start:   bs.Start,
		Stop:    bs.Stop,
		Step:    bs.Step,
		RTT:     rtt,
	}
}

// BackgroundResult reports one fluid aggregate's run.
type BackgroundResult struct {
	Edge  string
	Kind  string
	Flows int
	// OfferedMB / ServedMB / DroppedMB are megabytes offered by the
	// rate process, actually served by the link, and shed when the
	// fluid backlog overflowed its buffer cap.
	OfferedMB float64
	ServedMB  float64
	DroppedMB float64
	// MeanShare is the time-averaged fraction of link service the
	// aggregate consumed.
	MeanShare float64
	// FinalQueueBytes is the fluid backlog left when the run ended.
	FinalQueueBytes float64
}

// bgRunner pairs a spec entry with its running coupler.
type bgRunner struct {
	spec    *BackgroundSpec
	coupler *fluid.Coupler
}

// startBackgrounds validates Spec.Background against the compiled
// topology and arms one coupler per entry on its edge's home simulator.
// Every bad form is a loud error: unknown edge, duplicate edge, link
// models without background-aware service loops, and bad aggregate
// parameters (via fluid's validation).
func startBackgrounds(g *topo.Graph, spec *Spec, res *Result, edgeID map[string]int) error {
	if len(spec.Background) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(spec.Background))
	for i := range spec.Background {
		bs := &spec.Background[i]
		if bs.Edge == "" {
			return fmt.Errorf("exp: background[%d]: missing edge name", i)
		}
		if seen[bs.Edge] {
			return fmt.Errorf("exp: background[%d]: edge %q already carries an aggregate", i, bs.Edge)
		}
		seen[bs.Edge] = true
		id, ok := edgeID[bs.Edge]
		if !ok {
			return fmt.Errorf("exp: background[%d]: unknown edge %q", i, bs.Edge)
		}
		e := g.Edge(id)
		// The coupler reads capacity and packet backlog from the live
		// link, so mid-run set_rate events stay visible to the fluid.
		var capf func(now sim.Time) float64
		var qd qdisc.Qdisc
		switch l := e.Link.(type) {
		case *netem.TraceLink:
			capf, qd = l.CapacityBps, l.Q
		case *netem.RateLink:
			capf, qd = func(now sim.Time) float64 { return l.Rate(now) }, l.Q
		default:
			return fmt.Errorf("exp: background[%d]: edge %q: link model %T cannot host a fluid background (trace and rate links only)", i, bs.Edge, e.Link)
		}
		c, err := fluid.NewCoupler(bs.config(spec), capf, qd.Bytes)
		if err != nil {
			return fmt.Errorf("exp: background[%d] (edge %q): %w", i, bs.Edge, err)
		}
		if err := e.SetBackground(c); err != nil {
			return fmt.Errorf("exp: background[%d]: %w", i, err)
		}
		c.Start(e.Home(), spec.Duration)
		res.bg = append(res.bg, &bgRunner{spec: bs, coupler: c})
	}
	return nil
}

// collectBackgrounds fills Result.Backgrounds after the clock stops.
func collectBackgrounds(res *Result) {
	for _, r := range res.bg {
		st := r.coupler.Stats()
		res.Backgrounds = append(res.Backgrounds, BackgroundResult{
			Edge:            r.spec.Edge,
			Kind:            r.spec.Kind,
			Flows:           r.spec.Flows,
			OfferedMB:       st.ArrivedBytes / 1e6,
			ServedMB:        st.ServedBytes / 1e6,
			DroppedMB:       st.DroppedBytes / 1e6,
			MeanShare:       st.MeanShare,
			FinalQueueBytes: st.FinalQueueBytes,
		})
	}
}
