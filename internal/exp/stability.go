// Theorem 3.1 validation: sweep the fluid model's δ/τ ratio and locate
// the stability boundary, which the theorem places at 2/3 when the drift
// constant A is positive.
package exp

import (
	"abc/internal/fluid"
	"abc/internal/sim"
)

// StabilityResult summarizes the sweep.
type StabilityResult struct {
	Points []fluid.BoundaryPoint
	// Boundary is the smallest swept ratio that converged.
	Boundary float64
}

// StabilityRegion sweeps δ/τ over [0.1, 2.0].
func StabilityRegion() *StabilityResult {
	base := fluid.DefaultParams()
	var ratios []float64
	for r := 0.1; r <= 2.0; r += 0.05 {
		ratios = append(ratios, r)
	}
	pts := fluid.SweepDelta(base, ratios, 120*sim.Second)
	res := &StabilityResult{Points: pts, Boundary: -1}
	for _, p := range pts {
		if p.Converged {
			res.Boundary = p.DeltaOverTau
			break
		}
	}
	return res
}
