// Adversary drivers: experiments pitting each scheme against the
// impairment layer's attackers. Targeted runs the same chain twice —
// honest, then with a targeted attack (drop + extra delay + mark
// stripping) pinned on one victim flow — and reports how the victim
// degrades while the bystanders hold; Greedy replaces one flow's sender
// with the brake-ignoring greedy wrapper and quantifies the bandwidth it
// steals from the honest majority under ABC and each explicit baseline.
// Both have declarative twins in examples/scenarios/ (targeted.json,
// greedy.json).
package exp

import (
	"fmt"

	"abc/internal/cc"
	"abc/internal/metrics"
	"abc/internal/netem"
	"abc/internal/sim"
	"abc/internal/topo"
)

// AttackClassDelta compares one flow class (victim or bystanders)
// between the honest baseline run and the attacked run.
type AttackClassDelta struct {
	// HonestMbps / AttackedMbps are the class's mean per-flow throughput
	// in each run.
	HonestMbps, AttackedMbps float64
	// HonestP95Ms / AttackedP95Ms are the class's pooled p95 one-way
	// delays in each run.
	HonestP95Ms, AttackedP95Ms float64
}

// TargetedResult is one scheme's outcome on the targeted-attack
// scenario: the same chain run honest and under attack.
type TargetedResult struct {
	// Victim and Bystander contrast flow 0 (the attack's target) and the
	// other flows across the two runs.
	Victim, Bystander AttackClassDelta
	// JainHonest / JainAttacked are Jain's fairness indices over all
	// flows in each run.
	JainHonest, JainAttacked float64
	// Drops / Delayed / Stripped count the adversarial stage's actions in
	// the attacked run.
	Drops, Delayed, Stripped int64
	// Report is the attacked run's full adversary report.
	Report *AdversaryReport
	// Events annotates the attacked run's executed timeline.
	Events []EventResult
}

// targetedAttack is the attack both the driver and its tests pin on the
// victim: 1% targeted drop, 30 ms of extra one-way delay, and ABC mark
// stripping.
func targetedAttack() *topo.Attack {
	return &topo.Attack{
		Target:     topo.Target{Flows: []int{0}},
		DropRate:   0.01,
		StripMarks: true,
		ExtraDelay: 30 * sim.Millisecond,
	}
}

// targetedSpec builds the shared chain: four same-scheme flows over one
// 16 Mbit/s rate bottleneck.
func targetedSpec(scheme string, dur sim.Time, seed int64) Spec {
	return Spec{
		Seed:     seed,
		Duration: dur,
		RTT:      80 * sim.Millisecond,
		Links: []LinkSpec{{
			Rate:  netem.ConstRate(16e6),
			Qdisc: QdiscSpec{Kind: "auto"},
		}},
		Flows: []FlowSpec{
			{Scheme: scheme}, {Scheme: scheme}, {Scheme: scheme}, {Scheme: scheme},
		},
	}
}

// classStats summarizes one run's victim (flow 0) and bystander (the
// rest) classes: throughput as the class's per-flow mean, delay as the
// victim's p95 and the mean of the bystanders' p95s.
func classStats(res *Result) (victimMbps, victimP95, byMbps, byP95 float64) {
	victimMbps = res.Flows[0].TputMbps
	victimP95 = res.Flows[0].Delay.P95()
	var tput, p95 float64
	for i := 1; i < len(res.Flows); i++ {
		tput += res.Flows[i].TputMbps
		p95 += res.Flows[i].Delay.P95()
	}
	if n := float64(len(res.Flows) - 1); n > 0 {
		byMbps = tput / n
		byP95 = p95 / n
	}
	return victimMbps, victimP95, byMbps, byP95
}

// jain computes Jain's index over a run's per-flow throughputs.
func jain(res *Result) float64 {
	xs := make([]float64, len(res.Flows))
	for i := range res.Flows {
		xs[i] = res.Flows[i].TputMbps
	}
	return metrics.JainIndex(xs)
}

// Targeted runs each scheme's four-flow chain twice — honest, then with
// a targeted attack (1% drop, 30 ms extra delay, mark stripping) pinned
// on flow 0 at the bottleneck — and reports the victim/bystander split:
// a well-isolated scheme degrades only the victim, and the bystanders'
// throughput and delay stay at their honest baseline.
func Targeted(schemes []string, dur sim.Time, seed int64) (map[string]TargetedResult, error) {
	if len(schemes) == 0 {
		schemes = []string{"ABC", "Cubic", "XCP", "RCP"}
	}
	if dur <= 0 {
		dur = 30 * sim.Second
	}
	results := make([]TargetedResult, len(schemes))
	err := forEachCell(len(schemes), func(i int) string {
		return fmt.Sprintf("targeted scheme=%s seed=%d", schemes[i], seed)
	}, func(i int) error {
		honest, _, err := Run(targetedSpec(schemes[i], dur, seed))
		if err != nil {
			return err
		}
		spec := targetedSpec(schemes[i], dur, seed)
		spec.Links[0].Attack = targetedAttack()
		attacked, _, err := Run(spec)
		if err != nil {
			return err
		}
		var r TargetedResult
		r.Victim.HonestMbps, r.Victim.HonestP95Ms,
			r.Bystander.HonestMbps, r.Bystander.HonestP95Ms = classStats(honest)
		r.Victim.AttackedMbps, r.Victim.AttackedP95Ms,
			r.Bystander.AttackedMbps, r.Bystander.AttackedP95Ms = classStats(attacked)
		r.JainHonest = jain(honest)
		r.JainAttacked = jain(attacked)
		r.Drops = attacked.AdvDrops
		r.Delayed = attacked.AdvDelayed
		r.Stripped = attacked.AdvStripped
		r.Report = attacked.Adversary
		r.Events = attacked.Events
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]TargetedResult, len(schemes))
	for i, sch := range schemes {
		out[sch] = results[i]
	}
	return out, nil
}

// GreedyResult is one scheme's outcome on the greedy-sender scenario:
// four same-scheme flows, with flow 0 honest in the baseline run and
// wrapped in the greedy shim in the adversarial run.
type GreedyResult struct {
	// BaselineMbps is flow 0's throughput when everyone is honest (its
	// fair share as actually realized).
	BaselineMbps float64
	// GreedyMbps is flow 0's throughput once it turns greedy, and
	// StolenMbps the difference — the bandwidth misbehaving bought.
	GreedyMbps, StolenMbps float64
	// HonestMeanMbps is the mean throughput of the honest flows in the
	// greedy run (what the victims are left with).
	HonestMeanMbps float64
	// JainBaseline / JainGreedy are Jain's indices over all flows in each
	// run: the fairness collapse is the attack's signature.
	JainBaseline, JainGreedy float64
	// BrakesIgnored / CEsIgnored / FeedbackClamped count the feedback the
	// greedy shim suppressed (scheme-dependent: ABC brakes, CE echoes,
	// XCP/RCP/VCP explicit feedback).
	BrakesIgnored, CEsIgnored, FeedbackClamped int64
	// Report is the greedy run's adversary report.
	Report *AdversaryReport
}

// Greedy runs each scheme's four-flow chain twice — all honest, then
// with flow 0's sender wrapped in the greedy shim (ignores brakes and
// CE, clamps negative explicit feedback, floors its window at half its
// peak) — and quantifies the stolen bandwidth. Explicit schemes differ
// sharply here: an ABC router's marks are advisory, so a deaf sender
// keeps whatever it grabs until drops discipline it, while XCP/RCP
// senders that ignore feedback still face the router's per-packet
// allocations to everyone else.
func Greedy(schemes []string, dur sim.Time, seed int64) (map[string]GreedyResult, error) {
	if len(schemes) == 0 {
		schemes = ExplicitSchemes
	}
	if dur <= 0 {
		dur = 30 * sim.Second
	}
	results := make([]GreedyResult, len(schemes))
	err := forEachCell(len(schemes), func(i int) string {
		return fmt.Sprintf("greedy scheme=%s seed=%d", schemes[i], seed)
	}, func(i int) error {
		honest, _, err := Run(targetedSpec(schemes[i], dur, seed))
		if err != nil {
			return err
		}
		spec := targetedSpec(schemes[i], dur, seed)
		spec.Flows[0].Misbehave = "greedy"
		greedy, _, err := Run(spec)
		if err != nil {
			return err
		}
		var r GreedyResult
		r.BaselineMbps = honest.Flows[0].TputMbps
		r.GreedyMbps = greedy.Flows[0].TputMbps
		r.StolenMbps = r.GreedyMbps - r.BaselineMbps
		var sum float64
		for j := 1; j < len(greedy.Flows); j++ {
			sum += greedy.Flows[j].TputMbps
		}
		r.HonestMeanMbps = sum / float64(len(greedy.Flows)-1)
		r.JainBaseline = jain(honest)
		r.JainGreedy = jain(greedy)
		g, ok := greedy.Flows[0].Algorithm.(*cc.Greedy)
		if !ok {
			return fmt.Errorf("exp: greedy driver: flow 0 algorithm is %T, want *cc.Greedy", greedy.Flows[0].Algorithm)
		}
		r.BrakesIgnored = g.BrakesIgnored
		r.CEsIgnored = g.CEsIgnored
		r.FeedbackClamped = g.FeedbackClamped
		r.Report = greedy.Adversary
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]GreedyResult, len(schemes))
	for i, sch := range schemes {
		out[sch] = results[i]
	}
	return out, nil
}

// FormatTargetedResult renders one scheme's targeted-attack rows.
func FormatTargetedResult(scheme string, r TargetedResult) string {
	return fmt.Sprintf("%-14s victim  %5.2f -> %5.2f Mbit/s  p95 %6.1f -> %6.1f ms\n"+
		"%-14s others  %5.2f -> %5.2f Mbit/s  p95 %6.1f -> %6.1f ms  jain %.3f -> %.3f  drops=%d delayed=%d stripped=%d\n",
		scheme, r.Victim.HonestMbps, r.Victim.AttackedMbps, r.Victim.HonestP95Ms, r.Victim.AttackedP95Ms,
		"", r.Bystander.HonestMbps, r.Bystander.AttackedMbps, r.Bystander.HonestP95Ms, r.Bystander.AttackedP95Ms,
		r.JainHonest, r.JainAttacked, r.Drops, r.Delayed, r.Stripped)
}

// FormatGreedyResult renders one scheme's greedy-sender row.
func FormatGreedyResult(scheme string, r GreedyResult) string {
	return fmt.Sprintf("%-14s greedy %5.2f Mbit/s (honest baseline %5.2f, stolen %+5.2f)  honest mean %5.2f  jain %.3f -> %.3f  brakes=%d ce=%d clamped=%d\n",
		scheme, r.GreedyMbps, r.BaselineMbps, r.StolenMbps, r.HonestMeanMbps,
		r.JainBaseline, r.JainGreedy, r.BrakesIgnored, r.CEsIgnored, r.FeedbackClamped)
}
