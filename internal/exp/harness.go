// Package exp contains one runner per table/figure of the paper's
// evaluation, built on a generic scenario harness: flows of any
// registered scheme traverse a topology graph (internal/topo) of
// bottleneck links — trace-driven, rate-driven or Wi-Fi modelled — with
// optional impairments, and both the data path and the ACK path are
// explicit routes, so reverse-path bottlenecks and per-flow RTTs are
// first-class. Schemes and queueing disciplines are resolved through the
// cc and qdisc registries; this package constructs nothing by name.
package exp

import (
	"fmt"

	"abc/internal/abc"
	"abc/internal/app"
	"abc/internal/cc"
	_ "abc/internal/explicit" // registers the XCP/XCPw/RCP/VCP schemes and routers
	"abc/internal/metrics"
	"abc/internal/netem"
	"abc/internal/packet"
	"abc/internal/qdisc"
	"abc/internal/sched"
	"abc/internal/sim"
	"abc/internal/topo"
	"abc/internal/trace"
	"abc/internal/wifi"
)

// Schemes lists every congestion-control scheme in the paper's
// evaluation, in the order Fig. 9 reports them.
var Schemes = []string{
	"ABC", "XCP", "XCPw", "Cubic+Codel", "Cubic+PIE",
	"Copa", "Sprout", "Vegas", "Verus", "BBR", "PCC", "Cubic",
}

// ExplicitSchemes is the Appendix D comparison set.
var ExplicitSchemes = []string{"ABC", "XCP", "XCPw", "VCP", "RCP"}

// NewAlgorithm constructs the sender algorithm for a registered scheme
// name. It is a thin veneer over the cc registry, kept for callers that
// build topologies by hand (Fig. 12's dynamic flows).
func NewAlgorithm(scheme string) (cc.Algorithm, error) { return cc.New(scheme) }

// QdiscSpec selects the bottleneck discipline for a link.
type QdiscSpec struct {
	// Kind names a registered discipline (qdisc.Kinds lists them), or
	// "auto" (the default) to derive it from the first flow whose data
	// path traverses the link.
	Kind string
	// Buffer is the queue limit in packets (default 250, the paper's
	// emulation buffer).
	Buffer int
	// ABCDelayThreshold overrides dt for ABC routers (Fig. 10 sweeps
	// 20/60/100 ms).
	ABCDelayThreshold sim.Time
	// ABCFeedback selects dequeue- vs enqueue-rate feedback (Fig. 2).
	ABCFeedback abc.FeedbackMode
	// ABCConfig, when non-nil, fully overrides the ABC router
	// configuration (ablation sweeps); Buffer still applies if
	// ABCConfig.Limit is zero.
	ABCConfig *abc.RouterConfig
	// ABCLie makes the ABC router misbehave: the fraction of brake-bound
	// packets it fraudulently promotes back to accelerate. Only the plain
	// "abc" kind consumes it.
	ABCLie float64
}

// build resolves the spec through the qdisc registry. scheme is the
// deriving scheme for "auto" kinds ("" falls back to droptail).
func (q QdiscSpec) build(scheme string, s *sim.Simulator) (qdisc.Qdisc, error) {
	kind := q.Kind
	if kind == "auto" || kind == "" {
		kind = cc.QdiscFor(scheme)
	}
	bs := qdisc.BuildSpec{
		Kind:           kind,
		Buffer:         q.Buffer,
		DelayThreshold: q.ABCDelayThreshold,
		Feedback:       uint8(q.ABCFeedback),
		Rand:           s.Rand(),
	}
	if q.ABCConfig != nil {
		// Only the plain ABC router consumes a full RouterConfig;
		// letting other kinds silently ignore one would be exactly the
		// misconfiguration the explicit spec is meant to prevent.
		if kind != "abc" {
			return nil, fmt.Errorf("exp: ABCConfig set for qdisc kind %q, which does not consume it", kind)
		}
		bs.Config = q.ABCConfig
	}
	if q.ABCLie != 0 {
		// Same contract as ABCConfig: a lying-router fraction on a kind
		// that has no lying mode is a spec error, not a silent no-op.
		if kind != "abc" {
			return nil, fmt.Errorf("exp: ABCLie set for qdisc kind %q, which does not consume it", kind)
		}
		bs.Lie = q.ABCLie
	}
	return qdisc.Build(bs)
}

// WiFiLinkSpec configures a Kind "wifi" link: the modelled 802.11n AP.
type WiFiLinkSpec struct {
	// Config parameterizes the AP (zero fields take wifi defaults).
	Config wifi.LinkConfig
	// Estimate attaches the §4.1 link-rate estimator as the capacity
	// provider for capacity-aware qdiscs (the ABC deployment).
	Estimate bool
	// EstWindow is the estimator's smoothing window (default 40 ms).
	EstWindow sim.Time
}

// LinkSpec describes one bottleneck hop of a chain or mesh edge.
type LinkSpec struct {
	// Kind selects the link model: "trace", "rate", "wifi", or "" to
	// infer from whichever of Trace/Rate/Wifi is set. Mesh edges
	// (Spec.Edges) additionally accept "wire": a pure propagation hop —
	// Delay and Impair only, no bottleneck and no qdisc.
	Kind string
	// Trace drives a delivery-opportunity (Mahimahi-style) link.
	Trace *trace.Trace
	// Rate drives a store-and-forward link with a time-varying bit rate.
	Rate netem.RateFunc
	// Wifi drives an A-MPDU-batching 802.11n link.
	Wifi  *WiFiLinkSpec
	Qdisc QdiscSpec
	// Lookahead enables the PK-ABC future-capacity oracle on trace
	// links (§6.6).
	Lookahead sim.Time
	// Delay is this hop's propagation delay, applied after transmission.
	// The default 0 keeps hops back-to-back, with the path's residual
	// propagation in the per-flow access tails (RTT/2 each way), which
	// preserves the paper's RTT accounting.
	Delay sim.Time
	// Impair adds an impairment stage (jitter, random/burst loss,
	// reordering) in front of the link.
	Impair topo.Impairments
	// Attack installs an adversarial stage on the edge at build time:
	// targeted drops, extra delay or mark-stripping against the flows its
	// Target selects. Retunable mid-run via "attack"/"clear_attack"
	// events.
	Attack *topo.Attack
}

// wire reports whether the spec is a pure propagation hop (mesh only).
func (ls *LinkSpec) wire() bool { return ls.Kind == "wire" }

// kind resolves the link model name.
func (ls *LinkSpec) kind() (string, error) {
	if ls.Kind != "" {
		return ls.Kind, nil
	}
	switch {
	case ls.Trace != nil:
		return "trace", nil
	case ls.Rate != nil:
		return "rate", nil
	case ls.Wifi != nil:
		return "wifi", nil
	}
	return "", fmt.Errorf("exp: link has neither trace, rate nor wifi")
}

// Direction selects which chain carries a flow's data.
type Direction int

const (
	// Forward flows send data over Spec.Links; their ACKs return over
	// Spec.ReverseLinks (or a plain wire when there are none).
	Forward Direction = iota
	// Reverse flows send data over Spec.ReverseLinks; their ACKs return
	// over Spec.Links. They model uplink cross traffic that congests the
	// forward flows' ACK path.
	Reverse
)

// FlowSpec describes one flow.
type FlowSpec struct {
	Scheme string
	// Start/Stop bound the flow's lifetime; Stop 0 means run to the end.
	Start, Stop sim.Time
	// Source is the data source; nil means backlogged.
	Source cc.Source
	// Dir selects the chain carrying this flow's data (default Forward).
	Dir Direction
	// EnterAt is the index of the first link of the flow's chain it
	// traverses (cross-traffic flows can skip upstream links).
	// Out-of-range values are an error.
	EnterAt int
	// ExitAt is the 1-based index of the last link traversed, letting
	// cross traffic leave the path early; 0 means the end of the chain.
	ExitAt int
	// RTT overrides Spec.RTT for this flow (heterogeneous-RTT
	// scenarios): RTT/2 of access latency on each of the flow's data and
	// ACK tails.
	RTT sim.Time
	// Path routes the flow's data over named mesh edges (Spec.Edges), in
	// order. Mesh specs require it; chain specs must leave it empty (they
	// route via Dir/EnterAt/ExitAt instead).
	Path []string
	// AckPath routes the flow's ACKs over named mesh edges. Empty means
	// an uncongested direct wire back to the sender (the chain harness's
	// no-ReverseLinks default).
	AckPath []string
	// Misbehave wraps the constructed algorithm in a misbehaving-sender
	// shim. The only recognized value is "greedy": a sender that ignores
	// brakes, CE and negative explicit feedback (cc.Greedy). Empty means
	// an honest sender.
	Misbehave string
	// Mutate, if set, adjusts the constructed algorithm before the run
	// (ablation switches such as abc.Sender.DisableAI).
	Mutate func(alg cc.Algorithm)
	// App attaches a closed-loop application (ABR video, RPC) that
	// drives this flow's source; mutually exclusive with Source.
	App *AppSpec
}

// EdgeSpec is one directed edge of a mesh topology (Spec.Edges): a named
// hop between two named nodes, carrying a LinkSpec exactly like a chain
// hop does (Kind "wire" makes it a pure propagation edge).
type EdgeSpec struct {
	// Name identifies the edge in FlowSpec.Path / AckPath.
	Name string
	// From and To name the edge's endpoints (Spec.Nodes).
	From, To string
	// Link configures the hop: bottleneck model, qdisc, delay,
	// impairments.
	Link LinkSpec
}

// Spec is a complete scenario: either a chain (Links / ReverseLinks,
// flows routed by Dir/EnterAt/ExitAt) or a mesh (Nodes / Edges, flows
// routed by explicit Path/AckPath edge lists). The two forms are
// mutually exclusive.
type Spec struct {
	Seed     int64
	Duration sim.Time
	// Warmup excludes the initial transient from all metrics.
	Warmup sim.Time
	// RTT is the round-trip propagation delay (paper default 100 ms).
	RTT   sim.Time
	Links []LinkSpec
	// ReverseLinks is the ACK-path chain: forward flows' ACKs traverse
	// it in order, and Reverse-direction flows send their data over it.
	// Empty means an uncongested wire, the paper's emulation default.
	ReverseLinks []LinkSpec
	// Nodes and Edges declare a mesh topology: named junctions and
	// directed edges between them. Any directed multigraph is allowed —
	// parallel edges, asymmetric reverse paths, disjoint subpaths through
	// shared junctions. Flows route over it via FlowSpec.Path / AckPath.
	Nodes []string
	Edges []EdgeSpec
	Flows []FlowSpec
	// Workloads spawn finite flows mid-run from open-loop arrival
	// processes, reported per-workload in Result.Workloads.
	Workloads []WorkloadSpec
	// Events is the timed mutation timeline: reroutes, rate and delay
	// changes, link outages, executed on the simulation clock. Edges are
	// addressed by name — mesh edges by their EdgeSpec.Name, chain links
	// as "fwd<i>" / "rev<i>" (link i of Links / ReverseLinks).
	Events []EventSpec
	// Shards splits the simulation into this many parallel event queues
	// advanced under conservative lookahead synchronization (0 or 1 =
	// the sequential simulator, byte-identical to previous releases).
	// Junctions are partitioned automatically (topo.Partition) unless
	// pinned via ShardMap; shard-cut edges must have positive Delay.
	// Sharded specs cannot use Workloads or Sample/Probe time series.
	Shards int
	// ShardMap pins named junctions (mesh node names, or chain junctions
	// "fwd<i>" / "rev<i>") to shard indices; unnamed junctions are placed
	// by the automatic partitioner around the pins.
	ShardMap map[string]int
	// Sample enables time-series collection at this period (0 = off).
	// Negative values are a Spec error, not "off".
	Sample sim.Time
	// Probe, when set, is called once per sample period with the
	// partially built result, letting experiments record custom series
	// (e.g. Fig. 6's wabc/wcubic windows). Setting Probe without Sample
	// is a Spec error — the probe would never fire.
	Probe func(now sim.Time, r *Result)
	// Routing enables the route-computation layer: a policy watches link
	// state (link_down / link_up / set_delay) and recomputes managed
	// flows' routes through the same Router machinery scripted reroute
	// events use, making handover and flap recovery emergent behavior.
	// Sequential-only (rejected at Shards > 1).
	Routing *RoutingSpec
	// Background attaches fluid background aggregates to named edges
	// (mesh edge names, or chain links "fwd<i>" / "rev<i>"): each is a
	// deterministic fixed-step rate process standing in for many
	// virtual flows, draining link capacity and contributing queue
	// occupancy at constant cost regardless of the flow count. Couplers
	// step on each edge's home simulator, so backgrounds compose with
	// Shards.
	Background []BackgroundSpec
}

// FlowResult reports one flow's measurements over [Warmup, Duration].
type FlowResult struct {
	Scheme    string
	Bytes     int64
	TputMbps  float64
	Delay     metrics.DelayRecorder // one-way per-packet delay, ms
	QDelay    metrics.DelayRecorder // accumulated queuing delay, ms
	Lost      int64
	Retx      int64
	Tput      *metrics.Timeseries // when sampling
	Endpoint  *cc.Endpoint
	Algorithm cc.Algorithm
	// App is the closed-loop application bound to the flow, when any
	// (AppSpec kind "abr" → *app.ABR, "rpc" → *app.RPC).
	App app.App
}

// Result is a completed scenario.
type Result struct {
	Spec  Spec
	Flows []FlowResult
	// Workloads reports each open-loop workload in Spec.Workloads order.
	Workloads   []WorkloadResult
	Utilization float64
	// QueueDelayTS samples the first link's standing queue delay when
	// sampling is enabled.
	QueueDelayTS *metrics.Timeseries
	// WeightTS samples a dual queue's ABC weight when present.
	WeightTS *metrics.Timeseries
	// Qdiscs exposes the built bottleneck disciplines, first hop first.
	Qdiscs []qdisc.Qdisc
	// ReverseQdiscs exposes the reverse-chain disciplines, first reverse
	// hop first.
	ReverseQdiscs []qdisc.Qdisc
	// EdgeQdiscs maps mesh edge names to their built disciplines (nil for
	// chain scenarios; wire edges have no entry).
	EdgeQdiscs map[string]qdisc.Qdisc
	// Drops counts packets that reached a junction with no forwarding
	// entry for their flow and direction. In a static scenario anything
	// non-zero indicates a wiring bug (a flow id without a routed path);
	// under a reroute event timeline it additionally counts packets that
	// were in flight on abandoned edges when their route moved — the
	// handover losses the conservation contract makes explicit.
	Drops int64
	// ImpairDrops counts packets deliberately discarded by impairment
	// stages (lossy-link scenarios).
	ImpairDrops int64
	// LinkDownDrops counts packets dropped at the entry of edges taken
	// down by link_down events.
	LinkDownDrops int64
	// AdvDrops / AdvDelayed / AdvStripped count adversarial-stage actions
	// across all edges: packets dropped, delayed, and accel marks
	// stripped by installed attacks.
	AdvDrops    int64
	AdvDelayed  int64
	AdvStripped int64
	// Adversary splits the run's degradation metrics into victim,
	// bystander and attacker classes; nil when the spec has no adversary
	// (no attacks, no misbehaving flows, no lying routers).
	Adversary *AdversaryReport
	// Events annotates each executed Spec.Events entry in execution
	// order.
	Events []EventResult
	// RouteChanges annotates every route the Spec.Routing policy
	// switched, in execution order — the emergent counterpart of the
	// scripted Events annotations, and what golden digests lock for the
	// autoroute/flapstorm drivers.
	RouteChanges []RouteChangeResult
	// Graph is the compiled topology, available to Probe callbacks and
	// post-run inspection (edge stats, custom traffic injection).
	Graph *topo.Graph
	// Backgrounds reports each fluid aggregate in Spec.Background order:
	// bytes offered/served/dropped and the mean service share it took
	// from its edge.
	Backgrounds []BackgroundResult

	// adv classifies flows into victim/bystander/attacker and collects
	// the per-class workload FCTs behind Adversary; nil for honest specs.
	adv *advCollector

	// bg holds the running couplers so runAndMeasure can collect their
	// stats after the clock stops.
	bg []*bgRunner
}

// AggTputMbps sums flow throughputs.
func (r *Result) AggTputMbps() float64 {
	var t float64
	for i := range r.Flows {
		t += r.Flows[i].TputMbps
	}
	return t
}

// MeanDelayMs averages flow mean delays weighted by sample count.
func (r *Result) MeanDelayMs() float64 {
	var sum float64
	var n int
	for i := range r.Flows {
		c := r.Flows[i].Delay.Count()
		sum += r.Flows[i].Delay.Mean() * float64(c)
		n += c
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Summary condenses a result for scatter/bar figures.
func (r *Result) Summary(scheme string, pooled *metrics.DelayRecorder) metrics.Summary {
	return metrics.Summary{
		Scheme:      scheme,
		Utilization: r.Utilization,
		TputMbps:    r.AggTputMbps(),
		MeanMs:      pooled.Mean(),
		P95Ms:       pooled.P95(),
	}
}

// span is a flow's resolved [EnterAt, exit) range over its chain.
type span struct{ enter, exit int }

// resolveSpan validates an EnterAt/ExitAt pair against a chain; what
// names the owner ("flow 0", "workload 1") and dir its direction, for
// error messages.
func resolveSpan(what string, dir Direction, enterAt, exitAt, chainLen int) (span, error) {
	name := "links"
	if dir == Reverse {
		name = "reverse links"
	}
	if chainLen == 0 {
		return span{}, fmt.Errorf("exp: %s: no %s for its direction", what, name)
	}
	if enterAt < 0 || enterAt >= chainLen {
		return span{}, fmt.Errorf("exp: %s: EnterAt %d out of range [0, %d)", what, enterAt, chainLen)
	}
	exit := exitAt
	if exit == 0 {
		exit = chainLen
	}
	if exit < 0 || exit > chainLen {
		return span{}, fmt.Errorf("exp: %s: ExitAt %d out of range [1, %d]", what, exitAt, chainLen)
	}
	if exit <= enterAt {
		return span{}, fmt.Errorf("exp: %s: ExitAt %d does not reach past EnterAt %d", what, exitAt, enterAt)
	}
	return span{enter: enterAt, exit: exit}, nil
}

// flowSpan validates a flow's EnterAt/ExitAt against its chain.
func flowSpan(i int, fs *FlowSpec, chainLen int) (span, error) {
	return resolveSpan(fmt.Sprintf("flow %d", i), fs.Dir, fs.EnterAt, fs.ExitAt, chainLen)
}

// autoScheme picks the deriving scheme for link i of a chain: the first
// flow of the matching direction whose data path traverses the link,
// falling back to the first such workload (a link carrying only
// app-spawned flows still derives its discipline from them).
func autoScheme(spec *Spec, dir Direction, i int, spans, wspans []span) string {
	for f := range spec.Flows {
		if spec.Flows[f].Dir != dir {
			continue
		}
		if spans[f].enter <= i && i < spans[f].exit {
			return spec.Flows[f].Scheme
		}
	}
	for w := range spec.Workloads {
		if spec.Workloads[w].Dir != dir {
			continue
		}
		if wspans[w].enter <= i && i < wspans[w].exit {
			return spec.Workloads[w].Scheme
		}
	}
	return ""
}

// buildChain adds one chain of links to the graph as nodes n[0..len] and
// returns the edge ids and built qdiscs, first hop first. Each link's
// qdisc and bottleneck schedule on the simulator of the junction feeding
// it (the edge's From node), which is the graph's sole simulator unless
// the spec is sharded.
func buildChain(g *topo.Graph, spec *Spec, links []LinkSpec, dir Direction, spans, wspans []span) (edges []int, qdiscs []qdisc.Qdisc, err error) {
	if len(links) == 0 {
		return nil, nil, nil
	}
	prefix := "fwd"
	if dir == Reverse {
		prefix = "rev"
	}
	nodes := make([]int, len(links)+1)
	for i := range nodes {
		nodes[i] = g.AddNode(fmt.Sprintf("%s%d", prefix, i))
	}
	for i := range links {
		ls := &links[i]
		s := g.SimFor(nodes[i])
		kind, err := ls.kind()
		if err != nil {
			return nil, nil, fmt.Errorf("%v (link %d)", err, i)
		}
		qd, err := ls.Qdisc.build(autoScheme(spec, dir, i, spans, wspans), s)
		if err != nil {
			return nil, nil, err
		}
		qdiscs = append(qdiscs, qd)
		mk, err := linkFactory(s, ls, kind, qd)
		if err != nil {
			return nil, nil, err
		}
		id, err := g.AddEdge(fmt.Sprintf("%s%d", prefix, i), nodes[i], nodes[i+1], ls.Delay, ls.Impair, mk)
		if err != nil {
			return nil, nil, err
		}
		if ls.Attack != nil {
			if err := ls.Attack.Validate(); err != nil {
				return nil, nil, fmt.Errorf("exp: link %s%d: %v", prefix, i, err)
			}
			g.Edge(id).SetAttack(ls.Attack)
		}
		edges = append(edges, id)
	}
	return edges, qdiscs, nil
}

// linkFactory returns the topo.LinkFactory for one link spec.
func linkFactory(s *sim.Simulator, ls *LinkSpec, kind string, qd qdisc.Qdisc) (topo.LinkFactory, error) {
	switch kind {
	case "trace":
		if ls.Trace == nil {
			return nil, fmt.Errorf("exp: link kind %q without a trace", kind)
		}
		return func(dst packet.Node) (topo.Link, error) {
			l := netem.NewTraceLink(s, ls.Trace, qd, dst)
			l.Lookahead = ls.Lookahead
			return l, nil
		}, nil
	case "rate":
		if ls.Rate == nil {
			return nil, fmt.Errorf("exp: link kind %q without a rate function", kind)
		}
		return func(dst packet.Node) (topo.Link, error) {
			return netem.NewRateLink(s, ls.Rate, qd, dst), nil
		}, nil
	case "wifi":
		ws := ls.Wifi
		if ws == nil {
			return nil, fmt.Errorf("exp: link kind %q without a wifi spec", kind)
		}
		return func(dst packet.Node) (topo.Link, error) {
			cfg := ws.Config
			var est *wifi.Estimator
			if ws.Estimate {
				win := ws.EstWindow
				if win <= 0 {
					win = 40 * sim.Millisecond
				}
				mb, fs := cfg.MaxBatch, cfg.FrameSize
				if mb <= 0 {
					mb = wifi.DefaultLinkConfig().MaxBatch
				}
				if fs <= 0 {
					fs = packet.MTU
				}
				est = wifi.NewEstimator(mb, fs, win)
			}
			return wifi.NewLink(s, cfg, qd, dst, est), nil
		}, nil
	}
	return nil, fmt.Errorf("exp: unknown link kind %q", kind)
}

// capacityFn returns a capacity sampler (bits/sec) for a link spec, used
// by the queue-delay time series.
func capacityFn(ls *LinkSpec) func(now sim.Time) float64 {
	switch {
	case ls.Trace != nil:
		tr := ls.Trace
		return func(now sim.Time) float64 { return tr.CapacityBps(now, 100*sim.Millisecond) }
	case ls.Rate != nil:
		return ls.Rate
	case ls.Wifi != nil:
		cfg := ls.Wifi.Config
		return func(now sim.Time) float64 { return wifi.TrueCapacityBps(cfg, now) }
	}
	return func(sim.Time) float64 { return 0 }
}

// Run executes the scenario and returns its result along with the pooled
// per-packet delay recorder used for the paper's delay metrics.
func Run(spec Spec) (*Result, *metrics.DelayRecorder, error) {
	if spec.Duration <= 0 {
		spec.Duration = 60 * sim.Second
	}
	if spec.RTT <= 0 {
		spec.RTT = 100 * sim.Millisecond
	}
	if spec.Warmup <= 0 {
		spec.Warmup = 4 * sim.Second
	}
	// Misconfigurations that used to no-op silently are Spec errors: a
	// probe that never fires and a sampling period that would arm timers
	// in the past are both wiring bugs, not requests for "off".
	if spec.Sample < 0 {
		return nil, nil, fmt.Errorf("exp: negative Sample %v", spec.Sample)
	}
	if spec.Probe != nil && spec.Sample <= 0 {
		return nil, nil, fmt.Errorf("exp: Probe set without Sample; the probe would never fire (set Sample to the probe period)")
	}
	if err := validateRouting(&spec); err != nil {
		return nil, nil, err
	}
	if len(spec.Nodes) > 0 || len(spec.Edges) > 0 {
		return runMesh(spec)
	}
	if len(spec.Links) == 0 {
		return nil, nil, fmt.Errorf("exp: no links in spec")
	}
	if len(spec.Flows) == 0 && len(spec.Workloads) == 0 {
		return nil, nil, fmt.Errorf("exp: no flows in spec")
	}
	// Resolve every flow's and workload's span first: spans drive both
	// validation and per-link "auto" qdisc derivation.
	spans := make([]span, len(spec.Flows))
	for i := range spec.Flows {
		fs := &spec.Flows[i]
		chainLen := len(spec.Links)
		if fs.Dir == Reverse {
			chainLen = len(spec.ReverseLinks)
		}
		sp, err := flowSpan(i, fs, chainLen)
		if err != nil {
			return nil, nil, err
		}
		spans[i] = sp
	}
	wspans := make([]span, len(spec.Workloads))
	for i := range spec.Workloads {
		ws := &spec.Workloads[i]
		if len(ws.Path) > 0 || len(ws.AckPath) > 0 {
			return nil, nil, fmt.Errorf("exp: workload %d: Path/AckPath route over mesh edges; chain workloads use Dir/EnterAt/ExitAt", i)
		}
		chainLen := len(spec.Links)
		if ws.Dir == Reverse {
			chainLen = len(spec.ReverseLinks)
		}
		sp, err := resolveSpan(fmt.Sprintf("workload %d", i), ws.Dir, ws.EnterAt, ws.ExitAt, chainLen)
		if err != nil {
			return nil, nil, err
		}
		wspans[i] = sp
	}

	res := &Result{Spec: spec, adv: newAdvCollector(&spec)}
	pooled := &metrics.DelayRecorder{}

	// The topology: both chains as graph edges, every flow an explicit
	// forward and reverse route over them. Shards > 1 spreads the
	// junctions over parallel event queues (see shard.go).
	g, err := chainGraph(&spec, spans)
	if err != nil {
		return nil, nil, err
	}
	s := g.S
	res.Graph = g
	attachObs(g)
	fwdEdges, fwdQdiscs, err := buildChain(g, &spec, spec.Links, Forward, spans, wspans)
	if err != nil {
		return nil, nil, err
	}
	revEdges, revQdiscs, err := buildChain(g, &spec, spec.ReverseLinks, Reverse, spans, wspans)
	if err != nil {
		return nil, nil, err
	}
	res.Qdiscs = fwdQdiscs
	res.ReverseQdiscs = revQdiscs

	// Flows: resolve every flow's chain span into explicit edge routes.
	chainRoute := func(dir Direction, sp span) flowRoute {
		if dir == Reverse {
			return flowRoute{data: revEdges[sp.enter:sp.exit], ack: fwdEdges}
		}
		return flowRoute{data: fwdEdges[sp.enter:sp.exit], ack: revEdges}
	}
	routes := make([]flowRoute, len(spec.Flows))
	for i := range spec.Flows {
		fs := &spec.Flows[i]
		if len(fs.Path) > 0 || len(fs.AckPath) > 0 {
			return nil, nil, fmt.Errorf("exp: flow %d: Path/AckPath route over mesh edges; chain flows use Dir/EnterAt/ExitAt", i)
		}
		routes[i] = chainRoute(fs.Dir, spans[i])
	}
	if err := wireFlows(g, &spec, res, pooled, routes); err != nil {
		return nil, nil, err
	}
	wroutes := make([]flowRoute, len(spec.Workloads))
	for i := range spec.Workloads {
		wroutes[i] = chainRoute(spec.Workloads[i].Dir, wspans[i])
	}
	runners, err := startWorkloads(s, g, &spec, res, pooled, wroutes)
	if err != nil {
		return nil, nil, err
	}

	// Chain links are addressable in the event timeline as "fwd<i>" /
	// "rev<i>".
	edgeID := make(map[string]int, len(fwdEdges)+len(revEdges))
	for i, id := range fwdEdges {
		edgeID[fmt.Sprintf("fwd%d", i)] = id
	}
	for i, id := range revEdges {
		edgeID[fmt.Sprintf("rev%d", i)] = id
	}
	if err := scheduleEvents(s, g, &spec, res, edgeID); err != nil {
		return nil, nil, err
	}
	if err := startRouting(g, &spec, res); err != nil {
		return nil, nil, err
	}
	if err := startBackgrounds(g, &spec, res, edgeID); err != nil {
		return nil, nil, err
	}

	runAndMeasure(g, &spec, res, pooled, res.Qdiscs[0], capacityFn(&spec.Links[0]))
	if err := finishWorkloads(runners); err != nil {
		return nil, nil, err
	}

	// Utilization against the tightest trace link of the data chain over
	// the measurement window (the paper reports utilization of the
	// emulated cell link). Only flows and workloads whose route actually
	// traverses that link count towards its utilization.
	tightestTraceUtilization(&spec, res, len(spec.Links),
		func(li int) *trace.Trace { return spec.Links[li].Trace },
		func(f, li int) bool {
			return spec.Flows[f].Dir == Forward &&
				spans[f].enter <= li && li < spans[f].exit
		},
		func(w, li int) bool {
			return spec.Workloads[w].Dir == Forward &&
				wspans[w].enter <= li && li < wspans[w].exit
		})
	return res, pooled, nil
}

// tightestTraceUtilization sets res.Utilization against the tightest
// trace bottleneck over the measurement window: of the n links for which
// traceAt returns a trace, the one delivering the fewest bytes between
// Warmup and Duration is the reference, and only flows and workloads
// whose data route traverses it (per the traverses/wtraverses
// predicates) count as delivered bytes. Both the chain and the mesh
// compiler measure through here, so the utilization rule cannot diverge
// between the two Spec forms.
func tightestTraceUtilization(spec *Spec, res *Result, n int, traceAt func(link int) *trace.Trace, traverses func(flow, link int) bool, wtraverses func(workload, link int) bool) {
	var minCapBytes int64 = -1
	minIdx := -1
	for li := 0; li < n; li++ {
		tr := traceAt(li)
		if tr == nil {
			continue
		}
		capBytes := tr.CountIn(spec.Warmup, spec.Duration) * packet.MTU
		if minCapBytes < 0 || capBytes < minCapBytes {
			minCapBytes = capBytes
			minIdx = li
		}
	}
	if minCapBytes <= 0 {
		return
	}
	var delivered int64
	for f := range res.Flows {
		if traverses(f, minIdx) {
			delivered += res.Flows[f].Bytes
		}
	}
	for w := range res.Workloads {
		if wtraverses(w, minIdx) {
			delivered += res.Workloads[w].Bytes
		}
	}
	res.Utilization = metrics.Utilization(delivered, minCapBytes)
}

// flowRoute is one flow's resolved data and ACK edge sequences over the
// topology graph.
type flowRoute struct{ data, ack []int }

// wireFlows constructs every flow's algorithm, endpoint and receiver and
// installs its routes, attaching the per-flow metrics hooks. It is the
// part of scenario execution the chain and mesh compilers share: by the
// time it runs, a flow is just a pair of edge sequences.
//
// On sharded graphs the endpoint lives on the data route's origin shard
// and the receiver on its terminal shard (they inject packets
// synchronously into those junctions), and the pooled/adversary
// recorders are not touched per packet — poolShardedMetrics rebuilds
// them from the per-flow recorders after the run.
func wireFlows(g *topo.Graph, spec *Spec, res *Result, pooled *metrics.DelayRecorder, routes []flowRoute) error {
	sharded := g.Sharded()
	res.Flows = make([]FlowResult, len(spec.Flows))
	for i := range spec.Flows {
		fs := &spec.Flows[i]
		alg, err := cc.New(fs.Scheme)
		if err != nil {
			return err
		}
		if fs.Mutate != nil {
			fs.Mutate(alg)
		}
		switch fs.Misbehave {
		case "":
		case "greedy":
			alg = cc.NewGreedy(alg)
		default:
			return fmt.Errorf("exp: flow %d: unknown Misbehave %q (recognized: \"greedy\")", i, fs.Misbehave)
		}
		fr := &res.Flows[i]
		fr.Scheme = fs.Scheme
		fr.Algorithm = alg

		flowRTT := fs.RTT
		if flowRTT <= 0 {
			flowRTT = spec.RTT
		}

		// Placement: endpoint with the data route's origin junction,
		// receiver with its terminal junction. Unsharded graphs collapse
		// all of this to the one simulator.
		if sharded && len(routes[i].data) == 0 {
			return fmt.Errorf("exp: flow %d: empty data route on a sharded graph", i)
		}
		epSim, recvSim := g.S, g.S
		epShard, recvShard := 0, 0
		if sharded {
			origin := g.Edge(routes[i].data[0]).From.ID
			last := g.Edge(routes[i].data[len(routes[i].data)-1]).To.ID
			epSim, recvSim = g.SimFor(origin), g.SimFor(last)
			epShard, recvShard = g.ShardOf(origin), g.ShardOf(last)
		}

		ep := cc.NewEndpoint(epSim, i, nil, alg)
		if r := g.Recorder(); r != nil {
			ep.SetObs(r, int32(i))
		}
		ep.Src = fs.Source
		if fs.App != nil {
			if fs.Source != nil {
				return fmt.Errorf("exp: flow %d: App and Source are mutually exclusive (the app owns the source)", i)
			}
			a, err := buildApp(epSim, ep, fs.App, spec.Warmup)
			if err != nil {
				return fmt.Errorf("exp: flow %d: %v", i, err)
			}
			fr.App = a
			epSim.At(fs.Start, func() { a.Start(epSim.Now()) })
		}
		fr.Endpoint = ep
		// The ACK route starts at the receiver's junction and terminates
		// at the endpoint, so its injection/terminal shards are the
		// receiver's and endpoint's respectively.
		var ackEntry packet.Node
		if sharded {
			ackEntry, err = g.RouteFlowAt(i, true, routes[i].ack, flowRTT/2, ep, epShard, recvShard)
		} else {
			ackEntry, err = g.RouteFlow(i, true, routes[i].ack, flowRTT/2, ep)
		}
		if err != nil {
			return err
		}
		recv := netem.NewReceiver(recvSim, i, ackEntry)
		start, warm, flowID := fs.Start, spec.Warmup, i
		recv.OnData = func(now sim.Time, p *packet.Packet) {
			if now < warm || now < start {
				return
			}
			fr.Bytes += int64(p.Size)
			d := now - p.SentAt
			fr.Delay.Add(d)
			fr.QDelay.Add(p.QueueDelay)
			if !sharded {
				pooled.Add(d)
				if res.adv != nil {
					res.adv.addDelay(flowID, d)
				}
			}
		}
		var dataEntry packet.Node
		if sharded {
			dataEntry, err = g.RouteFlowAt(i, false, routes[i].data, flowRTT/2, recv, recvShard, epShard)
		} else {
			dataEntry, err = g.RouteFlow(i, false, routes[i].data, flowRTT/2, recv)
		}
		if err != nil {
			return err
		}
		ep.Out = dataEntry

		epSim.At(fs.Start, ep.Start)
		if fs.Stop > 0 {
			epSim.At(fs.Stop, ep.Stop)
		}
		if spec.Sample > 0 {
			counter := &metrics.RateCounter{}
			prev := recv.OnData
			recv.OnData = func(now sim.Time, p *packet.Packet) {
				counter.Add(p.Size)
				if prev != nil {
					prev(now, p)
				}
			}
			fr.Tput = metrics.NewTimeseries(recvSim, spec.Sample, spec.Duration, func(now sim.Time) float64 {
				return counter.SampleBps(now) / 1e6
			})
		}
	}
	return nil
}

// runAndMeasure attaches the scenario-wide time series, runs the
// simulation to spec.Duration and finalizes the per-flow counters.
// firstQ/firstCap describe the scenario's leading bottleneck for the
// standing-queue-delay series; they may be nil when the topology has no
// bottleneck at all (an all-wire mesh). Sharded graphs run under the
// coordinator and pool their run-wide delay recorders from the per-flow
// ones afterwards (checkShardable guarantees no time series here).
func runAndMeasure(g *topo.Graph, spec *Spec, res *Result, pooled *metrics.DelayRecorder, firstQ qdisc.Qdisc, firstCap func(now sim.Time) float64) {
	s := g.S
	if spec.Sample > 0 && firstQ != nil {
		res.QueueDelayTS = metrics.NewTimeseries(s, spec.Sample, spec.Duration, func(now sim.Time) float64 {
			mu := firstCap(now)
			if mu <= 0 {
				return 0
			}
			return float64(firstQ.Bytes()) * 8 / mu * 1000 // ms
		})
		if dq, ok := firstQ.(*sched.DualQueue); ok {
			res.WeightTS = metrics.NewTimeseries(s, spec.Sample, spec.Duration, func(now sim.Time) float64 {
				return dq.WeightABC()
			})
		}
	}

	if spec.Sample > 0 && spec.Probe != nil {
		s.Every(spec.Sample, func() bool {
			if s.Now() > spec.Duration {
				return false
			}
			spec.Probe(s.Now(), res)
			return true
		})
	}

	sampler := scheduleMetrics(g, spec, res)

	if c := g.Coordinator(); c != nil {
		c.Run(spec.Duration)
	} else {
		s.RunUntil(spec.Duration)
	}
	if sampler != nil {
		sampler.sample(spec.Duration)
	}

	// Per-flow throughput over each flow's measured window.
	for i := range res.Flows {
		fr := &res.Flows[i]
		if fr.App != nil {
			// Flush time-based application accounting (playback buffers)
			// before the metrics are read.
			fr.App.Finish(spec.Duration)
		}
		fs := spec.Flows[i]
		from := fs.Start
		if from < spec.Warmup {
			from = spec.Warmup
		}
		to := fs.Stop
		if to == 0 || to > spec.Duration {
			to = spec.Duration
		}
		if to > from {
			fr.TputMbps = float64(fr.Bytes) * 8 / (to - from).Seconds() / 1e6
		}
		fr.Lost = fr.Endpoint.LostPackets
		fr.Retx = fr.Endpoint.RetxPackets
	}
	if g.Sharded() {
		poolShardedMetrics(res, pooled)
	}
	res.Drops = g.UnroutedDrops()
	res.ImpairDrops = g.ImpairDrops()
	res.LinkDownDrops = g.DownDrops()
	res.AdvDrops = g.AdversaryDrops()
	res.AdvDelayed = g.AdversaryDelayed()
	res.AdvStripped = g.AdversaryStripped()
	collectBackgrounds(res)
	if res.adv != nil {
		res.Adversary = res.adv.report(spec, res)
	}
}
