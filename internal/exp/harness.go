// Package exp contains one runner per table/figure of the paper's
// evaluation, built on a generic scenario harness: flows of any scheme
// traverse one or more bottleneck links (trace-driven, rate-driven or
// Wi-Fi modelled) with the qdisc matching the scheme under test, and the
// harness reports the paper's metrics (utilization, throughput, mean and
// p95 per-packet delay, fairness).
package exp

import (
	"fmt"
	"math/rand"

	"abc/internal/abc"
	"abc/internal/cc"
	"abc/internal/explicit"
	"abc/internal/metrics"
	"abc/internal/netem"
	"abc/internal/packet"
	"abc/internal/qdisc"
	"abc/internal/sched"
	"abc/internal/sim"
	"abc/internal/trace"
)

// Schemes lists every congestion-control scheme in the paper's
// evaluation, in the order Fig. 9 reports them.
var Schemes = []string{
	"ABC", "XCP", "XCPw", "Cubic+Codel", "Cubic+PIE",
	"Copa", "Sprout", "Vegas", "Verus", "BBR", "PCC", "Cubic",
}

// ExplicitSchemes is the Appendix D comparison set.
var ExplicitSchemes = []string{"ABC", "XCP", "XCPw", "VCP", "RCP"}

// NewAlgorithm constructs the sender algorithm for a scheme name.
func NewAlgorithm(scheme string) (cc.Algorithm, error) {
	switch scheme {
	case "ABC":
		return abcsender(), nil
	case "ABC-proxied":
		return abc.NewProxiedSender(), nil
	case "Cubic", "Cubic+Codel", "Cubic+PIE":
		return cc.NewCubic(), nil
	case "Reno":
		return cc.NewReno(), nil
	case "Vegas":
		return cc.NewVegas(), nil
	case "Copa":
		return cc.NewCopa(), nil
	case "BBR":
		return cc.NewBBR(), nil
	case "PCC":
		return cc.NewVivace(), nil
	case "Sprout":
		return cc.NewSprout(), nil
	case "Verus":
		return cc.NewVerus(), nil
	case "XCP":
		return explicit.NewXCPSender(false), nil
	case "XCPw":
		return explicit.NewXCPSender(true), nil
	case "RCP":
		return explicit.NewRCPSender(), nil
	case "VCP":
		return explicit.NewVCPSender(), nil
	}
	return nil, fmt.Errorf("exp: unknown scheme %q", scheme)
}

func abcsender() *abc.Sender { return abc.NewSender() }

// QdiscSpec selects the bottleneck discipline for a link.
type QdiscSpec struct {
	// Kind: "auto" (derive from the first flow's scheme), "droptail",
	// "codel", "pie", "red", "abc", "xcp", "xcpw", "rcp", "vcp",
	// "dual-maxmin", "dual-zombie".
	Kind string
	// Buffer is the queue limit in packets (default 250, the paper's
	// emulation buffer).
	Buffer int
	// ABCDelayThreshold overrides dt for ABC routers (Fig. 10 sweeps
	// 20/60/100 ms).
	ABCDelayThreshold sim.Time
	// ABCFeedback selects dequeue- vs enqueue-rate feedback (Fig. 2).
	ABCFeedback abc.FeedbackMode
	// ABCConfig, when non-nil, fully overrides the ABC router
	// configuration (ablation sweeps); Buffer still applies if
	// ABCConfig.Limit is zero.
	ABCConfig *abc.RouterConfig
}

// qdiscKindFor maps a scheme to its bottleneck discipline.
func qdiscKindFor(scheme string) string {
	switch scheme {
	case "ABC":
		return "abc"
	case "ABC-proxied":
		return "abc-proxied"
	case "Cubic+Codel":
		return "codel"
	case "Cubic+PIE":
		return "pie"
	case "XCP":
		return "xcp"
	case "XCPw":
		return "xcpw"
	case "RCP":
		return "rcp"
	case "VCP":
		return "vcp"
	default:
		return "droptail"
	}
}

// buildQdisc constructs the discipline named by spec.
func buildQdisc(spec QdiscSpec, rng *rand.Rand) (qdisc.Qdisc, error) {
	buf := spec.Buffer
	if buf <= 0 {
		buf = 250
	}
	switch spec.Kind {
	case "droptail", "":
		return qdisc.NewDropTail(buf), nil
	case "codel":
		return qdisc.NewCoDel(buf, false), nil
	case "pie":
		return qdisc.NewPIE(buf, false, rng), nil
	case "red":
		return qdisc.NewRED(buf, false, rng), nil
	case "abc":
		cfg := abc.DefaultRouterConfig()
		if spec.ABCConfig != nil {
			cfg = *spec.ABCConfig
		}
		if cfg.Limit == 0 {
			cfg.Limit = buf
		}
		if spec.ABCDelayThreshold > 0 {
			cfg.DelayThreshold = spec.ABCDelayThreshold
		}
		if spec.ABCConfig == nil {
			cfg.Feedback = spec.ABCFeedback
		}
		return abc.NewRouter(cfg), nil
	case "abc-proxied":
		cfg := abc.DefaultRouterConfig()
		cfg.Limit = buf
		if spec.ABCDelayThreshold > 0 {
			cfg.DelayThreshold = spec.ABCDelayThreshold
		}
		cfg.Feedback = spec.ABCFeedback
		return abc.NewProxiedRouter(cfg), nil
	case "xcp":
		cfg := explicit.DefaultXCPConfig()
		cfg.Limit = buf
		return explicit.NewXCPRouter(cfg), nil
	case "xcpw":
		cfg := explicit.DefaultXCPConfig()
		cfg.Limit = buf
		cfg.PerPacket = true
		return explicit.NewXCPRouter(cfg), nil
	case "rcp":
		cfg := explicit.DefaultRCPConfig()
		cfg.Limit = buf
		return explicit.NewRCPRouter(cfg), nil
	case "vcp":
		cfg := explicit.DefaultVCPConfig()
		cfg.Limit = buf
		return explicit.NewVCPRouter(cfg), nil
	case "dual-maxmin", "dual-zombie":
		cfg := sched.DefaultConfig()
		cfg.ABCLimit, cfg.OtherLimit = buf, buf
		if spec.ABCDelayThreshold > 0 {
			cfg.Router.DelayThreshold = spec.ABCDelayThreshold
		}
		if spec.Kind == "dual-zombie" {
			cfg.Policy = sched.ZombieList
		}
		return sched.NewDualQueue(cfg), nil
	}
	return nil, fmt.Errorf("exp: unknown qdisc kind %q", spec.Kind)
}

// LinkSpec describes one bottleneck hop. Exactly one of Trace and Rate
// must be set.
type LinkSpec struct {
	Trace *trace.Trace
	Rate  netem.RateFunc
	Qdisc QdiscSpec
	// Lookahead enables the PK-ABC future-capacity oracle on trace
	// links (§6.6).
	Lookahead sim.Time
}

// FlowSpec describes one flow.
type FlowSpec struct {
	Scheme string
	// Start/Stop bound the flow's lifetime; Stop 0 means run to the end.
	Start, Stop sim.Time
	// Source is the data source; nil means backlogged.
	Source cc.Source
	// EnterAt is the index of the first link this flow traverses
	// (cross-traffic flows can skip upstream links).
	EnterAt int
	// Mutate, if set, adjusts the constructed algorithm before the run
	// (ablation switches such as abc.Sender.DisableAI).
	Mutate func(alg cc.Algorithm)
}

// Spec is a complete scenario.
type Spec struct {
	Seed     int64
	Duration sim.Time
	// Warmup excludes the initial transient from all metrics.
	Warmup sim.Time
	// RTT is the round-trip propagation delay (paper default 100 ms).
	RTT   sim.Time
	Links []LinkSpec
	Flows []FlowSpec
	// Sample enables time-series collection at this period (0 = off).
	Sample sim.Time
	// Probe, when set with Sample > 0, is called once per sample period
	// with the partially built result, letting experiments record
	// custom series (e.g. Fig. 6's wabc/wcubic windows).
	Probe func(now sim.Time, r *Result)
}

// FlowResult reports one flow's measurements over [Warmup, Duration].
type FlowResult struct {
	Scheme    string
	Bytes     int64
	TputMbps  float64
	Delay     metrics.DelayRecorder // one-way per-packet delay, ms
	QDelay    metrics.DelayRecorder // accumulated queuing delay, ms
	Lost      int64
	Retx      int64
	Tput      *metrics.Timeseries // when sampling
	Endpoint  *cc.Endpoint
	Algorithm cc.Algorithm
}

// Result is a completed scenario.
type Result struct {
	Spec        Spec
	Flows       []FlowResult
	Utilization float64
	// QueueDelayTS samples the first link's standing queue delay when
	// sampling is enabled.
	QueueDelayTS *metrics.Timeseries
	// WeightTS samples a dual queue's ABC weight when present.
	WeightTS *metrics.Timeseries
	// Qdiscs exposes the built bottleneck disciplines, first hop first.
	Qdiscs []qdisc.Qdisc
}

// AggTputMbps sums flow throughputs.
func (r *Result) AggTputMbps() float64 {
	var t float64
	for i := range r.Flows {
		t += r.Flows[i].TputMbps
	}
	return t
}

// MeanDelayMs averages flow mean delays weighted by sample count.
func (r *Result) MeanDelayMs() float64 {
	var sum float64
	var n int
	for i := range r.Flows {
		c := r.Flows[i].Delay.Count()
		sum += r.Flows[i].Delay.Mean() * float64(c)
		n += c
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Summary condenses a result for scatter/bar figures.
func (r *Result) Summary(scheme string, pooled *metrics.DelayRecorder) metrics.Summary {
	return metrics.Summary{
		Scheme:      scheme,
		Utilization: r.Utilization,
		TputMbps:    r.AggTputMbps(),
		MeanMs:      pooled.Mean(),
		P95Ms:       pooled.P95(),
	}
}

// Run executes the scenario and returns its result along with the pooled
// per-packet delay recorder used for the paper's delay metrics.
func Run(spec Spec) (*Result, *metrics.DelayRecorder, error) {
	if spec.Duration <= 0 {
		spec.Duration = 60 * sim.Second
	}
	if spec.RTT <= 0 {
		spec.RTT = 100 * sim.Millisecond
	}
	if spec.Warmup <= 0 {
		spec.Warmup = 4 * sim.Second
	}
	if len(spec.Links) == 0 {
		return nil, nil, fmt.Errorf("exp: no links in spec")
	}
	if len(spec.Flows) == 0 {
		return nil, nil, fmt.Errorf("exp: no flows in spec")
	}
	s := sim.New(spec.Seed)
	res := &Result{Spec: spec}
	pooled := &metrics.DelayRecorder{}

	// Receivers live behind a demux at the end of the path; ACKs return
	// over a dedicated wire (the paper's emulation carries ACKs on the
	// reverse direction, which is not the bottleneck in these setups).
	dataDemux := netem.NewDemux()
	ackDemux := netem.NewDemux()
	ackWire := netem.NewWire(s, spec.RTT/2, ackDemux)

	// Build links back to front.
	var entry []packet.Node // entry node for each link index
	next := packet.Node(netem.NewWire(s, spec.RTT/2, dataDemux))
	for i := len(spec.Links) - 1; i >= 0; i-- {
		ls := spec.Links[i]
		q := ls.Qdisc
		if q.Kind == "auto" || q.Kind == "" {
			q.Kind = qdiscKindFor(spec.Flows[0].Scheme)
		}
		qd, err := buildQdisc(q, s.Rand())
		if err != nil {
			return nil, nil, err
		}
		res.Qdiscs = append([]qdisc.Qdisc{qd}, res.Qdiscs...)
		switch {
		case ls.Trace != nil:
			l := netem.NewTraceLink(s, ls.Trace, qd, next)
			l.Lookahead = ls.Lookahead
			next = l
		case ls.Rate != nil:
			next = netem.NewRateLink(s, ls.Rate, qd, next)
		default:
			return nil, nil, fmt.Errorf("exp: link %d has neither trace nor rate", i)
		}
		entry = append([]packet.Node{next}, entry...)
	}

	// Flows.
	res.Flows = make([]FlowResult, len(spec.Flows))
	for i, fs := range spec.Flows {
		alg, err := NewAlgorithm(fs.Scheme)
		if err != nil {
			return nil, nil, err
		}
		if fs.Mutate != nil {
			fs.Mutate(alg)
		}
		fr := &res.Flows[i]
		fr.Scheme = fs.Scheme
		fr.Algorithm = alg
		enter := fs.EnterAt
		if enter < 0 || enter >= len(entry) {
			enter = 0
		}
		ep := cc.NewEndpoint(s, i, entry[enter], alg)
		ep.Src = fs.Source
		fr.Endpoint = ep
		ackDemux.Route(i, ep)

		stop := fs.Stop
		if stop == 0 || stop > spec.Duration {
			stop = spec.Duration
		}
		recv := netem.NewReceiver(s, i, ackWire)
		start, warm := fs.Start, spec.Warmup
		recv.OnData = func(now sim.Time, p *packet.Packet) {
			if now < warm || now < start {
				return
			}
			fr.Bytes += int64(p.Size)
			d := now - p.SentAt
			fr.Delay.Add(d)
			fr.QDelay.Add(p.QueueDelay)
			pooled.Add(d)
		}
		dataDemux.Route(i, recv)

		s.At(fs.Start, ep.Start)
		if fs.Stop > 0 {
			s.At(fs.Stop, ep.Stop)
		}
		if spec.Sample > 0 {
			counter := &metrics.RateCounter{}
			prev := recv.OnData
			recv.OnData = func(now sim.Time, p *packet.Packet) {
				counter.Add(p.Size)
				if prev != nil {
					prev(now, p)
				}
			}
			fr.Tput = metrics.NewTimeseries(s, spec.Sample, spec.Duration, func(now sim.Time) float64 {
				return counter.SampleBps(now) / 1e6
			})
		}
	}

	// Queue-delay time series on the first link.
	if spec.Sample > 0 {
		firstQ := res.Qdiscs[0]
		capAt := func(now sim.Time) float64 {
			if spec.Links[0].Trace != nil {
				return spec.Links[0].Trace.CapacityBps(now, 100*sim.Millisecond)
			}
			return spec.Links[0].Rate(now)
		}
		res.QueueDelayTS = metrics.NewTimeseries(s, spec.Sample, spec.Duration, func(now sim.Time) float64 {
			mu := capAt(now)
			if mu <= 0 {
				return 0
			}
			return float64(firstQ.Bytes()) * 8 / mu * 1000 // ms
		})
		if dq, ok := res.Qdiscs[0].(*sched.DualQueue); ok {
			res.WeightTS = metrics.NewTimeseries(s, spec.Sample, spec.Duration, func(now sim.Time) float64 {
				return dq.WeightABC()
			})
		}
	}

	if spec.Sample > 0 && spec.Probe != nil {
		s.Every(spec.Sample, func() bool {
			if s.Now() > spec.Duration {
				return false
			}
			spec.Probe(s.Now(), res)
			return true
		})
	}

	s.RunUntil(spec.Duration)

	// Per-flow throughput over each flow's measured window.
	for i := range res.Flows {
		fr := &res.Flows[i]
		fs := spec.Flows[i]
		from := fs.Start
		if from < spec.Warmup {
			from = spec.Warmup
		}
		to := fs.Stop
		if to == 0 || to > spec.Duration {
			to = spec.Duration
		}
		if to > from {
			fr.TputMbps = float64(fr.Bytes) * 8 / (to - from).Seconds() / 1e6
		}
		fr.Lost = fr.Endpoint.LostPackets
		fr.Retx = fr.Endpoint.RetxPackets
	}

	// Utilization against the tightest trace link over the measurement
	// window (the paper reports utilization of the emulated cell link).
	var minCapBytes int64 = -1
	for _, ls := range spec.Links {
		if ls.Trace == nil {
			continue
		}
		capBytes := ls.Trace.CountIn(spec.Warmup, spec.Duration) * packet.MTU
		if minCapBytes < 0 || capBytes < minCapBytes {
			minCapBytes = capBytes
		}
	}
	if minCapBytes > 0 {
		var delivered int64
		for i := range res.Flows {
			delivered += res.Flows[i].Bytes
		}
		res.Utilization = metrics.Utilization(delivered, minCapBytes)
	}
	return res, pooled, nil
}
