package exp

import (
	"reflect"
	"strings"
	"testing"

	"abc/internal/abc"
	"abc/internal/netem"
	"abc/internal/sim"
)

// TestMeshSharedJunctionFairness runs the shared-junction mesh: two
// disjoint two-hop paths through one junction plus a crossing flow. The
// two inA flows split 16 Mbit/s and the inB flow owns 8 Mbit/s, so every
// flow should land near 8 Mbit/s; the disjoint paths must not interfere
// at the junction (routing is per flow, junctions have no queues).
func TestMeshSharedJunctionFairness(t *testing.T) {
	out, err := MeshSharedJunction([]string{"ABC"}, 10*sim.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := out["ABC"]
	if r.Drops != 0 {
		t.Fatalf("unrouted drops on a validated mesh: %d", r.Drops)
	}
	if len(r.Flows) != 3 {
		t.Fatalf("got %d flows, want 3", len(r.Flows))
	}
	for _, f := range r.Flows {
		t.Logf("%-10s tput=%.2f Mbit/s mean=%.1f ms", f.Path, f.TputMbps, f.MeanMs)
		if f.TputMbps < 5.5 || f.TputMbps > 10.5 {
			t.Errorf("flow %s tput %.2f Mbit/s outside the ~8 Mbit/s fair share", f.Path, f.TputMbps)
		}
	}
}

// TestMeshRejectsMalformedRoutes exercises the up-front route validation:
// unknown edges, non-contiguous sequences and loops are Spec errors.
func TestMeshRejectsMalformedRoutes(t *testing.T) {
	base := func() Spec {
		s := meshJunctionSpec("ABC", 2*sim.Second, 1)
		return s
	}
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"unknown edge", func(s *Spec) { s.Flows[0].Path = []string{"nope"} }, "unknown edge"},
		{"not contiguous", func(s *Spec) { s.Flows[0].Path = []string{"outA", "inA"} }, "not contiguous"},
		{"loop", func(s *Spec) {
			s.Edges = append(s.Edges, EdgeSpec{Name: "back", From: "dstA", To: "hub",
				Link: LinkSpec{Kind: "wire"}})
			s.Edges = append(s.Edges, EdgeSpec{Name: "fwd", From: "hub", To: "dstA",
				Link: LinkSpec{Kind: "wire"}})
			s.Flows[0].Path = []string{"inA", "outA", "back", "fwd"}
		}, "loops back"},
		{"chain fields on mesh flow", func(s *Spec) { s.Flows[0].EnterAt = 1 }, "chain fields"},
		{"disconnected ack path", func(s *Spec) {
			// Flow 0's data ends at dstA; an ACK route starting on the
			// hub→dstB edge would teleport ACKs from dstA to hub.
			s.Flows[0].AckPath = []string{"outB"}
		}, "ack path starts at"},
		{"mesh flow without path", func(s *Spec) { s.Flows[0].Path = nil }, "need a Path"},
		{"wire with qdisc", func(s *Spec) {
			s.Edges[2].Link.Qdisc = QdiscSpec{Kind: "droptail"}
		}, "no qdisc"},
		{"wire with bottleneck", func(s *Spec) {
			s.Edges[2].Link.Rate = netem.ConstRate(1e6)
		}, "no bottleneck"},
	}
	for _, tc := range cases {
		spec := base()
		tc.mut(&spec)
		_, _, err := Run(spec)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got err %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestMarkedUplinkDemotesEchoes is the reverse-path marking contract: an
// ABC router on the edge carrying a downlink flow's ACKs demotes echoed
// accelerates when the uplink is congested, and the sender counts them
// as reverse brakes — feedback reflects the full round trip, not an
// assumed lossless reverse channel.
func TestMarkedUplinkDemotesEchoes(t *testing.T) {
	out, err := MarkedUplink([]string{"ABC"}, 2, 12*sim.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := out["ABC"]
	t.Logf("down tput=%.2f Mbit/s p95=%.0f ms reverseBrakes=%d demoted=%d kept=%d up=%.2f Mbit/s",
		r.Down.TputMbps, r.Down.P95Ms, r.ReverseBrakes, r.EchoDemoted, r.EchoKept, r.UpTputMbps)
	if r.Down.TputMbps <= 0 {
		t.Fatal("downlink made no progress")
	}
	if r.EchoDemoted == 0 {
		t.Error("uplink ABC router never demoted an echoed accelerate")
	}
	if r.ReverseBrakes == 0 {
		t.Error("sender never saw a reverse-path demotion")
	}
	if r.ReverseBrakes != r.EchoDemoted {
		// Every demotion the router performs must arrive at the sender as
		// a reverse brake (the reverse wire is lossless in this setup).
		t.Errorf("reverse brakes %d != router demotions %d", r.ReverseBrakes, r.EchoDemoted)
	}
}

// TestMarkedUplinkDeterministic reruns the marked-uplink scenario and
// requires identical results: mesh runs must be a pure function of the
// spec, like chain runs.
func TestMarkedUplinkDeterministic(t *testing.T) {
	a, err := MarkedUplink([]string{"ABC"}, 2, 6*sim.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarkedUplink([]string{"ABC"}, 2, 6*sim.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("mesh rerun diverged:\n%+v\n%+v", a, b)
	}
}

// TestTwoABCRouterChainPacesToTighterLink is the Theorem 3.1 setting: a
// chain of two ABC routers with different capacities. The accel fraction
// a sender sees is the minimum of f(t) along the path — marks are only
// ever demoted — so the flow must pace to the tighter link no matter
// which position it occupies, and the tighter router must be the one
// demoting.
func TestTwoABCRouterChainPacesToTighterLink(t *testing.T) {
	for name, rates := range map[string][2]float64{
		"tight last":  {20e6, 10e6},
		"tight first": {10e6, 20e6},
	} {
		res, _, err := Run(Spec{
			Seed:     1,
			Duration: 12 * sim.Second,
			RTT:      60 * sim.Millisecond,
			Links: []LinkSpec{
				{Rate: netem.ConstRate(rates[0]), Qdisc: QdiscSpec{Kind: "abc"}},
				{Rate: netem.ConstRate(rates[1]), Qdisc: QdiscSpec{Kind: "abc"}},
			},
			Flows: []FlowSpec{{Scheme: "ABC"}},
		})
		if err != nil {
			t.Fatal(err)
		}
		tput := res.Flows[0].TputMbps
		t.Logf("%s: tput=%.2f Mbit/s", name, tput)
		if tput > 10.5 {
			t.Errorf("%s: %.2f Mbit/s exceeds the 10 Mbit/s tighter link", name, tput)
		}
		if tput < 8 {
			t.Errorf("%s: %.2f Mbit/s leaves the tighter link badly underutilized", name, tput)
		}
		tight := 1
		if rates[0] < rates[1] {
			tight = 0
		}
		r := res.Qdiscs[tight].(*abc.Router)
		if r.BrakeMarked == 0 {
			t.Errorf("%s: tighter router never demoted a data mark", name)
		}
	}
}
