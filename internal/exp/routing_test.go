package exp

import (
	"strings"
	"testing"

	"abc/internal/sim"
)

// wantRunError asserts Run rejects the spec with a message containing
// frag — the regression shape for the silent-misconfiguration sweep:
// each formerly-ignored knob must now fail loudly.
func wantRunError(t *testing.T, spec Spec, frag string) {
	t.Helper()
	_, _, err := Run(spec)
	if err == nil || !strings.Contains(err.Error(), frag) {
		t.Fatalf("Run error = %v, want message containing %q", err, frag)
	}
}

// TestProbeWithoutSampleRejected: a Probe with Sample unset used to be
// silently ignored (the probe never fired); it is now a Spec error.
func TestProbeWithoutSampleRejected(t *testing.T) {
	spec := conservationSpec(1, 200*sim.Millisecond, sim.Second)
	spec.Probe = func(now sim.Time, r *Result) {}
	wantRunError(t, spec, "Probe set without Sample")

	spec.Sample = 100 * sim.Millisecond
	if _, _, err := Run(spec); err != nil {
		t.Fatalf("Probe with Sample rejected: %v", err)
	}
}

// TestNegativeSampleRejected: a negative Sample would arm timers in the
// past; it must be a loud Spec error, not a silent no-op.
func TestNegativeSampleRejected(t *testing.T) {
	spec := conservationSpec(1, 200*sim.Millisecond, sim.Second)
	spec.Sample = -sim.Millisecond
	wantRunError(t, spec, "negative Sample")
}

// TestScenarioNegativeSampleMs: the JSON front door enforces the same
// contract at compile time.
func TestScenarioNegativeSampleMs(t *testing.T) {
	sc, err := ParseScenario([]byte(`{"links":[{"rate_mbps":8}],"flows":[{"scheme":"ABC"}],"sample_ms":-5}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Compile(); err == nil || !strings.Contains(err.Error(), "sample_ms") {
		t.Fatalf("Compile error = %v, want negative sample_ms rejection", err)
	}
}

// TestRoutingSpecValidation sweeps the Routing clause's misconfiguration
// space: every malformed combination is a Spec error with a message
// naming the offending knob.
func TestRoutingSpecValidation(t *testing.T) {
	base := func() Spec { return conservationSpec(1, 200*sim.Millisecond, sim.Second) }

	spec := base()
	spec.Routing = &RoutingSpec{Policy: "shortest", K: 3}
	wantRunError(t, spec, "silently ignore K=3")

	spec = base()
	spec.Routing = &RoutingSpec{K: 2} // default policy is shortest
	wantRunError(t, spec, "kfailover knob")

	spec = base()
	spec.Routing = &RoutingSpec{Policy: "ospf"}
	wantRunError(t, spec, "unknown policy")

	spec = base()
	spec.Routing = &RoutingSpec{Policy: "kfailover", K: -1}
	wantRunError(t, spec, "negative K")

	spec = base()
	spec.Routing = &RoutingSpec{RecomputeLatency: -sim.Millisecond}
	wantRunError(t, spec, "negative RecomputeLatency")

	spec = base()
	spec.Routing = &RoutingSpec{Drain: -sim.Millisecond}
	wantRunError(t, spec, "negative Drain")

	spec = base()
	spec.Routing = &RoutingSpec{Flows: []int{7}}
	wantRunError(t, spec, "out of range")

	spec = base()
	spec.Routing = &RoutingSpec{Flows: []int{0, 0}}
	wantRunError(t, spec, "listed twice")

	spec = base()
	spec.Routing = &RoutingSpec{}
	if _, _, err := Run(spec); err != nil {
		t.Fatalf("valid default Routing clause rejected: %v", err)
	}
}

// TestRoutingRejectedWhenSharded: route computation is sequential-only;
// a sharded spec with a Routing clause must fail loudly.
func TestRoutingRejectedWhenSharded(t *testing.T) {
	spec := conservationSpec(1, 200*sim.Millisecond, sim.Second)
	spec.Shards = 2
	spec.Routing = &RoutingSpec{}
	wantRunError(t, spec, "Routing")
}

// TestScenarioRoutingClause: the JSON routing clause compiles into a
// RoutingSpec, applying defaults and rejecting malformed knobs at
// compile time rather than mid-run.
func TestScenarioRoutingClause(t *testing.T) {
	const mesh = `{"nodes":["a","b","c"],
		"edges":[{"name":"e1","from":"a","to":"b","kind":"rate","rate_mbps":8},
		         {"name":"e2","from":"b","to":"c","kind":"rate","rate_mbps":8}],
		"flows":[{"scheme":"ABC","path":["e1","e2"]}],`

	sc, err := ParseScenario([]byte(mesh + `"routing":{"policy":"kfailover","k":1,"recompute_ms":20,"drain_ms":50,"flows":[0]}}`))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	rs := spec.Routing
	if rs == nil || rs.Policy != "kfailover" || rs.K != 1 ||
		rs.RecomputeLatency != 20*sim.Millisecond || rs.Drain != 50*sim.Millisecond ||
		len(rs.Flows) != 1 || rs.Flows[0] != 0 {
		t.Fatalf("compiled RoutingSpec = %+v, want the scenario clause verbatim", rs)
	}

	for _, bad := range []struct{ clause, frag string }{
		{`"routing":{"policy":"shortest","k":2}`, "kfailover knob"},
		{`"routing":{"policy":"rip"}`, "unknown policy"},
		{`"routing":{"recompute_ms":-1}`, "recompute_ms"},
		{`"routing":{"drain_ms":-1}`, "drain_ms"},
		{`"routing":{"flows":[3]}`, "out of range"},
	} {
		sc, err := ParseScenario([]byte(mesh + bad.clause + `}`))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sc.Compile(); err == nil || !strings.Contains(err.Error(), bad.frag) {
			t.Fatalf("clause %s: Compile error = %v, want message containing %q", bad.clause, err, bad.frag)
		}
	}
}

// TestAutoRouteDriver pins the autoroute experiment's emergent behavior:
// the mid-run outage fails the managed flow over (data and ACK), the
// recovery fails it back, and the failover is make-before-break.
func TestAutoRouteDriver(t *testing.T) {
	rows, err := AutoRoute([]string{"ABC"}, 8*sim.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := rows["ABC"]
	if !ok {
		t.Fatalf("no ABC row in %v", rows)
	}
	if len(r.RouteChanges) != 4 {
		t.Fatalf("RouteChanges = %d, want 4 (data+ack failover, data+ack failback): %+v", len(r.RouteChanges), r.RouteChanges)
	}
	if r.RouteChanges[0].Path[0] != "cell2" {
		t.Fatalf("failover data path = %v, want cell2 first hop", r.RouteChanges[0].Path)
	}
	if r.StrandedDrops != 0 {
		t.Fatalf("StrandedDrops = %d, want 0 (drain window covers the failover)", r.StrandedDrops)
	}
	if r.PostMbps <= 0 {
		t.Fatalf("PostMbps = %.2f, want recovery after the outage", r.PostMbps)
	}
}

// TestFlapStormDriver: the shortest-path policy absorbs the 20ms blip
// (shorter than its 30ms convergence window) but reacts to the two long
// outages — four route changes, not six.
func TestFlapStormDriver(t *testing.T) {
	rows, err := FlapStorm([]string{"ABC"}, 8*sim.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := rows["ABC"]
	if !ok {
		t.Fatalf("no ABC row in %v", rows)
	}
	if len(r.RouteChanges) != 4 {
		t.Fatalf("RouteChanges = %d, want 4 (blip absorbed by the coalescing window): %+v", len(r.RouteChanges), r.RouteChanges)
	}
}
