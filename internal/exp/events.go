// Timed topology events: a Spec may carry a timeline of mid-run
// mutations — route changes, link rate/delay changes, link outages —
// executed on the simulation clock through the topo.Router API. Both the
// chain and the mesh compiler schedule events through here; chain links
// are addressed by the canonical edge names "fwd<i>" / "rev<i>", mesh
// edges by their declared names. Everything that can be validated
// statically (edge names, flow indices, route well-formedness, target
// link kinds) is validated before the run starts, so a typo'd timeline
// is a Spec error rather than a mid-run surprise.
package exp

import (
	"fmt"
	"strings"

	"abc/internal/netem"
	"abc/internal/sim"
	"abc/internal/topo"
)

// Event kinds.
const (
	// EventReroute atomically swaps a flow's data (or, with Ack, ACK)
	// route onto Path. Packets in flight on abandoned edges drain to the
	// next junction and are counted in Result.Drops unless the junction
	// lies on the new route (topo's conservation contract).
	EventReroute = "reroute"
	// EventSetRate changes a rate link's capacity to RateMbps.
	EventSetRate = "set_rate"
	// EventSetDelay changes an edge's propagation delay to Delay. Only
	// edges built with a positive delay own a delay stage to retune.
	EventSetDelay = "set_delay"
	// EventLinkDown takes an edge down: arrivals are dropped (counted in
	// Result.LinkDownDrops) until a matching link_up.
	EventLinkDown = "link_down"
	// EventLinkUp brings a downed edge back up.
	EventLinkUp = "link_up"
	// EventAttack installs (or retunes — an attack switching victims
	// mid-run is just a second attack event on the same edge) the
	// adversarial stage on an edge.
	EventAttack = "attack"
	// EventClearAttack removes an edge's adversarial stage.
	EventClearAttack = "clear_attack"
)

// EventSpec is one timed mutation of the running topology.
type EventSpec struct {
	// At is when the event fires on the simulation clock.
	At sim.Time
	// Kind is one of the Event* constants.
	Kind string
	// Flow indexes Spec.Flows for reroute events.
	Flow int
	// Ack selects the flow's ACK route instead of its data route.
	Ack bool
	// Path is the reroute's new route: edge names, in order, starting at
	// the flow's existing origin junction.
	Path []string
	// Edge names the target edge for set_rate/set_delay/link_down/link_up.
	Edge string
	// RateMbps is the new capacity for set_rate.
	RateMbps float64
	// Delay is the new propagation delay for set_delay.
	Delay sim.Time
	// Attack is the adversarial stage installed by attack events.
	Attack *topo.Attack
}

// EventResult annotates one executed event in Result.Events.
type EventResult struct {
	AtMs   float64 `json:"at_ms"`
	Kind   string  `json:"kind"`
	Target string  `json:"target"`
}

// scheduleEvents validates the Spec's event timeline against the
// compiled graph and schedules each event on the simulator. edgeID maps
// addressable edge names to graph edge ids. On sharded graphs events
// run as coordinator globals: every shard quiesces to the event time
// before the mutation applies, so a topology change is never observed
// partially by a shard that ran ahead.
func scheduleEvents(s *sim.Simulator, g *topo.Graph, spec *Spec, res *Result, edgeID map[string]int) error {
	if len(spec.Events) == 0 {
		return nil
	}
	rtr := g.Router()
	res.Events = make([]EventResult, 0, len(spec.Events))
	for i := range spec.Events {
		ev := &spec.Events[i]
		where := fmt.Sprintf("exp: events[%d] (%s)", i, ev.Kind)
		if ev.At < 0 {
			return fmt.Errorf("%s: negative time", where)
		}
		apply, target, err := compileEvent(g, rtr, spec, edgeID, ev, where)
		if err != nil {
			return err
		}
		at, kind := ev.At, ev.Kind
		fire := func() {
			apply()
			res.Events = append(res.Events, EventResult{AtMs: at.Millis(), Kind: kind, Target: target})
		}
		if c := g.Coordinator(); c != nil {
			c.GlobalAt(ev.At, fire)
		} else {
			s.At(ev.At, fire)
		}
	}
	return nil
}

// compileEvent validates one event and returns its application closure
// plus the human-readable target annotation.
func compileEvent(g *topo.Graph, rtr *topo.Router, spec *Spec, edgeID map[string]int, ev *EventSpec, where string) (func(), string, error) {
	targetEdge := func() (*topo.Edge, error) {
		// Every edge-targeted kind rejects the reroute fields: a stray
		// field is a typo'd timeline, not something to silently ignore.
		if len(ev.Path) > 0 || ev.Ack || ev.Flow != 0 {
			return nil, fmt.Errorf("%s: flow/ack/path are reroute fields", where)
		}
		if ev.Edge == "" {
			return nil, fmt.Errorf("%s: missing edge name", where)
		}
		id, ok := edgeID[ev.Edge]
		if !ok {
			return nil, fmt.Errorf("%s: unknown edge %q", where, ev.Edge)
		}
		return g.Edge(id), nil
	}
	if ev.Attack != nil && ev.Kind != EventAttack {
		return nil, "", fmt.Errorf("%s: attack is an attack-event field", where)
	}
	switch ev.Kind {
	case EventReroute:
		if ev.Edge != "" || ev.RateMbps != 0 || ev.Delay != 0 {
			return nil, "", fmt.Errorf("%s: edge/rate/delay are not reroute fields", where)
		}
		if ev.Flow < 0 || ev.Flow >= len(spec.Flows) {
			return nil, "", fmt.Errorf("%s: flow %d out of range [0, %d)", where, ev.Flow, len(spec.Flows))
		}
		if len(ev.Path) == 0 {
			return nil, "", fmt.Errorf("%s: missing path", where)
		}
		edges := make([]int, len(ev.Path))
		for j, name := range ev.Path {
			id, ok := edgeID[name]
			if !ok {
				return nil, "", fmt.Errorf("%s: unknown edge %q", where, name)
			}
			edges[j] = id
		}
		// The reroute is fully decidable statically: the origin never
		// changes, so a timeline that validates here cannot fail mid-run.
		if err := rtr.CheckReroute(ev.Flow, ev.Ack, edges); err != nil {
			return nil, "", fmt.Errorf("%s: %v", where, err)
		}
		dir := "data"
		if ev.Ack {
			dir = "ack"
		}
		target := fmt.Sprintf("flow %d %s -> %s", ev.Flow, dir, strings.Join(ev.Path, ">"))
		flow, ack := ev.Flow, ev.Ack
		return func() {
			// CheckReroute passed statically and nothing it depends on
			// changes mid-run, so Reroute cannot fail here.
			if err := rtr.Reroute(flow, ack, edges); err != nil {
				panic(fmt.Sprintf("exp: statically validated reroute failed: %v", err))
			}
		}, target, nil
	case EventSetRate:
		if ev.Delay != 0 {
			return nil, "", fmt.Errorf("%s: delay is a set_delay field", where)
		}
		e, err := targetEdge()
		if err != nil {
			return nil, "", err
		}
		if ev.RateMbps <= 0 {
			return nil, "", fmt.Errorf("%s: needs rate_mbps > 0", where)
		}
		rl, ok := e.Link.(*netem.RateLink)
		if !ok {
			return nil, "", fmt.Errorf("%s: edge %q is not a rate link (kind \"rate\")", where, ev.Edge)
		}
		rate := netem.ConstRate(ev.RateMbps * 1e6)
		target := fmt.Sprintf("edge %s rate %g Mbit/s", ev.Edge, ev.RateMbps)
		return func() { rl.SetRate(rate) }, target, nil
	case EventSetDelay:
		if ev.RateMbps != 0 {
			return nil, "", fmt.Errorf("%s: rate_mbps is a set_rate field", where)
		}
		e, err := targetEdge()
		if err != nil {
			return nil, "", err
		}
		if ev.Delay < 0 {
			return nil, "", fmt.Errorf("%s: negative delay", where)
		}
		if e.CrossShard() {
			return nil, "", fmt.Errorf("%s: edge %q crosses shards; its delay is the synchronization lookahead and cannot be retuned", where, ev.Edge)
		}
		if !e.DelayMutable() {
			return nil, "", fmt.Errorf("%s: edge %q was built with zero delay; give it a positive delay to make it mutable", where, ev.Edge)
		}
		d := ev.Delay
		target := fmt.Sprintf("edge %s delay %v", ev.Edge, ev.Delay)
		return func() {
			if err := e.SetDelay(d); err != nil {
				panic(fmt.Sprintf("exp: statically validated set_delay failed: %v", err))
			}
		}, target, nil
	case EventLinkDown, EventLinkUp:
		if ev.RateMbps != 0 || ev.Delay != 0 {
			return nil, "", fmt.Errorf("%s: rate/delay are not link_down/link_up fields", where)
		}
		e, err := targetEdge()
		if err != nil {
			return nil, "", err
		}
		down := ev.Kind == EventLinkDown
		state := "up"
		if down {
			state = "down"
		}
		target := fmt.Sprintf("edge %s %s", ev.Edge, state)
		return func() { e.SetDown(down) }, target, nil
	case EventAttack:
		if ev.RateMbps != 0 || ev.Delay != 0 {
			return nil, "", fmt.Errorf("%s: rate/delay are not attack fields", where)
		}
		e, err := targetEdge()
		if err != nil {
			return nil, "", err
		}
		if ev.Attack == nil {
			return nil, "", fmt.Errorf("%s: missing attack", where)
		}
		if err := ev.Attack.Validate(); err != nil {
			return nil, "", fmt.Errorf("%s: %v", where, err)
		}
		a := ev.Attack
		target := fmt.Sprintf("edge %s %s", ev.Edge, a)
		return func() { e.SetAttack(a) }, target, nil
	case EventClearAttack:
		if ev.RateMbps != 0 || ev.Delay != 0 {
			return nil, "", fmt.Errorf("%s: rate/delay are not clear_attack fields", where)
		}
		e, err := targetEdge()
		if err != nil {
			return nil, "", err
		}
		target := fmt.Sprintf("edge %s attack cleared", ev.Edge)
		return func() { e.SetAttack(nil) }, target, nil
	}
	return nil, "", fmt.Errorf("%s: unknown event kind %q (want %s)", where, ev.Kind,
		strings.Join([]string{EventReroute, EventSetRate, EventSetDelay, EventLinkDown, EventLinkUp, EventAttack, EventClearAttack}, ", "))
}
