// Spec plumbing for the route-computation layer (internal/topo's
// AutoRouter): validation of the Routing clause, policy construction,
// and the Result annotations for emergent route changes. The layer is
// opt-in per Spec and sequential-only; scripted `events` timelines are
// untouched by it unless a Routing clause is present, so existing specs
// run byte-identically.
package exp

import (
	"fmt"

	"abc/internal/sim"
	"abc/internal/topo"
)

// RoutingSpec enables policy-driven route computation: the policy
// watches link state (link_down / link_up / set_delay events and any
// other SetDown/SetDelay callers) and recomputes the managed flows'
// routes through the same Router machinery scripted reroute events use.
type RoutingSpec struct {
	// Policy picks the route-computation policy: "shortest" (default;
	// delay-weighted shortest path over the up edges, recomputed per
	// link-state change) or "kfailover" (K edge-disjoint backup paths
	// precomputed per managed route; failover to the first fully-up
	// candidate).
	Policy string
	// K is the number of precomputed backups for "kfailover" (default
	// 2). Setting K with Policy "shortest" is a Spec error — it would
	// otherwise be silently ignored.
	K int
	// RecomputeLatency models control-plane convergence: the delay
	// between a link-state change and routes actually moving, and the
	// coalescing window for changes that arrive together. Defaults to
	// 10ms; must not be negative.
	RecomputeLatency sim.Time
	// Drain, when positive, makes every policy-applied route change
	// make-before-break: junctions on the abandoned path keep forwarding
	// the flow's in-flight packets to the receiver for this window.
	Drain sim.Time
	// Flows restricts management to these flow indices (default: every
	// flow). Each listed flow has its data route and, when table-backed,
	// its ACK route placed under policy control.
	Flows []int
}

// RouteChangeResult annotates one emergent route change, in execution
// order — the policy-driven counterpart of EventResult.
type RouteChangeResult struct {
	AtMs float64  `json:"at_ms"`
	Flow int      `json:"flow"`
	Ack  bool     `json:"ack,omitempty"`
	Path []string `json:"path"`
}

// validateRouting rejects malformed Routing clauses before any wiring
// happens. Nil Routing is valid (the layer is opt-in).
func validateRouting(spec *Spec) error {
	rs := spec.Routing
	if rs == nil {
		return nil
	}
	switch rs.Policy {
	case "", "shortest":
		if rs.K != 0 {
			return fmt.Errorf("exp: routing: K is a kfailover knob; policy %q would silently ignore K=%d (set Policy \"kfailover\" or drop K)", "shortest", rs.K)
		}
	case "kfailover":
		if rs.K < 0 {
			return fmt.Errorf("exp: routing: negative K %d", rs.K)
		}
	default:
		return fmt.Errorf("exp: routing: unknown policy %q (want \"shortest\" or \"kfailover\")", rs.Policy)
	}
	if rs.RecomputeLatency < 0 {
		return fmt.Errorf("exp: routing: negative RecomputeLatency %v", rs.RecomputeLatency)
	}
	if rs.Drain < 0 {
		return fmt.Errorf("exp: routing: negative Drain %v", rs.Drain)
	}
	seen := make(map[int]bool, len(rs.Flows))
	for _, f := range rs.Flows {
		if f < 0 || f >= len(spec.Flows) {
			return fmt.Errorf("exp: routing: flow index %d out of range (spec has %d flows)", f, len(spec.Flows))
		}
		if seen[f] {
			return fmt.Errorf("exp: routing: flow %d listed twice", f)
		}
		seen[f] = true
	}
	if len(spec.Flows) == 0 {
		return fmt.Errorf("exp: routing: spec has no flows to manage (workload-spawned flows are not manageable)")
	}
	return nil
}

// defaultRecomputeLatency is the control-plane convergence delay when
// the Routing clause leaves RecomputeLatency zero.
const defaultRecomputeLatency = 10 * sim.Millisecond

// startRouting builds the route-computation layer for a compiled spec:
// policy, AutoRouter, Result annotation hook, and management of each
// selected flow's data route plus its ACK route when that route is
// table-backed (chain flows without ReverseLinks ACK over a direct wire,
// which has no junctions to re-decide). Called after flows are wired and
// before the run starts; validateRouting has already accepted the
// clause.
func startRouting(g *topo.Graph, spec *Spec, res *Result) error {
	rs := spec.Routing
	if rs == nil {
		return nil
	}
	var pol topo.Policy
	switch rs.Policy {
	case "", "shortest":
		pol = topo.ShortestPathPolicy{}
	default:
		pol = &topo.KFailoverPolicy{K: rs.K}
	}
	lat := rs.RecomputeLatency
	if lat == 0 {
		lat = defaultRecomputeLatency
	}
	ar, err := topo.NewAutoRouter(g, pol, lat)
	if err != nil {
		return err
	}
	if rs.Drain > 0 {
		ar.SetDrain(rs.Drain)
	}
	ar.OnChange = func(flow int, ack bool, edges []int) {
		path := make([]string, len(edges))
		for i, e := range edges {
			path[i] = g.Edge(e).Name
		}
		res.RouteChanges = append(res.RouteChanges, RouteChangeResult{
			AtMs: g.S.Now().Millis(), Flow: flow, Ack: ack, Path: path,
		})
	}
	flows := rs.Flows
	if len(flows) == 0 {
		flows = make([]int, len(spec.Flows))
		for i := range flows {
			flows[i] = i
		}
	}
	for _, f := range flows {
		if err := ar.Manage(f, false); err != nil {
			return err
		}
		if ackEdges, ok := g.RouteOf(f, true); ok && len(ackEdges) > 0 {
			if err := ar.Manage(f, true); err != nil {
				return err
			}
		}
	}
	return nil
}
