// Adversary accounting: when a Spec contains an adversary — an installed
// or event-scheduled topo.Attack, a misbehaving (greedy) flow, or a lying
// ABC router — the harness classifies every flow as victim, bystander or
// attacker and splits the run's degradation metrics along those lines:
// per-class throughput, p95 packet delay, workload FCT/slowdown, ABR QoE,
// and Jain fairness over all flows vs. honest flows only. Classification
// is static: a flow is a victim if any attack's Target ever selects it
// (time windows and direction are deliberately ignored — a flow attacked
// for part of the run is a victim for all of it), an attacker if its
// FlowSpec.Misbehave is set, and a bystander otherwise. Dynamically
// spawned workload flows are classified by the same per-flow draw, which
// is stable in the flow id (topo.Target.SelectsFlow), so a Fraction-based
// attack partitions them deterministically too.
package exp

import (
	"abc/internal/app"
	"abc/internal/metrics"
	"abc/internal/sim"
	"abc/internal/topo"
)

// AdversaryReport is Result.Adversary: the victim/bystander/attacker
// split of a run's degradation metrics.
type AdversaryReport struct {
	// Victims / Bystanders / Attackers list the static flow indices in
	// each class. Workload-spawned flows contribute to the FCT splits but
	// are not listed (their ids are an arrival-process detail).
	Victims    []int `json:"victims"`
	Bystanders []int `json:"bystanders"`
	Attackers  []int `json:"attackers,omitempty"`
	// VictimMbps / BystanderMbps / AttackerMbps are the mean per-flow
	// throughputs of each class (zero when the class is empty).
	VictimMbps    float64 `json:"victim_mbps"`
	BystanderMbps float64 `json:"bystander_mbps"`
	AttackerMbps  float64 `json:"attacker_mbps,omitempty"`
	// VictimP95Ms / BystanderP95Ms are p95 one-way packet delays pooled
	// across the class's static flows.
	VictimP95Ms    float64 `json:"victim_p95_ms"`
	BystanderP95Ms float64 `json:"bystander_p95_ms"`
	// JainAll is Jain's fairness index over every static flow's
	// throughput; JainHonest excludes the attackers, isolating how evenly
	// the adversary's damage spreads over the honest flows.
	JainAll    float64 `json:"jain_all"`
	JainHonest float64 `json:"jain_honest"`
	// VictimFCT / BystanderFCT summarize workload flow completion times
	// per class (nil when no workload flow of the class completed).
	VictimFCT    *metrics.FCTStats `json:"victim_fct,omitempty"`
	BystanderFCT *metrics.FCTStats `json:"bystander_fct,omitempty"`
	// VictimQoE / BystanderQoE average ABR video QoE over the class's
	// sessions (nil when the class has none).
	VictimQoE    *metrics.QoE `json:"victim_qoe,omitempty"`
	BystanderQoE *metrics.QoE `json:"bystander_qoe,omitempty"`
	// Drops / Delayed / Stripped mirror Result.AdvDrops/AdvDelayed/
	// AdvStripped for self-contained report rendering.
	Drops    int64 `json:"drops"`
	Delayed  int64 `json:"delayed"`
	Stripped int64 `json:"stripped"`
}

// specAttacks collects every attack the spec can ever install: build-time
// attacks on chain links, reverse links and mesh edges, plus attacks
// scheduled by "attack" events.
func specAttacks(spec *Spec) []*topo.Attack {
	var out []*topo.Attack
	for i := range spec.Links {
		if a := spec.Links[i].Attack; a != nil {
			out = append(out, a)
		}
	}
	for i := range spec.ReverseLinks {
		if a := spec.ReverseLinks[i].Attack; a != nil {
			out = append(out, a)
		}
	}
	for i := range spec.Edges {
		if a := spec.Edges[i].Link.Attack; a != nil {
			out = append(out, a)
		}
	}
	for i := range spec.Events {
		if a := spec.Events[i].Attack; a != nil {
			out = append(out, a)
		}
	}
	return out
}

// advCollector accumulates the per-class recorders behind an
// AdversaryReport while the run executes.
type advCollector struct {
	seed      int64
	attacks   []*topo.Attack
	attackers map[int]bool

	victimDelay    metrics.DelayRecorder
	bystanderDelay metrics.DelayRecorder

	victimFCT      metrics.DelayRecorder
	victimSlow     metrics.DelayRecorder
	victimBytes    int64
	bystanderFCT   metrics.DelayRecorder
	bystanderSlow  metrics.DelayRecorder
	bystanderBytes int64
}

// newAdvCollector returns a collector when the spec contains an adversary
// (any attack, any misbehaving flow, any lying router) and nil otherwise,
// so honest runs carry zero overhead and a nil Result.Adversary.
func newAdvCollector(spec *Spec) *advCollector {
	attacks := specAttacks(spec)
	attackers := map[int]bool{}
	for i := range spec.Flows {
		if spec.Flows[i].Misbehave != "" {
			attackers[i] = true
		}
	}
	lying := false
	for i := range spec.Links {
		lying = lying || spec.Links[i].Qdisc.ABCLie != 0
	}
	for i := range spec.ReverseLinks {
		lying = lying || spec.ReverseLinks[i].Qdisc.ABCLie != 0
	}
	for i := range spec.Edges {
		lying = lying || spec.Edges[i].Link.Qdisc.ABCLie != 0
	}
	if len(attacks) == 0 && len(attackers) == 0 && !lying {
		return nil
	}
	return &advCollector{seed: spec.Seed, attacks: attacks, attackers: attackers}
}

// victim reports whether any of the spec's attacks ever selects the flow.
func (c *advCollector) victim(flow int) bool {
	if c.attackers[flow] {
		return false
	}
	for _, a := range c.attacks {
		if a.Target.SelectsFlow(flow, c.seed) {
			return true
		}
	}
	return false
}

// addDelay pools one measured packet delay into the flow's class.
// Attacker delays are not pooled: the report contrasts the honest
// classes.
func (c *advCollector) addDelay(flow int, d sim.Time) {
	if c.attackers[flow] {
		return
	}
	if c.victim(flow) {
		c.victimDelay.Add(d)
	} else {
		c.bystanderDelay.Add(d)
	}
}

// mergeDelay pools one flow's whole delay recorder into its class — the
// sharded harness's deterministic post-run replacement for the
// per-packet addDelay calls, with the same attacker exclusion.
func (c *advCollector) mergeDelay(flow int, rec *metrics.DelayRecorder) {
	if c.attackers[flow] {
		return
	}
	if c.victim(flow) {
		c.victimDelay.Merge(rec)
	} else {
		c.bystanderDelay.Merge(rec)
	}
}

// addFCT records one completed workload flow into its class. A zero
// slowdown means the workload has no RefMbps reference and records only
// the raw FCT.
func (c *advCollector) addFCT(flow int, fct sim.Time, slowdown float64, bytes int64) {
	if c.victim(flow) {
		c.victimFCT.Add(fct)
		if slowdown > 0 {
			c.victimSlow.AddSample(slowdown)
		}
		c.victimBytes += bytes
	} else {
		c.bystanderFCT.Add(fct)
		if slowdown > 0 {
			c.bystanderSlow.AddSample(slowdown)
		}
		c.bystanderBytes += bytes
	}
}

// meanQoE averages QoE sessions componentwise.
func meanQoE(qs []metrics.QoE) *metrics.QoE {
	if len(qs) == 0 {
		return nil
	}
	var m metrics.QoE
	for _, q := range qs {
		m.MeanKbps += q.MeanKbps
		m.RebufferRatio += q.RebufferRatio
		m.RebufferS += q.RebufferS
		m.Switches += q.Switches
		m.Chunks += q.Chunks
		m.StartupS += q.StartupS
		m.PlayedS += q.PlayedS
	}
	n := float64(len(qs))
	m.MeanKbps /= n
	m.RebufferRatio /= n
	m.RebufferS /= n
	m.StartupS /= n
	m.PlayedS /= n
	return &m
}

// report assembles the AdversaryReport from the finished result.
func (c *advCollector) report(spec *Spec, res *Result) *AdversaryReport {
	rep := &AdversaryReport{
		VictimP95Ms:    c.victimDelay.P95(),
		BystanderP95Ms: c.bystanderDelay.P95(),
		Drops:          res.AdvDrops,
		Delayed:        res.AdvDelayed,
		Stripped:       res.AdvStripped,
	}
	var all, honest []float64
	var victimQs, bystanderQs []metrics.QoE
	var vSum, bSum, aSum float64
	for i := range res.Flows {
		fr := &res.Flows[i]
		all = append(all, fr.TputMbps)
		var qoe *metrics.QoE
		if abr, ok := fr.App.(*app.ABR); ok {
			q := abr.QoE()
			qoe = &q
		}
		switch {
		case c.attackers[i]:
			rep.Attackers = append(rep.Attackers, i)
			aSum += fr.TputMbps
		case c.victim(i):
			rep.Victims = append(rep.Victims, i)
			vSum += fr.TputMbps
			honest = append(honest, fr.TputMbps)
			if qoe != nil {
				victimQs = append(victimQs, *qoe)
			}
		default:
			rep.Bystanders = append(rep.Bystanders, i)
			bSum += fr.TputMbps
			honest = append(honest, fr.TputMbps)
			if qoe != nil {
				bystanderQs = append(bystanderQs, *qoe)
			}
		}
	}
	if n := len(rep.Victims); n > 0 {
		rep.VictimMbps = vSum / float64(n)
	}
	if n := len(rep.Bystanders); n > 0 {
		rep.BystanderMbps = bSum / float64(n)
	}
	if n := len(rep.Attackers); n > 0 {
		rep.AttackerMbps = aSum / float64(n)
	}
	rep.JainAll = metrics.JainIndex(all)
	rep.JainHonest = metrics.JainIndex(honest)
	if c.victimFCT.Count() > 0 {
		st := metrics.NewFCTStats("victim", &c.victimFCT, &c.victimSlow, c.victimBytes)
		rep.VictimFCT = &st
	}
	if c.bystanderFCT.Count() > 0 {
		st := metrics.NewFCTStats("bystander", &c.bystanderFCT, &c.bystanderSlow, c.bystanderBytes)
		rep.BystanderFCT = &st
	}
	rep.VictimQoE = meanQoE(victimQs)
	rep.BystanderQoE = meanQoE(bystanderQs)
	return rep
}
