// Application-workload drivers: the experiments behind `abcsim -exp
// shortflows|video|rpc`. Each compares registered schemes on a cellular
// trace under realistic application traffic — open-loop web-like short
// flows with FCT/slowdown metrics, an ABR video session with a QoE
// summary, and request-response RPC clients competing with a bulk
// transfer — exercising the paper's headline claim (low delay for
// interactive traffic without sacrificing throughput) at the application
// layer instead of the link layer.
package exp

import (
	"fmt"

	"abc/internal/app"
	"abc/internal/metrics"
	"abc/internal/sim"
	"abc/internal/trace"
)

// AppSchemes is the default comparison set for the application-workload
// drivers.
var AppSchemes = []string{"ABC", "Cubic", "BBR", "XCP"}

// appTrace resolves the drivers' cellular trace ("" = Verizon1).
func appTrace(name string) (*trace.Trace, error) {
	return trace.NamedCellular(appTraceName(name))
}

// appTraceName resolves the display name of the drivers' trace ("" =
// Verizon1), for cell labels.
func appTraceName(name string) string {
	if name == "" {
		return "Verizon1"
	}
	return name
}

// ShortFlowsResult is one scheme's row of the short-flows experiment.
type ShortFlowsResult struct {
	Scheme string
	// FCT summarizes the web workload's completion times; slowdown is
	// normalized to the trace's long-run average rate plus one RTT.
	FCT metrics.FCTStats
	// Spawned/Completed/Rejected/Active count the workload's flows.
	Spawned, Completed, Rejected, Active int
	// QDelayP95 is the short flows' p95 per-packet accumulated queueing
	// delay (ms) — the interactive-traffic delay metric.
	QDelayP95 float64
	// LongTputMbps is the competing bulk flow's throughput.
	LongTputMbps float64
	Utilization  float64
}

// ShortFlows runs, per scheme, one bulk flow plus an open-loop Poisson
// workload of heavy-tailed web-like short flows (10 KB–1 MB bounded
// Pareto) over a cellular trace. traceName "" picks Verizon1.
func ShortFlows(schemes []string, traceName string, dur sim.Time, seed int64) ([]ShortFlowsResult, error) {
	if len(schemes) == 0 {
		schemes = AppSchemes
	}
	tr, err := appTrace(traceName)
	if err != nil {
		return nil, err
	}
	out := make([]ShortFlowsResult, len(schemes))
	err = forEachCell(len(schemes), func(i int) string {
		return fmt.Sprintf("shortflows trace=%s scheme=%s seed=%d", appTraceName(traceName), schemes[i], seed)
	}, func(i int) error {
		scheme := schemes[i]
		spec := Spec{
			Seed:     seed,
			Duration: dur,
			Links:    []LinkSpec{{Trace: tr, Qdisc: QdiscSpec{Kind: "auto", Buffer: 250}}},
			Flows:    []FlowSpec{{Scheme: scheme}},
			Workloads: []WorkloadSpec{{
				Scheme:  scheme,
				Class:   "web",
				Arrival: app.Poisson{PerSec: 4},
				Sizes:   app.BoundedPareto{Min: 10 * 1024, Max: 1024 * 1024, Alpha: 1.2},
				RefMbps: tr.AvgRateBps() / 1e6,
			}},
		}
		res, _, rerr := Run(spec)
		if rerr != nil {
			return rerr
		}
		w := &res.Workloads[0]
		out[i] = ShortFlowsResult{
			Scheme:       scheme,
			FCT:          w.Stats(),
			Spawned:      w.Spawned,
			Completed:    w.Completed,
			Rejected:     w.Rejected,
			Active:       w.Active,
			QDelayP95:    w.QDelay.P95(),
			LongTputMbps: res.Flows[0].TputMbps,
			Utilization:  res.Utilization,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// VideoResult is one scheme's row of the ABR video experiment.
type VideoResult struct {
	Scheme string
	QoE    metrics.QoE
	// QDelayP95 is the video flow's p95 accumulated queueing delay (ms).
	QDelayP95 float64
	TputMbps  float64
}

// VideoExp runs, per scheme, one ABR video session over a cellular
// trace: the buffer-based client climbs the bitrate ladder as far as the
// scheme's delivery rate and self-inflicted queueing allow. traceName ""
// picks Verizon1.
func VideoExp(schemes []string, traceName string, dur sim.Time, seed int64) ([]VideoResult, error) {
	if len(schemes) == 0 {
		schemes = AppSchemes
	}
	tr, err := appTrace(traceName)
	if err != nil {
		return nil, err
	}
	out := make([]VideoResult, len(schemes))
	err = forEachCell(len(schemes), func(i int) string {
		return fmt.Sprintf("video trace=%s scheme=%s seed=%d", appTraceName(traceName), schemes[i], seed)
	}, func(i int) error {
		scheme := schemes[i]
		spec := Spec{
			Seed:     seed,
			Duration: dur,
			Links:    []LinkSpec{{Trace: tr, Qdisc: QdiscSpec{Kind: "auto", Buffer: 250}}},
			Flows: []FlowSpec{{
				Scheme: scheme,
				App:    &AppSpec{Kind: "abr"},
			}},
		}
		res, _, rerr := Run(spec)
		if rerr != nil {
			return rerr
		}
		f := &res.Flows[0]
		out[i] = VideoResult{
			Scheme:    scheme,
			QoE:       f.App.(*app.ABR).QoE(),
			QDelayP95: f.QDelay.P95(),
			TputMbps:  f.TputMbps,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RPCResult is one scheme's row of the RPC experiment.
type RPCResult struct {
	Scheme string
	// FCT pools every client's per-call completion times.
	FCT metrics.FCTStats
	// Calls counts completed request-response exchanges across clients.
	Calls int
	// QDelayP95 is the RPC clients' p95 accumulated queueing delay (ms).
	QDelayP95 float64
	// LongTputMbps is the competing bulk flow's throughput.
	LongTputMbps float64
}

// rpcClients is the number of concurrent RPC clients per scheme.
const rpcClients = 3

// RPCExp runs, per scheme, rpcClients request-response clients (100 KB
// responses, 200 ms mean think time) competing with one bulk flow over a
// cellular trace; per-call completion times pool across clients.
// traceName "" picks Verizon1.
func RPCExp(schemes []string, traceName string, dur sim.Time, seed int64) ([]RPCResult, error) {
	if len(schemes) == 0 {
		schemes = AppSchemes
	}
	tr, err := appTrace(traceName)
	if err != nil {
		return nil, err
	}
	out := make([]RPCResult, len(schemes))
	err = forEachCell(len(schemes), func(i int) string {
		return fmt.Sprintf("rpc trace=%s scheme=%s seed=%d", appTraceName(traceName), schemes[i], seed)
	}, func(i int) error {
		scheme := schemes[i]
		pool := &metrics.DelayRecorder{}
		flows := []FlowSpec{{Scheme: scheme}}
		for c := 0; c < rpcClients; c++ {
			flows = append(flows, FlowSpec{
				Scheme: scheme,
				App:    &AppSpec{Kind: "rpc", RPC: app.RPCConfig{FCT: pool}},
			})
		}
		spec := Spec{
			Seed:     seed,
			Duration: dur,
			Links:    []LinkSpec{{Trace: tr, Qdisc: QdiscSpec{Kind: "auto", Buffer: 250}}},
			Flows:    flows,
		}
		res, _, rerr := Run(spec)
		if rerr != nil {
			return rerr
		}
		row := RPCResult{
			Scheme:       scheme,
			LongTputMbps: res.Flows[0].TputMbps,
		}
		var bytes int64
		for c := 1; c <= rpcClients; c++ {
			f := &res.Flows[c]
			row.Calls += f.App.(*app.RPC).Calls
			bytes += f.Bytes
			// Streaming recorders cannot merge, so report the worst
			// client's p95 queueing delay — conservative and
			// deterministic.
			if p := f.QDelay.P95(); p > row.QDelayP95 {
				row.QDelayP95 = p
			}
		}
		row.FCT = metrics.NewFCTStats("rpc", pool, nil, bytes)
		out[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
