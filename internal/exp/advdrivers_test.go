package exp

import (
	"math"
	"testing"

	"abc/internal/sim"
	"abc/internal/topo"
)

// TestTargetedVictimDegradesBystandersHold is the adversary layer's
// acceptance bar: pinning the targeted attack on flow 0 must visibly
// degrade the victim (throughput down, p95 delay up by the injected
// 30 ms) while the bystanders' delay stays within 10% of their honest
// baseline — the attack is surgical, not collateral.
func TestTargetedVictimDegradesBystandersHold(t *testing.T) {
	res, err := Targeted([]string{"ABC"}, 12*sim.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := res["ABC"]
	if r.Victim.AttackedMbps >= r.Victim.HonestMbps/2 {
		t.Errorf("victim throughput barely moved: %.2f -> %.2f Mbit/s",
			r.Victim.HonestMbps, r.Victim.AttackedMbps)
	}
	if r.Victim.AttackedP95Ms < r.Victim.HonestP95Ms+20 {
		t.Errorf("victim p95 should absorb the 30 ms extra delay: %.1f -> %.1f ms",
			r.Victim.HonestP95Ms, r.Victim.AttackedP95Ms)
	}
	if rel := math.Abs(r.Bystander.AttackedP95Ms-r.Bystander.HonestP95Ms) / r.Bystander.HonestP95Ms; rel > 0.10 {
		t.Errorf("bystander p95 moved %.0f%% (%.1f -> %.1f ms); want within 10%%",
			rel*100, r.Bystander.HonestP95Ms, r.Bystander.AttackedP95Ms)
	}
	if r.JainAttacked >= r.JainHonest {
		t.Errorf("fairness should collapse under attack: jain %.3f -> %.3f",
			r.JainHonest, r.JainAttacked)
	}
	// The 1% drop rate may land zero drops on the starved victim's
	// trickle (AdvDrops > 0 is asserted by the 100%-drop event tests);
	// delay and stripping hit every selected packet, so they must fire.
	if r.Delayed == 0 || r.Stripped == 0 {
		t.Errorf("adversary counters should fire: drops=%d delayed=%d stripped=%d",
			r.Drops, r.Delayed, r.Stripped)
	}
	rep := r.Report
	if rep == nil {
		t.Fatal("attacked run has no adversary report")
	}
	if len(rep.Victims) != 1 || rep.Victims[0] != 0 || len(rep.Bystanders) != 3 {
		t.Errorf("classification: victims=%v bystanders=%v, want [0] and three bystanders",
			rep.Victims, rep.Bystanders)
	}
	if rep.VictimP95Ms <= rep.BystanderP95Ms {
		t.Errorf("report p95: victim %.1f ms should exceed bystander %.1f ms",
			rep.VictimP95Ms, rep.BystanderP95Ms)
	}
}

// TestGreedyStealsFromEveryScheme asserts the greedy shim buys bandwidth
// under ABC and each explicit baseline, with the scheme-appropriate
// feedback counter firing.
func TestGreedyStealsFromEveryScheme(t *testing.T) {
	res, err := Greedy(nil, 12*sim.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range ExplicitSchemes {
		r, ok := res[scheme]
		if !ok {
			t.Errorf("%s: no result", scheme)
			continue
		}
		if r.StolenMbps <= 0 {
			t.Errorf("%s: greedy stole nothing (%.2f -> %.2f Mbit/s)",
				scheme, r.BaselineMbps, r.GreedyMbps)
		}
		if r.GreedyMbps <= r.HonestMeanMbps {
			t.Errorf("%s: greedy flow (%.2f) should beat the honest mean (%.2f)",
				scheme, r.GreedyMbps, r.HonestMeanMbps)
		}
		if r.JainGreedy >= r.JainBaseline {
			t.Errorf("%s: fairness should collapse: jain %.3f -> %.3f",
				scheme, r.JainBaseline, r.JainGreedy)
		}
		if r.Report == nil {
			t.Errorf("%s: greedy run has no adversary report", scheme)
		} else if len(r.Report.Attackers) != 1 || r.Report.Attackers[0] != 0 {
			t.Errorf("%s: attackers=%v, want [0]", scheme, r.Report.Attackers)
		}
	}
	if r := res["ABC"]; r.BrakesIgnored == 0 {
		t.Error("ABC: greedy sender ignored no brakes")
	}
	for _, scheme := range []string{"XCP", "RCP", "VCP"} {
		if r := res[scheme]; r.FeedbackClamped == 0 {
			t.Errorf("%s: greedy sender clamped no feedback", scheme)
		}
	}
}

// TestSameTimestampEventsApplyInSpecOrder locks the tie-break for
// events scheduled at the identical instant: spec order. An attack
// installing a 100% drop on flow 0 followed — at the same timestamp —
// by a clear_attack must net out to no attack, while the reversed spec
// order leaves the drop installed.
func TestSameTimestampEventsApplyInSpecOrder(t *testing.T) {
	kill := &topo.Attack{Target: topo.Target{Flows: []int{0}}, DropRate: 1}
	attackEv := EventSpec{At: 2 * sim.Second, Kind: EventAttack, Edge: "fwd0", Attack: kill}
	clearEv := EventSpec{At: 2 * sim.Second, Kind: EventClearAttack, Edge: "fwd0"}

	run := func(events []EventSpec) *Result {
		spec := targetedSpec("ABC", 8*sim.Second, 1)
		spec.Events = events
		res, _, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	cleared := run([]EventSpec{attackEv, clearEv})
	if cleared.AdvDrops != 0 {
		t.Errorf("attack-then-clear at one timestamp should leave no attack, got %d adversarial drops",
			cleared.AdvDrops)
	}
	installed := run([]EventSpec{clearEv, attackEv})
	if installed.AdvDrops == 0 {
		t.Error("clear-then-attack at one timestamp should leave the attack installed, got no adversarial drops")
	}
	if cleared.Flows[0].TputMbps <= installed.Flows[0].TputMbps {
		t.Errorf("flow 0 should do better with the attack cleared (%.2f Mbit/s) than installed (%.2f Mbit/s)",
			cleared.Flows[0].TputMbps, installed.Flows[0].TputMbps)
	}
}

// TestEventsOnDownEdge pins down the semantics of retuning a downed
// edge: attack and set_rate events on an edge inside a link_down window
// apply immediately (the stages live behind the down gate) and take
// visible effect once the edge comes back up.
func TestEventsOnDownEdge(t *testing.T) {
	spec := targetedSpec("ABC", 10*sim.Second, 1)
	spec.Events = []EventSpec{
		{At: 2 * sim.Second, Kind: EventLinkDown, Edge: "fwd0"},
		{At: 2500 * sim.Millisecond, Kind: EventAttack, Edge: "fwd0",
			Attack: &topo.Attack{Target: topo.Target{Flows: []int{0}}, DropRate: 1}},
		{At: 2600 * sim.Millisecond, Kind: EventSetRate, Edge: "fwd0", RateMbps: 8},
		{At: 3 * sim.Second, Kind: EventLinkUp, Edge: "fwd0"},
	}
	res, _, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 4 {
		t.Fatalf("executed %d events, want 4: %+v", len(res.Events), res.Events)
	}
	if res.LinkDownDrops == 0 {
		t.Error("the outage window should drop arrivals")
	}
	if res.AdvDrops == 0 {
		t.Error("the attack installed during the outage should drop flow 0's packets after link_up")
	}
	if res.Flows[0].TputMbps >= res.Flows[1].TputMbps/10 {
		t.Errorf("flow 0 should starve under the 100%% drop: %.2f vs bystander %.2f Mbit/s",
			res.Flows[0].TputMbps, res.Flows[1].TputMbps)
	}
}
