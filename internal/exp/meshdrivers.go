// Mesh scenario drivers: experiments whose topology is a general graph
// rather than a chain, exercising the Nodes/Edges Spec form end to end.
// MeshSharedJunction routes flows over partly-disjoint multi-hop paths
// through one junction; MarkedUplink puts an ABC router on the uplink
// edge that carries a downlink flow's ACKs, so the receiver's echoed
// accelerates are demoted in flight and the sender paces to the minimum
// of marks over the full round trip (§3.1.2's multi-bottleneck rule
// extended to the reverse path). Both have declarative twins in
// examples/scenarios/ (mesh.json, marked-uplink.json).
package exp

import (
	"fmt"
	"strings"

	"abc/internal/abc"
	"abc/internal/cc"
	"abc/internal/metrics"
	"abc/internal/netem"
	"abc/internal/sim"
	"abc/internal/trace"
)

// MeshFlowSummary is one flow's outcome on a mesh scenario.
type MeshFlowSummary struct {
	// Path is the flow's data route, "edge>edge>..." for reports.
	Path     string
	TputMbps float64
	MeanMs   float64
	P95Ms    float64
}

// MeshResult is the outcome of one scheme's shared-junction run.
type MeshResult struct {
	// Flows reports each flow in spec order: the A-path flow, the B-path
	// flow, then the crossing flow.
	Flows []MeshFlowSummary
	// Drops counts unrouted arrivals (must be zero: the mesh compiler
	// validates routes up front).
	Drops int64
}

// meshJunctionSpec builds the shared-junction topology for one scheme:
// two access bottlenecks (16 and 8 Mbit/s) feed a junction from which
// plain wires fan out, and three flows route through it — two on fully
// disjoint two-hop paths plus one crossing flow that shares an edge with
// each. The junction itself is just a graph node: routing is per flow,
// so disjoint paths never queue behind each other.
func meshJunctionSpec(scheme string, dur sim.Time, seed int64) Spec {
	return Spec{
		Seed:     seed,
		Duration: dur,
		RTT:      60 * sim.Millisecond,
		Nodes:    []string{"srcA", "srcB", "hub", "dstA", "dstB"},
		Edges: []EdgeSpec{
			{Name: "inA", From: "srcA", To: "hub",
				Link: LinkSpec{Rate: netem.ConstRate(16e6), Qdisc: QdiscSpec{Kind: "auto"}}},
			{Name: "inB", From: "srcB", To: "hub",
				Link: LinkSpec{Rate: netem.ConstRate(8e6), Qdisc: QdiscSpec{Kind: "auto"}}},
			{Name: "outA", From: "hub", To: "dstA",
				Link: LinkSpec{Kind: "wire", Delay: 5 * sim.Millisecond}},
			{Name: "outB", From: "hub", To: "dstB",
				Link: LinkSpec{Kind: "wire", Delay: 5 * sim.Millisecond}},
		},
		Flows: []FlowSpec{
			{Scheme: scheme, Path: []string{"inA", "outA"}},
			{Scheme: scheme, Path: []string{"inB", "outB"}},
			{Scheme: scheme, Path: []string{"inA", "outB"}},
		},
	}
}

// MeshSharedJunction runs the shared-junction mesh for each scheme. The
// two inA flows split 16 Mbit/s while the inB flow keeps its 8 Mbit/s
// bottleneck to itself, so a fair scheme lands all three near 8 Mbit/s —
// cross-path interference at the junction would show up as deviation.
func MeshSharedJunction(schemes []string, dur sim.Time, seed int64) (map[string]MeshResult, error) {
	if len(schemes) == 0 {
		schemes = []string{"ABC", "Cubic"}
	}
	if dur <= 0 {
		dur = 30 * sim.Second
	}
	results := make([]MeshResult, len(schemes))
	err := forEachCell(len(schemes), func(i int) string {
		return fmt.Sprintf("mesh-junction scheme=%s seed=%d", schemes[i], seed)
	}, func(i int) error {
		spec := meshJunctionSpec(schemes[i], dur, seed)
		res, _, err := Run(spec)
		if err != nil {
			return err
		}
		r := MeshResult{Drops: res.Drops}
		for f := range res.Flows {
			fr := &res.Flows[f]
			r.Flows = append(r.Flows, MeshFlowSummary{
				Path:     strings.Join(spec.Flows[f].Path, ">"),
				TputMbps: fr.TputMbps,
				MeanMs:   fr.Delay.Mean(),
				P95Ms:    fr.Delay.P95(),
			})
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]MeshResult, len(schemes))
	for i, sch := range schemes {
		out[sch] = results[i]
	}
	return out, nil
}

// MarkedUplinkResult is one scheme's outcome on the marked-uplink
// scenario.
type MarkedUplinkResult struct {
	// Down summarizes the downlink flow under test.
	Down metrics.Summary
	// QDelayP95 is the downlink flow's p95 accumulated queuing delay (ms).
	QDelayP95 float64
	// UpTputMbps is the uplink cross flow's throughput.
	UpTputMbps float64
	// ReverseBrakes counts downlink accelerates the receiver echoed but
	// the uplink ABC router demoted in flight (ABC schemes only).
	ReverseBrakes int64
	// EchoDemoted / EchoKept are the uplink router's Algorithm 1
	// decisions on ACK-borne echoes.
	EchoDemoted int64
	EchoKept    int64
}

// MarkedUplink runs each scheme's backlogged downlink over a cellular
// trace while its ACKs return over a slow uplink edge hosting an ABC
// router, shared with a rate-limited ABC cross flow. Unlike the
// congested-uplink chain scenario (droptail reverse path: feedback is
// only delayed or lost), the uplink router *re-marks* the echoes, so an
// ABC downlink learns about reverse-path congestion explicitly — the
// sender's effective signal is the minimum of marks over the whole round
// trip.
func MarkedUplink(schemes []string, uplinkMbps float64, dur sim.Time, seed int64) (map[string]MarkedUplinkResult, error) {
	if len(schemes) == 0 {
		schemes = []string{"ABC", "Cubic"}
	}
	if uplinkMbps <= 0 {
		uplinkMbps = 2
	}
	if dur <= 0 {
		dur = 30 * sim.Second
	}
	down := trace.MustNamedCellular("Verizon1")
	results := make([]MarkedUplinkResult, len(schemes))
	err := forEachCell(len(schemes), func(i int) string {
		return fmt.Sprintf("marked-uplink scheme=%s seed=%d", schemes[i], seed)
	}, func(i int) error {
		sch := schemes[i]
		res, _, err := Run(Spec{
			Seed:     seed,
			Duration: dur,
			RTT:      100 * sim.Millisecond,
			Nodes:    []string{"bs", "ue"},
			Edges: []EdgeSpec{
				{Name: "down", From: "bs", To: "ue",
					Link: LinkSpec{Trace: down, Qdisc: QdiscSpec{Kind: "auto"}}},
				{Name: "up", From: "ue", To: "bs",
					Link: LinkSpec{Rate: netem.ConstRate(uplinkMbps * 1e6), Qdisc: QdiscSpec{Kind: "abc"}}},
			},
			Flows: []FlowSpec{
				{Scheme: sch, Path: []string{"down"}, AckPath: []string{"up"}},
				{Scheme: "ABC", Path: []string{"up"},
					Source: cc.NewRateLimited(0.6 * uplinkMbps * 1e6)},
			},
		})
		if err != nil {
			return err
		}
		f0 := &res.Flows[0]
		r := MarkedUplinkResult{
			Down: metrics.Summary{
				Scheme:      sch,
				Utilization: res.Utilization,
				TputMbps:    f0.TputMbps,
				MeanMs:      f0.Delay.Mean(),
				P95Ms:       f0.Delay.P95(),
			},
			QDelayP95:  f0.QDelay.P95(),
			UpTputMbps: res.Flows[1].TputMbps,
		}
		if s, ok := f0.Algorithm.(*abc.Sender); ok {
			r.ReverseBrakes = s.ReverseBrakes
		}
		if router, ok := res.EdgeQdiscs["up"].(*abc.Router); ok {
			r.EchoDemoted = router.EchoDemoted
			r.EchoKept = router.EchoAccelKept
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]MarkedUplinkResult, len(schemes))
	for i, sch := range schemes {
		out[sch] = results[i]
	}
	return out, nil
}

// FormatMeshResult renders one scheme's shared-junction rows.
func FormatMeshResult(scheme string, r MeshResult) string {
	s := fmt.Sprintf("%s:\n", scheme)
	for _, f := range r.Flows {
		s += fmt.Sprintf("  %-12s tput=%6.2f Mbit/s  delay mean=%6.1f ms  p95=%6.1f ms\n",
			f.Path, f.TputMbps, f.MeanMs, f.P95Ms)
	}
	return s
}
