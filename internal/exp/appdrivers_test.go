package exp

import (
	"testing"

	"abc/internal/app"
	"abc/internal/netem"
	"abc/internal/qdisc"
	"abc/internal/sim"
	"abc/internal/trace"
)

// TestShortFlowsABCBeatsCubicQueueing is the subsystem's acceptance
// check: in the shipped cellular short-flow scenario ABC must deliver
// the interactive traffic with a lower p95 queueing delay than Cubic.
func TestShortFlowsABCBeatsCubicQueueing(t *testing.T) {
	rows, err := ShortFlows([]string{"ABC", "Cubic"}, "", 16*sim.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[string]ShortFlowsResult{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
		if r.Completed == 0 {
			t.Errorf("%s: no short flows completed", r.Scheme)
		}
		if r.FCT.Count == 0 || r.FCT.P95Ms <= 0 {
			t.Errorf("%s: empty FCT distribution: %+v", r.Scheme, r.FCT)
		}
		if r.FCT.MeanSlowdown < 1 {
			t.Errorf("%s: mean slowdown %.2f below the physical floor of 1", r.Scheme, r.FCT.MeanSlowdown)
		}
		if r.Spawned != r.Completed+r.Active+r.Rejected {
			t.Errorf("%s: flow accounting leak: spawned %d != completed %d + active %d + rejected %d",
				r.Scheme, r.Spawned, r.Completed, r.Active, r.Rejected)
		}
	}
	abc, cubic := byScheme["ABC"], byScheme["Cubic"]
	if abc.QDelayP95 >= cubic.QDelayP95 {
		t.Errorf("ABC p95 queueing %.0f ms not below Cubic's %.0f ms", abc.QDelayP95, cubic.QDelayP95)
	}
}

// TestVideoExpQoE checks the ABR session produces coherent QoE: chunks
// download, the mean bitrate stays inside the ladder, and accounting
// (played + stalled vs wall clock) closes.
func TestVideoExpQoE(t *testing.T) {
	rows, err := VideoExp([]string{"ABC", "Cubic"}, "", 16*sim.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		q := r.QoE
		if q.Chunks == 0 {
			t.Fatalf("%s: no chunks downloaded", r.Scheme)
		}
		if q.MeanKbps < 300 || q.MeanKbps > 4300 {
			t.Errorf("%s: mean bitrate %.0f kbps outside the ladder", r.Scheme, q.MeanKbps)
		}
		// After startup the session is either playing or stalled, so the
		// two cannot exceed the wall clock.
		if q.PlayedS+q.RebufferS > 16+0.01 {
			t.Errorf("%s: played %.1f s + stalled %.1f s exceeds the 16 s run", r.Scheme, q.PlayedS, q.RebufferS)
		}
		if q.RebufferRatio < 0 || q.RebufferRatio > 1 {
			t.Errorf("%s: rebuffer ratio %.3f outside [0,1]", r.Scheme, q.RebufferRatio)
		}
	}
}

// TestRPCExpCalls checks the RPC clients cycle and pool their FCTs.
func TestRPCExpCalls(t *testing.T) {
	rows, err := RPCExp([]string{"ABC"}, "", 16*sim.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Calls < rpcClients {
		t.Fatalf("only %d calls across %d clients", r.Calls, rpcClients)
	}
	if r.FCT.Count == 0 || r.FCT.MeanMs <= 0 {
		t.Errorf("empty pooled FCT: %+v", r.FCT)
	}
	if r.FCT.Count > r.Calls {
		t.Errorf("pooled FCT count %d exceeds calls %d", r.FCT.Count, r.Calls)
	}
	if r.LongTputMbps <= 0 {
		t.Error("bulk flow moved no data")
	}
}

// TestWorkloadArrivalAfterLinkDies covers the late-arrival edge: a flow
// spawned when the trace link has gone dark (a steps trace ending in a
// zero-rate segment) must wire up and sit there as a clean no-op — no
// panic, no unrouted drops, flow counted active at the end.
func TestWorkloadArrivalAfterLinkDies(t *testing.T) {
	// 12 Mbit/s for 4 s, then dead air for the rest of the period.
	tr := trace.Steps("dying", []float64{12e6, 12e6, 0, 0, 0, 0, 0, 0}, 2*sim.Second)
	spec := Spec{
		Seed:     1,
		Duration: 14 * sim.Second,
		Warmup:   sim.Second,
		Links:    []LinkSpec{{Trace: tr, Qdisc: QdiscSpec{Kind: "droptail", Buffer: 250}}},
		Workloads: []WorkloadSpec{{
			Scheme:  "Cubic",
			Class:   "late",
			Arrival: app.Deterministic{Gap: 6 * sim.Second}, // arrivals at 6 s and 12 s: both after the link died
			Sizes:   app.FixedSize{Bytes: 50 * 1024},
		}},
	}
	res, _, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	w := &res.Workloads[0]
	if w.Spawned != 2 {
		t.Fatalf("spawned %d flows, want 2", w.Spawned)
	}
	if w.Completed != 0 {
		t.Errorf("%d flows completed over a dead link", w.Completed)
	}
	if w.Active != 2 {
		t.Errorf("active %d, want 2 stranded flows", w.Active)
	}
	if res.Drops != 0 {
		t.Errorf("%d unrouted drops: late flows were not wired onto the graph", res.Drops)
	}
}

// TestWorkloadArrivalWindowRespected: the arrival process must not spawn
// past Stop (or Duration), and a Start inside the run delays the first
// arrival.
func TestWorkloadArrivalWindowRespected(t *testing.T) {
	spec := Spec{
		Seed:     3,
		Duration: 10 * sim.Second,
		Warmup:   sim.Second,
		Links:    []LinkSpec{{Rate: netem.ConstRate(20e6), Kind: "rate", Qdisc: QdiscSpec{Kind: "droptail", Buffer: 250}}},
		Workloads: []WorkloadSpec{{
			Scheme:  "Cubic",
			Arrival: app.Deterministic{Gap: sim.Second},
			Sizes:   app.FixedSize{Bytes: 20 * 1024},
			Start:   4 * sim.Second,
			Stop:    8 * sim.Second,
		}},
	}
	res, _, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Arrivals at 5, 6, 7 s: the 8 s tick lands exactly on Stop and must
	// not fire.
	if got := res.Workloads[0].Spawned; got != 3 {
		t.Errorf("spawned %d flows, want 3 inside the [4 s, 8 s) window", got)
	}
}

// TestWorkloadMaxActiveCap: an overloaded open-loop process hits the
// active-flow cap and rejections are counted, not silently dropped.
func TestWorkloadMaxActiveCap(t *testing.T) {
	spec := Spec{
		Seed:     5,
		Duration: 6 * sim.Second,
		Warmup:   sim.Second,
		// 100 kbit/s cannot drain 100 KB flows arriving twice a second.
		Links: []LinkSpec{{Rate: netem.ConstRate(100e3), Kind: "rate", Qdisc: QdiscSpec{Kind: "droptail", Buffer: 50}}},
		Workloads: []WorkloadSpec{{
			Scheme:    "Cubic",
			Arrival:   app.Deterministic{Gap: 500 * sim.Millisecond},
			Sizes:     app.FixedSize{Bytes: 100 * 1024},
			MaxActive: 3,
		}},
	}
	res, _, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	w := &res.Workloads[0]
	if w.Active > 3 {
		t.Errorf("active %d exceeds the cap of 3", w.Active)
	}
	if w.Rejected == 0 {
		t.Error("overload produced no rejections; cap is not enforced")
	}
}

// TestWorkloadValidation: malformed workloads fail as Spec errors before
// any wiring happens.
func TestWorkloadValidation(t *testing.T) {
	base := func() Spec {
		return Spec{
			Duration: 5 * sim.Second,
			Links:    []LinkSpec{{Rate: netem.ConstRate(10e6), Kind: "rate"}},
		}
	}
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"missing arrival", func(s *Spec) {
			s.Workloads = []WorkloadSpec{{Scheme: "Cubic", Sizes: app.FixedSize{Bytes: 1000}}}
		}},
		{"missing sizes", func(s *Spec) {
			s.Workloads = []WorkloadSpec{{Scheme: "Cubic", Arrival: app.Poisson{PerSec: 1}}}
		}},
		{"unknown scheme", func(s *Spec) {
			s.Workloads = []WorkloadSpec{{Scheme: "nope", Arrival: app.Poisson{PerSec: 1}, Sizes: app.FixedSize{Bytes: 1000}}}
		}},
		{"mesh fields on chain", func(s *Spec) {
			s.Workloads = []WorkloadSpec{{Scheme: "Cubic", Arrival: app.Poisson{PerSec: 1},
				Sizes: app.FixedSize{Bytes: 1000}, Path: []string{"x"}}}
		}},
		{"bad span", func(s *Spec) {
			s.Workloads = []WorkloadSpec{{Scheme: "Cubic", Arrival: app.Poisson{PerSec: 1},
				Sizes: app.FixedSize{Bytes: 1000}, EnterAt: 7}}
		}},
	}
	for _, tc := range cases {
		spec := base()
		tc.mut(&spec)
		if _, _, err := Run(spec); err == nil {
			t.Errorf("%s: Run accepted a malformed workload", tc.name)
		}
	}
}

// TestWorkloadOnlySpecRuns: a spec with workloads and no static flows is
// legal (the auto qdisc derives from the workload's scheme).
func TestWorkloadOnlySpecRuns(t *testing.T) {
	spec := Spec{
		Seed:     2,
		Duration: 10 * sim.Second,
		Warmup:   sim.Second,
		Links:    []LinkSpec{{Rate: netem.ConstRate(10e6), Kind: "rate", Qdisc: QdiscSpec{Kind: "auto", Buffer: 250}}},
		Workloads: []WorkloadSpec{{
			Scheme:  "ABC",
			Arrival: app.Deterministic{Gap: sim.Second},
			Sizes:   app.FixedSize{Bytes: 50 * 1024},
		}},
	}
	res, _, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workloads[0].Completed == 0 {
		t.Error("no workload flows completed on an idle 10 Mbit/s link")
	}
	if res.Drops != 0 {
		t.Errorf("%d unrouted drops", res.Drops)
	}
}

// TestWorkloadOnMesh: workloads route over mesh edges via Path/AckPath.
func TestWorkloadOnMesh(t *testing.T) {
	spec := Spec{
		Seed:     4,
		Duration: 10 * sim.Second,
		Warmup:   sim.Second,
		Nodes:    []string{"a", "b", "c"},
		Edges: []EdgeSpec{
			{Name: "ab", From: "a", To: "b", Link: LinkSpec{Kind: "rate", Rate: netem.ConstRate(10e6), Qdisc: QdiscSpec{Kind: "auto", Buffer: 250}}},
			{Name: "bc", From: "b", To: "c", Link: LinkSpec{Kind: "wire"}},
		},
		Workloads: []WorkloadSpec{{
			Scheme:  "Cubic",
			Arrival: app.Deterministic{Gap: sim.Second},
			Sizes:   app.FixedSize{Bytes: 50 * 1024},
			Path:    []string{"ab", "bc"},
		}},
	}
	res, _, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workloads[0].Completed == 0 {
		t.Error("no mesh workload flows completed")
	}
	if res.Drops != 0 {
		t.Errorf("%d unrouted drops on the mesh", res.Drops)
	}
}

// TestWorkloadAckPathDerivesAutoQdisc: an "auto" qdisc on a mesh edge
// traversed only by a workload's ACK route must derive from that
// workload's scheme (ABC → its router), not fall back to droptail — the
// reverse-path echo demotion machinery depends on it.
func TestWorkloadAckPathDerivesAutoQdisc(t *testing.T) {
	spec := Spec{
		Seed:     1,
		Duration: 6 * sim.Second,
		Warmup:   sim.Second,
		Nodes:    []string{"a", "b"},
		Edges: []EdgeSpec{
			{Name: "down", From: "a", To: "b", Link: LinkSpec{Kind: "rate", Rate: netem.ConstRate(10e6), Qdisc: QdiscSpec{Kind: "auto", Buffer: 250}}},
			{Name: "up", From: "b", To: "a", Link: LinkSpec{Kind: "rate", Rate: netem.ConstRate(2e6), Qdisc: QdiscSpec{Kind: "auto", Buffer: 250}}},
		},
		Workloads: []WorkloadSpec{{
			Scheme:  "ABC",
			Arrival: app.Deterministic{Gap: sim.Second},
			Sizes:   app.FixedSize{Bytes: 50 * 1024},
			Path:    []string{"down"},
			AckPath: []string{"up"},
		}},
	}
	res, _, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, isDroptail := res.EdgeQdiscs["up"].(*qdisc.DropTail); isDroptail {
		t.Error(`auto qdisc on the workload's ACK edge fell back to droptail; want the ABC router derived from the workload scheme`)
	}
}

// TestAppDriversDeterministic: every app driver's output is a pure
// function of (schemes, duration, seed), byte-identical between
// sequential and worker-pool execution.
func TestAppDriversDeterministic(t *testing.T) {
	defer func(p int) { Parallelism = p }(Parallelism)
	type runFn func() (any, error)
	cases := []struct {
		name string
		run  runFn
	}{
		{"shortflows", func() (any, error) { return ShortFlows([]string{"ABC", "Cubic"}, "", 10*sim.Second, 1) }},
		{"video", func() (any, error) { return VideoExp([]string{"ABC", "Cubic"}, "", 10*sim.Second, 1) }},
		{"rpc", func() (any, error) { return RPCExp([]string{"ABC", "Cubic"}, "", 10*sim.Second, 1) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			Parallelism = 1
			v1, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			seq, _, err := goldenDigest(v1)
			if err != nil {
				t.Fatal(err)
			}
			Parallelism = 4
			v2, err := c.run()
			if err != nil {
				t.Fatal(err)
			}
			par, _, err := goldenDigest(v2)
			if err != nil {
				t.Fatal(err)
			}
			if seq != par {
				t.Errorf("sequential digest %s != parallel digest %s", seq, par)
			}
		})
	}
}
