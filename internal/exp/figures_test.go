package exp

import (
	"testing"

	"abc/internal/sim"
)

func TestFig2DequeueBeatsEnqueue(t *testing.T) {
	r, err := Fig2FeedbackMode(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("dequeue: util=%.2f qdelay p95=%.0fms; enqueue: util=%.2f qdelay p95=%.0fms",
		r.Dequeue.Utilization, r.QDelayP95Dequeue, r.Enqueue.Utilization, r.QDelayP95Enqueue)
	if r.QDelayP95Enqueue <= r.QDelayP95Dequeue {
		t.Errorf("enqueue-rate feedback should have higher p95 queuing delay (got %0.f vs %0.f ms)",
			r.QDelayP95Enqueue, r.QDelayP95Dequeue)
	}
}

func TestJainFairness(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		idx, err := JainFairness(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("n=%d jain=%.3f", n, idx)
		if idx < 0.95 {
			t.Errorf("Jain index %.3f < 0.95 for %d flows", idx, n)
		}
	}
}

func TestFig17SquareWave(t *testing.T) {
	runs, err := Fig17SquareWave(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[string]Fig17Run{}
	for _, r := range runs {
		byScheme[r.Scheme] = r
		t.Logf("%s: util=%.2f qdelay p95=%.0fms", r.Scheme, r.Summary.Utilization, r.QDelayP95)
	}
	abcRun := byScheme["ABC"]
	rcp := byScheme["RCP"]
	if abcRun.Summary.Utilization < 0.75 {
		t.Errorf("ABC utilization %.2f too low on square wave", abcRun.Summary.Utilization)
	}
	if rcp.Summary.Utilization > abcRun.Summary.Utilization+0.05 {
		t.Errorf("RCP (%.2f) should not beat ABC (%.2f) on square wave",
			rcp.Summary.Utilization, abcRun.Summary.Utilization)
	}
}

func TestStabilityRegion(t *testing.T) {
	res := StabilityRegion()
	if res.Boundary < 0 {
		t.Fatal("no stable ratio found")
	}
	t.Logf("empirical stability boundary at delta/tau=%.2f (theorem: 0.67)", res.Boundary)
	if res.Boundary > 0.85 {
		t.Errorf("boundary %.2f far above theorem's 2/3", res.Boundary)
	}
	// Well below the boundary the model must oscillate or diverge.
	for _, p := range res.Points {
		if p.DeltaOverTau < 0.3 && p.Converged {
			t.Errorf("ratio %.2f converged but should be unstable", p.DeltaOverTau)
		}
		if p.DeltaOverTau > 1.2 && !p.Converged {
			t.Errorf("ratio %.2f did not converge but should be stable", p.DeltaOverTau)
		}
	}
}

func TestFig5PredictionAccuracy(t *testing.T) {
	pts, err := Fig5RatePrediction(1)
	if err != nil {
		t.Fatal(err)
	}
	worst := Fig5MaxErrorBacklogged(pts)
	t.Logf("worst backlogged prediction error: %.1f%%", worst*100)
	if worst > 0.07 {
		t.Errorf("backlogged link-rate prediction error %.1f%% exceeds the paper's ~5%%", worst*100)
	}
}

func TestFig4SlopeMatchesTheory(t *testing.T) {
	r, err := Fig4InterACK(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fitted slope=%.3f ms/frame, theory S/R=%.3f ms/frame, %d samples",
		r.FittedSlopeMs, r.TheorySlopeMs, len(r.Samples))
	if r.FittedSlopeMs <= 0 {
		t.Fatal("no slope fitted")
	}
	rel := (r.FittedSlopeMs - r.TheorySlopeMs) / r.TheorySlopeMs
	if rel < -0.15 || rel > 0.15 {
		t.Errorf("slope off by %.0f%% from S/R", rel*100)
	}
}

func TestFig13AppLimited(t *testing.T) {
	r, err := Fig13AppLimited(20, 1.0, 20*sim.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("util=%.2f backlogged=%.1f app=%.2f qdelay p95=%.0fms",
		r.Utilization, r.BackloggedTputMbps, r.AppLimitedTputMbps, r.QDelayP95)
	if r.Utilization < 0.5 {
		t.Errorf("utilization %.2f too low with app-limited flows", r.Utilization)
	}
	if r.AppLimitedTputMbps < 0.5 {
		t.Errorf("app-limited aggregate %.2f Mbit/s below offered 1 Mbit/s", r.AppLimitedTputMbps)
	}
}
